package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"strings"
	"testing"

	"ftnet/internal/fleet"
	sharding "ftnet/internal/shard"
)

// TestWireVersionDowngrade pins the rolling-upgrade contract: a
// pre-sharding (v1) client asking a sharded daemon about a foreign
// instance must get a status byte its decoder knows — StatusReadOnly
// with the owner URL folded into the message — never StatusWrongShard,
// which would kill its connection as "unknown status". The response
// must also echo the request's version.
func TestWireVersionDowngrade(t *testing.T) {
	ring := sharding.New([]string{"a", "b"}, 0)
	foreign := ""
	for i := 0; i < 1000 && foreign == ""; i++ {
		if id := fmt.Sprintf("inst-%d", i); ring.Owner(id) == "b" {
			foreign = id
		}
	}
	if foreign == "" {
		t.Fatal("no probe id owned by b")
	}

	mgr := fleet.NewManager(fleet.Options{})
	ownerURL := "http://daemon-b.example:8100"
	mgr.SetTopology("a", map[string]string{"a": "http://daemon-a.example:8100", "b": ownerURL}, 0)
	addr, _ := startServer(t, mgr, ServerOptions{})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	send := func(version byte, seq uint64) Response {
		t.Helper()
		payload, err := AppendRequest(nil, Request{Version: version, Type: MsgLookup, Seq: seq, ID: foreign, X: 0})
		if err != nil {
			t.Fatal(err)
		}
		frame := appendFrameHeader(nil)
		frame = append(frame, payload...)
		sealFrame(frame, 0)
		if _, err := nc.Write(frame); err != nil {
			t.Fatal(err)
		}
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(nc, hdr[:]); err != nil {
			t.Fatal(err)
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		body := make([]byte, size)
		if _, err := io.ReadFull(nc, body); err != nil {
			t.Fatal(err)
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
			t.Fatal("response frame CRC mismatch")
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			t.Fatalf("decode response: %v", err)
		}
		return resp
	}

	// v1 requester: wrong-shard downgraded to the read-only posture
	// status, owner readable in the message, no owner field.
	resp := send(Version, 1)
	if resp.Version != Version {
		t.Errorf("v1 request answered at version %d", resp.Version)
	}
	if resp.Status != StatusReadOnly {
		t.Fatalf("v1 wrong-shard status = %v, want StatusReadOnly", resp.Status)
	}
	if !strings.Contains(resp.Msg, ownerURL) {
		t.Errorf("v1 downgrade message %q does not carry the owner URL", resp.Msg)
	}
	if resp.Owner != "" {
		t.Errorf("v1 response carries owner field %q", resp.Owner)
	}

	// v2 requester on the same connection: full wrong-shard answer.
	resp = send(VersionShard, 2)
	if resp.Version != VersionShard {
		t.Errorf("v2 request answered at version %d", resp.Version)
	}
	if resp.Status != StatusWrongShard {
		t.Fatalf("v2 wrong-shard status = %v, want StatusWrongShard", resp.Status)
	}
	if resp.Owner != ownerURL {
		t.Errorf("v2 owner hint = %q, want %q", resp.Owner, ownerURL)
	}
}

// TestWireStatusVersionGate pins the per-version canonical-status rule
// on both codec directions: StatusWrongShard cannot be encoded into or
// decoded out of a v1 payload.
func TestWireStatusVersionGate(t *testing.T) {
	bad := Response{Version: Version, Type: MsgLookup, Seq: 1,
		Status: StatusWrongShard, Msg: "owned elsewhere", Owner: "http://b:8100"}
	if _, err := AppendResponse(nil, bad); err == nil {
		t.Error("AppendResponse encoded StatusWrongShard at version 1")
	}

	// Hand-craft the same payload: v1 header, status byte 8.
	payload := []byte{Version, byte(MsgLookup)}
	payload = binary.AppendUvarint(payload, 1)
	payload = append(payload, byte(StatusWrongShard))
	msg := "owned elsewhere"
	payload = binary.AppendUvarint(payload, uint64(len(msg)))
	payload = append(payload, msg...)
	if _, err := DecodeResponse(payload); err == nil {
		t.Error("DecodeResponse accepted StatusWrongShard in a v1 payload")
	}
}
