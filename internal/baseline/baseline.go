// Package baseline implements the Samatham–Pradhan style fault-tolerant
// de Bruijn scheme ([12] in the paper) that the paper's Section I
// comparison is made against.
//
// Samatham and Pradhan tolerate k faults in a target B_{m,h} by taking a
// LARGER de Bruijn graph as the host. The paper cites their costs as
//
//	base 2:  N^{log2 2(k+1)} nodes, degree 4k+2
//	base m:  N^{log_m m(k+1)} nodes, degree 2mk+2
//
// Both node counts equal (m(k+1))^h: the host realized here is the
// de Bruijn graph over the enlarged alphabet of m(k+1) symbols,
// B_{m(k+1), h}. The alphabet splits into k+1 disjoint blocks of m
// symbols; the strings confined to one block form a node-disjoint copy
// of B_{m,h}, so k node faults can touch at most k of the k+1 copies
// and one copy always survives. That realizes the same
// fewer-graph-nodes/degree trade the paper quotes, with an executable
// reconfiguration: pick a surviving copy.
//
// The contrast with package ft is the entire point of the paper:
// ft needs only N + k nodes (optimal), at a degree only slightly larger.
package baseline

import (
	"fmt"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Params identifies a Samatham–Pradhan fault-tolerant de Bruijn scheme.
type Params struct {
	M int // target base, >= 2
	H int // digits, >= 1
	K int // fault budget, >= 0
}

// Validate checks constructibility (including host size overflow).
func (p Params) Validate() error {
	if p.M < 2 {
		return fmt.Errorf("baseline: base m=%d must be >= 2", p.M)
	}
	if p.H < 1 {
		return fmt.Errorf("baseline: digits h=%d must be >= 1", p.H)
	}
	if p.K < 0 {
		return fmt.Errorf("baseline: faults k=%d must be >= 0", p.K)
	}
	if _, err := num.IPow(p.M*(p.K+1), p.H); err != nil {
		return fmt.Errorf("baseline: host too large: %v", err)
	}
	return nil
}

// HostBase returns the enlarged alphabet size m(k+1).
func (p Params) HostBase() int { return p.M * (p.K + 1) }

// NTarget returns m^h.
func (p Params) NTarget() int { return num.MustIPow(p.M, p.H) }

// NHost returns the host node count (m(k+1))^h — the N^{log_m m(k+1)}
// of the paper's comparison.
func (p Params) NHost() int { return num.MustIPow(p.HostBase(), p.H) }

// CitedDegree returns the degree the paper cites for Samatham–Pradhan:
// 2mk + 2 for base m (4k+2 for base 2).
func (p Params) CitedDegree() int { return 2*p.M*p.K + 2 }

// HostDegree returns the degree of the concrete host built here,
// 2·m(k+1) (a full de Bruijn graph over the enlarged alphabet). The
// original construction prunes edges the reconfiguration never uses to
// reach the cited 2mk+2; both are Theta(mk), which is what the
// comparison tables report.
func (p Params) HostDegree() int { return 2 * p.HostBase() }

// String describes the scheme.
func (p Params) String() string {
	return fmt.Sprintf("SP^%d_{%d,%d}", p.K, p.M, p.H)
}

// New builds the concrete host graph B_{m(k+1), h}.
func New(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return debruijn.New(debruijn.Params{M: p.HostBase(), H: p.H})
}

// MustNew is New that panics on error.
func MustNew(p Params) *graph.Graph {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// CopyNodes returns the host nodes of copy i (0 <= i <= k): the strings
// whose every digit lies in alphabet block i, in target order. Copy
// node order matches target node order, so CopyNodes(p, i)[x] hosts
// target node x.
func CopyNodes(p Params, i int) ([]int, error) {
	if i < 0 || i > p.K {
		return nil, fmt.Errorf("baseline: copy %d out of range [0,%d]", i, p.K)
	}
	nt := p.NTarget()
	hb := p.HostBase()
	out := make([]int, nt)
	for x := 0; x < nt; x++ {
		d := num.MustToDigits(x, p.M, p.H)
		v := 0
		for _, digit := range d.D {
			v = v*hb + (digit + i*p.M)
		}
		out[x] = v
	}
	return out, nil
}

// Reconfigure finds a copy untouched by the fault set and returns the
// embedding of the target into it: phi[x] = host node for target x.
// It fails only if every copy is hit, which requires more than k faults.
func Reconfigure(p Params, faults []int) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bad := make(map[int]bool, len(faults))
	for _, f := range faults {
		if f < 0 || f >= p.NHost() {
			return nil, fmt.Errorf("baseline: fault %d out of range [0,%d)", f, p.NHost())
		}
		bad[f] = true
	}
	for i := 0; i <= p.K; i++ {
		nodes, err := CopyNodes(p, i)
		if err != nil {
			return nil, err
		}
		hit := false
		for _, v := range nodes {
			if bad[v] {
				hit = true
				break
			}
		}
		if !hit {
			return nodes, nil
		}
	}
	return nil, fmt.Errorf("baseline: all %d copies hit by faults (need > %d faults)", p.K+1, p.K)
}
