package wire

import (
	"errors"
	"fmt"

	"ftnet/internal/fleet"
)

// Error is an application-level RPC failure: the server processed the
// request and answered with a non-OK status. Unwrap maps the status
// back onto the fleet error categories, so callers keep using
// errors.Is(err, fleet.ErrBudget) etc. across the wire exactly as they
// would in-process.
type Error struct {
	Status Status
	Msg    string
	Owner  string // StatusWrongShard only: the owning daemon's advertised URL
}

func (e *Error) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	return "wire: " + e.Status.String()
}

func (e *Error) Unwrap() error {
	switch e.Status {
	case StatusNotFound:
		return fleet.ErrNotFound
	case StatusConflict:
		return fleet.ErrConflict
	case StatusBudget:
		return fleet.ErrBudget
	case StatusUnavailable:
		return fleet.ErrUnavailable
	case StatusReadOnly:
		return fleet.ErrReadOnly
	case StatusStaleTerm:
		return fleet.ErrStaleTerm
	case StatusWrongShard:
		// Rebuild the fleet-side error so fleet.WrongShardOwner works on
		// an RPC rejection exactly as on an in-process one.
		return fleet.WrongShardError(e.Owner, e.Msg)
	default:
		return nil
	}
}

// TransportError marks a failure of the connection itself — dial,
// write, read, CRC mismatch, timeout — as opposed to an application
// rejection. After a TransportError from a mutating call the request
// may or may not have been applied; the client never retries those
// (see Client.ApplyBatch), and load drivers count the two kinds
// apart.
type TransportError struct {
	Err error
}

func (e *TransportError) Error() string { return "wire: transport: " + e.Err.Error() }

func (e *TransportError) Unwrap() error { return e.Err }

// IsTransport reports whether err is (or wraps) a connection-level
// failure rather than an application rejection.
func IsTransport(err error) bool {
	var t *TransportError
	return errors.As(err, &t)
}

// statusOf maps a fleet error to its wire status. Budget is checked
// before Conflict because fleet.ErrBudget wraps fleet.ErrConflict.
func statusOf(err error) Status {
	switch {
	case errors.Is(err, fleet.ErrNotFound):
		return StatusNotFound
	case errors.Is(err, fleet.ErrStaleTerm):
		return StatusStaleTerm
	case errors.Is(err, fleet.ErrWrongShard):
		return StatusWrongShard
	case errors.Is(err, fleet.ErrReadOnly):
		return StatusReadOnly
	case errors.Is(err, fleet.ErrBudget):
		return StatusBudget
	case errors.Is(err, fleet.ErrConflict):
		return StatusConflict
	case errors.Is(err, fleet.ErrUnavailable):
		return StatusUnavailable
	default:
		return StatusInvalid
	}
}

// transportErrf wraps a formatted message as a TransportError.
func transportErrf(format string, args ...any) error {
	return &TransportError{Err: fmt.Errorf(format, args...)}
}
