package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestGetPhiRanged pins the windowed dense endpoint:
// GET /v1/instances/{id}/phi?from=&count= streams only the requested
// window of the embedding, paginates cleanly off the end, and rejects
// malformed windows — the JSON-plane twin of the wire LookupBatch.
func TestGetPhiRanged(t *testing.T) {
	mgr := NewManager(Options{})
	in, err := mgr.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A couple of faults so the window crosses remapped entries.
	if _, err := mgr.EventBatch("a", []Event{
		{Kind: EventFault, Node: 3}, {Kind: EventFault, Node: 7},
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHTTPHandler(mgr))
	defer ts.Close()

	get := func(t *testing.T, url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf [1 << 16]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}

	var full struct {
		Phi []int `json:"phi"`
	}
	code, body := get(t, ts.URL+"/v1/instances/a/phi")
	if code != http.StatusOK {
		t.Fatalf("full dump: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	n := in.NTarget()
	if len(full.Phi) != n {
		t.Fatalf("full dump has %d entries, want %d", len(full.Phi), n)
	}

	type window struct {
		From  int   `json:"from"`
		Count int   `json:"count"`
		Phi   []int `json:"phi"`
	}
	getWindow := func(t *testing.T, query string) (window, int, []byte) {
		t.Helper()
		code, body := get(t, ts.URL+"/v1/instances/a/phi?"+query)
		var w window
		if code == http.StatusOK {
			if err := json.Unmarshal(body, &w); err != nil {
				t.Fatalf("%s: %v in %s", query, err, body)
			}
		}
		return w, code, body
	}

	// A mid-instance window matches the same slice of the full dump.
	w, code, body := getWindow(t, "from=5&count=6")
	if code != http.StatusOK {
		t.Fatalf("from=5&count=6: status %d: %s", code, body)
	}
	if w.From != 5 || w.Count != 6 || len(w.Phi) != 6 {
		t.Fatalf("window header = %+v", w)
	}
	for i, phi := range w.Phi {
		if phi != full.Phi[5+i] {
			t.Fatalf("window phi[%d] = %d, full dump has %d", 5+i, phi, full.Phi[5+i])
		}
	}

	// Paginating in fixed steps reassembles the full embedding, the
	// final short page clamped rather than erroring.
	var paged []int
	step := 5
	for from := 0; from < n; from += step {
		w, code, body := getWindow(t, fmt.Sprintf("from=%d&count=%d", from, step))
		if code != http.StatusOK {
			t.Fatalf("page from=%d: status %d: %s", from, code, body)
		}
		if w.From != from {
			t.Fatalf("page echoes from=%d, want %d", w.From, from)
		}
		paged = append(paged, w.Phi...)
	}
	if len(paged) != n {
		t.Fatalf("pages reassemble to %d entries, want %d", len(paged), n)
	}
	for i := range paged {
		if paged[i] != full.Phi[i] {
			t.Fatalf("paged phi[%d] = %d, want %d", i, paged[i], full.Phi[i])
		}
	}

	// from alone windows the tail; count alone windows the head.
	if w, code, _ := getWindow(t, fmt.Sprintf("from=%d", n-3)); code != http.StatusOK || w.Count != 3 || len(w.Phi) != 3 {
		t.Fatalf("tail window = %+v (status %d)", w, code)
	}
	if w, code, _ := getWindow(t, "count=4"); code != http.StatusOK || w.From != 0 || len(w.Phi) != 4 {
		t.Fatalf("head window = %+v (status %d)", w, code)
	}

	// The empty end-of-range window succeeds with zero entries.
	if w, code, _ := getWindow(t, fmt.Sprintf("from=%d&count=%d", n, step)); code != http.StatusOK || w.Count != 0 || len(w.Phi) != 0 {
		t.Fatalf("end-of-range window = %+v (status %d)", w, code)
	}

	// Malformed and out-of-range windows are 400s.
	for _, q := range []string{"from=-1", "from=zzz", "count=-2", "count=x", fmt.Sprintf("from=%d", n+1)} {
		if _, code, body := getWindow(t, q); code != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", q, code, body)
		}
	}
}
