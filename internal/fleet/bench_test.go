package fleet

import (
	"sync"
	"sync/atomic"
	"testing"

	"ftnet/internal/ft"
)

// Benchmarks for the two contention points the snapshot refactor
// removed: the read lock on Instance.Lookup and the global mutex on
// the mapping cache.
//
// mutexInstance replicates the pre-refactor read path — an RWMutex
// around the current mapping — so the win is measured against the
// real alternative, not a straw man:
//
//	go test ./internal/fleet -bench 'Lookup.*Parallel' -cpu 1,4,8
//	go test ./internal/fleet -bench 'CacheGet' -cpu 8

type mutexInstance struct {
	mu      sync.RWMutex
	cur     *ft.Mapping
	lookups atomic.Uint64
}

func (in *mutexInstance) Lookup(x int) int {
	in.lookups.Add(1) // the pre-refactor path counted on one shared atomic
	in.mu.RLock()
	phi := in.cur.Phi(x)
	in.mu.RUnlock()
	return phi
}

const benchH, benchK = 12, 6 // 4096 target nodes

func benchMapping(b *testing.B) *ft.Mapping {
	b.Helper()
	p := ft.Params{M: 2, H: benchH, K: benchK}
	m, err := ft.NewMapping(p.NTarget(), p.NHost(), []int{5, 99, 1024})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkLookupMutexParallel is the pre-refactor read path: every
// lookup takes a read lock, so parallel readers bounce the RWMutex
// reader count across cores.
func BenchmarkLookupMutexParallel(b *testing.B) {
	in := &mutexInstance{cur: benchMapping(b)}
	n := 1 << benchH
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		x := 0
		for pb.Next() {
			if in.Lookup(x%n) < 0 {
				b.Fail()
			}
			x++
		}
	})
}

// BenchmarkLookupSnapshotParallel is the refactored read path: an
// atomic pointer load plus an array index, nothing shared but the
// lookup counter.
func BenchmarkLookupSnapshotParallel(b *testing.B) {
	in, err := newInstance("bench", Spec{Kind: KindDeBruijn, M: 2, H: benchH, K: benchK}, NewCache(0), newPipeline())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := in.ApplyBatch([]Event{{EventFault, 5}, {EventFault, 99}, {EventFault, 1024}}); err != nil {
		b.Fatal(err)
	}
	n := 1 << benchH
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		x := 0
		for pb.Next() {
			if phi, err := in.Lookup(x % n); err != nil || phi < 0 {
				b.Fail()
			}
			x++
		}
	})
}

// BenchmarkLookupSnapshotWithWriter measures readers while a writer
// continuously applies fault/repair transitions: the snapshot path
// must not degrade, because readers never wait on the writer.
func BenchmarkLookupSnapshotWithWriter(b *testing.B) {
	in, err := newInstance("bench", Spec{Kind: KindDeBruijn, M: 2, H: benchH, K: benchK}, NewCache(0), newPipeline())
	if err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			node := i % 8
			in.Apply(Event{Kind: EventFault, Node: node})
			in.Apply(Event{Kind: EventRepair, Node: node})
		}
	}()
	n := 1 << benchH
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		x := 0
		for pb.Next() {
			if phi, err := in.Lookup(x % n); err != nil || phi < 0 {
				b.Fail()
			}
			x++
		}
	})
	close(stop)
	wg.Wait()
}

// benchCacheGet hammers a warmed cache from parallel goroutines over a
// recurring working set of fault patterns — the shape a fleet
// revisiting the same rack failures produces.
func benchCacheGet(b *testing.B, shards int) {
	p := ft.Params{M: 2, H: benchH, K: benchK}
	c := NewCacheShards(256, shards)
	sets := make([][]int, 32)
	for i := range sets {
		sets[i] = []int{i, i + 64, i + 512}
		if _, err := c.Get(p.NTarget(), p.NHost(), sets[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := c.Get(p.NTarget(), p.NHost(), sets[i%len(sets)]); err != nil {
				b.Fail()
			}
			i++
		}
	})
}

// BenchmarkCacheGetSingleShard is the pre-refactor cache: one mutex
// serializes every probe.
func BenchmarkCacheGetSingleShard(b *testing.B) { benchCacheGet(b, 1) }

// BenchmarkCacheGetSharded spreads the same working set over 16
// independently-locked shards.
func BenchmarkCacheGetSharded(b *testing.B) { benchCacheGet(b, 16) }

// BenchmarkApplyBatch measures the write path: one atomic transition
// applying a 4-event burst (computing or re-fetching the mapping
// through the cache).
func BenchmarkApplyBatch(b *testing.B) {
	in, err := newInstance("bench", Spec{Kind: KindDeBruijn, M: 2, H: benchH, K: benchK}, NewCache(0), newPipeline())
	if err != nil {
		b.Fatal(err)
	}
	fault := []Event{{EventFault, 0}, {EventFault, 1}, {EventFault, 2}, {EventFault, 3}}
	repair := []Event{{EventRepair, 0}, {EventRepair, 1}, {EventRepair, 2}, {EventRepair, 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := fault
		if i%2 == 1 {
			batch = repair
		}
		if _, err := in.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLookupThroughputRatio is a coarse guard for the refactor's
// acceptance criterion: with parallel readers, the lock-free snapshot
// path must beat the mutex path. It uses testing.Benchmark so `go
// test` exercises it without -bench; skipped in -short runs. The
// assertion carries a 1.5x cushion so timing noise on loaded or
// low-core runners does not flake the build — it catches the snapshot
// path regressing to clearly worse than the mutex it replaced, while
// the real ratio is tracked by the benchmarks above.
func TestLookupThroughputRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison")
	}
	mutexRes := testing.Benchmark(BenchmarkLookupMutexParallel)
	snapRes := testing.Benchmark(BenchmarkLookupSnapshotParallel)
	mutexNs := float64(mutexRes.NsPerOp())
	snapNs := float64(snapRes.NsPerOp())
	t.Logf("parallel Lookup: mutex %.1f ns/op, snapshot %.1f ns/op (%.1fx)",
		mutexNs, snapNs, mutexNs/snapNs)
	if snapNs > 1.5*mutexNs {
		t.Errorf("snapshot path (%.1f ns/op) much slower than mutex path (%.1f ns/op) under parallel readers",
			snapNs, mutexNs)
	}
}
