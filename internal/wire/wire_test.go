package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"ftnet/internal/fleet"
)

func startServer(t *testing.T, mgr *fleet.Manager, opts ServerOptions) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mgr, opts)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

func dialTest(t *testing.T, addr string, opts Options) *Client {
	t.Helper()
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func newTestManager(t *testing.T, id string, k int) *fleet.Manager {
	t.Helper()
	mgr := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: k}
	if _, err := mgr.Create(id, spec); err != nil {
		t.Fatal(err)
	}
	return mgr
}

// TestWireRoundTrip drives all three operations end to end over a real
// TCP connection and cross-checks every answer against the in-process
// manager.
func TestWireRoundTrip(t *testing.T) {
	mgr := newTestManager(t, "prod", 4)
	addr, _ := startServer(t, mgr, ServerOptions{})
	c := dialTest(t, addr, Options{})

	in, _ := mgr.Get("prod")
	n := in.NTarget()
	for x := 0; x < n; x++ {
		phi, epoch, err := c.Lookup("prod", x)
		if err != nil {
			t.Fatalf("Lookup(%d): %v", x, err)
		}
		want, err := mgr.Lookup("prod", x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want || epoch != 0 {
			t.Fatalf("Lookup(%d) = (%d, %d), want (%d, 0)", x, phi, epoch, want)
		}
	}

	res, err := c.ApplyBatch("prod", []fleet.Event{
		{Kind: fleet.EventFault, Node: 0},
		{Kind: fleet.EventFault, Node: 1},
	})
	if err != nil {
		t.Fatalf("ApplyBatch: %v", err)
	}
	if res.Epoch != 1 || res.NumFaults != 2 || res.Applied != 2 {
		t.Fatalf("ApplyBatch result = %+v", res)
	}

	xs := make([]int, n)
	phis := make([]int, n)
	for i := range xs {
		xs[i] = i
	}
	epoch, err := c.LookupBatch("prod", xs, phis)
	if err != nil {
		t.Fatalf("LookupBatch: %v", err)
	}
	if epoch != 1 {
		t.Fatalf("LookupBatch epoch = %d, want 1", epoch)
	}
	for i, x := range xs {
		want, _ := mgr.Lookup("prod", x)
		if phis[i] != want {
			t.Fatalf("LookupBatch phi[%d] = %d, want %d", x, phis[i], want)
		}
	}

	if res, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventRepair, Node: 0}}); err != nil {
		t.Fatalf("repair: %v", err)
	}
	if res.Epoch != 2 || res.NumFaults != 1 {
		t.Fatalf("repair result = %+v", res)
	}
}

// TestWireErrorMapping pins that application rejections cross the wire
// as typed statuses and unwrap to the same fleet error categories the
// in-process API returns, so errors.Is keeps working remotely.
func TestWireErrorMapping(t *testing.T) {
	mgr := newTestManager(t, "prod", 2)
	addr, _ := startServer(t, mgr, ServerOptions{})
	c := dialTest(t, addr, Options{})

	_, _, err := c.Lookup("nope", 0)
	if !errors.Is(err, fleet.ErrNotFound) {
		t.Fatalf("unknown instance: %v, want ErrNotFound", err)
	}
	var we *Error
	if !errors.As(err, &we) || we.Status != StatusNotFound {
		t.Fatalf("unknown instance error %v is not a StatusNotFound wire.Error", err)
	}

	if _, _, err = c.Lookup("prod", 1<<20); err == nil {
		t.Fatal("out-of-range lookup succeeded")
	}

	if _, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 3}}); err != nil {
		t.Fatal(err)
	}
	_, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 3}})
	if !errors.Is(err, fleet.ErrConflict) || errors.Is(err, fleet.ErrBudget) {
		t.Fatalf("double fault: %v, want plain ErrConflict", err)
	}

	if _, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 4}}); err != nil {
		t.Fatal(err)
	}
	_, err = c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 5}})
	if !errors.Is(err, fleet.ErrBudget) {
		t.Fatalf("k+1-th fault: %v, want ErrBudget", err)
	}
	if errors.As(err, &we); we.Status != StatusBudget {
		t.Fatalf("budget rejection carries status %v, want StatusBudget", we.Status)
	}
	if IsTransport(err) {
		t.Fatal("an application rejection reported as a transport error")
	}
}

// TestWireReadOnly pins the follower posture: reads are served,
// mutations are refused with StatusReadOnly.
func TestWireReadOnly(t *testing.T) {
	mgr := newTestManager(t, "prod", 2)
	addr, _ := startServer(t, mgr, ServerOptions{ReadOnly: true})
	c := dialTest(t, addr, Options{})

	if _, _, err := c.Lookup("prod", 0); err != nil {
		t.Fatalf("read on a read-only server: %v", err)
	}
	_, err := c.ApplyBatch("prod", []fleet.Event{{Kind: fleet.EventFault, Node: 0}})
	var we *Error
	if !errors.As(err, &we) || we.Status != StatusReadOnly {
		t.Fatalf("mutation on a read-only server: %v, want StatusReadOnly", err)
	}
	if mgr.Stats().Events != 0 {
		t.Fatal("read-only server applied the batch anyway")
	}
}

// TestWireConcurrentStorm hammers one pipelined client from many
// goroutines mixing reads and writes — the shape the -race CI step
// runs — and requires every operation to either succeed or fail with a
// typed application rejection (no transport errors, no cross-talk:
// each lookup's phi must match a valid host for its x).
func TestWireConcurrentStorm(t *testing.T) {
	mgr := newTestManager(t, "prod", 8)
	addr, _ := startServer(t, mgr, ServerOptions{})
	c := dialTest(t, addr, Options{Conns: 2})

	in, _ := mgr.Get("prod")
	n := in.NTarget()
	const workers = 8
	const opsPer = 300
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			phis := make([]int, 4)
			xs := make([]int, 4)
			for i := 0; i < opsPer; i++ {
				switch rng.Intn(3) {
				case 0:
					x := rng.Intn(n)
					phi, _, err := c.Lookup("prod", x)
					if err != nil {
						errCh <- fmt.Errorf("worker %d Lookup: %w", w, err)
						return
					}
					if phi < 0 {
						errCh <- fmt.Errorf("worker %d: negative phi %d", w, phi)
						return
					}
				case 1:
					for j := range xs {
						xs[j] = rng.Intn(n)
					}
					if _, err := c.LookupBatch("prod", xs, phis); err != nil {
						errCh <- fmt.Errorf("worker %d LookupBatch: %w", w, err)
						return
					}
				default:
					node := rng.Intn(n)
					kind := fleet.EventFault
					if rng.Intn(2) == 0 {
						kind = fleet.EventRepair
					}
					_, err := c.ApplyBatch("prod", []fleet.Event{{Kind: kind, Node: node}})
					if err != nil && !errors.Is(err, fleet.ErrConflict) {
						errCh <- fmt.Errorf("worker %d ApplyBatch: %w", w, err)
						return
					}
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWireServerClose pins that closing the server fails in-flight
// clients with a transport error, not a hang.
func TestWireServerClose(t *testing.T) {
	mgr := newTestManager(t, "prod", 2)
	addr, srv := startServer(t, mgr, ServerOptions{})
	c := dialTest(t, addr, Options{Timeout: 2 * time.Second})
	if _, _, err := c.Lookup("prod", 0); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	_, _, err := c.Lookup("prod", 0)
	if err == nil || !IsTransport(err) {
		t.Fatalf("lookup against a closed server: %v, want a transport error", err)
	}
}
