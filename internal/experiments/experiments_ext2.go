package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ftnet/internal/ascend"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/reconfig"
	"ftnet/internal/shuffle"
)

// extendedMore returns the distributed-protocol and migration ablations.
func extendedMore() []Experiment {
	return []Experiment{
		{"S4", "Distributed reconfiguration: fault dissemination rounds", S4},
		{"A2", "Ablation: migration cost of the rank mapping under sequential faults", A2},
		{"A3", "Ablation: witness usage — which host edges the remapping exercises", A3},
		{"S5", "Bitonic sort (Ascend/Descend class) on healthy vs reconfigured machines", S5},
	}
}

// S4 measures the distributed reconfiguration protocol: how many
// synchronous flooding rounds healthy nodes need to learn the fault set
// before each can compute its assignment locally. The answer tracks the
// host diameter — reconfiguration latency is logarithmic in machine
// size, one of the practical virtues of the rank-based mapping.
func S4(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tnodes\thost diameter\tflood rounds (max over trials)")
	rng := stableRng()
	for h := 3; h <= 8; h++ {
		for _, k := range []int{1, 3, 6} {
			p := ft.Params{M: 2, H: h, K: k}
			host := ft.MustNew(p)
			diam := host.Diameter()
			maxRounds := 0
			for trial := 0; trial < 10; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				out, err := reconfig.Run(host, p.NTarget(), faults)
				if err != nil {
					return fmt.Errorf("h=%d k=%d faults=%v: %w", h, k, faults, err)
				}
				if out.Rounds > maxRounds {
					maxRounds = out.Rounds
				}
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\n", h, k, p.NHost(), diam, maxRounds)
		}
	}
	return tw.Flush()
}

// A2 quantifies a property the paper does not discuss but any deployer
// hits: when faults arrive one at a time, how many target nodes must
// MOVE to a different host under the rank-based remapping? Every target
// whose host lies above the new fault shifts by one slot, so the
// expected cost is about half the machine — the price of the minimal
// spare count. (A scheme with dedicated per-region spares would move
// fewer nodes but need more of them; this table documents the trade.)
func A2(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tfault#\tnew fault at\ttargets moved\tof")
	rng := stableRng()
	for _, h := range []int{4, 6, 8} {
		k := 4
		p := ft.Params{M: 2, H: h, K: k}
		var faults []int
		prev, err := ft.NewMapping(p.NTarget(), p.NHost(), nil)
		if err != nil {
			return err
		}
		for step := 1; step <= k; step++ {
			// Draw a new fault not already present.
			var nf int
			for {
				nf = rng.Intn(p.NHost())
				if !contains(faults, nf) {
					break
				}
			}
			faults = append(faults, nf)
			cur, moved, err := prev.WithFault(nf)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n", h, k, step, nf, moved, p.NTarget())
			prev = cur
		}
	}
	return tw.Flush()
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// A3 prints the witness histogram: which values s of the host edge rule
// the reconfiguration actually exercises. With no faults only
// {0, 1, k, k+1} are used; adversarial block faults drive usage to both
// extremes of [-k, k+1] — every host edge class is needed (the
// constructive companion to A1's destructive ablation).
func A3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tfault model\twitness support (s values used)")
	for _, c := range []struct{ h, k int }{{4, 2}, {4, 3}, {5, 3}} {
		p := ft.Params{M: 2, H: c.h, K: c.k}

		noFaults, err := ft.NewMapping(p.NTarget(), p.NHost(), nil)
		if err != nil {
			return err
		}
		hist, err := ft.WitnessHistogram(p, noFaults)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\tnone\t%s\n", c.h, c.k, supportString(hist))

		// Union of supports over all consecutive-block fault sets.
		union := map[int]int{}
		for start := 0; start < p.NHost(); start++ {
			faults := make([]int, c.k)
			for i := range faults {
				faults[i] = (start + i) % p.NHost()
			}
			mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				return err
			}
			h2, err := ft.WitnessHistogram(p, mp)
			if err != nil {
				return err
			}
			for s, n := range h2 {
				union[s] += n
			}
		}
		fmt.Fprintf(tw, "%d\t%d\tall blocks\t%s  (rule range [%d..%d])\n",
			c.h, c.k, supportString(union), p.RMin(), p.RMax())
	}
	return tw.Flush()
}

func supportString(hist map[int]int) string {
	min, max := 1<<30, -(1 << 30)
	for s := range hist {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	parts := ""
	for s := min; s <= max; s++ {
		if hist[s] > 0 {
			if parts != "" {
				parts += ","
			}
			parts += fmt.Sprintf("%d", s)
		}
	}
	return "{" + parts + "}"
}

// S5 runs Batcher's bitonic sort — the flagship Ascend/Descend
// algorithm — on the healthy shuffle-exchange machine and on the
// fault-tolerant host after k faults, confirming identical cycle counts
// (dilation-1 reconfiguration) and a failed run on the unprotected
// faulted machine.
func S5(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\thealthy cycles\tunprotected+1 fault\treconfigured cycles\tsorted")
	rng := stableRng()
	for h := 4; h <= 7; h++ {
		n := 1 << h
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(10000))
		}
		se := shuffle.MustNew(shuffle.Params{H: h})
		healthy, err := ascendRunBitonic(h, ascendHealthy(se), vals)
		if err != nil {
			return err
		}

		broken := ascendHealthy(se)
		broken.Dead[n/2] = true
		unprotected := "FAILS"
		if _, err := ascendRunBitonic(h, broken, vals); err == nil {
			unprotected = "unexpectedly ok"
		}

		k := 3
		p := ft.SEParams{H: h, K: k}
		host, psi, err := ft.NewSEViaDB(p)
		if err != nil {
			return err
		}
		faults := num.RandomSubset(rng, p.NHost(), k)
		loc, err := ft.SEMapViaDB(p, psi, faults)
		if err != nil {
			return err
		}
		dead := make([]bool, p.NHost())
		for _, f := range faults {
			dead[f] = true
		}
		res, err := ascendRunBitonic(h, &ascend.Host{G: host, Loc: loc, Dead: dead}, vals)
		if err != nil {
			return fmt.Errorf("h=%d: %w", h, err)
		}
		sorted := true
		for i := 1; i < n; i++ {
			if res.Values[i-1] > res.Values[i] {
				sorted = false
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%v\n", h, k, healthy.Cycles, unprotected, res.Cycles, sorted)
	}
	return tw.Flush()
}

func ascendHealthy(g *graph.Graph) *ascend.Host { return ascend.NewHealthy(g) }

func ascendRunBitonic(h int, hst *ascend.Host, vals []int64) (ascend.Result, error) {
	return ascend.RunSchedule(h, hst, vals, ascend.BitonicSortSteps(h))
}
