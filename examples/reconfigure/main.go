// Reconfigure walks through Figure 3 of the paper: the relabeling of
// B^1_{2,4} after a single node fault, showing which host node carries
// which target label and which host edges become the "solid" target
// edges.
//
// Run with: go run ./examples/reconfigure
package main

import (
	"fmt"
	"log"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/route"
)

func main() {
	p := ft.Params{M: 2, H: 4, K: 1}
	host := ft.MustNew(p)
	target := debruijn.MustNew(p.Target())

	const failed = 1 // the figure fails one node
	m, err := ft.NewMapping(p.NTarget(), p.NHost(), []int{failed})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("B^1_{2,4}: %d host nodes, fault at node %d\n\n", p.NHost(), failed)
	inv := m.HostToTarget()
	for v := 0; v < p.NHost(); v++ {
		switch {
		case m.IsFaulty(v):
			fmt.Printf("  host %2d: X (faulty)\n", v)
		case inv[v] < 0:
			fmt.Printf("  host %2d: unused spare\n", v)
		default:
			fmt.Printf("  host %2d: carries target %2d [%04b]\n", v, inv[v], inv[v])
		}
	}

	// The figure's solid lines: images of target edges. Count and verify.
	phi := m.PhiSlice()
	if err := graph.CheckEmbedding(target, host, phi); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nall %d target edges present among the %d host edges\n", target.M(), host.M())

	// Routing is unaffected: lift a shortest target route onto the host.
	u, v := 3, 12
	path, err := route.ShortPath(u, v, p.Target())
	if err != nil {
		log.Fatal(err)
	}
	lifted, err := route.Lift(path, phi)
	if err != nil {
		log.Fatal(err)
	}
	if err := route.Validate(lifted, host); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nroute %d -> %d on target: %v\n", u, v, path)
	fmt.Printf("same route on reconfigured host (dilation 1): %v\n", lifted)
}
