package main

import "testing"

func TestBuildKinds(t *testing.T) {
	cases := []struct {
		kind       string
		m, h, k    int
		wantN      int
		wantMaxDeg int
	}{
		{"db", 2, 4, 0, 16, 4},
		{"ftdb", 2, 4, 1, 17, 8},
		{"se", 2, 4, 0, 16, 3},
		{"ftse", 2, 4, 2, 18, 18},
	}
	for _, c := range cases {
		g, name, err := build(c.kind, c.m, c.h, c.k)
		if err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		if name == "" {
			t.Errorf("%s: empty name", c.kind)
		}
		if g.N() != c.wantN {
			t.Errorf("%s: n = %d, want %d", c.kind, g.N(), c.wantN)
		}
		if g.MaxDegree() > c.wantMaxDeg {
			t.Errorf("%s: degree %d > %d", c.kind, g.MaxDegree(), c.wantMaxDeg)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, _, err := build("nope", 2, 4, 1); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, _, err := build("db", 1, 4, 0); err == nil {
		t.Error("bad base accepted")
	}
	if _, _, err := build("ftdb", 2, 2, 1); err == nil {
		t.Error("h=2 accepted for ft graph")
	}
	if _, _, err := build("se", 2, 0, 0); err == nil {
		t.Error("h=0 accepted for se")
	}
	if _, _, err := build("ftse", 2, 2, 1); err == nil {
		t.Error("h=2 accepted for ftse")
	}
}
