package route

import (
	"fmt"

	"ftnet/internal/graph"
)

// Fault-avoiding routing: the alternative to the paper's spare-node
// approach, in the spirit of Esfahanian–Hakimi (the paper's ref [8]).
// Instead of reconfiguring onto spares, the unprotected machine keeps
// running and routes AROUND faulty nodes. The price is dilation: paths
// get longer, and some pairs may disconnect entirely once the fault
// count reaches the graph's connectivity. The experiment suite contrasts
// this with the paper's dilation-1 reconfiguration.

// AvoidStats summarizes fault-avoiding routing over all healthy pairs.
type AvoidStats struct {
	Pairs        int     // healthy ordered pairs examined
	Disconnected int     // pairs with no fault-free path
	MaxDilation  float64 // max ratio (faulty path length / fault-free length)
	AvgDilation  float64 // mean ratio over still-connected pairs
}

// AvoidingPath returns a minimum-hop path from u to v that avoids the
// faulty nodes, or nil when none exists. u and v must be healthy.
func AvoidingPath(g *graph.Graph, u, v int, faulty []bool) ([]int, error) {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return nil, fmt.Errorf("route: nodes (%d,%d) out of range [0,%d)", u, v, g.N())
	}
	if len(faulty) != g.N() {
		return nil, fmt.Errorf("route: faulty mask length %d != %d", len(faulty), g.N())
	}
	if faulty[u] || faulty[v] {
		return nil, fmt.Errorf("route: endpoint is faulty")
	}
	if u == v {
		return []int{u}, nil
	}
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	parent[u] = u
	queue := []int{u}
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		for _, y := range g.Neighbors(x) {
			if parent[y] == -1 && !faulty[y] {
				parent[y] = x
				if y == v {
					rev := []int{v}
					for at := v; at != u; at = parent[at] {
						rev = append(rev, parent[at])
					}
					out := make([]int, len(rev))
					for i, w := range rev {
						out[len(rev)-1-i] = w
					}
					return out, nil
				}
				queue = append(queue, y)
			}
		}
	}
	return nil, nil
}

// MeasureAvoidance computes dilation statistics for all-pairs routing
// around the given fault set on g.
func MeasureAvoidance(g *graph.Graph, faults []int) (AvoidStats, error) {
	n := g.N()
	faulty := make([]bool, n)
	for _, f := range faults {
		if f < 0 || f >= n {
			return AvoidStats{}, fmt.Errorf("route: fault %d out of range [0,%d)", f, n)
		}
		faulty[f] = true
	}
	var st AvoidStats
	var dilationSum float64
	connected := 0
	for u := 0; u < n; u++ {
		if faulty[u] {
			continue
		}
		base := g.BFS(u)
		for v := 0; v < n; v++ {
			if v == u || faulty[v] {
				continue
			}
			st.Pairs++
			p, err := AvoidingPath(g, u, v, faulty)
			if err != nil {
				return AvoidStats{}, err
			}
			if p == nil {
				st.Disconnected++
				continue
			}
			if base[v] <= 0 {
				continue // unreachable even fault-free (shouldn't happen on our graphs)
			}
			d := float64(len(p)-1) / float64(base[v])
			dilationSum += d
			connected++
			if d > st.MaxDilation {
				st.MaxDilation = d
			}
		}
	}
	if connected > 0 {
		st.AvgDilation = dilationSum / float64(connected)
	}
	return st, nil
}
