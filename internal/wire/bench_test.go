package wire

import (
	"net"
	"sync/atomic"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

func benchServer(b *testing.B) (string, func()) {
	b.Helper()
	mgr := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 6, K: 4}
	if _, err := mgr.Create("bench", spec); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(mgr, ServerOptions{Metrics: obs.New()})
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }
}

// BenchmarkWireLookup measures a single pipelined Lookup round trip
// over real loopback TCP, many goroutines sharing the pooled client —
// the RPC plane's end-to-end per-op figure the README compares against
// the JSON plane.
func BenchmarkWireLookup(b *testing.B) {
	addr, stop := benchServer(b)
	defer stop()
	c, err := Dial(addr, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	var x atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := c.Lookup("bench", int(x.Add(1)%64)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWireLookupBatchPipelined is BenchmarkWireLookupBatch with a
// deep in-flight window (8 goroutines per proc share the pooled
// connections), so the group-flush writev on the way out and the
// server's log-round coalescing on the way back are actually
// exercised — the single-caller variant is pure round-trip latency and
// never batches. This is the per-core throughput figure.
func BenchmarkWireLookupBatchPipelined(b *testing.B) {
	addr, stop := benchServer(b)
	defer stop()
	c, err := Dial(addr, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		xs := make([]int, 16)
		phis := make([]int, 16)
		for i := range xs {
			xs[i] = i * 3 % 64
		}
		for pb.Next() {
			if _, err := c.LookupBatch("bench", xs, phis); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkWireLookupBatch measures the vectorized read path: one
// frame each way resolves 16 targets, the shape loadgen's RPC driver
// uses.
func BenchmarkWireLookupBatch(b *testing.B) {
	addr, stop := benchServer(b)
	defer stop()
	c, err := Dial(addr, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		xs := make([]int, 16)
		phis := make([]int, 16)
		for i := range xs {
			xs[i] = i * 3 % 64
		}
		for pb.Next() {
			if _, err := c.LookupBatch("bench", xs, phis); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
