package fleet

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"ftnet/internal/ft"
)

func TestCacheMatchesNewMapping(t *testing.T) {
	c := NewCache(8)
	p := ft.Params{M: 2, H: 4, K: 3}
	sets := [][]int{nil, {0}, {3, 7}, {1, 9, 16}}
	for _, faults := range sets {
		got, err := c.Get(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatalf("Get(%v): %v", faults, err)
		}
		want, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < p.NTarget(); x++ {
			if got.Phi(x) != want.Phi(x) {
				t.Fatalf("faults %v: Phi(%d) = %d, want %d", faults, x, got.Phi(x), want.Phi(x))
			}
		}
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 5; i++ {
		if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
	if st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard: the classic LRU semantics are exact.
	c := NewCacheShards(2, 1)
	a, b, d := []int{0}, []int{1}, []int{2}
	mustGet := func(f []int) {
		t.Helper()
		if _, err := c.Get(16, 18, f); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(a)
	mustGet(b)
	mustGet(a) // refresh a: b is now LRU
	mustGet(d) // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("evictions/size = %d/%d, want 1/2", st.Evictions, st.Size)
	}
	mustGet(a) // still cached
	if got := c.Stats().Hits; got != 2 {
		t.Fatalf("hits = %d, want 2 (a twice)", got)
	}
	mustGet(b) // was evicted: a fresh miss
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (a, b, d, b again)", got)
	}
}

func TestCacheCanonicalizesUnsortedFaults(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get(16, 18, []int{5, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Size != 1 {
		t.Fatalf("unsorted set got its own entry: %+v", st)
	}
	want, _ := ft.NewMapping(16, 18, []int{2, 5})
	if m.Phi(2) != want.Phi(2) {
		t.Fatalf("Phi(2) = %d, want %d", m.Phi(2), want.Phi(2))
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8)
	bad := []int{99} // out of range for nHost=18
	for i := 0; i < 3; i++ {
		if _, err := c.Get(16, 18, bad); err == nil {
			t.Fatal("invalid fault set accepted")
		}
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("error entry retained: size = %d", st.Size)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (errors must not be served from cache)", st.Misses)
	}
}

// TestCacheShardStatsAggregate spreads distinct fault sets over the
// shards and checks that the per-shard stats sum to the aggregate.
func TestCacheShardStatsAggregate(t *testing.T) {
	c := NewCacheShards(64, 8)
	for i := 0; i < 20; i++ {
		if _, err := c.Get(16, 18, []int{i % 18}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(16, 18, []int{i % 18}); err != nil { // guaranteed hit
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if len(st.Shards) != 8 {
		t.Fatalf("shard stats count = %d, want 8", len(st.Shards))
	}
	var size int
	var hits, misses, evictions uint64
	for _, sh := range st.Shards {
		size += sh.Size
		hits += sh.Hits
		misses += sh.Misses
		evictions += sh.Evictions
	}
	if size != st.Size || hits != st.Hits || misses != st.Misses || evictions != st.Evictions {
		t.Fatalf("per-shard stats do not sum to aggregate: %+v", st)
	}
	if st.Misses != 18 || st.Hits != 22 {
		t.Fatalf("hits/misses = %d/%d, want 22/18", st.Hits, st.Misses)
	}
	if st.Capacity < 64 {
		t.Fatalf("capacity = %d, want >= requested 64", st.Capacity)
	}
}

// TestCacheShardedConcurrent hammers a sharded cache from many
// goroutines over a working set; under -race this is the sharding
// correctness proof, and every answer is cross-checked.
func TestCacheShardedConcurrent(t *testing.T) {
	c := NewCacheShards(32, 4)
	sets := [][]int{nil, {0}, {1}, {2, 5}, {3, 7}, {1, 9, 16}}
	want := make([]*ft.Mapping, len(sets))
	for i, f := range sets {
		m, err := ft.NewMapping(16, 20, f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := (i + w) % len(sets)
				m, err := c.Get(16, 20, sets[j])
				if err != nil {
					t.Errorf("Get(%v): %v", sets[j], err)
					return
				}
				if m.Phi(7) != want[j].Phi(7) {
					t.Errorf("faults %v: Phi(7) = %d, want %d", sets[j], m.Phi(7), want[j].Phi(7))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != uint64(len(sets)) {
		t.Fatalf("misses = %d, want %d (one per distinct set)", st.Misses, len(sets))
	}
}

// TestCacheHitPathAllocFree pins the binary-key scheme's contract: a
// cache hit builds its key in the shard's reused scratch buffer and
// probes the map with the non-allocating string(bytes) form, so
// serving a warmed fault pattern allocates nothing at all.
func TestCacheHitPathAllocFree(t *testing.T) {
	c := NewCache(8)
	faults := []int{2, 5, 11}
	if _, err := c.Get(16, 20, faults); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Get(16, 20, faults); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCacheBinaryKeysDistinguishShapes guards the fixed-width key
// encoding against aliasing: requests that concatenate to the same
// digit stream but differ in shape (sizes vs fault values) must get
// distinct entries.
func TestCacheBinaryKeysDistinguishShapes(t *testing.T) {
	c := NewCacheShards(8, 1)
	a, err := c.Get(16, 18, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Get(16, 17, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 || st.Size != 3 {
		t.Fatalf("three distinct shapes shared entries: %+v", st)
	}
	if a.NHost != 18 || len(a.Faults) != 1 || len(b.Faults) != 2 || d.NHost != 17 {
		t.Fatalf("aliased mappings: a=%+v b=%+v d=%+v", a, b, d)
	}
}

// TestCacheAdmissionDoorkeeper pins the doorkeeper contract: a fault
// pattern's first sighting is computed but NOT admitted to the LRU
// (and counted as admission-rejected); its second miss admits it; from
// then on it hits. One-off patterns therefore never occupy a slot.
func TestCacheAdmissionDoorkeeper(t *testing.T) {
	c := NewCacheConfig(CacheConfig{Capacity: 8, Shards: 1, Admission: true})
	want, err := ft.NewMapping(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}

	// First sighting: correct answer, nothing cached.
	m, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phi(7) != want.Phi(7) {
		t.Fatalf("unadmitted compute Phi(7) = %d, want %d", m.Phi(7), want.Phi(7))
	}
	st := c.Stats()
	if st.Size != 0 || st.AdmissionRejected != 1 || st.Misses != 1 {
		t.Fatalf("after first sight: %+v, want size 0, rejected 1", st)
	}
	if st.Shards[0].AdmissionRejected != 1 {
		t.Fatalf("per-shard admission stats missing: %+v", st.Shards[0])
	}

	// Second sighting: the doorkeeper has seen it — admitted and cached.
	if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Size != 1 || st.Misses != 2 || st.AdmissionRejected != 1 {
		t.Fatalf("after second sight: %+v, want size 1", st)
	}

	// Third: a plain hit.
	if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("after third sight: %+v, want 1 hit", st)
	}

	// A stream of one-off patterns computes correctly and stays out of
	// the LRU entirely.
	for i := 0; i < 10; i++ {
		if _, err := c.Get(16, 18, []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("one-off patterns washed the cache: %+v", st)
	}
}

// TestCacheSingleFlight hammers one cold key from many goroutines; the
// single-flight path must compute the mapping exactly once.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	const workers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m, err := c.Get(1<<12, 1<<12+6, []int{10, 20, 30})
			if err != nil || m == nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
}

// doorWorkload replays a cluster-shaped fault-pattern stream against
// c: a fleet of instances whose fault sets random-walk under an event
// storm. Most transitions land back on a small recurring pool (the
// same racks fail, the same repairs roll out); the rest are one-off
// sets drawn from a keyspace wide enough (C(72,8) ~ 1e10) that they
// essentially never recur. Lookups between transitions replay the
// instance's current pattern — the working set admission protects.
// Deterministic for a given seed.
func doorWorkload(c *Cache, ops int, seed int64) {
	const (
		nTarget = 64
		nHost   = 72
		k       = 8
		fleetSz = 12
		poolSz  = 16
	)
	rng := rand.New(rand.NewSource(seed))
	randSet := func() []int {
		seen := make(map[int]bool, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := rng.Intn(nHost)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Ints(out)
		return out
	}
	pool := make([][]int, poolSz)
	for i := range pool {
		pool[i] = randSet()
	}
	cur := make([][]int, fleetSz)
	for i := range cur {
		cur[i] = pool[rng.Intn(poolSz)]
	}
	for i := 0; i < ops; i++ {
		inst := rng.Intn(fleetSz)
		if rng.Float64() < 0.10 { // a transition lands a new pattern
			if rng.Float64() < 0.5 {
				cur[inst] = pool[rng.Intn(poolSz)]
			} else {
				cur[inst] = randSet()
			}
		}
		if _, err := c.Get(nTarget, nHost, cur[inst]); err != nil {
			panic(err)
		}
	}
}

// TestCacheDoorAgeSweep runs the cluster-shaped workload across
// candidate doorkeeper reset intervals and logs hit rate and the
// admission_rejected ratio — the sweep DefaultDoorAgePeriod was picked
// from (go test -run TestCacheDoorAgeSweep -v). It asserts only the
// orderings the default relies on: aggressive aging rejects more
// (including returning patterns it forgot), and the long end must not
// lose hit rate to the short end — the plateau the default sits on.
func TestCacheDoorAgeSweep(t *testing.T) {
	const ops = 120000
	type point struct {
		period   int
		hitRate  float64
		rejRatio float64
	}
	var pts []point
	for _, period := range []int{256, 1024, 4096, 16384, 65536} {
		c := NewCacheConfig(CacheConfig{
			Capacity: 24, Shards: 1, Admission: true, DoorAgePeriod: period,
		})
		doorWorkload(c, ops, 1)
		st := c.Stats()
		p := point{
			period:   period,
			hitRate:  float64(st.Hits) / float64(st.Hits+st.Misses),
			rejRatio: float64(st.AdmissionRejected) / float64(st.Misses),
		}
		pts = append(pts, p)
		t.Logf("period %6d: hit rate %.4f, admission_rejected/misses %.4f (hits %d misses %d rejected %d evictions %d)",
			p.period, p.hitRate, p.rejRatio, st.Hits, st.Misses, st.AdmissionRejected, st.Evictions)
	}
	short, long := pts[0], pts[len(pts)-1]
	if short.rejRatio <= long.rejRatio {
		t.Errorf("short interval rejected no more than the long end: %.4f (period %d) vs %.4f (period %d)",
			short.rejRatio, short.period, long.rejRatio, long.period)
	}
	if long.hitRate < short.hitRate {
		t.Errorf("hit rate fell from %.4f (period %d) to %.4f (period %d): the plateau ordering inverted",
			short.hitRate, short.period, long.hitRate, long.period)
	}
}

// TestCacheDoorAgeDefaultRatio pins the committed default under the
// same cluster-shaped churn: the doorkeeper must still be filtering
// first sightings (a dead filter drives the ratio to zero), must not
// be rejecting the recurring working set (the short-interval failure
// mode pushes the ratio past 0.3 here), and must hold the plateau hit
// rate the default was picked for.
func TestCacheDoorAgeDefaultRatio(t *testing.T) {
	c := NewCacheConfig(CacheConfig{Capacity: 24, Shards: 1, Admission: true})
	doorWorkload(c, 120000, 1)
	st := c.Stats()
	rejRatio := float64(st.AdmissionRejected) / float64(st.Misses)
	hitRate := float64(st.Hits) / float64(st.Hits+st.Misses)
	t.Logf("default period %d: hit rate %.4f, admission_rejected/misses %.4f", DefaultDoorAgePeriod, hitRate, rejRatio)
	if rejRatio < 0.02 {
		t.Errorf("admission_rejected/misses = %.4f, want >= 0.02: the doorkeeper stopped filtering first sightings", rejRatio)
	}
	if rejRatio > 0.30 {
		t.Errorf("admission_rejected/misses = %.4f, want <= 0.30: the filter is forgetting the recurring working set", rejRatio)
	}
	if hitRate < 0.92 {
		t.Errorf("hit rate = %.4f, want >= 0.92 (the plateau the default was swept onto)", hitRate)
	}
}
