// Package route implements the routing algorithms the target topologies
// were designed for: digit-shifting routes on de Bruijn graphs (with
// overlap shortening), shuffle-exchange routes built from shuffle and
// exchange steps, and the lifting of any target route onto a
// reconfigured fault-tolerant host.
package route

import (
	"fmt"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// DeBruijnPath returns the canonical h-hop route from u to v in B_{m,h}:
// shift in the digits of v most-significant first. Consecutive nodes are
// de Bruijn neighbors; repeated nodes (self-loop steps) are collapsed.
func DeBruijnPath(u, v int, p debruijn.Params) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, fmt.Errorf("route: nodes (%d,%d) out of range [0,%d)", u, v, n)
	}
	d := num.MustToDigits(v, p.M, p.H)
	path := []int{u}
	cur := u
	for _, digit := range d.D {
		next := num.X(cur, p.M, digit, n)
		if next != cur {
			path = append(path, next)
			cur = next
		}
	}
	if cur != v {
		return nil, fmt.Errorf("route: internal error, route ended at %d not %d", cur, v)
	}
	return path, nil
}

// Overlap returns the length of the longest suffix of u's digit string
// that equals a prefix of v's digit string (at most h). Routing only
// needs to shift in the remaining h - Overlap digits.
func Overlap(u, v int, p debruijn.Params) int {
	du := num.MustToDigits(u, p.M, p.H)
	dv := num.MustToDigits(v, p.M, p.H)
	for o := p.H; o > 0; o-- {
		match := true
		for i := 0; i < o; i++ {
			// suffix of u of length o: du.D[h-o+i]; prefix of v: dv.D[i]
			if du.D[p.H-o+i] != dv.D[i] {
				match = false
				break
			}
		}
		if match {
			return o
		}
	}
	return 0
}

// ShortPath returns the overlap-shortened forward route from u to v:
// h - Overlap(u,v) shifts. It is the shortest forward (successor-only)
// route in the de Bruijn digraph.
func ShortPath(u, v int, p debruijn.Params) ([]int, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, fmt.Errorf("route: nodes (%d,%d) out of range [0,%d)", u, v, n)
	}
	o := Overlap(u, v, p)
	dv := num.MustToDigits(v, p.M, p.H)
	path := []int{u}
	cur := u
	for i := o; i < p.H; i++ {
		next := num.X(cur, p.M, dv.D[i], n)
		if next != cur {
			path = append(path, next)
			cur = next
		}
	}
	if cur != v {
		return nil, fmt.Errorf("route: short path ended at %d not %d", cur, v)
	}
	return path, nil
}

// SEStep is one move in a shuffle-exchange route.
type SEStep struct {
	Exchange bool // true: exchange edge (x -> x^1); false: shuffle (x -> rot left)
}

// SEPath routes from u to v on SE_h by emulating the de Bruijn shift
// route: h rounds of (shuffle, optional exchange). Each round rotates
// the address left and, if the incoming low bit differs from the wanted
// digit of v, fixes it over the exchange edge. The returned node
// sequence has consecutive SE_h neighbors; length at most 2h+1 nodes.
func SEPath(u, v, h int) ([]int, []SEStep, error) {
	if h < 1 {
		return nil, nil, fmt.Errorf("route: h=%d must be >= 1", h)
	}
	n := num.MustIPow(2, h)
	if u < 0 || u >= n || v < 0 || v >= n {
		return nil, nil, fmt.Errorf("route: nodes (%d,%d) out of range [0,%d)", u, v, n)
	}
	path := []int{u}
	var steps []SEStep
	cur := u
	for i := h - 1; i >= 0; i-- {
		// Shuffle: rotate left (no-op on 00..0 / 11..1 where rot is a
		// self-loop; the address is unchanged there anyway).
		next := num.RotLeft(cur, 2, h)
		if next != cur {
			path = append(path, next)
			steps = append(steps, SEStep{Exchange: false})
			cur = next
		}
		want := (v >> i) & 1
		if cur&1 != want {
			next = cur ^ 1
			path = append(path, next)
			steps = append(steps, SEStep{Exchange: true})
			cur = next
		}
	}
	if cur != v {
		return nil, nil, fmt.Errorf("route: SE path ended at %d not %d", cur, v)
	}
	return path, steps, nil
}

// Lift maps a target-graph path through an embedding phi (for example a
// reconfiguration map): hop i becomes phi[path[i]]. With a valid
// embedding the lifted path is a path of the host graph with the SAME
// length — the paper's construction has dilation 1, so routing suffers
// no slowdown after reconfiguration.
func Lift(path []int, phi []int) ([]int, error) {
	out := make([]int, len(path))
	for i, x := range path {
		if x < 0 || x >= len(phi) {
			return nil, fmt.Errorf("route: path node %d outside embedding domain [0,%d)", x, len(phi))
		}
		out[i] = phi[x]
	}
	return out, nil
}

// Validate checks that consecutive path nodes are adjacent in g (and
// that the path is nonempty). It reports the first violation.
func Validate(path []int, g *graph.Graph) error {
	if len(path) == 0 {
		return fmt.Errorf("route: empty path")
	}
	for i := 0; i+1 < len(path); i++ {
		if !g.HasEdge(path[i], path[i+1]) {
			return fmt.Errorf("route: hop %d: (%d,%d) is not an edge", i, path[i], path[i+1])
		}
	}
	return nil
}
