package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	sharding "ftnet/internal/shard"
)

// The shard-plane routes, served next to the instance API so every
// daemon is simultaneously a data node and a migration endpoint:
//
//	GET  /v1/ring            installed topology (404 when unsharded)
//	POST /v1/ring            install a topology {"self","peers","replicas"}
//	POST /v1/rebalance       migrate every displaced instance to its owner
//	POST /v1/migrate         migrate one instance {"id","peer"}
//	POST /v1/migrate/stage   (daemon-to-daemon) binary checkpoint frame
//	POST /v1/migrate/commit  (daemon-to-daemon) binary suffix frame
//	POST /v1/migrate/abort   (daemon-to-daemon) drop a staged instance
//	GET  /v1/migrate/state   (daemon-to-daemon) this daemon's view of an
//	                         id: absent | staged | committed (+epoch) —
//	                         the probe resolveHandoff and ReconcilePins
//	                         settle ambiguous handoffs with
//
// stage/commit bodies are the canonical shard.Migration encoding
// (application/octet-stream), the same bytes FuzzMigrationDecode
// hammers; everything else is JSON.

func (s *apiServer) getRing(w http.ResponseWriter, r *http.Request) {
	info, ok := s.mgr.Topology()
	if !ok {
		writeError(w, errorf(ErrNotFound, "fleet: no shard topology installed"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// RingRequest is the body of POST /v1/ring.
type RingRequest struct {
	Self     string            `json:"self"`
	Peers    map[string]string `json:"peers"`
	Replicas int               `json:"replicas,omitempty"`
}

func (s *apiServer) setRing(w http.ResponseWriter, r *http.Request) {
	var req RingRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	// A self outside peers is the spectator posture, not a typo worth
	// rejecting: the daemon owns nothing on the installed ring and
	// redirects every instance request to its owner — how a
	// not-yet-joined member boots behind a routing proxy, so traffic
	// misdirected to it converges through its hints instead of 404ing.
	s.mgr.SetTopology(req.Self, req.Peers, req.Replicas)
	info, ok := s.mgr.Topology()
	if !ok {
		writeJSON(w, http.StatusOK, map[string]bool{"sharded": false})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// RebalanceResponse is the body of POST /v1/rebalance.
type RebalanceResponse struct {
	Migrated []MigrateStats `json:"migrated"`
	Count    int            `json:"count"`
	Error    string         `json:"error,omitempty"` // set when the run stopped early
}

func (s *apiServer) rebalance(w http.ResponseWriter, r *http.Request) {
	out, err := s.mgr.Rebalance()
	resp := RebalanceResponse{Migrated: out, Count: len(out)}
	if err != nil {
		resp.Error = err.Error()
		writeJSON(w, errCode(err), resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// MigrateRequest is the body of POST /v1/migrate.
type MigrateRequest struct {
	ID   string `json:"id"`
	Peer string `json:"peer"`
}

func (s *apiServer) migrateOut(w http.ResponseWriter, r *http.Request) {
	var req MigrateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	st, err := s.mgr.MigrateOut(req.ID, req.Peer)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// readMigration decodes a binary migration frame from a request body,
// enforcing the codec's size cap before buffering.
func readMigration(r *http.Request) (sharding.Migration, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, sharding.MaxMigrationSize+1))
	if err != nil {
		return sharding.Migration{}, fmt.Errorf("read migration body: %v", err)
	}
	return sharding.DecodeMigration(body)
}

func (s *apiServer) migrateStage(w http.ResponseWriter, r *http.Request) {
	mig, err := readMigration(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.mgr.StageMigration(mig); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": mig.ID, "staged": true})
}

func (s *apiServer) migrateCommit(w http.ResponseWriter, r *http.Request) {
	mig, err := readMigration(r)
	if err != nil {
		writeError(w, err)
		return
	}
	epoch, err := s.mgr.CommitMigration(mig)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": mig.ID, "epoch": epoch})
}

func (s *apiServer) migrateAbort(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, fmt.Errorf("bad request body: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": req.ID, "aborted": s.mgr.AbortMigration(req.ID)})
}

func (s *apiServer) migrateState(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, fmt.Errorf("missing id query parameter"))
		return
	}
	state, epoch := s.mgr.MigrationState(id)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": state, "epoch": epoch})
}
