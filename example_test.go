package ftnet_test

import (
	"fmt"
	"log"

	"ftnet"
)

// Build a fault-tolerant de Bruijn machine and reconfigure around two
// dead processors.
func ExampleNewDeBruijn2() {
	net, err := ftnet.NewDeBruijn2(4, 2) // B^2_{2,4}: 18 nodes, degree <= 12
	if err != nil {
		log.Fatal(err)
	}
	m, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host nodes:", net.Host.N())
	fmt.Println("target 3 runs on host:", m.Phi(3))
	fmt.Println("target 11 runs on host:", m.Phi(11))
	// Output:
	// host nodes: 18
	// target 3 runs on host: 4
	// target 11 runs on host: 13
}

// Prove (k,G)-tolerance on an instance by enumerating every fault set.
func ExampleDeBruijnNet_VerifyExhaustive() {
	net, err := ftnet.NewDeBruijn(2, 3, 2) // 10 nodes, C(10,2)=45 fault sets
	if err != nil {
		log.Fatal(err)
	}
	if err := net.VerifyExhaustive(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("every 2-fault set tolerated")
	// Output:
	// every 2-fault set tolerated
}

// The fault-tolerant shuffle-exchange network shares the de Bruijn host.
func ExampleNewShuffleExchange() {
	net, err := ftnet.NewShuffleExchange(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	phi, err := net.Reconfigure([]int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host degree bound:", 4*net.P.K+4)
	fmt.Println("SE node 0 runs on host:", phi[0])
	// Output:
	// host degree bound: 8
	// SE node 0 runs on host: 1
}

// Hayes's classic fault-tolerant ring falls out of the generalized
// construction.
func ExampleNewRing() {
	net, err := ftnet.NewRing(8, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host nodes:", net.Host.N())
	fmt.Println("host degree:", net.Host.MaxDegree())
	// Output:
	// host nodes: 10
	// host degree: 6
}
