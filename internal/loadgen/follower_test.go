package loadgen

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ftnet/internal/fleet"
)

// TestVerifyFollowerConverges runs a real leader + follower pair in
// process, drives a write-storm through the leader's HTTP API, and
// holds the pair to VerifyFollower's contract — the same check the CI
// replication job runs against separate daemons.
func TestVerifyFollowerConverges(t *testing.T) {
	leaderMgr := fleet.NewManager(fleet.Options{})
	defer leaderMgr.Close()
	leader := httptest.NewServer(fleet.NewHTTPHandler(leaderMgr))
	t.Cleanup(leader.Close)

	followerMgr := fleet.NewManager(fleet.Options{})
	defer followerMgr.Close()
	follower := httptest.NewServer(fleet.NewHTTPHandlerOpts(followerMgr, fleet.HandlerOptions{ReadOnly: true}))
	t.Cleanup(follower.Close)

	f, err := fleet.NewFollower(followerMgr, leader.URL, fleet.FollowerOptions{
		Heartbeat: 50 * time.Millisecond,
		Backoff:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go f.Run(ctx)

	cfg := Config{
		Addr:      leader.URL,
		Instances: 2,
		Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 5, K: 4},
		Workers:   4,
		Requests:  400,
		Scenario:  WriteStorm,
		Seed:      7,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Fatalf("%d load errors", res.Errors)
	}

	fv, err := VerifyFollower(leader.URL, follower.URL, cfg.InstanceIDs(), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if fv.Instances != cfg.Instances {
		t.Fatalf("verified %d instances, want %d", fv.Instances, cfg.Instances)
	}

	// A wrong follower is caught: point the check at the leader's ids
	// on a daemon that never replicated them.
	empty := fleet.NewManager(fleet.Options{})
	defer empty.Close()
	blank := httptest.NewServer(fleet.NewHTTPHandler(empty))
	t.Cleanup(blank.Close)
	if _, err := VerifyFollower(leader.URL, blank.URL, cfg.InstanceIDs(), 200*time.Millisecond); err == nil {
		t.Fatal("VerifyFollower accepted a daemon with no replica state")
	}
}
