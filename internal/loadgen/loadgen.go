// Package loadgen is the shared HTTP load driver for the ftnetd
// reconfiguration daemon: it creates a fleet of instances, drives them
// with a configurable mix of phi lookups and fault/repair events
// (single or atomic bursts via events:batch) from concurrent workers,
// and reports throughput and latency percentiles.
//
// cmd/ftload wraps it on the command line; internal/experiments runs
// its named scenarios against an in-process daemon so service
// throughput is tracked like a paper figure.
package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/obs"
	"ftnet/internal/wire"
)

// Scenario names a traffic shape: what fraction of operations are
// reconfiguration events and how many events each reconfiguration op
// carries (Batch 1 posts single events; Batch > 1 posts atomic bursts
// through events:batch). Writers > 0 switches to role-split mode: that
// many workers become dedicated writers issuing nothing but sustained
// events:batch bursts, every remaining worker issues nothing but
// lookups, and EventFrac is ignored — the shape that measures read
// latency while the write path storms.
type Scenario struct {
	Name      string
	EventFrac float64
	Batch     int
	Writers   int
}

// The named scenarios. ReadHeavy is the shape a fleet of
// mostly-healthy machines produces — almost pure lookups, the path the
// lock-free snapshot read serves. BurstHeavy models correlated
// failures (a rack at a time): a third of operations are multi-event
// bursts applied atomically. WriteStorm pins dedicated writers on
// back-to-back atomic bursts while the other workers measure lookup
// latency — the p99-under-write-storm figure the lock-free read path
// exists for. Mixed is the historical ftload default.
var (
	Mixed      = Scenario{Name: "mixed", EventFrac: 0.10, Batch: 1}
	ReadHeavy  = Scenario{Name: "read-heavy", EventFrac: 0.01, Batch: 1}
	BurstHeavy = Scenario{Name: "burst-heavy", EventFrac: 0.30, Batch: 4}
	WriteStorm = Scenario{Name: "write-storm", EventFrac: 1, Batch: 4, Writers: 2}
)

// Scenarios lists every named scenario.
func Scenarios() []Scenario { return []Scenario{Mixed, ReadHeavy, BurstHeavy, WriteStorm} }

// ByName returns the named scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Config describes one load run.
type Config struct {
	Addr      string // base URL of the daemon
	Instances int
	Spec      fleet.Spec
	Workers   int
	Requests  int // total operations (an atomic burst counts as one)
	Scenario  Scenario
	Seed      int64
	// IDPrefix prefixes the driven instance ids. It defaults to "load"
	// plus the scenario name, so different scenarios against one daemon
	// get their own instances: burst scenarios need rack-aligned fault
	// state, and leftovers from another scenario's traffic would make
	// whole-rack bursts permanently rejectable.
	IDPrefix string
	// ScrapeObs fills Result.Service with the daemon's /v1/stats obs
	// section after the run — the server-side histograms (request
	// latency by route, commit stages, compaction pauses) the
	// BENCH_service.json artifact is built from.
	ScrapeObs bool
	// RPCAddr switches the data plane: when non-empty, lookups and
	// event bursts travel the binary RPC plane at this TCP address
	// (host:port). The control plane — instance creation, health
	// checks, verification, stats scraping — stays on the JSON API at
	// Addr.
	RPCAddr string
	// RPCLookupBatch vectorizes RPC reads: each lookup op issues one
	// LookupBatch frame carrying this many targets (<= 1 issues single
	// Lookup frames; 0 selects DefaultRPCLookupBatch). Every resolved
	// target counts as one lookup.
	RPCLookupBatch int
	// RPCConns sets the wire client's connection pool size (0 selects
	// a small pool so the run exercises pipelining, not a
	// connection-per-worker).
	RPCConns int
}

// DefaultRPCLookupBatch is the vector width of RPC-plane lookups when
// Config.RPCLookupBatch is unset.
const DefaultRPCLookupBatch = 16

// Validate checks the run parameters.
func (cfg Config) Validate() error {
	if cfg.Instances < 1 || cfg.Workers < 1 || cfg.Requests < 1 {
		return fmt.Errorf("loadgen: instances, workers and requests must be positive")
	}
	if cfg.Scenario.Batch < 1 {
		return fmt.Errorf("loadgen: scenario batch must be >= 1")
	}
	if cfg.Scenario.EventFrac < 0 || cfg.Scenario.EventFrac > 1 {
		return fmt.Errorf("loadgen: event fraction %v outside [0,1]", cfg.Scenario.EventFrac)
	}
	if cfg.Scenario.Writers < 0 {
		return fmt.Errorf("loadgen: writer count %d negative", cfg.Scenario.Writers)
	}
	if cfg.Scenario.Writers > 0 && cfg.Scenario.Writers >= cfg.Workers {
		return fmt.Errorf("loadgen: %d dedicated writers leave no readers among %d workers",
			cfg.Scenario.Writers, cfg.Workers)
	}
	if err := cfg.Spec.Validate(); err != nil {
		return err
	}
	if _, nHost := TargetHostSizes(cfg.Spec); cfg.Scenario.Batch > nHost {
		return fmt.Errorf("loadgen: burst size %d exceeds the %d host nodes", cfg.Scenario.Batch, nHost)
	}
	return nil
}

// Result is the merged measurement of one run. Both latency slices are
// sorted; LookupLatencies is the read-side subset, the distribution a
// write-storm run exists to measure.
type Result struct {
	Lookups   int // successful phi queries
	Events    int // individual events applied (bursts count each event)
	Batches   int // accepted event transitions
	Rejected  int // rejected transitions (budget/state enforcement)
	Errors    int // unexpected application failures (bad status, not connection trouble)
	Transport int // connection-level failures: dial, reset, timeout
	RPC       bool // the run drove the binary RPC plane
	Elapsed   time.Duration
	Latencies       []time.Duration // every successful operation, sorted
	LookupLatencies []time.Duration // lookups only, sorted
	// Service is the daemon's server-side metrics snapshot (request,
	// commit-stage, lag and pause histograms), scraped after the run
	// when Config.ScrapeObs is set; nil otherwise.
	Service *obs.Export
}

// Ops returns the number of completed operations (lookups plus event
// transitions, accepted or rejected).
func (r Result) Ops() int { return r.Lookups + r.Batches + r.Rejected }

// Throughput returns completed operations per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops()) / r.Elapsed.Seconds()
}

// LookupThroughput returns resolved lookups per second — on the RPC
// plane a vectorized op resolves many, so this is the figure the
// lookups_per_sec SLO family records.
func (r Result) LookupThroughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Lookups) / r.Elapsed.Seconds()
}

// Percentile returns the p-th percentile (0 <= p <= 100) of the
// latency distribution using nearest-rank.
func (r Result) Percentile(p float64) time.Duration {
	return percentile(r.Latencies, p)
}

// LookupPercentile returns the p-th percentile over lookups only: the
// read-side latency while (in a write-storm run) the write path is
// saturated.
func (r Result) LookupPercentile(p float64) time.Duration {
	return percentile(r.LookupLatencies, p)
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// opStats accumulates one worker's measurements; workers keep their
// own and Run merges, so the hot loop takes no locks. Lookup latencies
// are kept apart from event latencies so the read-side distribution
// survives the merge.
type opStats struct {
	lookups    int
	events     int
	batches    int
	rejected   int
	errors     int
	transport  int
	eventLats  []time.Duration
	lookupLats []time.Duration
}

// InstanceIDs returns the ids a Run with this config creates and
// drives (applying the default IDPrefix rule), so follow-up probes —
// e.g. VerifyFollower — can name the same instances.
func (cfg Config) InstanceIDs() []string {
	prefix := cfg.IDPrefix
	if prefix == "" {
		prefix = "load"
		if cfg.Scenario.Name != "" {
			prefix += "-" + cfg.Scenario.Name
		}
	}
	ids := make([]string, cfg.Instances)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return ids
}

// Run executes the configured load against the daemon and merges the
// per-worker measurements.
func Run(cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "load"
		if cfg.Scenario.Name != "" {
			cfg.IDPrefix += "-" + cfg.Scenario.Name
		}
	}
	client := &http.Client{Timeout: 30 * time.Second}
	ids, err := createFleet(client, cfg)
	if err != nil {
		return Result{}, err
	}

	// The RPC plane shares one pooled wire client across all workers:
	// a few persistent connections carrying everyone's pipelined
	// requests is the shape the plane is built for, not a connection
	// per worker.
	var rc *wire.Client
	if cfg.RPCAddr != "" {
		rc, err = wire.Dial(cfg.RPCAddr, wire.Options{Conns: cfg.RPCConns})
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: rpc plane unreachable: %v", err)
		}
		defer rc.Close()
	}
	lookupBatch := cfg.RPCLookupBatch
	if lookupBatch == 0 {
		lookupBatch = DefaultRPCLookupBatch
	}

	nTarget, nHost := TargetHostSizes(cfg.Spec)
	perWorker := make([]opStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		// Spread the request budget over workers; the first few absorb
		// the remainder.
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			var scratch rpcScratch
			writer := w < cfg.Scenario.Writers // role-split mode: first workers are dedicated writers
			for i := 0; i < n; i++ {
				id := ids[rng.Intn(len(ids))]
				events := writer || (cfg.Scenario.Writers == 0 && rng.Float64() < cfg.Scenario.EventFrac)
				switch {
				case events && rc != nil:
					driveEventsRPC(rc, id, rng, nHost, cfg.Scenario.Batch, st)
				case events:
					driveEvents(client, cfg.Addr, id, rng, nHost, cfg.Scenario.Batch, st)
				case rc != nil:
					driveLookupRPC(rc, id, rng, nTarget, lookupBatch, &scratch, st)
				default:
					driveLookup(client, cfg.Addr, id, rng.Intn(nTarget), st)
				}
			}
		}(w, n)
	}
	wg.Wait()

	res := mergeStats(perWorker, time.Since(start))
	res.RPC = rc != nil
	if cfg.ScrapeObs {
		e, err := FetchObs(cfg.Addr)
		if err != nil {
			return res, err
		}
		res.Service = e
	}
	return res, nil
}

func sortDurations(d []time.Duration) {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
}

// createFleet health-checks the daemon and creates the run's instances
// (tolerating ones left over from a prior run), returning their ids.
func createFleet(client *http.Client, cfg Config) ([]string, error) {
	resp, err := client.Get(cfg.Addr + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("loadgen: daemon unreachable: %v", err)
	}
	resp.Body.Close()

	ids := make([]string, cfg.Instances)
	for i := range ids {
		ids[i] = fmt.Sprintf("%s-%d", cfg.IDPrefix, i)
		body, _ := json.Marshal(fleet.CreateRequest{ID: ids[i], Spec: cfg.Spec})
		resp, err := client.Post(cfg.Addr+"/v1/instances", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, fmt.Errorf("loadgen: create %s: %v", ids[i], err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
			return nil, fmt.Errorf("loadgen: create %s: status %d", ids[i], resp.StatusCode)
		}
	}
	return ids, nil
}

// TargetHostSizes returns the node counts the spec induces.
func TargetHostSizes(spec fleet.Spec) (nTarget, nHost int) {
	if spec.Kind == fleet.KindShuffle {
		p := ft.SEParams{H: spec.H, K: spec.K}
		return p.NTarget(), p.NHost()
	}
	p := ft.Params{M: spec.M, H: spec.H, K: spec.K}
	return p.NTarget(), p.NHost()
}

// driveEvents issues one reconfiguration operation: a single event
// POST for batch 1, an atomic events:batch burst otherwise. Single
// events are fault or repair 50/50 on a random node. Bursts model
// correlated failures: a whole "rack" of adjacent nodes (drawn from a
// small working set, so fault patterns recur and hit the mapping
// cache) fails together or is repaired together. Rejected operations
// (budget exhausted, repairing a healthy node, a burst with one bad
// event) are the daemon correctly enforcing the paper's k-fault
// precondition, not failures.
func driveEvents(client *http.Client, addr, id string, rng *rand.Rand, nHost, batch int, st *opStats) {
	events := makeEvents(rng, nHost, batch)
	var url string
	var body []byte
	if batch == 1 {
		url = addr + "/v1/instances/" + id + "/events"
		body, _ = json.Marshal(events[0])
	} else {
		url = addr + "/v1/instances/" + id + "/events:batch"
		body, _ = json.Marshal(fleet.BatchRequest{Events: events})
	}
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		st.transport++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		st.batches++
		st.events += batch
		st.eventLats = append(st.eventLats, time.Since(t0))
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusBadRequest:
		// The daemon enforcing the budget / state machine: expected.
		st.rejected++
		st.eventLats = append(st.eventLats, time.Since(t0))
	default:
		st.errors++
	}
}

func driveLookup(client *http.Client, addr, id string, x int, st *opStats) {
	t0 := time.Now()
	resp, err := client.Get(fmt.Sprintf("%s/v1/instances/%s/phi?x=%d", addr, id, x))
	if err != nil {
		st.transport++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.errors++
		return
	}
	st.lookups++
	st.lookupLats = append(st.lookupLats, time.Since(t0))
}

// makeEvents builds one reconfiguration op's events — the traffic
// shape shared by both planes: a random single event for batch 1, a
// whole "rack" of adjacent nodes for bursts, drawn from a small
// working set so fault patterns recur and hit the mapping cache.
func makeEvents(rng *rand.Rand, nHost, batch int) []fleet.Event {
	events := make([]fleet.Event, batch)
	kind := fleet.EventFault
	if rng.Intn(2) == 0 {
		kind = fleet.EventRepair
	}
	if batch == 1 {
		events[0] = fleet.Event{Kind: kind, Node: rng.Intn(nHost)}
		return events
	}
	racks := nHost / batch
	if racks > 4 {
		racks = 4 // small working set: rack failures recur
	}
	base := rng.Intn(racks) * batch
	for i := range events {
		events[i] = fleet.Event{Kind: kind, Node: base + i}
	}
	return events
}

// rpcScratch is a worker's reusable lookup vectors, so the RPC read
// loop allocates nothing per op.
type rpcScratch struct {
	xs   []int
	phis []int
}

func (s *rpcScratch) size(n int) {
	if cap(s.xs) < n {
		s.xs = make([]int, n)
		s.phis = make([]int, n)
	}
	s.xs, s.phis = s.xs[:n], s.phis[:n]
}

// driveEventsRPC is driveEvents over the wire plane: one ApplyBatch
// frame per op, classified exactly like the HTTP status mapping —
// conflict/budget/invalid are the daemon enforcing the paper's k-fault
// precondition, transport failures are counted apart.
func driveEventsRPC(rc *wire.Client, id string, rng *rand.Rand, nHost, batch int, st *opStats) {
	events := makeEvents(rng, nHost, batch)
	t0 := time.Now()
	_, err := rc.ApplyBatch(id, events)
	switch {
	case err == nil:
		st.batches++
		st.events += batch
		st.eventLats = append(st.eventLats, time.Since(t0))
	case wire.IsTransport(err):
		st.transport++
	case rejectedByStateMachine(err):
		st.rejected++
		st.eventLats = append(st.eventLats, time.Since(t0))
	default:
		st.errors++
	}
}

// rejectedByStateMachine mirrors the HTTP plane's 409/400 bucket:
// budget, conflict, and invalid-input rejections are expected
// enforcement, not failures.
func rejectedByStateMachine(err error) bool {
	if errors.Is(err, fleet.ErrConflict) { // covers ErrBudget, which wraps it
		return true
	}
	var werr *wire.Error
	return errors.As(err, &werr) && werr.Status == wire.StatusInvalid
}

// driveLookupRPC issues one vectorized read: a LookupBatch frame of
// `batch` random targets against one instance (one latency sample,
// `batch` lookups), or a single Lookup frame when batch <= 1.
func driveLookupRPC(rc *wire.Client, id string, rng *rand.Rand, nTarget, batch int, scratch *rpcScratch, st *opStats) {
	if batch <= 1 {
		t0 := time.Now()
		if _, _, err := rc.Lookup(id, rng.Intn(nTarget)); err != nil {
			countRPCFailure(err, st)
			return
		}
		st.lookups++
		st.lookupLats = append(st.lookupLats, time.Since(t0))
		return
	}
	scratch.size(batch)
	for i := range scratch.xs {
		scratch.xs[i] = rng.Intn(nTarget)
	}
	t0 := time.Now()
	if _, err := rc.LookupBatch(id, scratch.xs, scratch.phis); err != nil {
		countRPCFailure(err, st)
		return
	}
	st.lookups += batch
	st.lookupLats = append(st.lookupLats, time.Since(t0))
}

func countRPCFailure(err error, st *opStats) {
	if wire.IsTransport(err) {
		st.transport++
	} else {
		st.errors++
	}
}
