// Command ftbenchdiff compares two BENCH_fleet.json benchmark
// artifacts (as written by cmd/ftbenchjson) and fails on regressions,
// so CI can hold every run against a committed baseline.
//
// Usage:
//
//	go run ./cmd/ftbenchdiff -old .github/bench/BENCH_fleet.baseline.json -new BENCH_fleet.json
//
// Benchmarks are matched by full name. For every benchmark whose
// family matches -families (comma-separated substrings; default the
// hot-path "Apply,Lookup"), the new ns/op must not exceed the old by
// more than -threshold percent, and allocs/op must not grow by more
// than one object. Benchmarks present on only one side are reported
// but not fatal (the suite is allowed to grow). Time thresholds are
// inherently machine-sensitive: refresh the committed baseline
// (ftbenchjson -out) when the benchmark suite or the CI hardware
// changes, and lean on the alloc check — which is machine-independent
// — as the hard line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Benchmark mirrors cmd/ftbenchjson's artifact entry (decoded from
// JSON; the two commands stay decoupled).
type Benchmark struct {
	Name        string  `json:"name"`
	Family      string  `json:"family"`
	N           int     `json:"n,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Artifact is the decoded benchmark file.
type Artifact struct {
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	oldPath := flag.String("old", "", "baseline artifact (required)")
	newPath := flag.String("new", "", "candidate artifact (required)")
	threshold := flag.Float64("threshold", 25, "max ns/op regression in percent for guarded families")
	families := flag.String("families", "Apply,Lookup", "comma-separated family substrings the threshold guards")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "ftbenchdiff: both -old and -new are required")
		os.Exit(2)
	}
	oldArt, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newArt, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	report, failures := diff(oldArt, newArt, *threshold, splitFamilies(*families))
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "ftbenchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("ftbenchdiff: no guarded regressions")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ftbenchdiff: %v\n", err)
	os.Exit(2)
}

func load(path string) (Artifact, error) {
	var art Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return art, err
	}
	if err := json.Unmarshal(data, &art); err != nil {
		return art, fmt.Errorf("%s: %w", path, err)
	}
	if len(art.Benchmarks) == 0 {
		return art, fmt.Errorf("%s: no benchmarks", path)
	}
	return art, nil
}

func splitFamilies(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func guarded(family string, families []string) bool {
	for _, f := range families {
		if strings.Contains(family, f) {
			return true
		}
	}
	return false
}

// diff renders the comparison table and collects guarded regressions.
func diff(oldArt, newArt Artifact, threshold float64, families []string) (string, []string) {
	oldBy := make(map[string]Benchmark, len(oldArt.Benchmarks))
	for _, b := range oldArt.Benchmarks {
		oldBy[b.Name] = b
	}
	var sb strings.Builder
	var failures []string
	fmt.Fprintf(&sb, "%-36s %14s %14s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta", "allocs")
	seen := make(map[string]bool, len(newArt.Benchmarks))
	for _, nb := range newArt.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-36s %14s %14.1f %9s %9.1f  (new)\n", nb.Name, "-", nb.NsPerOp, "-", nb.AllocsPerOp)
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		mark := ""
		if guarded(nb.Family, families) {
			if delta > threshold {
				mark = "  REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: ns/op %.1f -> %.1f (%+.1f%% > %.0f%%)",
					nb.Name, ob.NsPerOp, nb.NsPerOp, delta, threshold))
			}
			if nb.AllocsPerOp > ob.AllocsPerOp+1 {
				mark = "  REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.1f -> %.1f",
					nb.Name, ob.AllocsPerOp, nb.AllocsPerOp))
			}
		}
		fmt.Fprintf(&sb, "%-36s %14.1f %14.1f %+8.1f%% %9.1f%s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta, nb.AllocsPerOp, mark)
	}
	for _, ob := range oldArt.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(&sb, "%-36s %14.1f %14s %9s %9s  (gone)\n", ob.Name, ob.NsPerOp, "-", "-", "-")
		}
	}
	return sb.String(), failures
}
