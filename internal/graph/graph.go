// Package graph implements the sparse undirected graph substrate used by
// every construction in this repository.
//
// Graphs are immutable once built (see Builder), store adjacency in a
// compact CSR-style layout with sorted neighbor lists, and follow the
// paper's conventions: simple graphs, no self-loops (constructions that
// would naturally produce self-loops silently drop them, as the paper
// instructs), no multi-edges.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph on nodes 0..N-1.
// The zero value is an empty graph with no nodes.
type Graph struct {
	n      int
	m      int   // number of undirected edges
	offs   []int // CSR offsets, len n+1
	adj    []int // concatenated sorted neighbor lists, len 2m
	labels []string
}

// Builder accumulates edges and produces an immutable Graph.
// Duplicate edges and self-loops are dropped.
type Builder struct {
	n   int
	adj []map[int]struct{}
}

// NewBuilder returns a Builder for a graph on n nodes. It panics if
// n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph.NewBuilder: negative node count %d", n))
	}
	return &Builder{n: n, adj: make([]map[int]struct{}, n)}
}

// AddEdge records the undirected edge (u, v). Self-loops are ignored
// (per the paper's convention). AddEdge panics on out-of-range nodes.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph.AddEdge: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[int]struct{})
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int]struct{})
	}
	b.adj[u][v] = struct{}{}
	b.adj[v][u] = struct{}{}
}

// HasEdge reports whether (u,v) has been added.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || b.adj[u] == nil {
		return false
	}
	_, ok := b.adj[u][v]
	return ok
}

// Build freezes the accumulated edges into an immutable Graph.
// The Builder may be reused afterwards (further AddEdge calls do not
// affect already-built graphs).
func (b *Builder) Build() *Graph {
	g := &Graph{n: b.n, offs: make([]int, b.n+1)}
	total := 0
	for u := 0; u < b.n; u++ {
		total += len(b.adj[u])
	}
	g.adj = make([]int, total)
	pos := 0
	for u := 0; u < b.n; u++ {
		g.offs[u] = pos
		nbrs := g.adj[pos : pos : pos+len(b.adj[u])]
		for v := range b.adj[u] {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)
		pos += len(nbrs)
	}
	g.offs[b.n] = pos
	g.m = total / 2
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return g.offs[u+1] - g.offs[u]
}

// MaxDegree returns the maximum node degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > max {
			max = d
		}
	}
	return max
}

// MinDegree returns the minimum node degree (0 for an empty graph).
func (g *Graph) MinDegree() int {
	if g.n == 0 {
		return 0
	}
	min := g.Degree(0)
	for u := 1; u < g.n; u++ {
		if d := g.Degree(u); d < min {
			min = d
		}
	}
	return min
}

// AvgDegree returns the average node degree.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(2*g.m) / float64(g.n)
}

// Neighbors returns the sorted neighbor list of u. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) Neighbors(u int) []int {
	g.check(u)
	return g.adj[g.offs[u]:g.offs[u+1]]
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	nbrs := g.Neighbors(u)
	i := sort.SearchInts(nbrs, v)
	return i < len(nbrs) && nbrs[i] == v
}

// Edge is an undirected edge with U < V.
type Edge struct{ U, V int }

// Edges returns all edges with U < V, sorted lexicographically.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				out = append(out, Edge{u, v})
			}
		}
	}
	return out
}

// EachEdge calls fn for every edge with u < v; it stops early if fn
// returns false.
func (g *Graph) EachEdge(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if u < v && !fn(u, v) {
				return
			}
		}
	}
}

// SetLabel attaches a display label to node u (used by DOT output).
// Labels are the only mutable aspect of a Graph and do not affect
// structure or equality.
func (g *Graph) SetLabel(u int, label string) {
	g.check(u)
	if g.labels == nil {
		g.labels = make([]string, g.n)
	}
	g.labels[u] = label
}

// Label returns the display label of u, or its decimal index when no
// label was set.
func (g *Graph) Label(u int) string {
	g.check(u)
	if g.labels != nil && g.labels[u] != "" {
		return g.labels[u]
	}
	return fmt.Sprintf("%d", u)
}

// DegreeHistogram returns a map from degree value to the number of nodes
// with that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[g.Degree(u)]++
	}
	return h
}

// Equal reports whether g and h have identical node counts and edge
// sets (labels are ignored).
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for u := 0; u < g.n; u++ {
		a, b := g.Neighbors(u), h.Neighbors(u)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
	}
	return true
}

// String returns a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d maxdeg=%d}", g.n, g.m, g.MaxDegree())
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", u, g.n))
	}
}
