package fleet

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
)

// numShards is the number of independently-locked instance maps. A
// power of two well above typical core counts keeps registry contention
// negligible next to per-instance work.
const numShards = 16

// Options configures a Manager.
type Options struct {
	// CacheSize caps the shared mapping cache (<= 0 selects
	// DefaultCacheSize).
	CacheSize int
	// CacheShards sets the mapping cache's shard count (<= 0 selects
	// DefaultCacheShards).
	CacheShards int
}

// Manager is the sharded registry that owns a fleet of instances behind
// one API. All methods are safe for concurrent use.
type Manager struct {
	shards [numShards]shard
	seed   maphash.Seed
	cache  *Cache

	events  atomic.Uint64  // applied events, fleet-wide
	batches atomic.Uint64  // applied atomic transitions (a single event counts one)
	lookups stripedCounter // lookups, fleet-wide (striped: it sits on the read path)

	rejectedBudget   atomic.Uint64 // rejections: budget exhausted
	rejectedConflict atomic.Uint64 // rejections: double fault / repair healthy
	rejectedInvalid  atomic.Uint64 // rejections: unknown node/kind, empty batch
}

type shard struct {
	mu        sync.RWMutex
	instances map[string]*Instance
}

// NewManager returns an empty manager with its shared mapping cache.
func NewManager(opts Options) *Manager {
	m := &Manager{
		seed:  maphash.MakeSeed(),
		cache: NewCacheShards(opts.CacheSize, opts.CacheShards),
	}
	for i := range m.shards {
		m.shards[i].instances = make(map[string]*Instance)
	}
	return m
}

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[maphash.String(m.seed, id)%numShards]
}

// Create registers a new instance under id. The id must be non-empty
// and unused; the spec must satisfy the paper's preconditions.
func (m *Manager) Create(id string, spec Spec) (*Instance, error) {
	if id == "" {
		return nil, fmt.Errorf("fleet: empty instance id")
	}
	in, err := newInstance(id, spec, m.cache)
	if err != nil {
		return nil, err
	}
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.instances[id]; dup {
		return nil, errorf(ErrConflict, "fleet: instance %q already exists", id)
	}
	s.instances[id] = in
	return in, nil
}

// Get returns the instance with the given id.
func (m *Manager) Get(id string) (*Instance, bool) {
	s := m.shardFor(id)
	s.mu.RLock()
	in, ok := s.instances[id]
	s.mu.RUnlock()
	return in, ok
}

// Delete removes the instance with the given id, reporting whether it
// existed.
func (m *Manager) Delete(id string) bool {
	s := m.shardFor(id)
	s.mu.Lock()
	_, ok := s.instances[id]
	delete(s.instances, id)
	s.mu.Unlock()
	return ok
}

// Event routes one fault/repair event to the named instance.
func (m *Manager) Event(id string, ev Event) (EventResult, error) {
	return m.EventBatch(id, []Event{ev})
}

// EventBatch routes a whole fault burst to the named instance as one
// atomic transition: either every event applies and the epoch advances
// by exactly one, or none do.
func (m *Manager) EventBatch(id string, events []Event) (EventResult, error) {
	in, ok := m.Get(id)
	if !ok {
		return EventResult{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	res, err := in.ApplyBatch(events)
	if err != nil {
		switch {
		case errors.Is(err, ErrBudget):
			m.rejectedBudget.Add(1)
		case errors.Is(err, ErrConflict):
			m.rejectedConflict.Add(1)
		default:
			m.rejectedInvalid.Add(1)
		}
		return res, err
	}
	m.events.Add(uint64(len(events)))
	m.batches.Add(1)
	return res, nil
}

// Lookup answers where target node x of the named instance runs now.
func (m *Manager) Lookup(id string, x int) (int, error) {
	in, ok := m.Get(id)
	if !ok {
		return 0, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	phi, err := in.Lookup(x)
	if err != nil {
		return 0, err
	}
	m.lookups.Add(x)
	return phi, nil
}

// List returns the sorted ids of all registered instances.
func (m *Manager) List() []string {
	var ids []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id := range s.instances {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Stats is a fleet-wide counter snapshot. Events counts individual
// applied events; Batches counts atomic transitions (a single-event
// POST is a batch of one). Rejected is the total over RejectedBy's
// causes — rejections count per transition, not per event.
type Stats struct {
	Instances  int           `json:"instances"`
	Events     uint64        `json:"events"`
	Batches    uint64        `json:"batches"`
	Rejected   uint64        `json:"rejected"`
	RejectedBy RejectedStats `json:"rejected_by_cause"`
	Lookups    uint64        `json:"lookups"`
	Cache      CacheStats    `json:"cache"`
}

// Stats returns a snapshot of the manager's counters and its cache.
func (m *Manager) Stats() Stats {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.instances)
		s.mu.RUnlock()
	}
	rej := RejectedStats{
		Budget:   m.rejectedBudget.Load(),
		Conflict: m.rejectedConflict.Load(),
		Invalid:  m.rejectedInvalid.Load(),
	}
	return Stats{
		Instances:  n,
		Events:     m.events.Load(),
		Batches:    m.batches.Load(),
		Rejected:   rej.Total(),
		RejectedBy: rej,
		Lookups:    m.lookups.Load(),
		Cache:      m.cache.Stats(),
	}
}

// Cache exposes the shared mapping cache (read-mostly; used by the
// facade and benchmarks).
func (m *Manager) Cache() *Cache { return m.cache }
