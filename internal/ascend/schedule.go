package ascend

import (
	"fmt"

	"ftnet/internal/num"
)

// This file generalizes RunSE from the fixed one-dimension-per-round
// sweep to arbitrary normal-algorithm schedules: any sequence of
// hypercube dimensions, each with its own pairwise operator. This is
// what the Ascend/Descend class of Preparata-Vuillemin actually
// requires, and bitonic sort (the classic member) exercises it fully.
//
// Mechanics: the machine tracks a global rotation state rho — the value
// of logical address a currently resides at node RotLeft^rho(a). At
// rotation rho, the exchange edges pair addresses differing in bit
// (h - rho) mod h, so operating on dimension d costs however many
// shuffles move rho to (h - d) mod h, plus one exchange cycle. Schedules
// that walk dimensions downward (Descend order, like bitonic sort's
// inner loops) pay exactly one shuffle per step.

// PairOp combines the two values meeting across an exchange edge. It
// receives the LOGICAL addresses holding the values (aLow has bit d
// = 0, aHigh has bit d = 1), so operators may be address-dependent —
// bitonic sort's direction bit, for example.
type PairOp func(aLow, aHigh int, low, high int64) (newLow, newHigh int64)

// Step is one schedule entry: apply Op across dimension Dim.
type Step struct {
	Dim int
	Op  PairOp
}

// RunSchedule executes the schedule on the host, starting and ending
// with all data home (rotation state 0). It returns the final values
// (indexed by logical address) and the communication cycles consumed.
// Like RunSE it fails when the schedule needs a dead node or missing
// edge.
func RunSchedule(h int, hst *Host, vals []int64, steps []Step) (Result, error) {
	if h < 1 {
		return Result{}, fmt.Errorf("ascend: h=%d must be >= 1", h)
	}
	n := num.MustIPow(2, h)
	if len(vals) != n {
		return Result{}, fmt.Errorf("ascend: %d values for %d nodes", len(vals), n)
	}
	if len(hst.Loc) != n {
		return Result{}, fmt.Errorf("ascend: host maps %d logical nodes, want %d", len(hst.Loc), n)
	}
	for _, s := range steps {
		if s.Dim < 0 || s.Dim >= h {
			return Result{}, fmt.Errorf("ascend: dimension %d out of range [0,%d)", s.Dim, h)
		}
		if s.Op == nil {
			return Result{}, fmt.Errorf("ascend: nil op in schedule")
		}
	}

	// data[y] = value currently held by logical node y. addr[y] = the
	// logical address whose value node y holds (tracked explicitly so the
	// code is self-checking; it always equals RotRight^rho applied to y).
	data := make([]int64, n)
	copy(data, vals)
	addr := make([]int, n)
	for i := range addr {
		addr[i] = i
	}
	nextD := make([]int64, n)
	nextA := make([]int, n)
	rho := 0
	cycles := 0

	shuffleOnce := func() error {
		for y := 0; y < n; y++ {
			z := num.RotLeft(y, 2, h)
			if z != y {
				if err := hst.link(y, z); err != nil {
					return err
				}
			}
			nextD[z] = data[y]
			nextA[z] = addr[y]
		}
		data, nextD = nextD, data
		addr, nextA = nextA, addr
		rho = (rho + 1) % h
		cycles++
		return nil
	}

	for si, s := range steps {
		want := (h - s.Dim) % h
		for rho != want {
			if err := shuffleOnce(); err != nil {
				return Result{}, fmt.Errorf("step %d (dim %d) shuffle: %w", si, s.Dim, err)
			}
		}
		// Exchange phase at this rotation: node pairs (y, y^1) hold
		// addresses differing in bit s.Dim.
		for y := 0; y < n; y += 2 {
			if err := hst.link(y, y^1); err != nil {
				return Result{}, fmt.Errorf("step %d (dim %d) exchange: %w", si, s.Dim, err)
			}
			aEven, aOdd := addr[y], addr[y^1]
			if aEven^aOdd != 1<<s.Dim {
				return Result{}, fmt.Errorf("ascend: internal error: addresses %d,%d at rho=%d do not differ in dim %d",
					aEven, aOdd, rho, s.Dim)
			}
			if aEven&(1<<s.Dim) == 0 {
				data[y], data[y^1] = s.Op(aEven, aOdd, data[y], data[y^1])
			} else {
				data[y^1], data[y] = s.Op(aOdd, aEven, data[y^1], data[y])
			}
		}
		cycles++
	}
	// Rotate data home.
	for rho != 0 {
		if err := shuffleOnce(); err != nil {
			return Result{}, fmt.Errorf("final unshuffle: %w", err)
		}
	}
	out := make([]int64, n)
	for y := 0; y < n; y++ {
		out[addr[y]] = data[y]
	}
	return Result{Values: out, Cycles: cycles}, nil
}

// BitonicSortSteps returns the bitonic sorting network of Batcher as a
// schedule: h stages, stage s merging bitonic runs of length 2^(s+1) by
// compare-exchanging dimensions s, s-1, ..., 0. The comparator
// direction depends on bit s+1 of the address (ascending blocks
// alternate with descending ones), yielding a fully sorted array after
// the last stage. Total steps: h(h+1)/2.
func BitonicSortSteps(h int) []Step {
	var steps []Step
	for s := 0; s < h; s++ {
		for d := s; d >= 0; d-- {
			stage := s
			steps = append(steps, Step{
				Dim: d,
				Op: func(aLow, aHigh int, low, high int64) (int64, int64) {
					// Ascending iff bit (stage+1) of the address block is 0;
					// the final stage (stage = h-1) is entirely ascending.
					asc := aLow&(1<<(stage+1)) == 0
					if (low > high) == asc {
						return high, low
					}
					return low, high
				},
			})
		}
	}
	return steps
}

// SumSteps returns the plain Ascend global-combine schedule, dimension
// 0 through h-1, all applying op.
func SumSteps(h int, op Op) []Step {
	steps := make([]Step, h)
	for d := 0; d < h; d++ {
		steps[d] = Step{Dim: d, Op: func(_, _ int, a, b int64) (int64, int64) { return op(a, b) }}
	}
	return steps
}
