package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fleet"
)

// The partition-torture scenario is the failover probe: storm a leader
// that a follower is tailing, cut the follower off mid-storm (T1) so
// the leader keeps acknowledging writes the replica never sees, kill
// the leader abruptly (T2), heal the follower and promote it, and
// measure how long until the promoted replica accepts its first write
// (T3). The run then restarts the deposed leader as a follower of the
// new one and requires it to self-heal: detect the higher term on its
// first watch frame, discard its unreplicated tail, resync from the new
// leader's checkpoint, and refuse direct writes with 403 — zero
// stale-term writes accepted.
//
// Two windows come out of it:
//
//	divergence_window   T2 − T1: how long the old leader acknowledged
//	                    writes no replica had — the data-loss exposure
//	                    of asynchronous replication under this load
//	failover_downtime   T3 − T2: leader kill to the promoted replica
//	                    accepting writes — the unavailability window
//
// Like restart, it is not a Scenario preset: it owns two daemon
// lifecycles. cmd/ftload wires the hooks to child processes it
// SIGSTOPs/SIGKILLs; the in-process test wires them to httptest
// servers sharing journal files.

// FailoverConfig drives one partition-torture run. Addr is the old
// leader; FollowerAddr the replica that gets promoted.
type FailoverConfig struct {
	Config
	FollowerAddr string
	// Partition cuts the follower off from the leader at T1 — ftload
	// SIGSTOPs the follower process; the in-process test cancels its
	// replication context. The leader must keep serving.
	Partition func() error
	// KillLeader terminates the leader abruptly at T2 (SIGKILL — no
	// shutdown grace).
	KillLeader func() error
	// Heal reconnects the follower (SIGCONT) before promotion. May be
	// nil when Partition left the process runnable.
	Heal func() error
	// RestartOld reboots the deposed leader over its own journal as a
	// follower of FollowerAddr and returns its base URL ("" keeps
	// cfg.Addr). Nil skips the rejoin/self-heal phase.
	RestartOld func() (addr string, err error)
	// PartitionAfterFrac and KillAfterFrac place T1 and T2 as fractions
	// of the request budget (defaults 0.3 and 0.6; the gap between them
	// is what materializes divergence).
	PartitionAfterFrac float64
	KillAfterFrac      float64
	// HealthTimeout bounds every wait: follower catch-up before the
	// storm, promotion, rejoin convergence (default 15s).
	HealthTimeout time.Duration
}

// FailoverResult reports one partition-torture run.
type FailoverResult struct {
	Storm            Result            // the pre-kill storm measurement
	Acked            map[string]uint64 // per-instance max epoch the old leader acknowledged
	Term             uint64            // leadership term after promotion
	DivergenceWindow time.Duration     // T2 − T1
	FailoverDowntime time.Duration     // T2 → first write accepted by the promoted replica
	Demotions        uint64            // deposed-leader resets observed on the rejoined daemon
	Discarded        uint64            // entries the deposed leader dropped on rejoin
	Converged        int               // instances bit-identical between new leader and rejoined replica
}

// RunFailover executes the partition-torture scenario. It returns an
// error if promotion fails, the deposed leader fails to demote and
// converge, or — the fencing contract — the deposed leader accepts
// even one direct write after rejoining.
func RunFailover(cfg FailoverConfig) (FailoverResult, error) {
	if cfg.Partition == nil || cfg.KillLeader == nil {
		return FailoverResult{}, fmt.Errorf("loadgen: partition-torture needs Partition and KillLeader hooks")
	}
	if cfg.FollowerAddr == "" {
		return FailoverResult{}, fmt.Errorf("loadgen: partition-torture needs the follower's base URL")
	}
	if cfg.Scenario.Batch < 1 {
		cfg.Scenario.Batch = 4
	}
	cfg.Scenario.Name = "partition-torture"
	cfg.Scenario.EventFrac = 1
	cfg.Scenario.Writers = 0
	if cfg.PartitionAfterFrac <= 0 || cfg.PartitionAfterFrac >= 1 {
		cfg.PartitionAfterFrac = 0.3
	}
	if cfg.KillAfterFrac <= cfg.PartitionAfterFrac || cfg.KillAfterFrac >= 1 {
		cfg.KillAfterFrac = cfg.PartitionAfterFrac + (1-cfg.PartitionAfterFrac)/2
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 15 * time.Second
	}
	if err := cfg.Config.Validate(); err != nil {
		return FailoverResult{}, err
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "load-partition-torture"
	}
	client := &http.Client{Timeout: 30 * time.Second}
	ids, err := createFleet(client, cfg.Config)
	if err != nil {
		return FailoverResult{}, err
	}
	// The follower must have replicated the fleet before the partition,
	// or the promoted leader would be missing instances rather than
	// merely trailing epochs.
	if err := awaitReplicated(client, cfg.FollowerAddr, ids, cfg.HealthTimeout); err != nil {
		return FailoverResult{}, err
	}

	// Storm with two trigger thresholds: the worker that crosses
	// PartitionAfterFrac cuts the follower off (T1), the one that
	// crosses KillAfterFrac kills the leader (T2) and stops the run.
	// Between the two, every acknowledged write is divergence.
	acked := make(map[string]*atomic.Uint64, len(ids))
	for _, id := range ids {
		acked[id] = new(atomic.Uint64)
	}
	var (
		ops           atomic.Int64
		stopped       atomic.Bool
		partOnce      sync.Once
		killOnce      sync.Once
		partErr       error
		killErr       error
		partitionedAt time.Time
		killedAt      time.Time
		partThreshold = int64(float64(cfg.Requests) * cfg.PartitionAfterFrac)
		killThreshold = int64(float64(cfg.Requests) * cfg.KillAfterFrac)
	)
	_, nHost := TargetHostSizes(cfg.Spec)
	perWorker := make([]opStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			for i := 0; i < n && !stopped.Load(); i++ {
				id := ids[rng.Intn(len(ids))]
				driveBatchAcked(client, cfg.Addr, id, rng, nHost, cfg.Scenario.Batch, st, acked[id])
				done := ops.Add(1)
				if done >= partThreshold {
					partOnce.Do(func() {
						partitionedAt = time.Now()
						partErr = cfg.Partition()
					})
				}
				if done >= killThreshold {
					killOnce.Do(func() {
						stopped.Store(true)
						killedAt = time.Now()
						killErr = cfg.KillLeader()
					})
				}
			}
		}(w, n)
	}
	wg.Wait()

	res := FailoverResult{Acked: make(map[string]uint64, len(ids))}
	res.Storm = mergeStats(perWorker, time.Since(start))
	for _, id := range ids {
		res.Acked[id] = acked[id].Load()
	}
	if partErr != nil {
		return res, fmt.Errorf("loadgen: partition hook: %v", partErr)
	}
	if killErr != nil {
		return res, fmt.Errorf("loadgen: kill hook: %v", killErr)
	}
	if partitionedAt.IsZero() || killedAt.IsZero() {
		return res, fmt.Errorf("loadgen: storm finished before both triggers fired (partition at %d ops, kill at %d)",
			partThreshold, killThreshold)
	}
	res.DivergenceWindow = killedAt.Sub(partitionedAt)

	// Heal and promote. The downtime clock runs from the kill until the
	// promoted replica accepts a write — promotion plus however long
	// the replica needs to notice its stream is dead and drain.
	if cfg.Heal != nil {
		if err := cfg.Heal(); err != nil {
			return res, fmt.Errorf("loadgen: heal hook: %v", err)
		}
	}
	term, err := promote(client, cfg.FollowerAddr, cfg.HealthTimeout)
	if err != nil {
		return res, err
	}
	res.Term = term
	if err := awaitWritable(client, cfg.FollowerAddr, ids[0], cfg.HealthTimeout); err != nil {
		return res, err
	}
	res.FailoverDowntime = time.Since(killedAt)

	// Advance the new leader past the promotion point so the rejoined
	// deposed leader replicates post-failover history, not just the
	// checkpoint.
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5eed))
	var st opStats
	for i := 0; i < 32; i++ {
		driveBatchAcked(client, cfg.FollowerAddr, ids[rng.Intn(len(ids))], rng, nHost, cfg.Scenario.Batch, &st, acked[ids[0]])
	}

	if cfg.RestartOld == nil {
		return res, nil
	}
	oldAddr, err := cfg.RestartOld()
	if err != nil {
		return res, fmt.Errorf("loadgen: restart-old hook: %v", err)
	}
	if oldAddr == "" {
		oldAddr = cfg.Addr
	}
	if err := awaitHealthy(client, oldAddr, cfg.HealthTimeout); err != nil {
		return res, err
	}
	// Self-healing contract: the rejoined daemon must demote (observe
	// the higher term, discard its unreplicated tail) ...
	res.Demotions, res.Discarded, err = awaitDemotion(client, oldAddr, cfg.HealthTimeout)
	if err != nil {
		return res, err
	}
	// ... refuse direct writes — zero stale-term writes accepted ...
	if err := requireReadOnly(client, oldAddr, ids[0], nHost); err != nil {
		return res, err
	}
	// ... and converge bit-identically with the promoted leader.
	fv, err := VerifyFollower(cfg.FollowerAddr, oldAddr, ids, cfg.HealthTimeout)
	if err != nil {
		return res, err
	}
	res.Converged = fv.Instances
	return res, nil
}

// promote POSTs /v1/promote on the replica, retrying while it is still
// unreachable or draining, and returns the new leadership term.
func promote(client *http.Client, addr string, timeout time.Duration) (uint64, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Post(addr+"/v1/promote", "application/json", nil)
		if err == nil {
			var pr fleet.PromoteResponse
			derr := json.NewDecoder(resp.Body).Decode(&pr)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && derr == nil {
				return pr.Term, nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("loadgen: promote %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// awaitWritable polls until the promoted replica accepts a mutation.
// A 200 proves the write path open; so does a 409/400 (the request got
// past the posture check into the state machine). A 403 means the
// replica is still read-only.
func awaitWritable(client *http.Client, addr, id string, timeout time.Duration) error {
	body, _ := json.Marshal(fleet.BatchRequest{Events: []fleet.Event{{Kind: fleet.EventRepair, Node: 0}}})
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Post(addr+"/v1/instances/"+id+"/events:batch", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusConflict, http.StatusBadRequest:
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: promoted replica %s not writable: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// awaitReplicated waits until every id exists on the replica.
func awaitReplicated(client *http.Client, addr string, ids []string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for _, id := range ids {
		for {
			if _, err := fetchInstance(client, addr, id); err == nil {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("loadgen: follower %s never replicated %s within %v", addr, id, timeout)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	return nil
}

// awaitHealthy polls /healthz until the daemon answers 200.
func awaitHealthy(client *http.Client, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: daemon %s not healthy within %v", addr, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// awaitDemotion polls the rejoined daemon's /v1/stats until its
// replication loop reports at least one deposed-leader reset, and
// returns the demotion and discarded-entry counters.
func awaitDemotion(client *http.Client, addr string, timeout time.Duration) (demotions, discarded uint64, err error) {
	deadline := time.Now().Add(timeout)
	for {
		var st fleet.StatsResponse
		resp, gerr := client.Get(addr + "/v1/stats")
		if gerr == nil {
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && st.Follower != nil && st.Follower.Demotions > 0 {
				return st.Follower.Demotions, st.Follower.Discarded, nil
			}
		}
		if time.Now().After(deadline) {
			return 0, 0, fmt.Errorf("loadgen: rejoined leader %s never demoted (no higher-term detection) within %v", addr, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// requireReadOnly fires one direct write at the deposed leader and
// requires the 403 fence — any acceptance is a stale-term write, the
// split-brain failure the term plane exists to prevent.
func requireReadOnly(client *http.Client, addr, id string, nHost int) error {
	body, _ := json.Marshal(fleet.BatchRequest{Events: []fleet.Event{{Kind: fleet.EventFault, Node: nHost - 1}}})
	resp, err := client.Post(addr+"/v1/instances/"+id+"/events:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: stale-write probe: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		return fmt.Errorf("loadgen: deposed leader %s answered a direct write with status %d, want 403 — stale-term write accepted",
			addr, resp.StatusCode)
	}
	return nil
}
