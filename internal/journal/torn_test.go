package journal

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// frameOffsets returns the byte offset of each frame boundary in a
// well-formed log (0, end of record 0, ..., len(raw)).
func frameOffsets(t *testing.T, raw []byte) []int64 {
	t.Helper()
	offs := []int64{0}
	jr := NewReader(bytes.NewReader(raw))
	for {
		if _, err := jr.Next(); err != nil {
			if err == io.EOF {
				return offs
			}
			t.Fatalf("well-formed log failed to parse: %v", err)
		}
		offs = append(offs, jr.Offset())
	}
}

// TestTornTailTruncation cuts the log at EVERY byte offset of the
// final record: recovery must surface all complete records, report the
// torn tail (or a clean EOF exactly at the boundary), never panic, and
// never fabricate a record.
func TestTornTailTruncation(t *testing.T) {
	recs := sampleRecords()
	raw := encodeLog(t, recs)
	offs := frameOffsets(t, raw)
	lastStart, end := offs[len(offs)-2], offs[len(offs)-1]
	if end != int64(len(raw)) {
		t.Fatalf("offsets end at %d, raw is %d bytes", end, len(raw))
	}
	for cut := lastStart; cut <= end; cut++ {
		got, off, err := ReadAll(bytes.NewReader(raw[:cut]))
		wantRecs := recs[:len(recs)-1]
		wantOff := lastStart
		switch cut {
		case end: // exact frame boundary: clean end, all records
			wantRecs, wantOff = recs, end
			fallthrough
		case lastStart: // zero bytes of the final record: also clean
			if err != nil {
				t.Fatalf("cut %d: clean boundary reported %v", cut, err)
			}
		default:
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("cut %d: err = %v, want ErrTorn", cut, err)
			}
		}
		if off != wantOff {
			t.Fatalf("cut %d: valid prefix %d bytes, want %d", cut, off, wantOff)
		}
		if !reflect.DeepEqual(got, wantRecs) {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(got), len(wantRecs))
		}
	}
}

// TestTornTailBitFlips flips every single bit of the final record's
// frame (length, CRC, and body). The CRC (or the canonical decoder)
// must reject the record: recovery keeps the intact prefix and never
// accepts a record that differs from what was written.
func TestTornTailBitFlips(t *testing.T) {
	recs := sampleRecords()
	raw := encodeLog(t, recs)
	offs := frameOffsets(t, raw)
	lastStart := offs[len(offs)-2]
	intact := recs[:len(recs)-1]

	for pos := lastStart; pos < int64(len(raw)); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(raw)
			mut[pos] ^= 1 << bit
			got, off, err := ReadAll(bytes.NewReader(mut))
			if err == nil || !errors.Is(err, ErrTorn) {
				t.Fatalf("flip bit %d at byte %d: err = %v, want ErrTorn", bit, pos, err)
			}
			if off != lastStart {
				t.Fatalf("flip bit %d at byte %d: prefix %d bytes, want %d", bit, pos, off, lastStart)
			}
			if !reflect.DeepEqual(got, intact) {
				t.Fatalf("flip bit %d at byte %d: corrupted prefix", bit, pos)
			}
		}
	}
}

// TestMidLogBitFlips flips bits inside an interior record: everything
// before it must survive, the flipped record must never be accepted in
// altered form, and (because an append-only log has no resync point)
// scanning stops at the tear — the recovered sequence is always a
// strict prefix of the true one.
func TestMidLogBitFlips(t *testing.T) {
	recs := sampleRecords()
	raw := encodeLog(t, recs)
	offs := frameOffsets(t, raw)
	victim := 3 // an interior record
	for pos := offs[victim]; pos < offs[victim+1]; pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := bytes.Clone(raw)
			mut[pos] ^= 1 << bit
			got, _, err := ReadAll(bytes.NewReader(mut))
			if !errors.Is(err, ErrTorn) {
				t.Fatalf("flip bit %d at byte %d: err = %v, want ErrTorn", bit, pos, err)
			}
			if len(got) > victim {
				t.Fatalf("flip bit %d at byte %d: %d records surfaced past the corrupt one", bit, pos, len(got))
			}
			if !reflect.DeepEqual(got, recs[:len(got)]) {
				t.Fatalf("flip bit %d at byte %d: recovered records are not a prefix of the originals", bit, pos)
			}
		}
	}
}

// TestTornGarbage feeds raw garbage and pathological frames: never a
// panic, never a record.
func TestTornGarbage(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0} // implausible 2 GiB length
	short := []byte{0x40, 0, 0, 0, 0, 0, 0, 0}         // plausible length, body missing
	zero := []byte{0, 0, 0, 0, 0, 0, 0, 0}             // zero-length record
	for _, b := range [][]byte{{1}, {1, 2, 3}, huge, short, zero, bytes.Repeat([]byte{0xAA}, 100)} {
		got, off, err := ReadAll(bytes.NewReader(b))
		if len(got) != 0 || off != 0 || !errors.Is(err, ErrTorn) {
			t.Errorf("garbage %x: got %d records, off %d, err %v", b[:min(8, len(b))], len(got), off, err)
		}
	}
	if got, off, err := ReadAll(bytes.NewReader(nil)); len(got) != 0 || off != 0 || err != nil {
		t.Errorf("empty log: %d records, off %d, err %v", len(got), off, err)
	}
}
