package ft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/num"
)

func TestWrapCountKnown(t *testing.T) {
	// Base 2, h=4 (n=16): edge 9 -> X(9,2,0,16) = 2 with x>y wraps once.
	if tc := WrapCount(9, 2, 0, 2, 4); tc != 1 {
		t.Errorf("WrapCount(9,2) = %d, want 1", tc)
	}
	// 3 -> 6: no wrap.
	if tc := WrapCount(3, 6, 0, 2, 4); tc != 0 {
		t.Errorf("WrapCount(3,6) = %d, want 0", tc)
	}
}

func TestCheckWrapLemmaAllEdgesBase2(t *testing.T) {
	// Lemma 2 over every edge of B_{2,h} for several h.
	for h := 3; h <= 8; h++ {
		n := num.MustIPow(2, h)
		for x := 0; x < n; x++ {
			for r := 0; r < 2; r++ {
				y := num.X(x, 2, r, n)
				if y == x {
					continue
				}
				if err := CheckWrapLemma(x, y, r, 2, h); err != nil {
					t.Fatalf("h=%d x=%d r=%d: %v", h, x, r, err)
				}
				// Lemma 2's sharper form: t=0 iff x<y; t=1 iff x>y.
				tc := WrapCount(x, y, r, 2, h)
				if x < y && tc != 0 || x > y && tc != 1 {
					t.Fatalf("h=%d edge (%d,%d): t=%d violates Lemma 2", h, x, y, tc)
				}
			}
		}
	}
}

func TestCheckWrapLemmaAllEdgesBaseM(t *testing.T) {
	// Lemma 3 over every edge of B_{m,h}.
	for _, m := range []int{3, 4, 5} {
		for h := 3; h <= 4; h++ {
			n := num.MustIPow(m, h)
			for x := 0; x < n; x++ {
				for r := 0; r < m; r++ {
					y := num.X(x, m, r, n)
					if y == x {
						continue
					}
					if err := CheckWrapLemma(x, y, r, m, h); err != nil {
						t.Fatalf("m=%d h=%d x=%d r=%d: %v", m, h, x, r, err)
					}
				}
			}
		}
	}
}

func TestCheckWrapLemmaRejectsNonEdges(t *testing.T) {
	if err := CheckWrapLemma(0, 5, 0, 2, 4); err == nil {
		t.Error("non-edge accepted")
	}
	if err := CheckWrapLemma(0, 0, 0, 2, 4); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestEdgeWitnessTheorem1(t *testing.T) {
	// The constructive witness s of Theorem 1 must exist for every
	// target edge and every random fault set.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{M: 2, H: rng.Intn(4) + 3, K: rng.Intn(5)}
		mp, err := NewMapping(p.NTarget(), p.NHost(), num.RandomSubset(rng, p.NHost(), p.K))
		if err != nil {
			return false
		}
		n := p.NTarget()
		x := rng.Intn(n)
		r := rng.Intn(2)
		y := num.X(x, 2, r, n)
		if y == x {
			return true // self-loop: not an edge
		}
		_, err = EdgeWitness(p, mp, x, y, r)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEdgeWitnessTheorem2(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{M: rng.Intn(4) + 2, H: 3, K: rng.Intn(4)}
		mp, err := NewMapping(p.NTarget(), p.NHost(), num.RandomSubset(rng, p.NHost(), p.K))
		if err != nil {
			return false
		}
		n := p.NTarget()
		x := rng.Intn(n)
		r := rng.Intn(p.M)
		y := num.X(x, p.M, r, n)
		if y == x {
			return true
		}
		_, err = EdgeWitness(p, mp, x, y, r)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEdgeWitnessCaseRanges(t *testing.T) {
	// Theorem 1's case analysis: for x<y, s = r + dy - 2dx; for x>y,
	// s = r + dy - 2dx + k. Cross-check the generic formula on a fixed
	// instance with a hand-picked fault set.
	p := Params{M: 2, H: 4, K: 2}
	mp, err := NewMapping(16, 18, []int{3, 10})
	if err != nil {
		t.Fatal(err)
	}
	n := 16
	for x := 0; x < n; x++ {
		for r := 0; r < 2; r++ {
			y := num.X(x, 2, r, n)
			if y == x {
				continue
			}
			s, err := EdgeWitness(p, mp, x, y, r)
			if err != nil {
				t.Fatalf("edge (%d,%d): %v", x, y, err)
			}
			dx, dy := mp.Delta(x), mp.Delta(y)
			want := r + dy - 2*dx
			if x > y {
				want += p.K
			}
			if s != want {
				t.Errorf("edge (%d,%d): s=%d, case formula says %d", x, y, s, want)
			}
		}
	}
}

func TestDeltaMonotoneDetectsViolation(t *testing.T) {
	// With the compact rank-based representation a non-monotone delta is
	// impossible by construction — x + Search(x) is non-decreasing even
	// for corrupt fault literals — so the checker's reachable failure
	// mode is the range bound. An overfull fault set (every host node
	// faulty, bypassing NewMapping's budget validation) pushes delta
	// past NHost - NTarget.
	m := &Mapping{NTarget: 2, NHost: 3, Faults: []int{0, 1, 2}}
	if err := DeltaMonotone(m); err == nil {
		t.Error("out-of-range delta not detected")
	}
	// And the guarantee itself: even an unsorted garbage literal yields
	// monotone in-range deltas once the fault set is within budget.
	g := &Mapping{NTarget: 3, NHost: 6, Faults: []int{5, 0, 1}}
	prev := 0
	for x := 0; x < g.NTarget; x++ {
		if d := g.Delta(x); d < prev {
			t.Errorf("delta(%d) = %d < delta(%d) = %d despite rank search", x, d, x-1, prev)
		} else {
			prev = d
		}
	}
}
