package fleet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ftnet/internal/journal"
)

// TestFleetJournalConcurrentWriters storms journaled instances from N
// goroutines while a reader tails the growing file — the shape `go
// test -race` exists for. The on-disk invariant under concurrency: per
// instance, the epoch sequence in file order is exactly 1, 2, 3, ...
// — gap-free and monotone — because each instance's append happens
// under its writer mutex before the snapshot pointer is published.
func TestFleetJournalConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{Journal: w})

	const nInstances, writers, perWriter = 3, 6, 60
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 3}
	ids := make([]string, nInstances)
	for i := range ids {
		ids[i] = fmt.Sprintf("i%d", i)
		if _, err := m.Create(ids[i], spec); err != nil {
			t.Fatal(err)
		}
	}
	_, nHost := TargetHostSizesSpec(spec)

	// The tail: re-scan from the last clean offset whenever the tear
	// (a record the interval flush has only half-written) or EOF moves
	// out from under us, verifying the epoch chain as records land.
	done := make(chan struct{})
	tailErr := make(chan error, 1)
	go func() {
		tailErr <- tailAndVerify(path, ids, done)
	}()

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perWriter; i++ {
				id := ids[rng.Intn(len(ids))]
				n := 1 + rng.Intn(3)
				events := make([]Event, n)
				for j := range events {
					kind := EventFault
					if rng.Intn(2) == 0 {
						kind = EventRepair
					}
					events[j] = Event{Kind: kind, Node: rng.Intn(nHost)}
				}
				// Rejections (budget, conflicts) are normal under this
				// traffic; only journal unavailability is a failure.
				if _, err := m.EventBatch(id, events); errors.Is(err, ErrUnavailable) {
					t.Errorf("journal unavailable: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	close(done)
	if err := <-tailErr; err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Cross-check the end state: the file's last epoch per instance is
	// the live instance's epoch, and a fresh recovery agrees.
	lastEpochs, err := fileEpochs(path, ids)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if got := mustGet(t, m, id).Snapshot().Epoch(); got != lastEpochs[id] {
			t.Errorf("%s: live epoch %d, journal says %d", id, got, lastEpochs[id])
		}
	}
	m2 := NewManager(Options{})
	if _, err := m2.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		live, rec := mustGet(t, m, id).Snapshot(), mustGet(t, m2, id).Snapshot()
		if live.Epoch() != rec.Epoch() || live.NumFaults() != rec.NumFaults() {
			t.Errorf("%s: recovered epoch/faults %d/%d, live %d/%d",
				id, rec.Epoch(), rec.NumFaults(), live.Epoch(), live.NumFaults())
		}
	}
}

// tailAndVerify follows the journal file until done is closed AND a
// final clean pass reaches EOF, asserting every instance's epoch chain
// is gap-free and monotone in file order.
func tailAndVerify(path string, ids []string, done <-chan struct{}) error {
	want := make(map[string]uint64, len(ids))
	for _, id := range ids {
		want[id] = 1
	}
	var off int64
	finalPass := false
	for {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		if _, err := f.Seek(off, io.SeekStart); err != nil {
			f.Close()
			return err
		}
		jr := journal.NewReader(f)
		var scanErr error
		for {
			rec, err := jr.Next()
			if err != nil {
				scanErr = err
				break
			}
			if rec.Op != journal.OpTransition {
				continue
			}
			if rec.Epoch != want[rec.ID] {
				f.Close()
				return fmt.Errorf("tail: %s epoch %d at offset %d, want %d (gap or reorder)",
					rec.ID, rec.Epoch, off+jr.Offset(), want[rec.ID])
			}
			want[rec.ID] = rec.Epoch + 1
		}
		off += jr.Offset()
		f.Close()
		if finalPass {
			// This scan started after the writers finished and synced,
			// so the log must end cleanly — a tear here is a real torn
			// write, not a flush raced mid-record.
			if scanErr == io.EOF {
				return nil
			}
			if errors.Is(scanErr, journal.ErrTorn) {
				return fmt.Errorf("tail: torn record persists after final sync: %v", scanErr)
			}
			return scanErr
		}
		if scanErr != io.EOF && !errors.Is(scanErr, journal.ErrTorn) {
			return scanErr
		}
		select {
		case <-done:
			finalPass = true // one more authoritative scan from the clean offset
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// fileEpochs returns the last journaled epoch per instance.
func fileEpochs(path string, ids []string) (map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, _, err := journal.ReadAll(f)
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64, len(ids))
	for _, rec := range recs {
		if rec.Op == journal.OpTransition {
			out[rec.ID] = rec.Epoch
		}
	}
	return out, nil
}
