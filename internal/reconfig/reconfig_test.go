package reconfig

import (
	"math/rand"
	"testing"

	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func TestFloodNoFaults(t *testing.T) {
	p := ft.Params{M: 2, H: 4, K: 2}
	host := ft.MustNew(p)
	fl, err := Flood(host, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Rounds != 0 {
		t.Errorf("rounds = %d, want 0 with no faults", fl.Rounds)
	}
}

func TestFloodReachesEveryone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for h := 3; h <= 6; h++ {
		for k := 1; k <= 4; k++ {
			p := ft.Params{M: 2, H: h, K: k}
			host := ft.MustNew(p)
			faults := num.RandomSubset(rng, p.NHost(), k)
			fl, err := Flood(host, faults)
			if err != nil {
				t.Fatalf("h=%d k=%d faults=%v: %v", h, k, faults, err)
			}
			dead := map[int]bool{}
			for _, f := range faults {
				dead[f] = true
			}
			for v := 0; v < p.NHost(); v++ {
				if !dead[v] && !fl.Informed[v] {
					t.Fatalf("h=%d k=%d: node %d uninformed", h, k, v)
				}
			}
			// Dissemination should take at most the host diameter + 1.
			if d := host.Diameter(); fl.Rounds > d+1 {
				t.Errorf("h=%d k=%d: %d rounds > diameter+1 = %d", h, k, fl.Rounds, d+1)
			}
		}
	}
}

func TestFloodDisconnectedFails(t *testing.T) {
	// A path with faults at 1 and 3 isolates node 0 from fault 3's
	// detectors: node 0 can never learn the full fault set.
	b := graph.NewBuilder(5)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
	}
	if _, err := Flood(b.Build(), []int{1, 3}); err == nil {
		t.Fatal("unlearnable fault set should fail")
	}
}

func TestFloodSplitButLearnableSucceeds(t *testing.T) {
	// A single interior fault splits the path, but BOTH sides detect it
	// directly, so knowledge still completes (the machine is partitioned,
	// which the FT hosts' richer connectivity prevents — see the
	// connectivity experiment M2).
	b := graph.NewBuilder(5)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
	}
	fl, err := Flood(b.Build(), []int{2})
	if err != nil {
		t.Fatal(err)
	}
	for v, informed := range fl.Informed {
		if v != 2 && !informed {
			t.Errorf("node %d uninformed", v)
		}
	}
}

func TestFloodBadFault(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	if _, err := Flood(b.Build(), []int{7}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestLocalAssignMatchesRank(t *testing.T) {
	faults := []int{2, 5}
	// healthy: 0,1,3,4,6,7,8 -> targets 0,1,2,3,4,5,spare(with nTarget=6)
	cases := []struct{ self, want int }{
		{0, 0}, {1, 1}, {3, 2}, {4, 3}, {6, 4}, {7, 5}, {8, -1},
	}
	for _, c := range cases {
		got, err := LocalAssign(6, 9, c.self, faults)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("LocalAssign(self=%d) = %d, want %d", c.self, got, c.want)
		}
	}
	if _, err := LocalAssign(6, 9, 2, faults); err == nil {
		t.Error("faulty self accepted")
	}
	if _, err := LocalAssign(6, 9, 9, faults); err == nil {
		t.Error("out-of-range self accepted")
	}
}

func TestRunMatchesCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		h := rng.Intn(4) + 3
		k := rng.Intn(5)
		p := ft.Params{M: 2, H: h, K: k}
		host := ft.MustNew(p)
		faults := num.RandomSubset(rng, p.NHost(), k)
		out, err := Run(host, p.NTarget(), faults)
		if err != nil {
			t.Fatalf("h=%d k=%d faults=%v: %v", h, k, faults, err)
		}
		// The Run contract already cross-checks; verify shape here.
		if len(out.HostToTarget) != p.NHost() {
			t.Fatal("bad assignment length")
		}
		seen := map[int]bool{}
		for _, tgt := range out.HostToTarget {
			if tgt >= 0 {
				if seen[tgt] {
					t.Fatalf("target %d hosted twice", tgt)
				}
				seen[tgt] = true
			}
		}
		if len(seen) != p.NTarget() {
			t.Fatalf("hosted %d targets, want %d", len(seen), p.NTarget())
		}
	}
}

func TestRunBaseM(t *testing.T) {
	p := ft.Params{M: 3, H: 3, K: 2}
	host := ft.MustNew(p)
	out, err := Run(host, p.NTarget(), []int{4, 20})
	if err != nil {
		t.Fatal(err)
	}
	if out.Rounds < 1 {
		t.Errorf("rounds = %d, expected at least 1 with faults present", out.Rounds)
	}
}
