package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"ftnet/internal/ft"
	"ftnet/internal/journal"
)

// The crash-recovery property: a journaled Manager's on-disk log,
// replayed into a fresh Manager — in full, at every record prefix, or
// after an injected mid-record write failure — must reproduce exactly
// the state that replaying the same accepted transitions through
// ft.Snapshot.Apply produces: same epoch, same fault set, same Phi,
// bit for bit.

// expectedState is the model's per-instance view after one record.
type expectedState struct {
	epoch  uint64
	faults []int
}

// snapshotModel deep-copies the model's live state.
func snapshotModel(model map[string]*ft.Snapshot) map[string]expectedState {
	out := make(map[string]expectedState, len(model))
	for id, s := range model {
		out[id] = expectedState{epoch: s.Epoch(), faults: s.Faults()}
	}
	return out
}

// checkRecovered asserts a recovered manager matches a model state
// bit-identically: same instances, same epoch, same fault set, and the
// same Phi for every target (recomputed via ft.NewMapping).
func checkRecovered(t *testing.T, m *Manager, want map[string]expectedState, specs map[string]Spec) {
	t.Helper()
	if ids := m.List(); len(ids) != len(want) {
		t.Fatalf("recovered %d instances %v, want %d", len(ids), ids, len(want))
	}
	for id, ws := range want {
		in, ok := m.Get(id)
		if !ok {
			t.Fatalf("instance %s lost in recovery", id)
		}
		s := in.Snapshot()
		if s.Epoch() != ws.epoch {
			t.Fatalf("%s: epoch %d, want %d", id, s.Epoch(), ws.epoch)
		}
		if !slices.Equal(s.Faults(), ws.faults) {
			t.Fatalf("%s: faults %v, want %v", id, s.Faults(), ws.faults)
		}
		fresh, err := ft.NewMapping(s.NTarget(), s.NHost(), ws.faults)
		if err != nil {
			t.Fatalf("%s: recompute: %v", id, err)
		}
		for x := 0; x < s.NTarget(); x++ {
			if s.Phi(x) != fresh.Phi(x) {
				t.Fatalf("%s: phi(%d) = %d, recomputation says %d", id, x, s.Phi(x), fresh.Phi(x))
			}
		}
		if got := in.Spec(); got != specs[id] {
			t.Fatalf("%s: spec %+v, want %+v", id, got, specs[id])
		}
	}
}

// driveRandom pushes nOps random operations (creates, deletes, event
// batches) through a journaled manager while maintaining the oracle
// via ft.Snapshot.Apply. It returns the model snapshot after each
// appended record, keyed by record count, plus the final spec map.
func driveRandom(t *testing.T, rng *rand.Rand, m *Manager, nOps int) (perRecord []map[string]expectedState, specs map[string]Spec) {
	t.Helper()
	specPool := []Spec{
		{Kind: KindDeBruijn, M: 2, H: 4, K: 3},
		{Kind: KindDeBruijn, M: 3, H: 3, K: 2},
		{Kind: KindShuffle, H: 4, K: 2},
	}
	model := make(map[string]*ft.Snapshot)
	specs = make(map[string]Spec)
	live := []string{}
	nextID := 0

	record := func() { perRecord = append(perRecord, snapshotModel(model)) }

	for op := 0; op < nOps; op++ {
		switch r := rng.Float64(); {
		case r < 0.12 || len(live) == 0: // create
			id := fmt.Sprintf("i%d", nextID)
			nextID++
			spec := specPool[rng.Intn(len(specPool))]
			if _, err := m.Create(id, spec); err != nil {
				t.Fatalf("create %s: %v", id, err)
			}
			nTarget, nHost := TargetHostSizesSpec(spec)
			s, err := ft.NewSnapshot(nTarget, nHost, spec.K, nil)
			if err != nil {
				t.Fatal(err)
			}
			model[id] = s
			specs[id] = spec
			live = append(live, id)
			record()
		case r < 0.16 && len(live) > 1: // delete
			i := rng.Intn(len(live))
			id := live[i]
			if ok, err := m.Delete(id); !ok || err != nil {
				t.Fatalf("delete %s: %v %v", id, ok, err)
			}
			delete(model, id)
			delete(specs, id)
			live = append(live[:i], live[i+1:]...)
			record()
		default: // event batch against the model oracle
			id := live[rng.Intn(len(live))]
			cur := model[id]
			n := 1 + rng.Intn(4)
			events := make([]Event, n)
			batch := make([]ft.Change, n)
			for i := range events {
				node := rng.Intn(cur.NHost())
				repair := rng.Intn(2) == 0
				kind := EventFault
				if repair {
					kind = EventRepair
				}
				events[i] = Event{Kind: kind, Node: node}
				batch[i] = ft.Change{Node: node, Repair: repair}
			}
			wantNext, wantErr := cur.Apply(batch, nil)
			res, err := m.EventBatch(id, events)
			if wantErr != nil {
				if err == nil {
					t.Fatalf("%s: oracle rejected %v (%v) but manager accepted", id, events, wantErr)
				}
				continue // rejected: no record, no state change
			}
			if err != nil {
				t.Fatalf("%s: oracle accepted %v but manager said %v", id, events, err)
			}
			if res.Epoch != wantNext.Epoch() {
				t.Fatalf("%s: epoch %d, oracle says %d", id, res.Epoch, wantNext.Epoch())
			}
			model[id] = wantNext
			record()
		}
	}
	return perRecord, specs
}

// TestRecoverRandomSequencesFullAndEveryPrefix is the main property
// test: random traffic, then recovery from the full log AND from every
// record prefix, each checked bit-identically against the
// ft.Snapshot.Apply oracle at that point in history.
func TestRecoverRandomSequencesFullAndEveryPrefix(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var buf bytes.Buffer
			w := journal.NewWriter(&buf, journal.Options{Sync: journal.SyncAlways})
			m := NewManager(Options{Journal: w})
			perRecord, finalSpecs := driveRandom(t, rng, m, 150)
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()

			// The log must frame exactly one record per accepted transition.
			recs, _, err := journal.ReadAll(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("journal unreadable: %v", err)
			}
			if len(recs) != len(perRecord) {
				t.Fatalf("journal has %d records, accepted %d transitions", len(recs), len(perRecord))
			}

			// Full recovery matches the final oracle state.
			m2 := NewManager(Options{})
			st, err := m2.Recover(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if st.Torn || st.Records != len(recs) {
				t.Fatalf("recover stats %+v, want %d clean records", st, len(recs))
			}
			checkRecovered(t, m2, perRecord[len(perRecord)-1], finalSpecs)

			// Recovery from EVERY record prefix matches the oracle at
			// that record. Prefixes land on frame boundaries, so each is
			// a clean log.
			offsets := recordOffsets(t, raw)
			specsAt := specsAtEachRecord(t, recs)
			for i, off := range offsets {
				mi := NewManager(Options{})
				if _, err := mi.Recover(bytes.NewReader(raw[:off])); err != nil {
					t.Fatalf("prefix %d (%d bytes): %v", i+1, off, err)
				}
				checkRecovered(t, mi, perRecord[i], specsAt[i])
			}
		})
	}
}

// recordOffsets returns the end offset of each record in raw.
func recordOffsets(t *testing.T, raw []byte) []int64 {
	t.Helper()
	var offs []int64
	jr := journal.NewReader(bytes.NewReader(raw))
	for {
		if _, err := jr.Next(); err != nil {
			return offs
		}
		offs = append(offs, jr.Offset())
	}
}

// specsAtEachRecord reconstructs the live spec map after each record
// (deletes remove, creates add), for prefix checking.
func specsAtEachRecord(t *testing.T, recs []journal.Record) []map[string]Spec {
	t.Helper()
	cur := make(map[string]Spec)
	out := make([]map[string]Spec, len(recs))
	for i, rec := range recs {
		switch rec.Op {
		case journal.OpCreate:
			cur[rec.ID] = Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
		case journal.OpDelete:
			delete(cur, rec.ID)
		}
		snap := make(map[string]Spec, len(cur))
		for id, sp := range cur {
			snap[id] = sp
		}
		out[i] = snap
	}
	return out
}

// TargetHostSizesSpec mirrors loadgen.TargetHostSizes without the
// import cycle (loadgen imports fleet).
func TargetHostSizesSpec(spec Spec) (nTarget, nHost int) {
	if spec.Kind == KindShuffle {
		p := ft.SEParams{H: spec.H, K: spec.K}
		return p.NTarget(), p.NHost()
	}
	p := ft.Params{M: spec.M, H: spec.H, K: spec.K}
	return p.NTarget(), p.NHost()
}

var errInjected = errors.New("injected write failure")

// failingWriter writes through to a buffer until its byte budget runs
// out, then fails — mid-record when the budget lands there, exactly
// like a crash between write() and fsync.
type failingWriter struct {
	buf    bytes.Buffer
	budget int
}

func (fw *failingWriter) Write(p []byte) (int, error) {
	if fw.budget <= 0 {
		return 0, errInjected
	}
	if len(p) > fw.budget {
		n, _ := fw.buf.Write(p[:fw.budget])
		fw.budget = 0
		return n, errInjected
	}
	fw.budget -= len(p)
	return fw.buf.Write(p)
}

// TestRecoverAfterInjectedCrash drives deterministic traffic into a
// journal whose underlying writer dies after N bytes, for a sweep of
// N. The durability contract under test: every transition acknowledged
// before the failure recovers bit-identically; the transition that hit
// the failure is rejected (ErrUnavailable), leaves the live snapshot
// unpublished, and its partial record is dropped as a torn tail.
func TestRecoverAfterInjectedCrash(t *testing.T) {
	for _, budget := range []int{0, 7, 13, 40, 64, 100, 200, 400, 800} {
		t.Run(fmt.Sprintf("budget%d", budget), func(t *testing.T) {
			fw := &failingWriter{budget: budget}
			// BufferSize 1 forces bufio to hit the failing writer on every
			// append (SyncAlways flushes per record anyway; this makes the
			// partial-write path deterministic).
			w := journal.NewWriter(fw, journal.Options{Sync: journal.SyncAlways, BufferSize: 1})
			m := NewManager(Options{Journal: w})
			rng := rand.New(rand.NewSource(42))

			model := make(map[string]*ft.Snapshot)
			specs := make(map[string]Spec)
			acked := snapshotModel(model)

			spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 3}
			nTarget, nHost := TargetHostSizesSpec(spec)
			failed := false
		drive:
			for op := 0; op < 60 && !failed; op++ {
				id := fmt.Sprintf("i%d", op%3)
				if _, ok := model[id]; !ok {
					_, err := m.Create(id, spec)
					switch {
					case errors.Is(err, ErrUnavailable):
						failed = true
						break drive
					case err != nil:
						t.Fatal(err)
					}
					s, _ := ft.NewSnapshot(nTarget, nHost, spec.K, nil)
					model[id] = s
					specs[id] = spec
					acked = snapshotModel(model)
					continue
				}
				n := 1 + rng.Intn(3)
				events := make([]Event, n)
				batch := make([]ft.Change, n)
				for i := range events {
					node := rng.Intn(nHost)
					repair := rng.Intn(2) == 0
					kind := EventFault
					if repair {
						kind = EventRepair
					}
					events[i] = Event{Kind: kind, Node: node}
					batch[i] = ft.Change{Node: node, Repair: repair}
				}
				wantNext, wantErr := model[id].Apply(batch, nil)
				before := mustGet(t, m, id).Snapshot()
				_, err := m.EventBatch(id, events)
				switch {
				case errors.Is(err, ErrUnavailable):
					// The crash point. The snapshot must NOT have advanced:
					// journal-then-publish means an unjournaled transition is
					// never visible.
					after := mustGet(t, m, id).Snapshot()
					if after.Epoch() != before.Epoch() {
						t.Fatalf("journal failed but epoch advanced %d -> %d", before.Epoch(), after.Epoch())
					}
					failed = true
				case wantErr != nil:
					if err == nil {
						t.Fatalf("oracle rejected but manager accepted")
					}
				case err != nil:
					t.Fatalf("oracle accepted but manager said %v", err)
				default:
					model[id] = wantNext
					acked = snapshotModel(model)
				}
			}
			// Small budgets must hit the crash point within the run; large
			// ones may finish clean (rejected ops append nothing), which
			// still checks full recovery below.
			if budget <= 200 && !failed {
				t.Fatalf("writer budget %d never failed in 60 ops", budget)
			}

			// A poisoned journal must keep refusing transitions rather
			// than silently diverging from the log.
			if failed {
				if _, err := m.EventBatch("i0", []Event{{Kind: EventFault, Node: 0}}); !errors.Is(err, ErrUnavailable) {
					if _, ok := m.Get("i0"); ok {
						t.Fatalf("append after poison = %v, want ErrUnavailable", err)
					}
				}
			}

			// Recover from whatever reached the "disk": exactly the acked
			// prefix, with any partial record dropped as a torn tail.
			m2 := NewManager(Options{})
			st, err := m2.Recover(bytes.NewReader(fw.buf.Bytes()))
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if failed && int64(fw.buf.Len()) > st.Offset && !st.Torn {
				t.Errorf("crash left %d bytes but recovery saw no torn tail (offset %d)", fw.buf.Len(), st.Offset)
			}
			checkRecovered(t, m2, acked, specs)
		})
	}
}

// TestDeleteTombstonesInFlightWriter pins the fix for the
// delete/recreate journal hazard: a writer still holding the old
// *Instance after Manager.Delete must be rejected, not journal a
// transition record into the reused id's history.
func TestDeleteTombstonesInFlightWriter(t *testing.T) {
	var buf bytes.Buffer
	w := journal.NewWriter(&buf, journal.Options{})
	m := NewManager(Options{Journal: w})
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	if _, err := m.Create("a", spec); err != nil {
		t.Fatal(err)
	}
	held := mustGet(t, m, "a") // the racing writer's stale handle
	if ok, err := m.Delete("a"); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if _, err := held.ApplyBatch([]Event{{Kind: EventFault, Node: 1}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale writer got %v, want ErrNotFound", err)
	}
	// Recreate the id; the new incarnation journals from epoch 1.
	if _, err := m.Create("a", spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.EventBatch("a", []Event{{Kind: EventFault, Node: 2}}); err != nil {
		t.Fatal(err)
	}
	w.Close()
	m2 := NewManager(Options{})
	st, err := m2.Recover(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("recover over delete+recreate: %v", err)
	}
	if st.Orphaned != 0 {
		t.Errorf("orphaned %d, want 0 (tombstone prevents stale records)", st.Orphaned)
	}
	if s := mustGet(t, m2, "a").Snapshot(); s.Epoch() != 1 || s.NumFaults() != 1 {
		t.Errorf("recreated instance recovered to epoch %d faults %v", s.Epoch(), s.Faults())
	}
}

func mustGet(t *testing.T, m *Manager, id string) *Instance {
	t.Helper()
	in, ok := m.Get(id)
	if !ok {
		t.Fatalf("instance %s missing", id)
	}
	return in
}

// TestRecoverRejectsCorruptSemantics pins that recovery fails loudly —
// rather than accepting impossible state — on logs that frame cleanly
// but encode epoch gaps, unknown instances, or over-budget fault sets.
func TestRecoverRejectsCorruptSemantics(t *testing.T) {
	spec := journal.Spec{Kind: "debruijn", M: 2, H: 4, K: 2}
	cases := map[string][]journal.Record{
		"epoch gap": {
			{Op: journal.OpCreate, ID: "a", Spec: spec},
			{Op: journal.OpTransition, ID: "a", Epoch: 2, Applied: 1, Faults: []int{1}},
		},
		"epoch replay": {
			{Op: journal.OpCreate, ID: "a", Spec: spec},
			{Op: journal.OpTransition, ID: "a", Epoch: 1, Applied: 1, Faults: []int{1}},
			{Op: journal.OpTransition, ID: "a", Epoch: 1, Applied: 1, Faults: []int{2}},
		},
		"unknown instance": {
			{Op: journal.OpTransition, ID: "ghost", Epoch: 1, Applied: 1, Faults: []int{1}},
		},
		"over budget": {
			{Op: journal.OpCreate, ID: "a", Spec: spec},
			{Op: journal.OpTransition, ID: "a", Epoch: 1, Applied: 3, Faults: []int{1, 2, 3}},
		},
		"fault out of range": {
			{Op: journal.OpCreate, ID: "a", Spec: spec},
			{Op: journal.OpTransition, ID: "a", Epoch: 1, Applied: 1, Faults: []int{999}},
		},
		"duplicate create": {
			{Op: journal.OpCreate, ID: "a", Spec: spec},
			{Op: journal.OpCreate, ID: "a", Spec: spec},
		},
	}
	for name, recs := range cases {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			w := journal.NewWriter(&buf, journal.Options{})
			for _, rec := range recs {
				if err := w.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			w.Close()
			m := NewManager(Options{})
			if _, err := m.Recover(bytes.NewReader(buf.Bytes())); err == nil {
				t.Fatalf("recovery accepted a %s log", name)
			}
		})
	}

	// The one tolerated out-of-order shape: a transition that trails its
	// instance's delete (in-flight writer vs delete race) is skipped,
	// not fatal.
	var buf bytes.Buffer
	w := journal.NewWriter(&buf, journal.Options{})
	for _, rec := range []journal.Record{
		{Op: journal.OpCreate, ID: "a", Spec: spec},
		{Op: journal.OpTransition, ID: "a", Epoch: 1, Applied: 1, Faults: []int{1}},
		{Op: journal.OpDelete, ID: "a"},
		{Op: journal.OpTransition, ID: "a", Epoch: 2, Applied: 1, Faults: []int{1, 2}},
	} {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	m := NewManager(Options{})
	st, err := m.Recover(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("orphaned transition should be skipped, got %v", err)
	}
	if st.Orphaned != 1 || len(m.List()) != 0 {
		t.Fatalf("stats %+v, instances %v; want 1 orphaned, none live", st, m.List())
	}
}
