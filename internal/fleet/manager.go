package fleet

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"

	"ftnet/internal/journal"
)

// numShards is the number of independently-locked instance maps. A
// power of two well above typical core counts keeps registry contention
// negligible next to per-instance work.
const numShards = 16

// Options configures a Manager.
type Options struct {
	// CacheSize caps the shared mapping cache (<= 0 selects
	// DefaultCacheSize).
	CacheSize int
	// CacheShards sets the mapping cache's shard count (<= 0 selects
	// DefaultCacheShards).
	CacheShards int
	// Journal, when non-nil, makes every accepted transition durable:
	// instance creates/deletes and applied event batches each append
	// one O(k) record before the state change becomes visible.
	// Manager.Recover replays such a log after a restart.
	Journal *journal.Writer
}

// Manager is the sharded registry that owns a fleet of instances behind
// one API. All methods are safe for concurrent use.
type Manager struct {
	shards [numShards]shard
	seed   maphash.Seed
	cache  *Cache

	events  atomic.Uint64  // applied events, fleet-wide
	batches atomic.Uint64  // applied atomic transitions (a single event counts one)
	lookups stripedCounter // lookups, fleet-wide (striped: it sits on the read path)

	rejectedBudget   atomic.Uint64 // rejections: budget exhausted
	rejectedConflict atomic.Uint64 // rejections: double fault / repair healthy
	rejectedInvalid  atomic.Uint64 // rejections: unknown node/kind, empty batch

	journal       atomic.Pointer[journal.Writer] // nil = durability off
	journalFailed atomic.Uint64                  // transitions refused: journal append error
	recovered     atomic.Pointer[RecoverStats]   // last Recover result, for stats
}

type shard struct {
	mu        sync.RWMutex
	instances map[string]*Instance
}

// NewManager returns an empty manager with its shared mapping cache.
func NewManager(opts Options) *Manager {
	m := &Manager{
		seed:  maphash.MakeSeed(),
		cache: NewCacheShards(opts.CacheSize, opts.CacheShards),
	}
	for i := range m.shards {
		m.shards[i].instances = make(map[string]*Instance)
	}
	if opts.Journal != nil {
		m.SetJournal(opts.Journal)
	}
	return m
}

// SetJournal attaches (or replaces) the durability journal, wiring it
// into every existing instance. ftnetd calls it after recovery — the
// boot order is recover from the old log, truncate any torn tail, then
// attach the append writer — so it must happen before traffic is
// served; concurrent use with event application is not supported.
func (m *Manager) SetJournal(w *journal.Writer) {
	m.journal.Store(w)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for _, in := range s.instances {
			in.writeMu.Lock()
			in.journal = w
			in.writeMu.Unlock()
		}
		s.mu.Unlock()
	}
}

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[maphash.String(m.seed, id)%numShards]
}

// Create registers a new instance under id. The id must be non-empty
// and unused; the spec must satisfy the paper's preconditions. With a
// journal attached, the create record is appended under the shard lock
// before the instance becomes visible, so no transition record can
// ever precede its instance's create record in the log. Holding the
// shard lock across the (possibly fsynced) append briefly stalls that
// shard's lookups; that is a deliberate trade — create/delete are rare
// control-plane operations, and the hot transition path fsyncs only
// under its own instance's writer mutex.
func (m *Manager) Create(id string, spec Spec) (*Instance, error) {
	if id == "" {
		return nil, fmt.Errorf("fleet: empty instance id")
	}
	in, err := newInstance(id, spec, m.cache)
	if err != nil {
		return nil, err
	}
	jw := m.journal.Load()
	in.journal = jw // not yet visible to anyone else
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.instances[id]; dup {
		return nil, errorf(ErrConflict, "fleet: instance %q already exists", id)
	}
	if jw != nil {
		rec := journal.Record{Op: journal.OpCreate, ID: id, Spec: journalSpec(spec)}
		if err := jw.Append(rec); err != nil {
			m.journalFailed.Add(1)
			return nil, errorf(ErrUnavailable, "fleet: journal create %s: %v", id, err)
		}
	}
	s.instances[id] = in
	return in, nil
}

// createRaw registers an instance without journaling — the recovery
// path, replaying records that are already in the log.
func (m *Manager) createRaw(id string, spec Spec) (*Instance, error) {
	if id == "" {
		return nil, fmt.Errorf("fleet: empty instance id")
	}
	in, err := newInstance(id, spec, m.cache)
	if err != nil {
		return nil, err
	}
	in.journal = m.journal.Load()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.instances[id]; dup {
		return nil, errorf(ErrConflict, "fleet: instance %q already exists", id)
	}
	s.instances[id] = in
	return in, nil
}

// journalSpec converts a fleet spec to its journal representation.
func journalSpec(spec Spec) journal.Spec {
	return journal.Spec{Kind: string(spec.Kind), M: spec.M, H: spec.H, K: spec.K}
}

// Get returns the instance with the given id.
func (m *Manager) Get(id string) (*Instance, bool) {
	s := m.shardFor(id)
	s.mu.RLock()
	in, ok := s.instances[id]
	s.mu.RUnlock()
	return in, ok
}

// Delete removes the instance with the given id, reporting whether it
// existed. With a journal attached the delete record is appended
// first; if that fails the instance stays registered, so memory never
// gets ahead of the log. Before the append, the instance is
// tombstoned under its writer mutex: any ApplyBatch that raced the
// delete has either already finished (its record precedes the delete
// record) or will see the tombstone and reject — so no transition
// record can ever trail its instance's delete record, and a reused id
// recovers cleanly.
func (m *Manager) Delete(id string) (bool, error) {
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	in, ok := s.instances[id]
	if !ok {
		return false, nil
	}
	in.writeMu.Lock()
	in.deleted = true
	in.writeMu.Unlock()
	if jw := m.journal.Load(); jw != nil {
		if err := jw.Append(journal.Record{Op: journal.OpDelete, ID: id}); err != nil {
			m.journalFailed.Add(1)
			in.writeMu.Lock()
			in.deleted = false // the delete did not happen
			in.writeMu.Unlock()
			return false, errorf(ErrUnavailable, "fleet: journal delete %s: %v", id, err)
		}
	}
	delete(s.instances, id)
	return true, nil
}

// deleteRaw removes an instance without journaling (recovery path).
func (m *Manager) deleteRaw(id string) {
	s := m.shardFor(id)
	s.mu.Lock()
	delete(s.instances, id)
	s.mu.Unlock()
}

// Event routes one fault/repair event to the named instance.
func (m *Manager) Event(id string, ev Event) (EventResult, error) {
	return m.EventBatch(id, []Event{ev})
}

// EventBatch routes a whole fault burst to the named instance as one
// atomic transition: either every event applies and the epoch advances
// by exactly one, or none do.
func (m *Manager) EventBatch(id string, events []Event) (EventResult, error) {
	in, ok := m.Get(id)
	if !ok {
		return EventResult{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	res, err := in.ApplyBatch(events)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnavailable):
			m.journalFailed.Add(1)
		case errors.Is(err, ErrBudget):
			m.rejectedBudget.Add(1)
		case errors.Is(err, ErrConflict):
			m.rejectedConflict.Add(1)
		default:
			m.rejectedInvalid.Add(1)
		}
		return res, err
	}
	m.events.Add(uint64(len(events)))
	m.batches.Add(1)
	return res, nil
}

// Lookup answers where target node x of the named instance runs now.
func (m *Manager) Lookup(id string, x int) (int, error) {
	in, ok := m.Get(id)
	if !ok {
		return 0, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	phi, err := in.Lookup(x)
	if err != nil {
		return 0, err
	}
	m.lookups.Add(x)
	return phi, nil
}

// List returns the sorted ids of all registered instances.
func (m *Manager) List() []string {
	var ids []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id := range s.instances {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Stats is a fleet-wide counter snapshot. Events counts individual
// applied events; Batches counts atomic transitions (a single-event
// POST is a batch of one). Rejected is the total over RejectedBy's
// causes — rejections count per transition, not per event.
type Stats struct {
	Instances  int           `json:"instances"`
	Events     uint64        `json:"events"`
	Batches    uint64        `json:"batches"`
	Rejected   uint64        `json:"rejected"`
	RejectedBy RejectedStats `json:"rejected_by_cause"`
	Lookups    uint64        `json:"lookups"`
	Cache      CacheStats    `json:"cache"`
	Journal    JournalStats  `json:"journal"`
}

// JournalStats reports the durability layer: the append-side counters
// of the attached writer plus the result of the boot-time recovery (if
// one ran). LastEpoch is the epoch of the most recently journaled
// transition, fleet-wide.
type JournalStats struct {
	Enabled      bool          `json:"enabled"`
	Records      uint64        `json:"records"`
	Bytes        uint64        `json:"bytes"`
	Syncs        uint64        `json:"syncs"`
	LastEpoch    uint64        `json:"last_epoch"`
	AppendFailed uint64        `json:"append_failed"`
	Recovery     *RecoverStats `json:"recovery,omitempty"`
}

// Stats returns a snapshot of the manager's counters and its cache.
func (m *Manager) Stats() Stats {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.instances)
		s.mu.RUnlock()
	}
	rej := RejectedStats{
		Budget:   m.rejectedBudget.Load(),
		Conflict: m.rejectedConflict.Load(),
		Invalid:  m.rejectedInvalid.Load(),
	}
	js := JournalStats{AppendFailed: m.journalFailed.Load(), Recovery: m.recovered.Load()}
	if jw := m.journal.Load(); jw != nil {
		ws := jw.Stats()
		js.Enabled = true
		js.Records = ws.Records
		js.Bytes = ws.Bytes
		js.Syncs = ws.Syncs
		js.LastEpoch = ws.LastEpoch
	}
	return Stats{
		Instances:  n,
		Events:     m.events.Load(),
		Batches:    m.batches.Load(),
		Rejected:   rej.Total(),
		RejectedBy: rej,
		Lookups:    m.lookups.Load(),
		Cache:      m.cache.Stats(),
		Journal:    js,
	}
}

// Cache exposes the shared mapping cache (read-mostly; used by the
// facade and benchmarks).
func (m *Manager) Cache() *Cache { return m.cache }
