package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"ftnet/internal/obs"
	"ftnet/internal/shard"
)

// maxBodyBytes bounds a buffered request body. Instance-plane bodies
// are small JSON (an id+spec, an event burst); buffering is what makes
// the single retry after a redirect possible.
const maxBodyBytes = 8 << 20

// maxOverrides caps the learned-override cache. Past the cap an
// arbitrary entry is evicted: overrides are a latency optimization,
// not correctness — a dropped entry just means one extra bounce the
// next time that id is touched, which re-teaches it.
const maxOverrides = 4096

// proxy is the routing handler: ring + override cache + one shared
// upstream transport with persistent connections per daemon.
type proxy struct {
	peers  map[string]string // member name -> base URL
	valid  map[string]bool   // configured peer base URLs: the only hints honored
	ring   *shard.Ring
	client *http.Client

	mu       sync.RWMutex
	override map[string]string // id -> base URL learned from X-Ftnet-Owner

	requests  *obs.Counter
	redirects *obs.Counter
	misroutes *obs.Counter // exhausted the retry: both attempts bounced
	upErrors  *obs.Counter
	reg       *obs.Registry
	hist      *obs.Histogram
}

func newProxy(peers map[string]string, replicas int, timeout time.Duration) *proxy {
	members := make([]string, 0, len(peers))
	valid := make(map[string]bool, len(peers))
	for name, url := range peers {
		members = append(members, name)
		valid[url] = true
	}
	reg := obs.New()
	p := &proxy{
		peers: peers,
		valid: valid,
		ring:  shard.New(members, replicas),
		client: &http.Client{
			Timeout: timeout,
			// Redirect-following is the proxy's job (with override
			// learning), never the HTTP client's.
			CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
		},
		override:  make(map[string]string),
		reg:       reg,
		requests:  reg.Counter("ftproxy_requests_total", "Requests routed to a shard owner."),
		redirects: reg.Counter("ftproxy_redirects_total", "Requests re-routed after a wrong-shard hint."),
		misroutes: reg.Counter("ftproxy_misroutes_total", "Requests still bounced after the redirect retry."),
		upErrors:  reg.Counter("ftproxy_upstream_errors_total", "Upstream connection failures."),
		hist:      reg.Histogram("ftproxy_request_seconds", "End-to-end proxied request latency."),
	}
	return p
}

func (p *proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"status\":\"ok\"}\n")
		return
	case r.URL.Path == "/metrics":
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		p.reg.WritePrometheus(w)
		return
	case r.URL.Path == "/v1/ring" && r.Method == http.MethodGet:
		p.serveRing(w)
		return
	}
	id, body, err := p.routeKey(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	if id == "" {
		writeErr(w, http.StatusNotFound,
			"ftproxy: no instance id in request; fleet-wide endpoints are served by the daemons directly")
		return
	}
	start := time.Now()
	p.requests.Inc()
	p.forward(w, r, id, body)
	p.hist.Observe(time.Since(start))
}

// routeKey extracts the routing instance id and buffers the body (the
// body must be replayable for the redirect retry). An empty id with a
// nil error means the path carries none.
func (p *proxy) routeKey(r *http.Request) (string, []byte, error) {
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
		if err != nil {
			return "", nil, fmt.Errorf("ftproxy: read body: %v", err)
		}
		if len(b) > maxBodyBytes {
			return "", nil, fmt.Errorf("ftproxy: body over %d bytes", maxBodyBytes)
		}
		body = b
	}
	rest, ok := strings.CutPrefix(r.URL.Path, "/v1/instances")
	if !ok {
		return "", body, nil
	}
	if rest == "" || rest == "/" {
		// POST /v1/instances carries the id in the create body.
		if r.Method != http.MethodPost {
			return "", body, nil
		}
		var req struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &req); err != nil || req.ID == "" {
			return "", nil, fmt.Errorf("ftproxy: create body has no instance id")
		}
		return req.ID, body, nil
	}
	id := strings.TrimPrefix(rest, "/")
	if i := strings.IndexByte(id, '/'); i >= 0 {
		id = id[:i]
	}
	if id == "" {
		return "", nil, fmt.Errorf("ftproxy: empty instance id in path")
	}
	return id, body, nil
}

// forward sends the request to the id's owner; on a wrong-shard bounce
// it learns the daemon's hint and retries exactly once. Two bounces in
// a row mean the cluster is mid-cutover faster than we can chase —
// surface the second answer (with its hint) and let the client retry.
func (p *proxy) forward(w http.ResponseWriter, r *http.Request, id string, body []byte) {
	target := p.lookupOverride(id)
	if target == "" {
		target = p.peers[p.ring.Owner(id)]
	}
	for attempt := 0; ; attempt++ {
		resp, err := p.send(r, target, body)
		if err != nil {
			p.upErrors.Inc()
			writeErr(w, http.StatusBadGateway, fmt.Sprintf("ftproxy: upstream %s: %v", target, err))
			return
		}
		// Only hints naming a configured peer are honored: the header
		// comes from an upstream response, and following (or caching) an
		// arbitrary URL would let one bad daemon steer traffic anywhere.
		owner := resp.Header.Get("X-Ftnet-Owner")
		hintOK := owner != "" && p.valid[owner]
		if resp.StatusCode == http.StatusForbidden && hintOK && owner != target && attempt == 0 {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			p.setOverride(id, owner)
			p.redirects.Inc()
			target = owner
			continue
		}
		if resp.StatusCode == http.StatusForbidden && owner != "" {
			p.misroutes.Inc()
		}
		copyResponse(w, resp)
		return
	}
}

func (p *proxy) send(r *http.Request, baseURL string, body []byte) (*http.Response, error) {
	url := baseURL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Del("Connection")
	return p.client.Do(req)
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (p *proxy) lookupOverride(id string) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.override[id]
}

func (p *proxy) setOverride(id, url string) {
	p.mu.Lock()
	// A hint that matches the ring again means the exception is over.
	if p.peers[p.ring.Owner(id)] == url {
		delete(p.override, id)
	} else {
		if _, ok := p.override[id]; !ok && len(p.override) >= maxOverrides {
			// Evict an arbitrary entry (map iteration order): the next
			// bounce for the evicted id re-teaches it.
			for victim := range p.override {
				delete(p.override, victim)
				break
			}
		}
		p.override[id] = url
	}
	p.mu.Unlock()
}

// serveRing reports the proxy's routing view: members, vnode count,
// and how many ids are currently overridden away from the ring.
func (p *proxy) serveRing(w http.ResponseWriter) {
	p.mu.RLock()
	n := len(p.override)
	p.mu.RUnlock()
	members := append([]string(nil), p.ring.Members()...)
	sort.Strings(members)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"members":   members,
		"peers":     p.peers,
		"replicas":  p.ring.Replicas(),
		"overrides": n,
	})
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
