package fleet

import (
	"sync"
	"testing"

	"ftnet/internal/ft"
)

func TestCacheMatchesNewMapping(t *testing.T) {
	c := NewCache(8)
	p := ft.Params{M: 2, H: 4, K: 3}
	sets := [][]int{nil, {0}, {3, 7}, {1, 9, 16}}
	for _, faults := range sets {
		got, err := c.Get(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatalf("Get(%v): %v", faults, err)
		}
		want, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < p.NTarget(); x++ {
			if got.Phi(x) != want.Phi(x) {
				t.Fatalf("faults %v: Phi(%d) = %d, want %d", faults, x, got.Phi(x), want.Phi(x))
			}
		}
	}
}

func TestCacheHitsAndMisses(t *testing.T) {
	c := NewCache(8)
	for i := 0; i < 5; i++ {
		if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 4 {
		t.Fatalf("hits/misses = %d/%d, want 4/1", st.Hits, st.Misses)
	}
	if st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard: the classic LRU semantics are exact.
	c := NewCacheShards(2, 1)
	a, b, d := []int{0}, []int{1}, []int{2}
	mustGet := func(f []int) {
		t.Helper()
		if _, err := c.Get(16, 18, f); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(a)
	mustGet(b)
	mustGet(a) // refresh a: b is now LRU
	mustGet(d) // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("evictions/size = %d/%d, want 1/2", st.Evictions, st.Size)
	}
	mustGet(a) // still cached
	if got := c.Stats().Hits; got != 2 {
		t.Fatalf("hits = %d, want 2 (a twice)", got)
	}
	mustGet(b) // was evicted: a fresh miss
	if got := c.Stats().Misses; got != 4 {
		t.Fatalf("misses = %d, want 4 (a, b, d, b again)", got)
	}
}

func TestCacheCanonicalizesUnsortedFaults(t *testing.T) {
	c := NewCache(8)
	if _, err := c.Get(16, 18, []int{5, 2}); err != nil {
		t.Fatal(err)
	}
	m, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Size != 1 {
		t.Fatalf("unsorted set got its own entry: %+v", st)
	}
	want, _ := ft.NewMapping(16, 18, []int{2, 5})
	if m.Phi(2) != want.Phi(2) {
		t.Fatalf("Phi(2) = %d, want %d", m.Phi(2), want.Phi(2))
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	c := NewCache(8)
	bad := []int{99} // out of range for nHost=18
	for i := 0; i < 3; i++ {
		if _, err := c.Get(16, 18, bad); err == nil {
			t.Fatal("invalid fault set accepted")
		}
	}
	st := c.Stats()
	if st.Size != 0 {
		t.Fatalf("error entry retained: size = %d", st.Size)
	}
	if st.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (errors must not be served from cache)", st.Misses)
	}
}

// TestCacheShardStatsAggregate spreads distinct fault sets over the
// shards and checks that the per-shard stats sum to the aggregate.
func TestCacheShardStatsAggregate(t *testing.T) {
	c := NewCacheShards(64, 8)
	for i := 0; i < 20; i++ {
		if _, err := c.Get(16, 18, []int{i % 18}); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Get(16, 18, []int{i % 18}); err != nil { // guaranteed hit
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if len(st.Shards) != 8 {
		t.Fatalf("shard stats count = %d, want 8", len(st.Shards))
	}
	var size int
	var hits, misses, evictions uint64
	for _, sh := range st.Shards {
		size += sh.Size
		hits += sh.Hits
		misses += sh.Misses
		evictions += sh.Evictions
	}
	if size != st.Size || hits != st.Hits || misses != st.Misses || evictions != st.Evictions {
		t.Fatalf("per-shard stats do not sum to aggregate: %+v", st)
	}
	if st.Misses != 18 || st.Hits != 22 {
		t.Fatalf("hits/misses = %d/%d, want 22/18", st.Hits, st.Misses)
	}
	if st.Capacity < 64 {
		t.Fatalf("capacity = %d, want >= requested 64", st.Capacity)
	}
}

// TestCacheShardedConcurrent hammers a sharded cache from many
// goroutines over a working set; under -race this is the sharding
// correctness proof, and every answer is cross-checked.
func TestCacheShardedConcurrent(t *testing.T) {
	c := NewCacheShards(32, 4)
	sets := [][]int{nil, {0}, {1}, {2, 5}, {3, 7}, {1, 9, 16}}
	want := make([]*ft.Mapping, len(sets))
	for i, f := range sets {
		m, err := ft.NewMapping(16, 20, f)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = m
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j := (i + w) % len(sets)
				m, err := c.Get(16, 20, sets[j])
				if err != nil {
					t.Errorf("Get(%v): %v", sets[j], err)
					return
				}
				if m.Phi(7) != want[j].Phi(7) {
					t.Errorf("faults %v: Phi(7) = %d, want %d", sets[j], m.Phi(7), want[j].Phi(7))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != uint64(len(sets)) {
		t.Fatalf("misses = %d, want %d (one per distinct set)", st.Misses, len(sets))
	}
}

// TestCacheHitPathAllocFree pins the binary-key scheme's contract: a
// cache hit builds its key in the shard's reused scratch buffer and
// probes the map with the non-allocating string(bytes) form, so
// serving a warmed fault pattern allocates nothing at all.
func TestCacheHitPathAllocFree(t *testing.T) {
	c := NewCache(8)
	faults := []int{2, 5, 11}
	if _, err := c.Get(16, 20, faults); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := c.Get(16, 20, faults); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cache hit allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCacheBinaryKeysDistinguishShapes guards the fixed-width key
// encoding against aliasing: requests that concatenate to the same
// digit stream but differ in shape (sizes vs fault values) must get
// distinct entries.
func TestCacheBinaryKeysDistinguishShapes(t *testing.T) {
	c := NewCacheShards(8, 1)
	a, err := c.Get(16, 18, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.Get(16, 17, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Misses != 3 || st.Size != 3 {
		t.Fatalf("three distinct shapes shared entries: %+v", st)
	}
	if a.NHost != 18 || len(a.Faults) != 1 || len(b.Faults) != 2 || d.NHost != 17 {
		t.Fatalf("aliased mappings: a=%+v b=%+v d=%+v", a, b, d)
	}
}

// TestCacheAdmissionDoorkeeper pins the doorkeeper contract: a fault
// pattern's first sighting is computed but NOT admitted to the LRU
// (and counted as admission-rejected); its second miss admits it; from
// then on it hits. One-off patterns therefore never occupy a slot.
func TestCacheAdmissionDoorkeeper(t *testing.T) {
	c := NewCacheConfig(CacheConfig{Capacity: 8, Shards: 1, Admission: true})
	want, err := ft.NewMapping(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}

	// First sighting: correct answer, nothing cached.
	m, err := c.Get(16, 18, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phi(7) != want.Phi(7) {
		t.Fatalf("unadmitted compute Phi(7) = %d, want %d", m.Phi(7), want.Phi(7))
	}
	st := c.Stats()
	if st.Size != 0 || st.AdmissionRejected != 1 || st.Misses != 1 {
		t.Fatalf("after first sight: %+v, want size 0, rejected 1", st)
	}
	if st.Shards[0].AdmissionRejected != 1 {
		t.Fatalf("per-shard admission stats missing: %+v", st.Shards[0])
	}

	// Second sighting: the doorkeeper has seen it — admitted and cached.
	if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Size != 1 || st.Misses != 2 || st.AdmissionRejected != 1 {
		t.Fatalf("after second sight: %+v, want size 1", st)
	}

	// Third: a plain hit.
	if _, err := c.Get(16, 18, []int{2, 5}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 1 {
		t.Fatalf("after third sight: %+v, want 1 hit", st)
	}

	// A stream of one-off patterns computes correctly and stays out of
	// the LRU entirely.
	for i := 0; i < 10; i++ {
		if _, err := c.Get(16, 18, []int{i}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("one-off patterns washed the cache: %+v", st)
	}
}

// TestCacheSingleFlight hammers one cold key from many goroutines; the
// single-flight path must compute the mapping exactly once.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(8)
	const workers = 32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			m, err := c.Get(1<<12, 1<<12+6, []int{10, 20, 30})
			if err != nil || m == nil {
				t.Errorf("Get: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want 1 (single-flight)", st.Misses)
	}
	if st.Hits != workers-1 {
		t.Fatalf("hits = %d, want %d", st.Hits, workers-1)
	}
}
