package ftnet

import "testing"

func TestRingFacade(t *testing.T) {
	net, err := NewRing(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Host.N() != 14 {
		t.Fatalf("host size %d", net.Host.N())
	}
	if net.Host.MaxDegree() != 6 {
		t.Errorf("FT ring degree %d, want 2k+2 = 6", net.Host.MaxDegree())
	}
	m, err := net.Reconfigure([]int{3, 9})
	if err != nil {
		t.Fatal(err)
	}
	if m.Phi(3) != 4 {
		t.Errorf("phi(3) = %d", m.Phi(3))
	}
	if err := net.VerifyExhaustive(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRing(1, 2); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestDistributedReconfigureFacade(t *testing.T) {
	net, err := NewDeBruijn2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	faults := []int{3, 11}
	rounds, assign, err := net.DistributedReconfigure(faults)
	if err != nil {
		t.Fatal(err)
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
	// Consistency with the centralized map.
	m, err := net.Reconfigure(faults)
	if err != nil {
		t.Fatal(err)
	}
	want := m.HostToTarget()
	for v := range want {
		if assign[v] != want[v] {
			t.Fatalf("assignment mismatch at host %d: %d vs %d", v, assign[v], want[v])
		}
	}
}
