package ftnet

import "testing"

// TestFleetFacade walks the create -> fault -> lookup -> repair cycle
// through the public facade and cross-checks against the one-shot
// Reconfigure API.
func TestFleetFacade(t *testing.T) {
	mgr := NewFleetManager(FleetOptions{})
	spec := FleetSpec{Kind: FleetDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}
	for _, f := range []int{3, 11} {
		if _, err := mgr.Event("prod", FleetEvent{Kind: FleetFault, Node: f}); err != nil {
			t.Fatal(err)
		}
	}

	net, err := NewDeBruijn2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		phi, err := mgr.Lookup("prod", x)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want.Phi(x) {
			t.Fatalf("Lookup(prod, %d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	if _, err := mgr.Event("prod", FleetEvent{Kind: FleetRepair, Node: 3}); err != nil {
		t.Fatal(err)
	}
	st := mgr.Stats()
	if st.Instances != 1 || st.Events != 3 {
		t.Fatalf("stats = %+v", st)
	}
}
