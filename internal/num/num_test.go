package num

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXMatchesDefinition(t *testing.T) {
	cases := []struct {
		z, m, r, s, want int
	}{
		{0, 2, 0, 16, 0},
		{5, 2, 1, 16, 11},
		{15, 2, 1, 16, 15},
		{15, 2, 0, 16, 14},
		{3, 2, -2, 17, 4},
		{0, 2, -1, 17, 16},
		{7, 3, 2, 27, 23},
		{8, 3, -6, 28, 18},
	}
	for _, c := range cases {
		if got := X(c.z, c.m, c.r, c.s); got != c.want {
			t.Errorf("X(%d,%d,%d,%d) = %d, want %d", c.z, c.m, c.r, c.s, got, c.want)
		}
	}
}

func TestXAlwaysCanonical(t *testing.T) {
	f := func(z int16, m uint8, r int16, s uint16) bool {
		mm := int(m%8) + 2
		ss := int(s%1000) + 1
		v := X(int(z), mm, int(r), ss)
		return v >= 0 && v < ss
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXPanicsOnBadModulus(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("X with s=0 did not panic")
		}
	}()
	X(1, 2, 0, 0)
}

func TestMod(t *testing.T) {
	if Mod(-1, 5) != 4 {
		t.Errorf("Mod(-1,5) = %d, want 4", Mod(-1, 5))
	}
	if Mod(-5, 5) != 0 {
		t.Errorf("Mod(-5,5) = %d, want 0", Mod(-5, 5))
	}
	if Mod(7, 5) != 2 {
		t.Errorf("Mod(7,5) = %d, want 2", Mod(7, 5))
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 18, 6}, {0, 5, 5}, {5, 0, 5}, {-12, 18, 6}, {17, 13, 1}, {0, 0, 0},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGCDIdentity(t *testing.T) {
	f := func(a, b int16) bool {
		g, x, y := ExtGCD(int(a), int(b))
		return int(a)*x+int(b)*y == g && g == GCD(int(a), int(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModInv(t *testing.T) {
	inv, ok := ModInv(2, 17)
	if !ok || Mod(2*inv, 17) != 1 {
		t.Errorf("ModInv(2,17) = %d,%v; want inverse", inv, ok)
	}
	if _, ok := ModInv(2, 16); ok {
		t.Error("ModInv(2,16) should not exist")
	}
	// Property: whenever an inverse is reported it really inverts.
	f := func(a int16, s uint16) bool {
		ss := int(s%997) + 2
		inv, ok := ModInv(int(a), ss)
		if !ok {
			return GCD(Mod(int(a), ss), ss) != 1
		}
		return Mod(Mod(int(a), ss)*inv, ss) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPow(t *testing.T) {
	cases := []struct{ b, e, want int }{
		{2, 0, 1}, {2, 10, 1024}, {3, 4, 81}, {10, 6, 1000000}, {1, 100, 1},
	}
	for _, c := range cases {
		got, err := IPow(c.b, c.e)
		if err != nil || got != c.want {
			t.Errorf("IPow(%d,%d) = %d,%v; want %d", c.b, c.e, got, err, c.want)
		}
	}
	if _, err := IPow(2, 100); err == nil {
		t.Error("IPow(2,100) should overflow")
	}
	if _, err := IPow(2, -1); err == nil {
		t.Error("IPow(2,-1) should error")
	}
}

func TestRank(t *testing.T) {
	s := []int{2, 4, 7, 9}
	cases := []struct{ x, want int }{
		{0, 0}, {2, 0}, {3, 1}, {4, 1}, {8, 3}, {9, 3}, {100, 4},
	}
	for _, c := range cases {
		if got := Rank(c.x, s); got != c.want {
			t.Errorf("Rank(%d, %v) = %d, want %d", c.x, s, got, c.want)
		}
	}
	// Paper's sanity conditions: Rank(min(S),S)=0, Rank(max(S),S)=|S|-1.
	if Rank(2, s) != 0 || Rank(9, s) != len(s)-1 {
		t.Error("rank endpoints do not match paper definition")
	}
}

func TestComplement(t *testing.T) {
	got := Complement([]int{1, 3}, 5)
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("Complement = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Complement = %v, want %v", got, want)
		}
	}
	if len(Complement(nil, 3)) != 3 {
		t.Error("Complement(nil,3) should be all of [0,3)")
	}
	if len(Complement([]int{0, 1, 2}, 3)) != 0 {
		t.Error("Complement of everything should be empty")
	}
}

func TestComplementRankInverse(t *testing.T) {
	// Property: the element of Complement(F, n) at index i has rank i —
	// this is exactly the reconfiguration map of the paper.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 10
		k := rng.Intn(n / 2)
		faults := RandomSubset(rng, n, k)
		healthy := Complement(faults, n)
		for i, v := range healthy {
			if Rank(v, healthy) != i {
				return false
			}
		}
		return len(healthy) == n-k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := Log2Ceil(c.n); got != c.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestLogCeil(t *testing.T) {
	cases := []struct{ base, n, want int }{
		{2, 8, 3}, {2, 9, 4}, {3, 27, 3}, {3, 28, 4}, {10, 1, 0}, {5, 5, 1},
	}
	for _, c := range cases {
		if got := LogCeil(c.base, c.n); got != c.want {
			t.Errorf("LogCeil(%d,%d) = %d, want %d", c.base, c.n, got, c.want)
		}
	}
}

func TestMinMaxAbs(t *testing.T) {
	if Min(3, 5) != 3 || Min(5, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(3, 5) != 5 || Max(5, 3) != 5 {
		t.Error("Max broken")
	}
	if Abs(-4) != 4 || Abs(4) != 4 || Abs(0) != 0 {
		t.Error("Abs broken")
	}
}

func TestInsertSortedAndContains(t *testing.T) {
	s := []int{}
	for _, v := range []int{5, 1, 3, 2, 4} {
		s = InsertSorted(s, v)
	}
	for i := 0; i < len(s)-1; i++ {
		if s[i] > s[i+1] {
			t.Fatalf("not sorted: %v", s)
		}
	}
	for v := 1; v <= 5; v++ {
		if !ContainsSorted(s, v) {
			t.Errorf("ContainsSorted missing %d", v)
		}
	}
	if ContainsSorted(s, 0) || ContainsSorted(s, 6) {
		t.Error("ContainsSorted false positive")
	}
}
