// Ascend runs a normal hypercube algorithm (global sum, Ascend class)
// on three machines: a healthy shuffle-exchange, the same machine with
// one dead processor, and the paper's fault-tolerant machine
// reconfigured around three dead processors.
//
// This quantifies the paper's motivation: efficient algorithms on
// constant-degree networks use every node, so a single fault is fatal
// without spares — and with the paper's construction, k faults cost
// nothing at all.
//
// Run with: go run ./examples/ascend
package main

import (
	"fmt"
	"log"

	"ftnet/internal/ascend"
	"ftnet/internal/ft"
	"ftnet/internal/shuffle"
)

func main() {
	const h = 6
	n := 1 << h
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	want := int64(n) * int64(n+1) / 2

	// 1. Healthy machine.
	se := shuffle.MustNew(shuffle.Params{H: h})
	res, err := ascend.RunSE(h, ascend.NewHealthy(se), vals, ascend.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy SE_%d:        sum=%d (want %d) in %d cycles\n",
		h, res.Values[0], want, res.Cycles)

	// 2. One dead node, no spares.
	broken := ascend.NewHealthy(se)
	broken.Dead[21] = true
	if _, err := ascend.RunSE(h, broken, vals, ascend.Sum); err != nil {
		frac, ferr := ascend.SurvivingFraction(h, broken, vals, ascend.Sum)
		if ferr != nil {
			log.Fatal(ferr)
		}
		fmt.Printf("1 fault, no spares:  FAILS (%v); %.0f%% of results salvageable\n", err, 100*frac)
	}

	// 3. Three dead nodes on the fault-tolerant machine.
	p := ft.SEParams{H: h, K: 3}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		log.Fatal(err)
	}
	faults := []int{5, 21, 40}
	loc, err := ft.SEMapViaDB(p, psi, faults)
	if err != nil {
		log.Fatal(err)
	}
	dead := make([]bool, p.NHost())
	for _, f := range faults {
		dead[f] = true
	}
	res, err = ascend.RunSE(h, &ascend.Host{G: host, Loc: loc, Dead: dead}, vals, ascend.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3 faults, FT host:   sum=%d (want %d) in %d cycles — full speed\n",
		res.Values[0], want, res.Cycles)
	fmt.Printf("\nFT host cost: %d spare nodes, degree %d (vs %d for the plain dB host)\n",
		p.K, host.MaxDegree(), 4)
}
