package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriteDOT(t *testing.T) {
	g := cycle(3)
	g.SetLabel(0, "zero")
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{
		Name:           "C3",
		HighlightNodes: []int{1},
		HighlightEdges: []Edge{{2, 0}}, // reversed order must still match
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph C3 {",
		`n0 [label="zero"]`,
		"style=filled",
		"n0 -- n1;",
		"n0 -- n2 [style=bold];",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTCustomLabels(t *testing.T) {
	g := path(2)
	var buf bytes.Buffer
	err := g.WriteDOT(&buf, DOTOptions{NodeLabels: func(u int) string { return "N" + string(rune('A'+u)) }})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `label="NA"`) {
		t.Errorf("custom labels not applied:\n%s", buf.String())
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 1
		b := NewBuilder(n)
		for e := 0; e < n*2; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		return g.Equal(back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",
		"3\n",
		"x y\n",
		"3 1\n0 5\n",
		"3 1\n0\n",
		"3 2\n0 1\n", // header/edge count mismatch
		"3 1\na b\n",
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEdgeListSkipsComments(t *testing.T) {
	in := "3 1\n# comment\n\n0 1\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("edge missing")
	}
}
