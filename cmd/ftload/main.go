// Command ftload is a load generator for ftnetd: it creates a fleet of
// instances, drives them with a configurable mix of fault/repair
// events and phi lookups from concurrent workers, and reports
// throughput and latency percentiles. The traffic loop lives in
// internal/loadgen, shared with the tracked service-throughput
// experiment (internal/experiments L1).
//
// Usage:
//
//	ftload -addr http://localhost:8080 -instances 4 -kind debruijn \
//	       -m 2 -digits 6 -k 4 -workers 8 -requests 20000 -eventfrac 0.1
//
// With -eventfrac 0.1, ~10% of operations are reconfiguration events
// (fault or repair, 50/50) and ~90% are lookups — the read-heavy shape
// a fleet of mostly-healthy machines produces. With -batch n > 1 each
// reconfiguration operation posts n events as one atomic burst through
// events:batch. -scenario selects a named preset instead:
//
//	ftload -scenario read-heavy    # ~1% events, the lock-free lookup path
//	ftload -scenario burst-heavy   # 30% events in atomic 4-event bursts
//	ftload -scenario write-storm   # dedicated writers hammer events:batch
//	                               # while the other workers measure read p99
//
// Rejected events (budget exhausted, repairing a healthy node, a burst
// with one invalid event) are counted separately: they are the daemon
// correctly enforcing the paper's k-fault precondition, not failures.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/loadgen"
)

type config struct {
	loadgen.Config
	scenario string // named scenario; overrides eventfrac/batch when set
}

func main() {
	var cfg config
	var kind string
	flag.StringVar(&cfg.Addr, "addr", "http://localhost:8080", "base URL of the ftnetd daemon")
	flag.IntVar(&cfg.Instances, "instances", 4, "number of instances to create and drive")
	flag.StringVar(&kind, "kind", "debruijn", `topology kind: "debruijn" or "shuffle"`)
	flag.IntVar(&cfg.Spec.M, "m", 2, "de Bruijn base")
	flag.IntVar(&cfg.Spec.H, "digits", 6, "digits/bits h (2^h or m^h target nodes)")
	flag.IntVar(&cfg.Spec.K, "k", 4, "fault budget per instance")
	flag.IntVar(&cfg.Workers, "workers", 8, "concurrent workers")
	flag.IntVar(&cfg.Requests, "requests", 20000, "total operations to issue")
	flag.Float64Var(&cfg.Scenario.EventFrac, "eventfrac", 0.1, "fraction of ops that are fault/repair events")
	flag.IntVar(&cfg.Scenario.Batch, "batch", 1, "events per reconfiguration op (> 1 uses atomic events:batch bursts)")
	flag.StringVar(&cfg.scenario, "scenario", "", `named scenario preset: "mixed", "read-heavy", "burst-heavy" or "write-storm" (overrides -eventfrac/-batch)`)
	flag.Int64Var(&cfg.Seed, "seed", 1, "rng seed")
	flag.Parse()
	cfg.Spec.Kind = fleet.Kind(kind)

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ftload: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.scenario != "" {
		sc, ok := loadgen.ByName(cfg.scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q", cfg.scenario)
		}
		cfg.Scenario = sc
	} else {
		cfg.Scenario.Name = "custom"
	}
	res, err := loadgen.Run(cfg.Config)
	if err != nil {
		return err
	}
	report(out, cfg, res)
	if res.Errors > 0 {
		return fmt.Errorf("%d operations failed", res.Errors)
	}
	return nil
}

func report(out io.Writer, cfg config, res loadgen.Result) {
	fmt.Fprintf(out, "ftload: %d ops in %v against %s (scenario %s)\n",
		res.Ops(), res.Elapsed.Round(time.Millisecond), cfg.Addr, cfg.Scenario.Name)
	fmt.Fprintf(out, "  fleet        %d x %s instances (h=%d k=%d), %d workers, eventfrac %.2f, batch %d\n",
		cfg.Instances, cfg.Spec.Kind, cfg.Spec.H, cfg.Spec.K, cfg.Workers,
		cfg.Scenario.EventFrac, cfg.Scenario.Batch)
	fmt.Fprintf(out, "  lookups      %d\n", res.Lookups)
	fmt.Fprintf(out, "  events       %d applied in %d transitions, %d rejected (budget/state enforcement)\n",
		res.Events, res.Batches, res.Rejected)
	fmt.Fprintf(out, "  errors       %d\n", res.Errors)
	fmt.Fprintf(out, "  throughput   %.0f ops/s\n", res.Throughput())
	fmt.Fprintf(out, "  latency      p50 %v  p90 %v  p99 %v  max %v\n",
		res.Percentile(50), res.Percentile(90), res.Percentile(99), res.Percentile(100))
	if cfg.Scenario.Writers > 0 && len(res.LookupLatencies) > 0 {
		fmt.Fprintf(out, "  read latency p50 %v  p99 %v  (lookups under %d-writer storm)\n",
			res.LookupPercentile(50), res.LookupPercentile(99), cfg.Scenario.Writers)
	}
}
