package verify

import (
	"strings"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/fault"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

func dbMapper(p ft.Params) Mapper {
	return func(faults, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
}

func TestExhaustiveBase2(t *testing.T) {
	for _, p := range []ft.Params{{M: 2, H: 3, K: 1}, {M: 2, H: 3, K: 2}, {M: 2, H: 4, K: 2}} {
		target := debruijn.MustNew(p.Target())
		host := ft.MustNew(p)
		rep := Exhaustive(target, host, p.K, dbMapper(p))
		if !rep.Ok() {
			t.Fatalf("%v: %v", p, rep)
		}
		want, _ := num.Binomial(p.NHost(), p.K)
		if rep.Checked != int64(want) {
			t.Errorf("%v: checked %d, want %d", p, rep.Checked, want)
		}
	}
}

func TestExhaustiveBaseM(t *testing.T) {
	p := ft.Params{M: 3, H: 3, K: 2}
	target := debruijn.MustNew(p.Target())
	host := ft.MustNew(p)
	rep := Exhaustive(target, host, p.K, dbMapper(p))
	if !rep.Ok() {
		t.Fatalf("%v", rep)
	}
}

func TestExhaustiveK0(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 0}
	target := debruijn.MustNew(p.Target())
	host := ft.MustNew(p)
	rep := Exhaustive(target, host, 0, dbMapper(p))
	if !rep.Ok() || rep.Checked != 1 {
		t.Fatalf("%v", rep)
	}
}

func TestExhaustiveDetectsBrokenHost(t *testing.T) {
	// A host that is just the target with spares but NO extra edges is
	// not fault-tolerant; the verifier must find counterexamples.
	p := ft.Params{M: 2, H: 3, K: 1}
	target := debruijn.MustNew(p.Target())
	b := graph.NewBuilder(p.NHost())
	target.EachEdge(func(u, v int) bool { b.AddEdge(u, v); return true })
	weakHost := b.Build()
	rep := Exhaustive(target, weakHost, 1, func(faults, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	})
	if rep.Ok() {
		t.Fatal("weak host passed exhaustive verification")
	}
	if rep.First == nil || rep.Failed == 0 {
		t.Fatalf("failure not recorded: %+v", rep)
	}
	if !strings.Contains(rep.String(), "FAIL") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestCheckOnceRejectsMappingToFaultyNode(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 1}
	target := debruijn.MustNew(p.Target())
	host := ft.MustNew(p)
	// Mapper that ignores faults: identity.
	identity := func(faults, _ []int) ([]int, error) {
		return graph.IdentityEmbedding(p.NTarget()), nil
	}
	if err := CheckOnce(target, host, []int{3}, identity); err == nil {
		t.Fatal("mapping onto faulty node accepted")
	}
}

func TestRandomizedAllModels(t *testing.T) {
	p := ft.Params{M: 2, H: 6, K: 4}
	target := debruijn.MustNew(p.Target())
	host := ft.MustNew(p)
	rep := Randomized(target, host, p.K, dbMapper(p), 25, 42, nil)
	if !rep.Ok() {
		t.Fatalf("%v", rep)
	}
	wantChecked := int64(25 * len(fault.All(host)))
	if rep.Checked != wantChecked {
		t.Errorf("checked %d, want %d", rep.Checked, wantChecked)
	}
	if !strings.Contains(rep.String(), "ok") {
		t.Errorf("String() = %q", rep.String())
	}
}

func TestRandomizedShuffleExchangeViaDB(t *testing.T) {
	p := ft.SEParams{H: 5, K: 3}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		t.Fatal(err)
	}
	se := shuffle.MustNew(shuffle.Params{H: p.H})
	mapper := func(faults, _ []int) ([]int, error) {
		return ft.SEMapViaDB(p, psi, faults)
	}
	rep := Randomized(se, host, p.K, mapper, 20, 7, nil)
	if !rep.Ok() {
		t.Fatalf("%v", rep)
	}
}

func TestRandomizedShuffleExchangeNatural(t *testing.T) {
	p := ft.SEParams{H: 5, K: 3}
	host, err := ft.NewSENatural(p)
	if err != nil {
		t.Fatal(err)
	}
	se := shuffle.MustNew(shuffle.Params{H: p.H})
	mapper := func(faults, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
	rep := Randomized(se, host, p.K, mapper, 20, 11, nil)
	if !rep.Ok() {
		t.Fatalf("%v", rep)
	}
}

func TestExhaustiveSEBothVariants(t *testing.T) {
	// Full 2-fault enumeration for SE_3, both constructions.
	pse := ft.SEParams{H: 3, K: 2}
	se := shuffle.MustNew(shuffle.Params{H: 3})

	hostV, psi, err := ft.NewSEViaDB(pse)
	if err != nil {
		t.Fatal(err)
	}
	repV := Exhaustive(se, hostV, pse.K, func(faults, _ []int) ([]int, error) {
		return ft.SEMapViaDB(pse, psi, faults)
	})
	if !repV.Ok() {
		t.Fatalf("via-dB: %v", repV)
	}

	hostN, err := ft.NewSENatural(pse)
	if err != nil {
		t.Fatal(err)
	}
	repN := Exhaustive(se, hostN, pse.K, func(faults, buf []int) ([]int, error) {
		m, err := ft.NewMapping(pse.NTarget(), pse.NHost(), faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	})
	if !repN.Ok() {
		t.Fatalf("natural: %v", repN)
	}
}
