// Command ftnetd is the online reconfiguration daemon: it owns a fleet
// of fault-tolerant networks and serves the Manager API over HTTP/JSON.
//
// Usage:
//
//	ftnetd -addr :8080 -cache 4096 -journal /var/lib/ftnet/epochs.wal -fsync always
//
// With -journal set, every accepted transition (instance create/delete,
// fault/repair event, atomic batch) commits one O(k) CRC32C-framed
// record — epoch plus the sorted fault set — through the ordered commit
// pipeline before the state change becomes visible, and a restart
// replays the log: every instance comes back at its exact pre-kill
// epoch, fault set, and mapping (verified bit-identically against a
// fresh recomputation), with any torn tail from a crash mid-append
// detected, logged, and truncated. -fsync picks the durability point:
// "always" (fsync before acknowledging, group-committed across
// concurrent writers), "interval" (timer-driven), or "never" (OS
// decides).
//
// The same commit stream feeds live consumers: GET /v1/watch streams
// every transition as resumable NDJSON; -follow <leader-url> turns the
// daemon into a read-only replica that tails a leader's watch stream,
// verifies every record against a fresh recomputation, and serves
// lock-free lookups with its own journal for restart; -compact-every
// periodically checkpoints the fleet state and truncates the journal
// prefix (also on demand via POST /v1/compact), bounding replay length
// and disk. -cache-admission guards the mapping cache with a
// doorkeeper so one-off fault patterns are not admitted until seen
// twice. -pprof-addr serves net/http/pprof on a second, separate
// listener (keep it loopback-only); the API mux never exposes it.
// -rpc-addr additionally serves the hot path (Lookup, LookupBatch,
// ApplyBatch) over the length-prefixed binary RPC plane
// (internal/wire) on a persistent-connection TCP listener — same
// manager, same journal, same metrics registry; on a -follow replica
// the RPC plane is read-only like the HTTP plane.
//
// Failover: POST /v1/promote (or SIGUSR1) promotes a -follow replica
// to leader — it stops tailing, drains the replication loop, commits
// a term-bump fence to its own journal, and opens both planes for
// writes. -term N fences the journal at leadership term N on boot,
// for restarting a promoted follower's (or recovered leader's) data
// directory directly as a leader. A deposed leader restarted with
// -follow pointing at the new leader detects the higher term on its
// first watch frame, discards its unreplicated tail, and resyncs from
// the new leader's checkpoint.
//
// API (see internal/fleet/api.go for the full route table):
//
//	POST   /v1/instances              {"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}
//	POST   /v1/instances/{id}/events  {"kind":"fault","node":3}  (or "repair")
//	POST   /v1/instances/{id}/events:batch  a whole fault burst, applied atomically
//	GET    /v1/instances/{id}/phi?x=3 where does target node 3 run now?
//	GET    /v1/watch?from=1           the commit stream, as live NDJSON
//	POST   /v1/compact                checkpoint + truncate the journal
//	POST   /v1/promote                promote this replica to leader (term-bump fence)
//	GET    /v1/stats, /healthz, /metrics   (stats include journal/commit/follower counters)
//
// Example leader/follower session:
//
//	ftnetd -addr :8080 -journal /tmp/leader.wal &
//	ftnetd -addr :8081 -journal /tmp/follower.wal -follow http://localhost:8080 &
//	curl -s localhost:8080/v1/instances -d '{"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}'
//	curl -s localhost:8080/v1/instances/prod/events -d '{"kind":"fault","node":3}'
//	curl -s localhost:8081/v1/instances/prod/phi?x=3   # served by the replica
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/journal"
	"ftnet/internal/shard"
	"ftnet/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", fleet.DefaultCacheSize, "mapping cache capacity")
	cacheAdmission := flag.Bool("cache-admission", true, "doorkeeper admission: cache a fault pattern only once it recurs")
	cacheDoorAge := flag.Int("cache-door-age", fleet.DefaultDoorAgePeriod, "doorkeeper reset interval: misses per cache shard between counter halvings")
	journalPath := flag.String("journal", "", "append-only epoch journal path (empty disables durability)")
	fsyncMode := flag.String("fsync", "always", `journal fsync policy: "always", "interval" or "never"`)
	fsyncEvery := flag.Duration("fsync-interval", journal.DefaultSyncInterval, `sync period for -fsync interval`)
	follow := flag.String("follow", "", "leader base URL; run as a read-only replica tailing its /v1/watch stream")
	compactEvery := flag.Duration("compact-every", 0, "checkpoint-compact the journal on this period (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (empty disables; keep it loopback-only)")
	rpcAddr := flag.String("rpc-addr", "", "binary RPC plane listen address for the hot path (empty disables)")
	term := flag.Uint64("term", 0, "fence the journal at this leadership term on boot if ahead of the recovered term (0 leaves it; incompatible with -follow)")
	shardSelf := flag.String("shard-self", "", "this daemon's member name in the shard ring (enables sharding with -shard-peers)")
	shardPeers := flag.String("shard-peers", "", `shard ring membership as "name=url,name=url,..." (must include -shard-self)`)
	shardReplicas := flag.Int("shard-replicas", 0, "virtual nodes per ring member (0 selects the default)")
	flag.Parse()
	if *term > 0 && *follow != "" {
		log.Fatalf("ftnetd: -term promotes this daemon to leader and cannot be combined with -follow")
	}

	mgr := fleet.NewManager(fleet.Options{CacheSize: *cacheSize, CacheAdmission: *cacheAdmission, CacheDoorAgePeriod: *cacheDoorAge})
	if _, err := openJournal(mgr, *journalPath, *fsyncMode, *fsyncEvery, log.Printf); err != nil {
		log.Fatalf("ftnetd: %v", err)
	}
	if *term > 0 {
		if cur, _ := mgr.Term(); *term > cur {
			if _, err := mgr.Promote(*term); err != nil {
				log.Fatalf("ftnetd: term fence: %v", err)
			}
			log.Printf("ftnetd: leadership term fenced at %d", *term)
		} else {
			log.Printf("ftnetd: recovered term %d already covers -term %d", cur, *term)
		}
	}

	// The topology is installed after recovery, so every recovered
	// instance the ring assigns elsewhere gets pinned to this daemon
	// (served here until a rebalance migrates it) instead of bounced.
	if *shardSelf != "" || *shardPeers != "" {
		peers, err := shard.ParsePeers(*shardPeers)
		if err != nil {
			log.Fatalf("ftnetd: %v", err)
		}
		if _, ok := peers[*shardSelf]; !ok {
			log.Fatalf("ftnetd: -shard-self %q is not in -shard-peers", *shardSelf)
		}
		mgr.SetTopology(*shardSelf, peers, *shardReplicas)
		log.Printf("ftnetd: sharding as %q across %d members", *shardSelf, len(peers))
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("ftnetd: serving pprof on %s/debug/pprof/", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pprofMux()); !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ftnetd: pprof server: %v", err)
			}
		}()
	}

	ctx, stop := context.WithCancel(context.Background())
	defer stop()

	if _, sharded := mgr.Topology(); sharded {
		go reconcileLoop(ctx, mgr, log.Printf)
	}

	var follower *fleet.Follower
	if *follow != "" {
		f, err := fleet.NewFollower(mgr, *follow, fleet.FollowerOptions{Logf: log.Printf})
		if err != nil {
			log.Fatalf("ftnetd: %v", err)
		}
		follower = f
		go follower.Run(ctx)
		log.Printf("ftnetd: following %s (read-only replica)", *follow)
	}
	if *compactEvery > 0 {
		go compactLoop(ctx, mgr, *compactEvery, log.Printf)
	}

	// SIGUSR1 promotes this daemon to leader: a follower drains its
	// replication loop and fences its journal with a term bump; a
	// daemon that is already the leader just reports its term.
	promoteSig := make(chan os.Signal, 1)
	signal.Notify(promoteSig, syscall.SIGUSR1)
	go func() {
		for range promoteSig {
			var (
				t   uint64
				err error
			)
			if follower != nil {
				t, err = follower.Promote(ctx)
			} else {
				t, err = mgr.Promote(0)
			}
			if err != nil {
				log.Printf("ftnetd: promote (SIGUSR1): %v", err)
			} else {
				log.Printf("ftnetd: promoted to leadership term %d (SIGUSR1)", t)
			}
		}
	}()

	var rpcSrv *wire.Server
	if *rpcAddr != "" {
		ln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Fatalf("ftnetd: rpc listen: %v", err)
		}
		rpcSrv = wire.NewServer(mgr, wire.ServerOptions{
			ReadOnly: *follow != "",
			Metrics:  mgr.Metrics(),
		})
		go func() {
			if err := rpcSrv.Serve(ln); err != nil {
				log.Printf("ftnetd: rpc server: %v", err)
			}
		}()
		log.Printf("ftnetd: serving the binary RPC plane on %s", *rpcAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServerOpts(mgr, fleet.HandlerOptions{ReadOnly: *follow != "", Follower: follower}),
		ReadHeaderTimeout: 5 * time.Second,
		// Request bodies and responses are bounded — except /v1/watch,
		// which streams and lifts these per-connection deadlines itself
		// via http.ResponseController.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
		IdleTimeout:  2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ftnetd: shutting down")
		stop() // ends the follower and compaction loops
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// Drain order: answer every RPC request already on the wire,
		// end watch streams at a record boundary (clean EOF) so the
		// HTTP drain below can finish, then flush+fsync the journal
		// last — no acknowledged commit is ever lost to shutdown.
		if rpcSrv != nil {
			if derr := rpcSrv.Shutdown(sctx); derr != nil {
				log.Printf("ftnetd: rpc drain: %v", derr)
			}
		}
		mgr.Quiesce()
		err := srv.Shutdown(sctx)
		if cerr := mgr.Close(); err == nil {
			err = cerr
		}
		done <- err
	}()

	log.Printf("ftnetd: serving the reconfiguration API on %s", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
}

// reconcileLoop audits the boot-time moved pins against the actual
// ring owners (Manager.ReconcilePins): a crash between a handoff's
// commit on the target and the OpDelete here leaves a stale local copy
// that recovery faithfully resurrects and SetTopology pins to this
// daemon — the audit retires every copy whose ring owner confirms a
// committed handoff. Retries with backoff while any probe is
// unresolved, since peers boot in arbitrary order.
func reconcileLoop(ctx context.Context, mgr *fleet.Manager, logf func(string, ...any)) {
	backoff := 2 * time.Second
	for {
		st := mgr.ReconcilePins()
		if st.Checked > 0 {
			logf("ftnetd: pin reconciliation: %d checked, %d retired (handoff had committed), %d kept, %d unresolved",
				st.Checked, st.Retired, st.Kept, st.Unresolved)
		}
		if st.Unresolved == 0 {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 30*time.Second {
			backoff *= 2
		}
	}
}

// compactLoop periodically checkpoints the fleet and truncates the
// journal prefix, bounding replay length; split from main for tests.
func compactLoop(ctx context.Context, mgr *fleet.Manager, every time.Duration, logf func(string, ...any)) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st, err := mgr.Compact()
			if err != nil {
				logf("ftnetd: compaction failed: %v", err)
				continue
			}
			logf("ftnetd: compacted journal to %d checkpoint records at seq %d in %.3fs",
				st.Instances, st.Seq, st.Seconds)
		}
	}
}

// openJournal performs the durable boot sequence: replay the existing
// log into the manager (verifying every epoch against a fresh mapping
// recomputation), truncate any torn tail left by a crash mid-append,
// and only then open the append writer and attach it — so new records
// always continue the valid prefix. A replay that fails verification
// is fatal: the daemon refuses to serve state it cannot prove correct.
// Split from main (with an injectable logger) so the end-to-end test
// boots exactly this sequence.
func openJournal(mgr *fleet.Manager, path, fsyncMode string, interval time.Duration, logf func(string, ...any)) (*journal.Writer, error) {
	if path == "" {
		return nil, nil
	}
	policy, err := journal.ParseSyncPolicy(fsyncMode)
	if err != nil {
		return nil, err
	}
	st, err := mgr.RecoverFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal recovery from %s failed: %w", path, err)
	}
	if st.Torn {
		logf("ftnetd: journal %s: torn tail dropped at byte %d (%s)", path, st.Offset, st.TornReason)
	}
	if st.Records > 0 {
		logf("ftnetd: recovered %d journal records (%d instances, %d transitions, %d checkpoints, last epoch %d, next seq %d) in %.3fs from %s",
			st.Records, st.Created+st.Checkpoints-st.Deleted, st.Transitions, st.Checkpoints, st.LastEpoch, st.NextSeq, st.Seconds, path)
	}
	jw, err := journal.Create(path, journal.Options{Sync: policy, Interval: interval})
	if err != nil {
		return nil, err
	}
	mgr.SetJournal(jw)
	logf("ftnetd: journaling epochs to %s (fsync %s)", path, policy)
	return jw, nil
}

// pprofMux builds the -pprof-addr handler on its own mux: registering
// the net/http/pprof handlers explicitly (instead of blank-importing
// the package) keeps them off http.DefaultServeMux and entirely off
// the API listener, so profiling exposure is opt-in and on a separate
// — typically loopback-only — address.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// newServer builds the daemon's handler; split from main so the
// end-to-end test serves the exact handler the binary runs.
func newServer(mgr *fleet.Manager) http.Handler {
	return fleet.NewHTTPHandler(mgr)
}

// newServerOpts is newServer with the follower/read-only options.
func newServerOpts(mgr *fleet.Manager, opts fleet.HandlerOptions) http.Handler {
	return fleet.NewHTTPHandlerOpts(mgr, opts)
}
