package commit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/journal"
	"ftnet/internal/obs"
)

func trec(id string, epoch uint64, faults ...int) journal.Record {
	return journal.Record{Op: journal.OpTransition, ID: id, Epoch: epoch, Applied: 1, Faults: faults}
}

func mustCommit(t *testing.T, l *Log, rec journal.Record) uint64 {
	t.Helper()
	seq, err := l.Commit(rec, nil)
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	return seq
}

// collect drains n entries from the subscription with a timeout.
func collect(t *testing.T, sub *Sub, n int) []Entry {
	t.Helper()
	out := make([]Entry, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case e, ok := <-sub.C:
			if !ok {
				t.Fatalf("subscription closed after %d/%d entries: %v", len(out), n, sub.Err())
			}
			out = append(out, e)
		case <-timeout:
			t.Fatalf("timed out after %d/%d entries", len(out), n)
		}
	}
	return out
}

// fileLog builds a file-backed log in a temp dir.
func fileLog(t *testing.T, opts journal.Options) (*Log, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "commit.wal")
	w, err := journal.Create(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(Config{Writer: w})
	t.Cleanup(func() { l.Close() })
	return l, path
}

// TestCommitOrderAndPublish pins the pipeline's ordering contract:
// sequence numbers are assigned 1, 2, 3, ..., publish runs before the
// entry reaches any subscriber, and a live subscriber sees every entry
// in order.
func TestCommitOrderAndPublish(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	sub, err := l.Subscribe(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	var published sync.Map
	for i := 1; i <= 20; i++ {
		i := i
		seq, err := l.Commit(trec("a", uint64(i), i), func() { published.Store(uint64(i), true) })
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("commit %d got seq %d", i, seq)
		}
	}
	for i, e := range collect(t, sub, 20) {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if _, ok := published.Load(e.Rec.Epoch); !ok {
			t.Fatalf("entry %d fanned out before its publish callback ran", e.Seq)
		}
	}
}

// TestConcurrentCommittersGapFree storms the log from many goroutines
// (file-backed, group-committed) while a live subscriber checks the
// stream is exactly 1..N with no gap, duplicate, or reorder.
func TestConcurrentCommittersGapFree(t *testing.T) {
	l, _ := fileLog(t, journal.Options{Sync: journal.SyncAlways})
	sub, err := l.Subscribe(1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Commit(trec(fmt.Sprintf("i%d", g), uint64(i+1), g), nil); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	entries := collect(t, sub, writers*per)
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d (gap or reorder)", i, e.Seq)
		}
	}
	if got := l.LastSeq(); got != writers*per {
		t.Fatalf("LastSeq = %d, want %d", got, writers*per)
	}
}

// TestSubscribeCatchUpFromFile commits enough to outgrow a tiny
// in-memory history, then subscribes from the beginning: the gap must
// be served from the journal file, gap-free, before the live handoff.
func TestSubscribeCatchUpFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.wal")
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(Config{Writer: w, History: 8})
	defer l.Close()
	const n = 100
	for i := 1; i <= n; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	sub, err := l.Subscribe(1, 16) // buffer smaller than the backlog: catch-up must stream
	if err != nil {
		t.Fatal(err)
	}
	entries := collect(t, sub, n)
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
		if e.Rec.Epoch != uint64(i+1) {
			t.Fatalf("entry %d carries epoch %d", i, e.Rec.Epoch)
		}
	}
	// And the subscription is now live: a fresh commit arrives.
	mustCommit(t, l, trec("a", n+1, 1))
	if e := collect(t, sub, 1)[0]; e.Seq != n+1 {
		t.Fatalf("live entry seq %d, want %d", e.Seq, n+1)
	}
}

// TestSubscribeResume is the torn-stream shape: read a prefix, close,
// resubscribe from the next seq, and the stream continues with no gap
// and no duplicate.
func TestSubscribeResume(t *testing.T) {
	l, _ := fileLog(t, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	for i := 1; i <= 30; i++ {
		mustCommit(t, l, trec("a", uint64(i)))
	}
	sub, err := l.Subscribe(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, sub, 12)
	sub.Close()
	next := got[len(got)-1].Seq + 1
	sub2, err := l.Subscribe(next, 64)
	if err != nil {
		t.Fatal(err)
	}
	rest := collect(t, sub2, 30-len(got))
	if rest[0].Seq != next {
		t.Fatalf("resume started at %d, want %d", rest[0].Seq, next)
	}
	if last := rest[len(rest)-1].Seq; last != 30 {
		t.Fatalf("resume ended at %d, want 30", last)
	}
}

// TestSlowSubscriberOverflow pins the bounded contract: a live
// subscriber that stops draining is closed with ErrSlowSubscriber
// instead of stalling commits or skipping entries.
func TestSlowSubscriberOverflow(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	sub, err := l.Subscribe(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the pump has gone live before flooding, so the
	// overflow hits the live path deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for l.Stats().Subscribers == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never went live")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i <= 50; i++ {
		mustCommit(t, l, trec("a", uint64(i)))
	}
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, ok := <-sub.C; !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("overflowed subscription never closed")
		}
	}
	if err := sub.Err(); !errors.Is(err, ErrSlowSubscriber) {
		t.Fatalf("Err() = %v, want ErrSlowSubscriber", err)
	}
	if l.Stats().Overflows != 1 {
		t.Fatalf("overflows = %d, want 1", l.Stats().Overflows)
	}
}

// TestSubscribeFutureSeq rejects subscriptions past the log end.
func TestSubscribeFutureSeq(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	mustCommit(t, l, trec("a", 1))
	if _, err := l.Subscribe(3, 8); !errors.Is(err, ErrFutureSeq) {
		t.Fatalf("Subscribe(3) = %v, want ErrFutureSeq", err)
	}
	if sub, err := l.Subscribe(2, 8); err != nil { // next seq: a pure live tail
		t.Fatalf("Subscribe(next) = %v", err)
	} else {
		sub.Close()
	}
}

// TestInstallServesCheckpointAndSuffix compacts a file-backed log and
// checks both consumers of the checkpoint: a fresh subscriber gets
// checkpoint entries (all at the covered seq) then the suffix, and the
// on-disk file now replays as [seq base, checkpoint, suffix].
func TestInstallServesCheckpointAndSuffix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.wal")
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	// History of 2: catch-up below the tail must come from the file,
	// which after Install holds only [seq base, checkpoint, suffix].
	l := NewLog(Config{Writer: w, History: 2})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	cps := []journal.Record{{
		Op: journal.OpCheckpoint, ID: "a",
		Spec:   journal.Spec{Kind: "debruijn", M: 2, H: 4, K: 3},
		Epoch:  10,
		Faults: []int{10},
	}}
	if err := l.Install(10, cps); err != nil {
		t.Fatal(err)
	}
	for i := 11; i <= 13; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}

	// The file: OpSeqBase(11), one checkpoint, three suffix records.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := journal.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Op != journal.OpSeqBase || recs[0].Seq != 11 ||
		recs[1].Op != journal.OpCheckpoint || recs[2].Op != journal.OpTransition {
		t.Fatalf("compacted file shape: %+v", recs)
	}

	// A fresh subscriber from 1: the checkpoint entry at seq 10 (a
	// deliberate jump — the reset signal), then 11..13.
	sub, err := l.Subscribe(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	entries := collect(t, sub, 4)
	if entries[0].Seq != 10 || entries[0].Rec.Op != journal.OpCheckpoint {
		t.Fatalf("first entry %+v, want the seq-10 checkpoint", entries[0])
	}
	for i, e := range entries[1:] {
		if e.Seq != uint64(11+i) || e.Rec.Op != journal.OpTransition {
			t.Fatalf("suffix entry %d: %+v", i, e)
		}
	}

	// A resumer inside the suffix window skips the checkpoint entirely.
	sub2, err := l.Subscribe(12, 64)
	if err != nil {
		t.Fatal(err)
	}
	if e := collect(t, sub2, 1)[0]; e.Seq != 12 || e.Rec.Op != journal.OpTransition {
		t.Fatalf("resume inside suffix got %+v", e)
	}
}

// TestInstallCrashBeforeSwapOldFileWins injects a crash between
// writing the checkpoint temp file and the atomic rename: the old
// journal must be untouched and fully replayable, and the half-done
// temp file must not be mistaken for the log.
func TestInstallCrashBeforeSwapOldFileWins(t *testing.T) {
	l, path := fileLog(t, journal.Options{Sync: journal.SyncAlways})
	for i := 1; i <= 6; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	crash := errors.New("SIGKILL mid-compaction")
	l.testHookBeforeSwap = func() error { return crash }
	if err := l.Install(6, []journal.Record{{
		Op: journal.OpCheckpoint, ID: "a",
		Spec: journal.Spec{Kind: "debruijn", M: 2, H: 4, K: 3}, Epoch: 6, Faults: []int{6},
	}}); !errors.Is(err, crash) {
		t.Fatalf("Install = %v, want injected crash", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("old journal modified by crashed compaction (%d -> %d bytes)", len(before), len(after))
	}
	recs, _, err := journal.ReadAll(newReadFile(t, path))
	if err != nil || len(recs) != 6 {
		t.Fatalf("old journal replays %d records (%v), want 6", len(recs), err)
	}
	// The log keeps committing on the old file after the failed swap.
	l.testHookBeforeSwap = nil
	if seq := mustCommit(t, l, trec("a", 7, 7)); seq != 7 {
		t.Fatalf("post-crash commit seq %d, want 7", seq)
	}
}

func newReadFile(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestMemoryOnlyResetJump pins the documented memory-only limitation:
// when the history window has moved past fromSeq and there is no file
// or checkpoint to serve it, the stream starts at the oldest available
// seq — an explicit jump, never a silent gap in between delivered
// entries.
func TestMemoryOnlyResetJump(t *testing.T) {
	l := NewLog(Config{History: 8})
	defer l.Close()
	const n = 64
	for i := 1; i <= n; i++ {
		mustCommit(t, l, trec("a", uint64(i)))
	}
	sub, err := l.Subscribe(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	first := collect(t, sub, 1)[0]
	if first.Seq == 1 {
		t.Fatalf("history of 8 cannot still hold seq 1")
	}
	// After the jump the stream is strictly +1 again.
	rest := collect(t, sub, int(uint64(n)-first.Seq))
	for i, e := range rest {
		if e.Seq != first.Seq+uint64(i+1) {
			t.Fatalf("entry after jump: seq %d, want %d", e.Seq, first.Seq+uint64(i+1))
		}
	}
}

// TestCommitFailurePoisonsWithoutGaps pins the failure contract: when
// the journal dies, the failing commit is not acknowledged, not fanned
// out, and later commits keep failing — subscribers never see a seq
// gap, just silence.
func TestCommitFailurePoisonsWithoutGaps(t *testing.T) {
	fw := &failAfter{n: 2}
	w := journal.NewWriter(fw, journal.Options{Sync: journal.SyncAlways, BufferSize: 1})
	l := NewLog(Config{Writer: w})
	defer l.Close()
	sub, err := l.Subscribe(1, 16)
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Uint64
	for i := 1; i <= 10; i++ {
		if seq, err := l.Commit(trec("a", uint64(i)), nil); err == nil {
			acked.Store(seq)
		}
	}
	if acked.Load() == 10 {
		t.Fatal("writer failure never surfaced")
	}
	// Everything acknowledged arrives; then the channel goes quiet (the
	// log is poisoned), with no gap in what was delivered.
	entries := collect(t, sub, int(acked.Load()))
	for i, e := range entries {
		if e.Seq != uint64(i+1) {
			t.Fatalf("entry %d has seq %d", i, e.Seq)
		}
	}
	select {
	case e, ok := <-sub.C:
		if ok {
			t.Fatalf("unacknowledged entry %d leaked to a subscriber", e.Seq)
		}
	case <-time.After(50 * time.Millisecond):
	}
}

// failAfter fails every write after the first n.
type failAfter struct {
	mu sync.Mutex
	n  int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n <= 0 {
		return 0, errors.New("injected write failure")
	}
	f.n--
	return len(p), nil
}

// TestStageHistogramsRecordPerCommit pins the observability contract:
// each successful commit records exactly one sample in each of the four
// stage histograms, and each entry carries the leader's commit
// timestamp.
func TestStageHistogramsRecordPerCommit(t *testing.T) {
	reg := obs.New()
	path := filepath.Join(t.TempDir(), "commit.wal")
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(Config{Writer: w, Obs: reg})
	defer l.Close()

	before := time.Now().UnixNano()
	const commits = 25
	published := 0
	for i := 0; i < commits; i++ {
		if _, err := l.Commit(trec(fmt.Sprintf("i%d", i), 1, i), func() { published++ }); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if published != commits {
		t.Fatalf("publish ran %d times, want %d", published, commits)
	}

	e := reg.Export()
	for _, name := range []string{
		"ftnet_commit_append_seconds",
		"ftnet_commit_fsync_wait_seconds",
		"ftnet_commit_publish_seconds",
		"ftnet_commit_fanout_seconds",
	} {
		h, ok := e.Find(name, "")
		if !ok {
			t.Fatalf("histogram %s not exported", name)
		}
		if h.Count != commits {
			t.Errorf("%s recorded %d samples, want %d", name, h.Count, commits)
		}
	}

	// Every committed entry is stamped with a plausible wall-clock.
	sub, err := l.Subscribe(1, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for _, en := range collect(t, sub, commits) {
		if en.At < before || en.At > time.Now().UnixNano() {
			t.Fatalf("entry %d has implausible commit timestamp %d", en.Seq, en.At)
		}
	}
}

// TestCatchUpEntriesHaveNoTimestamp pins the At==0 contract for entries
// replayed from the journal file: age is unknown, not zero.
func TestCatchUpEntriesHaveNoTimestamp(t *testing.T) {
	l, path := fileLog(t, journal.Options{Sync: journal.SyncAlways})
	for i := 0; i < 3; i++ {
		mustCommit(t, l, trec(fmt.Sprintf("i%d", i), 1, i))
	}
	got := 0
	if _, err := scanFile(path, 1, 3, func(e Entry) bool {
		if e.At != 0 {
			t.Errorf("catch-up entry %d carries At=%d, want 0", e.Seq, e.At)
		}
		got++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("scanned %d entries, want 3", got)
	}
}
