package fleet

import (
	"container/list"
	"sort"
	"strconv"
	"sync"

	"ftnet/internal/ft"
)

// Cache memoizes reconfiguration maps keyed by the canonical (sorted)
// fault set, so a fleet of instances that keeps seeing the same fault
// patterns resolves lookups without recomputing ft.NewMapping.
//
// It is safe for concurrent use. Eviction is LRU; computation is
// single-flight: concurrent requests for the same missing key block on
// one computation instead of racing their own.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed once m/err are set
	m    *ft.Mapping
	err  error
}

// DefaultCacheSize is the capacity used when a Manager is created
// without an explicit one. With k faults out of n+k hosts the keyspace
// is astronomical, but real fleets revisit a small working set of
// patterns (the same racks fail, the same repairs roll out).
const DefaultCacheSize = 4096

// NewCache returns an empty cache holding at most capacity mappings
// (capacity <= 0 selects DefaultCacheSize).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// cacheKey canonicalizes a mapping request; faults must already be
// sorted (Get canonicalizes before calling).
func cacheKey(nTarget, nHost int, sortedFaults []int) string {
	// 3+k small ints; preallocate roughly 8 bytes each.
	b := make([]byte, 0, 8*(3+len(sortedFaults)))
	b = strconv.AppendInt(b, int64(nTarget), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(nHost), 10)
	b = append(b, ':')
	for i, f := range sortedFaults {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(f), 10)
	}
	return string(b)
}

// Get returns the reconfiguration map for the given fault set,
// computing and caching it on a miss. An unsorted set is canonicalized
// on a copy first, so equal sets always share one cache entry; invalid
// sets (ft.NewMapping rejects them) return the error and are not
// cached.
func (c *Cache) Get(nTarget, nHost int, sortedFaults []int) (*ft.Mapping, error) {
	if !sort.IntsAreSorted(sortedFaults) {
		cp := make([]int, len(sortedFaults))
		copy(cp, sortedFaults)
		sort.Ints(cp)
		sortedFaults = cp
	}
	key := cacheKey(nTarget, nHost, sortedFaults)

	c.mu.Lock()
	if elem, ok := c.items[key]; ok {
		c.ll.MoveToFront(elem)
		c.hits++
		e := elem.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.done // instant unless another goroutine is mid-compute
		return e.m, e.err
	}
	c.misses++
	e := &cacheEntry{key: key, done: make(chan struct{})}
	elem := c.ll.PushFront(e)
	c.items[key] = elem
	c.evictLocked()
	c.mu.Unlock()

	// Compute outside the lock; waiters block on e.done, not on c.mu.
	// NewMapping copies its argument, so the caller keeps ownership of
	// sortedFaults.
	e.m, e.err = ft.NewMapping(nTarget, nHost, sortedFaults)
	close(e.done)

	if e.err != nil {
		// Do not let invalid fault sets occupy cache slots.
		c.mu.Lock()
		if cur, ok := c.items[key]; ok && cur.Value.(*cacheEntry) == e {
			c.ll.Remove(cur)
			delete(c.items, key)
		}
		c.mu.Unlock()
	}
	return e.m, e.err
}

// evictLocked drops least-recently-used completed entries until the
// cache fits its capacity. In-flight entries are skipped so a waiter
// never sees its entry vanish mid-compute.
func (c *Cache) evictLocked() {
	for elem := c.ll.Back(); elem != nil && c.ll.Len() > c.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.done:
			c.ll.Remove(elem)
			delete(c.items, e.key)
			c.evictions++
		default: // still computing; leave it
		}
		elem = prev
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Size:      c.ll.Len(),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
