package commit

import "fmt"

// Collect returns the committed entries with sequence numbers in
// [from, to], oldest first — the synchronous, bounded cousin of
// Subscribe, built for migration suffix export: "give me everything
// between the staged checkpoint and the fence seq". from 0 is treated
// as 1; to past the log end is ErrFutureSeq; an empty range returns
// nil.
//
// Sources mirror the subscriber pump: the in-memory tail, the journal
// file on disk, or the installed checkpoint. When compaction has
// dropped part of the range, the checkpoint's records are returned in
// its place — entries carrying the checkpoint seq, the same reset
// signal a subscriber sees. Entries still mid-pipeline (sequence
// assigned but not yet durable) are not returned: a caller exporting
// one instance holds that instance's write lock, so none of *its*
// entries can be in flight, and other instances' in-flight entries are
// noise it filters out anyway.
func (l *Log) Collect(from, to uint64) ([]Entry, error) {
	if from == 0 {
		from = 1
	}
	var out []Entry
	next := from
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, ErrClosed
		}
		if to > l.lastSeq {
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: collect to %d past last seq %d", ErrFutureSeq, to, l.lastSeq)
		}
		if next > to {
			l.mu.Unlock()
			return out, nil
		}
		hb := l.histBaseLocked()
		switch {
		case next > l.flushed:
			// The rest of the range is still in pending: hand out the
			// ready entries (durable, published, merely queued behind an
			// earlier in-flight seq) and stop.
			for i := range l.pending {
				if e := l.pending[i]; e.ready && e.e.Seq >= next && e.e.Seq <= to {
					out = append(out, e.e)
				}
			}
			l.mu.Unlock()
			return out, nil
		case next >= hb:
			end := min(to, l.flushed)
			out = append(out, l.hist[next-hb:end-hb+1]...)
			next = end + 1
			l.mu.Unlock()
		default:
			// Older than the tail: the journal file, the installed
			// checkpoint, or — when neither can serve it — a reset jump to
			// the oldest in-memory seq.
			path, w := l.path, l.w
			cp, cpSeq := l.cp, l.cpSeq
			limit := min(to, l.flushed)
			l.mu.Unlock()
			served := false
			if path != "" {
				if w != nil {
					w.Flush() // make buffered frames visible to the scan
				}
				reached, err := scanFile(path, next, limit, func(e Entry) bool {
					out = append(out, e)
					return true
				})
				if err == nil && reached > next {
					next = reached
					served = true
				}
			}
			if !served {
				if len(cp) > 0 && next <= cpSeq {
					for _, rec := range cp {
						out = append(out, Entry{Seq: cpSeq, Rec: rec})
					}
					next = cpSeq + 1
				} else {
					// History moved on underneath us: reset jump, like a
					// subscriber racing compaction.
					next = hb
				}
			}
		}
	}
}
