package num

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialKnown(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{20, 10, 184756}, {5, 6, 0},
	}
	for _, c := range cases {
		got, err := Binomial(c.n, c.k)
		if err != nil || got != c.want {
			t.Errorf("Binomial(%d,%d) = %d,%v; want %d", c.n, c.k, got, err, c.want)
		}
	}
	if _, err := Binomial(-1, 0); err == nil {
		t.Error("negative n should error")
	}
}

func TestBinomialPascal(t *testing.T) {
	for n := 1; n < 25; n++ {
		for k := 1; k < n; k++ {
			a, _ := Binomial(n-1, k-1)
			b, _ := Binomial(n-1, k)
			c, _ := Binomial(n, k)
			if a+b != c {
				t.Fatalf("Pascal violated at C(%d,%d)", n, k)
			}
		}
	}
}

func TestCombinationsCountsMatchBinomial(t *testing.T) {
	for n := 0; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			count := 0
			Combinations(n, k, func(s []int) bool {
				count++
				if len(s) != k {
					t.Fatalf("subset of wrong size %d, want %d", len(s), k)
				}
				for i := 0; i < len(s)-1; i++ {
					if s[i] >= s[i+1] {
						t.Fatalf("subset not strictly increasing: %v", s)
					}
				}
				return true
			})
			want, _ := Binomial(n, k)
			if count != want {
				t.Errorf("Combinations(%d,%d) visited %d, want %d", n, k, count, want)
			}
		}
	}
}

func TestCombinationsLexOrder(t *testing.T) {
	var prev []int
	Combinations(5, 3, func(s []int) bool {
		if prev != nil && !lexLess(prev, s) {
			t.Fatalf("not lex order: %v then %v", prev, s)
		}
		prev = append(prev[:0], s...)
		return true
	})
}

func TestCombinationsEarlyStop(t *testing.T) {
	visited := Combinations(10, 3, func(s []int) bool { return false })
	if visited != 1 {
		t.Errorf("early stop visited %d, want 1", visited)
	}
}

func TestCombinationsDistinct(t *testing.T) {
	seen := map[[3]int]bool{}
	Combinations(7, 3, func(s []int) bool {
		var key [3]int
		copy(key[:], s)
		if seen[key] {
			t.Fatalf("duplicate subset %v", s)
		}
		seen[key] = true
		return true
	})
}

func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestRandomSubsetProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 1
		k := rng.Intn(n + 1)
		s := RandomSubset(rng, n, k)
		if len(s) != k {
			return false
		}
		for i, v := range s {
			if v < 0 || v >= n {
				return false
			}
			if i > 0 && s[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandomSubsetUniformish(t *testing.T) {
	// Each element of [0,6) should appear in a 3-subset with probability
	// 1/2. With 6000 trials the count should be near 3000.
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 6)
	const trials = 6000
	for i := 0; i < trials; i++ {
		for _, v := range RandomSubset(rng, 6, 3) {
			counts[v]++
		}
	}
	for v, c := range counts {
		if c < 2700 || c > 3300 {
			t.Errorf("element %d appeared %d times, expected ~3000", v, c)
		}
	}
}

func TestRandomSubsetFull(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := RandomSubset(rng, 5, 5)
	for i, v := range s {
		if v != i {
			t.Fatalf("full subset = %v", s)
		}
	}
	if len(RandomSubset(rng, 5, 0)) != 0 {
		t.Error("empty subset should be empty")
	}
}
