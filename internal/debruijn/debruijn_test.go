package debruijn

import (
	"testing"

	"ftnet/internal/num"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{M: 2, H: 4}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Params{M: 1, H: 4}).Validate(); err == nil {
		t.Error("m=1 should be invalid")
	}
	if err := (Params{M: 2, H: 0}).Validate(); err == nil {
		t.Error("h=0 should be invalid")
	}
	if err := (Params{M: 2, H: 80}).Validate(); err == nil {
		t.Error("2^80 should overflow")
	}
}

func TestDefinitionsAgree(t *testing.T) {
	// The paper asserts the digit definition and the X-function
	// definition are equivalent; verify across a parameter sweep.
	for _, p := range []Params{
		{2, 1}, {2, 3}, {2, 4}, {2, 6}, {3, 3}, {3, 4}, {4, 3}, {5, 2}, {7, 2},
	} {
		a, err := New(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewDigitDefinition(p)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("%v: definitions disagree (X: %v, digit: %v)", p, a, b)
		}
	}
}

func TestB24MatchesFigure1(t *testing.T) {
	// Fig. 1 of the paper shows B_{2,4}: 16 nodes, degree <= 4.
	// Known adjacencies from the binary definition: node 5=0101 connects
	// to 1010 (10), 1011 (11), 0010 (2), 1010... let's verify a few edges
	// that follow directly from the shift rule.
	g := MustNew(Params{2, 4})
	if g.N() != 16 {
		t.Fatalf("n = %d", g.N())
	}
	if g.MaxDegree() > 4 {
		t.Errorf("max degree %d > 4", g.MaxDegree())
	}
	wantEdges := [][2]int{
		{0, 1},   // 0000 -> 0001
		{5, 10},  // 0101 -> 1010 (shift left in 0)
		{5, 11},  // 0101 -> 1011
		{5, 2},   // 0010 -> 0101 (shift left in 1)
		{15, 14}, // 1111 -> 1110
		{8, 1},   // 1000 -> 0001
		{8, 4},   // 0100 -> 1000
	}
	for _, e := range wantEdges {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("edge (%d,%d) missing from B_{2,4}", e[0], e[1])
		}
	}
	// 0000 and 1111 have self-loops that must be dropped: their degree is
	// at most 3 (0 connects to 1 and 8; 1 appears twice... enumerate).
	if g.HasEdge(0, 0) {
		t.Error("self-loop on 0")
	}
}

func TestDegreeBound(t *testing.T) {
	for _, p := range []Params{{2, 3}, {2, 5}, {2, 8}, {3, 3}, {3, 4}, {4, 3}, {5, 3}} {
		g := MustNew(p)
		if g.MaxDegree() > 2*p.M {
			t.Errorf("%v: max degree %d > 2m = %d", p, g.MaxDegree(), 2*p.M)
		}
		if g.N() != p.N() {
			t.Errorf("%v: n = %d, want %d", p, g.N(), p.N())
		}
	}
}

func TestConnectedness(t *testing.T) {
	for _, p := range []Params{{2, 3}, {2, 6}, {3, 3}, {4, 2}, {5, 3}} {
		g := MustNew(p)
		if !g.IsConnected() {
			t.Errorf("%v should be connected", p)
		}
	}
}

func TestDiameterIsH(t *testing.T) {
	// The de Bruijn graph has diameter exactly h (undirected can be less,
	// but never more: any target reachable in h shifts).
	for _, p := range []Params{{2, 3}, {2, 5}, {3, 3}, {4, 2}} {
		g := MustNew(p)
		if d := g.Diameter(); d > p.H || d < 1 {
			t.Errorf("%v: diameter %d out of (0, %d]", p, d, p.H)
		}
	}
}

func TestOutInNeighbors(t *testing.T) {
	p := Params{2, 4}
	g := MustNew(p)
	for x := 0; x < g.N(); x++ {
		for _, y := range OutNeighbors(x, p) {
			if !g.HasEdge(x, y) {
				t.Errorf("out-neighbor (%d,%d) not an edge", x, y)
			}
		}
		for _, y := range InNeighbors(x, p) {
			if !g.HasEdge(x, y) {
				t.Errorf("in-neighbor (%d,%d) not an edge", x, y)
			}
		}
	}
	// In/out are mutually consistent: y in Out(x) iff x in In(y).
	for x := 0; x < g.N(); x++ {
		for _, y := range OutNeighbors(x, p) {
			found := false
			for _, z := range InNeighbors(y, p) {
				if z == x {
					found = true
				}
			}
			if !found {
				t.Errorf("asymmetry: %d in Out(%d) but %d not in In(%d)", y, x, x, y)
			}
		}
	}
}

func TestOutNeighborsMatchShift(t *testing.T) {
	p := Params{3, 3}
	for x := 0; x < p.N(); x++ {
		d := num.MustToDigits(x, p.M, p.H)
		want := map[int]bool{}
		for r := 0; r < p.M; r++ {
			v := d.ShiftLeftIn(r).Value()
			if v != x {
				want[v] = true
			}
		}
		for _, y := range OutNeighbors(x, p) {
			if !want[y] {
				t.Errorf("OutNeighbors(%d) contains unexpected %d", x, y)
			}
		}
	}
}

func TestApplyLabels(t *testing.T) {
	p := Params{2, 3}
	g := MustNew(p)
	ApplyLabels(g, p)
	if g.Label(5) != "101" {
		t.Errorf("label(5) = %q, want 101", g.Label(5))
	}
	if g.Label(0) != "000" {
		t.Errorf("label(0) = %q, want 000", g.Label(0))
	}
}

func TestParamsString(t *testing.T) {
	if s := (Params{2, 4}).String(); s != "B_{2,4}" {
		t.Errorf("String = %q", s)
	}
}
