package ftnet

// Large randomized soak tests: wide parameter sweeps with adversarial
// fault models, skipped under -short. These complement the per-package
// unit tests with scale.

import (
	"math/rand"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/fault"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
	"ftnet/internal/verify"
)

func TestSoakBase2LargeMachines(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rng := rand.New(rand.NewSource(20260612))
	for _, h := range []int{9, 10, 11} {
		for _, k := range []int{1, 4, 8} {
			p := ft.Params{M: 2, H: h, K: k}
			host := ft.MustNew(p)
			target := debruijn.MustNew(p.Target())
			if host.MaxDegree() > p.DegreeBound() {
				t.Fatalf("%v: degree %d > %d", p, host.MaxDegree(), p.DegreeBound())
			}
			mapper := func(f, buf []int) ([]int, error) {
				m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
				if err != nil {
					return nil, err
				}
				return m.AppendPhi(buf[:0]), nil
			}
			rep := verify.Randomized(target, host, k, mapper, 10, rng.Int63(), nil)
			if !rep.Ok() {
				t.Fatalf("%v: %v", p, rep.First)
			}
		}
	}
}

func TestSoakBaseMWide(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rng := rand.New(rand.NewSource(7))
	for _, m := range []int{3, 4, 5, 6, 7} {
		for _, k := range []int{1, 3, 5} {
			p := ft.Params{M: m, H: 3, K: k}
			host := ft.MustNew(p)
			target := debruijn.MustNew(p.Target())
			mapper := func(f, buf []int) ([]int, error) {
				mp, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
				if err != nil {
					return nil, err
				}
				return mp.AppendPhi(buf[:0]), nil
			}
			rep := verify.Randomized(target, host, k, mapper, 10, rng.Int63(), nil)
			if !rep.Ok() {
				t.Fatalf("%v: %v", p, rep.First)
			}
		}
	}
}

func TestSoakShuffleExchangeLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	rng := rand.New(rand.NewSource(9))
	for _, h := range []int{8, 9, 10} {
		k := 5
		p := ft.SEParams{H: h, K: k}
		host, psi, err := ft.NewSEViaDB(p)
		if err != nil {
			t.Fatal(err)
		}
		se := shuffle.MustNew(shuffle.Params{H: h})
		for _, model := range fault.All(host) {
			for trial := 0; trial < 5; trial++ {
				faults := model.Generate(rng, p.NHost(), k)
				phi, err := ft.SEMapViaDB(p, psi, faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEmbedding(se, host, phi); err != nil {
					t.Fatalf("h=%d model=%s faults=%v: %v", h, model.Name(), faults, err)
				}
			}
		}
	}
}

func TestSoakWitnessesEverywhere(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// Every directed target edge of a large machine has a valid witness
	// under a worst-case block fault pattern.
	p := ft.Params{M: 2, H: 10, K: 6}
	faults := make([]int, p.K)
	for i := range faults {
		faults[i] = 511 + i // consecutive block in the middle
	}
	mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
	if err != nil {
		t.Fatal(err)
	}
	n := p.NTarget()
	for x := 0; x < n; x++ {
		for r := 0; r < 2; r++ {
			y := num.X(x, 2, r, n)
			if y == x {
				continue
			}
			if _, err := ft.EdgeWitness(p, mp, x, y, r); err != nil {
				t.Fatalf("edge (%d,%d): %v", x, y, err)
			}
		}
	}
}

func TestSoakExhaustiveMidSize(t *testing.T) {
	if testing.Short() {
		t.Skip("soak")
	}
	// A couple of instances just past the unit-test sizes, enumerated
	// completely (hundreds of thousands of fault sets, parallel).
	for _, c := range []ft.Params{{M: 2, H: 4, K: 4}, {M: 2, H: 5, K: 3}} {
		host := ft.MustNew(c)
		target := debruijn.MustNew(c.Target())
		mapper := func(f, buf []int) ([]int, error) {
			m, err := ft.NewMapping(c.NTarget(), c.NHost(), f)
			if err != nil {
				return nil, err
			}
			return m.AppendPhi(buf[:0]), nil
		}
		rep := verify.Exhaustive(target, host, c.K, mapper)
		if !rep.Ok() {
			t.Fatalf("%v: %v", c, rep.First)
		}
		want, _ := num.Binomial(c.NHost(), c.K)
		if rep.Checked != int64(want) {
			t.Fatalf("%v: checked %d of %d", c, rep.Checked, want)
		}
	}
}
