// Package fleet is the online reconfiguration service: it owns live
// fault-tolerant network instances, absorbs streams of fault/repair
// events, and answers "where does target node x run now?" at memory
// speed.
//
// The paper (Bruck, Cypher, Ho 1992) guarantees that after ANY <= k
// node faults the host still contains the target with dilation 1; this
// package turns that one-shot guarantee into a long-running service:
//
//   - Instance: a state machine around one fault-tolerant network. It
//     validates Fault/Repair events against the spare budget k and
//     maintains the current reconfiguration map incrementally (the
//     sorted fault set changes by one element per event; the monotone
//     rank mapping of Section III-A is recomputed through the shared
//     cache, so repeated fault patterns cost one map lookup).
//   - Cache: a concurrency-safe mapping cache keyed by the canonical
//     (sorted) fault set, with LRU eviction and single-flight
//     computation so a stampede of instances hitting the same fault
//     pattern computes ft.NewMapping exactly once.
//   - Manager: a sharded registry owning many instances behind one API
//     (Create, Event, Lookup, Stats), safe under `go test -race`.
//
// cmd/ftnetd serves this API over HTTP/JSON; cmd/ftload drives it.
package fleet

import (
	"errors"
	"fmt"

	"ftnet/internal/ft"
)

// Error categories, matchable with errors.Is. ErrNotFound marks
// requests naming an unknown instance; ErrConflict marks requests the
// current state rejects (duplicate id, double fault, exhausted budget).
// Everything else the package returns is plain invalid input.
var (
	ErrNotFound = errors.New("fleet: not found")
	ErrConflict = errors.New("fleet: conflict")
)

// fleetError carries a human message plus an errors.Is-matchable
// category, so transports map rejections to codes without string
// sniffing.
type fleetError struct {
	category error // ErrNotFound, ErrConflict, or nil
	msg      string
}

func (e *fleetError) Error() string { return e.msg }

func (e *fleetError) Unwrap() error { return e.category }

func errorf(category error, format string, args ...any) error {
	return &fleetError{category: category, msg: fmt.Sprintf(format, args...)}
}

// Kind selects the target topology of an instance.
type Kind string

// The supported topologies: the paper's two headline constructions.
const (
	KindDeBruijn Kind = "debruijn" // target B_{m,h}, host B^k_{m,h}
	KindShuffle  Kind = "shuffle"  // target SE_h, host B^k_{2,h} via psi
)

// Spec describes the fault-tolerant network an instance runs.
type Spec struct {
	Kind Kind `json:"kind"`
	M    int  `json:"m,omitempty"` // base (de Bruijn only; shuffle is base 2)
	H    int  `json:"h"`           // digits / bits
	K    int  `json:"k"`           // fault budget
}

// Validate checks the spec against the paper's preconditions.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindDeBruijn:
		return ft.Params{M: s.M, H: s.H, K: s.K}.Validate()
	case KindShuffle:
		if s.M != 0 && s.M != 2 {
			return fmt.Errorf("fleet: shuffle-exchange is base 2, got m=%d", s.M)
		}
		return ft.SEParams{H: s.H, K: s.K}.Validate()
	default:
		return fmt.Errorf("fleet: unknown kind %q (want %q or %q)",
			s.Kind, KindDeBruijn, KindShuffle)
	}
}

// EventKind is the type of a reconfiguration event.
type EventKind string

// The two event kinds an instance consumes.
const (
	EventFault  EventKind = "fault"  // host node stops working
	EventRepair EventKind = "repair" // host node returns to service
)

// Event is one fault or repair notification for a host node.
type Event struct {
	Kind EventKind `json:"kind"`
	Node int       `json:"node"` // host node id
}

// EventResult reports the instance state after an applied event.
type EventResult struct {
	Epoch     uint64 `json:"epoch"`      // total events applied so far
	NumFaults int    `json:"num_faults"` // current fault count
	Budget    int    `json:"budget"`     // the instance's k
}
