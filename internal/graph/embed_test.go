package graph

import (
	"errors"
	"math/rand"
	"testing"
)

func TestFindEmbeddingPathInCycle(t *testing.T) {
	phi, err := FindEmbedding(path(5), cycle(8), EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEmbedding(path(5), cycle(8), phi); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingCycleInPathFails(t *testing.T) {
	_, err := FindEmbedding(cycle(4), path(10), EmbedOptions{})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestFindEmbeddingTooBigPattern(t *testing.T) {
	_, err := FindEmbedding(path(5), path(4), EmbedOptions{})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("err = %v, want ErrNoEmbedding", err)
	}
}

func TestFindEmbeddingIntoComplete(t *testing.T) {
	// Anything embeds into a large enough complete graph.
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder(8)
	for e := 0; e < 14; e++ {
		b.AddEdge(rng.Intn(8), rng.Intn(8))
	}
	p := b.Build()
	phi, err := FindEmbedding(p, complete(8), EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEmbedding(p, complete(8), phi); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingRespectsSeed(t *testing.T) {
	seed := []int{-1, -1, -1, -1, -1}
	seed[0] = 3
	phi, err := FindEmbedding(path(5), cycle(10), EmbedOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if phi[0] != 3 {
		t.Errorf("seed not respected: phi[0]=%d", phi[0])
	}
	if err := CheckEmbedding(path(5), cycle(10), phi); err != nil {
		t.Fatal(err)
	}
}

func TestFindEmbeddingBadSeed(t *testing.T) {
	// Seed mapping two adjacent pattern nodes to non-adjacent hosts.
	seed := []int{0, 5, -1}
	_, err := FindEmbedding(path(3), cycle(10), EmbedOptions{Seed: seed})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("inconsistent seed: err = %v", err)
	}
	// Seed with duplicate images.
	_, err = FindEmbedding(path(3), cycle(10), EmbedOptions{Seed: []int{2, -1, 2}})
	if !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("duplicate seed: err = %v", err)
	}
	// Wrong-length seed.
	if _, err := FindEmbedding(path(3), cycle(10), EmbedOptions{Seed: []int{0}}); err == nil {
		t.Fatal("short seed should error")
	}
}

func TestFindEmbeddingBudget(t *testing.T) {
	// Petersen-like hard instance with a tiny budget must return ErrBudget
	// or succeed; never hang. Use K7 into a sparse random graph (likely no
	// embedding) with budget 10.
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder(30)
	for e := 0; e < 45; e++ {
		b.AddEdge(rng.Intn(30), rng.Intn(30))
	}
	host := b.Build()
	_, err := FindEmbedding(complete(7), host, EmbedOptions{Budget: 10})
	if !errors.Is(err, ErrBudget) && !errors.Is(err, ErrNoEmbedding) {
		t.Fatalf("err = %v", err)
	}
}

func TestFindEmbeddingDisconnectedPattern(t *testing.T) {
	// Two disjoint edges into C6.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	p := b.Build()
	phi, err := FindEmbedding(p, cycle(6), EmbedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckEmbedding(p, cycle(6), phi); err != nil {
		t.Fatal(err)
	}
}

func TestIdentityEmbedding(t *testing.T) {
	phi := IdentityEmbedding(4)
	if err := CheckEmbedding(path(4), cycle(4), phi); err != nil {
		t.Fatal(err)
	}
}
