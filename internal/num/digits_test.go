package num

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestToDigitsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(8) + 2
		h := rng.Intn(6) + 1
		limit := MustIPow(m, h)
		x := rng.Intn(limit)
		d := MustToDigits(x, m, h)
		return d.Value() == x && d.Width() == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToDigitsErrors(t *testing.T) {
	if _, err := ToDigits(-1, 2, 3); err == nil {
		t.Error("negative x should error")
	}
	if _, err := ToDigits(8, 2, 3); err == nil {
		t.Error("x = m^h should error")
	}
	if _, err := ToDigits(0, 1, 3); err == nil {
		t.Error("base 1 should error")
	}
	if _, err := ToDigits(0, 2, 0); err == nil {
		t.Error("width 0 should error")
	}
}

func TestDigitsKnownValues(t *testing.T) {
	d := MustToDigits(13, 2, 4) // 13 = 1101
	want := []int{1, 1, 0, 1}
	for i, v := range want {
		if d.D[i] != v {
			t.Fatalf("digits of 13 = %v, want %v", d.D, want)
		}
	}
	if d.String() != "[1,1,0,1]_2" {
		t.Errorf("String() = %q", d.String())
	}
}

func TestShiftLeftInMatchesX(t *testing.T) {
	// The paper's alternate edge definition: shifting left and inserting r
	// is exactly X(x, m, r, m^h) — for non-wrapping values. In general
	// ShiftLeftIn drops the most significant digit, which is exactly the
	// mod operation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 2
		h := rng.Intn(4) + 2
		limit := MustIPow(m, h)
		x := rng.Intn(limit)
		r := rng.Intn(m)
		d := MustToDigits(x, m, h)
		return d.ShiftLeftIn(r).Value() == X(x, m, r, limit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftRightInInvertsShiftLeftIn(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 2
		h := rng.Intn(4) + 2
		x := rng.Intn(MustIPow(m, h))
		r := rng.Intn(m)
		d := MustToDigits(x, m, h)
		msd := d.D[0]
		// Shift left inserting r, then shift right inserting the dropped
		// digit restores the original.
		back := d.ShiftLeftIn(r).ShiftRightIn(msd)
		return back.Value() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotateIsShiftWithCarriedDigit(t *testing.T) {
	d := MustToDigits(0b1011, 2, 4)
	if got := d.RotateLeft().Value(); got != 0b0111 {
		t.Errorf("RotateLeft(1011) = %04b, want 0111", got)
	}
	if got := d.RotateRight().Value(); got != 0b1101 {
		t.Errorf("RotateRight(1011) = %04b, want 1101", got)
	}
}

func TestRotLeftIntMatchesDigits(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 2
		h := rng.Intn(4) + 2
		x := rng.Intn(MustIPow(m, h))
		d := MustToDigits(x, m, h)
		return RotLeft(x, m, h) == d.RotateLeft().Value() &&
			RotRight(x, m, h) == d.RotateRight().Value()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(5) + 2
		h := rng.Intn(5) + 1
		x := rng.Intn(MustIPow(m, h))
		return RotRight(RotLeft(x, m, h), m, h) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExchange(t *testing.T) {
	d := MustToDigits(6, 2, 3) // 110
	if got := d.Exchange(1).Value(); got != 7 {
		t.Errorf("Exchange(110,1) = %d, want 7", got)
	}
	if got := d.Exchange(0).Value(); got != 6 {
		t.Errorf("Exchange(110,0) = %d, want 6", got)
	}
}

func TestNecklacePeriodDividesWidth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(4) + 2
		h := rng.Intn(5) + 1
		x := rng.Intn(MustIPow(m, h))
		p := NecklacePeriod(x, m, h)
		return p >= 1 && p <= h && h%p == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNecklaceKnown(t *testing.T) {
	// 0101 has period 2; 0000 period 1; 0011 period 4.
	if p := NecklacePeriod(0b0101, 2, 4); p != 2 {
		t.Errorf("period(0101) = %d, want 2", p)
	}
	if p := NecklacePeriod(0, 2, 4); p != 1 {
		t.Errorf("period(0000) = %d, want 1", p)
	}
	if p := NecklacePeriod(0b0011, 2, 4); p != 4 {
		t.Errorf("period(0011) = %d, want 4", p)
	}
	if v := NecklaceMin(0b1010, 2, 4); v != 0b0101 {
		t.Errorf("NecklaceMin(1010) = %04b, want 0101", v)
	}
}

func TestNecklaceMinIsRotationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := rng.Intn(4) + 2
		h := rng.Intn(5) + 1
		x := rng.Intn(MustIPow(m, h))
		return NecklaceMin(RotLeft(x, m, h), m, h) == NecklaceMin(x, m, h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
