package ftnet

import (
	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/journal"
)

// This file exposes the online reconfiguration service: a Manager owns
// live network instances, absorbs streams of fault/repair events
// (singly or as atomic bursts), and answers "where does target node x
// run now?" lock-free from an immutable epoch snapshot, backed by a
// shared, sharded, single-flight LRU mapping cache. cmd/ftnetd serves
// this API over HTTP/JSON; cmd/ftload generates traffic against it.

// Fleet-facing types, re-exported from internal/fleet.
type (
	// FleetManager is the sharded registry owning many live instances.
	FleetManager = fleet.Manager
	// FleetOptions configures NewFleetManager.
	FleetOptions = fleet.Options
	// FleetSpec describes the topology of one instance.
	FleetSpec = fleet.Spec
	// FleetEvent is one fault or repair notification.
	FleetEvent = fleet.Event
	// FleetInstance is one live network's state machine.
	FleetInstance = fleet.Instance
	// FleetStats is the fleet-wide counter snapshot.
	FleetStats = fleet.Stats
	// FleetSnapshot is the immutable per-epoch state (fault set +
	// mapping + epoch) an instance publishes; FleetInstance.Snapshot
	// returns the current one, and it stays valid for its epoch after
	// later events.
	FleetSnapshot = ft.Snapshot
	// FleetJournal is the durable epoch journal: an append-only log of
	// one O(k) CRC32C-framed record per accepted transition. Pass it in
	// FleetOptions.Journal (or via FleetManager.SetJournal after
	// recovery) and replay it with FleetManager.Recover/RecoverFile.
	FleetJournal = journal.Writer
	// FleetJournalOptions selects the journal's fsync policy and
	// buffering.
	FleetJournalOptions = journal.Options
	// FleetRecoverStats reports a journal replay: records, transitions,
	// torn-tail handling, and wall-clock recovery time.
	FleetRecoverStats = fleet.RecoverStats
)

// Topology kinds and event kinds for FleetSpec / FleetEvent.
const (
	FleetDeBruijn = fleet.KindDeBruijn
	FleetShuffle  = fleet.KindShuffle
	FleetFault    = fleet.EventFault
	FleetRepair   = fleet.EventRepair
)

// Journal fsync policies for FleetJournalOptions.Sync.
const (
	FleetSyncAlways   = journal.SyncAlways   // fsync before acknowledging (group-committed)
	FleetSyncInterval = journal.SyncInterval // fsync on a timer
	FleetSyncNever    = journal.SyncNever    // flush on Close only
)

// NewFleetManager returns an empty online-reconfiguration manager.
func NewFleetManager(opts FleetOptions) *FleetManager {
	return fleet.NewManager(opts)
}

// OpenFleetJournal opens (or creates) a durable epoch journal file in
// append mode. Recover the previous log into the manager first
// (FleetManager.RecoverFile also truncates any torn tail), then attach
// the writer with FleetManager.SetJournal.
func OpenFleetJournal(path string, opts FleetJournalOptions) (*FleetJournal, error) {
	return journal.Create(path, opts)
}
