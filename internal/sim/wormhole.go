package sim

import "fmt"

// Wormhole switching — the dominant router discipline of the paper's
// era (and of the machines the intro cites) — pipelines a message of L
// flits along its path: the header reserves each link as it advances,
// the body streams behind, and every reserved link stays held until the
// tail passes. A message over a P-hop path costs P + L - 1 cycles when
// uncontended; under contention a blocked message keeps its links held,
// which is what makes wormhole throughput so sensitive to hotspots.
//
// RunWormhole uses the same Machine and Message types as Run; only
// point-to-point mode is supported (wormhole over shared buses was not
// a thing).

// WormholeStats extends Stats with flit-level accounting.
type WormholeStats struct {
	Stats
	Flits int // flits per message
}

// RunWormhole simulates wormhole switching with deterministic
// lowest-id-first arbitration. Messages must have routes of at least
// one node. Deadlock (possible in wormhole on cyclic topologies)
// surfaces as Stalled.
func RunWormhole(m *Machine, msgs []*Message, flits, maxCycles int) (WormholeStats, error) {
	if m.Mode != PointToPoint {
		return WormholeStats{}, fmt.Errorf("sim: wormhole requires point-to-point mode")
	}
	if flits < 1 {
		return WormholeStats{}, fmt.Errorf("sim: flits=%d must be >= 1", flits)
	}
	if len(m.Dead) != m.G.N() {
		return WormholeStats{}, fmt.Errorf("sim: Dead length %d != graph size %d", len(m.Dead), m.G.N())
	}
	for _, msg := range msgs {
		if len(msg.Route) == 0 {
			return WormholeStats{}, fmt.Errorf("sim: message %d has empty route", msg.ID)
		}
		for i := 0; i+1 < len(msg.Route); i++ {
			if !m.G.HasEdge(msg.Route[i], msg.Route[i+1]) {
				return WormholeStats{}, fmt.Errorf("sim: message %d route hop (%d,%d) is not a link",
					msg.ID, msg.Route[i], msg.Route[i+1])
			}
		}
	}

	st := WormholeStats{Flits: flits}
	// freeAt[link] = first cycle at which the link is available again.
	freeAt := make(map[linkKey]int)
	// drainAt[i] = cycle at which message i's tail fully arrives (set
	// when the head reaches the destination).
	drainAt := make(map[int]int)
	pending := 0
	for _, msg := range msgs {
		switch {
		case m.Dead[msg.Route[0]]:
			msg.dropped = true
			st.Dropped++
		case len(msg.Route) == 1:
			msg.delivered = true
			st.Delivered++
		default:
			pending++
		}
	}

	for cycle := 0; pending > 0 && cycle < maxCycles; cycle++ {
		st.Cycles = cycle + 1
		progress := false
		for i, msg := range msgs {
			if msg.delivered || msg.dropped {
				continue
			}
			if at, draining := drainAt[i]; draining {
				if cycle >= at {
					msg.delivered = true
					msg.DeliveredAt = cycle
					st.Delivered++
					pending--
					progress = true
				}
				continue
			}
			cur := msg.Route[msg.pos]
			next := msg.Route[msg.pos+1]
			if m.Dead[cur] || m.Dead[next] {
				msg.dropped = true
				st.Dropped++
				pending--
				progress = true
				continue
			}
			lk := linkKey{cur, next}
			if freeAt[lk] > cycle {
				continue // link held by another worm
			}
			// Head advances; the link is held until the tail (flits-1
			// cycles behind the head) passes.
			freeAt[lk] = cycle + flits
			msg.pos++
			st.TotalHops++
			progress = true
			if msg.pos == len(msg.Route)-1 {
				// The head crosses the final link during this cycle; flit j
				// follows j cycles later, so the tail lands during cycle
				// cycle + flits - 1.
				at := cycle + flits - 1
				if at <= cycle {
					msg.delivered = true
					msg.DeliveredAt = cycle + 1
					st.Delivered++
					pending--
				} else {
					drainAt[i] = at
				}
			}
		}
		if !progress {
			// No head moved and nothing drained this cycle: check whether
			// everything is merely waiting on a future freeAt/drainAt, or
			// truly deadlocked (circular wait). Distinguish by looking for
			// any event in the future.
			future := false
			for i, msg := range msgs {
				if msg.delivered || msg.dropped {
					continue
				}
				if at, ok := drainAt[i]; ok && at >= cycle {
					future = true
					break
				}
			}
			if !future {
				for _, at := range freeAt {
					if at > cycle {
						future = true
						break
					}
				}
			}
			if !future {
				st.Stalled = true
				return st, nil
			}
		}
	}
	st.Stalled = pending > 0
	return st, nil
}
