package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"ftnet/internal/obs"
	"ftnet/internal/shard"
)

// proxyMaxOverrides caps the learned-override cache, matching the HTTP
// proxy's bound: overrides are a latency optimization, not correctness
// — an evicted entry costs one extra bounce that re-teaches it.
const proxyMaxOverrides = 4096

// proxyWindow bounds the per-connection in-flight window: how many
// requests may be fanned out to backends while earlier responses are
// still being merged back in order. Past the window the reader stops
// pulling frames, which backpressures the client through TCP.
const proxyWindow = 256

// ProxyOptions configures NewProxy.
type ProxyOptions struct {
	// RPCPeers maps member name -> RPC address of each daemon's wire
	// listener; the ring is built over these names.
	RPCPeers map[string]string
	// HTTPPeers maps member name -> advertised HTTP base URL.
	// StatusWrongShard hints carry the owner's HTTP URL (the hint
	// format both planes share), so the proxy needs this map to
	// translate a hint back into a backend — and, as on the HTTP path,
	// only hints naming a configured peer are honored.
	HTTPPeers map[string]string
	// Replicas is the ring's virtual-node count (0 selects the default).
	Replicas int
	// Conns is each backend client's connection pool size.
	Conns int
	// Timeout bounds one backend round trip.
	Timeout time.Duration
	// Metrics, when non-nil, receives the proxy's RPC-plane counters
	// and histograms (pass the HTTP proxy's registry so one /metrics
	// covers both planes). Nil creates a private one.
	Metrics *obs.Registry
}

// Proxy is the RPC-plane routing front door: it speaks the wire
// protocol to clients, routes each frame to the instance's owning
// daemon over pooled persistent wire.Clients (frames for different
// owners fan out concurrently), and merges the responses back onto the
// client connection in request order. StatusWrongShard rejections
// re-teach the id->owner override cache exactly like the HTTP 403
// path: learn the hint, retry once, keep the override until a daemon
// changes it again.
type Proxy struct {
	ring       *shard.Ring
	rpcPeers   map[string]string
	ownerByURL map[string]string // HTTP base URL -> member name

	conns   int
	timeout time.Duration

	cmu     sync.Mutex
	clients map[string]*Client // lazily dialed per-owner backends

	omu      sync.RWMutex
	override map[string]string // id -> member name learned from hints

	requests  *obs.Counter
	redirects *obs.Counter
	misroutes *obs.Counter
	upErrors  *obs.Counter
	connGauge *obs.Gauge
	hist      *obs.Histogram

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	fronts map[net.Conn]struct{}
	closed bool
}

// NewProxy builds an RPC routing proxy over the configured peers.
// Call Serve with a listener to start accepting.
func NewProxy(opts ProxyOptions) *Proxy {
	if opts.Conns <= 0 {
		opts.Conns = DefaultConns
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.New()
	}
	members := make([]string, 0, len(opts.RPCPeers))
	for name := range opts.RPCPeers {
		members = append(members, name)
	}
	ownerByURL := make(map[string]string, len(opts.HTTPPeers))
	for name, url := range opts.HTTPPeers {
		if _, ok := opts.RPCPeers[name]; ok {
			ownerByURL[url] = name
		}
	}
	return &Proxy{
		ring:       shard.New(members, opts.Replicas),
		rpcPeers:   opts.RPCPeers,
		ownerByURL: ownerByURL,
		conns:      opts.Conns,
		timeout:    opts.Timeout,
		clients:    make(map[string]*Client),
		override:   make(map[string]string),
		requests: reg.Counter("ftproxy_rpc_requests_total",
			"RPC frames routed to a shard owner."),
		redirects: reg.Counter("ftproxy_rpc_redirects_total",
			"RPC requests re-routed after a wrong-shard hint."),
		misroutes: reg.Counter("ftproxy_rpc_misroutes_total",
			"RPC requests still bounced after the redirect retry."),
		upErrors: reg.Counter("ftproxy_rpc_upstream_errors_total",
			"Backend transport failures surfaced to RPC clients."),
		connGauge: reg.Gauge("ftproxy_rpc_connections",
			"RPC client connections currently open."),
		hist: reg.Histogram("ftproxy_rpc_request_seconds",
			"End-to-end proxied RPC request latency."),
		lns:    make(map[net.Listener]struct{}),
		fronts: make(map[net.Conn]struct{}),
	}
}

// Serve accepts client connections on ln until Close (or a listener
// error) and serves each on its own goroutine pair. It returns nil
// after Close.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		ln.Close()
		return errors.New("wire: proxy closed")
	}
	p.lns[ln] = struct{}{}
	p.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			p.mu.Lock()
			closed := p.closed
			delete(p.lns, ln)
			p.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			nc.Close()
			return nil
		}
		p.fronts[nc] = struct{}{}
		p.mu.Unlock()
		go p.serveFront(nc)
	}
}

// Close stops the listeners, hangs up every client connection, and
// closes the backend clients.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for ln := range p.lns {
		ln.Close()
		delete(p.lns, ln)
	}
	for nc := range p.fronts {
		nc.Close()
		delete(p.fronts, nc)
	}
	p.mu.Unlock()
	p.cmu.Lock()
	for name, cl := range p.clients {
		cl.Close()
		delete(p.clients, name)
	}
	p.cmu.Unlock()
	return nil
}

// Shutdown drains the proxy gracefully, mirroring Server.Shutdown:
// listeners stop accepting and each front connection finishes the
// frames it has already read before exiting on its nudged deadline.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	p.closed = true
	for ln := range p.lns {
		ln.Close()
		delete(p.lns, ln)
	}
	for nc := range p.fronts {
		nc.SetReadDeadline(time.Now())
	}
	p.mu.Unlock()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		p.mu.Lock()
		n := len(p.fronts)
		p.mu.Unlock()
		if n == 0 {
			p.closeClients()
			return nil
		}
		select {
		case <-ctx.Done():
			p.Close()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (p *Proxy) closeClients() {
	p.cmu.Lock()
	for name, cl := range p.clients {
		cl.Close()
		delete(p.clients, name)
	}
	p.cmu.Unlock()
}

func (p *Proxy) forget(nc net.Conn) {
	p.mu.Lock()
	delete(p.fronts, nc)
	p.mu.Unlock()
}

// client returns the pooled backend client for a member, dialing it on
// first use. A dead client is not replaced here — wire.Client re-dials
// its own connections lazily, so one handle per backend lives for the
// proxy's lifetime.
func (p *Proxy) client(owner string) (*Client, error) {
	p.cmu.Lock()
	defer p.cmu.Unlock()
	if cl := p.clients[owner]; cl != nil {
		return cl, nil
	}
	addr := p.rpcPeers[owner]
	if addr == "" {
		return nil, transportErrf("no RPC address for shard member %q", owner)
	}
	cl, err := Dial(addr, Options{Conns: p.conns, Timeout: p.timeout})
	if err != nil {
		return nil, err
	}
	p.clients[owner] = cl
	return cl, nil
}

func (p *Proxy) lookupOverride(id string) string {
	p.omu.RLock()
	defer p.omu.RUnlock()
	return p.override[id]
}

// setOverride learns (or clears) an id's owner exception, with the
// same discipline as the HTTP proxy: a hint that agrees with the ring
// again ends the exception, and past the cap an arbitrary entry is
// evicted — the next bounce re-teaches it.
func (p *Proxy) setOverride(id, owner string) {
	p.omu.Lock()
	if p.ring.Owner(id) == owner {
		delete(p.override, id)
	} else {
		if _, ok := p.override[id]; !ok && len(p.override) >= proxyMaxOverrides {
			for victim := range p.override {
				delete(p.override, victim)
				break
			}
		}
		p.override[id] = owner
	}
	p.omu.Unlock()
}

// proxyCall is one in-flight frame's slot in a front connection's
// order queue: the writer completes slots strictly in arrival order,
// so responses merge back onto the client connection in request order
// no matter how the backend fan-out interleaves.
type proxyCall struct {
	done  chan struct{}
	v     byte // front's negotiated version for this frame
	fatal bool // ambiguous-fate write: hang up instead of answering
	resp  Response
}

// serveFront runs one client connection: this goroutine reads frames,
// decodes them, and fans each out to its owner's backend on a fresh
// goroutine; a writer goroutine drains the order queue, re-encodes
// responses, and flushes them coalesced (one writev per drained run).
func (p *Proxy) serveFront(nc net.Conn) {
	defer p.forget(nc)
	p.connGauge.Add(1)
	defer p.connGauge.Add(-1)

	order := make(chan *proxyCall, proxyWindow)
	writerDone := make(chan struct{})
	go p.frontWriter(nc, order, writerDone)
	defer func() {
		close(order)
		<-writerDone // writer owns nc.Close after draining
	}()

	br := bufio.NewReaderSize(nc, readBufSize)
	var hdr [frameHeaderSize]byte
	var in []byte
	defer func() { putBuf(in) }()
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if size > MaxFrame {
			return
		}
		in = growRecv(in, int(size))
		if _, err := io.ReadFull(br, in); err != nil {
			return
		}
		if crc32.Checksum(in, castagnoli) != want {
			return
		}
		req, err := DecodeRequest(in)
		if err != nil {
			// A malformed frame is a broken peer, same as on the server:
			// hang up rather than guess at a sequence number.
			return
		}
		pc := &proxyCall{done: make(chan struct{}), v: req.Version}
		order <- pc // blocks at proxyWindow: TCP backpressure
		go p.dispatch(req, pc)
	}
}

// frontWriter merges responses back in request order and writes them
// coalesced: it keeps appending completed responses while more slots
// are immediately available, and pays for a writev only when the run
// dries up (or the coalesce cap is hit) — the server's log-round
// discipline applied to the proxy's merge point.
func (p *Proxy) frontWriter(nc net.Conn, order <-chan *proxyCall, done chan<- struct{}) {
	defer close(done)
	defer nc.Close()
	var wq writeQueue
	var chunks [][]byte
	var vecs net.Buffers
	defer func() {
		chunks, _, _ = wq.take(chunks)
		recycle(chunks)
	}()
	flush := func() bool {
		if wq.queued == 0 {
			return true
		}
		var err error
		chunks, _, _ = wq.take(chunks)
		err = writeBuffers(nc, &vecs, chunks)
		recycle(chunks)
		return err == nil
	}
	for pc := range order {
		<-pc.done
		if pc.fatal {
			// The backend connection died under an ApplyBatch: the burst
			// may or may not have committed, and StatusUnavailable would
			// promise "nothing applied". The only honest answer is the
			// one wire.Client already refuses to retry — a transport
			// failure — so flush what is answered and hang up.
			flush()
			for pc := range order {
				<-pc.done
			}
			return
		}
		mark := wq.mark()
		buf, err := AppendResponse(appendFrameHeader(wq.active), pc.resp)
		if err != nil {
			// Response encode failures are proxy bugs; drop the frame and
			// let the client's deadline surface it.
			wq.active = wq.active[:mark]
			continue
		}
		wq.sealFrameAt(buf, mark)
		if len(order) > 0 && wq.queued < maxCoalesce {
			continue
		}
		if !flush() {
			// The client hung up; keep draining completions so dispatch
			// goroutines never leak, but stop writing.
			for pc := range order {
				<-pc.done
			}
			return
		}
	}
	flush()
}

// dispatch routes one decoded request to its owner's backend, chasing
// at most one wrong-shard hint, and completes the order slot with the
// response to merge.
func (p *Proxy) dispatch(req Request, pc *proxyCall) {
	defer close(pc.done)
	start := time.Now()
	p.requests.Inc()
	owner := p.lookupOverride(req.ID)
	if owner == "" {
		owner = p.ring.Owner(req.ID)
	}
	for attempt := 0; ; attempt++ {
		err := p.callBackend(owner, req, pc)
		if err == nil {
			break
		}
		var we *Error
		if errors.As(err, &we) && we.Status == StatusWrongShard {
			hinted, ok := p.ownerByURL[we.Owner]
			if ok && hinted != owner && attempt == 0 {
				// The daemons know better than the ring mid-migration:
				// learn the exception, retry once at the hinted owner.
				p.setOverride(req.ID, hinted)
				p.redirects.Inc()
				owner = hinted
				continue
			}
			p.misroutes.Inc()
			p.fillError(pc, req, we)
			break
		}
		if errors.As(err, &we) {
			p.fillError(pc, req, we)
			break
		}
		// Backend transport failure. For idempotent reads, surface as
		// unavailable — the "retry me" category the HTTP plane's
		// 502/503 occupies; nothing is at stake in a re-issue. For
		// ApplyBatch the fate is ambiguous (the burst may have committed
		// just before the connection died), so no retryable status is
		// honest: mark the slot fatal and let the writer hang up.
		p.upErrors.Inc()
		if req.Type == MsgApplyBatch {
			pc.fatal = true
		} else {
			pc.resp = Response{Version: pc.v, Type: req.Type, Seq: req.Seq,
				Status: StatusUnavailable, Msg: "ftproxy: upstream " + owner + ": " + err.Error()}
		}
		break
	}
	p.hist.Observe(time.Since(start))
}

// callBackend performs req against one owner's client and fills pc's
// response on success.
func (p *Proxy) callBackend(owner string, req Request, pc *proxyCall) error {
	cl, err := p.client(owner)
	if err != nil {
		return err
	}
	switch req.Type {
	case MsgLookup:
		phi, epoch, err := cl.Lookup(req.ID, req.X)
		if err != nil {
			return err
		}
		pc.resp = Response{Version: pc.v, Type: req.Type, Seq: req.Seq, Phi: phi, Epoch: epoch}
	case MsgLookupBatch:
		phis := make([]int, len(req.Xs))
		epoch, err := cl.LookupBatch(req.ID, req.Xs, phis)
		if err != nil {
			return err
		}
		pc.resp = Response{Version: pc.v, Type: req.Type, Seq: req.Seq, Epoch: epoch, Phis: phis}
	case MsgApplyBatch:
		res, err := cl.ApplyBatch(req.ID, req.Events)
		if err != nil {
			return err
		}
		pc.resp = Response{Version: pc.v, Type: req.Type, Seq: req.Seq, Result: res}
	default:
		pc.resp = Response{Version: pc.v, Type: req.Type, Seq: req.Seq,
			Status: StatusInvalid, Msg: "ftproxy: unroutable message type"}
	}
	return nil
}

// fillError re-encodes a backend rejection at the front's version,
// applying the same v1 downgrade as the server: StatusWrongShard did
// not exist before VersionShard, so older clients get StatusReadOnly
// with the owner folded into the message.
func (p *Proxy) fillError(pc *proxyCall, req Request, we *Error) {
	resp := Response{Version: pc.v, Type: req.Type, Seq: req.Seq, Status: we.Status, Msg: we.Msg}
	if we.Status == StatusWrongShard {
		if pc.v < VersionShard {
			resp.Status = StatusReadOnly
			if we.Owner != "" {
				resp.Msg += " (owner " + we.Owner + ")"
			}
		} else {
			resp.Owner = we.Owner
		}
	}
	pc.resp = resp
}
