package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

func TestDeBruijnPathAllPairs(t *testing.T) {
	for _, p := range []debruijn.Params{{M: 2, H: 4}, {M: 3, H: 3}} {
		g := debruijn.MustNew(p)
		n := p.N()
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				path, err := DeBruijnPath(u, v, p)
				if err != nil {
					t.Fatalf("%v (%d,%d): %v", p, u, v, err)
				}
				if path[0] != u || path[len(path)-1] != v {
					t.Fatalf("path endpoints wrong: %v", path)
				}
				if len(path) > p.H+1 {
					t.Fatalf("path longer than h hops: %v", path)
				}
				if err := Validate(path, g); err != nil {
					t.Fatalf("%v (%d,%d): %v", p, u, v, err)
				}
			}
		}
	}
}

func TestShortPathNeverLongerThanFull(t *testing.T) {
	p := debruijn.Params{M: 2, H: 5}
	g := debruijn.MustNew(p)
	for u := 0; u < p.N(); u++ {
		for v := 0; v < p.N(); v++ {
			full, _ := DeBruijnPath(u, v, p)
			short, err := ShortPath(u, v, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(short) > len(full) {
				t.Fatalf("(%d,%d): short %d > full %d", u, v, len(short), len(full))
			}
			if err := Validate(short, g); err != nil {
				t.Fatal(err)
			}
			if short[0] != u || short[len(short)-1] != v {
				t.Fatalf("short path endpoints wrong: %v", short)
			}
		}
	}
}

func TestOverlapKnown(t *testing.T) {
	p := debruijn.Params{M: 2, H: 4}
	// u = 0b0011, v = 0b1101: suffix "11" of u == prefix "11" of v.
	if o := Overlap(0b0011, 0b1101, p); o != 2 {
		t.Errorf("overlap = %d, want 2", o)
	}
	if o := Overlap(5, 5, p); o != 4 {
		t.Errorf("self overlap = %d, want 4", o)
	}
	if o := Overlap(0b0000, 0b1111, p); o != 0 {
		t.Errorf("overlap = %d, want 0", o)
	}
}

func TestOverlapPathLength(t *testing.T) {
	// Path length (in edges, counting collapsed self-loops as 0) is at
	// most h - overlap.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := debruijn.Params{M: rng.Intn(3) + 2, H: rng.Intn(3) + 3}
		u := rng.Intn(p.N())
		v := rng.Intn(p.N())
		short, err := ShortPath(u, v, p)
		if err != nil {
			return false
		}
		return len(short)-1 <= p.H-Overlap(u, v, p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSEPathAllPairs(t *testing.T) {
	for h := 2; h <= 5; h++ {
		se := shuffle.MustNew(shuffle.Params{H: h})
		n := 1 << h
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				path, steps, err := SEPath(u, v, h)
				if err != nil {
					t.Fatalf("h=%d (%d,%d): %v", h, u, v, err)
				}
				if path[0] != u || path[len(path)-1] != v {
					t.Fatalf("endpoints wrong: %v", path)
				}
				if len(path) > 2*h+1 {
					t.Fatalf("path too long: %v", path)
				}
				if len(steps) != len(path)-1 {
					t.Fatalf("steps/path mismatch: %d vs %d", len(steps), len(path))
				}
				if err := Validate(path, se); err != nil {
					t.Fatalf("h=%d (%d,%d): %v", h, u, v, err)
				}
				// Step classification must match the edge used.
				for i, s := range steps {
					a, b := path[i], path[i+1]
					if s.Exchange && !shuffle.IsExchangeEdge(a, b) {
						t.Fatalf("step %d claims exchange, edge (%d,%d)", i, a, b)
					}
					if !s.Exchange && !shuffle.IsShuffleEdge(a, b, h) {
						t.Fatalf("step %d claims shuffle, edge (%d,%d)", i, a, b)
					}
				}
			}
		}
	}
}

func TestLiftPreservesLengthAndValidity(t *testing.T) {
	// Dilation-1: a reconfigured host carries target routes unchanged.
	rng := rand.New(rand.NewSource(77))
	p := ft.Params{M: 2, H: 5, K: 3}
	host := ft.MustNew(p)
	dbp := p.Target()
	for trial := 0; trial < 30; trial++ {
		faults := num.RandomSubset(rng, p.NHost(), p.K)
		mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		phi := mp.PhiSlice()
		u, v := rng.Intn(p.NTarget()), rng.Intn(p.NTarget())
		path, err := ShortPath(u, v, dbp)
		if err != nil {
			t.Fatal(err)
		}
		lifted, err := Lift(path, phi)
		if err != nil {
			t.Fatal(err)
		}
		if len(lifted) != len(path) {
			t.Fatal("lift changed length")
		}
		if err := Validate(lifted, host); err != nil {
			t.Fatalf("faults %v route %d->%d: %v", faults, u, v, err)
		}
	}
}

func TestLiftErrors(t *testing.T) {
	if _, err := Lift([]int{0, 9}, []int{5, 6}); err == nil {
		t.Error("out-of-domain node accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	if err := Validate(nil, g); err == nil {
		t.Error("empty path accepted")
	}
	if err := Validate([]int{0, 2}, g); err == nil {
		t.Error("non-edge hop accepted")
	}
	if err := Validate([]int{0, 1}, g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := Validate([]int{2}, g); err != nil {
		t.Errorf("single-node path rejected: %v", err)
	}
}

func TestPathParamErrors(t *testing.T) {
	p := debruijn.Params{M: 2, H: 3}
	if _, err := DeBruijnPath(-1, 0, p); err == nil {
		t.Error("negative node accepted")
	}
	if _, err := ShortPath(0, 8, p); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, _, err := SEPath(0, 0, 0); err == nil {
		t.Error("h=0 accepted")
	}
	if _, _, err := SEPath(0, 99, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
}
