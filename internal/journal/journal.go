// Package journal is the durable epoch journal of the reconfiguration
// service: an append-only write-ahead log with one length-prefixed,
// CRC32C-framed record per accepted transition. Because the paper's
// reconfiguration map is a pure function of the fault set, a record is
// O(k) — the epoch plus the sorted fault set — so journaling every
// accepted transition stays cheap even at 10^6 hosts.
//
// Frame layout (little-endian):
//
//	[4-byte payload length][4-byte CRC32C of payload][payload]
//
// Writers append frames through a shared buffer with group commit:
// concurrent appenders that request durability while an fsync is in
// flight wait for the next one, so a storm of writers costs one fsync
// per batch, not one per record. The fsync policy is explicit:
// SyncAlways acknowledges nothing before the data is on disk,
// SyncInterval syncs on a timer, SyncNever leaves flushing to the OS.
//
// Readers scan frames and treat any malformed suffix — a partial
// header, an implausible length, a CRC mismatch, a non-canonical
// payload — as a torn tail: every complete record before it is kept,
// everything from the tear on is dropped (ErrTorn), and nothing
// corrupted is ever surfaced as a record.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// castagnoli is the CRC32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeaderSize is the bytes before each payload: u32 length + u32 CRC32C.
const frameHeaderSize = 8

// SyncPolicy says when appended records must reach stable storage.
type SyncPolicy int

// The fsync policies.
const (
	// SyncAlways fsyncs before Append returns: an acknowledged
	// transition survives a crash. Concurrent appenders share fsyncs
	// via group commit.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer: a crash loses at most the last
	// interval of acknowledged transitions.
	SyncInterval
	// SyncNever only flushes on Close: durability is the OS's problem.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseSyncPolicy parses the ftnetd -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf(`journal: unknown fsync policy %q (want "always", "interval" or "never")`, s)
	}
}

// Options configures a Writer.
type Options struct {
	// Sync is the fsync policy (zero value: SyncAlways).
	Sync SyncPolicy
	// Interval is the SyncInterval period (<= 0 selects 50ms).
	Interval time.Duration
	// BufferSize is the write buffer in bytes (<= 0 selects 64 KiB).
	BufferSize int
}

// DefaultSyncInterval is the SyncInterval period used when none is given.
const DefaultSyncInterval = 50 * time.Millisecond

// ErrClosed is returned by appends to a closed writer.
var ErrClosed = errors.New("journal: writer closed")

// syncer is what the underlying writer must implement for fsync to
// mean anything; *os.File does. Buffers and test writers simply flush.
type syncer interface{ Sync() error }

// Stats is a point-in-time snapshot of a writer's counters.
type Stats struct {
	Records   uint64 `json:"records"`    // appended records
	Bytes     uint64 `json:"bytes"`      // appended bytes (frames included)
	Syncs     uint64 `json:"syncs"`      // completed fsync batches
	LastEpoch uint64 `json:"last_epoch"` // epoch of the last appended transition
}

// Writer appends framed records to an underlying stream. All methods
// are safe for concurrent use.
type Writer struct {
	opts Options

	mu     sync.Mutex // guards bw, seq, werr, closed
	w      io.Writer
	bw     *bufio.Writer
	f      syncer // non-nil when the stream can fsync
	file   *os.File
	seq    uint64 // records buffered so far
	werr   error  // sticky write/flush/sync error
	closed bool

	// Group-commit state: appenders needing durability wait until
	// syncedSeq covers their record; one of them runs the fsync for
	// everyone buffered so far.
	cmu       sync.Mutex
	cond      *sync.Cond
	syncing   bool
	syncedSeq uint64

	stop chan struct{} // interval-sync loop shutdown
	wg   sync.WaitGroup

	records   atomic.Uint64
	bytes     atomic.Uint64
	syncs     atomic.Uint64
	lastEpoch atomic.Uint64
}

// NewWriter wraps an arbitrary stream (durability requires it to
// implement Sync; otherwise fsync degrades to a buffer flush, which is
// exactly right for in-memory journals in tests).
func NewWriter(w io.Writer, opts Options) *Writer {
	if opts.Interval <= 0 {
		opts.Interval = DefaultSyncInterval
	}
	if opts.BufferSize <= 0 {
		opts.BufferSize = 64 << 10
	}
	jw := &Writer{opts: opts, w: w, bw: bufio.NewWriterSize(w, opts.BufferSize)}
	jw.cond = sync.NewCond(&jw.cmu)
	if s, ok := w.(syncer); ok {
		jw.f = s
	}
	if opts.Sync == SyncInterval {
		jw.stop = make(chan struct{})
		jw.wg.Add(1)
		go jw.syncLoop()
	}
	return jw
}

// Create opens (or creates) the journal file in append-only mode. The
// caller is expected to have recovered and truncated any torn tail
// first (Manager.RecoverFile does both), or fresh appends would land
// after the garbage.
func Create(path string, opts Options) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	w := NewWriter(f, opts)
	w.file = f
	return w, nil
}

func (w *Writer) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.Sync()
		}
	}
}

// Append encodes rec, writes one frame, and — under SyncAlways —
// returns only after the record is on stable storage. A non-nil return
// means the record must not be considered durable; after a write error
// the writer is poisoned and every later Append fails, so a journaled
// instance cannot silently diverge from its log.
func (w *Writer) Append(rec Record) error {
	seq, err := w.AppendAsync(rec)
	if err != nil {
		return err
	}
	return w.WaitDurable(seq)
}

// AppendAsync encodes rec and buffers its frame, returning the
// writer-local record number (1-based) without waiting for durability.
// It exists for the commit pipeline, which buffers under its ordering
// lock and then waits for durability outside it — so concurrent
// committers still share fsyncs via group commit. Pair every
// successful AppendAsync with a WaitDurable before acknowledging.
func (w *Writer) AppendAsync(rec Record) (uint64, error) {
	payload, err := AppendRecord(make([]byte, frameHeaderSize, frameHeaderSize+64), rec)
	if err != nil {
		return 0, err
	}
	body := payload[frameHeaderSize:]
	binary.LittleEndian.PutUint32(payload[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(payload[4:8], crc32.Checksum(body, castagnoli))

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	if w.werr != nil {
		err := w.werr
		w.mu.Unlock()
		return 0, err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.werr = err
		w.mu.Unlock()
		return 0, err
	}
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	w.records.Add(1)
	w.bytes.Add(uint64(len(payload)))
	if rec.Op == OpTransition {
		w.lastEpoch.Store(rec.Epoch)
	}
	return seq, nil
}

// WaitDurable blocks until the record AppendAsync numbered seq is
// durable per the writer's fsync policy: under SyncAlways it waits for
// (or runs) the covering group-commit fsync; under SyncInterval and
// SyncNever durability is deferred, so it returns immediately.
func (w *Writer) WaitDurable(seq uint64) error {
	if w.opts.Sync != SyncAlways {
		return nil
	}
	return w.waitDurable(seq)
}

// Path returns the journal file path when the writer was opened with
// Create, and "" for writers over arbitrary streams.
func (w *Writer) Path() string {
	if w.file != nil {
		return w.file.Name()
	}
	return ""
}

// Opts returns the options the writer was built with (with defaults
// filled in) — what Create needs to reopen the same journal after a
// compaction swap.
func (w *Writer) Opts() Options { return w.opts }

// waitDurable blocks until every record up to seq has been fsynced,
// running the fsync itself if no one else is — the group-commit core:
// all appenders buffered while one fsync runs are covered by the next
// single fsync.
func (w *Writer) waitDurable(seq uint64) error {
	w.cmu.Lock()
	defer w.cmu.Unlock()
	for {
		// Durability first: once a sync covered this record it succeeded,
		// full stop — a later append poisoning the writer must not turn
		// into a spurious failure for a record already on disk.
		if w.syncedSeq >= seq {
			return nil
		}
		// Not yet durable and the writer is poisoned: no future sync can
		// cover us, so fail (also breaks every waiter out of the loop).
		w.mu.Lock()
		err := w.werr
		w.mu.Unlock()
		if err != nil {
			return err
		}
		if !w.syncing {
			w.syncing = true
			w.cmu.Unlock()
			upto, serr := w.flushAndSync()
			w.cmu.Lock()
			w.syncing = false
			if serr == nil && upto > w.syncedSeq {
				w.syncedSeq = upto
			}
			w.cond.Broadcast()
			continue
		}
		// A sync is in flight; it may predate our record, in which case
		// we loop and run the next one ourselves.
		w.cond.Wait()
	}
}

// flushAndSync flushes the buffer and fsyncs the file, reporting the
// record sequence the sync covers.
func (w *Writer) flushAndSync() (uint64, error) {
	w.mu.Lock()
	upto := w.seq
	err := w.werr
	if err == nil {
		err = w.bw.Flush()
		if err != nil {
			w.werr = err
		}
	}
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			w.mu.Lock()
			w.werr = err
			w.mu.Unlock()
			return 0, err
		}
	}
	w.syncs.Add(1)
	return upto, nil
}

// Flush pushes buffered frames to the underlying stream without
// forcing them to stable storage.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.werr != nil {
		return w.werr
	}
	if err := w.bw.Flush(); err != nil {
		w.werr = err
		return err
	}
	return nil
}

// Sync flushes and fsyncs regardless of policy.
func (w *Writer) Sync() error {
	_, err := w.flushAndSync()
	return err
}

// Close flushes, fsyncs, stops the interval loop, and closes the file
// if the writer opened it. Further appends return ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.stop != nil {
		close(w.stop)
		w.wg.Wait()
	}
	_, err := w.flushAndSync()
	if w.file != nil {
		if cerr := w.file.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats returns the writer's counters.
func (w *Writer) Stats() Stats {
	return Stats{
		Records:   w.records.Load(),
		Bytes:     w.bytes.Load(),
		Syncs:     w.syncs.Load(),
		LastEpoch: w.lastEpoch.Load(),
	}
}
