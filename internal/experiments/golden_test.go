package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden files from the current experiment
// output instead of comparing against them:
//
//	go test ./internal/experiments -run TestGoldenFigures -update
var update = flag.Bool("update", false, "rewrite testdata/*.golden from current output")

// The figure experiments are fully deterministic; golden files pin their
// exact output so structural regressions (a changed edge rule, a changed
// reconfiguration) are caught as text diffs.
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"F2", "F3", "F4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, buf.Len())
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file (run with -update to accept).\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), want)
			}
		})
	}
}
