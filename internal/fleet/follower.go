package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"ftnet/internal/journal"
	"ftnet/internal/obs"
)

// Follower tails a leader's GET /v1/watch commit stream and turns the
// local Manager into a verified replica: every forwarded record is
// checked (transitions bit-identically against a fresh ft.NewMapping —
// the cheap receiver-side verification of a forwarded record stream)
// and re-committed through the local pipeline, so the follower has its
// own journal for restart, serves the same lock-free lookups, and even
// exposes its own watch stream for chaining.
//
// The loop is resumable and self-healing: it always subscribes from
// its own NextSeq, so a torn stream just reconnects and continues; a
// sequence jump or a checkpoint entry (the leader compacted past us,
// or we joined fresh) triggers a full resynchronization from the
// forwarded checkpoint; heartbeats bound how long a dead connection
// can go unnoticed.
type Follower struct {
	mgr    *Manager
	leader string
	opts   FollowerOptions

	connected  atomic.Bool
	entries    atomic.Uint64
	heartbeats atomic.Uint64
	reconnects atomic.Uint64
	resyncs    atomic.Uint64
	leaderSeq  atomic.Uint64 // highest seq the leader has shown us (entries + heartbeats)
	lastErr    atomic.Pointer[string]

	// Replication observability, registered into the manager's metrics
	// registry: how far behind the leader's stream we are (sequence
	// numbers) and how stale each applied entry was (leader commit
	// wall-clock to local apply; needs roughly-synchronized clocks, and
	// is skipped for entries with no timestamp, e.g. journal catch-up).
	lagGauge *obs.Gauge
	ageHist  *obs.Histogram
}

// FollowerOptions tunes a Follower.
type FollowerOptions struct {
	// Client issues the watch requests. It must not set a global
	// timeout (the watch response never ends); the default client adds
	// only a dial/header timeout.
	Client *http.Client
	// Heartbeat is the interval requested from the leader (default 5s).
	Heartbeat time.Duration
	// StallTimeout disconnects a stream with no entries or heartbeats
	// for this long (default 4x Heartbeat).
	StallTimeout time.Duration
	// Backoff is the pause between reconnect attempts (default 500ms).
	Backoff time.Duration
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time snapshot of the replication loop.
type FollowerStats struct {
	Leader     string `json:"leader"`
	Connected  bool   `json:"connected"`
	Entries    uint64 `json:"entries"`    // stream entries received
	Heartbeats uint64 `json:"heartbeats"` // heartbeat lines received
	Reconnects uint64 `json:"reconnects"` // streams (re)opened
	Resyncs    uint64 `json:"resyncs"`    // checkpoint resynchronizations
	LastSeq    uint64 `json:"last_seq"`   // local commit position
	LeaderSeq  uint64 `json:"leader_seq"` // highest seq the leader has shown us
	LagSeqs    int64  `json:"lag_seqs"`   // leader_seq - last_seq at the last stream event
	LastError  string `json:"last_error,omitempty"`
}

// NewFollower wires a replication loop from leader (a base URL like
// http://host:8080) into mgr. Start it with Run.
func NewFollower(mgr *Manager, leader string, opts FollowerOptions) (*Follower, error) {
	u, err := url.Parse(leader)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fleet: follower leader URL %q: not an absolute http(s) URL", leader)
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 15 * time.Second}}
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = defaultWatchHeartbeat
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 4 * opts.Heartbeat
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 500 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	reg := mgr.Metrics()
	return &Follower{
		mgr: mgr, leader: leader, opts: opts,
		lagGauge: reg.Gauge("ftnet_replication_lag_seqs",
			"Sequence numbers the local replica trails the leader's stream by."),
		ageHist: reg.Histogram("ftnet_replication_entry_age_seconds",
			"Age of each applied entry: leader commit wall-clock to local apply."),
	}, nil
}

// observeStream records the replication-lag metrics after one stream
// event: seq is the leader position the event revealed, and ts (when
// non-zero) the leader's commit wall-clock for an entry just applied.
func (f *Follower) observeStream(seq uint64, ts int64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur || f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.lagGauge.Set(int64(f.leaderSeq.Load()) - int64(f.mgr.CommitLog().LastSeq()))
	if ts > 0 {
		f.ageHist.Observe(time.Duration(time.Now().UnixNano() - ts))
	}
}

// Stats returns the replication loop's counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Leader:     f.leader,
		Connected:  f.connected.Load(),
		Entries:    f.entries.Load(),
		Heartbeats: f.heartbeats.Load(),
		Reconnects: f.reconnects.Load(),
		Resyncs:    f.resyncs.Load(),
		LastSeq:    f.mgr.CommitLog().LastSeq(),
		LeaderSeq:  f.leaderSeq.Load(),
	}
	st.LagSeqs = f.lagGauge.Value()
	if p := f.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// Run drives the replication loop until ctx is canceled. Every stream
// error is recorded, backed off, and retried; Run only returns the
// context's error.
func (f *Follower) Run(ctx context.Context) error {
	for {
		err := f.stream(ctx)
		f.connected.Store(false)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			msg := err.Error()
			f.lastErr.Store(&msg)
			f.opts.Logf("follower: stream from %s: %v (reconnecting)", f.leader, err)
		}
		select {
		case <-time.After(f.opts.Backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// errResync asks the outer loop to reconnect from scratch (from=0):
// the leader's stream jumped past our position, so only its checkpoint
// can restore us.
var errResync = errors.New("fleet: follower needs a checkpoint resync")

// stream opens one watch connection at the local resume position and
// applies entries until it breaks.
func (f *Follower) stream(ctx context.Context) error {
	from := f.mgr.NextSeq()
	err := f.streamFrom(ctx, from)
	if errors.Is(err, errResync) && from > 0 {
		f.resyncs.Add(1)
		f.opts.Logf("follower: resynchronizing from %s (local seq %d is beyond the leader's compacted log)",
			f.leader, from-1)
		return f.streamFrom(ctx, 0)
	}
	return err
}

func (f *Follower) streamFrom(ctx context.Context, from uint64) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := fmt.Sprintf("%s/v1/watch?from=%d&heartbeat=%s", f.leader, from, f.opts.Heartbeat)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestedRangeNotSatisfiable {
		// The leader's log ends before our position: it restarted with
		// less history than we replicated. Resync from its checkpoint.
		return errResync
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: follower: leader returned status %d", resp.StatusCode)
	}
	f.reconnects.Add(1)
	f.connected.Store(true)
	f.opts.Logf("follower: streaming from %s (from seq %d)", f.leader, from)

	// The stall watchdog: any line (entry or heartbeat) rearms it; a
	// silent connection is cut and the outer loop reconnects-resumes.
	stall := time.AfterFunc(f.opts.StallTimeout, cancel)
	defer stall.Stop()

	// Checkpoint staging: "checkpoint" entries arrive as a group, all
	// carrying the seq they cover; the reset is applied when the group
	// ends (the first ordinary entry, or a heartbeat).
	var staged []journal.Record
	var stagedSeq uint64
	applyStaged := func() error {
		if staged == nil {
			return nil
		}
		if err := f.mgr.ResetFromCheckpoint(stagedSeq, staged); err != nil {
			return err
		}
		f.opts.Logf("follower: installed checkpoint of %d instances at seq %d", len(staged), stagedSeq)
		staged = nil
		return nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		stall.Reset(f.opts.StallTimeout)
		var we WatchEntry
		if err := json.Unmarshal(sc.Bytes(), &we); err != nil {
			return fmt.Errorf("fleet: follower: bad watch line %q: %v", sc.Text(), err)
		}
		if we.Heartbeat {
			f.heartbeats.Add(1)
			if err := applyStaged(); err != nil {
				return err
			}
			// An idle heartbeat still reveals the leader's position: a
			// lag that persists across heartbeats is real, not in-flight.
			f.observeStream(we.Seq, 0)
			continue
		}
		e, err := we.Entry()
		if err != nil {
			return err
		}
		if e.Rec.Op == journal.OpCheckpoint {
			if staged == nil || e.Seq != stagedSeq {
				staged, stagedSeq = []journal.Record{}, e.Seq
			}
			staged = append(staged, e.Rec)
			f.entries.Add(1)
			continue
		}
		if err := applyStaged(); err != nil {
			return err
		}
		if err := f.mgr.ReplicateEntry(e); err != nil {
			if errors.Is(err, ErrSeqGap) {
				return fmt.Errorf("%w: %v", errResync, err)
			}
			return err
		}
		f.entries.Add(1)
		f.observeStream(e.Seq, e.At)
	}
	if err := applyStaged(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("fleet: follower: leader closed the stream")
}
