package experiments

import (
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/num"
)

// allocsPerRun measures the average number of heap allocations one
// call of fn performs, via the runtime's Mallocs counter — the
// experiment runs single-goroutine, so the delta is fn's own. (The
// testing package's AllocsPerRun is deliberately not used: importing
// it here would link the test framework into cmd/ftbench and pin
// GOMAXPROCS(1) for the duration of each measurement.)
func allocsPerRun(runs int, fn func()) float64 {
	fn() // warm up so one-time lazy initialization is not counted
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// L2 is the scale experiment for the compact rank-based mapping
// representation: it drives one live fleet.Instance per host size from
// 2^10 up to 2^20 (a million-node machine) through fault/repair
// transitions and lookups, and tabulates per-operation time and
// allocation counts next to what the dense representation used to pay
// per transition (an O(nHost) healthy-array rebuild).
//
// The tracked invariant — enforced here, not just printed — is that
// Apply and Lookup allocation counts are flat in nHost: a fault event
// on a million-node instance touches O(k) state, not megabytes. Times
// are machine-dependent; the allocation columns are exact.
func L2(w io.Writer) error {
	const k = 16
	type row struct {
		h           int
		nHost       int
		applyNs     float64
		applyAllocs float64
		lookupNs    float64
		lookupAlloc float64
		denseNs     float64
	}
	var rows []row
	for _, h := range []int{10, 14, 17, 20} {
		in, err := fleet.NewManager(fleet.Options{}).Create(
			fmt.Sprintf("l2-h%d", h), fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: h, K: k})
		if err != nil {
			return err
		}
		nHost := num.MustIPow(2, h) + k

		// One transition = an atomic 4-fault burst plus its repair, the
		// recurring-rack shape that exercises both the snapshot Apply and
		// the mapping cache. Warm up once so steady-state allocations are
		// measured (cache hits, not first-time mapping computation).
		fault := []fleet.Event{{Kind: fleet.EventFault, Node: 0}, {Kind: fleet.EventFault, Node: 1},
			{Kind: fleet.EventFault, Node: 2}, {Kind: fleet.EventFault, Node: 3}}
		repair := []fleet.Event{{Kind: fleet.EventRepair, Node: 0}, {Kind: fleet.EventRepair, Node: 1},
			{Kind: fleet.EventRepair, Node: 2}, {Kind: fleet.EventRepair, Node: 3}}
		applyPair := func() error {
			if _, err := in.ApplyBatch(fault); err != nil {
				return err
			}
			_, err := in.ApplyBatch(repair)
			return err
		}
		if err := applyPair(); err != nil {
			return err
		}
		applyAllocs := allocsPerRun(50, func() {
			if err := applyPair(); err != nil {
				panic(err)
			}
		}) / 2 // per transition, not per pair
		const applyIters = 1000
		t0 := time.Now()
		for i := 0; i < applyIters; i++ {
			if err := applyPair(); err != nil {
				return err
			}
		}
		applyNs := float64(time.Since(t0).Nanoseconds()) / (2 * applyIters)

		nTarget := num.MustIPow(2, h)
		lookupAllocs := allocsPerRun(100, func() {
			if _, err := in.Lookup(nTarget - 1); err != nil {
				panic(err)
			}
		})
		const lookupIters = 200000
		t0 = time.Now()
		for i := 0; i < lookupIters; i++ {
			if _, err := in.Lookup(i & (nTarget - 1)); err != nil {
				return err
			}
		}
		lookupNs := float64(time.Since(t0).Nanoseconds()) / lookupIters

		// The dense representation's per-transition floor: rebuilding the
		// O(nHost) healthy array, exactly what NewMapping did before the
		// compact rewrite.
		faults := in.Snapshot().Faults()
		const denseIters = 5
		t0 = time.Now()
		for i := 0; i < denseIters; i++ {
			if got := num.Complement(faults, nHost); len(got) != nHost-len(faults) {
				return fmt.Errorf("dense rebuild sized %d", len(got))
			}
		}
		denseNs := float64(time.Since(t0).Nanoseconds()) / denseIters

		rows = append(rows, row{h, nHost, applyNs, applyAllocs, lookupNs, lookupAllocs, denseNs})
	}

	fmt.Fprintf(w, "compact rank-based mappings at scale (k = %d, 4-event bursts, steady state)\n", k)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tnHost\tapply ns/op\tapply allocs/op\tlookup ns/op\tlookup allocs/op\tdense rebuild ns (old)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.1f\t%.1f\t%.1f\t%.0f\n",
			r.h, r.nHost, r.applyNs, r.applyAllocs, r.lookupNs, r.lookupAlloc, r.denseNs)
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	// Same flatness rule as TestApplyAllocsIndependentOfN and the CI
	// gate (ftbenchjson -check): one object of headroom for counter
	// jitter, none for an O(n) dependence.
	small, large := rows[0], rows[len(rows)-1]
	if large.applyAllocs > small.applyAllocs+1 {
		return fmt.Errorf("apply allocations scale with nHost: %.1f at 2^%d vs %.1f at 2^%d",
			large.applyAllocs, large.h, small.applyAllocs, small.h)
	}
	if large.lookupAlloc > 0.5 {
		return fmt.Errorf("lookup allocates (%.1f/op) at 2^%d", large.lookupAlloc, large.h)
	}
	fmt.Fprintf(w, "invariant checked: apply allocs flat in nHost (%.1f at 2^%d vs %.1f at 2^%d), lookups allocation-free;\n",
		small.applyAllocs, small.h, large.applyAllocs, large.h)
	fmt.Fprintf(w, "the dense column is what every transition used to cost before snapshots went O(k)\n")
	return nil
}
