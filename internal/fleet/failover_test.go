package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/journal"
)

// rebootManager boots a manager over a pre-existing journal image —
// the deposed leader restarting on its own data directory.
func rebootManager(t *testing.T, data []byte, dir string) *Manager {
	t.Helper()
	path := filepath.Join(dir, "epochs.wal")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m := NewManager(Options{})
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatalf("reboot recovery: %v", err)
	}
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(w)
	t.Cleanup(func() { m.Close() })
	return m
}

// journalImage syncs a live manager's journal and returns its bytes.
func journalImage(t *testing.T, m *Manager) []byte {
	t.Helper()
	w := m.CommitLog().Writer()
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(w.Path())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// toggleStorm commits 2n guaranteed-accepted transitions by toggling
// one node of a dedicated instance — random storms saturate the fault
// budget and stop committing, but fault-then-repair pairs always
// advance the log, which is what materializing divergence needs.
func toggleStorm(t *testing.T, m *Manager, id string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := m.Event(id, Event{Kind: EventFault, Node: 0}); err != nil {
			t.Fatalf("toggle fault %d: %v", i, err)
		}
		if _, err := m.Event(id, Event{Kind: EventRepair, Node: 0}); err != nil {
			t.Fatalf("toggle repair %d: %v", i, err)
		}
	}
}

func awaitDemotions(t *testing.T, f *Follower, want uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for f.Stats().Demotions < want {
		if time.Now().After(deadline) {
			t.Fatalf("follower demoted %d times, want %d, within %v", f.Stats().Demotions, want, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPromoteFailoverAndDeposedLeaderSelfHeals is the in-process
// partition-torture sequence: a follower is cut off mid-storm, the
// leader keeps acknowledging writes (divergence), dies, the follower
// is promoted over POST /v1/promote, and the deposed leader — rebooted
// from its own journal, following the new leader — must detect the
// higher term, discard its unreplicated tail, resync bit-identically,
// and refuse every direct write.
func TestPromoteFailoverAndDeposedLeaderSelfHeals(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	ts := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(ts.Close)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 4}
	_, nHost := TargetHostSizesSpec(spec)
	// "div" stays out of the random storms so its toggle writes are
	// always accepted — the divergence generator.
	ids := []string{"a", "b", "c", "div"}
	stormIDs := ids[:3]
	acked := make(map[string]*atomic.Uint64)
	for _, id := range ids {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		acked[id] = new(atomic.Uint64)
	}
	stormLeader(leader, stormIDs, nHost, 4, 20, acked)

	// The follower, with its own HTTP surface so promotion travels the
	// real route.
	fm := journaledManager(t, t.TempDir())
	f, err := NewFollower(fm, ts.URL, FollowerOptions{
		Heartbeat:    50 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		Backoff:      20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	fdone := make(chan struct{})
	go func() { defer close(fdone); f.Run(fctx) }()
	tsB := httptest.NewServer(NewHTTPHandlerOpts(fm, HandlerOptions{ReadOnly: true, Follower: f}))
	t.Cleanup(tsB.Close)
	waitConverged(t, leader, fm, 15*time.Second)

	// Partition: the follower's stream is cut; the leader keeps
	// acknowledging writes no replica sees.
	fcancel()
	<-fdone
	stormLeader(leader, stormIDs, nHost, 4, 20, acked)
	toggleStorm(t, leader, "div", 20)
	divergedSeq := leader.CommitLog().LastSeq()
	if divergedSeq <= fm.CommitLog().LastSeq() {
		t.Fatalf("no divergence materialized: leader at %d, follower at %d",
			divergedSeq, fm.CommitLog().LastSeq())
	}

	// Kill the leader, keeping its disk image for the rejoin.
	image := journalImage(t, leader)
	ts.Close()
	leader.Close()

	// Failover: promote the follower through the API.
	resp, err := http.Post(tsB.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Term == 0 || pr.WasLeader {
		t.Fatalf("promote: status %d, response %+v", resp.StatusCode, pr)
	}
	if fm.ReadOnly() {
		t.Fatal("promoted replica still read-only")
	}
	if term, _ := fm.Term(); term != pr.Term {
		t.Fatalf("manager term %d, promote reported %d", term, pr.Term)
	}
	// Promotion is idempotent: a second request reports the term in
	// force instead of bumping again.
	resp, err = http.Post(tsB.URL+"/v1/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr2 PromoteResponse
	json.NewDecoder(resp.Body).Decode(&pr2)
	resp.Body.Close()
	if !pr2.WasLeader || pr2.Term != pr.Term {
		t.Fatalf("second promote: %+v, want WasLeader at term %d", pr2, pr.Term)
	}

	// The new leader moves on past the failover.
	stormLeader(fm, stormIDs, nHost, 4, 20, acked)
	toggleStorm(t, fm, "div", 10)

	// Rejoin: the deposed leader reboots from its own journal — its
	// recovered tail includes entries the new leader never saw — and
	// follows the new leader.
	dm := rebootManager(t, image, t.TempDir())
	if dm.CommitLog().LastSeq() != divergedSeq {
		t.Fatalf("deposed leader recovered to seq %d, want %d", dm.CommitLog().LastSeq(), divergedSeq)
	}
	f2 := startFollower(t, dm, tsB.URL)
	awaitDemotions(t, f2, 1, 15*time.Second)
	waitConverged(t, fm, dm, 15*time.Second)
	assertSameFleet(t, fm, dm)
	st := f2.Stats()
	if st.Demotions != 1 {
		t.Errorf("demotions = %d, want exactly 1", st.Demotions)
	}
	if st.Discarded == 0 {
		t.Error("the deposed leader's unreplicated tail was not counted as discarded")
	}
	if term, _ := dm.Term(); term != pr.Term {
		t.Errorf("rejoined replica at term %d, leader at %d", term, pr.Term)
	}

	// Fencing: the deposed leader must refuse direct writes.
	if _, err := dm.EventBatch(ids[0], []Event{{Kind: EventFault, Node: 0}}); !errors.Is(err, ErrReadOnly) {
		t.Errorf("stale-term write on the deposed leader: err = %v, want ErrReadOnly", err)
	}
	if !dm.ReadOnly() {
		t.Error("deposed leader left read-only posture")
	}
}

// TestDeposedLeaderResyncsFromCheckpointAfterTermBump is the
// compaction × failover interaction: the new leader compacts after its
// promotion, so the rejoining deposed leader cannot replay history —
// it must resync from a checkpoint whose seq-base record carries the
// new term. The result must be bit-identical to the promoted leader
// (assertSameFleet re-verifies every phi slice against a fresh
// recomputation), and a restart of the rejoined replica must recover
// the new term from its own journal without spuriously re-demoting.
func TestDeposedLeaderResyncsFromCheckpointAfterTermBump(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	ts := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(ts.Close)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 3}
	_, nHost := TargetHostSizesSpec(spec)
	ids := []string{"a", "b", "div"}
	stormIDs := ids[:2]
	acked := make(map[string]*atomic.Uint64)
	for _, id := range ids {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		acked[id] = new(atomic.Uint64)
	}
	stormLeader(leader, stormIDs, nHost, 2, 20, acked)

	fm := journaledManager(t, t.TempDir())
	f, err := NewFollower(fm, ts.URL, FollowerOptions{
		Heartbeat:    50 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		Backoff:      20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	fctx, fcancel := context.WithCancel(context.Background())
	defer fcancel()
	fdone := make(chan struct{})
	go func() { defer close(fdone); f.Run(fctx) }()
	tsB := httptest.NewServer(NewHTTPHandlerOpts(fm, HandlerOptions{ReadOnly: true, Follower: f}))
	t.Cleanup(tsB.Close)
	waitConverged(t, leader, fm, 15*time.Second)

	// Partition, diverge, kill.
	fcancel()
	<-fdone
	toggleStorm(t, leader, "div", 20)
	image := journalImage(t, leader)
	ts.Close()
	leader.Close()

	// Promote, write past the bump, then compact: the checkpoint's
	// seq-base record is now the only carrier of the term across a
	// fresh catch-up.
	term, err := f.Promote(context.Background())
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	toggleStorm(t, fm, "div", 10)
	if _, err := fm.Compact(); err != nil {
		t.Fatal(err)
	}
	toggleStorm(t, fm, "div", 3) // a short post-compaction suffix

	// The deposed leader rejoins past the compaction horizon.
	dm := rebootManager(t, image, t.TempDir())
	f2 := startFollower(t, dm, tsB.URL)
	awaitDemotions(t, f2, 1, 15*time.Second)
	waitConverged(t, fm, dm, 15*time.Second)
	assertSameFleet(t, fm, dm)
	st := f2.Stats()
	if st.Demotions != 1 || st.Resyncs == 0 {
		t.Errorf("stats %+v: want 1 demotion and >= 1 resync (checkpoint catch-up)", st)
	}
	if got, _ := dm.Term(); got != term {
		t.Errorf("rejoined replica at term %d, want %d", got, term)
	}

	// A restart of the rejoined replica recovers the adopted term from
	// its own journal: the chain check passes and no re-demotion would
	// trigger (its term matches the leader's).
	image2 := journalImage(t, dm)
	dm2 := rebootManager(t, image2, t.TempDir())
	if got, _ := dm2.Term(); got != term {
		t.Errorf("restarted replica recovered term %d, want %d", got, term)
	}
	assertSameFleet(t, fm, dm2)
}

// TestReconnectJitterBounds pins the reconnect backoff's jitter range:
// [d/2, 3d/2) — enough spread that a fleet of followers losing one
// leader does not reconnect in lockstep, never less than half the
// ladder value.
func TestReconnectJitterBounds(t *testing.T) {
	d := 100 * time.Millisecond
	for i := 0; i < 1000; i++ {
		j := jitter(d)
		if j < d/2 || j >= d+d/2 {
			t.Fatalf("jitter(%v) = %v outside [%v, %v)", d, j, d/2, d+d/2)
		}
	}
}

// TestManagerPromoteAndTermFence pins the manager-level contract:
// read-only posture refuses mutations with ErrReadOnly (carrying the
// leader hint), Promote opens the write path and fences the term, and
// a bump that does not move the term forward fails with ErrStaleTerm.
func TestManagerPromoteAndTermFence(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	if _, err := m.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}

	m.SetReadOnly(true)
	m.SetLeaderHint("http://leader:8080")
	if _, err := m.Create("b", Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("create in read-only posture: %v, want ErrReadOnly", err)
	}
	_, err := m.EventBatch("a", []Event{{Kind: EventFault, Node: 1}})
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("event batch in read-only posture: %v, want ErrReadOnly", err)
	}
	if !strings.Contains(fmt.Sprint(err), "http://leader:8080") {
		t.Errorf("rejection %q does not carry the leader hint", err)
	}

	term, err := m.Promote(0)
	if err != nil || term != 1 {
		t.Fatalf("Promote(0) = %d, %v, want term 1", term, err)
	}
	if m.ReadOnly() {
		t.Fatal("promotion left read-only posture in place")
	}
	if _, err := m.EventBatch("a", []Event{{Kind: EventFault, Node: 1}}); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}

	// The fence: terms only move forward.
	if _, err := m.Promote(1); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("Promote(1) at term 1: %v, want ErrStaleTerm", err)
	}
	if term, err = m.Promote(5); err != nil || term != 5 {
		t.Fatalf("Promote(5) = %d, %v", term, err)
	}
	if got, _ := m.Term(); got != 5 {
		t.Fatalf("Term() = %d, want 5", got)
	}
	// The failed bump consumed no sequence number and the stats surface
	// reports the fence.
	st := m.Stats()
	if st.Commit.Term != 5 {
		t.Errorf("stats term %d, want 5", st.Commit.Term)
	}
}
