package graph

import (
	"errors"
	"sort"
)

// ErrBudget is returned by FindEmbedding when the search exceeded its
// step budget without either finding an embedding or proving none
// exists.
var ErrBudget = errors.New("graph: embedding search budget exhausted")

// ErrNoEmbedding is returned when the search space was exhausted and no
// embedding exists.
var ErrNoEmbedding = errors.New("graph: no embedding exists")

// EmbedOptions tunes FindEmbedding.
type EmbedOptions struct {
	// Seed optionally fixes phi for some pattern nodes before the search
	// begins: Seed[u] = host node, or -1 for unassigned. len(Seed) must
	// be 0 or pattern.N().
	Seed []int
	// Budget bounds the number of search steps (candidate extensions).
	// 0 means a generous default.
	Budget int
}

// FindEmbedding searches for an embedding of pattern into host: a 1-to-1
// map phi with every pattern edge landing on a host edge (ordinary
// subgraph embedding, not induced). It returns the mapping, ErrNoEmbedding
// when provably none exists, or ErrBudget when the step budget ran out.
//
// The search is a VF2-style backtracking with degree pruning and
// connectivity-guided variable ordering. It is intended for the small
// and mid-size instances that arise in this repository (shuffle-exchange
// into de Bruijn for practical h, figure-size verification).
func FindEmbedding(pattern, host *Graph, opts EmbedOptions) ([]int, error) {
	if pattern.N() > host.N() {
		return nil, ErrNoEmbedding
	}
	budget := opts.Budget
	if budget == 0 {
		budget = 50_000_000
	}
	s := &embedState{
		pattern: pattern,
		host:    host,
		phi:     make([]int, pattern.N()),
		used:    make([]bool, host.N()),
		budget:  budget,
	}
	for i := range s.phi {
		s.phi[i] = -1
	}
	if len(opts.Seed) > 0 {
		if len(opts.Seed) != pattern.N() {
			return nil, errors.New("graph: seed length must equal pattern size")
		}
		for u, img := range opts.Seed {
			if img < 0 {
				continue
			}
			if img >= host.N() || s.used[img] {
				return nil, ErrNoEmbedding
			}
			s.phi[u] = img
			s.used[img] = true
		}
		// Validate the seed is internally consistent.
		for u, img := range s.phi {
			if img < 0 {
				continue
			}
			for _, v := range pattern.Neighbors(u) {
				if s.phi[v] >= 0 && !host.HasEdge(img, s.phi[v]) {
					return nil, ErrNoEmbedding
				}
			}
		}
	}
	s.order = embedOrder(pattern, s.phi)
	if s.search(0) {
		return s.phi, nil
	}
	if s.budget <= 0 {
		return nil, ErrBudget
	}
	return nil, ErrNoEmbedding
}

type embedState struct {
	pattern, host *Graph
	phi           []int
	used          []bool
	order         []int
	budget        int
}

// embedOrder returns the unassigned pattern nodes in a
// connectivity-first order: repeatedly pick the unplaced node with the
// most already-placed neighbors, tie-broken by higher degree. This keeps
// the frontier connected so candidate sets stay small.
func embedOrder(pattern *Graph, phi []int) []int {
	n := pattern.N()
	placed := make([]bool, n)
	for u, img := range phi {
		if img >= 0 {
			placed[u] = true
		}
	}
	var order []int
	for {
		best, bestScore := -1, -1
		for u := 0; u < n; u++ {
			if placed[u] {
				continue
			}
			score := 0
			for _, v := range pattern.Neighbors(u) {
				if placed[v] {
					score += n // placed neighbors dominate
				}
			}
			score += pattern.Degree(u)
			if score > bestScore {
				best, bestScore = u, score
			}
		}
		if best == -1 {
			return order
		}
		order = append(order, best)
		placed[best] = true
	}
}

func (s *embedState) search(depth int) bool {
	if depth == len(s.order) {
		return true
	}
	u := s.order[depth]
	for _, cand := range s.candidates(u) {
		if s.budget <= 0 {
			return false
		}
		s.budget--
		if !s.feasible(u, cand) {
			continue
		}
		s.phi[u] = cand
		s.used[cand] = true
		if s.search(depth + 1) {
			return true
		}
		s.phi[u] = -1
		s.used[cand] = false
	}
	return false
}

// candidates returns plausible host nodes for pattern node u: if u has a
// placed neighbor, only host neighbors of that neighbor's image need be
// tried; otherwise every unused host node.
func (s *embedState) candidates(u int) []int {
	var anchor = -1
	for _, v := range s.pattern.Neighbors(u) {
		if s.phi[v] >= 0 {
			anchor = s.phi[v]
			break
		}
	}
	if anchor >= 0 {
		nbrs := s.host.Neighbors(anchor)
		out := make([]int, 0, len(nbrs))
		for _, c := range nbrs {
			if !s.used[c] {
				out = append(out, c)
			}
		}
		return out
	}
	out := make([]int, 0, s.host.N())
	for c := 0; c < s.host.N(); c++ {
		if !s.used[c] {
			out = append(out, c)
		}
	}
	// Prefer higher-degree hosts for unanchored nodes: fail fast.
	sort.Slice(out, func(i, j int) bool {
		return s.host.Degree(out[i]) > s.host.Degree(out[j])
	})
	return out
}

func (s *embedState) feasible(u, cand int) bool {
	if s.host.Degree(cand) < s.pattern.Degree(u) {
		return false
	}
	for _, v := range s.pattern.Neighbors(u) {
		if img := s.phi[v]; img >= 0 && !s.host.HasEdge(cand, img) {
			return false
		}
	}
	return true
}

// IdentityEmbedding returns [0,1,...,n-1], the identity map, useful when
// pattern is a subgraph of host under the same labeling.
func IdentityEmbedding(n int) []int {
	phi := make([]int, n)
	for i := range phi {
		phi[i] = i
	}
	return phi
}
