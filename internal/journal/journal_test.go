package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

// sampleRecords is a representative log: create, single-event and
// batch transitions (growing and shrinking fault sets), a delete, and
// an id reuse.
func sampleRecords() []Record {
	return []Record{
		{Op: OpCreate, ID: "prod", Spec: Spec{Kind: "debruijn", M: 2, H: 4, K: 3}},
		{Op: OpTransition, ID: "prod", Epoch: 1, Applied: 1, Faults: []int{3}},
		{Op: OpTransition, ID: "prod", Epoch: 2, Applied: 2, Faults: []int{3, 7}},
		{Op: OpCreate, ID: "se", Spec: Spec{Kind: "shuffle", H: 4, K: 2}},
		{Op: OpTransition, ID: "se", Epoch: 1, Applied: 1, Faults: []int{0}},
		{Op: OpTransition, ID: "prod", Epoch: 3, Applied: 1, Faults: []int{7}},
		{Op: OpDelete, ID: "se"},
		{Op: OpCreate, ID: "se", Spec: Spec{Kind: "shuffle", H: 4, K: 1}},
		{Op: OpTransition, ID: "prod", Epoch: 4, Applied: 3, Faults: []int{1, 7, 11}},
		{Op: OpTransition, ID: "prod", Epoch: 5, Applied: 3, Faults: nil},
	}
}

// compactionRecords is the head of a compacted log: the seq-base
// marker (carrying the leadership term in force) and full-state
// checkpoints (any epoch, including 0), plus a term bump as a promoted
// replica would fence its first write with.
func compactionRecords() []Record {
	return []Record{
		{Op: OpSeqBase, ID: SeqBaseID, Seq: 42},
		{Op: OpSeqBase, ID: SeqBaseID, Seq: 7, Term: 3},
		{Op: OpCheckpoint, ID: "prod", Spec: Spec{Kind: "debruijn", M: 2, H: 4, K: 3}, Epoch: 17, Faults: []int{3, 11}},
		{Op: OpCheckpoint, ID: "fresh", Spec: Spec{Kind: "shuffle", H: 4, K: 2}, Epoch: 0, Faults: nil},
		{Op: OpTermBump, ID: SeqBaseID, Term: 1},
		{Op: OpTermBump, ID: SeqBaseID, Term: 1 << 40},
	}
}

// encodeLog frames the records through a Writer into a buffer.
func encodeLog(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{Sync: SyncAlways}) // a buffer can't fsync; Always still flushes per record
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatalf("Append(%+v): %v", rec, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range append(sampleRecords(), compactionRecords()...) {
		payload, err := AppendRecord(nil, rec)
		if err != nil {
			t.Fatalf("encode %+v: %v", rec, err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("decode %+v: %v", rec, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("round trip %+v -> %+v", rec, got)
		}
		// Canonicality: re-encoding the decoded record reproduces the
		// bytes exactly.
		again, err := AppendRecord(nil, got)
		if err != nil || !bytes.Equal(again, payload) {
			t.Errorf("re-encode of %+v not canonical (err %v)", rec, err)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	bad := []Record{
		{Op: OpCreate, ID: ""},
		{Op: Op(99), ID: "x"},
		{Op: OpTransition, ID: "x", Epoch: 0, Applied: 1},
		{Op: OpTransition, ID: "x", Epoch: 1, Applied: 0},
		{Op: OpTransition, ID: "x", Epoch: 1, Applied: 1, Faults: []int{4, 4}},
		{Op: OpTransition, ID: "x", Epoch: 1, Applied: 1, Faults: []int{5, 2}},
		{Op: OpTransition, ID: "x", Epoch: 1, Applied: 1, Faults: []int{-1}},
		{Op: OpCreate, ID: "x", Spec: Spec{M: -1}},
		{Op: OpSeqBase, ID: SeqBaseID, Seq: 0},
		{Op: OpTermBump, ID: SeqBaseID, Term: 0},
		{Op: OpCheckpoint, ID: "x", Spec: Spec{H: -1}},
		{Op: OpCheckpoint, ID: "x", Faults: []int{9, 2}},
	}
	for _, rec := range bad {
		if _, err := AppendRecord(nil, rec); err == nil {
			t.Errorf("AppendRecord(%+v) accepted invalid record", rec)
		}
	}
}

func TestWriterReaderLog(t *testing.T) {
	recs := sampleRecords()
	raw := encodeLog(t, recs)
	got, off, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if off != int64(len(raw)) {
		t.Errorf("offset %d, want %d", off, len(raw))
	}
	if !reflect.DeepEqual(got, recs) {
		t.Errorf("read back %d records, want %d:\n got %+v\nwant %+v", len(got), len(recs), got, recs)
	}
}

func TestWriterFilePersistsAndAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")
	recs := sampleRecords()

	w, err := Create(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[:5] {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: with SyncAlways every acknowledged record is
	// already on disk, so the file must be complete WITHOUT Close.
	got, _, err := ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:5]) {
		t.Fatalf("pre-close read = %+v, want %+v", got, recs[:5])
	}
	if st := w.Stats(); st.Records != 5 || st.Syncs == 0 || st.LastEpoch != 1 {
		t.Errorf("stats %+v: want 5 records, >0 syncs, last epoch 1", st)
	}
	w.Close()

	// Reopen in append mode; the log grows, it is not rewritten.
	w2, err := Create(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs[5:] {
		if err := w2.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err = ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("after reopen read %d records, want %d", len(got), len(recs))
	}
	if err := w2.Append(recs[0]); err != ErrClosed {
		t.Errorf("append after close = %v, want ErrClosed", err)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestSyncPolicies pins the durability point of each policy against a
// file: SyncAlways is durable per append, SyncInterval within an
// interval, SyncNever only at Close.
func TestSyncPolicies(t *testing.T) {
	rec := Record{Op: OpDelete, ID: "x"}

	t.Run("never", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		w, _ := Create(path, Options{Sync: SyncNever})
		w.Append(rec)
		if got, _, _ := ReadAll(mustOpen(t, path)); len(got) != 0 {
			t.Errorf("SyncNever flushed %d records before Close", len(got))
		}
		w.Close()
		if got, _, _ := ReadAll(mustOpen(t, path)); len(got) != 1 {
			t.Errorf("after Close: %d records, want 1", len(got))
		}
	})

	t.Run("interval", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j")
		w, _ := Create(path, Options{Sync: SyncInterval, Interval: 5 * time.Millisecond})
		defer w.Close()
		w.Append(rec)
		deadline := time.Now().Add(2 * time.Second)
		for {
			if got, _, _ := ReadAll(mustOpen(t, path)); len(got) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("interval sync never flushed the record")
			}
			time.Sleep(2 * time.Millisecond)
		}
	})
}

// TestGroupCommit storms one SyncAlways writer from many goroutines:
// every append must come back durable, and group commit must batch the
// fsyncs (strictly fewer syncs than records under contention is the
// whole point; equality would mean one fsync per record).
func TestGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	w, err := Create(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := Record{Op: OpTransition, ID: "x", Epoch: uint64(g*perWriter + i + 1), Applied: 1}
				if err := w.Append(rec); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Records != writers*perWriter {
		t.Fatalf("records %d, want %d", st.Records, writers*perWriter)
	}
	got, _, err := ReadAll(mustOpen(t, path))
	if err != nil || len(got) != writers*perWriter {
		t.Fatalf("read back %d records (err %v), want %d", len(got), err, writers*perWriter)
	}
	t.Logf("group commit: %d records in %d fsyncs", st.Records, st.Syncs)
}
