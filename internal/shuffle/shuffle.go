// Package shuffle constructs point-to-point shuffle-exchange networks
// SE_h and their relationship to de Bruijn graphs, which the paper's
// fault-tolerant shuffle-exchange construction relies on.
//
// SE_h has 2^h nodes labeled with h-bit numbers. Node x is connected to
//
//   - x XOR 1 (the "exchange" edge), and
//   - the cyclic left/right rotations of x (the "shuffle" edges);
//     rotation self-loops (on 00..0 and 11..1) are dropped.
//
// The graph has degree at most 3.
package shuffle

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Params identifies a shuffle-exchange network SE_h.
type Params struct {
	H int // number of bits, >= 1
}

// Validate reports whether the parameters are constructible.
func (p Params) Validate() error {
	if p.H < 1 {
		return fmt.Errorf("shuffle: bits h=%d must be >= 1", p.H)
	}
	if _, err := num.IPow(2, p.H); err != nil {
		return fmt.Errorf("shuffle: graph too large: %v", err)
	}
	return nil
}

// N returns the node count 2^h.
func (p Params) N() int { return num.MustIPow(2, p.H) }

// String returns conventional notation for the network.
func (p Params) String() string { return fmt.Sprintf("SE_%d", p.H) }

// New builds SE_h.
func New(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		b.AddEdge(x, x^1)                    // exchange
		b.AddEdge(x, num.RotLeft(x, 2, p.H)) // shuffle (self-loops dropped)
	}
	return b.Build(), nil
}

// MustNew is New that panics on error.
func MustNew(p Params) *graph.Graph {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// IsExchangeEdge reports whether (x, y) is an exchange edge of SE_h.
func IsExchangeEdge(x, y int) bool { return x^y == 1 }

// IsShuffleEdge reports whether (x, y) is a shuffle edge of SE_h.
func IsShuffleEdge(x, y int, h int) bool {
	return x != y && (num.RotLeft(x, 2, h) == y || num.RotLeft(y, 2, h) == x)
}

// Necklace is an equivalence class of nodes under cyclic rotation,
// listed in rotation order starting from the smallest member. The
// shuffle edges of SE_h are exactly the cycles traced by necklaces
// (degenerate 1-element necklaces contribute no edges).
type Necklace struct {
	Rep   int   // canonical (smallest) member
	Nodes []int // rotation orbit: Nodes[i+1] = RotLeft(Nodes[i])
}

// Necklaces returns all necklaces of h-bit numbers, ordered by
// representative.
func Necklaces(h int) []Necklace {
	n := num.MustIPow(2, h)
	seen := make([]bool, n)
	var out []Necklace
	for x := 0; x < n; x++ {
		if seen[x] {
			continue
		}
		nk := Necklace{Rep: x}
		y := x
		for !seen[y] {
			seen[y] = true
			nk.Nodes = append(nk.Nodes, y)
			y = num.RotLeft(y, 2, h)
		}
		out = append(out, nk)
	}
	return out
}

// ApplyLabels sets binary string labels on an SE graph.
func ApplyLabels(g *graph.Graph, p Params) {
	for x := 0; x < g.N(); x++ {
		s := ""
		for i := p.H - 1; i >= 0; i-- {
			s += fmt.Sprintf("%d", (x>>i)&1)
		}
		g.SetLabel(x, s)
	}
}
