package loadgen

import (
	"net/http/httptest"
	"path/filepath"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/journal"
)

// TestRunRestartInProcess exercises the restart scenario without a
// child process: the "daemon" is an httptest server over a journaled
// manager, the kill abandons the manager and its writer without
// closing anything (with SyncAlways every acknowledged record is
// already on disk — exactly the SIGKILL contract), and the restart
// boots a fresh manager from the same journal file.
func TestRunRestartInProcess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "epochs.wal")

	var srv *httptest.Server
	boot := func() (string, error) {
		mgr := fleet.NewManager(fleet.Options{})
		if _, err := mgr.RecoverFile(path); err != nil {
			return "", err
		}
		jw, err := journal.Create(path, journal.Options{Sync: journal.SyncAlways})
		if err != nil {
			return "", err
		}
		mgr.SetJournal(jw)
		srv = httptest.NewServer(fleet.NewHTTPHandler(mgr))
		return srv.URL, nil
	}
	addr, err := boot()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	res, err := RunRestart(RestartConfig{
		Config: Config{
			Addr:      addr,
			Instances: 3,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
			Workers:   4,
			Requests:  400,
			Scenario:  Scenario{Batch: 4},
			Seed:      7,
		},
		Kill: func() error {
			srv.Close() // in-flight handlers drain; the journal writer is simply abandoned
			return nil
		},
		Start: boot,
	})
	if err != nil {
		t.Fatalf("RunRestart: %v (acked %v, recovered %v)", err, res.Acked, res.Recovered)
	}
	if res.Verified != 3 {
		t.Errorf("verified %d/3 instances", res.Verified)
	}
	if res.Storm.Batches == 0 {
		t.Error("storm acknowledged no transitions before the kill")
	}
	anyAcked := false
	for id, e := range res.Acked {
		if e > 0 {
			anyAcked = true
		}
		if res.Recovered[id] < e {
			t.Errorf("%s: recovered epoch %d below acked %d", id, res.Recovered[id], e)
		}
	}
	if !anyAcked {
		t.Error("no instance acknowledged an epoch before the kill")
	}
}

// TestRunRestartNeedsHooks pins the configuration contract.
func TestRunRestartNeedsHooks(t *testing.T) {
	if _, err := RunRestart(RestartConfig{}); err == nil {
		t.Error("RunRestart accepted a config without Kill/Start hooks")
	}
}
