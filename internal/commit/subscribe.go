package commit

import "sync"

// Sub is one bounded, gap-free subscription to the commit log. Read
// entries from C; when C closes, Err reports why: nil after Close (the
// consumer's own unsubscribe), ErrClosed when the log shut down, or
// ErrSlowSubscriber when the consumer stopped draining its buffer (in
// which case it should resubscribe from its last seen seq).
//
// Entries arrive in non-decreasing seq order. Ordinary entries step by
// exactly +1; an entry whose seq jumps past the expected one signals
// that compaction dropped the gap — the stream (re)starts from a
// checkpoint and the consumer must treat it as a state reset.
type Sub struct {
	C <-chan Entry

	l    *Log
	ch   chan Entry
	done chan struct{} // closed by Close; unblocks the catch-up pump

	min uint64 // requested fromSeq; live delivery never goes below it

	// Guarded by l.mu.
	live     bool // registered for direct delivery from the commit path
	closed   bool
	err      error
	next     uint64 // pump cursor; owned by the pump goroutine until live
	stopPump sync.Once
}

// Subscribe returns a subscription that first replays every flushed
// entry with seq >= fromSeq — from the in-memory tail, the installed
// checkpoint, or the journal file — and then follows the live commit
// stream, with no gap between the two. fromSeq 0 is treated as 1
// ("from the beginning"); a fromSeq past the log end is ErrFutureSeq.
// buf bounds the delivery buffer (<= 0 selects 256): a live subscriber
// that lags more than buf entries is closed with ErrSlowSubscriber.
//
// When fromSeq predates what the log can still serve gap-free (it was
// compacted away, or fell out of a memory-only log's history), the
// stream instead begins at the oldest available point — checkpoint
// entries or a later first seq — which the consumer detects as a seq
// jump and handles as a reset.
func (l *Log) Subscribe(fromSeq uint64, buf int) (*Sub, error) {
	if fromSeq == 0 {
		fromSeq = 1
	}
	if buf <= 0 {
		buf = 256
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if fromSeq > l.lastSeq+1 {
		return nil, ErrFutureSeq
	}
	s := &Sub{
		l:    l,
		ch:   make(chan Entry, buf),
		done: make(chan struct{}),
		next: fromSeq,
		min:  fromSeq,
	}
	s.C = s.ch
	go s.pump()
	return s, nil
}

// Close unsubscribes. It is safe to call at any time and more than
// once; C is closed and any buffered entries may be discarded.
func (s *Sub) Close() {
	s.l.mu.Lock()
	s.closeLocked(nil)
	s.l.mu.Unlock()
}

// Err reports why C closed (nil until then, and nil after the
// consumer's own Close).
func (s *Sub) Err() error {
	s.l.mu.Lock()
	defer s.l.mu.Unlock()
	return s.err
}

// closeLocked tears the subscription down; caller holds l.mu.
func (s *Sub) closeLocked(err error) {
	if s.closed {
		return
	}
	s.closed = true
	s.err = err
	delete(s.l.subs, s)
	s.stopPump.Do(func() { close(s.done) })
	if s.live {
		// The pump has exited; this side owns the channel now.
		close(s.ch)
	}
}

// pushLocked delivers one live entry; caller holds l.mu. The send is
// non-blocking: a full buffer means the consumer fell behind, and the
// subscription is closed with ErrSlowSubscriber instead of stalling
// the commit path or skipping entries.
func (s *Sub) pushLocked(e Entry) {
	if e.Seq < s.min {
		// A subscription opened past the flush frontier must not see
		// the older entries that flush after it registers.
		return
	}
	select {
	case s.ch <- e:
	default:
		s.l.overflows++
		s.closeLocked(ErrSlowSubscriber)
	}
}

// send delivers one catch-up entry from the pump, blocking until the
// consumer takes it or the subscription/log winds down.
func (s *Sub) send(e Entry) bool {
	select {
	case s.ch <- e:
		return true
	case <-s.done:
		return false
	case <-s.l.done:
		return false
	}
}

// pump replays the catch-up range and then registers the subscription
// for live delivery, atomically with respect to the commit path: the
// handoff happens under l.mu only when the cursor has reached the
// flush frontier, so no entry is missed and none is delivered twice.
func (s *Sub) pump() {
	l := s.l
	for {
		l.mu.Lock()
		if l.closed || s.closed {
			err := l.failed
			if err == nil {
				err = ErrClosed
			}
			if s.closed {
				err = s.err
			}
			s.finishPumpLocked(err)
			l.mu.Unlock()
			return
		}
		hb := l.histBaseLocked()
		switch {
		case s.next > l.flushed:
			// Caught up: go live.
			s.live = true
			l.subs[s] = struct{}{}
			l.mu.Unlock()
			return
		case s.next >= hb:
			// Within the in-memory tail: copy a chunk and stream it.
			chunk := append([]Entry(nil), l.hist[s.next-hb:]...)
			l.mu.Unlock()
			for _, e := range chunk {
				if !s.send(e) {
					s.exitPump()
					return
				}
			}
			s.next = chunk[len(chunk)-1].Seq + 1
		default:
			// Older than the tail: the journal file, the installed
			// checkpoint, or — when neither can serve it — a reset jump
			// to the oldest available seq.
			path, w := l.path, l.w
			cp, cpSeq := l.cp, l.cpSeq
			limit := l.flushed
			l.mu.Unlock()
			switch {
			case path != "":
				if w != nil {
					w.Flush() // make buffered frames visible to the scan
				}
				reached, err := scanFile(path, s.next, limit, s.send)
				if err != nil || reached <= s.next {
					// Unreadable or raced past by compaction: fall back
					// to the oldest in-memory point. The consumer sees
					// the seq jump and resets.
					s.next = hb
				} else {
					s.next = reached
				}
			case len(cp) > 0 && s.next <= cpSeq:
				for _, rec := range cp {
					if !s.send(Entry{Seq: cpSeq, Rec: rec}) {
						s.exitPump()
						return
					}
				}
				s.next = cpSeq + 1
			default:
				// Memory-only log whose history has moved on: reset jump.
				s.next = hb
			}
		}
	}
}

// exitPump records that the pump stopped before going live (the
// consumer closed, or the log shut down) and closes the channel.
func (s *Sub) exitPump() {
	s.l.mu.Lock()
	s.finishPumpLocked(s.err)
	s.l.mu.Unlock()
}

func (s *Sub) finishPumpLocked(err error) {
	if !s.closed {
		s.closed = true
		s.err = err
		s.stopPump.Do(func() { close(s.done) })
	}
	// Pump-owned channel: the sub never went live, so closing here
	// cannot race a live pushLocked.
	close(s.ch)
}
