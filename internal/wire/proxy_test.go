package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
	sharding "ftnet/internal/shard"
)

// rpcCluster boots two in-process daemons (manager + wire server)
// sharing a topology with the given vnode count, and an RPC proxy
// (always at the default vnode count) in front. The returned registry
// carries the proxy's counters.
func rpcCluster(t *testing.T, daemonReplicas int) (cl *Client, mA, mB *fleet.Manager, reg *obs.Registry) {
	t.Helper()
	mA, mB = fleet.NewManager(fleet.Options{}), fleet.NewManager(fleet.Options{})
	addrA, _ := startServer(t, mA, ServerOptions{})
	addrB, _ := startServer(t, mB, ServerOptions{})
	httpPeers := map[string]string{"a": "http://daemon-a.example:8100", "b": "http://daemon-b.example:8100"}
	mA.SetTopology("a", httpPeers, daemonReplicas)
	mB.SetTopology("b", httpPeers, daemonReplicas)

	reg = obs.New()
	px := NewProxy(ProxyOptions{
		RPCPeers:  map[string]string{"a": addrA, "b": addrB},
		HTTPPeers: httpPeers,
		Metrics:   reg,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { px.Close() })
	go px.Serve(ln)
	cl = dialTest(t, ln.Addr().String(), Options{})
	return cl, mA, mB, reg
}

// TestWireProxyRoutesAndMerges pins the RPC front door's routing
// contract when rings agree: every frame lands on the ring owner, the
// answers match a direct lookup bit for bit, mutations apply on the
// owner only, and a pipelined burst across both owners merges back
// with every caller seeing its own answer.
func TestWireProxyRoutesAndMerges(t *testing.T) {
	cl, mA, mB, _ := rpcCluster(t, 0)
	byMember := map[string]*fleet.Manager{"a": mA, "b": mB}
	ring := sharding.New([]string{"a", "b"}, 0)
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}

	ids := make([]string, 8)
	for i := range ids {
		ids[i] = fmt.Sprintf("inst-%d", i)
		if _, err := byMember[ring.Owner(ids[i])].Create(ids[i], spec); err != nil {
			t.Fatal(err)
		}
	}

	for _, id := range ids {
		phi, epoch, err := cl.Lookup(id, 3)
		if err != nil {
			t.Fatalf("Lookup(%s) via proxy: %v", id, err)
		}
		want, err := byMember[ring.Owner(id)].Lookup(id, 3)
		if err != nil {
			t.Fatal(err)
		}
		if phi != want || epoch != 0 {
			t.Fatalf("Lookup(%s) = (%d, %d), want (%d, 0)", id, phi, epoch, want)
		}
	}

	// A batch resolves against one snapshot of its one owner.
	xs := []int{0, 1, 2, 3}
	phis := make([]int, len(xs))
	if _, err := cl.LookupBatch(ids[0], xs, phis); err != nil {
		t.Fatalf("LookupBatch via proxy: %v", err)
	}
	for i, x := range xs {
		want, _ := byMember[ring.Owner(ids[0])].Lookup(ids[0], x)
		if phis[i] != want {
			t.Fatalf("batch phi[%d] = %d, want %d", i, phis[i], want)
		}
	}

	// A mutation applies on the owner and bumps the epoch everywhere
	// the proxy answers from.
	res, err := cl.ApplyBatch(ids[0], []fleet.Event{{Kind: fleet.EventFault, Node: 1}})
	if err != nil {
		t.Fatalf("ApplyBatch via proxy: %v", err)
	}
	if res.Epoch != 1 || res.Applied != 1 {
		t.Fatalf("ApplyBatch result = %+v, want epoch 1, applied 1", res)
	}
	if _, _, err := byMember[ring.Owner(ids[0])].LookupEpochBytes([]byte(ids[0]), 0); err != nil {
		t.Fatal(err)
	}

	// An unknown instance's rejection crosses both hops intact.
	if _, _, err := cl.Lookup("no-such-instance", 0); !errors.Is(err, fleet.ErrNotFound) {
		t.Fatalf("unknown id via proxy = %v, want ErrNotFound", err)
	}

	// A pipelined burst across both owners: every caller gets its own
	// instance's answer back, regardless of fan-out interleaving.
	var wg sync.WaitGroup
	errc := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			want, _ := byMember[ring.Owner(id)].Lookup(id, 5)
			for i := 0; i < 50; i++ {
				phi, _, err := cl.Lookup(id, 5)
				if err != nil {
					errc <- fmt.Errorf("pipelined Lookup(%s): %v", id, err)
					return
				}
				if phi != want {
					errc <- fmt.Errorf("pipelined Lookup(%s) = %d, want %d", id, phi, want)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestWireProxyLearnsFromRedirect drives the wrong-shard learn-retry
// path with a real daemon-generated hint: the daemons shard with a
// different vnode count than the proxy, so for some id the proxy's
// ring answer is wrong. The first frame bounces (StatusWrongShard +
// owner URL), the proxy re-teaches its override cache and retries at
// the hinted owner, and the client sees only the success; repeat
// frames use the override and never bounce again — exactly the HTTP
// 403 path's contract, restated in binary.
func TestWireProxyLearnsFromRedirect(t *testing.T) {
	cl, mA, mB, reg := rpcCluster(t, 64)
	byMember := map[string]*fleet.Manager{"a": mA, "b": mB}
	proxyRing := sharding.New([]string{"a", "b"}, 0)
	daemonRing := sharding.New([]string{"a", "b"}, 64)

	moved := ""
	for i := 0; i < 4096 && moved == ""; i++ {
		if id := fmt.Sprintf("inst-%d", i); proxyRing.Owner(id) != daemonRing.Owner(id) {
			moved = id
		}
	}
	if moved == "" {
		t.Fatal("no id where the rings disagree")
	}
	owner := daemonRing.Owner(moved)
	if _, err := byMember[owner].Create(moved, fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}

	redirects := reg.Counter("ftproxy_rpc_redirects_total", "")
	misroutes := reg.Counter("ftproxy_rpc_misroutes_total", "")

	want, _ := byMember[owner].Lookup(moved, 2)
	phi, _, err := cl.Lookup(moved, 2)
	if err != nil {
		t.Fatalf("Lookup through a bounce: %v", err)
	}
	if phi != want {
		t.Fatalf("Lookup through a bounce = %d, want %d", phi, want)
	}
	if got := redirects.Value(); got != 1 {
		t.Fatalf("redirects after first lookup = %d, want 1", got)
	}

	// The override is cached: no further bounces for the same id, on
	// any operation type.
	if _, err := cl.LookupBatch(moved, []int{0, 1}, make([]int, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.ApplyBatch(moved, []fleet.Event{{Kind: fleet.EventFault, Node: 0}}); err != nil {
		t.Fatal(err)
	}
	if got := redirects.Value(); got != 1 {
		t.Fatalf("redirects after cached lookups = %d, want 1 (override not used)", got)
	}
	if got := misroutes.Value(); got != 0 {
		t.Fatalf("misroutes = %d, want 0", got)
	}
}
