package wire

import (
	"math/bits"
	"net"
	"sync"
)

// This file is the allocation discipline of the hot path: receive
// buffers come from power-of-two class pools and are reused across
// frames and connections, and outbound frames accumulate in a chunked
// write queue flushed as one net.Buffers writev — a log-round of N
// frames costs one syscall and never re-copies what is already
// encoded, no matter how large the round grows.

// Receive-buffer class bounds. Classes run 4KiB, 8KiB, ... up to
// maxPooledBuf; a buffer above maxPooledBuf (a one-off giant frame,
// anything up to MaxFrame's 16MB) is allocated fresh and dropped on
// the floor afterwards. Pooling those would let a single outlier frame
// pin megabytes inside a sync.Pool until the next GC for every
// connection that ever saw one — the steady state must not pay rent on
// the worst case, so only the small classes recirculate.
const (
	minBufClass  = 12 // 1<<12 = 4KiB, the smallest pooled buffer
	maxBufClass  = 16 // 1<<16 = 64KiB, the largest pooled class
	maxPooledBuf = 1 << maxBufClass
)

// bufPools holds one sync.Pool per power-of-two class. Entries are
// *[]byte, and the header objects themselves recirculate through
// hdrPool: taking the address of a local slice in putBuf would escape
// it (one heap allocation per Put, exactly the rent this file
// exists to stop paying), so headers are pooled alongside the buffers
// they describe.
var (
	bufPools [maxBufClass - minBufClass + 1]sync.Pool
	hdrPool  sync.Pool // spare *[]byte headers (nil payload)
)

// bufClass maps a requested size to its pool index, or -1 when the
// size is above every pooled class.
func bufClass(size int) int {
	if size > maxPooledBuf {
		return -1
	}
	if size <= 1<<minBufClass {
		return 0
	}
	return bits.Len(uint(size-1)) - minBufClass // ceil(log2(size)) class
}

// getBuf returns a zero-length buffer with capacity >= size, drawn
// from the matching class pool when one applies.
func getBuf(size int) []byte {
	c := bufClass(size)
	if c < 0 {
		return make([]byte, 0, size)
	}
	if p, _ := bufPools[c].Get().(*[]byte); p != nil {
		b := (*p)[:0]
		*p = nil
		hdrPool.Put(p)
		return b
	}
	return make([]byte, 0, 1<<(c+minBufClass))
}

// putBuf recycles a buffer into its class pool. Buffers above
// maxPooledBuf — including ones that grew past their class via append
// — are dropped (see the class-bound comment above); undersized or nil
// buffers are dropped too rather than poisoning a class with the wrong
// capacity.
func putBuf(b []byte) {
	c := bufClass(cap(b))
	if c < 0 || cap(b) < 1<<minBufClass || cap(b) != 1<<(c+minBufClass) {
		return
	}
	p, _ := hdrPool.Get().(*[]byte)
	if p == nil {
		p = new([]byte)
	}
	*p = b[:0]
	bufPools[c].Put(p)
}

// growRecv returns a receive buffer of exactly size bytes, reusing buf
// when it is large enough and otherwise swapping it for a bigger class
// (the old one goes back to its pool). This is the per-frame read
// path: steady state it never allocates, and a one-off oversized frame
// neither enters nor evicts the pooled classes.
func growRecv(buf []byte, size int) []byte {
	if cap(buf) < size {
		putBuf(buf)
		buf = getBuf(size)
	}
	return buf[:size]
}

// chunkTarget is the sealing threshold of the write queue: once the
// active chunk holds this much it is sealed and a fresh one started,
// so appending another frame never re-copies more than one chunk of
// already-encoded bytes (a contiguous buffer would re-copy the whole
// accumulated round every time append outgrew it).
const chunkTarget = 16 << 10

// writeQueue accumulates encoded frames as a list of pooled chunks and
// hands them to the flusher as a net.Buffers, i.e. one writev. Callers
// append frames under their connection lock; take() transfers
// ownership of everything queued to the flusher in O(chunks).
type writeQueue struct {
	full   [][]byte // sealed chunks, flush order
	active []byte   // the chunk frames are currently encoded into
	queued int      // bytes across full + active
	frames int      // frames across full + active
}

// mark returns the append position for a new frame in the active
// chunk, allocating the first chunk lazily.
func (q *writeQueue) mark() int {
	if q.active == nil {
		q.active = getBuf(chunkTarget)
	}
	return len(q.active)
}

// sealFrameAt finishes the frame started at mark (frame header fill-in
// plus queue accounting) and seals the active chunk once it has
// reached chunkTarget.
func (q *writeQueue) sealFrameAt(buf []byte, mark int) {
	sealFrame(buf, mark)
	q.sealAt(buf, mark)
}

// sealAt records bytes a caller appended to the active chunk starting
// at mark — one already-sealed frame, or nothing if the caller rolled
// back — and rotates the chunk once it has reached chunkTarget.
func (q *writeQueue) sealAt(buf []byte, mark int) {
	q.queued += len(buf) - mark
	if len(buf) > mark {
		q.frames++
	}
	if len(buf) >= chunkTarget {
		q.full = append(q.full, buf)
		q.active = nil
	} else {
		q.active = buf
	}
}

// take moves every queued chunk into chunks (reused across flushes)
// and resets the queue, returning the chunk list, the byte total and
// the frame count. The returned slices are owned by the caller until
// it recycles them with recycle().
func (q *writeQueue) take(chunks [][]byte) (_ [][]byte, bytes, frames int) {
	chunks = append(chunks[:0], q.full...)
	if len(q.active) > 0 {
		chunks = append(chunks, q.active)
		q.active = nil
	}
	bytes, frames = q.queued, q.frames
	q.full = q.full[:0]
	q.queued, q.frames = 0, 0
	return chunks, bytes, frames
}

// recycle returns flushed chunks to the class pools. The net.Buffers
// write consumed the vector view, not these slices, so their full
// capacity recirculates.
func recycle(chunks [][]byte) {
	for i, c := range chunks {
		putBuf(c)
		chunks[i] = nil
	}
}

// writeBuffers sends the chunk list as one vectored write. net.Buffers
// uses writev on TCP connections, so the whole log-round leaves in one
// syscall without ever being copied into a contiguous staging buffer;
// on other conns (tests use in-memory pipes) it degrades to sequential
// writes. vecs is a reusable scratch vector; WriteTo consumes the
// net.Buffers it walks — advancing both the outer slice and its
// elements — so it runs on a header copy and the full-capacity scratch
// (entries cleared, they were consumed to empty anyway) is restored to
// *vecs for the next flush.
func writeBuffers(nc net.Conn, vecs *net.Buffers, chunks [][]byte) error {
	scratch := append((*vecs)[:0], chunks...)
	*vecs = scratch
	_, err := vecs.WriteTo(nc)
	for i := range scratch {
		scratch[i] = nil
	}
	*vecs = scratch[:0]
	return err
}
