package loadgen

import (
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/wire"
)

// threeDaemons boots three in-process daemons (no topology installed —
// RunCluster owns the ring lifecycle, like the real scenario against
// unsharded ftnetd processes).
func threeDaemons(t *testing.T) map[string]string {
	t.Helper()
	peers := make(map[string]string, 3)
	for _, name := range []string{"a", "b", "c"} {
		m := fleet.NewManager(fleet.Options{})
		ts := httptest.NewServer(fleet.NewHTTPHandler(m))
		t.Cleanup(ts.Close)
		peers[name] = ts.URL
	}
	return peers
}

// TestRunClusterRebalanceMidStorm is the flagship scale-out e2e: a
// 3-daemon cluster (two in the initial ring, one joining mid-storm)
// under a role-split write storm routed by the shard client. The join
// displaces instances onto the new member while writes are in flight;
// afterwards every instance must live on exactly its ring owner, at
// exactly the acknowledged epoch (zero lost / double-applied
// transitions), with a phi slice bit-identical to a client-side
// recomputation — and the clients must have converged through daemon
// redirects alone.
func TestRunClusterRebalanceMidStorm(t *testing.T) {
	peers := threeDaemons(t)
	cfg := ClusterConfig{
		Config: Config{
			Instances: 12,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3},
			Workers:   4,
			Requests:  1200,
			Seed:      1,
			Scenario:  Scenario{Batch: 2},
		},
		Peers:         peers,
		Joiner:        "c",
		JoinAfterFrac: 0.3,
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if res.Storm.Transport != 0 || res.Storm.Errors != 0 {
		t.Fatalf("storm saw %d transport and %d unexpected-status errors — the routing client did not converge",
			res.Storm.Transport, res.Storm.Errors)
	}
	if res.Migrated == 0 {
		t.Fatal("no instance was rebalanced onto the joiner")
	}
	if res.Verified != cfg.Instances {
		t.Fatalf("verified %d/%d instances", res.Verified, cfg.Instances)
	}
	// With 12 instances over a 3-member ring, some must have moved to c
	// — and the storm kept writing to them, so the client chased at
	// least one redirect.
	if res.Redirects == 0 {
		t.Error("client followed no redirects: the storm never touched a moved instance")
	}
	if res.Storm.Batches == 0 || res.Storm.Lookups == 0 {
		t.Fatalf("degenerate storm: %d batches, %d lookups", res.Storm.Batches, res.Storm.Lookups)
	}
	if res.PauseMax <= 0 {
		t.Error("no write-fence pause was observed on any daemon")
	}
	if res.PauseMax > 5*time.Second {
		t.Errorf("fence pause %v is implausibly wide", res.PauseMax)
	}

	// The artifact families the CI shard job gates.
	art := ServiceArtifact{Kind: "service", Scenario: "cluster"}
	AppendCluster(&art, res)
	families := make(map[string]bool)
	for _, b := range art.Benchmarks {
		families[b.Family] = true
	}
	if !families["rebalance_pause"] || !families["cluster_lookups_per_sec"] {
		t.Errorf("artifact families = %v, want rebalance_pause and cluster_lookups_per_sec", families)
	}
}

// threeDaemonsRPC is threeDaemons with a binary RPC listener on each
// daemon and an ftproxy-equivalent RPC front (wire.Proxy over the full
// membership) in front, returning the HTTP peers and the proxy's RPC
// address.
func threeDaemonsRPC(t *testing.T) (map[string]string, string) {
	t.Helper()
	httpPeers := make(map[string]string, 3)
	rpcPeers := make(map[string]string, 3)
	for _, name := range []string{"a", "b", "c"} {
		m := fleet.NewManager(fleet.Options{})
		ts := httptest.NewServer(fleet.NewHTTPHandler(m))
		t.Cleanup(ts.Close)
		httpPeers[name] = ts.URL
		srv := wire.NewServer(m, wire.ServerOptions{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		rpcPeers[name] = ln.Addr().String()
	}
	px := wire.NewProxy(wire.ProxyOptions{RPCPeers: rpcPeers, HTTPPeers: httpPeers})
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go px.Serve(pln)
	t.Cleanup(func() { px.Close() })
	return httpPeers, pln.Addr().String()
}

// TestRunClusterRebalanceMidStormRPC is the mid-storm-rebalance e2e
// restated over the binary plane: the storm's lookups and event bursts
// travel the wire protocol through a full-membership RPC proxy while
// the join displaces instances underneath it. The proxy's ring names
// the joiner from the start, so pre-join traffic converges through the
// joiner's spectator redirects and post-cutover traffic through the
// sources' hints — and the verification holds the same exact-epoch /
// bit-identical / single-owner contract at zero transport errors.
func TestRunClusterRebalanceMidStormRPC(t *testing.T) {
	peers, proxyAddr := threeDaemonsRPC(t)
	cfg := ClusterConfig{
		Config: Config{
			Instances: 12,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3},
			Workers:   4,
			Requests:  1200,
			Seed:      1,
			Scenario:  Scenario{Batch: 2},
		},
		Peers:         peers,
		Joiner:        "c",
		JoinAfterFrac: 0.3,
		ProxyRPCAddr:  proxyAddr,
	}
	res, err := RunCluster(cfg)
	if err != nil {
		t.Fatalf("RunCluster: %v", err)
	}
	if !res.Storm.RPC {
		t.Fatal("storm did not mark the RPC plane")
	}
	if res.Storm.Transport != 0 || res.Storm.Errors != 0 {
		t.Fatalf("storm saw %d transport and %d unexpected-status errors through the proxy",
			res.Storm.Transport, res.Storm.Errors)
	}
	if res.Migrated == 0 {
		t.Fatal("no instance was rebalanced onto the joiner")
	}
	if res.Verified != cfg.Instances {
		t.Fatalf("verified %d/%d instances", res.Verified, cfg.Instances)
	}
	if res.Storm.Batches == 0 || res.Storm.Lookups == 0 {
		t.Fatalf("degenerate storm: %d batches, %d lookups", res.Storm.Batches, res.Storm.Lookups)
	}

	// The artifact grows the proxy-plane SLO families the CI shard job
	// gates, alongside the families the HTTP run produces.
	art := ServiceArtifact{Kind: "service", Scenario: "cluster"}
	AppendCluster(&art, res)
	families := make(map[string]bool)
	for _, b := range art.Benchmarks {
		families[b.Family] = true
	}
	for _, want := range []string{"rebalance_pause", "cluster_lookups_per_sec", "proxy_lookups_per_sec", "proxy_lookup_p99"} {
		if !families[want] {
			t.Errorf("artifact families = %v, missing %s", families, want)
		}
	}
}

// TestRunClusterGuards pins the scenario's configuration contract.
func TestRunClusterGuards(t *testing.T) {
	peers := threeDaemons(t)
	base := Config{
		Instances: 2,
		Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2},
		Workers:   2,
		Requests:  10,
		Seed:      1,
	}
	if _, err := RunCluster(ClusterConfig{Config: base, Peers: peers, Joiner: "nope"}); err == nil {
		t.Error("unknown joiner accepted")
	}
	if _, err := RunCluster(ClusterConfig{Config: base, Peers: map[string]string{"a": peers["a"]}, Joiner: "a"}); err == nil {
		t.Error("single-member cluster accepted")
	}
}

// TestShardClientRidesOutStagedWindow pins the 503 path in isolation:
// a request that lands mid-migration (instance staged on the target,
// cutover not yet committed) is retried with backoff until the daemon
// serves it — the caller never sees the window.
func TestShardClientRidesOutStagedWindow(t *testing.T) {
	m := fleet.NewManager(fleet.Options{})
	inner := fleet.NewHTTPHandler(m)
	// The first few requests hit the staged window; then the "cutover
	// commits" and the daemon answers normally.
	staged := 3
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if staged > 0 {
			staged--
			http.Error(w, `{"error":"instance is mid-migration"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	peers := map[string]string{"a": ts.URL}

	sc := newShardClient(peers, 0, 2*time.Second)
	if err := sc.create("inst-0", fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatalf("create through staged window: %v", err)
	}
	if got := sc.stagedWaits.Load(); got != 3 {
		t.Fatalf("staged waits = %d, want 3", got)
	}
	var st opStats
	sc.driveLookup("inst-0", 0, &st)
	if st.lookups != 1 || st.errors != 0 {
		t.Fatalf("lookup after staged window: %+v", st)
	}

	// With the grace window elapsed, a persistent 503 surfaces as the
	// daemon's answer instead of hanging the client forever.
	staged = 1 << 30
	impatient := newShardClient(peers, 0, 10*time.Millisecond)
	var st2 opStats
	impatient.driveLookup("inst-0", 0, &st2)
	if st2.errors != 1 {
		t.Fatalf("persistent 503 past the grace window: %+v", st2)
	}
}
