package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftnet/internal/obs"
)

// These tests pin the observability layer's two contracts: the metrics
// are actually recorded at every wired point (request latency, commit
// stages, replication lag, compaction pause), and recording them costs
// the hot paths nothing (the alloc guards from the ISSUE's acceptance
// criteria: Lookup 0 allocs/op, ApplyBatch <= 5 allocs/op with
// observability enabled).

// TestHotPathAllocBudgetsWithObservability measures the absolute alloc
// budgets through the full manager path — commit pipeline stage timers
// and all — not just the Instance shortcut the scale guards use.
func TestHotPathAllocBudgetsWithObservability(t *testing.T) {
	m := NewManager(Options{Metrics: obs.New()})
	if _, err := m.Create("i0", Spec{Kind: KindDeBruijn, M: 2, H: 14, K: 8}); err != nil {
		t.Fatal(err)
	}
	fault, repair := applyScalePair()
	pair := func() {
		if _, err := m.EventBatch("i0", fault); err != nil {
			t.Fatal(err)
		}
		if _, err := m.EventBatch("i0", repair); err != nil {
			t.Fatal(err)
		}
	}
	pair() // warm the mapping cache
	if allocs := testing.AllocsPerRun(50, pair) / 2; allocs > 5 {
		t.Errorf("ApplyBatch costs %.1f allocs/op with observability enabled, budget is 5", allocs)
	}
	if _, err := m.EventBatch("i0", fault); err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Lookup("i0", 1<<14-1); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("Lookup costs %.1f allocs/op with observability enabled, want 0", allocs)
	}

	// The stage histograms saw every one of those commits.
	e := m.Metrics().Export()
	h, ok := e.Find("ftnet_commit_append_seconds", "")
	if !ok || h.Count == 0 {
		t.Fatalf("commit stage histogram empty after the run: %+v (ok=%v)", h, ok)
	}
}

// TestRequestLatencyMiddleware drives a few routes through the HTTP
// handler and checks the per-route histograms and the in-flight gauge
// land in /v1/stats and /metrics.
func TestRequestLatencyMiddleware(t *testing.T) {
	m := NewManager(Options{})
	t.Cleanup(func() { m.Close() })
	srv := httptest.NewServer(NewHTTPHandler(m))
	t.Cleanup(srv.Close)

	post := func(path, body string, want int) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("POST %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
	post("/v1/instances", `{"id":"a","spec":{"kind":"debruijn","m":2,"h":6,"k":4}}`, http.StatusCreated)
	post("/v1/instances/a/events", `{"kind":"fault","node":1}`, http.StatusOK)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/v1/instances/a/phi?x=5")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Obs == nil {
		t.Fatal("/v1/stats has no obs section")
	}
	if h, ok := stats.Obs.Find("ftnet_http_request_seconds", "route=phi"); !ok || h.Count != 3 {
		t.Errorf("phi route histogram: %+v (ok=%v), want count 3", h, ok)
	}
	if h, ok := stats.Obs.Find("ftnet_http_request_seconds", "route=create"); !ok || h.Count != 1 {
		t.Errorf("create route histogram: %+v (ok=%v), want count 1", h, ok)
	}
	// The stats request itself was in flight while the gauge was read.
	if v, ok := stats.Obs.FindGauge("ftnet_http_inflight"); !ok || v < 1 {
		t.Errorf("inflight gauge = %d (ok=%v), want >= 1", v, ok)
	}

	// And the same families appear on /metrics as cumulative buckets.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	out := string(raw)
	for _, want := range []string{
		"# TYPE ftnet_http_request_seconds histogram",
		`ftnet_http_request_seconds_bucket{route="phi",le="+Inf"} 3`,
		"# TYPE ftnet_commit_append_seconds histogram",
		"# TYPE ftnet_http_inflight gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestFollowerReplicationLagMetrics replicates a small stream and
// checks the lag gauge converges to zero and the entry-age histogram
// saw every live (timestamped) entry.
func TestFollowerReplicationLagMetrics(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	srv := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(srv.Close)

	fm := journaledManager(t, t.TempDir())
	f := startFollower(t, fm, srv.URL)

	if _, err := leader.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 6, K: 4}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		if _, err := leader.Event("a", Event{Kind: EventFault, Node: n}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, leader, fm, 10*time.Second)

	// Wait for a post-convergence stream event (entry or heartbeat) so
	// the gauge reflects the converged position, then check the stats.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := f.Stats()
		if st.LeaderSeq >= leader.CommitLog().LastSeq() && st.LagSeqs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lag never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	e := fm.Metrics().Export()
	if v, ok := e.FindGauge("ftnet_replication_lag_seqs"); !ok || v != 0 {
		t.Errorf("replication lag gauge = %d (ok=%v), want 0", v, ok)
	}
	age, ok := e.Find("ftnet_replication_entry_age_seconds", "")
	if !ok || age.Count != 5 { // 1 create + 4 events, all live and timestamped
		t.Errorf("entry age histogram: %+v (ok=%v), want count 5", age, ok)
	}
	if ok && time.Duration(age.MaxNS) > time.Minute {
		t.Errorf("entry age max %v is implausible for a local stream", time.Duration(age.MaxNS))
	}
}

// TestCompactionPauseHistogram pins that Compact records its pause.
func TestCompactionPauseHistogram(t *testing.T) {
	m := journaledManager(t, t.TempDir())
	if _, err := m.Create("a", Spec{Kind: KindDeBruijn, M: 2, H: 6, K: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	e := m.Metrics().Export()
	if h, ok := e.Find("ftnet_compaction_pause_seconds", ""); !ok || h.Count != 1 {
		t.Errorf("compaction pause histogram: %+v (ok=%v), want count 1", h, ok)
	}
}
