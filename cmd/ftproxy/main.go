// Command ftproxy is the cluster's routing front door: it maps each
// instance id onto its owning daemon with the same consistent-hash
// ring the daemons use (internal/shard) and forwards the request
// there, so clients keep a single endpoint while the instance space is
// sharded — and rebalanced — behind it.
//
// Usage:
//
//	ftproxy -addr :8200 -peers a=http://h1:8100,b=http://h2:8100,c=http://h3:8100
//
// The ring answer is a hint, not the truth: during a migration the
// pinned source, and after a cutover the new owner, may disagree with
// it. The proxy trusts the daemons — on a 403 carrying X-Ftnet-Owner
// it caches the id->owner override, retries the request once at the
// hinted URL, and keeps the override until a daemon's hint changes it
// again. Routing therefore converges on whatever the daemons say
// without any shared state or coordination; a proxy restart merely
// re-learns the overrides from the next few redirects.
//
// Routes with an instance id in the path (or in a create body) are
// forwarded to the owner; /healthz, /metrics and /v1/ring are answered
// locally; everything else is refused — fan-in endpoints like /v1/stats
// belong to the individual daemons.
//
// With -rpc-addr and -rpc-peers the proxy additionally fronts the
// binary RPC plane: it speaks internal/wire to clients, fans frames
// out to per-owner pooled wire clients, and merges responses back in
// request order. Wrong-shard rejections on that plane re-teach the
// same kind of override cache the HTTP path uses, and the RPC plane's
// metrics land on this proxy's /metrics endpoint.
package main

import (
	"flag"
	"log"
	"net"
	"net/http"
	"time"

	"ftnet/internal/shard"
	"ftnet/internal/wire"
)

func main() {
	addr := flag.String("addr", ":8200", "listen address")
	peersFlag := flag.String("peers", "", `ring membership as "name=url,name=url,..."`)
	replicas := flag.Int("replicas", 0, "virtual nodes per ring member (0 selects the default)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-attempt upstream timeout")
	rpcAddr := flag.String("rpc-addr", "", "binary RPC plane listen address (empty disables)")
	rpcPeersFlag := flag.String("rpc-peers", "", `RPC addresses of the same members as "name=host:port,..."`)
	rpcConns := flag.Int("rpc-conns", 0, "connections pooled per RPC backend (0 selects the default)")
	flag.Parse()

	peers, err := shard.ParsePeers(*peersFlag)
	if err != nil {
		log.Fatalf("ftproxy: %v", err)
	}
	p := newProxy(peers, *replicas, *timeout)

	if *rpcAddr != "" {
		rpcPeers, err := shard.ParsePeers(*rpcPeersFlag)
		if err != nil {
			log.Fatalf("ftproxy: -rpc-peers: %v", err)
		}
		for name := range rpcPeers {
			if _, ok := peers[name]; !ok {
				log.Fatalf("ftproxy: -rpc-peers member %q not in -peers", name)
			}
		}
		for name := range peers {
			if _, ok := rpcPeers[name]; !ok {
				log.Fatalf("ftproxy: member %q has no RPC address in -rpc-peers", name)
			}
		}
		rp := wire.NewProxy(wire.ProxyOptions{
			RPCPeers:  rpcPeers,
			HTTPPeers: peers,
			Replicas:  *replicas,
			Conns:     *rpcConns,
			Timeout:   *timeout,
			Metrics:   p.reg, // one /metrics covers both planes
		})
		ln, err := net.Listen("tcp", *rpcAddr)
		if err != nil {
			log.Fatalf("ftproxy: rpc listen: %v", err)
		}
		log.Printf("ftproxy: RPC plane routing %d shard members on %s", len(rpcPeers), *rpcAddr)
		go func() { log.Fatal(rp.Serve(ln)) }()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           p,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("ftproxy: routing %d shard members on %s", len(peers), *addr)
	log.Fatal(srv.ListenAndServe())
}
