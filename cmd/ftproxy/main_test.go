package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/shard"
)

// twoShardCluster boots two in-process daemons sharing a topology with
// the given vnode count, and a proxy (always at the default vnode
// count) in front.
func twoShardCluster(t *testing.T, daemonReplicas int) (*httptest.Server, *fleet.Manager, *fleet.Manager, map[string]string) {
	t.Helper()
	mA, mB := fleet.NewManager(fleet.Options{}), fleet.NewManager(fleet.Options{})
	tsA := httptest.NewServer(fleet.NewHTTPHandler(mA))
	tsB := httptest.NewServer(fleet.NewHTTPHandler(mB))
	t.Cleanup(tsA.Close)
	t.Cleanup(tsB.Close)
	peers := map[string]string{"a": tsA.URL, "b": tsB.URL}
	mA.SetTopology("a", peers, daemonReplicas)
	mB.SetTopology("b", peers, daemonReplicas)
	px := httptest.NewServer(newProxy(peers, 0, 10*time.Second))
	t.Cleanup(px.Close)
	return px, mA, mB, peers
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestProxyRoutesByRing(t *testing.T) {
	px, mA, mB, _ := twoShardCluster(t, 0)
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}

	// Create a handful of instances through the proxy; each must land on
	// the daemon the ring assigns, never the other one.
	ring := shard.New([]string{"a", "b"}, 0)
	byMember := map[string]*fleet.Manager{"a": mA, "b": mB}
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("inst-%d", i)
		resp := postJSON(t, px.URL+"/v1/instances", fleet.CreateRequest{ID: id, Spec: spec})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s via proxy = %d", id, resp.StatusCode)
		}
		owner := ring.Owner(id)
		if _, ok := byMember[owner].Get(id); !ok {
			t.Fatalf("instance %s not on ring owner %s", id, owner)
		}
		for member, m := range byMember {
			if member != owner {
				if _, ok := m.Get(id); ok {
					t.Fatalf("instance %s duplicated on %s", id, member)
				}
			}
		}
	}

	// Events and lookups route the same way.
	resp := postJSON(t, px.URL+"/v1/instances/inst-0/events", fleet.Event{Kind: fleet.EventFault, Node: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event via proxy = %d", resp.StatusCode)
	}
	r, err := http.Get(px.URL + "/v1/instances/inst-0/phi?x=0")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("phi via proxy = %d", r.StatusCode)
	}
	var phi fleet.PhiResponse
	if err := json.NewDecoder(r.Body).Decode(&phi); err != nil {
		t.Fatal(err)
	}
	want, err := byMember[ring.Owner("inst-0")].Lookup("inst-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if phi.Phi != want {
		t.Fatalf("phi via proxy = %d, want %d", phi.Phi, want)
	}

	// Paths without an instance id are refused, not misrouted.
	r2, err := http.Get(px.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /v1/stats via proxy = %d, want 404", r2.StatusCode)
	}
}

// TestProxyLearnsFromRedirect drives the redirect-learn-retry path
// with a real daemon-generated hint: the daemons shard with a
// different vnode count than the proxy, so for some id the proxy's
// ring answer is wrong. The first request bounces off the wrong daemon
// (403 + X-Ftnet-Owner), the proxy retries at the hinted URL, and the
// client sees only the success; the second request uses the cached
// override and never bounces.
func TestProxyLearnsFromRedirect(t *testing.T) {
	px, _, _, _ := twoShardCluster(t, 16) // daemons: 16 vnodes; proxy: default
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}

	proxyRing := shard.New([]string{"a", "b"}, 0)
	daemonRing := shard.New([]string{"a", "b"}, 16)
	id := ""
	for i := 0; i < 10000 && id == ""; i++ {
		probe := fmt.Sprintf("drift-%d", i)
		if proxyRing.Owner(probe) != daemonRing.Owner(probe) {
			id = probe
		}
	}
	if id == "" {
		t.Fatal("no id where the two rings disagree")
	}

	resp := postJSON(t, px.URL+"/v1/instances", fleet.CreateRequest{ID: id, Spec: spec})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create via mismatched proxy = %d (redirect not followed)", resp.StatusCode)
	}
	if got := metricValue(t, px.URL, "ftproxy_redirects_total"); got != "1" {
		t.Errorf("redirects after create = %s, want 1", got)
	}
	resp = postJSON(t, px.URL+"/v1/instances/"+id+"/events", fleet.Event{Kind: fleet.EventFault, Node: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("event after learned override = %d", resp.StatusCode)
	}
	if got := metricValue(t, px.URL, "ftproxy_redirects_total"); got != "1" {
		t.Errorf("redirects after cached-override request = %s, want still 1", got)
	}
	if got := metricValue(t, px.URL, "ftproxy_misroutes_total"); got != "0" {
		t.Errorf("misroutes = %s, want 0", got)
	}
}

// metricValue scrapes one counter from the proxy's /metrics text.
func metricValue(t *testing.T, base, name string) string {
	t.Helper()
	r, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	b, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, b)
	return ""
}

// TestProxyIgnoresForeignOwnerHint: X-Ftnet-Owner comes from an
// upstream response, so a compromised or buggy daemon could use it to
// steer (and cache) traffic toward an arbitrary URL. The proxy must
// only honor hints naming a configured peer: a foreign hint is not
// followed, not cached, and the bounce surfaces to the client.
func TestProxyIgnoresForeignOwnerHint(t *testing.T) {
	var evilHits atomic.Int64
	evil := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		evilHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(evil.Close)
	// Every configured daemon answers 403 with a hint pointing outside
	// the cluster.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Ftnet-Owner", evil.URL)
		w.WriteHeader(http.StatusForbidden)
	}))
	t.Cleanup(bad.Close)

	px := httptest.NewServer(newProxy(map[string]string{"a": bad.URL, "b": bad.URL}, 0, 5*time.Second))
	t.Cleanup(px.Close)

	r, err := http.Get(px.URL + "/v1/instances/steered/phi?x=0")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusForbidden {
		t.Fatalf("status with foreign hint = %d, want the 403 surfaced", r.StatusCode)
	}
	if n := evilHits.Load(); n != 0 {
		t.Fatalf("foreign URL received %d requests, want 0", n)
	}
	if got := metricValue(t, px.URL, "ftproxy_redirects_total"); got != "0" {
		t.Errorf("redirects = %s, want 0 (foreign hint must not be followed)", got)
	}
	if got := metricValue(t, px.URL, "ftproxy_misroutes_total"); got != "1" {
		t.Errorf("misroutes = %s, want 1", got)
	}
	// Nothing cached: the poisoned hint must not survive to steer the
	// next request either.
	ringResp, err := http.Get(px.URL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	defer ringResp.Body.Close()
	var ring struct {
		Overrides int `json:"overrides"`
	}
	if err := json.NewDecoder(ringResp.Body).Decode(&ring); err != nil {
		t.Fatal(err)
	}
	if ring.Overrides != 0 {
		t.Errorf("override cache holds %d entries, want 0", ring.Overrides)
	}
}

// TestProxyOverrideCacheBounded: the learned-override map is fed by
// upstream responses, so without a cap a churning cluster (or a
// hostile daemon) grows it without limit. Past maxOverrides an entry
// is evicted; correctness survives because an evicted id is re-taught
// by its next bounce.
func TestProxyOverrideCacheBounded(t *testing.T) {
	peers := map[string]string{"a": "http://a.example:1", "b": "http://b.example:1"}
	p := newProxy(peers, 0, time.Second)
	other := map[string]string{"a": peers["b"], "b": peers["a"]}
	for i := 0; i < maxOverrides+64; i++ {
		id := fmt.Sprintf("ov-%d", i)
		// Pin away from the ring answer so the entry is stored, not
		// treated as "exception over" and dropped.
		p.setOverride(id, other[p.ring.Owner(id)])
	}
	p.mu.RLock()
	n := len(p.override)
	p.mu.RUnlock()
	if n > maxOverrides {
		t.Fatalf("override cache grew to %d entries, cap is %d", n, maxOverrides)
	}
	if n != maxOverrides {
		t.Fatalf("override cache holds %d entries, want full at %d", n, maxOverrides)
	}
	// The cache still learns after hitting the cap.
	p.setOverride("ov-fresh", other[p.ring.Owner("ov-fresh")])
	if got := p.lookupOverride("ov-fresh"); got != other[p.ring.Owner("ov-fresh")] {
		t.Fatalf("post-cap learn: override = %q, want the hinted peer", got)
	}
}
