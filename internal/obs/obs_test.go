package obs

import (
	"bufio"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Quantile(p); got != 0 {
			t.Errorf("empty histogram Quantile(%v) = %v, want 0", p, got)
		}
	}
	h.Observe(37 * time.Microsecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Max != uint64(37*time.Microsecond) {
		t.Fatalf("single sample snapshot: %+v", s)
	}
	// With one sample every quantile is that sample, clamped to max.
	for _, p := range []float64{0, 50, 99, 99.9, 100} {
		if got := h.Quantile(p); got != 37*time.Microsecond {
			t.Errorf("single-sample Quantile(%v) = %v, want 37µs", p, got)
		}
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second) // clock skew on the caller's side: counts as 0
	s := h.Snapshot()
	if s.Count != 2 || s.Buckets[0] != 2 || s.Max != 0 {
		t.Fatalf("zero/negative observations: %+v", s)
	}
	if got := h.Quantile(100); got != 0 {
		t.Errorf("Quantile(100) = %v, want 0", got)
	}
}

// TestHistogramQuantileWithinOneBucket is the acceptance test for the
// bucketed representation: against an exact sorted-sample percentile,
// the histogram's answer must land within one power-of-two bucket —
// i.e. exact <= bucketed <= 2*exact (modulo the max clamp) — across
// distributions with very different shapes.
func TestHistogramQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string]func() time.Duration{
		// Uniform microseconds-to-milliseconds: a flat spread.
		"uniform": func() time.Duration {
			return time.Duration(1e3 + rng.Int63n(1e6))
		},
		// Exponential-ish long tail: the latency shape p99s exist for.
		"longtail": func() time.Duration {
			d := time.Duration(1e4 * (1 + rng.ExpFloat64()*20))
			return d
		},
		// Bimodal: fast cache hits plus slow fsyncs.
		"bimodal": func() time.Duration {
			if rng.Intn(10) == 0 {
				return time.Duration(5e6 + rng.Int63n(5e6))
			}
			return time.Duration(100 + rng.Int63n(1000))
		},
	}
	for name, draw := range shapes {
		t.Run(name, func(t *testing.T) {
			var h Histogram
			samples := make([]time.Duration, 20000)
			for i := range samples {
				samples[i] = draw()
				h.Observe(samples[i])
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			for _, p := range []float64{50, 90, 99, 99.9, 100} {
				rank := int(float64(len(samples))*p/100+0.5) - 1
				if rank < 0 {
					rank = 0
				}
				if rank >= len(samples) {
					rank = len(samples) - 1
				}
				exact := samples[rank]
				got := h.Quantile(p)
				if got < exact/2 || got > 2*exact {
					t.Errorf("p%v: bucketed %v vs exact %v — off by more than one bucket", p, got, exact)
				}
			}
			if h.Quantile(100) != samples[len(samples)-1] {
				t.Errorf("p100 = %v, want exact max %v", h.Quantile(100), samples[len(samples)-1])
			}
		})
	}
}

// TestObserveAllocFree pins the hot-path contract: recording a sample
// must not allocate, so instrumentation cannot change the alloc guards
// on Lookup and ApplyBatch.
func TestObserveAllocFree(t *testing.T) {
	var h Histogram
	d := 123 * time.Microsecond
	if allocs := testing.AllocsPerRun(1000, func() { h.Observe(d) }); allocs != 0 {
		t.Errorf("Observe allocates %.1f objects per call, want 0", allocs)
	}
	c := &Counter{}
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc() }); allocs != 0 {
		t.Errorf("Counter.Inc allocates %.1f objects per call, want 0", allocs)
	}
	g := &Gauge{}
	if allocs := testing.AllocsPerRun(1000, func() { g.Add(1) }); allocs != 0 {
		t.Errorf("Gauge.Add allocates %.1f objects per call, want 0", allocs)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	var cum uint64
	for _, c := range s.Buckets {
		cum += c
	}
	if cum != workers*per {
		t.Fatalf("bucket sum = %d, want %d", cum, workers*per)
	}
}

func TestRegistryExport(t *testing.T) {
	r := New()
	r.Counter("ftnet_z_total", "last alphabetically").Add(3)
	r.Gauge("ftnet_a_gauge", "first alphabetically").Set(-2)
	v := r.HistogramVec("ftnet_req_seconds", "per route", "route")
	v.With("phi").Observe(time.Millisecond)
	v.With("phi").Observe(2 * time.Millisecond)
	v.With("stats").Observe(time.Microsecond)
	r.Histogram("ftnet_pause_seconds", "unlabeled").Observe(time.Second)

	e := r.Export()
	if len(e.Counters) != 1 || e.Counters[0].Value != 3 {
		t.Fatalf("counters: %+v", e.Counters)
	}
	if len(e.Gauges) != 1 || e.Gauges[0].Value != -2 {
		t.Fatalf("gauges: %+v", e.Gauges)
	}
	if len(e.Histograms) != 3 {
		t.Fatalf("histograms: %+v", e.Histograms)
	}
	h, ok := e.Find("ftnet_req_seconds", "route=phi")
	if !ok || h.Count != 2 || h.MaxNS != float64(2*time.Millisecond) {
		t.Fatalf("Find(req, phi): %+v, %v", h, ok)
	}
	if _, ok := e.Find("ftnet_req_seconds", "route=nope"); ok {
		t.Error("found a histogram for an unregistered label")
	}
	if _, ok := e.Find("ftnet_pause_seconds", ""); !ok {
		t.Error("unlabeled histogram not found")
	}

	// Same metric requested again: same pointer, not a new child.
	if v.With("phi").Count() != 2 {
		t.Error("HistogramVec.With did not return the existing child")
	}
}

// TestWritePrometheus checks the exposition invariants a scraper
// relies on: one TYPE line per family, cumulative non-decreasing
// buckets ending in +Inf, and _count equal to the +Inf bucket.
func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("ftnet_events_total", "events").Add(7)
	v := r.HistogramVec("ftnet_req_seconds", "per route", "route")
	for i := 0; i < 100; i++ {
		v.With("phi").Observe(time.Duration(i) * 50 * time.Microsecond)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	if !strings.Contains(out, "# TYPE ftnet_events_total counter") ||
		!strings.Contains(out, "ftnet_events_total 7") {
		t.Fatalf("counter exposition missing:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE ftnet_req_seconds histogram") {
		t.Fatalf("histogram TYPE missing:\n%s", out)
	}
	if !strings.Contains(out, `ftnet_req_seconds_bucket{route="phi",le="+Inf"} 100`) {
		t.Fatalf("+Inf bucket missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, `ftnet_req_seconds_count{route="phi"} 100`) {
		t.Fatalf("_count missing or wrong:\n%s", out)
	}
	// Cumulative buckets never decrease.
	last := int64(-1)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "ftnet_req_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscan(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("bucket counts decreased: %q after %d", line, last)
		}
		last = n
	}
}

// fmtSscan pulls the trailing integer off an exposition line.
func fmtSscan(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := parseInt(line[i+1:])
	*n = v
	return 1, err
}

func parseInt(s string) (int64, error) {
	var v int64
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, &parseError{s}
		}
		v = v*10 + int64(c-'0')
	}
	return v, nil
}

type parseError struct{ s string }

func (e *parseError) Error() string { return "not an integer: " + e.s }

func TestRegistryReRegisterPanics(t *testing.T) {
	r := New()
	r.Counter("ftnet_x", "a counter")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a histogram did not panic")
		}
	}()
	r.Histogram("ftnet_x", "now a histogram")
}
