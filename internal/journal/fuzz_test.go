package journal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzJournalDecode throws arbitrary bytes at the record decoder and
// the frame scanner. The invariants, in the information-checking
// spirit of making corruption detectable rather than silently
// accepted:
//
//  1. DecodeRecord never panics, whatever the input.
//  2. Anything DecodeRecord accepts re-encodes to the EXACT input
//     bytes (the canonical-encoding property: accepted language ==
//     encoder image), and decodes again to an equal record.
//  3. The frame reader never panics and never surfaces a record from
//     a frame whose CRC does not verify.
//
// Seeds are real encoded records, so the fuzzer starts from the
// interesting part of the input space.
func FuzzJournalDecode(f *testing.F) {
	for _, rec := range []Record{
		{Op: OpCreate, ID: "prod", Spec: Spec{Kind: "debruijn", M: 2, H: 4, K: 3}},
		{Op: OpCreate, ID: "se", Spec: Spec{Kind: "shuffle", H: 10, K: 6}},
		{Op: OpDelete, ID: "prod"},
		{Op: OpTransition, ID: "prod", Epoch: 1, Applied: 1, Faults: []int{3}},
		{Op: OpTransition, ID: "i-0", Epoch: 42, Applied: 4, Faults: []int{0, 1, 2, 3}},
		{Op: OpTransition, ID: "big", Epoch: 1 << 40, Applied: 7, Faults: []int{5, 1000, 1 << 20}},
		{Op: OpTransition, ID: "empty", Epoch: 9, Applied: 2, Faults: nil},
		{Op: OpSeqBase, ID: SeqBaseID, Seq: 1},
		{Op: OpSeqBase, ID: SeqBaseID, Seq: 1 << 33, Term: 5},
		{Op: OpTermBump, ID: SeqBaseID, Term: 2},
		{Op: OpCheckpoint, ID: "prod", Spec: Spec{Kind: "debruijn", M: 2, H: 4, K: 3}, Epoch: 17, Faults: []int{1, 5}},
		{Op: OpCheckpoint, ID: "fresh", Spec: Spec{Kind: "shuffle", H: 6, K: 2}, Epoch: 0, Faults: nil},
	} {
		payload, err := AppendRecord(nil, rec)
		if err != nil {
			f.Fatalf("seed %+v: %v", rec, err)
		}
		f.Add(payload)
	}
	f.Add([]byte{})
	f.Add([]byte{recordVersion, byte(OpTransition), 1, 'x', 0x80, 0x00}) // non-minimal uvarint

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodeRecord(b)
		if err == nil {
			enc, err := AppendRecord(nil, rec)
			if err != nil {
				t.Fatalf("decoded record %+v does not re-encode: %v", rec, err)
			}
			if !bytes.Equal(enc, b) {
				t.Fatalf("encode(decode(b)) != b:\n b  = %x\nenc = %x\nrec = %+v", b, enc, rec)
			}
			again, err := DecodeRecord(enc)
			if err != nil || !reflect.DeepEqual(again, rec) {
				t.Fatalf("decode(encode(rec)) = %+v, %v; want %+v", again, err, rec)
			}
		}
		// The frame scanner over the same bytes: must terminate without
		// panicking, and every surfaced record must be canonical too.
		recs, _, _ := ReadAll(bytes.NewReader(b))
		for _, r := range recs {
			if _, err := AppendRecord(nil, r); err != nil {
				t.Fatalf("frame reader surfaced non-encodable record %+v: %v", r, err)
			}
		}
	})
}
