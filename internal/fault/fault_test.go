package fault

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/graph"
)

func checkFaultSet(t *testing.T, name string, s []int, n, k int) {
	t.Helper()
	if len(s) != k {
		t.Fatalf("%s: size %d, want %d", name, len(s), k)
	}
	for i, v := range s {
		if v < 0 || v >= n {
			t.Fatalf("%s: fault %d out of range [0,%d)", name, v, n)
		}
		if i > 0 && s[i-1] >= v {
			t.Fatalf("%s: not sorted/distinct: %v", name, s)
		}
	}
}

func testGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(i, (i+3)%n)
	}
	return b.Build()
}

func TestAllModelsProduceValidSets(t *testing.T) {
	g := testGraph(20)
	rng := rand.New(rand.NewSource(5))
	for _, m := range All(g) {
		for k := 0; k <= 6; k++ {
			s := m.Generate(rng, 20, k)
			checkFaultSet(t, m.Name(), s, 20, k)
		}
	}
}

func TestRandomUniform(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 5
		k := rng.Intn(n)
		s := (Random{}).Generate(rng, n, k)
		if len(s) != k {
			return false
		}
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockIsConsecutiveModuloN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 17
		k := 4
		s := (Block{}).Generate(rng, n, k)
		checkFaultSet(t, "block", s, n, k)
		// The set must be a cyclic run: the complement gaps must form a
		// single run of length n-k.
		inSet := make([]bool, n)
		for _, v := range s {
			inSet[v] = true
		}
		transitions := 0
		for i := 0; i < n; i++ {
			if inSet[i] != inSet[(i+1)%n] {
				transitions++
			}
		}
		if transitions != 2 {
			t.Fatalf("block faults not one cyclic run: %v", s)
		}
	}
}

func TestSpares(t *testing.T) {
	s := (Spares{}).Generate(nil, 10, 3)
	want := []int{7, 8, 9}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("spares = %v", s)
		}
	}
	if len((Spares{}).Generate(nil, 10, 0)) != 0 {
		t.Error("k=0 should be empty")
	}
}

func TestSpreadDistinct(t *testing.T) {
	for _, c := range []struct{ n, k int }{{16, 4}, {17, 5}, {9, 8}, {20, 1}} {
		s := (Spread{}).Generate(nil, c.n, c.k)
		checkFaultSet(t, "spread", s, c.n, c.k)
	}
}

func TestMaxDegreePicksHubs(t *testing.T) {
	// Star graph: center 0 has max degree.
	b := graph.NewBuilder(6)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	s := (MaxDegree{Host: g}).Generate(nil, 6, 1)
	if len(s) != 1 || s[0] != 0 {
		t.Errorf("maxdegree = %v, want [0]", s)
	}
}

func TestMaxDegreePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	(MaxDegree{Host: testGraph(5)}).Generate(nil, 9, 1)
}

func TestEdge2Node(t *testing.T) {
	edges := []graph.Edge{{U: 2, V: 5}, {U: 7, V: 3}}
	s := Edge2Node(edges, []int{1})
	// Lower endpoints 2 and 3 become faulty, plus existing 1.
	want := []int{1, 2, 3}
	if len(s) != len(want) {
		t.Fatalf("Edge2Node = %v, want %v", s, want)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("Edge2Node = %v, want %v", s, want)
		}
	}
}

func TestEdge2NodeSkipsAlreadyDeadEdges(t *testing.T) {
	edges := []graph.Edge{{U: 2, V: 5}}
	s := Edge2Node(edges, []int{5})
	// Edge (2,5) is already dead because 5 is faulty; 2 stays healthy.
	if len(s) != 1 || s[0] != 5 {
		t.Errorf("Edge2Node = %v, want [5]", s)
	}
}

func TestModelNames(t *testing.T) {
	g := testGraph(8)
	seen := map[string]bool{}
	for _, m := range All(g) {
		if m.Name() == "" || seen[m.Name()] {
			t.Errorf("bad or duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
	}
}
