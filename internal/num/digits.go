package num

import "fmt"

// Digits holds the h-digit base-m representation of a number, most
// significant digit first, matching the paper's notation
// [x_{h-1}, x_{h-2}, ..., x_0]_m.
type Digits struct {
	Base int
	D    []int // D[0] is x_{h-1} (most significant)
}

// ToDigits converts x into its h-digit base-m representation. It returns
// an error when x is out of range [0, m^h) or the parameters are invalid.
func ToDigits(x, m, h int) (Digits, error) {
	if m < 2 {
		return Digits{}, fmt.Errorf("num.ToDigits: base m=%d must be >= 2", m)
	}
	if h < 1 {
		return Digits{}, fmt.Errorf("num.ToDigits: width h=%d must be >= 1", h)
	}
	limit, err := IPow(m, h)
	if err != nil {
		return Digits{}, err
	}
	if x < 0 || x >= limit {
		return Digits{}, fmt.Errorf("num.ToDigits: x=%d out of range [0, %d)", x, limit)
	}
	d := make([]int, h)
	for i := h - 1; i >= 0; i-- {
		d[i] = x % m
		x /= m
	}
	return Digits{Base: m, D: d}, nil
}

// MustToDigits is ToDigits that panics on error.
func MustToDigits(x, m, h int) Digits {
	d, err := ToDigits(x, m, h)
	if err != nil {
		panic(err)
	}
	return d
}

// Value converts the digit vector back to its integer value.
func (d Digits) Value() int {
	v := 0
	for _, digit := range d.D {
		v = v*d.Base + digit
	}
	return v
}

// Width returns the number of digits h.
func (d Digits) Width() int { return len(d.D) }

// ShiftLeftIn returns the digit vector shifted left by one position with
// r inserted as the new least significant digit:
// [x_{h-1},...,x_0] -> [x_{h-2},...,x_0,r]. This is the de Bruijn
// "successor" edge.
func (d Digits) ShiftLeftIn(r int) Digits {
	h := len(d.D)
	out := make([]int, h)
	copy(out, d.D[1:])
	out[h-1] = r
	return Digits{Base: d.Base, D: out}
}

// ShiftRightIn returns the digit vector shifted right by one position
// with r inserted as the new most significant digit:
// [x_{h-1},...,x_0] -> [r,x_{h-1},...,x_1]. This is the de Bruijn
// "predecessor" edge.
func (d Digits) ShiftRightIn(r int) Digits {
	h := len(d.D)
	out := make([]int, h)
	copy(out[1:], d.D[:h-1])
	out[0] = r
	return Digits{Base: d.Base, D: out}
}

// RotateLeft returns the cyclic left rotation
// [x_{h-1},...,x_0] -> [x_{h-2},...,x_0,x_{h-1}], the perfect shuffle.
func (d Digits) RotateLeft() Digits {
	return d.ShiftLeftIn(d.D[0])
}

// RotateRight returns the cyclic right rotation, the inverse shuffle.
func (d Digits) RotateRight() Digits {
	return d.ShiftRightIn(d.D[len(d.D)-1])
}

// Exchange returns the vector with the least significant digit replaced
// by r. With base 2 and r = 1 - x_0 this is the shuffle-exchange
// "exchange" edge.
func (d Digits) Exchange(r int) Digits {
	out := make([]int, len(d.D))
	copy(out, d.D)
	out[len(out)-1] = r
	return Digits{Base: d.Base, D: out}
}

// String renders the vector in the paper's bracket notation.
func (d Digits) String() string {
	s := "["
	for i, v := range d.D {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + fmt.Sprintf("]_%d", d.Base)
}

// RotLeft is the integer form of the perfect shuffle on h-digit base-m
// numbers: the cyclic left digit rotation of x.
func RotLeft(x, m, h int) int {
	pow := MustIPow(m, h-1)
	msd := x / pow
	return (x-msd*pow)*m + msd
}

// RotRight is the integer form of the inverse shuffle: the cyclic right
// digit rotation of x.
func RotRight(x, m, h int) int {
	pow := MustIPow(m, h-1)
	lsd := x % m
	return x/m + lsd*pow
}

// NecklacePeriod returns the smallest p >= 1 such that rotating x left p
// times (base m, width h) returns x. p always divides h.
func NecklacePeriod(x, m, h int) int {
	y := x
	for p := 1; ; p++ {
		y = RotLeft(y, m, h)
		if y == x {
			return p
		}
	}
}

// NecklaceMin returns the smallest integer reachable from x by rotation,
// the canonical representative of x's necklace.
func NecklaceMin(x, m, h int) int {
	min := x
	y := x
	for i := 1; i < h; i++ {
		y = RotLeft(y, m, h)
		if y < min {
			min = y
		}
	}
	return min
}
