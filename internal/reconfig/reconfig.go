// Package reconfig implements a distributed version of the paper's
// reconfiguration algorithm. The paper presents reconfiguration as a
// global rank computation; on a real machine each healthy processor
// must discover the fault set and then determine *locally* which target
// node it hosts. Because the map is pure rank arithmetic —
// host v carries target Rank(v, healthy) — a node needs only the fault
// list, which floods through the healthy part of the host graph in
// (fault-free-region) eccentricity rounds.
//
// The package simulates that protocol synchronously and proves the
// outcome identical to the centralized ft.Mapping.
package reconfig

import (
	"fmt"

	"ftnet/internal/ft"
	"ftnet/internal/graph"
)

// FloodResult describes the dissemination phase.
type FloodResult struct {
	Rounds   int    // synchronous rounds until every healthy node knows all faults
	Informed []bool // per host node: true when it learned the full fault set
}

// Flood simulates synchronous flooding of the fault list from the
// faults' neighbors (the nodes that detect them) across the healthy
// subgraph of host. It returns an error when some healthy node can
// never learn the faults (the healthy subgraph is disconnected) —
// possible only when the fault set exceeds the host's connectivity.
func Flood(host *graph.Graph, faults []int) (FloodResult, error) {
	n := host.N()
	dead := make([]bool, n)
	for _, f := range faults {
		if f < 0 || f >= n {
			return FloodResult{}, fmt.Errorf("reconfig: fault %d out of range [0,%d)", f, n)
		}
		dead[f] = true
	}
	// Knowledge per node: how many of the faults it knows. Detection:
	// each fault is noticed by its healthy neighbors in round 0.
	knows := make([][]bool, n)
	for v := range knows {
		knows[v] = make([]bool, len(faults))
	}
	for i, f := range faults {
		for _, v := range host.Neighbors(f) {
			if !dead[v] {
				knows[v][i] = true
			}
		}
	}
	complete := func(v int) bool {
		for _, k := range knows[v] {
			if !k {
				return false
			}
		}
		return true
	}
	allDone := func() bool {
		for v := 0; v < n; v++ {
			if !dead[v] && !complete(v) {
				return false
			}
		}
		return true
	}
	rounds := 0
	if len(faults) > 0 {
		maxRounds := n + 1
		for ; !allDone() && rounds < maxRounds; rounds++ {
			next := make([][]bool, n)
			for v := range next {
				next[v] = append([]bool(nil), knows[v]...)
			}
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				for _, u := range host.Neighbors(v) {
					if dead[u] {
						continue
					}
					for i := range faults {
						if knows[u][i] {
							next[v][i] = true
						}
					}
				}
			}
			knows = next
		}
		if !allDone() {
			return FloodResult{}, fmt.Errorf("reconfig: healthy subgraph disconnected; flooding cannot complete")
		}
	}
	informed := make([]bool, n)
	for v := 0; v < n; v++ {
		informed[v] = !dead[v] && complete(v)
	}
	return FloodResult{Rounds: rounds, Informed: informed}, nil
}

// LocalAssign is the per-node decision rule: with the complete fault
// list in hand, healthy host node self computes which target node it
// hosts (-1 when it is an unused spare). It is pure local arithmetic —
// count the healthy nodes below self.
func LocalAssign(nTarget, nHost, self int, faults []int) (int, error) {
	if self < 0 || self >= nHost {
		return 0, fmt.Errorf("reconfig: node %d out of range [0,%d)", self, nHost)
	}
	rank := self
	for _, f := range faults {
		if f == self {
			return 0, fmt.Errorf("reconfig: node %d is itself faulty", self)
		}
		if f < self {
			rank--
		}
	}
	if rank >= nTarget {
		return -1, nil // spare
	}
	return rank, nil
}

// Outcome is the result of the full distributed protocol.
type Outcome struct {
	Rounds       int   // dissemination rounds
	HostToTarget []int // per host node: target hosted, -1 for faulty/spare
}

// Run executes the full protocol (flood, then local assignment) and
// cross-checks the result against the centralized mapping. The returned
// assignment is guaranteed identical to ft.NewMapping's.
func Run(host *graph.Graph, nTarget int, faults []int) (Outcome, error) {
	fl, err := Flood(host, faults)
	if err != nil {
		return Outcome{}, err
	}
	nHost := host.N()
	assign := make([]int, nHost)
	dead := make(map[int]bool, len(faults))
	for _, f := range faults {
		dead[f] = true
	}
	for v := 0; v < nHost; v++ {
		if dead[v] {
			assign[v] = -1
			continue
		}
		tgt, err := LocalAssign(nTarget, nHost, v, faults)
		if err != nil {
			return Outcome{}, err
		}
		assign[v] = tgt
	}
	// Cross-check against the centralized algorithm.
	mp, err := ft.NewMapping(nTarget, nHost, faults)
	if err != nil {
		return Outcome{}, err
	}
	want := mp.HostToTarget()
	for v := range want {
		if assign[v] != want[v] {
			return Outcome{}, fmt.Errorf("reconfig: node %d decided %d, centralized says %d",
				v, assign[v], want[v])
		}
	}
	return Outcome{Rounds: fl.Rounds, HostToTarget: assign}, nil
}
