package experiments

import (
	"fmt"
	"io"
	"net/http/httptest"
	"text/tabwriter"

	"ftnet/internal/fleet"
	"ftnet/internal/loadgen"
)

// extendedFleet returns the online-service experiments: the ftnetd
// throughput scenarios tracked like paper figures.
func extendedFleet() []Experiment {
	return []Experiment{
		{"L1", "Service: ftnetd throughput — read-heavy, burst-heavy, write-storm", L1},
		{"L2", "Scale: compact rank-based mappings, nHost 2^10 .. 2^20", L2},
	}
}

// L1 runs the cmd/ftload scenarios against an in-process ftnetd
// handler and tabulates service throughput, so regressions on the
// daemon's hot paths are tracked alongside the paper's own figures.
// The read-heavy scenario exercises the lock-free snapshot lookup
// path; the burst-heavy scenario exercises atomic events:batch
// transitions (each accepted burst advances its instance's epoch by
// exactly one — the table cross-checks that invariant); the
// write-storm scenario pins dedicated writers on back-to-back bursts
// and reports the read-side p99 those lookups see meanwhile — the
// latency-under-write-storm figure the lock-free read path exists
// for. Absolute ops/s depends on the machine; the tracked signal is
// the ratio between the scenarios and the rejected/error accounting.
func L1(w io.Writer) error {
	const requests = 3000
	fmt.Fprintf(w, "ftnetd service throughput: %d ops per scenario, 4 x B^4_{2,6} instances, 8 workers\n", requests)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scenario\teventfrac\tburst\twriters\tlookups\tevents\trejected\tops/s\tp50\tp99\tread p99")
	for _, sc := range []loadgen.Scenario{loadgen.ReadHeavy, loadgen.BurstHeavy, loadgen.WriteStorm} {
		mgr := fleet.NewManager(fleet.Options{})
		ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
		res, err := loadgen.Run(loadgen.Config{
			Addr:      ts.URL,
			Instances: 4,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 6, K: 4},
			Workers:   8,
			Requests:  requests,
			Scenario:  sc,
			Seed:      19920415,
			IDPrefix:  "exp-" + sc.Name,
		})
		ts.Close()
		if err != nil {
			return err
		}
		if res.Errors > 0 {
			return fmt.Errorf("scenario %s: %d operations failed", sc.Name, res.Errors)
		}
		var epochs uint64
		for _, id := range mgr.List() {
			in, _ := mgr.Get(id)
			epochs += in.Info().Epoch
		}
		if epochs != uint64(res.Batches) {
			return fmt.Errorf("scenario %s: epoch sum %d != accepted transitions %d (burst not atomic?)",
				sc.Name, epochs, res.Batches)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%.0f\t%v\t%v\t%v\n",
			sc.Name, sc.EventFrac, sc.Batch, sc.Writers, res.Lookups, res.Events, res.Rejected,
			res.Throughput(), res.Percentile(50), res.Percentile(99), res.LookupPercentile(99))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "each accepted burst advances its instance's epoch exactly once (verified above);")
	fmt.Fprintln(w, "lookups are served lock-free from the published snapshot while bursts apply;")
	fmt.Fprintln(w, "read p99 is the lookup-only percentile (the write-storm row's tracked signal)")
	return nil
}
