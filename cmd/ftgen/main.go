// Command ftgen emits the repository's graphs in DOT or edge-list
// format, for plotting (regenerates Figures 1, 2 and 4 as drawings) or
// for consumption by other tools.
//
// Usage:
//
//	ftgen -graph db   -m 2 -h 4                 # B_{2,4} (Figure 1)
//	ftgen -graph ftdb -m 2 -h 4 -k 1            # B^1_{2,4} (Figure 2)
//	ftgen -graph se   -h 4                      # SE_4
//	ftgen -graph ftse -h 4 -k 2                 # natural FT shuffle-exchange
//	ftgen -graph db -m 2 -h 4 -format edgelist  # machine-readable
package main

import (
	"flag"
	"fmt"
	"os"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/shuffle"
)

func main() {
	kind := flag.String("graph", "db", "graph kind: db | ftdb | se | ftse")
	m := flag.Int("m", 2, "de Bruijn base")
	h := flag.Int("h", 4, "digits / bits")
	k := flag.Int("k", 1, "fault budget (ft graphs)")
	format := flag.String("format", "dot", "output format: dot | edgelist")
	flag.Parse()

	g, name, err := build(*kind, *m, *h, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftgen: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "dot":
		err = g.WriteDOT(os.Stdout, graph.DOTOptions{Name: name})
	case "edgelist":
		err = g.WriteEdgeList(os.Stdout)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ftgen: %v\n", err)
		os.Exit(1)
	}
}

func build(kind string, m, h, k int) (*graph.Graph, string, error) {
	switch kind {
	case "db":
		p := debruijn.Params{M: m, H: h}
		g, err := debruijn.New(p)
		if err != nil {
			return nil, "", err
		}
		debruijn.ApplyLabels(g, p)
		return g, "debruijn", nil
	case "ftdb":
		g, err := ft.New(ft.Params{M: m, H: h, K: k})
		return g, "ftdebruijn", err
	case "se":
		p := shuffle.Params{H: h}
		g, err := shuffle.New(p)
		if err != nil {
			return nil, "", err
		}
		shuffle.ApplyLabels(g, p)
		return g, "shuffleexchange", nil
	case "ftse":
		g, err := ft.NewSENatural(ft.SEParams{H: h, K: k})
		return g, "ftshuffleexchange", err
	default:
		return nil, "", fmt.Errorf("unknown graph kind %q", kind)
	}
}
