package main

import "testing"

func TestParseFaultsSim(t *testing.T) {
	got, err := parseFaults("")
	if err != nil || got != nil {
		t.Errorf("empty = %v, %v", got, err)
	}
	got, err = parseFaults(" 1 , 2 ")
	if err != nil || len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("parse = %v, %v", got, err)
	}
	if _, err := parseFaults("a"); err == nil {
		t.Error("bad input accepted")
	}
}

func TestRunAscendPaths(t *testing.T) {
	// FT machine path.
	if err := runAscend(4, 2, []int{3}, false); err != nil {
		t.Fatal(err)
	}
	// Unprotected healthy.
	if err := runAscend(4, 0, nil, true); err != nil {
		t.Fatal(err)
	}
	// Unprotected with a fault: reports failure but returns nil error.
	if err := runAscend(4, 0, []int{5}, true); err != nil {
		t.Fatal(err)
	}
	// Fault out of range on unprotected machine.
	if err := runAscend(3, 0, []int{99}, true); err == nil {
		t.Error("out-of-range fault accepted")
	}
	// Too many faults on the FT machine.
	if err := runAscend(4, 1, []int{1, 2}, false); err == nil {
		t.Error("budget exceeded accepted")
	}
}

func TestRunBusPath(t *testing.T) {
	if err := runBus(3, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := runBus(2, 1, 1); err == nil {
		t.Error("h=2 accepted")
	}
}
