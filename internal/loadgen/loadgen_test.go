package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"ftnet/internal/fleet"
)

func TestScenarioByName(t *testing.T) {
	for _, want := range []string{"mixed", "read-heavy", "burst-heavy", "write-storm"} {
		sc, ok := ByName(want)
		if !ok || sc.Name != want {
			t.Errorf("ByName(%q) = %+v, %v", want, sc, ok)
		}
		if sc.Batch < 1 || sc.EventFrac < 0 || sc.EventFrac > 1 {
			t.Errorf("scenario %q has invalid shape: %+v", want, sc)
		}
	}
	if _, ok := ByName("tsunami"); ok {
		t.Error("bogus scenario found")
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Instances: 1, Workers: 1, Requests: 1, Scenario: Mixed,
		Spec: fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 1}}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
	bad := []Config{
		{Instances: 0, Workers: 1, Requests: 1, Scenario: Mixed},
		{Instances: 1, Workers: 1, Requests: 1, Scenario: Scenario{Batch: 0},
			Spec: good.Spec},
		{Instances: 1, Workers: 1, Requests: 1, Scenario: Scenario{Batch: 1, EventFrac: 1.5},
			Spec: good.Spec},
		{Instances: 1, Workers: 1, Requests: 1, Scenario: Mixed,
			Spec: fleet.Spec{Kind: "torus", H: 4}},
		// Burst larger than the whole host graph: racks would be zero.
		{Instances: 1, Workers: 1, Requests: 1, Scenario: Scenario{Batch: 20},
			Spec: good.Spec},
		// Negative writer count.
		{Instances: 1, Workers: 2, Requests: 1, Scenario: Scenario{Batch: 1, Writers: -1},
			Spec: good.Spec},
		// Every worker a writer: nobody left to measure reads.
		{Instances: 1, Workers: 2, Requests: 1, Scenario: Scenario{Batch: 1, Writers: 2},
			Spec: good.Spec},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTargetHostSizes(t *testing.T) {
	n, h := TargetHostSizes(fleet.Spec{Kind: fleet.KindDeBruijn, M: 3, H: 4, K: 2})
	if n != 81 || h != 83 {
		t.Errorf("debruijn m=3 h=4: %d/%d, want 81/83", n, h)
	}
	n, h = TargetHostSizes(fleet.Spec{Kind: fleet.KindShuffle, H: 5, K: 1})
	if n != 32 || h != 33 {
		t.Errorf("shuffle h=5: %d/%d, want 32/33", n, h)
	}
}

func TestResultPercentile(t *testing.T) {
	res := Result{Latencies: []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}}
	cases := []struct {
		p    float64
		want time.Duration
	}{{50, 5}, {90, 9}, {100, 10}, {0, 1}}
	for _, c := range cases {
		if got := res.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := (Result{}).Percentile(99); got != 0 {
		t.Errorf("Percentile on empty result = %v, want 0", got)
	}
}

// TestPercentileEdgeCases covers the degenerate inputs: empty samples,
// a single sample (every p returns it), and the p=0 / p=100 extremes
// (the min and max, never out of range).
func TestPercentileEdgeCases(t *testing.T) {
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil, 50) = %v, want 0", got)
	}
	single := []time.Duration{42}
	for _, p := range []float64{0, 0.1, 50, 99, 99.9, 100} {
		if got := percentile(single, p); got != 42 {
			t.Errorf("single sample percentile(%v) = %v, want 42", p, got)
		}
	}
	many := []time.Duration{5, 10, 15, 20}
	if got := percentile(many, 0); got != 5 {
		t.Errorf("p0 = %v, want the minimum 5", got)
	}
	if got := percentile(many, 100); got != 20 {
		t.Errorf("p100 = %v, want the maximum 20", got)
	}
	// Lookup-side wrappers share the same core.
	res := Result{LookupLatencies: []time.Duration{7}}
	if got := res.LookupPercentile(99); got != 7 {
		t.Errorf("LookupPercentile(99) on one sample = %v, want 7", got)
	}
}

// TestRunScenarios drives every named scenario against an in-process
// daemon and checks the accounting: no transport errors, every
// operation measured, burst scenarios applying whole batches.
func TestRunScenarios(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			mgr := fleet.NewManager(fleet.Options{})
			ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
			defer ts.Close()
			res, err := Run(Config{
				Addr:      ts.URL,
				Instances: 2,
				Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
				Workers:   4,
				Requests:  300,
				Scenario:  sc,
				Seed:      3,
				IDPrefix:  "t-" + sc.Name,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%d errors: %+v", res.Errors, res)
			}
			if got := res.Ops(); got != 300 {
				t.Fatalf("ops = %d, want 300", got)
			}
			if len(res.Latencies) != 300 {
				t.Fatalf("latencies = %d, want 300", len(res.Latencies))
			}
			if res.Events != res.Batches*sc.Batch {
				t.Fatalf("events %d != batches %d x %d", res.Events, res.Batches, sc.Batch)
			}
			st := mgr.Stats()
			if int(st.Lookups) != res.Lookups || int(st.Batches) != res.Batches {
				t.Fatalf("daemon saw lookups/batches %d/%d, client measured %d/%d",
					st.Lookups, st.Batches, res.Lookups, res.Batches)
			}
			if len(res.LookupLatencies) != res.Lookups {
				t.Fatalf("lookup latencies = %d, lookups = %d", len(res.LookupLatencies), res.Lookups)
			}
		})
	}
}

// TestRunWriteStormRoleSplit pins the role-split contract: with W
// dedicated writers out of N workers, the write side is sustained
// bursts (every event op is an atomic batch) and the read side is pure
// lookups whose latencies are reported separately.
func TestRunWriteStormRoleSplit(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()
	const requests = 400
	res, err := Run(Config{
		Addr:      ts.URL,
		Instances: 2,
		Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
		Workers:   4,
		Requests:  requests,
		Scenario:  WriteStorm,
		Seed:      11,
		IDPrefix:  "t-storm-split",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	// 2 of 4 workers are writers, so about half the ops are event
	// transitions (accepted or rejected) and the other half lookups.
	writes := res.Batches + res.Rejected
	if writes != requests/2 || res.Lookups != requests/2 {
		t.Fatalf("role split: %d writes, %d lookups, want %d each", writes, res.Lookups, requests/2)
	}
	// Sustained bursts: every accepted transition carries a full batch.
	if res.Events != res.Batches*WriteStorm.Batch {
		t.Fatalf("events %d != batches %d x %d", res.Events, res.Batches, WriteStorm.Batch)
	}
	if len(res.LookupLatencies) != res.Lookups {
		t.Fatalf("lookup latencies = %d, lookups = %d", len(res.LookupLatencies), res.Lookups)
	}
	if p99 := res.LookupPercentile(99); p99 <= 0 {
		t.Fatalf("read p99 = %v under storm", p99)
	}
}
