package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DOTOptions customizes WriteDOT output.
type DOTOptions struct {
	Name           string             // graph name; default "G"
	HighlightNodes []int              // drawn filled
	HighlightEdges []Edge             // drawn bold (order-insensitive match)
	NodeLabels     func(u int) string // overrides Graph labels when non-nil
}

// WriteDOT renders the graph in Graphviz DOT format. This regenerates
// the paper's figures (Fig. 1, 2, 4) as publishable drawings.
func (g *Graph) WriteDOT(w io.Writer, opts DOTOptions) error {
	name := opts.Name
	if name == "" {
		name = "G"
	}
	hlNode := make(map[int]bool, len(opts.HighlightNodes))
	for _, u := range opts.HighlightNodes {
		hlNode[u] = true
	}
	hlEdge := make(map[Edge]bool, len(opts.HighlightEdges))
	for _, e := range opts.HighlightEdges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		hlEdge[e] = true
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %s {\n", name)
	for u := 0; u < g.n; u++ {
		label := g.Label(u)
		if opts.NodeLabels != nil {
			label = opts.NodeLabels(u)
		}
		attrs := fmt.Sprintf("label=%q", label)
		if hlNode[u] {
			attrs += ", style=filled, fillcolor=gray"
		}
		fmt.Fprintf(bw, "  n%d [%s];\n", u, attrs)
	}
	var err error
	g.EachEdge(func(u, v int) bool {
		if hlEdge[Edge{u, v}] {
			_, err = fmt.Fprintf(bw, "  n%d -- n%d [style=bold];\n", u, v)
		} else {
			_, err = fmt.Fprintf(bw, "  n%d -- n%d;\n", u, v)
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// WriteEdgeList writes the graph as a header line "n m" followed by one
// "u v" line per edge (u < v). The format round-trips with ReadEdgeList.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	var err error
	g.EachEdge(func(u, v int) bool {
		_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		return err == nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph.ReadEdgeList: empty input")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 2 {
		return nil, fmt.Errorf("graph.ReadEdgeList: bad header %q", sc.Text())
	}
	n, err := strconv.Atoi(header[0])
	if err != nil {
		return nil, fmt.Errorf("graph.ReadEdgeList: bad node count: %v", err)
	}
	m, err := strconv.Atoi(header[1])
	if err != nil {
		return nil, fmt.Errorf("graph.ReadEdgeList: bad edge count: %v", err)
	}
	b := NewBuilder(n)
	read := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("graph.ReadEdgeList: bad edge line %q", line)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph.ReadEdgeList: bad edge line %q: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph.ReadEdgeList: bad edge line %q: %v", line, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph.ReadEdgeList: edge (%d,%d) out of range [0,%d)", u, v, n)
		}
		b.AddEdge(u, v)
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	g := b.Build()
	if g.M() != m {
		return nil, fmt.Errorf("graph.ReadEdgeList: header claims %d edges, got %d distinct", m, g.M())
	}
	return g, nil
}
