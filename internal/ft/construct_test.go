package ft

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/debruijn"
	"ftnet/internal/num"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{2, 4, 2}).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Params{{1, 4, 2}, {2, 2, 1}, {2, 4, -1}, {2, 70, 0}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%+v should be invalid", p)
		}
	}
}

func TestParamsFormulas(t *testing.T) {
	p := Params{M: 3, H: 3, K: 2}
	if p.NTarget() != 27 || p.NHost() != 29 {
		t.Errorf("sizes: %d, %d", p.NTarget(), p.NHost())
	}
	if p.RMin() != -4 || p.RMax() != 6 {
		t.Errorf("r range: [%d, %d]", p.RMin(), p.RMax())
	}
	if p.DegreeBound() != 4*2*2+6 {
		t.Errorf("degree bound %d", p.DegreeBound())
	}
	if p.BlockSize() != 11 {
		t.Errorf("block size %d", p.BlockSize())
	}
	if p.String() != "B^2_{3,3}" {
		t.Errorf("String = %q", p.String())
	}
	p2 := Params{M: 2, H: 4, K: 3}
	if p2.RMin() != -3 || p2.RMax() != 4 || p2.DegreeBound() != 16 || p2.BlockSize() != 8 {
		t.Errorf("base-2 formulas wrong: %d %d %d %d", p2.RMin(), p2.RMax(), p2.DegreeBound(), p2.BlockSize())
	}
}

func TestK0IsTargetGraph(t *testing.T) {
	// B^0_{m,h} = B_{m,h} (the paper notes the construction degenerates).
	for _, p := range []Params{{2, 3, 0}, {2, 5, 0}, {3, 3, 0}, {4, 3, 0}} {
		ft := MustNew(p)
		db := debruijn.MustNew(p.Target())
		if !ft.Equal(db) {
			t.Errorf("%v != target %v", p, p.Target())
		}
	}
}

func TestTargetIsSubgraphOfHost(t *testing.T) {
	// The paper notes B_{2,h} is a subgraph of B^k_{2,h} under the
	// identity labeling; same for base m.
	for _, p := range []Params{{2, 3, 1}, {2, 4, 3}, {2, 5, 2}, {3, 3, 2}, {4, 3, 1}, {5, 3, 2}} {
		host := MustNew(p)
		target := debruijn.MustNew(p.Target())
		ok := true
		target.EachEdge(func(u, v int) bool {
			if !host.HasEdge(u, v) {
				t.Errorf("%v: target edge (%d,%d) missing from host", p, u, v)
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return
		}
	}
}

func TestNodeCountAndDegreeBound(t *testing.T) {
	// Corollaries 1 and 3: N+k nodes, degree at most 4(m-1)k + 2m.
	for m := 2; m <= 5; m++ {
		for h := 3; h <= 4; h++ {
			for k := 0; k <= 4; k++ {
				p := Params{M: m, H: h, K: k}
				g := MustNew(p)
				if g.N() != p.NHost() {
					t.Errorf("%v: n=%d, want %d", p, g.N(), p.NHost())
				}
				if g.MaxDegree() > p.DegreeBound() {
					t.Errorf("%v: degree %d exceeds bound %d", p, g.MaxDegree(), p.DegreeBound())
				}
			}
		}
	}
	// Deeper base-2 sweep (Corollary 1: degree <= 4k+4).
	for h := 3; h <= 8; h++ {
		for k := 0; k <= 6; k++ {
			p := Params{M: 2, H: h, K: k}
			g := MustNew(p)
			if g.MaxDegree() > 4*k+4 {
				t.Errorf("%v: degree %d > 4k+4 = %d", p, g.MaxDegree(), 4*k+4)
			}
		}
	}
}

func TestCorollary2Degree8(t *testing.T) {
	// Corollary 2: B^1_{2,h} has 2^h + 1 nodes and degree at most 8.
	for h := 3; h <= 9; h++ {
		p := Params{M: 2, H: h, K: 1}
		g := MustNew(p)
		if g.N() != (1<<h)+1 {
			t.Errorf("h=%d: n=%d", h, g.N())
		}
		if g.MaxDegree() > 8 {
			t.Errorf("h=%d: degree %d > 8", h, g.MaxDegree())
		}
	}
}

func TestCorollary4Degree6mMinus4(t *testing.T) {
	// Corollary 4: B^1_{m,h} has m^h + 1 nodes and degree at most 6m-4.
	for m := 2; m <= 6; m++ {
		p := Params{M: m, H: 3, K: 1}
		g := MustNew(p)
		if g.MaxDegree() > 6*m-4 {
			t.Errorf("m=%d: degree %d > 6m-4 = %d", m, g.MaxDegree(), 6*m-4)
		}
	}
}

func TestFig2B124(t *testing.T) {
	// Fig. 2: B^1_{2,4} has 17 nodes; every node x connects to the block
	// of 4 consecutive nodes starting at (2x-1) mod 17.
	p := Params{M: 2, H: 4, K: 1}
	g := MustNew(p)
	if g.N() != 17 {
		t.Fatalf("n = %d", g.N())
	}
	for x := 0; x < 17; x++ {
		for r := -1; r <= 2; r++ {
			y := num.X(x, 2, r, 17)
			if y != x && !g.HasEdge(x, y) {
				t.Errorf("edge (%d,%d) (r=%d) missing", x, y, r)
			}
		}
	}
	if g.MaxDegree() > 8 {
		t.Errorf("degree %d > 8", g.MaxDegree())
	}
}

func TestOutBlockConsecutive(t *testing.T) {
	p := Params{M: 2, H: 4, K: 2}
	s := p.NHost()
	for x := 0; x < s; x++ {
		block := OutBlock(x, p)
		if len(block) != p.BlockSize() {
			t.Fatalf("block size %d, want %d", len(block), p.BlockSize())
		}
		start := num.Mod(2*x-p.K, s)
		for i, v := range block {
			if v != num.Mod(start+i, s) {
				t.Errorf("block of %d not consecutive: %v", x, block)
				break
			}
		}
	}
}

func TestOutBlockEdgesExist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{M: rng.Intn(3) + 2, H: 3, K: rng.Intn(4)}
		g := MustNew(p)
		x := rng.Intn(p.NHost())
		for _, y := range OutBlock(x, p) {
			if y != x && !g.HasEdge(x, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHostConnected(t *testing.T) {
	for _, p := range []Params{{2, 3, 1}, {2, 4, 3}, {3, 3, 2}, {2, 6, 5}} {
		if !MustNew(p).IsConnected() {
			t.Errorf("%v should be connected", p)
		}
	}
}

func TestApplyHostLabels(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	g := MustNew(p)
	ApplyHostLabels(g, p)
	if g.Label(8) != "8" {
		t.Errorf("label = %q", g.Label(8))
	}
}
