package ft

import (
	"math/rand"
	"testing"

	"ftnet/internal/num"
)

func TestWitnessHistogramNoFaults(t *testing.T) {
	// With no faults phi is the identity; witnesses are s = r + tk.
	p := Params{M: 2, H: 4, K: 2}
	mp, _ := NewMapping(p.NTarget(), p.NHost(), nil)
	hist, err := WitnessHistogram(p, mp)
	if err != nil {
		t.Fatal(err)
	}
	// r in {0,1}, t in {0,1}: s in {0, 1, k, k+1} = {0,1,2,3}.
	for s := range hist {
		if s != 0 && s != 1 && s != p.K && s != p.K+1 {
			t.Errorf("unexpected witness %d with no faults", s)
		}
	}
	total := 0
	for _, c := range hist {
		total += c
	}
	// Directed non-loop target edges: 2*2^h - 2 self-loops.
	if total != 2*p.NTarget()-2 {
		t.Errorf("witness count %d, want %d", total, 2*p.NTarget()-2)
	}
}

func TestWitnessHistogramWithinRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		p := Params{M: rng.Intn(3) + 2, H: 3, K: rng.Intn(4) + 1}
		faults := num.RandomSubset(rng, p.NHost(), p.K)
		mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := WitnessHistogram(p, mp)
		if err != nil {
			t.Fatalf("%v faults=%v: %v", p, faults, err)
		}
		for s := range hist {
			if s < p.RMin() || s > p.RMax() {
				t.Fatalf("%v: witness %d outside [%d,%d]", p, s, p.RMin(), p.RMax())
			}
		}
	}
}

func TestWitnessExtremesAreReachable(t *testing.T) {
	// Both ends of the r-range must actually occur for SOME fault set —
	// the constructive companion to the A1 ablation. Consecutive-block
	// fault sets are the natural adversary; scan all blocks.
	p := Params{M: 2, H: 4, K: 3}
	sawMin, sawMax := false, false
	for start := 0; start < p.NHost(); start++ {
		faults := make([]int, p.K)
		for i := range faults {
			faults[i] = (start + i) % p.NHost()
		}
		mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
		if err != nil {
			t.Fatal(err)
		}
		hist, err := WitnessHistogram(p, mp)
		if err != nil {
			t.Fatal(err)
		}
		if hist[p.RMin()] > 0 {
			sawMin = true
		}
		if hist[p.RMax()] > 0 {
			sawMax = true
		}
	}
	if !sawMin {
		t.Errorf("witness never reached RMin=%d across block fault sets", p.RMin())
	}
	if !sawMax {
		t.Errorf("witness never reached RMax=%d across block fault sets", p.RMax())
	}
}

func TestWitnessHistogramSizeMismatch(t *testing.T) {
	p := Params{M: 2, H: 4, K: 2}
	mp, _ := NewMapping(8, 10, nil)
	if _, err := WitnessHistogram(p, mp); err == nil {
		t.Error("mismatched mapping accepted")
	}
}

func TestWithFaultIncremental(t *testing.T) {
	p := Params{M: 2, H: 4, K: 3}
	mp, err := NewMapping(p.NTarget(), p.NHost(), []int{5})
	if err != nil {
		t.Fatal(err)
	}
	nm, moved, err := mp.WithFault(10)
	if err != nil {
		t.Fatal(err)
	}
	if !nm.IsFaulty(10) || !nm.IsFaulty(5) {
		t.Error("fault sets wrong after WithFault")
	}
	// Old healthy list: 0..4,6..18 -> rank of 10 is 9; moved = 16-9 = 7.
	if moved != 7 {
		t.Errorf("moved = %d, want 7", moved)
	}
	// Errors.
	if _, _, err := nm.WithFault(10); err == nil {
		t.Error("duplicate fault accepted")
	}
	if _, _, err := nm.WithFault(99); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestWithFaultSpareMovesNothing(t *testing.T) {
	// Killing an unused spare (above every assigned slot) moves no one.
	p := Params{M: 2, H: 3, K: 2}
	mp, _ := NewMapping(p.NTarget(), p.NHost(), nil)
	_, moved, err := mp.WithFault(p.NHost() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("killing top spare moved %d targets", moved)
	}
}

func TestWithFaultSequenceMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	p := Params{M: 2, H: 5, K: 4}
	faults := num.RandomSubset(rng, p.NHost(), p.K)
	inc, err := NewMapping(p.NTarget(), p.NHost(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range faults {
		inc, _, err = inc.WithFault(f)
		if err != nil {
			t.Fatal(err)
		}
	}
	batch, err := NewMapping(p.NTarget(), p.NHost(), faults)
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < p.NTarget(); x++ {
		if inc.Phi(x) != batch.Phi(x) {
			t.Fatalf("incremental and batch mappings disagree at %d", x)
		}
	}
}
