package fleet

import (
	"container/list"
	"encoding/binary"
	"sort"
	"sync"

	"ftnet/internal/ft"
)

// Cache memoizes reconfiguration maps keyed by the canonical (sorted)
// fault set, so a fleet of instances that keeps seeing the same fault
// patterns resolves lookups without recomputing ft.NewMapping.
//
// It is sharded: the key hash picks one of N independently-locked
// shards, each with its own LRU list, so concurrent probes for
// different fault patterns do not serialize on a single mutex — the
// contention point a global LRU becomes under high instance counts.
// Within a shard, eviction is LRU and computation is single-flight:
// concurrent requests for the same missing key block on one
// computation instead of racing their own.
//
// Keys are fixed-width binary: each of nTarget, nHost, and the k
// sorted faults is one little-endian uint64 word — no strconv, no
// separators. The shard is picked by an inline FNV-1a over the same
// words (no hasher allocation), and the key bytes are built in a
// per-shard scratch buffer under the shard lock, probed with the
// map[string(bytes)] non-allocating form — a cache hit allocates
// nothing at all; only a miss materializes the key string.
type Cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key -> element whose Value is *cacheEntry
	scratch []byte                   // key-building buffer, reused under mu

	// Admission doorkeeper: a tiny counting filter over key hashes. A
	// missing pattern is only admitted to the LRU once the filter has
	// seen it before, so a storm of one-off fault patterns computes
	// its mappings without washing the recurring working set out of
	// the cache. Counters age by halving every doorAge misses.
	admit   bool
	door    [doorSlots]uint8
	doorAge uint32
	doorOps uint32

	hits              uint64
	misses            uint64
	evictions         uint64
	admissionRejected uint64
}

// doorSlots is the doorkeeper's counter array size per shard (a power
// of two; two probes per key).
const doorSlots = 512

// DefaultDoorAgePeriod is the doorkeeper reset interval — misses per
// shard between counter halvings — used when CacheConfig leaves
// DoorAgePeriod zero. It bounds how long a pattern stays "seen": too
// short and a recurring pattern is forgotten before it returns
// (re-rejected, recomputed); longer periods let the counters fill and
// wave repeat offenders through sooner. Swept under the cluster
// scenario's fault-pattern churn (TestCacheDoorAgeSweep, capacities
// 8–48): hit rate is monotone in the period and plateaus by 4096 at
// every capacity (128 costs 1–4% hit rate re-rejecting returning
// patterns; 512 still costs ~1%), because even a "one-off" fault set
// is looked up repeatedly while it is an instance's current state —
// admission that forgets too fast hurts exactly the working set it
// exists to protect. 4096 takes the plateau while keeping the
// counters bounded against a genuine unique-pattern flood.
const DefaultDoorAgePeriod = 4096

// admitted reports whether the key hash has been seen before, and
// records this sighting. Caller holds the shard lock.
func (s *cacheShard) admitted(h uint64) bool {
	if !s.admit {
		return true
	}
	i1 := h & (doorSlots - 1)
	i2 := (h >> 32) & (doorSlots - 1)
	seen := s.door[i1] > 0 && s.door[i2] > 0
	if s.door[i1] < 255 {
		s.door[i1]++
	}
	if s.door[i2] < 255 {
		s.door[i2]++
	}
	if s.doorOps++; s.doorOps >= s.doorAge {
		s.doorOps = 0
		for i := range s.door {
			s.door[i] /= 2
		}
	}
	return seen
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed once m/err are set
	m    *ft.Mapping
	err  error
}

// DefaultCacheSize is the total capacity used when a Manager is
// created without an explicit one. With k faults out of n+k hosts the
// keyspace is astronomical, but real fleets revisit a small working
// set of patterns (the same racks fail, the same repairs roll out).
const DefaultCacheSize = 4096

// DefaultCacheShards is the shard count used when none is given: a
// power of two comfortably above typical core counts.
const DefaultCacheShards = 16

// NewCache returns an empty sharded cache holding roughly capacity
// mappings in total (capacity <= 0 selects DefaultCacheSize), spread
// over DefaultCacheShards shards.
func NewCache(capacity int) *Cache {
	return NewCacheShards(capacity, DefaultCacheShards)
}

// NewCacheShards returns an empty cache with an explicit shard count
// (shards <= 0 selects DefaultCacheShards; 1 gives the exact
// single-LRU semantics). The capacity is split evenly across shards,
// rounding up so every shard holds at least one entry.
func NewCacheShards(capacity, shards int) *Cache {
	return NewCacheConfig(CacheConfig{Capacity: capacity, Shards: shards})
}

// CacheConfig configures NewCacheConfig.
type CacheConfig struct {
	Capacity int // total mappings held (<= 0 selects DefaultCacheSize)
	Shards   int // shard count (<= 0 selects DefaultCacheShards)
	// Admission turns the per-shard doorkeeper on: a fault pattern is
	// admitted to the LRU only once it has been seen before, so
	// one-off patterns are computed but not cached. First sightings
	// skip the single-flight dedup too (there is no entry to rally
	// around) — the trade the hit-rate protection buys.
	Admission bool
	// DoorAgePeriod is the doorkeeper reset interval: misses per shard
	// between counter halvings (<= 0 selects DefaultDoorAgePeriod).
	DoorAgePeriod int
}

// NewCacheConfig returns an empty cache with the given configuration.
func NewCacheConfig(cfg CacheConfig) *Cache {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCacheSize
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultCacheShards
	}
	if cfg.DoorAgePeriod <= 0 {
		cfg.DoorAgePeriod = DefaultDoorAgePeriod
	}
	perShard := (cfg.Capacity + cfg.Shards - 1) / cfg.Shards
	c := &Cache{shards: make([]cacheShard, cfg.Shards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:     perShard,
			admit:   cfg.Admission,
			doorAge: uint32(cfg.DoorAgePeriod),
			ll:      list.New(),
			items:   make(map[string]*list.Element, perShard),
		}
	}
	return c
}

// FNV-1a 64-bit constants, inlined so hashing a key allocates nothing.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashWord folds one 8-byte little-endian word into an FNV-1a state,
// byte by byte, matching a hash over the appendKey encoding.
func hashWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}

// keyHash hashes the canonical request without building the key bytes;
// faults must already be sorted.
func keyHash(nTarget, nHost int, sortedFaults []int) uint64 {
	h := hashWord(uint64(fnvOffset64), uint64(nTarget))
	h = hashWord(h, uint64(nHost))
	for _, f := range sortedFaults {
		h = hashWord(h, uint64(f))
	}
	return h
}

// appendKey builds the canonical fixed-width binary key: one
// little-endian uint64 word per value. Word widths are fixed, so no
// separators are needed for the encoding to be prefix-free within one
// (nTarget, nHost) arity, and the leading sizes disambiguate the rest.
func appendKey(b []byte, nTarget, nHost int, sortedFaults []int) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(nTarget))
	b = binary.LittleEndian.AppendUint64(b, uint64(nHost))
	for _, f := range sortedFaults {
		b = binary.LittleEndian.AppendUint64(b, uint64(f))
	}
	return b
}

// Get returns the reconfiguration map for the given fault set,
// computing and caching it on a miss. An unsorted set is canonicalized
// on a copy first, so equal sets always share one cache entry; invalid
// sets (ft.NewMapping rejects them) return the error and are not
// cached. The hit path performs zero allocations.
func (c *Cache) Get(nTarget, nHost int, sortedFaults []int) (*ft.Mapping, error) {
	if !sort.IntsAreSorted(sortedFaults) {
		cp := make([]int, len(sortedFaults))
		copy(cp, sortedFaults)
		sort.Ints(cp)
		sortedFaults = cp
	}
	h := keyHash(nTarget, nHost, sortedFaults)
	s := &c.shards[h%uint64(len(c.shards))]

	s.mu.Lock()
	s.scratch = appendKey(s.scratch[:0], nTarget, nHost, sortedFaults)
	if elem, ok := s.items[string(s.scratch)]; ok { // non-allocating probe
		s.ll.MoveToFront(elem)
		s.hits++
		e := elem.Value.(*cacheEntry)
		s.mu.Unlock()
		<-e.done // instant unless another goroutine is mid-compute
		return e.m, e.err
	}
	s.misses++
	if !s.admitted(h) {
		// First sighting: compute without occupying an LRU slot. If the
		// pattern recurs, the doorkeeper has seen it and the next miss
		// caches it.
		s.admissionRejected++
		s.mu.Unlock()
		return ft.NewMapping(nTarget, nHost, sortedFaults)
	}
	key := string(s.scratch) // the one key allocation, miss path only
	e := &cacheEntry{key: key, done: make(chan struct{})}
	elem := s.ll.PushFront(e)
	s.items[key] = elem
	s.evictLocked()
	s.mu.Unlock()

	// Compute outside the lock; waiters block on e.done, not on s.mu.
	// NewMapping copies its argument, so the caller keeps ownership of
	// sortedFaults.
	e.m, e.err = ft.NewMapping(nTarget, nHost, sortedFaults)
	close(e.done)

	if e.err != nil {
		// Do not let invalid fault sets occupy cache slots.
		s.mu.Lock()
		if cur, ok := s.items[key]; ok && cur.Value.(*cacheEntry) == e {
			s.ll.Remove(cur)
			delete(s.items, key)
		}
		s.mu.Unlock()
	}
	return e.m, e.err
}

// evictLocked drops least-recently-used completed entries until the
// shard fits its capacity. In-flight entries are skipped so a waiter
// never sees its entry vanish mid-compute.
func (s *cacheShard) evictLocked() {
	for elem := s.ll.Back(); elem != nil && s.ll.Len() > s.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.done:
			s.ll.Remove(elem)
			delete(s.items, e.key)
			s.evictions++
		default: // still computing; leave it
		}
		elem = prev
	}
}

// CacheShardStats is one shard's slice of the cache counters.
// AdmissionRejected counts misses the doorkeeper served without
// caching (first sightings of a pattern).
type CacheShardStats struct {
	Size              int    `json:"size"`
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	Evictions         uint64 `json:"evictions"`
	AdmissionRejected uint64 `json:"admission_rejected,omitempty"`
}

// CacheStats is a point-in-time snapshot of cache effectiveness:
// fleet-wide aggregates plus the per-shard breakdown (a hot shard is
// the signature of a skewed fault-pattern working set).
type CacheStats struct {
	Size              int               `json:"size"`
	Capacity          int               `json:"capacity"`
	Hits              uint64            `json:"hits"`
	Misses            uint64            `json:"misses"`
	Evictions         uint64            `json:"evictions"`
	AdmissionRejected uint64            `json:"admission_rejected,omitempty"`
	Shards            []CacheShardStats `json:"shards,omitempty"`
}

// Stats returns a snapshot of the cache counters, aggregated and per
// shard. Shards are locked one at a time, so the aggregate is only
// approximately instantaneous under concurrent load.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Shards: make([]CacheShardStats, len(c.shards))}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		sh := CacheShardStats{
			Size:              s.ll.Len(),
			Hits:              s.hits,
			Misses:            s.misses,
			Evictions:         s.evictions,
			AdmissionRejected: s.admissionRejected,
		}
		st.Capacity += s.cap
		s.mu.Unlock()
		st.Shards[i] = sh
		st.Size += sh.Size
		st.Hits += sh.Hits
		st.Misses += sh.Misses
		st.Evictions += sh.Evictions
		st.AdmissionRejected += sh.AdmissionRejected
	}
	return st
}
