package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Build()
}

func complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 2) // self-loop: ignored per paper convention
	g := b.Build()
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self-loop contributed degree: %d", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge (0,1) missing")
	}
	if g.HasEdge(2, 2) {
		t.Error("self-loop should not exist")
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(2, 1)
	g := b.Build()
	nbrs := g.Neighbors(2)
	want := []int{0, 1, 3, 4}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nbrs, want)
		}
	}
}

func TestDegreeStats(t *testing.T) {
	g := complete(5)
	if g.MaxDegree() != 4 || g.MinDegree() != 4 {
		t.Errorf("K5 degrees: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	if g.AvgDegree() != 4 {
		t.Errorf("K5 avg degree = %f", g.AvgDegree())
	}
	if g.M() != 10 {
		t.Errorf("K5 edges = %d", g.M())
	}
	h := g.DegreeHistogram()
	if h[4] != 5 || len(h) != 1 {
		t.Errorf("K5 degree histogram = %v", h)
	}
}

func TestEdgesAndEachEdge(t *testing.T) {
	g := cycle(4)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("C4 edges = %v", edges)
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge %v not normalized", e)
		}
	}
	count := 0
	g.EachEdge(func(u, v int) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop failed: %d", count)
	}
}

func TestEqual(t *testing.T) {
	if !cycle(5).Equal(cycle(5)) {
		t.Error("identical cycles not equal")
	}
	if cycle(5).Equal(path(5)) {
		t.Error("C5 equal to P5")
	}
	if cycle(5).Equal(cycle(6)) {
		t.Error("C5 equal to C6")
	}
}

func TestLabels(t *testing.T) {
	g := path(3)
	if g.Label(1) != "1" {
		t.Errorf("default label = %q", g.Label(1))
	}
	g.SetLabel(1, "x")
	if g.Label(1) != "x" {
		t.Errorf("label = %q", g.Label(1))
	}
}

func TestInduced(t *testing.T) {
	g := cycle(6)
	sub, newToOld, err := g.Induced([]int{0, 1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Nodes {0,1,2,5} of C6 keep edges 0-1, 1-2, 5-0 -> path 5-0-1-2.
	if sub.N() != 4 || sub.M() != 3 {
		t.Fatalf("induced = %v", sub)
	}
	if newToOld[0] != 0 || newToOld[3] != 5 {
		t.Errorf("newToOld = %v", newToOld)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || !sub.HasEdge(0, 3) {
		t.Error("induced edges wrong")
	}
}

func TestInducedErrors(t *testing.T) {
	g := cycle(4)
	if _, _, err := g.Induced([]int{0, 0}); err == nil {
		t.Error("duplicate nodes should error")
	}
	if _, _, err := g.Induced([]int{0, 9}); err == nil {
		t.Error("out-of-range node should error")
	}
}

func TestInducedByExclusion(t *testing.T) {
	g := complete(5)
	sub, newToOld, err := g.InducedByExclusion([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 4 || sub.M() != 6 {
		t.Errorf("K5 minus a node: n=%d m=%d", sub.N(), sub.M())
	}
	for _, old := range newToOld {
		if old == 2 {
			t.Error("excluded node still present")
		}
	}
}

func TestRelabel(t *testing.T) {
	g := path(3) // 0-1-2
	h, err := g.Relabel([]int{2, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !h.HasEdge(2, 1) || !h.HasEdge(1, 0) || h.HasEdge(0, 2) {
		t.Error("relabel wrong")
	}
	if _, err := g.Relabel([]int{0, 0, 1}); err == nil {
		t.Error("non-permutation should error")
	}
	if _, err := g.Relabel([]int{0, 1}); err == nil {
		t.Error("short permutation should error")
	}
}

func TestUnionAndSubgraph(t *testing.T) {
	u := Union(path(4), cycle(4))
	if u.M() != 4 {
		t.Errorf("union edges = %d, want 4", u.M())
	}
	if !path(4).IsSubgraphOf(cycle(4)) {
		t.Error("P4 should be subgraph of C4")
	}
	if cycle(4).IsSubgraphOf(path(4)) {
		t.Error("C4 is not a subgraph of P4")
	}
	if complete(5).IsSubgraphOf(complete(4)) {
		t.Error("bigger graph cannot be subgraph")
	}
}

func TestCheckEmbedding(t *testing.T) {
	p := path(3)
	c := cycle(5)
	if err := CheckEmbedding(p, c, []int{0, 1, 2}); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
	if err := CheckEmbedding(p, c, []int{0, 1, 1}); err == nil {
		t.Error("non-injective accepted")
	}
	if err := CheckEmbedding(p, c, []int{0, 2, 4}); err == nil {
		t.Error("non-edge mapping accepted")
	}
	if err := CheckEmbedding(p, c, []int{0, 1}); err == nil {
		t.Error("short phi accepted")
	}
	if err := CheckEmbedding(p, c, []int{0, 1, 9}); err == nil {
		t.Error("out-of-range phi accepted")
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		b := NewBuilder(n)
		for e := 0; e < n*2; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g := b.Build()
		// Handshake lemma and neighbor symmetry.
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
