package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

// readBufSize is the per-connection read buffer; it is also the
// natural upper bound on how many queued requests one drain pass can
// see without another syscall.
const readBufSize = 64 << 10

// maxCoalesce caps how many response bytes accumulate before the
// server flushes even though more requests are queued, bounding both
// memory and the latency of the first response in a batch.
const maxCoalesce = 256 << 10

// ServerOptions tunes NewServer.
type ServerOptions struct {
	// ReadOnly sets the manager's initial write posture: ApplyBatch is
	// rejected with StatusReadOnly, mirroring the HTTP plane's 403.
	// The posture is consulted per request on the manager, so a
	// promotion (POST /v1/promote) opens the RPC plane for writes too,
	// with no rewiring.
	ReadOnly bool
	// Metrics, when non-nil, is the registry the RPC plane's
	// histograms, byte counters and connection gauge land in (pass the
	// manager's so /metrics and /v1/stats cover both planes). Nil
	// creates a private one.
	Metrics *obs.Registry
}

// Server serves the binary RPC plane over a fleet manager. Each
// accepted connection gets one goroutine that reads frames, handles
// them against the manager, and coalesces all responses for the
// requests drained in one read pass into a single write — the
// log-round batching that makes a pipelining client pay ~one syscall
// pair per batch instead of per request.
type Server struct {
	mgr *fleet.Manager

	lookupHist  *obs.Histogram
	batchHist   *obs.Histogram
	applyHist   *obs.Histogram
	flushFrames *obs.Histogram
	bytesIn     *obs.Counter
	bytesOut    *obs.Counter
	requests    *obs.Counter
	flushes     *obs.Counter
	connGauge   *obs.Gauge

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer builds a server over mgr. Call Serve with a listener to
// start accepting.
func NewServer(mgr *fleet.Manager, opts ServerOptions) *Server {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.New()
	}
	opHist := reg.HistogramVec("ftnet_rpc_op_seconds",
		"RPC-plane handling latency by operation.", "op")
	if opts.ReadOnly {
		mgr.SetReadOnly(true)
	}
	return &Server{
		mgr:        mgr,
		lookupHist: opHist.With("lookup"),
		batchHist:  opHist.With("lookup_batch"),
		applyHist:  opHist.With("apply_batch"),
		bytesIn: reg.Counter("ftnet_rpc_bytes_in_total",
			"Bytes received on the RPC plane, frame headers included."),
		bytesOut: reg.Counter("ftnet_rpc_bytes_out_total",
			"Bytes sent on the RPC plane, frame headers included."),
		requests: reg.Counter("ftnet_rpc_requests_total",
			"RPC requests handled."),
		flushes: reg.Counter("ftnet_rpc_flushes_total",
			"Coalesced response writes (requests/flushes is the achieved batching factor)."),
		// The histogram's unit is frames, not seconds: each coalesced
		// write observes how many response frames it carried, so the
		// distribution of achieved log-round batching is visible, not
		// just its mean.
		flushFrames: reg.Histogram("ftnet_rpc_flush_frames",
			"Response frames per coalesced write (unit: frames — the log-round batching factor distribution)."),
		connGauge: reg.Gauge("ftnet_rpc_connections",
			"RPC connections currently open."),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// Serve accepts connections on ln until Close (or a listener error)
// and serves each on its own goroutine. It returns nil after Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server closed")
	}
	s.lns[ln] = struct{}{}
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			delete(s.lns, ln)
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// Close stops the listeners and hangs up every open connection.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
		delete(s.lns, ln)
	}
	for nc := range s.conns {
		nc.Close()
		delete(s.conns, nc)
	}
	s.mu.Unlock()
	return nil
}

// Shutdown drains the server gracefully: listeners stop accepting, and
// every open connection is nudged with an already-expired read deadline
// — the serve loop finishes handling (and flushes responses for) every
// request it has already read, then exits on its next blocking read
// instead of being cut mid-frame. Connections still open when ctx
// expires are closed hard, and the context's error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
		delete(s.lns, ln)
	}
	for nc := range s.conns {
		nc.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	ticker := time.NewTicker(5 * time.Millisecond)
	defer ticker.Stop()
	for {
		s.mu.Lock()
		n := len(s.conns)
		s.mu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			s.Close()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func (s *Server) forget(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}

// srvConn is the per-connection state: the pooled receive buffer, the
// chunked response queue, and the decode scratch slices, so a
// steady-state Lookup handles with zero allocations.
type srvConn struct {
	s      *Server
	in     []byte
	wq     writeQueue
	chunks [][]byte
	vecs   net.Buffers
	xs     []int
	phis   []int
	events []fleet.Event
}

func (s *Server) serveConn(nc net.Conn) {
	defer nc.Close()
	defer s.forget(nc)
	s.connGauge.Add(1)
	defer s.connGauge.Add(-1)
	c := &srvConn{s: s}
	defer func() {
		// Recirculate the connection's pooled buffers: the receive
		// buffer and whatever the write queue still holds (a failed
		// flush leaves chunks taken; a mid-coalesce hangup leaves them
		// queued).
		putBuf(c.in)
		c.chunks, _, _ = c.wq.take(c.chunks)
		recycle(c.chunks)
	}()
	br := bufio.NewReaderSize(nc, readBufSize)
	var hdr [frameHeaderSize]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if size > MaxFrame {
			return
		}
		c.in = growRecv(c.in, int(size))
		if _, err := io.ReadFull(br, c.in); err != nil {
			return
		}
		if crc32.Checksum(c.in, castagnoli) != want {
			return
		}
		s.bytesIn.Add(frameHeaderSize + uint64(size))
		mark := c.wq.mark()
		out, ok := c.handle(c.in, c.wq.active)
		if !ok {
			// A malformed payload is a broken or hostile peer, not a bad
			// argument: hang up rather than guess at a sequence number to
			// answer on.
			return
		}
		// handle framed (and sealed) the response itself via appendOK;
		// the queue only needs the accounting and chunk rotation.
		c.wq.sealAt(out, mark)
		s.requests.Inc()
		// The log-round drain: answer every request already queued on
		// this connection before paying for a write, so a pipelining
		// client's whole in-flight window shares one syscall pair —
		// and the queued chunks leave as one vectored write (writev),
		// never re-copied into a contiguous staging buffer.
		if br.Buffered() > 0 && c.wq.queued < maxCoalesce {
			continue
		}
		chunks, bytes, frames := c.wq.take(c.chunks)
		err := writeBuffers(nc, &c.vecs, chunks)
		recycle(chunks)
		c.chunks = chunks
		if err != nil {
			return
		}
		s.bytesOut.Add(uint64(bytes))
		s.flushes.Inc()
		s.flushFrames.Observe(time.Duration(frames))
	}
}

// handle decodes one request payload, executes it against the manager,
// and appends the framed response to out. It reports ok=false only for
// payloads that don't parse far enough to answer (the caller hangs
// up); application failures become non-OK responses.
func (c *srvConn) handle(payload, out []byte) ([]byte, bool) {
	d, v, t, seq, id, err := decodeHeader(payload)
	if err != nil {
		return out, false
	}
	start := time.Now()
	switch t {
	case MsgLookup:
		x, err := d.intVal()
		if err != nil || !d.done() {
			return out, false
		}
		phi, epoch, lerr := c.s.mgr.LookupEpochBytes(id, x)
		if lerr != nil {
			out = c.appendError(out, v, t, seq, lerr)
		} else {
			out = c.appendOK(out, Response{Version: v, Type: t, Seq: seq, Phi: phi, Epoch: epoch})
		}
		c.s.lookupHist.Observe(time.Since(start))
	case MsgLookupBatch:
		n, err := d.count()
		if err != nil {
			return out, false
		}
		if cap(c.xs) < n {
			c.xs = make([]int, n)
			c.phis = make([]int, n)
		}
		c.xs, c.phis = c.xs[:n], c.phis[:n]
		for i := range c.xs {
			if c.xs[i], err = d.intVal(); err != nil {
				return out, false
			}
		}
		if !d.done() {
			return out, false
		}
		epoch, lerr := c.s.mgr.LookupBatchBytes(id, c.xs, c.phis)
		if lerr != nil {
			out = c.appendError(out, v, t, seq, lerr)
		} else {
			out = c.appendOK(out, Response{Version: v, Type: t, Seq: seq, Epoch: epoch, Phis: c.phis})
		}
		c.s.batchHist.Observe(time.Since(start))
	case MsgApplyBatch:
		n, err := d.count()
		if err != nil {
			return out, false
		}
		if cap(c.events) < n {
			c.events = make([]fleet.Event, n)
		}
		c.events = c.events[:n]
		for i := range c.events {
			if c.events[i], err = d.event(); err != nil {
				return out, false
			}
		}
		if !d.done() {
			return out, false
		}
		if res, aerr := c.s.mgr.EventBatchBytes(id, c.events); aerr != nil {
			out = c.appendError(out, v, t, seq, aerr)
		} else {
			out = c.appendOK(out, Response{Version: v, Type: t, Seq: seq, Result: res})
		}
		c.s.applyHist.Observe(time.Since(start))
	default:
		return out, false
	}
	return out, true
}

// appendOK frames an OK response. The encode cannot fail for
// server-produced values (phis and result fields are non-negative by
// construction); a failure would indicate a server bug, answered by
// hanging up via the empty-frame path below.
func (c *srvConn) appendOK(out []byte, resp Response) []byte {
	mark := len(out)
	out = appendFrameHeader(out)
	body, err := AppendResponse(out, resp)
	if err != nil {
		return out[:mark]
	}
	sealFrame(body, mark)
	return body
}

func (c *srvConn) appendError(out []byte, v byte, t MsgType, seq uint64, err error) []byte {
	st := statusOf(err)
	resp := Response{Version: v, Type: t, Seq: seq, Status: st, Msg: err.Error()}
	if st == StatusWrongShard {
		if v < VersionShard {
			// The requester predates StatusWrongShard; a byte it can't
			// decode would kill its connection. Downgrade to the posture
			// status it does know, folding the owner URL into the message
			// so an operator (or log line) still sees where the instance
			// went.
			resp.Status = StatusReadOnly
			if owner := fleet.WrongShardOwner(err); owner != "" {
				resp.Msg += " (owner " + owner + ")"
			}
		} else {
			resp.Owner = fleet.WrongShardOwner(err)
		}
	}
	return c.appendOK(out, resp)
}
