// Package ascend runs normal hypercube algorithms (the Ascend/Descend
// class of Preparata–Vuillemin, which the paper cites as the workload
// constant-degree networks must support) on shuffle-exchange machines —
// healthy, faulted, or reconfigured onto a fault-tolerant host.
//
// The classic emulation (Stone's perfect shuffle): data for logical
// address a sits at node a; each of h rounds performs
//
//	exchange:  the values at x and x^1 are combined pairwise, and
//	shuffle:   every value moves along the shuffle edge x -> rot(x).
//
// After h rounds every hypercube dimension has been touched exactly once
// and all data is back home, having used only shuffle-exchange edges.
// Total cost: 2h communication cycles, independent of input — unless an
// edge used by the schedule is missing or a node is dead, in which case
// the machine cannot run the algorithm at all (the paper's motivation
// for fault tolerance).
package ascend

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Op combines the pair of values meeting across an exchange edge.
// It receives the value at the even node (low) and at the odd node
// (high) and returns their replacements.
type Op func(low, high int64) (newLow, newHigh int64)

// Sum makes both nodes hold the pairwise sum (after h rounds every node
// holds the total).
func Sum(a, b int64) (int64, int64) { s := a + b; return s, s }

// MaxOp makes both nodes hold the max (after h rounds: global max).
func MaxOp(a, b int64) (int64, int64) {
	if a > b {
		return a, a
	}
	return b, b
}

// MinMax sorts the pair (compare-exchange), the primitive of
// bitonic-style algorithms.
func MinMax(a, b int64) (int64, int64) {
	if a > b {
		return b, a
	}
	return a, b
}

// Host is the physical machine an SE algorithm runs on. Logical SE node
// x executes on physical node Loc[x]; Dead marks failed physical nodes.
// For a healthy machine, Loc is the identity and Dead is all-false.
type Host struct {
	G    *graph.Graph
	Loc  []int
	Dead []bool
}

// NewHealthy returns a host that is the identity mapping onto g.
func NewHealthy(g *graph.Graph) *Host {
	loc := make([]int, g.N())
	for i := range loc {
		loc[i] = i
	}
	return &Host{G: g, Loc: loc, Dead: make([]bool, g.N())}
}

// link reports whether logical nodes x and y can communicate in one
// cycle: both alive and physically adjacent.
func (hst *Host) link(x, y int) error {
	px, py := hst.Loc[x], hst.Loc[y]
	if hst.Dead[px] {
		return fmt.Errorf("ascend: node %d (hosting %d) is dead", px, x)
	}
	if hst.Dead[py] {
		return fmt.Errorf("ascend: node %d (hosting %d) is dead", py, y)
	}
	if !hst.G.HasEdge(px, py) {
		return fmt.Errorf("ascend: no physical link (%d,%d) for logical (%d,%d)", px, py, x, y)
	}
	return nil
}

// Result reports a completed run.
type Result struct {
	Values []int64 // final value per logical address
	Cycles int     // communication cycles consumed (2h on success)
}

// RunSE executes h rounds of (exchange+combine, shuffle) over 2^h
// values on the host. It fails — identifying the first broken round —
// when the schedule needs a dead node or missing edge, which is exactly
// what happens on an unprotected machine with faults.
func RunSE(h int, hst *Host, vals []int64, op Op) (Result, error) {
	if h < 1 {
		return Result{}, fmt.Errorf("ascend: h=%d must be >= 1", h)
	}
	n := num.MustIPow(2, h)
	if len(vals) != n {
		return Result{}, fmt.Errorf("ascend: %d values for %d nodes", len(vals), n)
	}
	if len(hst.Loc) != n {
		return Result{}, fmt.Errorf("ascend: host maps %d logical nodes, want %d", len(hst.Loc), n)
	}
	data := make([]int64, n)
	copy(data, vals)
	next := make([]int64, n)
	cycles := 0
	for round := 0; round < h; round++ {
		// Exchange phase: pairwise combine across every exchange edge.
		for x := 0; x < n; x += 2 {
			if err := hst.link(x, x^1); err != nil {
				return Result{}, fmt.Errorf("round %d exchange: %w", round, err)
			}
			data[x], data[x^1] = op(data[x], data[x^1])
		}
		cycles++
		// Shuffle phase: value at x moves to rot(x). The two fixed points
		// (all-zeros, all-ones) keep their value without communicating.
		for x := 0; x < n; x++ {
			y := num.RotLeft(x, 2, h)
			if y != x {
				if err := hst.link(x, y); err != nil {
					return Result{}, fmt.Errorf("round %d shuffle: %w", round, err)
				}
			}
			next[y] = data[x]
		}
		data, next = next, data
		cycles++
	}
	return Result{Values: data, Cycles: cycles}, nil
}

// SurvivingFraction runs the schedule on a host with dead nodes,
// skipping broken pairwise operations instead of failing, and returns
// the fraction of logical addresses whose final value matches the
// reference (fault-free) run. It quantifies how much of the computation
// an unprotected machine can still complete.
func SurvivingFraction(h int, hst *Host, vals []int64, op Op) (float64, error) {
	n := num.MustIPow(2, h)
	if len(vals) != n {
		return 0, fmt.Errorf("ascend: %d values for %d nodes", len(vals), n)
	}
	ref, err := RunSE(h, NewHealthy(hostSizeGraph(hst.G, n)), vals, op)
	if err != nil {
		return 0, err
	}
	data := make([]int64, n)
	copy(data, vals)
	next := make([]int64, n)
	valid := make([]bool, n)
	nextValid := make([]bool, n)
	for i := range valid {
		valid[i] = !hst.Dead[hst.Loc[i]]
	}
	for round := 0; round < h; round++ {
		for x := 0; x < n; x += 2 {
			if hst.link(x, x^1) == nil && valid[x] && valid[x^1] {
				data[x], data[x^1] = op(data[x], data[x^1])
			} else {
				valid[x], valid[x^1] = false, false
			}
		}
		for x := 0; x < n; x++ {
			y := num.RotLeft(x, 2, h)
			ok := valid[x]
			if y != x && hst.link(x, y) != nil {
				ok = false
			}
			next[y] = data[x]
			nextValid[y] = ok
		}
		data, next = next, data
		valid, nextValid = nextValid, valid
	}
	good := 0
	for i := range data {
		if valid[i] && data[i] == ref.Values[i] {
			good++
		}
	}
	return float64(good) / float64(n), nil
}

// hostSizeGraph returns a graph with at least n nodes for reference
// runs: the SE edges are what RunSE checks, so a complete graph on n
// nodes is a safe universal host.
func hostSizeGraph(_ *graph.Graph, n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}
