package num

import (
	"fmt"
	"math/rand"
)

// Binomial returns C(n, k), or an error on overflow or invalid input.
func Binomial(n, k int) (int, error) {
	if n < 0 || k < 0 {
		return 0, fmt.Errorf("num.Binomial: negative argument C(%d,%d)", n, k)
	}
	if k > n {
		return 0, nil
	}
	if k > n-k {
		k = n - k
	}
	result := 1
	for i := 1; i <= k; i++ {
		// Multiply before dividing; the running product C(n-k+i, i) is
		// always integral after dividing by i.
		r, ok := mulCheck(result, n-k+i)
		if !ok {
			return 0, fmt.Errorf("num.Binomial: C(%d,%d) overflows int", n, k+n-2*k)
		}
		result = r / i
	}
	return result, nil
}

// Combinations invokes fn once for every k-element subset of [0, n), in
// lexicographic order. The slice passed to fn is reused between calls;
// fn must copy it if it needs to retain it. If fn returns false the
// enumeration stops early. Combinations returns the number of subsets
// visited.
func Combinations(n, k int, fn func(subset []int) bool) int {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	visited := 0
	if k == 0 {
		visited++
		fn(nil)
		return visited
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		visited++
		if !fn(idx) {
			return visited
		}
		// Advance to the next combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return visited
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// RandomSubset returns a sorted random k-element subset of [0, n) drawn
// uniformly, using rng. It panics if k > n or either is negative.
func RandomSubset(rng *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("num.RandomSubset: invalid (n=%d, k=%d)", n, k))
	}
	// Floyd's algorithm: O(k) expected insertions, exact uniformity.
	chosen := make(map[int]struct{}, k)
	for j := n - k; j < n; j++ {
		t := rng.Intn(j + 1)
		if _, dup := chosen[t]; dup {
			chosen[j] = struct{}{}
		} else {
			chosen[t] = struct{}{}
		}
	}
	out := make([]int, 0, k)
	for v := range chosen {
		out = append(out, v)
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	// Insertion sort: subsets here are small (k nodes); avoids pulling in
	// sort for a hot path used millions of times in randomized verification.
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
