package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ftnet/internal/commit"
	"ftnet/internal/journal"
)

// This file is the streaming half of the HTTP surface: GET /v1/watch
// serves the commit stream as newline-delimited JSON. Each line is one
// WatchEntry — a committed transition with its fleet-wide sequence
// number — or a heartbeat. The stream is resumable: pass ?from=<seq>
// to continue after the last entry you processed; catch-up comes from
// the journal (or the installed checkpoint) and hands off to the live
// tail with no gap. Followers (ftnetd -follow) are just persistent
// clients of this endpoint that verify and re-commit every record.

// WatchEntry is one NDJSON line of the watch stream: either a
// committed entry (Op set) or a heartbeat (Heartbeat true, Seq the
// last sequence number sent). Entry seqs are non-decreasing; ordinary
// entries step by exactly +1, and a jump means the gap was compacted
// away — the client must resynchronize from the checkpoint entries
// that follow (op "checkpoint", all carrying the seq they cover).
type WatchEntry struct {
	Seq       uint64 `json:"seq,omitempty"`
	Op        string `json:"op,omitempty"`
	ID        string `json:"id,omitempty"`
	Spec      *Spec  `json:"spec,omitempty"`    // create / checkpoint
	Epoch     uint64 `json:"epoch,omitempty"`   // transition / checkpoint
	Applied   int    `json:"applied,omitempty"` // transition
	Faults    []int  `json:"faults,omitempty"`  // transition / checkpoint
	Term      uint64 `json:"term,omitempty"`    // termbump (the new leadership term)
	Heartbeat bool   `json:"heartbeat,omitempty"`
	// Ts is the leader's commit wall-clock in unix nanoseconds, when
	// known (live entries only — catch-up from the journal has no
	// timestamp and omits the field). Followers subtract it from their
	// own clock to estimate replication entry age.
	Ts int64 `json:"ts,omitempty"`
}

// watchEntryFrom converts a commit entry to its wire form.
func watchEntryFrom(e commit.Entry) WatchEntry {
	we := WatchEntry{
		Seq:     e.Seq,
		Op:      e.Rec.Op.String(),
		ID:      e.Rec.ID,
		Epoch:   e.Rec.Epoch,
		Applied: e.Rec.Applied,
		Faults:  e.Rec.Faults,
		Term:    e.Rec.Term,
		Ts:      e.At,
	}
	if e.Rec.Op == journal.OpCreate || e.Rec.Op == journal.OpCheckpoint || e.Rec.Op == journal.OpMigrate {
		spec := Spec{Kind: Kind(e.Rec.Spec.Kind), M: e.Rec.Spec.M, H: e.Rec.Spec.H, K: e.Rec.Spec.K}
		we.Spec = &spec
	}
	return we
}

// Entry converts a received wire entry back to a commit entry.
func (we WatchEntry) Entry() (commit.Entry, error) {
	rec := journal.Record{ID: we.ID, Epoch: we.Epoch, Applied: we.Applied, Faults: we.Faults}
	switch we.Op {
	case "create":
		rec.Op = journal.OpCreate
	case "delete":
		rec.Op = journal.OpDelete
	case "transition":
		rec.Op = journal.OpTransition
	case "checkpoint":
		rec.Op = journal.OpCheckpoint
	case "migrate":
		rec.Op = journal.OpMigrate
	case "termbump":
		rec.Op = journal.OpTermBump
		rec.ID = journal.SeqBaseID
		rec.Term = we.Term
	default:
		return commit.Entry{}, fmt.Errorf("fleet: unknown watch op %q", we.Op)
	}
	if we.Spec != nil {
		rec.Spec = journal.Spec{Kind: string(we.Spec.Kind), M: we.Spec.M, H: we.Spec.H, K: we.Spec.K}
	}
	return commit.Entry{Seq: we.Seq, Rec: rec, At: we.Ts}, nil
}

// Watch stream tuning: the default and the accepted bounds of the
// ?heartbeat interval, and the per-connection delivery buffer.
const (
	defaultWatchHeartbeat = 5 * time.Second
	minWatchHeartbeat     = 50 * time.Millisecond
	maxWatchHeartbeat     = time.Minute
	watchBuffer           = 1024
)

// watch serves GET /v1/watch?from=<seq>[&heartbeat=<dur>]: catch up
// from seq, then stream the live commit tail. Entries are flushed as
// they arrive (batched when a burst is already buffered), heartbeats
// keep idle connections verifiably alive, and a client that cannot
// keep up is disconnected (commit.ErrSlowSubscriber) rather than
// silently skipped — it resumes from its last seq and the catch-up
// path fills the gap.
func (s *apiServer) watch(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if fs := r.URL.Query().Get("from"); fs != "" {
		v, err := strconv.ParseUint(fs, 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("bad from %q: %v", fs, err))
			return
		}
		from = v
	}
	hb := defaultWatchHeartbeat
	if hs := r.URL.Query().Get("heartbeat"); hs != "" {
		d, err := time.ParseDuration(hs)
		if err != nil {
			writeError(w, fmt.Errorf("bad heartbeat %q: %v", hs, err))
			return
		}
		hb = min(max(d, minWatchHeartbeat), maxWatchHeartbeat)
	}
	// Advertise the leadership term in force (and the seq of the entry
	// that set it) on every watch response — including the 416 rejection
	// below. A reconnecting replica compares them against its own state
	// BEFORE consuming any entries: a lower term here means this server
	// is a stale leader and must not be followed; a higher term combined
	// with a from beyond the term fence means the caller is a deposed
	// leader holding un-replicated suffix it must discard.
	term, termSeq := s.mgr.Term()
	w.Header().Set("X-Ftnet-Term", strconv.FormatUint(term, 10))
	w.Header().Set("X-Ftnet-Term-Seq", strconv.FormatUint(termSeq, 10))
	sub, err := s.mgr.Subscribe(from, watchBuffer)
	if err == commit.ErrFutureSeq {
		writeJSON(w, http.StatusRequestedRangeNotSatisfiable,
			apiError{Error: fmt.Sprintf("from=%d is past the log end (next seq %d)", from, s.mgr.NextSeq())})
		return
	}
	if err != nil {
		writeError(w, err)
		return
	}
	defer sub.Close()

	// The response streams indefinitely: lift the server's per-request
	// read/write deadlines for this connection (the rest of the API
	// keeps them — they are what bounds slow-client request bodies).
	rc := http.NewResponseController(w)
	rc.SetReadDeadline(time.Time{})
	rc.SetWriteDeadline(time.Time{})

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	enc := json.NewEncoder(w)
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	// Heartbeats carry the last sequence number sent — on a resumed but
	// idle stream that is the seq just before the requested one, so a
	// client persisting the heartbeat seq as its resume cursor never
	// rewinds.
	var lastSeq uint64
	if from > 0 {
		lastSeq = from - 1
	}
	for {
		select {
		case e, ok := <-sub.C:
			if !ok {
				// Log closed or this client fell behind; either way the
				// client reconnects with from=lastSeq+1 and resumes.
				return
			}
			// Drain whatever is already buffered before flushing once —
			// one write per burst, not per entry — but cap the batch so a
			// client on a flaky link always makes progress between cuts.
			for drained := 0; ; {
				lastSeq = e.Seq
				if err := enc.Encode(watchEntryFrom(e)); err != nil {
					return
				}
				if drained++; drained >= 8 {
					break
				}
				select {
				case e, ok = <-sub.C:
					if !ok {
						flush()
						return
					}
					continue
				default:
				}
				break
			}
			flush()
		case <-ticker.C:
			if err := enc.Encode(WatchEntry{Heartbeat: true, Seq: lastSeq}); err != nil {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

// compact serves POST /v1/compact: checkpoint every instance's state
// and truncate the journal prefix, bounding replay length for restarts
// and fresh followers.
func (s *apiServer) compact(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Compact()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
