package ftnet

import (
	"ftnet/internal/ft"
	"ftnet/internal/reconfig"
	"ftnet/internal/verify"
)

// This file extends the facade beyond the paper's headline
// constructions: the generalized linear-rule targets (rings, chordal
// rings) and the distributed reconfiguration protocol.

// RingNet is a fault-tolerant ring built with the same technique the
// paper applies to de Bruijn graphs (and which reproduces Hayes's
// classic construction): host of n+k nodes, node x linked to its k+1
// cyclic successors, degree 2k+2.
type RingNet struct {
	P      ft.GeneralParams
	Target *Graph
	Host   *Graph
}

// NewRing returns the k-fault-tolerant ring on n nodes.
func NewRing(n, k int) (*RingNet, error) {
	p := ft.Ring(n, k)
	target, err := ft.NewTarget(p)
	if err != nil {
		return nil, err
	}
	host, err := ft.NewGeneral(p)
	if err != nil {
		return nil, err
	}
	return &RingNet{P: p, Target: target, Host: host}, nil
}

// Reconfigure computes the ring embedding after the given faults.
func (n *RingNet) Reconfigure(faults []int) (*Mapping, error) {
	return ft.NewMapping(n.P.N, n.P.N+n.P.K, faults)
}

// VerifyExhaustive enumerates every fault set.
func (n *RingNet) VerifyExhaustive() error {
	rep := verify.Exhaustive(n.Target, n.Host, n.P.K, ft.GeneralMapper(n.P))
	if !rep.Ok() {
		return rep.First
	}
	return nil
}

// DistributedReconfigure runs the decentralized protocol on the de
// Bruijn network: faults flood through the healthy host, then every
// node computes its assignment locally. It returns the dissemination
// rounds and the per-host-node assignment (-1 = faulty or spare). The
// result is guaranteed identical to Reconfigure's.
func (n *DeBruijnNet) DistributedReconfigure(faults []int) (rounds int, hostToTarget []int, err error) {
	out, err := reconfig.Run(n.Host, n.P.NTarget(), faults)
	if err != nil {
		return 0, nil, err
	}
	return out.Rounds, out.HostToTarget, nil
}
