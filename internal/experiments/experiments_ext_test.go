package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestExtendedExperimentsRegistered(t *testing.T) {
	for _, id := range []string{"M1", "M2", "M3", "A1", "A2", "A3", "A4", "S3", "S4", "S5", "S6", "T6", "L1", "L2"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("extended experiment %s not registered", id)
		}
	}
	if len(AllExtended()) != len(All())+14 {
		t.Errorf("AllExtended size %d", len(AllExtended()))
	}
}

func TestExtendedExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every extended experiment")
	}
	all := append(extended(), extendedMore()...)
	all = append(all, extendedFinal()...)
	all = append(all, extendedFleet()...)
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestA1AblationShowsTightness(t *testing.T) {
	var buf bytes.Buffer
	if err := A1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every truncated row must report failures > 0; every full row 0.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	checkedRows := 0
	for _, ln := range lines[1:] {
		fields := strings.Fields(ln)
		if len(fields) < 3 {
			continue
		}
		var failures int
		if _, err := fmt.Sscan(fields[len(fields)-1], &failures); err != nil {
			continue
		}
		checkedRows++
		truncated := strings.Contains(ln, "drop")
		if truncated && failures == 0 {
			t.Errorf("truncated range survived, tightness not shown: %s", ln)
		}
		if !truncated && failures != 0 {
			t.Errorf("full range failed: %s", ln)
		}
	}
	if checkedRows < 6 {
		t.Fatalf("too few parsed rows (%d):\n%s", checkedRows, out)
	}
}

func TestM2ConnectivityValues(t *testing.T) {
	var buf bytes.Buffer
	if err := M2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Known theory: kappa(B_{2,h}) = 2 (nodes 0 and 2^h-1 have degree 2),
	// kappa(SE_h) = 1 (node 0 has degree 1), kappa(B_{m,3}) = 2m-2.
	for _, want := range []string{"B_{2,3}\t", "SE_3"} {
		if !strings.Contains(out, strings.ReplaceAll(want, "\t", "")) {
			t.Errorf("M2 missing %q:\n%s", want, out)
		}
	}
	for _, ln := range strings.Split(out, "\n") {
		f := strings.Fields(ln)
		if len(f) < 3 {
			continue
		}
		switch {
		case strings.HasPrefix(f[0], "B_{2,"):
			if f[1] != "2" {
				t.Errorf("kappa(%s) = %s, want 2", f[0], f[1])
			}
		case strings.HasPrefix(f[0], "SE_"):
			if f[1] != "1" {
				t.Errorf("kappa(%s) = %s, want 1", f[0], f[1])
			}
		case f[0] == "B_{3,3}":
			if f[1] != "4" {
				t.Errorf("kappa(B_{3,3}) = %s, want 2m-2 = 4", f[1])
			}
		case f[0] == "B_{4,3}":
			if f[1] != "6" {
				t.Errorf("kappa(B_{4,3}) = %s, want 2m-2 = 6", f[1])
			}
		}
	}
}

func TestS3DilationOne(t *testing.T) {
	var buf bytes.Buffer
	if err := S3(&buf); err != nil {
		t.Fatal(err)
	}
	// Reconfiguration must not slow the permutation beyond a small
	// constant (dilation 1; congestion can differ slightly because host
	// edges are shared differently).
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n")[1:] {
		var h, k, ct, ch int
		var ratio float64
		if n, _ := fmt.Sscan(ln, &h, &k, &ct, &ch, &ratio); n == 5 {
			if ratio > 1.5 {
				t.Errorf("h=%d k=%d: reconfigured ratio %.2f too high", h, k, ratio)
			}
		}
	}
}
