package ft

import (
	"fmt"

	"ftnet/internal/num"
)

// WitnessHistogram computes, for every directed target edge
// y = X(x, m, r, m^h), the witness value s the reconfiguration actually
// uses in the host edge rule, and returns the frequency of each s. The
// support of the histogram shows which host edges earn their keep under
// a concrete fault set; across adversarial fault sets the support
// reaches both ends of [RMin, RMax] — the constructive side of the
// tightness ablation (experiment A1 shows the destructive side).
func WitnessHistogram(p Params, mp *Mapping) (map[int]int, error) {
	if mp.NTarget != p.NTarget() || mp.NHost != p.NHost() {
		return nil, fmt.Errorf("ft: mapping sized %d/%d does not match %v", mp.NTarget, mp.NHost, p)
	}
	hist := make(map[int]int)
	n := p.NTarget()
	for x := 0; x < n; x++ {
		for r := 0; r < p.M; r++ {
			y := num.X(x, p.M, r, n)
			if y == x {
				continue
			}
			s, err := EdgeWitness(p, mp, x, y, r)
			if err != nil {
				return nil, err
			}
			hist[s]++
		}
	}
	return hist, nil
}

// WithFault returns a new mapping with one additional fault, plus the
// number of target nodes whose host changed. It is the incremental form
// of NewMapping for machines where faults arrive one at a time; the
// rank structure means exactly the targets at or above the new fault's
// healthy rank shift by one slot.
func (m *Mapping) WithFault(f int) (*Mapping, int, error) {
	if f < 0 || f >= m.NHost {
		return nil, 0, fmt.Errorf("ft: fault %d out of range [0,%d)", f, m.NHost)
	}
	if m.IsFaulty(f) {
		return nil, 0, fmt.Errorf("ft: node %d already faulty", f)
	}
	faults := append(append([]int(nil), m.Faults...), f)
	nm, err := NewMapping(m.NTarget, m.NHost, faults)
	if err != nil {
		return nil, 0, err
	}
	moved := 0
	for x := 0; x < m.NTarget; x++ {
		if nm.Phi(x) != m.Phi(x) {
			moved++
		}
	}
	// Structural check: moved = NTarget - Rank(f, old healthy), clamped
	// at 0 when f was an unused spare. The rank of a healthy node among
	// the healthy set is itself minus the faults below it.
	rank := f - num.Rank(f, m.Faults)
	want := m.NTarget - rank
	if want < 0 {
		want = 0
	}
	if moved != want {
		return nil, 0, fmt.Errorf("ft: internal error: moved %d != rank prediction %d", moved, want)
	}
	return nm, moved, nil
}
