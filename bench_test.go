package ftnet

// One benchmark per paper figure/table (see DESIGN.md's per-experiment
// index), plus micro-benchmarks of the core operations: construction,
// reconfiguration, embedding verification, and the SE->dB embedder.
//
// Run with: go test -bench=. -benchmem

import (
	"io"
	"math/rand"
	"sort"
	"testing"

	"ftnet/internal/ascend"
	"ftnet/internal/debruijn"
	"ftnet/internal/experiments"
	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/route"
	"ftnet/internal/shuffle"
	"ftnet/internal/sim"
	"ftnet/internal/verify"
)

func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures.

func BenchmarkFig1_DeBruijnB24(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkFig2_FTDeBruijn(b *testing.B)      { benchExperiment(b, "F2") }
func BenchmarkFig3_Reconfigure(b *testing.B)     { benchExperiment(b, "F3") }
func BenchmarkFig4_BusArchitecture(b *testing.B) { benchExperiment(b, "F4") }
func BenchmarkFig5_BusReconfigure(b *testing.B)  { benchExperiment(b, "F5") }

// Tables.

func BenchmarkT1_Base2Tolerance(b *testing.B)     { benchExperiment(b, "T1") }
func BenchmarkT2_BaseMTolerance(b *testing.B)     { benchExperiment(b, "T2") }
func BenchmarkT3_ShuffleExchange(b *testing.B)    { benchExperiment(b, "T3") }
func BenchmarkT4_BusDegree(b *testing.B)          { benchExperiment(b, "T4") }
func BenchmarkT5_BaselineComparison(b *testing.B) { benchExperiment(b, "T5") }

// Simulator experiments.

func BenchmarkS1_FaultImpact(b *testing.B) { benchExperiment(b, "S1") }
func BenchmarkS2_BusSlowdown(b *testing.B) { benchExperiment(b, "S2") }

// Micro-benchmarks: construction.

func benchConstruct(b *testing.B, p ft.Params) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ft.New(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConstructB2h8k4(b *testing.B)  { benchConstruct(b, ft.Params{M: 2, H: 8, K: 4}) }
func BenchmarkConstructB2h12k4(b *testing.B) { benchConstruct(b, ft.Params{M: 2, H: 12, K: 4}) }
func BenchmarkConstructB4h5k2(b *testing.B)  { benchConstruct(b, ft.Params{M: 4, H: 5, K: 2}) }

// Micro-benchmarks: reconfiguration map for a large machine.

func BenchmarkReconfigure64k(b *testing.B) {
	p := ft.Params{M: 2, H: 16, K: 8}
	rng := rand.New(rand.NewSource(1))
	faultSets := make([][]int, 64)
	for i := range faultSets {
		faultSets[i] = num.RandomSubset(rng, p.NHost(), p.K)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.NewMapping(p.NTarget(), p.NHost(), faultSets[i%len(faultSets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks: the fleet's mapping cache against one-shot
// recomputation on the same recurring fault patterns. The cached path
// is the ftnetd Lookup fast path once a fleet keeps revisiting a
// working set of fault sets.

func recurringFaultSets(p ft.Params, n int) [][]int {
	rng := rand.New(rand.NewSource(1))
	sets := make([][]int, n)
	for i := range sets {
		sets[i] = num.RandomSubset(rng, p.NHost(), p.K)
		sort.Ints(sets[i])
	}
	return sets
}

func BenchmarkReconfigureUncached(b *testing.B) {
	p := ft.Params{M: 2, H: 16, K: 8}
	sets := recurringFaultSets(p, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ft.NewMapping(p.NTarget(), p.NHost(), sets[i%len(sets)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconfigureCached(b *testing.B) {
	p := ft.Params{M: 2, H: 16, K: 8}
	sets := recurringFaultSets(p, 64)
	c := fleet.NewCache(128)
	for _, f := range sets { // warm: every set computed once
		if _, err := c.Get(p.NTarget(), p.NHost(), f); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(p.NTarget(), p.NHost(), sets[i%len(sets)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetLookup measures the full service path: Manager ->
// instance -> current mapping, the operation ftnetd performs per
// phi query.
func BenchmarkFleetLookup(b *testing.B) {
	m := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 12, K: 6}
	if _, err := m.Create("bench", spec); err != nil {
		b.Fatal(err)
	}
	for _, f := range []int{5, 99, 1024} {
		if _, err := m.Event("bench", fleet.Event{Kind: fleet.EventFault, Node: f}); err != nil {
			b.Fatal(err)
		}
	}
	n := 1 << 12
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Lookup("bench", i%n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetEventBatch measures the write path ftnetd performs per
// events:batch POST: one atomic snapshot transition applying a
// four-event burst through the shared cache.
func BenchmarkFleetEventBatch(b *testing.B) {
	m := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 12, K: 6}
	if _, err := m.Create("bench", spec); err != nil {
		b.Fatal(err)
	}
	fault := []fleet.Event{{Kind: fleet.EventFault, Node: 0}, {Kind: fleet.EventFault, Node: 1},
		{Kind: fleet.EventFault, Node: 2}, {Kind: fleet.EventFault, Node: 3}}
	repair := []fleet.Event{{Kind: fleet.EventRepair, Node: 0}, {Kind: fleet.EventRepair, Node: 1},
		{Kind: fleet.EventRepair, Node: 2}, {Kind: fleet.EventRepair, Node: 3}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := fault
		if i%2 == 1 {
			batch = repair
		}
		if _, err := m.EventBatch("bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkL1_ServiceThroughput reruns the tracked service-throughput
// experiment (read-heavy and burst-heavy ftload scenarios against an
// in-process daemon).
func BenchmarkL1_ServiceThroughput(b *testing.B) { benchExperiment(b, "L1") }

// Micro-benchmarks: full embedding check after reconfiguration.

func BenchmarkEmbeddingCheckH10(b *testing.B) {
	p := ft.Params{M: 2, H: 10, K: 6}
	host := ft.MustNew(p)
	target := debruijn.MustNew(p.Target())
	rng := rand.New(rand.NewSource(2))
	faults := num.RandomSubset(rng, p.NHost(), p.K)
	m, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
	if err != nil {
		b.Fatal(err)
	}
	phi := m.PhiSlice()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := graph.CheckEmbedding(target, host, phi); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks: exhaustive verification throughput (small instance).

func BenchmarkExhaustiveVerifyB23K2(b *testing.B) {
	p := ft.Params{M: 2, H: 3, K: 2}
	host := ft.MustNew(p)
	target := debruijn.MustNew(p.Target())
	mapper := func(f, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := verify.Exhaustive(target, host, p.K, mapper)
		if !rep.Ok() {
			b.Fatal(rep.First)
		}
	}
}

// Micro-benchmarks: the SE->dB necklace embedder.

func BenchmarkShuffleEmbedH8(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := shuffle.EmbedIntoDeBruijn(8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShuffleEmbedH12(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := shuffle.EmbedIntoDeBruijn(12); err != nil {
			b.Fatal(err)
		}
	}
}

// Micro-benchmarks: Ascend workload on a reconfigured machine.

func BenchmarkAscendReconfiguredH8(b *testing.B) {
	const h = 8
	p := ft.SEParams{H: h, K: 4}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	faults := num.RandomSubset(rng, p.NHost(), p.K)
	loc, err := ft.SEMapViaDB(p, psi, faults)
	if err != nil {
		b.Fatal(err)
	}
	dead := make([]bool, p.NHost())
	for _, f := range faults {
		dead[f] = true
	}
	hst := &ascend.Host{G: host, Loc: loc, Dead: dead}
	n := 1 << h
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ascend.RunSE(h, hst, vals, ascend.Sum); err != nil {
			b.Fatal(err)
		}
	}
}

// Extended experiments (intro motivation, connectivity, ablations).

func BenchmarkM1_TopologyComparison(b *testing.B)  { benchExperiment(b, "M1") }
func BenchmarkM2_PassiveConnectivity(b *testing.B) { benchExperiment(b, "M2") }
func BenchmarkA1_RRangeAblation(b *testing.B)      { benchExperiment(b, "A1") }
func BenchmarkS3_ReconfigCongestion(b *testing.B)  { benchExperiment(b, "S3") }

func BenchmarkS4_DistributedReconfig(b *testing.B) { benchExperiment(b, "S4") }
func BenchmarkA2_MigrationCost(b *testing.B)       { benchExperiment(b, "A2") }

func BenchmarkA3_WitnessUsage(b *testing.B) { benchExperiment(b, "A3") }
func BenchmarkS5_BitonicSort(b *testing.B)  { benchExperiment(b, "S5") }

func BenchmarkA4_GeneralizedTargets(b *testing.B) { benchExperiment(b, "A4") }
func BenchmarkM3_AvoidVsReconfig(b *testing.B)    { benchExperiment(b, "M3") }

func BenchmarkT6_LayoutModel(b *testing.B) { benchExperiment(b, "T6") }

func BenchmarkS6_WormholeLatency(b *testing.B) { benchExperiment(b, "S6") }

// Additional micro-benchmarks: routing, simulation and verification
// primitives at realistic sizes.

func BenchmarkRouteShortPathH12(b *testing.B) {
	p := debruijnParams12
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := route.ShortPath(i%p.N(), (i*2654435761)%p.N(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimPermutationH8(b *testing.B) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 8})
	msgs, err := sim.Permutation(g.N(), func(x int) int { return (x + 101) % g.N() }, sim.BFSRouter(g))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := make([]*sim.Message, len(msgs))
		for j, m := range msgs {
			fresh[j] = &sim.Message{ID: m.ID, Route: m.Route}
		}
		st, err := sim.Run(sim.NewPointToPoint(g, 2), fresh, 100000)
		if err != nil || st.Stalled {
			b.Fatalf("%v %v", st, err)
		}
	}
}

func BenchmarkRandomizedVerifyH8K6(b *testing.B) {
	p := ft.Params{M: 2, H: 8, K: 6}
	host := ft.MustNew(p)
	target := debruijn.MustNew(p.Target())
	mapper := func(f, buf []int) ([]int, error) {
		m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := verify.Randomized(target, host, p.K, mapper, 5, int64(i), nil)
		if !rep.Ok() {
			b.Fatal(rep.First)
		}
	}
}

var debruijnParams12 = debruijn.Params{M: 2, H: 12}
