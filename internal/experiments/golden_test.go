package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// The figure experiments are fully deterministic; golden files pin their
// exact output so structural regressions (a changed edge rule, a changed
// reconfiguration) are caught as text diffs. Regenerate with:
//
//	go run ./cmd/ftbench -exp F2 | tail -n +2 > internal/experiments/testdata/F2.golden
func TestGoldenFigures(t *testing.T) {
	for _, id := range []string{"F2", "F3", "F4"} {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %s missing", id)
			}
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), want)
			}
		})
	}
}
