package main

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/loadgen"
)

// TestRunAgainstInProcessDaemon points the load generator at an
// in-process ftnetd handler and checks the whole loop: create fleet,
// mixed traffic, merged report.
func TestRunAgainstInProcessDaemon(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()

	cfg := config{Config: loadgen.Config{
		Addr:      ts.URL,
		Instances: 3,
		Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2},
		Workers:   4,
		Requests:  600,
		Scenario:  loadgen.Scenario{EventFrac: 0.3, Batch: 1},
		Seed:      7,
	}}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"throughput", "latency", "p99", "errors       0", "scenario custom"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	// The daemon must have seen the traffic the report claims.
	st := mgr.Stats()
	if st.Instances != 3 {
		t.Errorf("instances = %d, want 3", st.Instances)
	}
	if st.Lookups == 0 || st.Events == 0 {
		t.Errorf("daemon saw no traffic: %+v", st)
	}
	if got := int(st.Lookups + st.Events + st.Rejected); got != cfg.Requests {
		t.Errorf("ops seen by daemon = %d, want %d", got, cfg.Requests)
	}
}

// TestRunNamedScenario drives the burst-heavy preset: reconfiguration
// ops become atomic events:batch bursts, and every accepted burst
// advances its instance's epoch exactly once.
func TestRunNamedScenario(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()

	cfg := config{
		Config: loadgen.Config{
			Addr:      ts.URL,
			Instances: 2,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
			Workers:   4,
			Requests:  400,
			Seed:      11,
		},
		scenario: "burst-heavy",
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "scenario burst-heavy") {
		t.Errorf("report missing scenario name:\n%s", out.String())
	}
	st := mgr.Stats()
	if st.Batches == 0 {
		t.Fatalf("no bursts applied: %+v", st)
	}
	if st.Events < st.Batches*uint64(loadgen.BurstHeavy.Batch) {
		t.Errorf("events %d < batches %d x %d: bursts not applied whole",
			st.Events, st.Batches, loadgen.BurstHeavy.Batch)
	}
	// Epochs count transitions: the sum over instances must equal the
	// accepted batch count.
	var epochs uint64
	for _, id := range mgr.List() {
		in, _ := mgr.Get(id)
		epochs += in.Info().Epoch
	}
	if epochs != st.Batches {
		t.Errorf("epoch sum %d != accepted batches %d", epochs, st.Batches)
	}

	if err := run(config{Config: cfg.Config, scenario: "tsunami"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(config{Config: loadgen.Config{Instances: 0, Workers: 1, Requests: 1,
		Scenario: loadgen.Mixed}}, &bytes.Buffer{}); err == nil {
		t.Error("zero instances accepted")
	}
	bad := config{Config: loadgen.Config{
		Addr: "http://127.0.0.1:0", Instances: 1, Workers: 1, Requests: 1,
		Spec:     fleet.Spec{Kind: "torus", H: 4, K: 1},
		Scenario: loadgen.Mixed,
	}}
	if err := run(bad, &bytes.Buffer{}); err == nil {
		t.Error("bad spec accepted")
	}
}

// TestRunObsJSONArtifact runs write-storm with -obs-json and checks
// the emitted BENCH_service.json: valid schema, the gated families
// present, every value a positive nanosecond quantity.
func TestRunObsJSONArtifact(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "BENCH_service.json")
	cfg := config{
		Config: loadgen.Config{
			Addr:      ts.URL,
			Instances: 2,
			Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
			Workers:   4,
			Requests:  300,
			Seed:      13,
		},
		scenario: "write-storm",
		obsJSON:  path,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "service SLO values") {
		t.Errorf("report missing the obs artifact line:\n%s", out.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art loadgen.ServiceArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatalf("artifact not valid JSON: %v\n%s", err, data)
	}
	if art.Kind != "service" || art.Scenario != "write-storm" {
		t.Fatalf("artifact header: kind=%q scenario=%q", art.Kind, art.Scenario)
	}
	families := map[string]bool{}
	for _, b := range art.Benchmarks {
		families[b.Family] = true
		if b.Unit != "ns" || b.Value <= 0 {
			t.Errorf("benchmark %s: value %v %s", b.Name, b.Value, b.Unit)
		}
	}
	for _, want := range []string{"request_p99", "fsync_p99"} {
		if !families[want] {
			t.Errorf("artifact missing family %q; has %v", want, families)
		}
	}
}
