package shard

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg returns a deterministic testing/quick config: the default
// Rand is time-seeded, which would make the property bounds flaky.
func quickCfg(maxCount int) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(1)), MaxCount: maxCount}
}

// membersFrom derives a deterministic membership of size n (2..9) from
// a seed, named like real daemon endpoints.
func membersFrom(seed uint64, n int) []string {
	members := make([]string, n)
	for i := range members {
		members[i] = fmt.Sprintf("daemon-%d-%d", seed%97, i)
	}
	return members
}

// keysFrom derives nk deterministic instance ids in the same shape the
// fleet uses.
func keysFrom(rng *rand.Rand, nk int) []string {
	keys := make([]string, nk)
	for i := range keys {
		keys[i] = fmt.Sprintf("inst-%d-%d", rng.Uint64(), i)
	}
	return keys
}

func TestRingDeterministicAndBytesAgree(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		members := membersFrom(seed, 2+rng.Intn(7))
		// Same membership presented in a different order must build an
		// identical ring.
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a, b := New(members, 64), New(shuffled, 64)
		for _, key := range keysFrom(rng, 256) {
			if a.Owner(key) != b.Owner(key) {
				return false
			}
			if a.Owner(key) != a.OwnerBytes([]byte(key)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(50)); err != nil {
		t.Fatal(err)
	}
}

func TestRingBalanceProperty(t *testing.T) {
	// Balance: with the default vnode count, the busiest member holds at
	// most ~2.5x the load of the quietest across random memberships and
	// key populations. The bound is loose against hash variance but
	// tight enough to catch a broken vnode scheme (e.g. one vnode per
	// member can exceed 10x).
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		members := membersFrom(seed, 3+rng.Intn(6))
		r := New(members, 0)
		load := make(map[string]int, len(members))
		for _, key := range keysFrom(rng, 8192) {
			load[r.Owner(key)]++
		}
		min, max := 1<<62, 0
		for _, m := range members {
			n := load[m]
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if min == 0 {
			return false // a member owning nothing is a balance failure outright
		}
		ratio := float64(max) / float64(min)
		if ratio > 2.5 {
			t.Logf("seed %d: %d members, max/min = %d/%d = %.2f", seed, len(members), max, min, ratio)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestRingMinimalMovementProperty(t *testing.T) {
	// Minimal movement, both directions: when a daemon joins, the only
	// keys that change owner are those the joiner now owns; when it
	// leaves, the only keys that change owner are those it owned. No
	// unrelated key ever moves — the property that makes a rebalance
	// migrate O(moved) instances instead of reshuffling the fleet.
	prop := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		members := membersFrom(seed, 2+rng.Intn(6))
		joiner := fmt.Sprintf("daemon-join-%d", seed%89)
		before := New(members, 0)
		after := New(append(append([]string(nil), members...), joiner), 0)
		keys := keysFrom(rng, 4096)
		moved := 0
		for _, key := range keys {
			ob, oa := before.Owner(key), after.Owner(key)
			if ob != oa {
				moved++
				if oa != joiner {
					t.Logf("seed %d: join moved %q from %q to %q (not the joiner)", seed, key, ob, oa)
					return false
				}
			}
		}
		// The joiner must actually receive a share — and not the whole
		// keyspace.
		if moved == 0 || moved == len(keys) {
			return false
		}
		// Leave direction: removing the joiner must restore exactly the
		// old assignment (rings are pure functions of membership), and
		// keys not owned by the leaver must not move.
		for _, key := range keys {
			if after.Owner(key) != joiner && before.Owner(key) != after.Owner(key) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(25)); err != nil {
		t.Fatal(err)
	}
}

func TestRingEdgeCases(t *testing.T) {
	empty := New(nil, 0)
	if got := empty.Owner("x"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	single := New([]string{"only"}, 4)
	for _, key := range []string{"a", "b", "c"} {
		if got := single.Owner(key); got != "only" {
			t.Fatalf("single-member ring owner(%q) = %q", key, got)
		}
	}
	dup := New([]string{"a", "b", "a"}, 8)
	if got := len(dup.Members()); got != 2 {
		t.Fatalf("duplicate members collapsed to %d, want 2", got)
	}
	if r := New([]string{"a"}, -3); r.Replicas() != DefaultReplicas {
		t.Fatalf("replicas = %d, want default %d", r.Replicas(), DefaultReplicas)
	}
}
