package ft

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// New builds the fault-tolerant de Bruijn graph B^k_{m,h} of
// Sections III-B and IV-A: nodes {0 .. m^h+k-1}, and (x,y) is an edge
// iff there exists r in {(m-1)(-k) .. (m-1)(k+1)} with
// y = X(x, m, r, m^h+k) or x = X(y, m, r, m^h+k).
//
// For k = 0 the construction degenerates to the target graph B_{m,h}
// itself (B^0_{m,h} = B_{m,h}).
func New(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.NHost()
	b := graph.NewBuilder(s)
	for x := 0; x < s; x++ {
		for r := p.RMin(); r <= p.RMax(); r++ {
			b.AddEdge(x, num.X(x, p.M, r, s)) // self-loops dropped
		}
	}
	return b.Build(), nil
}

// MustNew is New that panics on error.
func MustNew(p Params) *graph.Graph {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// OutBlock returns the consecutive block of host nodes that node x
// connects to in the "successor" direction:
// { X(x,m,r,s) : r = RMin()..RMax() }, i.e. the block of
// (m-1)(2k+1)+1 consecutive nodes beginning at (mx + RMin()) mod s.
// For m=2 this is the paper's block of 2k+2 consecutive nodes beginning
// with (2x - k) mod (2^h + k). The block is returned in increasing-r
// order and may wrap around; it can include x itself (the self-loop the
// point-to-point graph drops, but which is harmless on a bus).
func OutBlock(x int, p Params) []int {
	s := p.NHost()
	out := make([]int, 0, p.RMax()-p.RMin()+1)
	for r := p.RMin(); r <= p.RMax(); r++ {
		out = append(out, num.X(x, p.M, r, s))
	}
	return out
}

// BlockSize returns the size of each node's out-block,
// (m-1)(2k+1) + 1; for m=2: 2k+2.
func (p Params) BlockSize() int { return p.RMax() - p.RMin() + 1 }

// ApplyHostLabels labels host nodes 0..N-1 with their eventual target
// identity ("spare" for the k extra nodes); purely cosmetic, used by the
// figure generators.
func ApplyHostLabels(g *graph.Graph, p Params) {
	for x := 0; x < g.N(); x++ {
		g.SetLabel(x, fmt.Sprintf("%d", x))
	}
}
