package commit

import (
	"errors"
	"testing"

	"ftnet/internal/journal"
)

func TestCollectFromTail(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	for i := 1; i <= 10; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	got, err := l.Collect(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("collected %d entries, want 5", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(3+i) {
			t.Fatalf("entry %d has seq %d, want %d", i, e.Seq, 3+i)
		}
		if e.Rec.Epoch != e.Seq {
			t.Fatalf("entry %d carries epoch %d, want %d", i, e.Rec.Epoch, e.Seq)
		}
	}
	// Empty range and zero-from normalization.
	if got, err := l.Collect(8, 5); err != nil || got != nil {
		t.Fatalf("inverted range = (%v, %v), want (nil, nil)", got, err)
	}
	if got, err := l.Collect(0, 2); err != nil || len(got) != 2 {
		t.Fatalf("from 0 = (%d entries, %v), want 2", len(got), err)
	}
}

func TestCollectFutureSeq(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	mustCommit(t, l, trec("a", 1, 1))
	if _, err := l.Collect(1, 5); !errors.Is(err, ErrFutureSeq) {
		t.Fatalf("collect past log end = %v, want ErrFutureSeq", err)
	}
}

func TestCollectFromFileBeyondHistory(t *testing.T) {
	// A tiny in-memory tail forces the older half of the range onto the
	// journal-file path.
	path := t.TempDir() + "/commit.wal"
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog(Config{Writer: w, History: 4})
	defer l.Close()
	for i := 1; i <= 40; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	got, err := l.Collect(2, 39)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 38 {
		t.Fatalf("collected %d entries, want 38", len(got))
	}
	for i, e := range got {
		if e.Seq != uint64(2+i) {
			t.Fatalf("entry %d has seq %d, want %d (gap)", i, e.Seq, 2+i)
		}
	}
}

func TestCollectAfterInstallServesCheckpoint(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	for i := 1; i <= 6; i++ {
		mustCommit(t, l, trec("a", uint64(i), i))
	}
	cp := []journal.Record{{Op: journal.OpCheckpoint, ID: "a", Spec: journal.Spec{Kind: "debruijn", M: 8, H: 8}, Epoch: 6, Faults: []int{6}}}
	if err := l.Install(6, cp); err != nil {
		t.Fatal(err)
	}
	mustCommit(t, l, trec("a", 7, 6, 7)) // seq 7
	// A range reaching into the compacted prefix comes back as the
	// checkpoint (reset entries at seq 6) plus the live tail.
	got, err := l.Collect(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("collected %d entries, want 2 (checkpoint + tail)", len(got))
	}
	if got[0].Seq != 6 || got[0].Rec.Op != journal.OpCheckpoint {
		t.Fatalf("first entry = seq %d op %v, want checkpoint at 6", got[0].Seq, got[0].Rec.Op)
	}
	if got[1].Seq != 7 || got[1].Rec.Op != journal.OpTransition {
		t.Fatalf("second entry = seq %d op %v, want transition at 7", got[1].Seq, got[1].Rec.Op)
	}
}
