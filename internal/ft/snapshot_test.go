package ft

import (
	"errors"
	"testing"
)

func mustSnapshot(t *testing.T, nTarget, nHost, budget int) *Snapshot {
	t.Helper()
	s, err := NewSnapshot(nTarget, nHost, budget, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSnapshotZeroFault(t *testing.T) {
	s := mustSnapshot(t, 16, 18, 2)
	if s.Epoch() != 0 || s.NumFaults() != 0 || s.SparesFree() != 2 {
		t.Fatalf("zero snapshot: epoch %d faults %d spares %d", s.Epoch(), s.NumFaults(), s.SparesFree())
	}
	for x := 0; x < 16; x++ {
		if s.Phi(x) != x {
			t.Fatalf("healthy Phi(%d) = %d, want identity", x, s.Phi(x))
		}
	}
	if _, err := NewSnapshot(16, 18, 3, nil); err == nil {
		t.Error("budget above spare count accepted")
	}
	if _, err := NewSnapshot(16, 18, -1, nil); err == nil {
		t.Error("negative budget accepted")
	}
}

func TestSnapshotApplyBatchMatchesOneShot(t *testing.T) {
	s := mustSnapshot(t, 16, 20, 4)
	next, err := s.Apply([]Change{{Node: 3}, {Node: 11}, {Node: 7}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch() != 1 {
		t.Fatalf("batch advanced epoch to %d, want exactly 1", next.Epoch())
	}
	want, err := NewMapping(16, 20, []int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		if next.Phi(x) != want.Phi(x) {
			t.Fatalf("Phi(%d) = %d, want %d", x, next.Phi(x), want.Phi(x))
		}
	}
	// The source snapshot is untouched.
	if s.Epoch() != 0 || s.NumFaults() != 0 || s.Phi(3) != 3 {
		t.Fatalf("Apply mutated its receiver: %+v", s)
	}

	// Repair inside a batch, including a node faulted by the same batch.
	again, err := next.Apply([]Change{{Node: 3, Repair: true}, {Node: 0}, {Node: 0, Repair: true}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again.Epoch() != 2 || again.NumFaults() != 2 {
		t.Fatalf("epoch %d faults %v", again.Epoch(), again.Faults())
	}
}

func TestSnapshotApplyAllOrNothing(t *testing.T) {
	s := mustSnapshot(t, 16, 18, 2)
	cases := []struct {
		name  string
		batch []Change
		cat   error // nil means plain invalid input
	}{
		{"empty", nil, nil},
		{"out of range", []Change{{Node: 18}}, nil},
		{"negative", []Change{{Node: -1}}, nil},
		{"tail invalid", []Change{{Node: 1}, {Node: 99}}, nil},
		{"double fault in batch", []Change{{Node: 5}, {Node: 5}}, ErrConflict},
		{"repair healthy", []Change{{Node: 5, Repair: true}}, ErrConflict},
		{"over budget", []Change{{Node: 1}, {Node: 2}, {Node: 3}}, ErrBudget},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			next, err := s.Apply(c.batch, nil)
			if err == nil {
				t.Fatalf("batch %v accepted (snapshot %v)", c.batch, next.Faults())
			}
			if next != nil {
				t.Fatalf("rejected batch returned a snapshot %v", next.Faults())
			}
			if c.cat != nil && !errors.Is(err, c.cat) {
				t.Fatalf("error %v not in category %v", err, c.cat)
			}
		})
	}
	// Budget rejections are not conflicts of the ErrConflict kind and
	// vice versa, so callers can count the causes separately.
	_, err := s.Apply([]Change{{Node: 1}, {Node: 2}, {Node: 3}}, nil)
	if errors.Is(err, ErrConflict) {
		t.Errorf("budget error %v matches ErrConflict", err)
	}
}

func TestSnapshotApplyUsesMapper(t *testing.T) {
	calls := 0
	mapper := func(nTarget, nHost int, faults []int) (*Mapping, error) {
		calls++
		return NewMapping(nTarget, nHost, faults)
	}
	s, err := NewSnapshot(16, 18, 2, mapper)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply([]Change{{Node: 4}, {Node: 9}}, mapper); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("mapper called %d times, want 2 (once per transition)", calls)
	}
	// A rejected batch must not call the mapper at all.
	if _, err := s.Apply([]Change{{Node: 99}}, mapper); err == nil || calls != 2 {
		t.Fatalf("rejected batch reached the mapper (calls %d, err %v)", calls, err)
	}
}
