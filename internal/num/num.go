// Package num provides the integer arithmetic that underlies the
// fault-tolerant de Bruijn constructions: the X function from the paper,
// modular arithmetic with negative residues, rank computations over sorted
// sets, and digit-vector manipulation of base-m numbers.
//
// Everything here operates on int. The constructions in this repository
// never exceed a few million nodes, so int (64-bit on all supported
// platforms) is ample; functions that could overflow (IPow, Binomial)
// detect and report it.
package num

import (
	"fmt"
	"sort"
)

// X is the function X(z, m, r, s) = (z*m + r) mod s used throughout the
// paper to define de Bruijn edges and their fault-tolerant extensions.
// r may be negative (the fault-tolerant edge rules use r down to
// -(m-1)k); the result is always the canonical residue in [0, s).
// X panics if s <= 0.
func X(z, m, r, s int) int {
	if s <= 0 {
		panic(fmt.Sprintf("num.X: modulus s=%d must be positive", s))
	}
	return Mod(z*m+r, s)
}

// Mod returns a mod s with the result normalized into [0, s).
// Go's % operator keeps the sign of the dividend; Mod does not.
// Mod panics if s <= 0.
func Mod(a, s int) int {
	if s <= 0 {
		panic(fmt.Sprintf("num.Mod: modulus s=%d must be positive", s))
	}
	v := a % s
	if v < 0 {
		v += s
	}
	return v
}

// GCD returns the greatest common divisor of a and b (always >= 0).
func GCD(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGCD returns g = gcd(a, b) along with x, y such that a*x + b*y = g.
func ExtGCD(a, b int) (g, x, y int) {
	if b == 0 {
		if a < 0 {
			return -a, -1, 0
		}
		return a, 1, 0
	}
	g, x1, y1 := ExtGCD(b, a%b)
	return g, y1, x1 - (a/b)*y1
}

// ModInv returns the multiplicative inverse of a modulo s and true, or
// 0 and false when gcd(a, s) != 1 (no inverse exists).
func ModInv(a, s int) (int, bool) {
	if s <= 0 {
		panic(fmt.Sprintf("num.ModInv: modulus s=%d must be positive", s))
	}
	g, x, _ := ExtGCD(Mod(a, s), s)
	if g != 1 {
		return 0, false
	}
	return Mod(x, s), true
}

// IPow returns base**exp for exp >= 0, or an error on overflow or a
// negative exponent. It is used to size de Bruijn graphs (m^h nodes),
// where silent wraparound would corrupt every downstream structure.
func IPow(base, exp int) (int, error) {
	if exp < 0 {
		return 0, fmt.Errorf("num.IPow: negative exponent %d", exp)
	}
	result := 1
	b := base
	e := exp
	for e > 0 {
		if e&1 == 1 {
			if r, ok := mulCheck(result, b); ok {
				result = r
			} else {
				return 0, fmt.Errorf("num.IPow: %d^%d overflows int", base, exp)
			}
		}
		e >>= 1
		if e > 0 {
			if r, ok := mulCheck(b, b); ok {
				b = r
			} else {
				return 0, fmt.Errorf("num.IPow: %d^%d overflows int", base, exp)
			}
		}
	}
	return result, nil
}

// MustIPow is IPow for callers with compile-time-safe arguments; it
// panics on overflow.
func MustIPow(base, exp int) int {
	v, err := IPow(base, exp)
	if err != nil {
		panic(err)
	}
	return v
}

func mulCheck(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	r := a * b
	if r/b != a {
		return 0, false
	}
	return r, true
}

// Rank returns the number of elements of the sorted slice s that are
// strictly smaller than x, i.e. Rank(x, S) from the paper. x need not be
// a member of s.
func Rank(x int, s []int) int {
	return sort.SearchInts(s, x)
}

// ContainsSorted reports whether x occurs in the sorted slice s.
func ContainsSorted(s []int, x int) bool {
	i := sort.SearchInts(s, x)
	return i < len(s) && s[i] == x
}

// InsertSorted inserts x into the sorted slice s, keeping it sorted, and
// returns the extended slice. Duplicates are allowed.
func InsertSorted(s []int, x int) []int {
	i := sort.SearchInts(s, x)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = x
	return s
}

// Complement returns the sorted elements of [0, n) that are not in the
// sorted slice s. Elements of s outside [0, n) are ignored.
func Complement(s []int, n int) []int {
	out := make([]int, 0, n-len(s))
	j := 0
	for v := 0; v < n; v++ {
		for j < len(s) && s[j] < v {
			j++
		}
		if j < len(s) && s[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}

// Log2Ceil returns ceil(log2(n)) for n >= 1.
func Log2Ceil(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("num.Log2Ceil: n=%d must be >= 1", n))
	}
	bits := 0
	v := n - 1
	for v > 0 {
		bits++
		v >>= 1
	}
	return bits
}

// LogCeil returns the least integer c with base^c >= n, for base >= 2,
// n >= 1.
func LogCeil(base, n int) int {
	if base < 2 {
		panic(fmt.Sprintf("num.LogCeil: base=%d must be >= 2", base))
	}
	if n < 1 {
		panic(fmt.Sprintf("num.LogCeil: n=%d must be >= 1", n))
	}
	c := 0
	p := 1
	for p < n {
		p *= base
		c++
	}
	return c
}

// Min returns the smaller of a and b.
func Min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Abs returns the absolute value of a.
func Abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
