// Package commit is the single ordered transition pipeline of the
// reconfiguration service. Every accepted state change — instance
// create, delete, fault/repair transition — becomes one Entry: the
// canonical journal record plus a fleet-wide sequence number. An entry
// flows through exactly one ordered stage:
//
//	append to the WAL -> wait durable -> publish -> fan out
//
// so the journal on disk, the snapshot pointer readers see, and every
// subscriber's stream all observe the same transitions in the same
// gap-free order. The design is the paper's Section V move of
// replacing per-consumer point-to-point wiring with one shared bus:
// the journal file, the live watch endpoint, follower replication and
// checkpoint compaction are all just consumers of this one log.
//
// Concurrency shape: sequence numbers and WAL buffering happen under
// one small mutex, but the durability wait happens outside it, so
// concurrent committers still share fsyncs via the journal writer's
// group commit. Fan-out is then re-serialized: each committer marks
// its entry ready and delivers the in-order ready prefix, so
// subscribers never observe entry n+1 before entry n, and never
// observe an entry that is not yet durable (per the fsync policy).
//
// Subscriptions are bounded and gap-free. Subscribe(fromSeq) first
// catches up — from the in-memory tail, the installed checkpoint, or
// the journal file on disk — then hands off to live delivery
// atomically. A subscriber that stops draining its buffer is closed
// with ErrSlowSubscriber rather than silently dropping entries; it can
// resubscribe from its last seen sequence number. When compaction has
// dropped the requested prefix the stream instead begins with the
// current checkpoint (entries carrying the checkpoint's sequence
// number), which a consumer must treat as a state reset.
package commit

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"ftnet/internal/journal"
	"ftnet/internal/obs"
)

// Entry is one committed transition: the canonical journal record plus
// its fleet-wide sequence number. Ordinary entries have strictly
// ascending sequence numbers with no gaps; checkpoint entries (from a
// compaction) all carry the sequence number their state covers, so a
// stream may open with several entries at one seq before resuming
// strict +1 steps.
//
// At is the leader's commit wall-clock (unix nanoseconds), stamped
// when the sequence number is assigned. It rides the watch stream so
// followers can measure entry age, but it is NOT part of the canonical
// journal record: entries replayed from disk (catch-up, recovery)
// carry At == 0, and consumers must treat 0 as "age unknown".
type Entry struct {
	Seq uint64
	Rec journal.Record
	At  int64
}

// The subscription and commit error categories.
var (
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("commit: log closed")
	// ErrSlowSubscriber closes a live subscription whose buffer
	// overflowed; the consumer resubscribes from its last sequence
	// number and the catch-up path fills the gap.
	ErrSlowSubscriber = errors.New("commit: subscriber fell behind its buffer")
	// ErrFutureSeq rejects subscriptions starting past the log end.
	ErrFutureSeq = errors.New("commit: subscription starts past the log end")
	// ErrStaleTerm rejects a term bump that does not move the term
	// strictly forward — the commit-plane fence that makes a deposed
	// leader's writes impossible to re-introduce.
	ErrStaleTerm = errors.New("commit: stale term")
)

// DefaultHistory is the in-memory tail buffer (entries) kept for
// subscriber catch-up when none is configured. Entries are O(k), so
// this is small; anything older is served from the journal file.
const DefaultHistory = 4096

// Config configures a Log.
type Config struct {
	// Writer, when non-nil, makes every committed entry durable before
	// it is published or fanned out. File-backed writers (journal.Create)
	// additionally enable catch-up from disk and on-disk compaction.
	Writer *journal.Writer
	// History caps the in-memory catch-up tail (<= 0 selects
	// DefaultHistory).
	History int
	// Obs, when non-nil, receives the pipeline's stage-timing
	// histograms (append, fsync wait, publish, fan-out). A nil registry
	// still records into private histograms, so instrumentation has no
	// branches on the hot path.
	Obs *obs.Registry
}

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Base         uint64 `json:"base"`                    // first seq in the current journal file
	LastSeq      uint64 `json:"last_seq"`                // highest assigned seq
	Subscribers  int    `json:"subscribers"`             // live subscriptions
	Compactions  uint64 `json:"compactions"`             // Install calls that succeeded
	Overflows    uint64 `json:"overflows"`               // subscriptions closed as too slow
	Checkpoint   int    `json:"checkpoint"`              // records in the installed checkpoint
	CheckpointAt uint64 `json:"checkpoint_at,omitempty"` // seq the checkpoint covers
	Term         uint64 `json:"term"`                    // leadership term in force (0 = pre-term log)
	TermSeq      uint64 `json:"term_seq,omitempty"`      // seq of the entry that set the term
}

type pendingEntry struct {
	e     Entry
	ready bool
}

// Log is the ordered commit pipeline. All methods are safe for
// concurrent use except SetPosition and SetWriter, which are boot-time
// wiring (before the first Commit).
type Log struct {
	history int

	mu      sync.Mutex
	w       *journal.Writer
	path    string           // non-empty when w is file-backed
	wopts   journal.Options  // to reopen the file after a compaction swap
	base    uint64           // seq of the first ordinary record in the current file
	lastSeq uint64           // highest assigned seq
	flushed uint64           // highest seq delivered to history + subscribers
	pending []pendingEntry   // assigned, not yet flushed; ascending seq
	hist    []Entry          // flushed tail, [histBase, flushed]
	cp      []journal.Record // last installed checkpoint (state as of cpSeq)
	cpSeq   uint64
	subs    map[*Sub]struct{}
	failed  error // sticky commit-path failure (journal poisoned)
	closed  bool

	// Leadership term fence. term is the highest term observed (via
	// OpTermBump commits or SetTerm recovery wiring); termSeq is the
	// commit seq of the entry that set it (0 when the term predates the
	// current file, e.g. restored from an OpSeqBase marker). Commit
	// refuses OpTermBump records that do not move the term strictly
	// forward, so a deposed leader's fence can never land.
	term    uint64
	termSeq uint64

	compactions uint64
	overflows   uint64

	// Stage histograms, resolved once at construction — hot-path
	// recording is branch-free atomic adds. The four stages partition
	// one Commit call: sequencing + WAL buffering under the lock,
	// the group-commit durability wait, the caller's snapshot publish,
	// and the ready-prefix fan-out to subscribers.
	appendHist *obs.Histogram
	fsyncHist  *obs.Histogram
	pubHist    *obs.Histogram
	fanoutHist *obs.Histogram

	done chan struct{} // closed by Close; unblocks catch-up pumps

	// testHookBeforeSwap, when set, runs after the checkpoint temp file
	// is written but before the atomic rename — the crash-injection
	// point for "old file must win" tests. A non-nil error aborts the
	// install as a crash would.
	testHookBeforeSwap func() error
}

// NewLog returns an empty pipeline at sequence position (base 1, last
// 0). Attach recovery state with SetPosition and a durable writer with
// SetWriter (or Config.Writer) before committing.
func NewLog(cfg Config) *Log {
	l := &Log{
		history: cfg.History,
		base:    1,
		subs:    make(map[*Sub]struct{}),
		done:    make(chan struct{}),
	}
	if l.history <= 0 {
		l.history = DefaultHistory
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	l.appendHist = reg.Histogram("ftnet_commit_append_seconds",
		"Time to assign a sequence number and buffer the WAL frame (under the ordering lock).")
	l.fsyncHist = reg.Histogram("ftnet_commit_fsync_wait_seconds",
		"Time a commit waits for its record to become durable (group-commit fsync stalls).")
	l.pubHist = reg.Histogram("ftnet_commit_publish_seconds",
		"Time in the caller's publish callback (snapshot pointer store).")
	l.fanoutHist = reg.Histogram("ftnet_commit_fanout_seconds",
		"Time delivering the in-order ready prefix to live subscribers.")
	if cfg.Writer != nil {
		l.SetWriter(cfg.Writer)
	}
	return l
}

// SetWriter attaches (or replaces) the durability writer. Boot-time
// wiring: recover the old log first, then attach the append writer —
// concurrent use with Commit is not supported.
func (l *Log) SetWriter(w *journal.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.w = w
	l.path = ""
	if w != nil {
		l.path = w.Path()
		l.wopts = w.Opts()
	}
}

// SetPosition installs the sequence position a journal replay
// recovered: base is the first ordinary record's seq in the file,
// last the seq of its final record. Boot-time wiring, like SetWriter.
func (l *Log) SetPosition(base, last uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if base == 0 {
		base = 1
	}
	l.base = base
	l.lastSeq = last
	l.flushed = last
}

// SetTerm installs the leadership term a journal replay (or a
// follower resync) recovered: term is the highest term in the chain,
// termSeq the commit seq of the record that set it (0 when the term
// was carried by the file's OpSeqBase marker rather than an in-file
// bump). Boot/resync wiring, like SetPosition.
func (l *Log) SetTerm(term, termSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.term = term
	l.termSeq = termSeq
}

// Term returns the leadership term in force and the commit seq of the
// entry that established it (0 when inherited from a compaction
// marker or never bumped).
func (l *Log) Term() (term, termSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.term, l.termSeq
}

// Writer returns the attached journal writer (nil when the log is
// memory-only) — the stats surface reads its counters.
func (l *Log) Writer() *journal.Writer {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w
}

// LastSeq returns the highest assigned sequence number.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// NextSeq returns the sequence number the next committed entry will
// carry.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq + 1
}

// Stats returns the log's counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Base:         l.base,
		LastSeq:      l.lastSeq,
		Subscribers:  len(l.subs),
		Compactions:  l.compactions,
		Overflows:    l.overflows,
		Checkpoint:   len(l.cp),
		CheckpointAt: l.cpSeq,
		Term:         l.term,
		TermSeq:      l.termSeq,
	}
}

// histBaseLocked returns the seq of hist[0]; callers hold l.mu and
// must only use it when hist is non-empty (otherwise it returns
// flushed+1, the "nothing buffered" sentinel that still compares
// correctly).
func (l *Log) histBaseLocked() uint64 {
	return l.flushed - uint64(len(l.hist)) + 1
}

// Commit runs one transition through the pipeline: assign the next
// sequence number and buffer the WAL frame (under the ordering lock),
// wait until the record is durable per the fsync policy (outside it,
// sharing group commits with concurrent committers), call publish —
// the caller's snapshot-pointer store — and finally fan the entry out
// to subscribers, in sequence order. A non-nil error means the
// transition must not be acknowledged: nothing was published or fanned
// out, and the pipeline is poisoned exactly like the journal writer.
func (l *Log) Commit(rec journal.Record, publish func()) (uint64, error) {
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	// The term fence: a bump must move the term strictly forward
	// (multi-term jumps are fine — elections can skip terms), checked
	// under the ordering lock so two racing promotions serialize and
	// the loser is rejected, not reordered.
	if rec.Op == journal.OpTermBump && rec.Term <= l.term {
		cur := l.term
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: bump to %d but term %d is in force", ErrStaleTerm, rec.Term, cur)
	}
	var wseq uint64
	if l.w != nil {
		var err error
		if wseq, err = l.w.AppendAsync(rec); err != nil {
			l.failed = err
			l.mu.Unlock()
			return 0, err
		}
	}
	l.lastSeq++
	seq := l.lastSeq
	if rec.Op == journal.OpTermBump {
		l.term = rec.Term
		l.termSeq = seq
	}
	l.pending = append(l.pending, pendingEntry{e: Entry{Seq: seq, Rec: rec, At: start.UnixNano()}})
	w := l.w
	l.mu.Unlock()
	appended := time.Now()
	l.appendHist.Observe(appended.Sub(start))

	if w != nil {
		if err := w.WaitDurable(wseq); err != nil {
			// Not durable, not acknowledged. Durability is
			// prefix-ordered, so failures strike a contiguous pending
			// tail: removing our own entry cannot strand a later ready
			// one behind it.
			l.mu.Lock()
			l.failed = err
			for i := len(l.pending) - 1; i >= 0; i-- {
				if l.pending[i].e.Seq == seq {
					l.pending = slices.Delete(l.pending, i, i+1)
					break
				}
			}
			l.mu.Unlock()
			return 0, err
		}
	}
	durable := time.Now()
	l.fsyncHist.Observe(durable.Sub(appended))
	if publish != nil {
		publish()
	}
	published := time.Now()
	l.pubHist.Observe(published.Sub(durable))

	l.mu.Lock()
	for i := range l.pending {
		if l.pending[i].e.Seq == seq {
			l.pending[i].ready = true
			break
		}
	}
	l.flushReadyLocked()
	l.mu.Unlock()
	l.fanoutHist.Observe(time.Since(published))
	return seq, nil
}

// flushReadyLocked moves the in-order ready prefix of pending into the
// history tail and delivers it to live subscribers. Caller holds l.mu.
func (l *Log) flushReadyLocked() {
	for len(l.pending) > 0 && l.pending[0].ready && l.pending[0].e.Seq == l.flushed+1 {
		e := l.pending[0].e
		l.pending = l.pending[1:]
		l.flushed = e.Seq
		l.hist = append(l.hist, e)
		// Trim in chunks so the copy amortizes to O(1) per commit.
		if len(l.hist) > l.history+l.history/2 {
			l.hist = append([]Entry(nil), l.hist[len(l.hist)-l.history:]...)
		}
		for s := range l.subs {
			s.pushLocked(e)
		}
	}
}

// Close shuts the pipeline down: further commits fail with ErrClosed
// and every subscription channel is closed. The attached journal
// writer is closed too (flushing and fsyncing its tail).
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	close(l.done)
	for s := range l.subs {
		s.closeLocked(ErrClosed)
	}
	w := l.w
	l.mu.Unlock()
	if w != nil {
		return w.Close()
	}
	return nil
}

// Quiesce closes every live subscription with ErrClosed but leaves the
// log itself open: commits still succeed and the journal writer stays
// attached. It is the graceful-shutdown half-step between draining
// request traffic and closing the journal — watch streams end at a
// record boundary (a clean EOF for the consumer) while the final
// flush+fsync still lies ahead.
func (l *Log) Quiesce() {
	l.mu.Lock()
	for s := range l.subs {
		s.closeLocked(ErrClosed)
	}
	l.mu.Unlock()
}

// Install atomically replaces the log's on-disk prefix with a
// checkpoint: cps must capture the complete fleet state as of sequence
// number seq. The journal file is rewritten as [seq-base marker,
// checkpoint records], swapped into place with an atomic rename (a
// crash before the rename leaves the old file untouched — old file
// wins), and the append writer reopened over it; subsequent commits
// continue at seq+1. The checkpoint is also retained in memory so
// fresh subscribers can catch up without touching the file.
//
// The caller must guarantee no commit is in flight (the fleet layer
// holds its commit gate exclusively) and, for a leader compaction,
// seq == LastSeq(). A follower installing a checkpoint it received may
// pass any seq; live subscribers then see the next entries jump to
// seq+1, the documented reset signal.
func (l *Log) Install(seq uint64, cps []journal.Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.pending) > 0 {
		return fmt.Errorf("commit: install with %d entries in flight", len(l.pending))
	}
	if l.w != nil && l.path != "" {
		if err := l.installFileLocked(seq, cps); err != nil {
			return err
		}
	}
	l.cp = slices.Clone(cps)
	l.cpSeq = seq
	l.base = seq + 1
	l.lastSeq = seq
	l.flushed = seq
	// Drop the pre-checkpoint history: catch-up below seq now serves
	// the checkpoint (strictly bounded, the point of compacting) and a
	// subscriber resuming inside the dropped range resynchronizes from
	// it — the same reset it would see after a restart.
	l.hist = nil
	l.compactions++
	return nil
}

// installFileLocked writes the checkpoint to a temp file, fsyncs it,
// renames it over the journal, and swaps the append writer.
func (l *Log) installFileLocked(seq uint64, cps []journal.Record) error {
	tmp := l.path + ".compact"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("commit: checkpoint temp: %w", err)
	}
	// SyncNever: one explicit fsync below covers the whole checkpoint.
	tw := journal.NewWriter(f, journal.Options{Sync: journal.SyncNever})
	werr := tw.Append(journal.Record{Op: journal.OpSeqBase, ID: journal.SeqBaseID, Seq: seq + 1, Term: l.term})
	for _, rec := range cps {
		if werr != nil {
			break
		}
		werr = tw.Append(rec)
	}
	if werr == nil {
		werr = tw.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit: write checkpoint: %w", werr)
	}
	if l.testHookBeforeSwap != nil {
		if err := l.testHookBeforeSwap(); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("commit: swap checkpoint: %w", err)
	}
	syncDir(l.path)
	// The old writer's file is now unlinked; close it and append to the
	// fresh checkpoint from here on.
	l.w.Close()
	nw, err := journal.Create(l.path, l.wopts)
	if err != nil {
		l.failed = fmt.Errorf("commit: reopen journal after compaction: %w", err)
		return l.failed
	}
	l.w = nw
	return nil
}

// syncDir fsyncs the directory containing path so the rename itself is
// durable; best effort (some filesystems refuse directory fsyncs).
func syncDir(path string) {
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
}

// scanFile reads complete records from the journal file at path,
// calling emit for each entry whose seq is in [from, limit], and
// returns the seq the scan reached (the next unseen seq). Sequence
// numbers are positional — OpSeqBase records reset the counter,
// checkpoint records carry the seq before the base, every other record
// consumes one — mirroring how the records were committed. A torn tail
// ends the scan cleanly: under a live writer it is just the flush
// frontier, and entries past limit are not yet flushed anyway.
func scanFile(path string, from, limit uint64, emit func(Entry) bool) (uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return from, err
	}
	defer f.Close()
	jr := journal.NewReader(f)
	next := uint64(1)
	for {
		rec, err := jr.Next()
		if err == io.EOF || errors.Is(err, journal.ErrTorn) {
			return next, nil
		}
		if err != nil {
			return next, err
		}
		switch rec.Op {
		case journal.OpSeqBase:
			next = rec.Seq
		case journal.OpCheckpoint:
			seq := next - 1
			if seq >= from && seq <= limit {
				if !emit(Entry{Seq: seq, Rec: rec}) {
					return next, nil
				}
			}
		default:
			if next > limit {
				return next, nil
			}
			if next >= from {
				if !emit(Entry{Seq: next, Rec: rec}) {
					return next + 1, nil
				}
			}
			next++
		}
	}
}
