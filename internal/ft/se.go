package ft

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

// SEParams identifies a fault-tolerant shuffle-exchange network for
// target SE_h tolerating k node faults.
type SEParams struct {
	H int // bits, >= 3
	K int // fault budget, >= 0
}

// Validate checks the parameters.
func (p SEParams) Validate() error {
	return Params{M: 2, H: p.H, K: p.K}.Validate()
}

// DB returns the corresponding base-2 fault-tolerant de Bruijn
// parameters (the host construction both variants build on).
func (p SEParams) DB() Params { return Params{M: 2, H: p.H, K: p.K} }

// NTarget returns 2^h.
func (p SEParams) NTarget() int { return num.MustIPow(2, p.H) }

// NHost returns 2^h + k.
func (p SEParams) NHost() int { return p.NTarget() + p.K }

// String returns a readable identifier.
func (p SEParams) String() string { return fmt.Sprintf("FTSE^%d_%d", p.K, p.H) }

// DegreeBoundViaDB is the paper's bound for the embedding-based variant:
// the host is exactly B^k_{2,h}, so the degree is at most 4k+4.
func (p SEParams) DegreeBoundViaDB() int { return 4*p.K + 4 }

// DegreeBoundNatural bounds the natural-labeling variant implemented by
// NewSENatural: the B^k_{2,h} edges (4k+4) plus the consecutive band of
// width k+1 in each direction (2k+2), i.e. 6k+6 before overlap. The
// paper states 6k+4 for its (not fully specified) natural construction;
// tests measure the actual maximum, which lies between the two.
func (p SEParams) DegreeBoundNatural() int { return 6*p.K + 6 }

// NewSEViaDB returns the fault-tolerant shuffle-exchange network of
// Section I / VI: the host graph is simply B^k_{2,h}, and the target
// SE_h reaches it through a same-size embedding psi into B_{2,h}
// composed with the de Bruijn reconfiguration map. The returned psi maps
// SE node x to its de Bruijn identity; after k faults, SE node x lives
// at host node phi(psi(x)).
func NewSEViaDB(p SEParams) (host *graph.Graph, psi []int, err error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	host, err = New(p.DB())
	if err != nil {
		return nil, nil, err
	}
	psi, err = shuffle.EmbedIntoDeBruijn(p.H)
	if err != nil {
		return nil, nil, err
	}
	return host, psi, nil
}

// NewSENatural returns the fault-tolerant shuffle-exchange network under
// the natural (identity) labeling: SE node x keeps its integer identity
// and the reconfiguration map is applied to it directly.
//
// Required edges:
//
//   - Shuffle edges of SE_h are de Bruijn edges under the identity
//     labeling, so the B^k_{2,h} edge rule covers their images
//     (Theorem 1's proof applies verbatim).
//   - Exchange edges join x and x+1 (x even) and never wrap; by
//     Lemma 1 their images are a and a+d with d in {1 .. k+1}, so the
//     host additionally carries every edge (a, a+d) with 1 <= d <= k+1.
func NewSENatural(p SEParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	dbHost, err := New(p.DB())
	if err != nil {
		return nil, err
	}
	s := p.NHost()
	band := graph.NewBuilder(s)
	for a := 0; a < s; a++ {
		for d := 1; d <= p.K+1 && a+d < s; d++ {
			band.AddEdge(a, a+d)
		}
	}
	return graph.Union(dbHost, band.Build()), nil
}

// SEMapViaDB composes the SE->dB embedding with the de Bruijn
// reconfiguration for a concrete fault set: the returned slice maps each
// SE node to its healthy host node in B^k_{2,h}.
func SEMapViaDB(p SEParams, psi []int, faults []int) ([]int, error) {
	if len(psi) != p.NTarget() {
		return nil, fmt.Errorf("ft: psi length %d != 2^h = %d", len(psi), p.NTarget())
	}
	mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
	if err != nil {
		return nil, err
	}
	// Materialize the de Bruijn embedding once (O(n + k)), then permute
	// through psi — cheaper than n O(log k) rank searches.
	dense := mp.PhiSlice()
	out := make([]int, p.NTarget())
	for x := range out {
		out[x] = dense[psi[x]]
	}
	return out, nil
}
