package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fleet"
)

// Options tunes Dial.
type Options struct {
	// Conns is the connection pool size (default DefaultConns). Many
	// callers sharing few connections is the intended shape: requests
	// pipeline down each connection and complete out of order, so one
	// connection sustains many in-flight callers.
	Conns int
	// Timeout bounds one round trip, send to matched response (default
	// DefaultTimeout).
	Timeout time.Duration
	// DialTimeout bounds connection establishment (default Timeout).
	DialTimeout time.Duration
}

// The option defaults.
const (
	DefaultConns   = 2
	DefaultTimeout = 30 * time.Second
)

// Client speaks the binary RPC plane: a fixed pool of persistent
// connections, each carrying many pipelined in-flight requests tagged
// with sequence numbers and completed out of order by a reader
// goroutine. Callers' encoded frames accumulate in a shared write
// buffer and are flushed in groups (the journal's group-commit shape),
// so concurrent callers share syscalls on the way out the same way the
// server coalesces them on the way back.
//
// A connection that fails is failed as a whole — every pending call
// gets a TransportError — and is re-dialed lazily on next use.
// Idempotent reads (Lookup, LookupBatch) retry once on a fresh
// connection; ApplyBatch is never resent after a transport failure,
// because the burst may have been applied before the connection died.
// All methods are safe for concurrent use.
type Client struct {
	addr string
	opts Options
	next atomic.Uint64
	pool []*connSlot

	mu     sync.Mutex
	closed bool
}

type connSlot struct {
	mu sync.Mutex
	cc *clientConn
}

// Dial connects to a wire server. The first connection is established
// eagerly so a bad address fails here, not on the first call.
func Dial(addr string, opts Options) (*Client, error) {
	if opts.Conns <= 0 {
		opts.Conns = DefaultConns
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = opts.Timeout
	}
	c := &Client{addr: addr, opts: opts, pool: make([]*connSlot, opts.Conns)}
	for i := range c.pool {
		c.pool[i] = &connSlot{}
	}
	cc, err := dialConn(addr, opts)
	if err != nil {
		return nil, err
	}
	c.pool[0].cc = cc
	return c, nil
}

// Close hangs up every pooled connection; in-flight calls fail with a
// TransportError.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	for _, s := range c.pool {
		s.mu.Lock()
		if s.cc != nil {
			s.cc.fail(errors.New("client closed"))
			s.cc = nil
		}
		s.mu.Unlock()
	}
	return nil
}

// Lookup answers where target node x of instance id runs now, plus the
// epoch of the snapshot that answered.
func (c *Client) Lookup(id string, x int) (phi int, epoch uint64, err error) {
	ca := getCall(MsgLookup)
	defer putCall(ca)
	err = c.roundTrip(Request{Type: MsgLookup, ID: id, X: x}, ca, true)
	return ca.phi, ca.epoch, err
}

// LookupBatch resolves xs in one frame each way, writing the answers
// into phis (which must have len(xs)) and returning the epoch of the
// single snapshot that answered the whole batch.
func (c *Client) LookupBatch(id string, xs, phis []int) (epoch uint64, err error) {
	if len(phis) != len(xs) {
		return 0, fmt.Errorf("wire: phis has len %d, want %d", len(phis), len(xs))
	}
	ca := getCall(MsgLookupBatch)
	ca.phis = phis
	defer putCall(ca)
	err = c.roundTrip(Request{Type: MsgLookupBatch, ID: id, Xs: xs}, ca, true)
	return ca.epoch, err
}

// ApplyBatch applies a whole fault burst as one atomic transition.
// After a TransportError the burst's fate is unknown (it may have
// committed just before the connection died) and it is NOT resent;
// the caller decides whether re-applying is safe.
func (c *Client) ApplyBatch(id string, events []fleet.Event) (fleet.EventResult, error) {
	ca := getCall(MsgApplyBatch)
	defer putCall(ca)
	err := c.roundTrip(Request{Type: MsgApplyBatch, ID: id, Events: events}, ca, false)
	return ca.result, err
}

// roundTrip sends req on a pooled connection and waits for its
// response. Transport failures retry once on a fresh connection for
// idempotent requests only; dial failures (nothing sent) retry for
// everything.
func (c *Client) roundTrip(req Request, ca *call, idempotent bool) error {
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		var cc *clientConn
		if cc, err = c.conn(); err != nil {
			continue // nothing was sent; a retry is safe for any request
		}
		if err = cc.do(req, ca); err == nil || !IsTransport(err) {
			return err
		}
		if !idempotent {
			return err
		}
	}
	return err
}

// conn returns a live pooled connection, re-dialing its slot if the
// previous one failed.
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, transportErrf("client closed")
	}
	c.mu.Unlock()
	s := c.pool[c.next.Add(1)%uint64(len(c.pool))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cc != nil {
		s.cc.mu.Lock()
		dead := s.cc.err != nil
		s.cc.mu.Unlock()
		if !dead {
			return s.cc, nil
		}
		s.cc = nil
	}
	cc, err := dialConn(c.addr, c.opts)
	if err != nil {
		return nil, err
	}
	s.cc = cc
	return cc, nil
}

// call is one in-flight request's completion slot, pooled across
// calls. done is buffered so the reader never blocks handing off a
// result. The deadline timer is pooled with the call — a fresh
// time.NewTimer per round trip is three allocations, and the pooled
// Reset is what keeps the steady-state lookup path at zero.
type call struct {
	done   chan error
	timer  *time.Timer
	t      MsgType
	phi    int
	epoch  uint64
	phis   []int // LookupBatch: caller-provided destination
	result fleet.EventResult
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan error, 1)} }}

func getCall(t MsgType) *call {
	ca := callPool.Get().(*call)
	ca.t = t
	return ca
}

func putCall(ca *call) {
	// Drain a result that raced in after its caller gave up (timeout),
	// so a reused call never sees a stale completion.
	select {
	case <-ca.done:
	default:
	}
	ca.phis = nil
	callPool.Put(ca)
}

// clientConn is one pooled connection: a writer side that group-flushes
// the shared chunked write queue as one writev, and a reader goroutine
// that matches response frames to pending calls by sequence number.
type clientConn struct {
	nc      net.Conn
	timeout time.Duration

	mu       sync.Mutex
	cond     *sync.Cond // waits for the in-progress flush to finish
	wq       writeQueue // frames accumulated since the last flush
	chunks   [][]byte   // flusher's chunk scratch, reused across flushes
	vecs     net.Buffers
	flushing bool
	seq      uint64
	pending  map[uint64]*call
	err      error // first failure; set once, fails all pending
}

func dialConn(addr string, opts Options) (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, &TransportError{Err: err}
	}
	cc := &clientConn{nc: nc, timeout: opts.Timeout, pending: make(map[uint64]*call)}
	cc.cond = sync.NewCond(&cc.mu)
	go cc.readLoop()
	return cc, nil
}

// do encodes req into the shared write queue, registers ca under a fresh
// sequence number, flushes, and waits for the reader (or a failure, or
// the deadline) to complete ca.
func (cc *clientConn) do(req Request, ca *call) error {
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return &TransportError{Err: err}
	}
	cc.seq++
	req.Seq = cc.seq
	mark := cc.wq.mark()
	buf, err := AppendRequest(appendFrameHeader(cc.wq.active), req)
	if err != nil {
		cc.wq.active = cc.wq.active[:mark]
		cc.mu.Unlock()
		return err // invalid input, not a transport failure
	}
	cc.wq.sealFrameAt(buf, mark)
	cc.pending[req.Seq] = ca
	seq := req.Seq
	cc.mu.Unlock()
	// A flush failure fails the whole connection, which delivers a
	// TransportError to every pending call — including this one — so
	// the wait below completes either way.
	cc.flush()
	return cc.wait(seq, ca)
}

// flush writes the accumulated frames in groups: one flusher at a time
// takes the queued chunk list and writes it outside the lock as one
// vectored write (writev — the whole group leaves in one syscall, with
// no copy into a staging buffer) while later callers' frames
// accumulate in fresh chunks (the journal's group-commit shape).
// Callers loop until their own frame — appended before they got here —
// is on the wire or the connection has failed.
func (cc *clientConn) flush() {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	for {
		if cc.err != nil || cc.wq.queued == 0 {
			return
		}
		if cc.flushing {
			cc.cond.Wait()
			continue
		}
		cc.flushing = true
		chunks, _, _ := cc.wq.take(cc.chunks)
		cc.mu.Unlock()
		cc.nc.SetWriteDeadline(time.Now().Add(cc.timeout))
		werr := writeBuffers(cc.nc, &cc.vecs, chunks)
		recycle(chunks)
		cc.mu.Lock()
		cc.chunks = chunks
		cc.flushing = false
		cc.cond.Broadcast()
		if werr != nil {
			cc.failLocked(werr)
			return
		}
	}
}

// wait blocks until the reader completes ca or the round-trip deadline
// passes. On timeout the pending entry is withdrawn under the lock; if
// the reader already claimed it, the raced-in completion is taken
// instead, so the call slot is always quiescent when wait returns.
func (cc *clientConn) wait(seq uint64, ca *call) error {
	if ca.timer == nil {
		ca.timer = time.NewTimer(cc.timeout)
	} else {
		ca.timer.Reset(cc.timeout)
	}
	defer ca.timer.Stop()
	select {
	case err := <-ca.done:
		return err
	case <-ca.timer.C:
		cc.mu.Lock()
		_, still := cc.pending[seq]
		if still {
			delete(cc.pending, seq)
		}
		cc.mu.Unlock()
		if !still {
			return <-ca.done
		}
		return transportErrf("no response to %v seq %d within %v", ca.t, seq, cc.timeout)
	}
}

// readLoop is the connection's single reader: it decodes response
// frames and completes the matching pending call, in whatever order
// the server answered. The receive buffer is a pooled class buffer
// reused across frames (dispatch copies results into caller-owned
// memory before the next read, so reuse is safe) and recirculated to
// the pool when the connection dies.
func (cc *clientConn) readLoop() {
	br := bufio.NewReaderSize(cc.nc, readBufSize)
	var hdr [frameHeaderSize]byte
	var buf []byte
	defer func() { putBuf(buf) }()
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			cc.fail(err)
			return
		}
		size := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if size > MaxFrame {
			cc.fail(fmt.Errorf("frame of %d bytes exceeds limit", size))
			return
		}
		buf = growRecv(buf, int(size))
		if _, err := io.ReadFull(br, buf); err != nil {
			cc.fail(err)
			return
		}
		if crc32.Checksum(buf, castagnoli) != want {
			cc.fail(errors.New("response frame CRC mismatch"))
			return
		}
		if err := cc.dispatch(buf); err != nil {
			cc.fail(err)
			return
		}
	}
}

// dispatch decodes one response payload into its pending call. A
// payload that does not decode, or answers with the wrong type, is
// protocol corruption: the connection is failed (the caller returns
// the error).
func (cc *clientConn) dispatch(payload []byte) error {
	if len(payload) < 3 {
		return errors.New("short response payload")
	}
	if payload[0] != Version && payload[0] != VersionShard {
		return fmt.Errorf("unknown response version %d", payload[0])
	}
	t := MsgType(payload[1])
	d := &cursor{b: payload, off: 2}
	seq, err := d.uvarint()
	if err != nil {
		return err
	}
	cc.mu.Lock()
	ca := cc.pending[seq]
	delete(cc.pending, seq)
	cc.mu.Unlock()
	if ca == nil {
		return nil // the caller timed out and withdrew; drop the late answer
	}
	if t != ca.t {
		err := fmt.Errorf("response type %v to a %v request", t, ca.t)
		ca.done <- &TransportError{Err: err}
		return err
	}
	if err := decodeInto(ca, payload[0], d); err != nil {
		ca.done <- &TransportError{Err: err}
		return err
	}
	return nil
}

// decodeInto finishes decoding a response body into ca's result fields
// and completes it. The cursor discipline matches DecodeResponse; the
// split exists so LookupBatch answers land directly in the caller's
// phis slice instead of an allocated one.
func decodeInto(ca *call, v byte, d *cursor) error {
	st, err := d.byteVal()
	if err != nil {
		return err
	}
	if Status(st) != StatusOK {
		if !validStatus(Status(st), v) {
			return fmt.Errorf("status %d not valid at version %d", st, v)
		}
		e := &Error{Status: Status(st)}
		if e.Msg, err = d.str(); err != nil {
			return errors.New("malformed error response")
		}
		if e.Status == StatusWrongShard {
			if e.Owner, err = d.str(); err != nil {
				return errors.New("malformed error response")
			}
		}
		if !d.done() {
			return errors.New("malformed error response")
		}
		ca.done <- e
		return nil
	}
	switch ca.t {
	case MsgLookup:
		if ca.phi, err = d.intVal(); err != nil {
			return err
		}
		if ca.epoch, err = d.uvarint(); err != nil {
			return err
		}
	case MsgLookupBatch:
		if ca.epoch, err = d.uvarint(); err != nil {
			return err
		}
		n, err := d.count()
		if err != nil {
			return err
		}
		if n != len(ca.phis) {
			return fmt.Errorf("lookup batch answered %d of %d entries", n, len(ca.phis))
		}
		for i := range ca.phis {
			if ca.phis[i], err = d.intVal(); err != nil {
				return err
			}
		}
	case MsgApplyBatch:
		r := &ca.result
		if r.Epoch, err = d.uvarint(); err != nil {
			return err
		}
		if r.NumFaults, err = d.intVal(); err != nil {
			return err
		}
		if r.Budget, err = d.intVal(); err != nil {
			return err
		}
		if r.Applied, err = d.intVal(); err != nil {
			return err
		}
	}
	if !d.done() {
		return errors.New("trailing bytes after response body")
	}
	ca.done <- nil
	return nil
}

func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	cc.failLocked(err)
	cc.mu.Unlock()
}

// failLocked marks the connection dead exactly once, closes it (which
// also stops the reader), and fails every pending call.
func (cc *clientConn) failLocked(err error) {
	if cc.err != nil {
		return
	}
	cc.err = err
	cc.nc.Close()
	for seq, ca := range cc.pending {
		delete(cc.pending, seq)
		ca.done <- &TransportError{Err: err}
	}
	cc.cond.Broadcast()
}
