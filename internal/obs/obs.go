// Package obs is the dependency-free metrics core of the
// reconfiguration service: lock-free latency histograms, counters and
// gauges behind a named registry, exported as hand-rolled Prometheus
// text and as a structured JSON section of /v1/stats.
//
// The design constraint is the hot path: Lookup is 0 allocs/op and
// ApplyBatch is a handful, and instrumenting them must not change
// that. Every recording operation is a few atomic adds — no locks, no
// allocation, no map lookups (callers resolve metrics once, at wiring
// time, and keep the pointer). Histograms bucket by powers of two
// (bucket i holds durations whose nanosecond count has i significant
// bits, i.e. [2^(i-1), 2^i)), so Observe is one bits.Len64 plus four
// atomic operations, and a quantile read is never off by more than one
// bucket (a factor of two) from the exact sorted-sample quantile —
// plenty for p99 regression gating, where regressions of interest are
// multiples, not percents.
package obs

import (
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// NumBuckets is the histogram resolution: bucket NumBuckets-1 absorbs
// everything at or above 2^(NumBuckets-2) ns (~4.6 minutes) — far past
// any latency this service should ever record, while keeping the
// per-histogram footprint at a few hundred bytes.
const NumBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two
// buckets. The zero value is ready to use; all methods are safe for
// concurrent use. Observe never allocates.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [NumBuckets]atomic.Uint64
}

// bucketOf maps a nanosecond value to its bucket index: the number of
// significant bits, clamped to the top bucket. Zero lands in bucket 0.
func bucketOf(ns uint64) int {
	i := bits.Len64(ns)
	if i >= NumBuckets {
		return NumBuckets - 1
	}
	return i
}

// Observe records one duration. Negative durations (clock weirdness on
// the caller's side) count as zero rather than wrapping.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot returns a point-in-time copy of the histogram. Under
// concurrent Observe calls the fields may trail each other slightly
// (like any stats counter); quantiles clamp rather than misbehave.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile is shorthand for Snapshot().Quantile(p).
func (h *Histogram) Quantile(p float64) time.Duration { return h.Snapshot().Quantile(p) }

// HistSnapshot is an immutable copy of a Histogram's state.
type HistSnapshot struct {
	Count   uint64
	Sum     uint64 // ns
	Max     uint64 // ns
	Buckets [NumBuckets]uint64
}

// Quantile returns the p-th percentile (0 <= p <= 100) of the bucketed
// distribution: the upper bound of the bucket the nearest-rank sample
// falls in, clamped to the observed maximum. The result is within one
// bucket (a factor of two) of the exact sorted-sample percentile.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	// Sum the buckets rather than trusting Count: under concurrent
	// Observe calls Count may lead the bucket increments briefly, and a
	// rank past the buckets' total would fall off the end.
	var total uint64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			upper := upperNS(i)
			if s.Max > 0 && upper > s.Max {
				upper = s.Max
			}
			return time.Duration(upper)
		}
	}
	return time.Duration(s.Max)
}

// upperNS is the inclusive nanosecond upper bound of bucket i.
func upperNS(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return 1<<uint(i) - 1
}

// Counter is a monotonically increasing counter. The zero value is
// ready to use.
type Counter struct{ n atomic.Uint64 }

// Add increments the counter by d.
func (c *Counter) Add(d uint64) { c.n.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is an instantaneous signed value. The zero value is ready to
// use.
type Gauge struct{ n atomic.Int64 }

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.n.Add(d) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// metricKind tags a family's metric type for export.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one named metric family: a fixed kind, an optional label
// key, and the labeled children in registration order (the "" label is
// the unlabeled singleton).
type family struct {
	name     string
	help     string
	kind     metricKind
	labelKey string

	order      []string // label values in first-seen order
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Registry names and owns a set of metric families. Registration
// (Counter/Gauge/Histogram/HistogramVec and Vec.With) takes a lock and
// is meant for wiring time; the returned metric pointers are then used
// directly on hot paths with no registry involvement. Export walks
// families in name order so /metrics and /v1/stats are stable.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted lazily at export
	sorted   bool
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the named family, creating it with the given shape on
// first use. Re-registering an existing name with a different kind or
// label key panics: that is a wiring bug, not a runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labelKey string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind, labelKey: labelKey,
			counters:   make(map[string]*Counter),
			gauges:     make(map[string]*Gauge),
			histograms: make(map[string]*Histogram),
		}
		r.families[name] = f
		r.sorted = false
		return f
	}
	if f.kind != kind || f.labelKey != labelKey {
		panic("obs: metric " + name + " re-registered with a different kind or label key")
	}
	return f
}

// child returns the metric for one label value, creating it on first
// use; caller passes the family's lock via r.mu (lookup callers hold
// nothing, so take it here).
func (r *Registry) childHistogram(f *family, label string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := f.histograms[label]
	if !ok {
		h = &Histogram{}
		f.histograms[label] = h
		f.order = append(f.order, label)
	}
	return h
}

// Counter returns the named (unlabeled) counter, creating it on first
// use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, kindCounter, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := f.counters[""]
	if !ok {
		c = &Counter{}
		f.counters[""] = c
		f.order = append(f.order, "")
	}
	return c
}

// Gauge returns the named (unlabeled) gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, kindGauge, "")
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := f.gauges[""]
	if !ok {
		g = &Gauge{}
		f.gauges[""] = g
		f.order = append(f.order, "")
	}
	return g
}

// Histogram returns the named (unlabeled) histogram, creating it on
// first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	f := r.lookup(name, help, kindHistogram, "")
	return r.childHistogram(f, "")
}

// HistogramVec is a histogram family keyed by one label (e.g. the HTTP
// route). Resolve children with With at wiring time and keep the
// pointers; With takes the registry lock.
type HistogramVec struct {
	r *Registry
	f *family
}

// HistogramVec returns the named labeled histogram family.
func (r *Registry) HistogramVec(name, help, labelKey string) *HistogramVec {
	return &HistogramVec{r: r, f: r.lookup(name, help, kindHistogram, labelKey)}
}

// With returns the child histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(label string) *Histogram {
	return v.r.childHistogram(v.f, label)
}
