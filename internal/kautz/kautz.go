// Package kautz implements Kautz networks K(m,h) — the de Bruijn
// graph's close relative, named alongside it in the paper's ref [1]
// ("de Bruijn and Kautz networks: a competitor for the hypercube?").
//
// K(m,h) has nodes the h-digit strings over an alphabet of m+1 symbols
// in which consecutive digits differ; edges are digit shifts, exactly as
// in de Bruijn graphs. It therefore has (m+1)·m^(h-1) nodes, degree at
// most 2m, no self-loops at all, and is an induced-by-label subgraph of
// the base-(m+1) de Bruijn graph — which is how the paper's
// fault-tolerant machinery can shelter it: B^k_{m+1,h} is
// (k, B_{m+1,h})-tolerant and hence (k, K(m,h))-tolerant through the
// same embedding (at the cost of the larger host; a minimal-spare
// FT-Kautz is an open problem the paper's framework poses).
package kautz

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Params identifies a Kautz network K(m,h).
type Params struct {
	M int // out-degree / alphabet size minus one, >= 2
	H int // digits, >= 2
}

// Validate checks constructibility.
func (p Params) Validate() error {
	if p.M < 2 {
		return fmt.Errorf("kautz: m=%d must be >= 2", p.M)
	}
	if p.H < 2 {
		return fmt.Errorf("kautz: h=%d must be >= 2", p.H)
	}
	if _, err := num.IPow(p.M+1, p.H); err != nil {
		return fmt.Errorf("kautz: too large: %v", err)
	}
	return nil
}

// N returns the node count (m+1) * m^(h-1).
func (p Params) N() int {
	return (p.M + 1) * num.MustIPow(p.M, p.H-1)
}

// String returns conventional notation.
func (p Params) String() string { return fmt.Sprintf("K(%d,%d)", p.M, p.H) }

// Nodes returns the base-(m+1) values of all Kautz strings, sorted.
// These are the labels under which K(m,h) sits inside B_{m+1,h}.
func Nodes(p Params) []int {
	alphabet := p.M + 1
	limit := num.MustIPow(alphabet, p.H)
	out := make([]int, 0, p.N())
	for v := 0; v < limit; v++ {
		if isKautz(v, alphabet, p.H) {
			out = append(out, v)
		}
	}
	return out
}

func isKautz(v, alphabet, h int) bool {
	prev := -1
	for i := 0; i < h; i++ {
		d := v % alphabet
		if d == prev {
			return false
		}
		prev = d
		v /= alphabet
	}
	return true
}

// New builds K(m,h) with nodes renumbered 0..N-1 (in label order). It
// also returns the labels slice: labels[i] is node i's base-(m+1) value
// inside B_{m+1,h}.
func New(p Params) (*graph.Graph, []int, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	labels := Nodes(p)
	index := make(map[int]int, len(labels))
	for i, v := range labels {
		index[v] = i
	}
	alphabet := p.M + 1
	limit := num.MustIPow(alphabet, p.H)
	b := graph.NewBuilder(len(labels))
	for i, v := range labels {
		for r := 0; r < alphabet; r++ {
			// Shifting in a digit equal to the current last digit leaves
			// the Kautz set; all other shifts stay inside it.
			if r == v%alphabet {
				continue
			}
			w := num.X(v, alphabet, r, limit)
			j, ok := index[w]
			if !ok {
				return nil, nil, fmt.Errorf("kautz: internal error: shift of %d left the node set", v)
			}
			b.AddEdge(i, j)
		}
	}
	return b.Build(), labels, nil
}

// MustNew is New that panics on error.
func MustNew(p Params) (*graph.Graph, []int) {
	g, labels, err := New(p)
	if err != nil {
		panic(err)
	}
	return g, labels
}
