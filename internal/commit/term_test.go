package commit

import (
	"errors"
	"os"
	"testing"

	"ftnet/internal/journal"
)

func bumpRec(term uint64) journal.Record {
	return journal.Record{Op: journal.OpTermBump, ID: journal.SeqBaseID, Term: term}
}

// TestCommitTermFence pins the commit-plane leadership fence: a term
// bump must move the term strictly forward, racing/stale bumps are
// rejected with ErrStaleTerm (without consuming a sequence number),
// and multi-term jumps are legal.
func TestCommitTermFence(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()

	if _, err := l.Commit(bumpRec(0), nil); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("bump to 0 = %v, want ErrStaleTerm", err)
	}
	seq := mustCommit(t, l, bumpRec(1))
	if term, termSeq := l.Term(); term != 1 || termSeq != seq {
		t.Fatalf("Term() = (%d, %d), want (1, %d)", term, termSeq, seq)
	}
	// Ordinary entries still flow after the fence.
	mustCommit(t, l, trec("a", 1, 3))
	// A stale bump — the deposed leader's promotion racing in — is
	// rejected and consumes no seq.
	before := l.LastSeq()
	if _, err := l.Commit(bumpRec(1), nil); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("re-bump to 1 = %v, want ErrStaleTerm", err)
	}
	if l.LastSeq() != before {
		t.Fatalf("stale bump consumed a seq: %d -> %d", before, l.LastSeq())
	}
	// Elections may skip terms.
	seq = mustCommit(t, l, bumpRec(5))
	if term, termSeq := l.Term(); term != 5 || termSeq != seq {
		t.Fatalf("Term() after jump = (%d, %d), want (5, %d)", term, termSeq, seq)
	}
	if st := l.Stats(); st.Term != 5 || st.TermSeq != seq {
		t.Fatalf("Stats term = (%d, %d), want (5, %d)", st.Term, st.TermSeq, seq)
	}
}

// TestInstallCarriesTerm compacts a file-backed log after a term bump
// and checks the term survives the checkpoint-and-truncate swap via
// the OpSeqBase marker, and that the stale-bump fence still holds
// afterwards even though the bump record itself was compacted away.
func TestInstallCarriesTerm(t *testing.T) {
	l, path := fileLog(t, journal.Options{Sync: journal.SyncAlways})
	mustCommit(t, l, bumpRec(3))
	mustCommit(t, l, trec("a", 1, 2))
	cps := []journal.Record{{
		Op: journal.OpCheckpoint, ID: "a",
		Spec:   journal.Spec{Kind: "debruijn", M: 2, H: 4, K: 3},
		Epoch:  1,
		Faults: []int{2},
	}}
	if err := l.Install(2, cps); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, _, err := journal.ReadAll(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Op != journal.OpSeqBase || recs[0].Seq != 3 || recs[0].Term != 3 {
		t.Fatalf("compacted head %+v, want OpSeqBase{Seq: 3, Term: 3}", recs)
	}
	if _, err := l.Commit(bumpRec(2), nil); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("bump below compacted-away term = %v, want ErrStaleTerm", err)
	}
	if term, _ := l.Term(); term != 3 {
		t.Fatalf("term after install = %d, want 3", term)
	}
}

// TestSetTerm pins the boot-wiring contract recovery relies on.
func TestSetTerm(t *testing.T) {
	l := NewLog(Config{})
	defer l.Close()
	l.SetTerm(7, 0)
	if _, err := l.Commit(bumpRec(7), nil); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("bump to recovered term = %v, want ErrStaleTerm", err)
	}
	mustCommit(t, l, bumpRec(8))
	if term, _ := l.Term(); term != 8 {
		t.Fatalf("term = %d, want 8", term)
	}
}
