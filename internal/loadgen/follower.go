package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ftnet/internal/fleet"
)

// The replication probe: after a load run against a leader, verify
// that a follower daemon converged — for every driven instance, the
// follower reaches at least the leader's epoch and serves a phi slice
// bit-identical to the leader's (both also re-checked against the
// paper's contract by the instance endpoints themselves). ftload wires
// it to -follower; the CI replication job runs a write storm against
// the leader and then holds the follower to this check.

// FollowerVerify reports one convergence check.
type FollowerVerify struct {
	Instances int           // instances compared
	Waited    time.Duration // time until the follower caught up
}

// VerifyFollower polls followerAddr until every instance in ids has
// caught up with leaderAddr (same or later epoch), then compares fault
// sets and full phi slices bit for bit. The leader must be quiescent
// (the load run has finished); timeout bounds the catch-up wait.
func VerifyFollower(leaderAddr, followerAddr string, ids []string, timeout time.Duration) (FollowerVerify, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	deadline := start.Add(timeout)
	var res FollowerVerify
	for _, id := range ids {
		leader, err := fetchInstance(client, leaderAddr, id)
		if err != nil {
			return res, fmt.Errorf("loadgen: leader %s: %w", id, err)
		}
		// Wait for the follower to reach the leader's epoch.
		var follower fleet.InstanceInfo
		for {
			follower, err = fetchInstance(client, followerAddr, id)
			if err == nil && follower.Epoch >= leader.Epoch {
				break
			}
			if time.Now().After(deadline) {
				if err != nil {
					return res, fmt.Errorf("loadgen: follower %s: %w", id, err)
				}
				return res, fmt.Errorf("loadgen: follower %s stuck at epoch %d, leader at %d",
					id, follower.Epoch, leader.Epoch)
			}
			time.Sleep(20 * time.Millisecond)
		}
		if follower.Epoch != leader.Epoch {
			return res, fmt.Errorf("loadgen: follower %s at epoch %d, ahead of leader's %d",
				id, follower.Epoch, leader.Epoch)
		}
		if fmt.Sprint(follower.Faults) != fmt.Sprint(leader.Faults) {
			return res, fmt.Errorf("loadgen: %s fault sets diverge: leader %v, follower %v",
				id, leader.Faults, follower.Faults)
		}
		lphi, err := fetchPhi(client, leaderAddr, id)
		if err != nil {
			return res, fmt.Errorf("loadgen: leader %s phi: %w", id, err)
		}
		fphi, err := fetchPhi(client, followerAddr, id)
		if err != nil {
			return res, fmt.Errorf("loadgen: follower %s phi: %w", id, err)
		}
		if len(lphi) != len(fphi) {
			return res, fmt.Errorf("loadgen: %s phi lengths diverge: %d vs %d", id, len(lphi), len(fphi))
		}
		for x := range lphi {
			if lphi[x] != fphi[x] {
				return res, fmt.Errorf("loadgen: %s phi(%d): leader %d, follower %d — replica diverged",
					id, x, lphi[x], fphi[x])
			}
		}
		res.Instances++
	}
	res.Waited = time.Since(start)
	return res, nil
}

func fetchInstance(client *http.Client, addr, id string) (fleet.InstanceInfo, error) {
	var info fleet.InstanceInfo
	resp, err := client.Get(addr + "/v1/instances/" + id)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return info, fmt.Errorf("status %d", resp.StatusCode)
	}
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

func fetchPhi(client *http.Client, addr, id string) ([]int, error) {
	resp, err := client.Get(addr + "/v1/instances/" + id + "/phi")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct{ Phi []int }
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Phi, nil
}
