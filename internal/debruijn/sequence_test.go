package debruijn

import (
	"testing"
)

func TestSequenceCoversAllWindows(t *testing.T) {
	for _, c := range []struct{ m, h int }{
		{2, 1}, {2, 3}, {2, 5}, {2, 8}, {3, 3}, {3, 4}, {4, 3}, {5, 2},
	} {
		seq, err := Sequence(c.m, c.h)
		if err != nil {
			t.Fatal(err)
		}
		n := 1
		for i := 0; i < c.h; i++ {
			n *= c.m
		}
		if len(seq) != n {
			t.Fatalf("(m=%d,h=%d): len = %d, want %d", c.m, c.h, len(seq), n)
		}
		seen := make([]bool, n)
		for i := range seq {
			w := WindowValue(seq, i, c.m, c.h)
			if seen[w] {
				t.Fatalf("(m=%d,h=%d): window %d repeated", c.m, c.h, w)
			}
			seen[w] = true
		}
	}
}

func TestSequenceWindowsWalkTheGraph(t *testing.T) {
	// Consecutive windows of a de Bruijn sequence differ by one shift, so
	// they must be adjacent nodes of B_{m,h} (or equal across the
	// self-loop at a constant window — impossible within one cycle since
	// windows are distinct).
	for _, p := range []Params{{2, 4}, {3, 3}} {
		g := MustNew(p)
		seq, err := Sequence(p.M, p.H)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			u := WindowValue(seq, i, p.M, p.H)
			v := WindowValue(seq, i+1, p.M, p.H)
			if u != v && !g.HasEdge(u, v) {
				t.Fatalf("%v: consecutive windows %d,%d not adjacent", p, u, v)
			}
		}
	}
}

func TestSequenceErrors(t *testing.T) {
	if _, err := Sequence(1, 3); err == nil {
		t.Error("m=1 should error")
	}
	if _, err := Sequence(2, 0); err == nil {
		t.Error("h=0 should error")
	}
}

func TestSequenceBinaryKnown(t *testing.T) {
	// FKM for m=2, h=3 gives 00010111 (lexicographically least).
	seq, err := Sequence(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 0, 1, 0, 1, 1, 1}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("seq = %v, want %v", seq, want)
		}
	}
}
