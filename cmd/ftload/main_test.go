package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ftnet/internal/fleet"
)

// TestRunAgainstInProcessDaemon points the load generator at an
// in-process ftnetd handler and checks the whole loop: create fleet,
// mixed traffic, merged report.
func TestRunAgainstInProcessDaemon(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()

	cfg := config{
		addr:      ts.URL,
		instances: 3,
		spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2},
		workers:   4,
		requests:  600,
		eventFrac: 0.3,
		seed:      7,
	}
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"throughput", "latency", "p99", "errors       0"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	// The daemon must have seen the traffic the report claims.
	st := mgr.Stats()
	if st.Instances != 3 {
		t.Errorf("instances = %d, want 3", st.Instances)
	}
	if st.Lookups == 0 || st.Events == 0 {
		t.Errorf("daemon saw no traffic: %+v", st)
	}
	if got := int(st.Lookups + st.Events + st.Rejected); got != cfg.requests {
		t.Errorf("ops seen by daemon = %d, want %d", got, cfg.requests)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if err := run(config{instances: 0, workers: 1, requests: 1}, &bytes.Buffer{}); err == nil {
		t.Error("zero instances accepted")
	}
	bad := config{
		addr: "http://127.0.0.1:0", instances: 1, workers: 1, requests: 1,
		spec: fleet.Spec{Kind: "torus", H: 4, K: 1},
	}
	if err := run(bad, &bytes.Buffer{}); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestTargetHostSizes(t *testing.T) {
	n, h := targetHostSizes(fleet.Spec{Kind: fleet.KindDeBruijn, M: 3, H: 4, K: 2})
	if n != 81 || h != 83 {
		t.Errorf("debruijn m=3 h=4: %d/%d, want 81/83", n, h)
	}
	n, h = targetHostSizes(fleet.Spec{Kind: fleet.KindShuffle, H: 5, K: 1})
	if n != 32 || h != 33 {
		t.Errorf("shuffle h=5: %d/%d, want 32/33", n, h)
	}
}

func TestPercentile(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want time.Duration
	}{{50, 5}, {90, 9}, {100, 10}, {0, 1}}
	for _, c := range cases {
		if got := percentile(lat, c.p); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}
