package shard

import (
	"bytes"
	"reflect"
	"testing"

	"ftnet/internal/journal"
)

func sampleMigration() Migration {
	return Migration{
		ID:       "inst-7",
		BaseSeq:  41,
		FenceSeq: 44,
		Records: []journal.Record{
			{Op: journal.OpCheckpoint, ID: "inst-7", Spec: journal.Spec{Kind: "debruijn", M: 64, H: 60, K: 4}, Epoch: 9, Faults: []int{3, 17, 41}},
			{Op: journal.OpTransition, ID: "inst-7", Epoch: 10, Applied: 2, Faults: []int{3, 17, 41, 52}},
			{Op: journal.OpTransition, ID: "inst-7", Epoch: 11, Applied: 1, Faults: []int{3, 41, 52}},
		},
	}
}

func TestMigrationRoundTrip(t *testing.T) {
	for name, m := range map[string]Migration{
		"full":      sampleMigration(),
		"stageOnly": {ID: "i", BaseSeq: 1, Records: []journal.Record{{Op: journal.OpCheckpoint, ID: "i", Spec: journal.Spec{Kind: "hypercube", M: 8, H: 8, K: 0}}}},
		"empty":     {ID: "never-written", BaseSeq: 3, FenceSeq: 3},
	} {
		enc, err := AppendMigration(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		dec, err := DecodeMigration(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(dec, m) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", name, dec, m)
		}
		// Canonical: re-encoding the decoded value reproduces the bytes.
		re, err := AppendMigration(nil, dec)
		if err != nil {
			t.Fatalf("%s: re-encode: %v", name, err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("%s: re-encode differs from original", name)
		}
	}
}

func TestMigrationRejectsForeignRecord(t *testing.T) {
	m := sampleMigration()
	m.Records[1].ID = "other-instance"
	if _, err := AppendMigration(nil, m); err == nil {
		t.Fatal("encode accepted a record naming another instance")
	}
	// A hand-spliced frame must be caught on decode too: encode a valid
	// frame for "other" and graft its id field onto our frame's body.
	good, err := AppendMigration(nil, Migration{
		ID:      "ab",
		Records: []journal.Record{{Op: journal.OpDelete, ID: "ab"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spliced := append([]byte(nil), good...)
	// Flip the migration id (offset 2..4 after version + 1-byte length)
	// so the embedded record no longer matches.
	spliced[2], spliced[3] = 'x', 'y'
	if _, err := DecodeMigration(spliced); err == nil {
		t.Fatal("decode accepted a record naming another instance")
	}
}

func TestMigrationDecodeRejectsCorruption(t *testing.T) {
	enc, err := AppendMigration(nil, sampleMigration())
	if err != nil {
		t.Fatal(err)
	}
	// Every strict prefix must fail (truncation at any byte).
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeMigration(enc[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte truncation", n)
		}
	}
	// Trailing garbage must fail.
	if _, err := DecodeMigration(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("decode accepted trailing byte")
	}
	// Wrong version byte must fail.
	bad := append([]byte(nil), enc...)
	bad[0] = 2
	if _, err := DecodeMigration(bad); err == nil {
		t.Fatal("decode accepted unknown version")
	}
}

// FuzzMigrationDecode pins the codec's two safety properties on
// arbitrary input: decoding never panics, and any payload the decoder
// accepts re-encodes to the identical bytes (the accepted language is
// exactly the canonical encodings — same discipline as
// FuzzJournalDecode and FuzzWireDecode).
func FuzzMigrationDecode(f *testing.F) {
	for _, m := range []Migration{
		sampleMigration(),
		{ID: "i", BaseSeq: 1, FenceSeq: 2},
		{ID: "zz", Records: []journal.Record{{Op: journal.OpCreate, ID: "zz", Spec: journal.Spec{Kind: "kautz", M: 3, H: 2, K: 1}}}},
	} {
		enc, err := AppendMigration(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte{})
	f.Add([]byte{migrationVersion})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMigration(data)
		if err != nil {
			return
		}
		re, err := AppendMigration(nil, m)
		if err != nil {
			t.Fatalf("accepted migration failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted payload is not canonical:\n in  %x\n out %x", data, re)
		}
	})
}
