// Command ftbench regenerates the paper's figures and tables.
//
// Usage:
//
//	ftbench            # run every experiment
//	ftbench -exp T1    # run one experiment by id
//	ftbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"ftnet/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id (F1..F5, T1..T6, S1..S6, M1..M3, A1..A4); empty = all")
	list := flag.Bool("list", false, "list experiments and exit")
	extended := flag.Bool("extended", true, "include the extended experiments (M1..M3, A1..A4, S3..S6, T6)")
	flag.Parse()

	if *list {
		for _, e := range experiments.AllExtended() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	run := experiments.All()
	if *extended {
		run = experiments.AllExtended()
	}
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "ftbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []experiments.Experiment{e}
	}
	for _, e := range run {
		fmt.Printf("==== %s: %s ====\n", e.ID, e.Title)
		if err := e.Run(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ftbench: %s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
