// Package wire is the binary RPC plane of the reconfiguration service:
// a length-prefixed, CRC-framed protocol over persistent TCP
// connections for the operations millions of clients would actually
// hammer — Lookup, LookupBatch and ApplyBatch — at a small fraction of
// the HTTP/JSON plane's cost.
//
// Frame layout (identical to the journal's record framing):
//
//	[u32 payload len LE][u32 CRC32C(payload) LE][payload]
//
// Payloads reuse the journal codec's canonical discipline: a version
// byte, strictly minimal uvarints, counts validated against the
// remaining bytes before any allocation, and no trailing bytes — the
// accepted language is exactly the canonical encodings, the property
// FuzzWireDecode pins. Requests carry a client-chosen sequence number;
// responses echo it, so a client can pipeline many requests down one
// connection and complete them out of order. The server reads every
// request already queued on a connection before writing, coalescing
// the responses into one flush — the paper's log-round batching idea
// (amortize fixed per-exchange cost over whole combined batches)
// applied to request pipelining.
package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"ftnet/internal/fleet"
)

// Version is the original payload format version byte. VersionShard
// is the sharding-aware revision: it changes no encoding, but a
// request carrying it advertises that the sender understands
// StatusWrongShard, and the server answers at the request's version —
// a v1 request never receives status codes its decoder would reject
// (wrong-shard rejections are downgraded to StatusReadOnly with the
// owner URL folded into the message). Decoding rejects anything else.
// Clients encode VersionShard, so daemons must be upgraded before
// clients during a rolling upgrade.
const (
	Version      = 1
	VersionShard = 2
)

// frameHeaderSize is the length + CRC32C prefix of every frame.
const frameHeaderSize = 8

// MaxFrame bounds a single frame's payload, keeping a corrupt length
// prefix from asking either side to allocate gigabytes. A LookupBatch
// of a million entries is ~3 MB, comfortably inside.
const MaxFrame = 16 << 20

// castagnoli is the CRC32C table (the journal's checksum, hardware
// accelerated on current CPUs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MsgType identifies the operation a frame carries. Responses echo the
// request's type.
type MsgType byte

// The operations of the RPC plane.
const (
	MsgLookup      MsgType = 1 // x -> (phi, epoch)
	MsgLookupBatch MsgType = 2 // xs -> (phis, epoch), one frame each way
	MsgApplyBatch  MsgType = 3 // fault/repair burst -> epoch
)

func (t MsgType) String() string {
	switch t {
	case MsgLookup:
		return "lookup"
	case MsgLookupBatch:
		return "lookup_batch"
	case MsgApplyBatch:
		return "apply_batch"
	default:
		return fmt.Sprintf("msg(%d)", byte(t))
	}
}

// Status is the typed result code of a response, mirroring the fleet
// error categories (and the HTTP plane's status mapping).
type Status byte

// The response status codes. StatusBudget is checked before
// StatusConflict on the encode side because fleet.ErrBudget wraps
// fleet.ErrConflict.
const (
	StatusOK          Status = 0
	StatusNotFound    Status = 1 // unknown instance (HTTP 404)
	StatusConflict    Status = 2 // double fault / repair healthy (HTTP 409)
	StatusBudget      Status = 3 // spare budget exhausted (HTTP 409 subcategory)
	StatusUnavailable Status = 4 // journal/commit failure, nothing applied (HTTP 503)
	StatusInvalid     Status = 5 // bad input: node out of range, empty batch (HTTP 400)
	StatusReadOnly    Status = 6 // follower posture: mutations come from the leader (HTTP 403)
	StatusStaleTerm   Status = 7 // leadership term fence: the writer was deposed (HTTP 403)
	StatusWrongShard  Status = 8 // instance owned by another daemon; response carries its URL (HTTP 403)
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusNotFound:
		return "not found"
	case StatusConflict:
		return "conflict"
	case StatusBudget:
		return "budget exhausted"
	case StatusUnavailable:
		return "unavailable"
	case StatusInvalid:
		return "invalid"
	case StatusReadOnly:
		return "read-only"
	case StatusStaleTerm:
		return "stale term"
	case StatusWrongShard:
		return "wrong shard"
	default:
		return fmt.Sprintf("status(%d)", byte(s))
	}
}

// Request is one decoded request payload. X is set for MsgLookup, Xs
// for MsgLookupBatch, Events for MsgApplyBatch. Version is the
// protocol version the payload carries (decode sets it; a zero
// Version encodes as VersionShard, the current one).
type Request struct {
	Version byte
	Type    MsgType
	Seq     uint64
	ID      string
	X       int
	Xs      []int
	Events  []fleet.Event
}

// Response is one decoded response payload. Status selects which
// fields are meaningful: Msg accompanies every non-OK status; an OK
// Lookup carries Phi+Epoch, an OK LookupBatch carries Phis+Epoch, an
// OK ApplyBatch carries Result. Version is the protocol version the
// payload carries (servers echo the request's; a zero Version encodes
// as VersionShard). StatusWrongShard exists only at VersionShard and
// above — a v1 payload carrying it is rejected as non-canonical.
type Response struct {
	Version byte
	Type    MsgType
	Seq     uint64
	Status  Status
	Msg     string
	Owner   string // StatusWrongShard only: the owning daemon's advertised URL
	Phi     int
	Epoch   uint64
	Phis    []int
	Result  fleet.EventResult
}

// resolveVersion maps the zero value to the current version and
// rejects anything outside the supported range.
func resolveVersion(v byte) (byte, error) {
	if v == 0 {
		return VersionShard, nil
	}
	if v < Version || v > VersionShard {
		return 0, fmt.Errorf("wire: unknown version %d", v)
	}
	return v, nil
}

// AppendRequest appends the canonical payload encoding of req to dst.
// It is the inverse of DecodeRequest: for every req it accepts,
// DecodeRequest(AppendRequest(nil, req)) returns an equal request, and
// for every payload DecodeRequest accepts, AppendRequest reproduces it
// byte for byte.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	if req.ID == "" {
		return nil, fmt.Errorf("wire: empty instance id")
	}
	v, err := resolveVersion(req.Version)
	if err != nil {
		return nil, err
	}
	dst = append(dst, v, byte(req.Type))
	dst = binary.AppendUvarint(dst, req.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(req.ID)))
	dst = append(dst, req.ID...)
	switch req.Type {
	case MsgLookup:
		if req.X < 0 {
			return nil, fmt.Errorf("wire: negative lookup target %d", req.X)
		}
		dst = binary.AppendUvarint(dst, uint64(req.X))
	case MsgLookupBatch:
		dst = binary.AppendUvarint(dst, uint64(len(req.Xs)))
		for _, x := range req.Xs {
			if x < 0 {
				return nil, fmt.Errorf("wire: negative lookup target %d", x)
			}
			dst = binary.AppendUvarint(dst, uint64(x))
		}
	case MsgApplyBatch:
		dst = binary.AppendUvarint(dst, uint64(len(req.Events)))
		for _, ev := range req.Events {
			k, ok := eventKindByte(ev.Kind)
			if !ok {
				return nil, fmt.Errorf("wire: unknown event kind %q", ev.Kind)
			}
			if ev.Node < 0 {
				return nil, fmt.Errorf("wire: negative event node %d", ev.Node)
			}
			dst = append(dst, k)
			dst = binary.AppendUvarint(dst, uint64(ev.Node))
		}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", req.Type)
	}
	return dst, nil
}

// DecodeRequest parses one canonical request payload. It never panics
// on arbitrary input; any deviation from the canonical encoding is an
// error.
func DecodeRequest(b []byte) (Request, error) {
	d, v, t, seq, id, err := decodeHeader(b)
	if err != nil {
		return Request{}, err
	}
	req := Request{Version: v, Type: t, Seq: seq, ID: string(id)}
	switch t {
	case MsgLookup:
		if req.X, err = d.intVal(); err != nil {
			return Request{}, err
		}
	case MsgLookupBatch:
		n, err := d.count()
		if err != nil {
			return Request{}, err
		}
		if n > 0 {
			req.Xs = make([]int, n)
			for i := range req.Xs {
				if req.Xs[i], err = d.intVal(); err != nil {
					return Request{}, err
				}
			}
		}
	case MsgApplyBatch:
		n, err := d.count()
		if err != nil {
			return Request{}, err
		}
		if n > 0 {
			req.Events = make([]fleet.Event, n)
			for i := range req.Events {
				if req.Events[i], err = d.event(); err != nil {
					return Request{}, err
				}
			}
		}
	default:
		return Request{}, fmt.Errorf("wire: unknown message type %d", b[1])
	}
	if !d.done() {
		return Request{}, fmt.Errorf("wire: %d trailing bytes after request", len(b)-d.off)
	}
	return req, nil
}

// AppendResponse appends the canonical payload encoding of resp to
// dst; the DecodeResponse inverse holds the same way as for requests.
// A non-OK response carries only the message; OK responses carry the
// per-type body. Every numeric field must be representable as a
// non-negative varint.
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	v, err := resolveVersion(resp.Version)
	if err != nil {
		return nil, err
	}
	dst = append(dst, v, byte(resp.Type))
	dst = binary.AppendUvarint(dst, resp.Seq)
	dst = append(dst, byte(resp.Status))
	if resp.Status != StatusOK {
		if !validStatus(resp.Status, v) {
			return nil, fmt.Errorf("wire: status %d not valid at version %d", resp.Status, v)
		}
		dst = binary.AppendUvarint(dst, uint64(len(resp.Msg)))
		dst = append(dst, resp.Msg...)
		// The owner hint rides only on wrong-shard rejections, so every
		// other status keeps its exact pre-sharding encoding.
		if resp.Status == StatusWrongShard {
			dst = binary.AppendUvarint(dst, uint64(len(resp.Owner)))
			dst = append(dst, resp.Owner...)
		} else if resp.Owner != "" {
			return nil, fmt.Errorf("wire: owner hint on status %v", resp.Status)
		}
		return dst, nil
	}
	switch resp.Type {
	case MsgLookup:
		if resp.Phi < 0 {
			return nil, fmt.Errorf("wire: negative phi %d", resp.Phi)
		}
		dst = binary.AppendUvarint(dst, uint64(resp.Phi))
		dst = binary.AppendUvarint(dst, resp.Epoch)
	case MsgLookupBatch:
		dst = binary.AppendUvarint(dst, resp.Epoch)
		dst = binary.AppendUvarint(dst, uint64(len(resp.Phis)))
		for _, phi := range resp.Phis {
			if phi < 0 {
				return nil, fmt.Errorf("wire: negative phi %d", phi)
			}
			dst = binary.AppendUvarint(dst, uint64(phi))
		}
	case MsgApplyBatch:
		r := resp.Result
		if r.NumFaults < 0 || r.Budget < 0 || r.Applied < 0 {
			return nil, fmt.Errorf("wire: negative apply result field in %+v", r)
		}
		dst = binary.AppendUvarint(dst, r.Epoch)
		dst = binary.AppendUvarint(dst, uint64(r.NumFaults))
		dst = binary.AppendUvarint(dst, uint64(r.Budget))
		dst = binary.AppendUvarint(dst, uint64(r.Applied))
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", resp.Type)
	}
	return dst, nil
}

// DecodeResponse parses one canonical response payload with the same
// never-panics strictness as DecodeRequest.
func DecodeResponse(b []byte) (Response, error) {
	if len(b) < 3 {
		return Response{}, fmt.Errorf("wire: response payload of %d bytes is shorter than the header", len(b))
	}
	if b[0] != Version && b[0] != VersionShard {
		return Response{}, fmt.Errorf("wire: unknown version %d", b[0])
	}
	resp := Response{Version: b[0], Type: MsgType(b[1])}
	if resp.Type != MsgLookup && resp.Type != MsgLookupBatch && resp.Type != MsgApplyBatch {
		return Response{}, fmt.Errorf("wire: unknown message type %d", b[1])
	}
	d := &cursor{b: b, off: 2}
	var err error
	if resp.Seq, err = d.uvarint(); err != nil {
		return Response{}, err
	}
	st, err := d.byteVal()
	if err != nil {
		return Response{}, err
	}
	resp.Status = Status(st)
	if resp.Status != StatusOK {
		if !validStatus(resp.Status, resp.Version) {
			return Response{}, fmt.Errorf("wire: status %d not valid at version %d", st, resp.Version)
		}
		if resp.Msg, err = d.str(); err != nil {
			return Response{}, err
		}
		if resp.Status == StatusWrongShard {
			if resp.Owner, err = d.str(); err != nil {
				return Response{}, err
			}
		}
	} else {
		switch resp.Type {
		case MsgLookup:
			if resp.Phi, err = d.intVal(); err != nil {
				return Response{}, err
			}
			if resp.Epoch, err = d.uvarint(); err != nil {
				return Response{}, err
			}
		case MsgLookupBatch:
			if resp.Epoch, err = d.uvarint(); err != nil {
				return Response{}, err
			}
			n, err := d.count()
			if err != nil {
				return Response{}, err
			}
			if n > 0 {
				resp.Phis = make([]int, n)
				for i := range resp.Phis {
					if resp.Phis[i], err = d.intVal(); err != nil {
						return Response{}, err
					}
				}
			}
		case MsgApplyBatch:
			r := &resp.Result
			if r.Epoch, err = d.uvarint(); err != nil {
				return Response{}, err
			}
			if r.NumFaults, err = d.intVal(); err != nil {
				return Response{}, err
			}
			if r.Budget, err = d.intVal(); err != nil {
				return Response{}, err
			}
			if r.Applied, err = d.intVal(); err != nil {
				return Response{}, err
			}
		}
	}
	if !d.done() {
		return Response{}, fmt.Errorf("wire: %d trailing bytes after response", len(b)-d.off)
	}
	return resp, nil
}

// validStatus reports whether a status byte is legal at a protocol
// version. StatusWrongShard arrived with VersionShard; emitting (or
// accepting) it on a v1 payload would hand a pre-sharding decoder a
// byte it treats as corruption, so the canonical-encoding rule is
// per-version.
func validStatus(s Status, v byte) bool {
	if v < VersionShard {
		return s <= StatusStaleTerm
	}
	return s <= StatusWrongShard
}

func eventKindByte(k fleet.EventKind) (byte, bool) {
	switch k {
	case fleet.EventFault:
		return 0, true
	case fleet.EventRepair:
		return 1, true
	default:
		return 0, false
	}
}

// decodeHeader parses the shared request prefix (version, type, seq,
// id) and returns a cursor positioned at the body. The id is a
// subslice of b — the server's zero-copy path; DecodeRequest copies it
// into a string. Both protocol versions share the header layout; the
// version is returned so the server can answer at the sender's level.
func decodeHeader(b []byte) (cursor, byte, MsgType, uint64, []byte, error) {
	if len(b) < 2 {
		return cursor{}, 0, 0, 0, nil, fmt.Errorf("wire: request payload of %d bytes is shorter than the header", len(b))
	}
	if b[0] != Version && b[0] != VersionShard {
		return cursor{}, 0, 0, 0, nil, fmt.Errorf("wire: unknown version %d", b[0])
	}
	d := cursor{b: b, off: 2}
	seq, err := d.uvarint()
	if err != nil {
		return cursor{}, 0, 0, 0, nil, err
	}
	id, err := d.bytesVal()
	if err != nil {
		return cursor{}, 0, 0, 0, nil, err
	}
	if len(id) == 0 {
		return cursor{}, 0, 0, 0, nil, fmt.Errorf("wire: empty instance id")
	}
	return d, b[0], MsgType(b[1]), seq, id, nil
}

// cursor is a strict decoder over a payload: every read is
// bounds-checked and every uvarint must be minimally encoded, so the
// accepted language is exactly the canonical encodings (the journal
// decoder's discipline).
type cursor struct {
	b   []byte
	off int
}

func (d *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated or overlong uvarint at offset %d", d.off)
	}
	// Reject non-minimal encodings (e.g. 0x80 0x00 for zero): the last
	// byte of a minimal multi-byte uvarint is never zero.
	if n > 1 && d.b[d.off+n-1] == 0 {
		return 0, fmt.Errorf("wire: non-minimal uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// intVal reads a uvarint that must fit a non-negative int.
func (d *cursor) intVal() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt {
		return 0, fmt.Errorf("wire: value %d overflows int", v)
	}
	return int(v), nil
}

// count reads an element count; each element costs at least one byte,
// so a count beyond the remaining payload is corrupt — checked before
// the caller allocates.
func (d *cursor) count() (int, error) {
	n, err := d.intVal()
	if err != nil {
		return 0, err
	}
	if n > len(d.b)-d.off {
		return 0, fmt.Errorf("wire: count %d exceeds %d remaining bytes", n, len(d.b)-d.off)
	}
	return n, nil
}

func (d *cursor) byteVal() (byte, error) {
	if d.off >= len(d.b) {
		return 0, fmt.Errorf("wire: truncated payload at offset %d", d.off)
	}
	b := d.b[d.off]
	d.off++
	return b, nil
}

// bytesVal reads a length-prefixed byte string as a subslice (no
// copy).
func (d *cursor) bytesVal() ([]byte, error) {
	n, err := d.intVal()
	if err != nil {
		return nil, err
	}
	if n > len(d.b)-d.off {
		return nil, fmt.Errorf("wire: string length %d exceeds %d remaining bytes", n, len(d.b)-d.off)
	}
	b := d.b[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *cursor) str() (string, error) {
	b, err := d.bytesVal()
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// event reads one (kind, node) pair.
func (d *cursor) event() (fleet.Event, error) {
	k, err := d.byteVal()
	if err != nil {
		return fleet.Event{}, err
	}
	var kind fleet.EventKind
	switch k {
	case 0:
		kind = fleet.EventFault
	case 1:
		kind = fleet.EventRepair
	default:
		return fleet.Event{}, fmt.Errorf("wire: unknown event kind byte %d", k)
	}
	node, err := d.intVal()
	if err != nil {
		return fleet.Event{}, err
	}
	return fleet.Event{Kind: kind, Node: node}, nil
}

func (d *cursor) done() bool { return d.off == len(d.b) }

// appendFrameHeader reserves the 8-byte frame header; sealFrame fills
// it in once the payload is appended after it.
func appendFrameHeader(dst []byte) []byte {
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
}

// sealFrame stamps the length and CRC32C of the payload that was
// appended after the header reserved at mark.
func sealFrame(buf []byte, mark int) {
	payload := buf[mark+frameHeaderSize:]
	binary.LittleEndian.PutUint32(buf[mark:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[mark+4:], crc32.Checksum(payload, castagnoli))
}
