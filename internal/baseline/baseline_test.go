package baseline

import (
	"math/rand"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func TestParams(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	if p.HostBase() != 4 || p.NHost() != 64 || p.NTarget() != 8 {
		t.Errorf("sizes: base=%d host=%d target=%d", p.HostBase(), p.NHost(), p.NTarget())
	}
	if p.CitedDegree() != 6 {
		t.Errorf("cited degree %d, want 4k+2=6", p.CitedDegree())
	}
	if p.HostDegree() != 8 {
		t.Errorf("host degree %d", p.HostDegree())
	}
	if p.String() != "SP^1_{2,3}" {
		t.Errorf("String = %q", p.String())
	}
	for _, bad := range []Params{{1, 3, 1}, {2, 0, 1}, {2, 3, -1}, {2, 40, 7}} {
		if bad.Validate() == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
}

func TestNodeExplosionVersusFT(t *testing.T) {
	// The headline comparison: baseline host size is N*(k+1)^h while the
	// paper's construction needs N+k.
	for _, c := range []struct{ m, h, k int }{{2, 3, 1}, {2, 4, 2}, {3, 3, 1}} {
		sp := Params{M: c.m, H: c.h, K: c.k}
		our := ft.Params{M: c.m, H: c.h, K: c.k}
		if sp.NHost() <= our.NHost() {
			t.Errorf("%v: baseline %d nodes should dwarf ours %d", sp, sp.NHost(), our.NHost())
		}
		want := sp.NTarget() * num.MustIPow(c.k+1, c.h)
		if sp.NHost() != want {
			t.Errorf("%v: NHost=%d, want N(k+1)^h=%d", sp, sp.NHost(), want)
		}
	}
}

func TestCopyNodesAreDisjointCopies(t *testing.T) {
	p := Params{M: 2, H: 3, K: 2}
	host := MustNew(p)
	target := debruijn.MustNew(debruijn.Params{M: 2, H: 3})
	seen := map[int]bool{}
	for i := 0; i <= p.K; i++ {
		nodes, err := CopyNodes(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != p.NTarget() {
			t.Fatalf("copy %d has %d nodes", i, len(nodes))
		}
		for _, v := range nodes {
			if seen[v] {
				t.Fatalf("copies overlap at host node %d", v)
			}
			seen[v] = true
		}
		// The copy must carry the target as a subgraph.
		if err := graph.CheckEmbedding(target, host, nodes); err != nil {
			t.Fatalf("copy %d: %v", i, err)
		}
	}
}

func TestCopyNodesRange(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	if _, err := CopyNodes(p, -1); err == nil {
		t.Error("negative copy accepted")
	}
	if _, err := CopyNodes(p, 2); err == nil {
		t.Error("copy > k accepted")
	}
}

func TestReconfigureSurvivesKFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := Params{M: 2, H: 3, K: 2}
	host := MustNew(p)
	target := debruijn.MustNew(debruijn.Params{M: 2, H: 3})
	for trial := 0; trial < 50; trial++ {
		faults := num.RandomSubset(rng, p.NHost(), p.K)
		phi, err := Reconfigure(p, faults)
		if err != nil {
			t.Fatalf("faults %v: %v", faults, err)
		}
		if err := graph.CheckEmbedding(target, host, phi); err != nil {
			t.Fatalf("faults %v: %v", faults, err)
		}
		bad := map[int]bool{}
		for _, f := range faults {
			bad[f] = true
		}
		for _, img := range phi {
			if bad[img] {
				t.Fatalf("faults %v: mapped onto faulty node %d", faults, img)
			}
		}
	}
}

func TestReconfigureAdversarialPerCopyFaults(t *testing.T) {
	// Hit k of the k+1 copies with one fault each; reconfigure must find
	// the survivor.
	p := Params{M: 2, H: 3, K: 2}
	var faults []int
	for i := 0; i < p.K; i++ {
		nodes, _ := CopyNodes(p, i)
		faults = append(faults, nodes[3])
	}
	phi, err := Reconfigure(p, faults)
	if err != nil {
		t.Fatal(err)
	}
	survivor, _ := CopyNodes(p, p.K)
	for x := range phi {
		if phi[x] != survivor[x] {
			t.Fatalf("expected survivor copy %d, got phi=%v", p.K, phi[:4])
		}
	}
}

func TestReconfigureFailsWhenAllCopiesHit(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	var faults []int
	for i := 0; i <= p.K; i++ {
		nodes, _ := CopyNodes(p, i)
		faults = append(faults, nodes[0])
	}
	if _, err := Reconfigure(p, faults); err == nil {
		t.Fatal("reconfigure should fail when every copy is hit")
	}
}

func TestReconfigureRejectsBadFaults(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	if _, err := Reconfigure(p, []int{-1}); err == nil {
		t.Error("negative fault accepted")
	}
	if _, err := Reconfigure(p, []int{p.NHost()}); err == nil {
		t.Error("out-of-range fault accepted")
	}
}

func TestHostDegreeMeasured(t *testing.T) {
	p := Params{M: 2, H: 3, K: 1}
	host := MustNew(p)
	if host.MaxDegree() > p.HostDegree() {
		t.Errorf("measured %d > declared %d", host.MaxDegree(), p.HostDegree())
	}
	// The whole point of the paper: baseline degree is comparable but its
	// node count explodes; our degree is a bit larger, node count minimal.
	our := ft.Params{M: 2, H: 3, K: 1}
	if host.N() < 8*ft.MustNew(our).N()/2 {
		t.Errorf("baseline %d nodes vs ours %d — expected explosion", host.N(), ft.MustNew(our).N())
	}
}
