package ft

import (
	"fmt"
	"sort"

	"ftnet/internal/num"
)

// Mapping is the reconfiguration of Section III-A: the monotone 1-to-1
// assignment of target nodes to non-faulty host nodes. Target node x is
// mapped to the (x+1)-st non-faulty host node, i.e. the unique healthy
// node phi(x) with Rank(phi(x), healthy) = x.
//
// The representation is compact: only the sorted fault set is stored,
// O(k) words however large the host is. Lemma 1 makes this enough —
// the displacement Delta(x) = phi(x) - x is monotone and bounded by
// the fault count, so phi(x) = x + j where j is the number of leading
// faults f_j with f_j - j <= x, a single O(log k) binary search
// (f_j - j is non-decreasing in j). Dense views (PhiSlice,
// HostToTarget, Healthy) are materialized on demand by callers that
// genuinely need O(n) output.
type Mapping struct {
	NTarget int
	NHost   int
	Faults  []int // sorted, distinct
}

// NewMapping builds the reconfiguration map for the given fault set in
// O(k log k) time and O(k) memory — independent of the host size.
// faults may be in any order; duplicates and out-of-range nodes are
// rejected. The number of faults must not exceed NHost - NTarget (the
// spare budget), or there would be too few healthy nodes left.
func NewMapping(nTarget, nHost int, faults []int) (*Mapping, error) {
	if nTarget < 0 || nHost < nTarget {
		return nil, fmt.Errorf("ft: invalid sizes nTarget=%d nHost=%d", nTarget, nHost)
	}
	f := make([]int, len(faults))
	copy(f, faults)
	sort.Ints(f)
	for i, v := range f {
		if v < 0 || v >= nHost {
			return nil, fmt.Errorf("ft: fault %d out of range [0,%d)", v, nHost)
		}
		if i > 0 && f[i-1] == v {
			return nil, fmt.Errorf("ft: duplicate fault %d", v)
		}
	}
	if len(f) > nHost-nTarget {
		return nil, fmt.Errorf("ft: %d faults exceed spare budget %d", len(f), nHost-nTarget)
	}
	return &Mapping{NTarget: nTarget, NHost: nHost, Faults: f}, nil
}

// healthyAt returns the (i+1)-st healthy host node, i.e. the unique
// healthy v with Rank(v, healthy) = i, for 0 <= i < NumHealthy. It is
// the rank search at the heart of the compact representation: the
// displacement j is the number of faults f_j with f_j - j <= i, and
// f_j - j is non-decreasing because faults are strictly increasing.
func (m *Mapping) healthyAt(i int) int {
	f := m.Faults
	return i + sort.Search(len(f), func(j int) bool { return f[j]-j > i })
}

// Phi returns the host node hosting target node x, in O(log k).
func (m *Mapping) Phi(x int) int {
	if x < 0 || x >= m.NTarget {
		panic(fmt.Sprintf("ft: target node %d out of range [0,%d)", x, m.NTarget))
	}
	return m.healthyAt(x)
}

// Delta returns phi(x) - x, the displacement of target node x. The
// paper's proof shows 0 <= Delta(x) <= k and that Delta is monotone
// non-decreasing (Lemma 1).
func (m *Mapping) Delta(x int) int { return m.Phi(x) - x }

// NumHealthy returns the number of non-faulty host nodes.
func (m *Mapping) NumHealthy() int { return m.NHost - len(m.Faults) }

// HealthyAt returns the (i+1)-st healthy host node (including unused
// spares beyond the first NTarget), in O(log k). It is the index-based
// accessor behind Healthy() for callers that only need a few entries.
func (m *Mapping) HealthyAt(i int) int {
	if i < 0 || i >= m.NumHealthy() {
		panic(fmt.Sprintf("ft: healthy index %d out of range [0,%d)", i, m.NumHealthy()))
	}
	return m.healthyAt(i)
}

// TargetAt returns the target node hosted by host node v, or -1 if v
// is faulty or an unused spare — the single-node inverse of Phi, in
// O(log k) (HostToTarget materializes the same answer densely).
func (m *Mapping) TargetAt(v int) int {
	if v < 0 || v >= m.NHost {
		panic(fmt.Sprintf("ft: host node %d out of range [0,%d)", v, m.NHost))
	}
	i := sort.SearchInts(m.Faults, v)
	if i < len(m.Faults) && m.Faults[i] == v {
		return -1 // faulty
	}
	if t := v - i; t < m.NTarget {
		return t
	}
	return -1 // unused spare
}

// RangePhi calls fn(x, phi(x)) for x = 0, 1, ... NTarget-1 in order,
// stopping early if fn returns false. It walks the fault set once, so a
// full sweep costs O(NTarget + k) with no allocation — the iterator
// form of PhiSlice for callers that only read.
func (m *Mapping) RangePhi(fn func(x, phi int) bool) {
	j := 0
	for x, v := 0, 0; x < m.NTarget; v++ {
		for j < len(m.Faults) && m.Faults[j] == v {
			j++
			v++
		}
		if !fn(x, v) {
			return
		}
		x++
	}
}

// AppendPhi appends phi(0) ... phi(NTarget-1) to dst and returns the
// extended slice — the buffer-reusing form of PhiSlice: pass dst[:0]
// of a retained buffer to materialize repeatedly without allocating.
func (m *Mapping) AppendPhi(dst []int) []int {
	if cap(dst)-len(dst) < m.NTarget {
		grown := make([]int, len(dst), len(dst)+m.NTarget)
		copy(grown, dst)
		dst = grown
	}
	m.RangePhi(func(_, phi int) bool {
		dst = append(dst, phi)
		return true
	})
	return dst
}

// PhiSlice returns the full embedding as a slice: PhiSlice()[x] = Phi(x).
// The slice is freshly materialized in O(NTarget + k); it never aliases
// the mapping's internal state.
func (m *Mapping) PhiSlice() []int {
	return m.AppendPhi(make([]int, 0, m.NTarget))
}

// HostToTarget returns the inverse assignment: for each host node, the
// target node it hosts, or -1 if it is faulty or an unused spare.
func (m *Mapping) HostToTarget() []int {
	inv := make([]int, m.NHost)
	for i := range inv {
		inv[i] = -1
	}
	m.RangePhi(func(x, phi int) bool {
		inv[phi] = x
		return true
	})
	return inv
}

// IsFaulty reports whether host node v is in the fault set.
func (m *Mapping) IsFaulty(v int) bool { return num.ContainsSorted(m.Faults, v) }

// Healthy returns the sorted list of non-faulty host nodes (including
// unused spares beyond the first NTarget), materialized in O(NHost).
// Callers that only iterate should prefer HealthyAt or RangePhi.
func (m *Mapping) Healthy() []int {
	return num.Complement(m.Faults, m.NHost)
}
