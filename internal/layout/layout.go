// Package layout provides a simple linear-placement wiring model for
// comparing the point-to-point and bus implementations of the
// fault-tolerant networks. Section V of the paper notes that the real
// cost of a bus depends on its capacitance, i.e. its physical extent,
// and declares the geometry "beyond the scope of this paper"; this
// package makes the obvious first-order model executable:
//
//   - processors sit at integer positions 0..n-1 on a line;
//   - a point-to-point link (u, v) is a wire of length |u - v|
//     (wrap-around links may optionally use the cyclic distance,
//     modeling a ring placement);
//   - a bus is one wire spanning all its members (and its owner).
//
// The interesting outputs are the wire COUNT (pin/area pressure — where
// buses win by construction) and the maximum single-wire length
// (capacitance pressure — where buses pay, because a block spans 2k+2
// consecutive positions but its owner sits near 2i, far away).
package layout

import (
	"fmt"

	"ftnet/internal/bus"
	"ftnet/internal/graph"
)

// Wiring summarizes the wires of one implementation.
type Wiring struct {
	Wires       int // number of distinct wires
	TotalLength int // sum of wire lengths
	MaxLength   int // longest single wire
}

// String renders a short summary.
func (w Wiring) String() string {
	return fmt.Sprintf("wires=%d total=%d max=%d", w.Wires, w.TotalLength, w.MaxLength)
}

// PointToPoint computes the wiring of a direct implementation of g
// with nodes placed in index order. When ringPlacement is true,
// distances are cyclic (min(d, n-d)), modeling the natural circular
// placement of the paper's figures.
func PointToPoint(g *graph.Graph, ringPlacement bool) Wiring {
	n := g.N()
	var w Wiring
	g.EachEdge(func(u, v int) bool {
		d := dist(u, v, n, ringPlacement)
		w.Wires++
		w.TotalLength += d
		if d > w.MaxLength {
			w.MaxLength = d
		}
		return true
	})
	return w
}

// Buses computes the wiring of the bus implementation: one wire per
// bus, spanning its owner and every member.
func Buses(a *bus.Arch, ringPlacement bool) Wiring {
	n := a.NumBuses()
	var w Wiring
	for i := 0; i < n; i++ {
		span := busSpan(i, a.Members(i), n, ringPlacement)
		w.Wires++
		w.TotalLength += span
		if span > w.MaxLength {
			w.MaxLength = span
		}
	}
	return w
}

// busSpan returns the length of the shortest contiguous segment (linear
// or cyclic arc) covering the owner and all members.
func busSpan(owner int, members []int, n int, ringPlacement bool) int {
	pts := append([]int{owner}, members...)
	if !ringPlacement {
		lo, hi := pts[0], pts[0]
		for _, p := range pts {
			if p < lo {
				lo = p
			}
			if p > hi {
				hi = p
			}
		}
		return hi - lo
	}
	// Cyclic: the minimal covering arc is the full circle minus the
	// largest gap between consecutive occupied positions.
	occupied := make([]bool, n)
	for _, p := range pts {
		occupied[p] = true
	}
	// Find the largest run of unoccupied positions (cyclically).
	largestGap := 0
	run := 0
	// Scan twice around to handle wrap.
	for i := 0; i < 2*n; i++ {
		if occupied[i%n] {
			if run > largestGap {
				largestGap = run
			}
			run = 0
		} else {
			run++
			if run >= n {
				break
			}
		}
	}
	if run > largestGap && run < n {
		largestGap = run
	}
	return n - largestGap - 1
}

func dist(u, v, n int, ringPlacement bool) int {
	d := u - v
	if d < 0 {
		d = -d
	}
	if ringPlacement && n-d < d {
		d = n - d
	}
	return d
}
