package sim

import (
	"testing"

	"ftnet/internal/debruijn"
)

func TestWormholeSingleMessageLatency(t *testing.T) {
	// P hops, L flits, no contention: P + L - 1 cycles.
	m := NewPointToPoint(line(5), 1)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3, 4}}}
	st, err := RunWormhole(m, msgs, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !msgs[0].Delivered() {
		t.Fatal("not delivered")
	}
	want := 4 + 4 - 1
	if st.Cycles != want {
		t.Errorf("cycles = %d, want P+L-1 = %d", st.Cycles, want)
	}
}

func TestWormholeOneFlitMatchesStoreAndForwardShape(t *testing.T) {
	// L=1: latency = P.
	m := NewPointToPoint(line(6), 1)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3, 4, 5}}}
	st, err := RunWormhole(m, msgs, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 5 {
		t.Errorf("cycles = %d, want 5", st.Cycles)
	}
}

func TestWormholeContentionSerializes(t *testing.T) {
	// Two 3-flit messages sharing one link: second waits for the first
	// worm's tail.
	m := NewPointToPoint(line(2), 2)
	msgs := []*Message{
		{ID: 0, Route: []int{0, 1}},
		{ID: 1, Route: []int{0, 1}},
	}
	st, err := RunWormhole(m, msgs, 3, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// First: cycles 0..2 on the link, drains at 3 (delivered at cycle 3);
	// second starts at 3, drains by 6.
	if st.Cycles < 6 {
		t.Errorf("cycles = %d, expected >= 6 with serialization", st.Cycles)
	}
}

func TestWormholeDeadNode(t *testing.T) {
	m := NewPointToPoint(line(4), 1)
	m.Kill(2)
	msgs := []*Message{{ID: 0, Route: []int{0, 1, 2, 3}}}
	st, err := RunWormhole(m, msgs, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestWormholeValidation(t *testing.T) {
	m := NewPointToPoint(line(3), 1)
	if _, err := RunWormhole(m, []*Message{{ID: 0, Route: []int{0, 2}}}, 2, 10); err == nil {
		t.Error("non-link route accepted")
	}
	if _, err := RunWormhole(m, nil, 0, 10); err == nil {
		t.Error("flits=0 accepted")
	}
	bm := &Machine{G: line(3), Dead: make([]bool, 3), Ports: 1, Mode: BusMode}
	if _, err := RunWormhole(bm, nil, 1, 10); err == nil {
		t.Error("bus mode accepted")
	}
}

func TestWormholePermutationOnDeBruijn(t *testing.T) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 5})
	msgs, err := Permutation(g.N(), func(x int) int { return (x + 11) % g.N() }, BFSRouter(g))
	if err != nil {
		t.Fatal(err)
	}
	m := NewPointToPoint(g, 2)
	st, err := RunWormhole(m, msgs, 4, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stalled || st.Delivered != g.N() {
		t.Errorf("stats = %+v", st)
	}
	// Wormhole with L flits must be slower than single-flit but not
	// absurdly so.
	st1, err := RunWormhole(NewPointToPoint(g, 2), mustPerm(t, g), 1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= st1.Cycles {
		t.Errorf("4-flit cycles %d <= 1-flit cycles %d", st.Cycles, st1.Cycles)
	}
}

func mustPerm(t *testing.T, g interface {
	N() int
	ShortestPath(int, int) []int
}) []*Message {
	t.Helper()
	n := g.N()
	msgs := make([]*Message, 0, n)
	for x := 0; x < n; x++ {
		p := g.ShortestPath(x, (x+11)%n)
		if p == nil {
			t.Fatal("no path")
		}
		msgs = append(msgs, &Message{ID: x, Route: p})
	}
	return msgs
}

func TestWormholeZeroHop(t *testing.T) {
	m := NewPointToPoint(line(2), 1)
	msgs := []*Message{{ID: 0, Route: []int{1}}}
	st, err := RunWormhole(m, msgs, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 {
		t.Errorf("stats = %+v", st)
	}
}
