package fleet

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// The follower-chain topology: leader -> mid -> leaf, each tier
// replicating over the watch plane from the one above. ROADMAP item 1
// flags chains as the untested replication shape — a follower is also
// a watch server, so its own appliance must be re-observable
// downstream with the same gap-free seq and bit-identical state.

// midTier is the chain's middle daemon on a stable address, so the
// leaf can reconnect to the same URL after the tier is killed and
// rebooted — the in-process analog of SIGKILLing the process and
// restarting it on its port.
type midTier struct {
	t    *testing.T
	addr string
	srv  *http.Server
	stop context.CancelFunc
}

func startMidTier(t *testing.T, m *Manager, leaderURL, addr string) *midTier {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		// The port of a just-closed listener can linger for a moment.
		deadline := time.Now().Add(5 * time.Second)
		for err != nil && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			ln, err = net.Listen("tcp", addr)
		}
		if err != nil {
			t.Fatalf("mid tier rebind %s: %v", addr, err)
		}
	}
	srv := &http.Server{Handler: NewHTTPHandler(m)}
	go srv.Serve(ln)

	f, err := NewFollower(m, leaderURL, FollowerOptions{
		Heartbeat:    50 * time.Millisecond,
		StallTimeout: 2 * time.Second,
		Backoff:      20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go f.Run(ctx)
	mt := &midTier{t: t, addr: ln.Addr().String(), srv: srv, stop: cancel}
	t.Cleanup(mt.kill)
	return mt
}

// kill drops the tier abruptly: the replication loop dies and every
// open connection (including the leaf's watch stream) is severed.
func (mt *midTier) kill() {
	mt.stop()
	mt.srv.Close()
}

// TestFollowerChainConvergesAtDepthTwo drives a depth-2 chain under a
// leader-side storm and requires the leaf — which never talks to the
// leader — to converge bit-identically, with live lag metrics.
func TestFollowerChainConvergesAtDepthTwo(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	srvLeader := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(srvLeader.Close)

	mid := journaledManager(t, t.TempDir())
	mt := startMidTier(t, mid, srvLeader.URL, "")

	leaf := journaledManager(t, t.TempDir())
	fLeaf := startFollower(t, leaf, "http://"+mt.addr)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 4}
	for _, id := range []string{"chain-0", "chain-1", "chain-2"} {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		toggleStorm(t, leader, id, 8)
	}
	waitConverged(t, leader, mid, 10*time.Second)
	waitConverged(t, leader, leaf, 10*time.Second)
	assertSameFleet(t, leader, leaf)

	// Lag metrics at depth 2: the leaf measures its stream against the
	// MID tier (its leader), and its entry-age histogram must have seen
	// every live entry that trickled down both hops.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := fLeaf.Stats()
		if st.LeaderSeq >= mid.CommitLog().LastSeq() && st.LagSeqs == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("depth-2 lag never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	e := leaf.Metrics().Export()
	if v, ok := e.FindGauge("ftnet_replication_lag_seqs"); !ok || v != 0 {
		t.Errorf("leaf lag gauge = %d (ok=%v), want 0", v, ok)
	}
	if h, ok := e.Find("ftnet_replication_entry_age_seconds", ""); !ok || h.Count == 0 {
		t.Errorf("leaf entry-age histogram empty at depth 2: %+v (ok=%v)", h, ok)
	} else if time.Duration(h.MaxNS) > time.Minute {
		t.Errorf("leaf entry age max %v is implausible for a local chain", time.Duration(h.MaxNS))
	}
}

// TestFollowerChainSurvivesMidChainKill kills the middle tier abruptly
// while the leader keeps committing, reboots it from its own journal
// on the same address, and requires the leaf to reconnect and converge
// bit-identically with the leader — the chain self-heals around a
// SIGKILL of its interior node.
func TestFollowerChainSurvivesMidChainKill(t *testing.T) {
	leader := journaledManager(t, t.TempDir())
	srvLeader := httptest.NewServer(NewHTTPHandler(leader))
	t.Cleanup(srvLeader.Close)

	mid := journaledManager(t, t.TempDir())
	mt := startMidTier(t, mid, srvLeader.URL, "")

	leaf := journaledManager(t, t.TempDir())
	fLeaf := startFollower(t, leaf, "http://"+mt.addr)

	spec := Spec{Kind: KindDeBruijn, M: 2, H: 5, K: 4}
	for _, id := range []string{"kill-0", "kill-1"} {
		if _, err := leader.Create(id, spec); err != nil {
			t.Fatal(err)
		}
		toggleStorm(t, leader, id, 4)
	}
	waitConverged(t, leader, leaf, 10*time.Second)

	// Snapshot the mid tier's durable state and kill it: replication
	// loop gone, leaf's stream severed mid-chain.
	image := journalImage(t, mid)
	mt.kill()

	// The leader keeps committing while the interior of the chain is
	// down; nothing below it can see these entries yet.
	toggleStorm(t, leader, "kill-0", 6)
	toggleStorm(t, leader, "kill-1", 6)

	// Reboot the mid tier from its journal on the same address. Its
	// recovery starts where the kill left it; its follower re-streams
	// the missed suffix from the leader, and the leaf reconnects to the
	// same URL it was always pointed at.
	mid2 := rebootManager(t, image, t.TempDir())
	startMidTier(t, mid2, srvLeader.URL, mt.addr)

	waitConverged(t, leader, mid2, 15*time.Second)
	waitConverged(t, leader, leaf, 15*time.Second)
	assertSameFleet(t, leader, leaf)
	if st := fLeaf.Stats(); st.Reconnects == 0 {
		t.Errorf("leaf never reconnected through the mid-chain kill: %+v", st)
	}
}
