package loadgen

import (
	"net/http/httptest"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

// TestScrapeObsAndBuildArtifact runs a small load with ScrapeObs, then
// checks the scraped export carries the server-side histograms and the
// distilled BENCH_service.json artifact has the gated families.
func TestScrapeObsAndBuildArtifact(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	ts := httptest.NewServer(fleet.NewHTTPHandler(mgr))
	defer ts.Close()
	res, err := Run(Config{
		Addr:      ts.URL,
		Instances: 2,
		Spec:      fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 4},
		Workers:   4,
		Requests:  200,
		Scenario:  WriteStorm,
		Seed:      5,
		IDPrefix:  "t-obs",
		ScrapeObs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Service == nil {
		t.Fatal("ScrapeObs set but Result.Service is nil")
	}
	phi, ok := res.Service.Find("ftnet_http_request_seconds", "route=phi")
	if !ok || int(phi.Count) != res.Lookups {
		t.Errorf("phi route histogram count %d (ok=%v), client measured %d lookups", phi.Count, ok, res.Lookups)
	}
	if _, ok := res.Service.Find("ftnet_commit_append_seconds", ""); !ok {
		t.Error("commit stage histograms missing from the scrape")
	}

	art := BuildServiceArtifact("write-storm", &res, res.Service, nil)
	if art.Kind != "service" || art.Scenario != "write-storm" {
		t.Fatalf("artifact header: %+v", art)
	}
	families := map[string]int{}
	for _, b := range art.Benchmarks {
		families[b.Family]++
		if b.Unit != "ns" {
			t.Errorf("%s: unit %q, want ns", b.Name, b.Unit)
		}
		if b.Value <= 0 {
			t.Errorf("%s: non-positive value %v", b.Name, b.Value)
		}
	}
	if families["request_p99"] == 0 {
		t.Error("no request_p99 entries")
	}
	// The manager is journal-less here, so the fsync wait histogram has
	// samples (the stage runs, near-zero) — and no compaction happened,
	// so that family must be absent, not zero.
	if families["compaction_pause_max"] != 0 {
		t.Error("compaction_pause_max emitted without a compaction")
	}
	if families["replication_lag_p99"] != 0 {
		t.Error("replication_lag_p99 emitted without a follower export")
	}

	// A follower export contributes the lag family.
	freg := obs.New()
	freg.Histogram("ftnet_replication_entry_age_seconds", "age").Observe(1)
	fexp := freg.Export()
	art = BuildServiceArtifact("write-storm", &res, res.Service, &fexp)
	found := false
	for _, b := range art.Benchmarks {
		if b.Family == "replication_lag_p99" {
			found = true
		}
	}
	if !found {
		t.Error("replication_lag_p99 missing with a follower export")
	}
}
