// Package fault provides node-fault models for exercising the
// fault-tolerant constructions: random faults, adversarial patterns
// (consecutive blocks, spare-targeting, degree-targeting), and a
// deterministic spread. Edge faults are handled by the paper's
// reduction — treat one endpoint of the faulty edge as faulty — which
// Edge2Node implements.
package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Model generates fault sets of a given size over a host of n nodes.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Generate returns a sorted set of k distinct faulty nodes in [0,n).
	Generate(rng *rand.Rand, n, k int) []int
}

// Random faults: uniform k-subsets.
type Random struct{}

func (Random) Name() string { return "random" }

func (Random) Generate(rng *rand.Rand, n, k int) []int {
	return num.RandomSubset(rng, n, k)
}

// Block faults: k consecutive nodes starting at a random position
// (wrapping). Consecutive faults are adversarial for the constructions
// because the reconfiguration displacement jumps by k across the block,
// stressing the extreme r values of the edge rule.
type Block struct{}

func (Block) Name() string { return "block" }

func (Block) Generate(rng *rand.Rand, n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("fault.Block: k=%d > n=%d", k, n))
	}
	if k == 0 {
		return nil
	}
	start := rng.Intn(n)
	out := make([]int, k)
	for i := range out {
		out[i] = (start + i) % n
	}
	sort.Ints(out)
	return out
}

// Spares faults: kill the highest-numbered nodes (the natural spares).
// This forces phi to the identity on most of the range and checks the
// construction does not silently depend on spares surviving.
type Spares struct{}

func (Spares) Name() string { return "spares" }

func (Spares) Generate(_ *rand.Rand, n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = n - k + i
	}
	return out
}

// Spread faults: k evenly spaced nodes. Every fault contributes a
// separate displacement step, producing the maximum number of distinct
// delta values.
type Spread struct{}

func (Spread) Name() string { return "spread" }

func (Spread) Generate(_ *rand.Rand, n, k int) []int {
	if k == 0 {
		return nil
	}
	out := make([]int, k)
	for i := range out {
		out[i] = i * n / k
	}
	// Guarantee distinctness even when n < 2k.
	for i := 1; i < k; i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	if out[k-1] >= n {
		panic(fmt.Sprintf("fault.Spread: cannot place %d distinct faults in [0,%d)", k, n))
	}
	return out
}

// MaxDegree faults: kill the k highest-degree nodes of the given host
// graph (ties broken by id). The most damaging pattern for naive
// topologies.
type MaxDegree struct{ Host *graph.Graph }

func (MaxDegree) Name() string { return "maxdegree" }

func (m MaxDegree) Generate(_ *rand.Rand, n, k int) []int {
	if m.Host == nil || m.Host.N() != n {
		panic("fault.MaxDegree: host graph missing or wrong size")
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		da, db := m.Host.Degree(ids[a]), m.Host.Degree(ids[b])
		if da != db {
			return da > db
		}
		return ids[a] < ids[b]
	})
	out := make([]int, k)
	copy(out, ids[:k])
	sort.Ints(out)
	return out
}

// All returns the standard model suite used by verification sweeps over
// the host graph g.
func All(g *graph.Graph) []Model {
	return []Model{Random{}, Block{}, Spares{}, Spread{}, MaxDegree{Host: g}}
}

// Edge2Node converts a set of faulty undirected edges into a node fault
// set using the paper's reduction: a node incident to a faulty edge is
// treated as faulty. For each edge the lower-numbered endpoint is chosen
// unless it is already faulty, in which case the edge is already
// disabled. The returned set is sorted and merged with nodeFaults.
func Edge2Node(edges []graph.Edge, nodeFaults []int) []int {
	faulty := make(map[int]bool, len(nodeFaults)+len(edges))
	for _, v := range nodeFaults {
		faulty[v] = true
	}
	for _, e := range edges {
		if faulty[e.U] || faulty[e.V] {
			continue // edge already dead
		}
		lo := e.U
		if e.V < lo {
			lo = e.V
		}
		faulty[lo] = true
	}
	out := make([]int, 0, len(faulty))
	for v := range faulty {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
