package ftnet

import (
	"ftnet/internal/fleet"
	"ftnet/internal/ft"
)

// This file exposes the online reconfiguration service: a Manager owns
// live network instances, absorbs streams of fault/repair events
// (singly or as atomic bursts), and answers "where does target node x
// run now?" lock-free from an immutable epoch snapshot, backed by a
// shared, sharded, single-flight LRU mapping cache. cmd/ftnetd serves
// this API over HTTP/JSON; cmd/ftload generates traffic against it.

// Fleet-facing types, re-exported from internal/fleet.
type (
	// FleetManager is the sharded registry owning many live instances.
	FleetManager = fleet.Manager
	// FleetOptions configures NewFleetManager.
	FleetOptions = fleet.Options
	// FleetSpec describes the topology of one instance.
	FleetSpec = fleet.Spec
	// FleetEvent is one fault or repair notification.
	FleetEvent = fleet.Event
	// FleetInstance is one live network's state machine.
	FleetInstance = fleet.Instance
	// FleetStats is the fleet-wide counter snapshot.
	FleetStats = fleet.Stats
	// FleetSnapshot is the immutable per-epoch state (fault set +
	// mapping + epoch) an instance publishes; FleetInstance.Snapshot
	// returns the current one, and it stays valid for its epoch after
	// later events.
	FleetSnapshot = ft.Snapshot
)

// Topology kinds and event kinds for FleetSpec / FleetEvent.
const (
	FleetDeBruijn = fleet.KindDeBruijn
	FleetShuffle  = fleet.KindShuffle
	FleetFault    = fleet.EventFault
	FleetRepair   = fleet.EventRepair
)

// NewFleetManager returns an empty online-reconfiguration manager.
func NewFleetManager(opts FleetOptions) *FleetManager {
	return fleet.NewManager(opts)
}
