package wire

import (
	"net"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

// TestWireLookupServerAllocs guards the hot path's allocation budget
// with observability enabled: a steady-state Lookup must cost the
// server zero allocs/op end to end through handle (decode, manager
// lookup, metrics, response encode), and the manager's bytes-keyed
// lookup itself must be allocation-free — the properties the
// throughput claim rests on.
func TestWireLookupServerAllocs(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}

	id := []byte("prod")
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := mgr.LookupEpochBytes(id, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Manager.LookupEpochBytes: %.1f allocs/op, want 0", allocs)
	}

	xs := []int{0, 1, 2, 3}
	phis := make([]int, len(xs))
	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := mgr.LookupBatchBytes(id, xs, phis); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Manager.LookupBatchBytes: %.1f allocs/op, want 0", allocs)
	}

	// The full server handle path, metrics registry attached, over a
	// pre-framed request — exactly what serveConn does per frame minus
	// the socket I/O. One warmup call grows the response buffer and the
	// batch scratch to steady-state capacity; after that the path must
	// be allocation-free.
	srv := NewServer(mgr, ServerOptions{Metrics: obs.New()})
	c := &srvConn{s: srv}
	payload, err := AppendRequest(nil, Request{Type: MsgLookup, Seq: 1, ID: "prod", X: 3})
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	if out, _ = c.handle(payload, out[:0]); out == nil {
		t.Fatal("handle produced no response")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		o, ok := c.handle(payload, out[:0])
		if !ok {
			t.Fatal("handle rejected a valid lookup")
		}
		out = o
	})
	if allocs != 0 {
		t.Errorf("srvConn.handle(Lookup): %.1f allocs/op, want 0", allocs)
	}

	bpayload, err := AppendRequest(nil, Request{Type: MsgLookupBatch, Seq: 2, ID: "prod", Xs: xs})
	if err != nil {
		t.Fatal(err)
	}
	if out, _ = c.handle(bpayload, out[:0]); out == nil {
		t.Fatal("handle produced no response")
	}
	allocs = testing.AllocsPerRun(1000, func() {
		o, ok := c.handle(bpayload, out[:0])
		if !ok {
			t.Fatal("handle rejected a valid lookup batch")
		}
		out = o
	})
	if allocs != 0 {
		t.Errorf("srvConn.handle(LookupBatch): %.1f allocs/op, want 0", allocs)
	}
}

// TestWireClientLookupAllocs is the client-side mirror of the server
// guard: steady-state Lookup and LookupBatch over a live connection
// must be allocation-free. AllocsPerRun counts every goroutine, so
// this pins the whole round trip — the client's encode/flush/wait and
// reader, plus the in-process server's read/handle/flush — at zero,
// which is exactly the end-to-end property the throughput target
// rests on. The warmup loop fills the buffer pools, the call pool
// (with its deadline timer), and the connection's pending map before
// measuring.
func TestWireClientLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on channel handoffs")
	}
	mgr := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(mgr, ServerOptions{Metrics: obs.New()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	go srv.Serve(ln)

	cl, err := Dial(ln.Addr().String(), Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	xs := []int{0, 1, 2, 3}
	phis := make([]int, len(xs))
	for i := 0; i < 200; i++ {
		if _, _, err := cl.Lookup("prod", 3); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.LookupBatch("prod", xs, phis); err != nil {
			t.Fatal(err)
		}
	}

	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := cl.Lookup("prod", 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Client.Lookup round trip: %.1f allocs/op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := cl.LookupBatch("prod", xs, phis); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Client.LookupBatch round trip: %.1f allocs/op, want 0", allocs)
	}
}
