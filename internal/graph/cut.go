package graph

// Connectivity analysis: how many node (or link) failures disconnect a
// topology outright. This is the *passive* fault-tolerance measure
// studied by Esfahanian and Hakimi for de Bruijn networks (the paper's
// ref [8]) — the baseline against which the paper's spare-node approach
// is an improvement: connectivity-based tolerance merely keeps the
// network connected, while (k,G)-tolerance keeps the FULL topology.
//
// Both functions run unit-capacity max-flow (Edmonds–Karp) on small and
// mid-size graphs; they are exact.

// EdgeConnectivity returns the minimum number of edges whose removal
// disconnects g, or n-1 for complete graphs' worth of redundancy;
// 0 when g is already disconnected or has fewer than 2 nodes.
func EdgeConnectivity(g *Graph) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	// lambda = min over t != s of maxflow(s, t) with s fixed: every cut
	// separates node 0 from some node.
	best := -1
	for t := 1; t < n; t++ {
		f := maxflowEdges(g, 0, t)
		if best == -1 || f < best {
			best = f
		}
	}
	return best
}

// VertexConnectivity returns the minimum number of nodes whose removal
// disconnects g (or leaves a single node); n-1 for the complete graph.
// Returns 0 for disconnected or trivial graphs.
func VertexConnectivity(g *Graph) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	if !g.IsConnected() {
		return 0
	}
	// Complete graph: no vertex cut exists.
	if g.M() == n*(n-1)/2 {
		return n - 1
	}
	// kappa = min over non-adjacent pairs (s,t) of the max number of
	// internally vertex-disjoint s-t paths. Fixing s as a minimum-degree
	// node is NOT sufficient in general, so scan all non-adjacent pairs;
	// the flow value is capped at min degree which keeps this fast for
	// the sparse graphs in this repository.
	best := n - 1
	for s := 0; s < n; s++ {
		if g.Degree(s) < best {
			best = g.Degree(s) // deleting all neighbors isolates s
		}
		for t := s + 1; t < n; t++ {
			if g.HasEdge(s, t) {
				continue
			}
			f := maxflowVertexDisjoint(g, s, t, best)
			if f < best {
				best = f
			}
		}
	}
	return best
}

// maxflowEdges computes the max number of edge-disjoint s-t paths:
// unit-capacity Edmonds-Karp where each undirected edge is a pair of
// opposing unit arcs.
func maxflowEdges(g *Graph, s, t int) int {
	n := g.N()
	// cap[u][idx] over adjacency: store residual as map on edge pairs.
	type arc struct{ u, v int }
	res := make(map[arc]int)
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			res[arc{u, v}] = 1
		}
	}
	flow := 0
	parent := make([]int, n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = s
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range g.Neighbors(u) {
				if parent[v] == -1 && res[arc{u, v}] > 0 {
					parent[v] = u
					queue = append(queue, v)
				}
			}
		}
		if parent[t] == -1 {
			return flow
		}
		for v := t; v != s; v = parent[v] {
			u := parent[v]
			res[arc{u, v}]--
			res[arc{v, u}]++
		}
		flow++
	}
}

// maxflowVertexDisjoint computes the max number of internally
// vertex-disjoint s-t paths via node splitting: every node u other than
// s and t becomes u_in -> u_out with capacity 1. The search stops early
// once the flow reaches limit (a known upper bound), since only values
// below limit matter to the caller.
func maxflowVertexDisjoint(g *Graph, s, t, limit int) int {
	n := g.N()
	// Node ids: in(u) = 2u, out(u) = 2u+1.
	in := func(u int) int { return 2 * u }
	out := func(u int) int { return 2*u + 1 }
	type arc struct{ u, v int }
	res := make(map[arc]int)
	for u := 0; u < n; u++ {
		c := 1
		if u == s || u == t {
			c = n // source/sink are not capacity-limited
		}
		res[arc{in(u), out(u)}] = c
		for _, v := range g.Neighbors(u) {
			res[arc{out(u), in(v)}] = 1
		}
	}
	src, dst := out(s), in(t)
	flow := 0
	parent := make([]int, 2*n)
	nbrsOf := func(x int) []int {
		u := x / 2
		if x%2 == 0 { // in-node: forward to out, residual back to neighbors' outs
			nb := []int{out(u)}
			for _, v := range g.Neighbors(u) {
				nb = append(nb, out(v))
			}
			return nb
		}
		// out-node: forward to neighbors' ins, residual back to own in
		nb := []int{in(u)}
		for _, v := range g.Neighbors(u) {
			nb = append(nb, in(v))
		}
		return nb
	}
	for flow < limit {
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[dst] == -1 {
			x := queue[0]
			queue = queue[1:]
			for _, y := range nbrsOf(x) {
				if parent[y] == -1 && res[arc{x, y}] > 0 {
					parent[y] = x
					queue = append(queue, y)
				}
			}
		}
		if parent[dst] == -1 {
			return flow
		}
		for y := dst; y != src; y = parent[y] {
			x := parent[y]
			res[arc{x, y}]--
			res[arc{y, x}]++
		}
		flow++
	}
	return flow
}
