package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/journal"
	"ftnet/internal/obs"
)

// Follower tails a leader's GET /v1/watch commit stream and turns the
// local Manager into a verified replica: every forwarded record is
// checked (transitions bit-identically against a fresh ft.NewMapping —
// the cheap receiver-side verification of a forwarded record stream)
// and re-committed through the local pipeline, so the follower has its
// own journal for restart, serves the same lock-free lookups, and even
// exposes its own watch stream for chaining.
//
// The loop is resumable and self-healing: it always subscribes from
// its own NextSeq, so a torn stream just reconnects and continues; a
// sequence jump or a checkpoint entry (the leader compacted past us,
// or we joined fresh) triggers a full resynchronization from the
// forwarded checkpoint; heartbeats bound how long a dead connection
// can go unnoticed.
type Follower struct {
	mgr    *Manager
	leader string
	opts   FollowerOptions

	connected  atomic.Bool
	entries    atomic.Uint64
	heartbeats atomic.Uint64
	reconnects atomic.Uint64
	resyncs    atomic.Uint64
	demotions  atomic.Uint64 // deposed-leader resets (higher term seen upstream)
	discarded  atomic.Uint64 // local entries dropped across all demotions
	leaderSeq  atomic.Uint64 // highest seq the leader has shown us (entries + heartbeats)
	lastErr    atomic.Pointer[string]

	// Promotion handshake. promoted stops the Run loop from opening new
	// streams; runCancel/runDone let Promote cut the in-flight stream
	// and wait for the loop to fully drain before bumping the term.
	promoted  atomic.Bool
	runMu     sync.Mutex
	runCancel context.CancelFunc
	runDone   chan struct{}

	// Replication observability, registered into the manager's metrics
	// registry: how far behind the leader's stream we are (sequence
	// numbers) and how stale each applied entry was (leader commit
	// wall-clock to local apply; needs roughly-synchronized clocks, and
	// is skipped for entries with no timestamp, e.g. journal catch-up).
	lagGauge *obs.Gauge
	ageHist  *obs.Histogram
}

// FollowerOptions tunes a Follower.
type FollowerOptions struct {
	// Client issues the watch requests. It must not set a global
	// timeout (the watch response never ends); the default client adds
	// only a dial/header timeout.
	Client *http.Client
	// Heartbeat is the interval requested from the leader (default 5s).
	Heartbeat time.Duration
	// StallTimeout disconnects a stream with no entries or heartbeats
	// for this long (default 4x Heartbeat).
	StallTimeout time.Duration
	// Backoff is the initial pause between reconnect attempts (default
	// 500ms). Each consecutive failure doubles it up to BackoffMax,
	// with +-50% jitter, so a fleet of followers does not hammer a dead
	// leader in lockstep during exactly the window a failover happens;
	// a stream that connects resets the ladder.
	Backoff time.Duration
	// BackoffMax caps the exponential reconnect backoff (default 10s).
	BackoffMax time.Duration
	// Logf, when non-nil, receives connection lifecycle messages.
	Logf func(format string, args ...any)
}

// FollowerStats is a point-in-time snapshot of the replication loop.
type FollowerStats struct {
	Leader     string `json:"leader"`
	Connected  bool   `json:"connected"`
	Entries    uint64 `json:"entries"`    // stream entries received
	Heartbeats uint64 `json:"heartbeats"` // heartbeat lines received
	Reconnects uint64 `json:"reconnects"` // streams (re)opened
	Resyncs    uint64 `json:"resyncs"`    // checkpoint resynchronizations
	Demotions  uint64 `json:"demotions"`  // deposed-leader resets (higher term upstream)
	Discarded  uint64 `json:"discarded"`  // local entries dropped across demotions
	Promoted   bool   `json:"promoted"`   // this replica took leadership; the loop stopped
	LastSeq    uint64 `json:"last_seq"`   // local commit position
	LeaderSeq  uint64 `json:"leader_seq"` // highest seq the leader has shown us
	LagSeqs    int64  `json:"lag_seqs"`   // leader_seq - last_seq at the last stream event
	LastError  string `json:"last_error,omitempty"`
}

// NewFollower wires a replication loop from leader (a base URL like
// http://host:8080) into mgr. Start it with Run.
func NewFollower(mgr *Manager, leader string, opts FollowerOptions) (*Follower, error) {
	u, err := url.Parse(leader)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("fleet: follower leader URL %q: not an absolute http(s) URL", leader)
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Transport: &http.Transport{ResponseHeaderTimeout: 15 * time.Second}}
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = defaultWatchHeartbeat
	}
	if opts.StallTimeout <= 0 {
		opts.StallTimeout = 4 * opts.Heartbeat
	}
	if opts.Backoff <= 0 {
		opts.Backoff = 500 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 10 * time.Second
	}
	if opts.BackoffMax < opts.Backoff {
		opts.BackoffMax = opts.Backoff
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	// Rejected writers should learn where the leader is.
	mgr.SetLeaderHint(leader)
	reg := mgr.Metrics()
	return &Follower{
		mgr: mgr, leader: leader, opts: opts,
		lagGauge: reg.Gauge("ftnet_replication_lag_seqs",
			"Sequence numbers the local replica trails the leader's stream by."),
		ageHist: reg.Histogram("ftnet_replication_entry_age_seconds",
			"Age of each applied entry: leader commit wall-clock to local apply."),
	}, nil
}

// observeStream records the replication-lag metrics after one stream
// event: seq is the leader position the event revealed, and ts (when
// non-zero) the leader's commit wall-clock for an entry just applied.
func (f *Follower) observeStream(seq uint64, ts int64) {
	for {
		cur := f.leaderSeq.Load()
		if seq <= cur || f.leaderSeq.CompareAndSwap(cur, seq) {
			break
		}
	}
	f.lagGauge.Set(int64(f.leaderSeq.Load()) - int64(f.mgr.CommitLog().LastSeq()))
	if ts > 0 {
		f.ageHist.Observe(time.Duration(time.Now().UnixNano() - ts))
	}
}

// Stats returns the replication loop's counters.
func (f *Follower) Stats() FollowerStats {
	st := FollowerStats{
		Leader:     f.leader,
		Connected:  f.connected.Load(),
		Entries:    f.entries.Load(),
		Heartbeats: f.heartbeats.Load(),
		Reconnects: f.reconnects.Load(),
		Resyncs:    f.resyncs.Load(),
		Demotions:  f.demotions.Load(),
		Discarded:  f.discarded.Load(),
		Promoted:   f.promoted.Load(),
		LastSeq:    f.mgr.CommitLog().LastSeq(),
		LeaderSeq:  f.leaderSeq.Load(),
	}
	st.LagSeqs = f.lagGauge.Value()
	if p := f.lastErr.Load(); p != nil {
		st.LastError = *p
	}
	return st
}

// Run drives the replication loop until ctx is canceled (returning the
// context's error) or the follower is promoted (returning nil). Every
// stream error is recorded, retried after a jittered exponential
// backoff, and a stream that connects resets the backoff ladder.
func (f *Follower) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	f.runMu.Lock()
	f.runCancel = cancel
	f.runDone = done
	f.runMu.Unlock()
	defer close(done)
	backoff := f.opts.Backoff
	for {
		if f.promoted.Load() {
			return nil
		}
		before := f.reconnects.Load()
		err := f.stream(ctx)
		f.connected.Store(false)
		if f.promoted.Load() {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if f.reconnects.Load() > before {
			backoff = f.opts.Backoff // the stream connected; start the ladder over
		}
		if err != nil {
			msg := err.Error()
			f.lastErr.Store(&msg)
			f.opts.Logf("follower: stream from %s: %v (reconnecting in ~%s)", f.leader, err, backoff)
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff = min(backoff*2, f.opts.BackoffMax)
	}
}

// jitter spreads a backoff pause over [d/2, 3d/2) so a fleet of
// reconnecting followers desynchronizes instead of retrying in
// lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// Promote makes this replica the leader: stop opening new streams, cut
// the in-flight one, wait for the loop to drain (every received entry
// is applied synchronously, so a drained loop means the local log is
// at its final replicated position), then commit the term-bump fence
// and enable writes. Safe to call whether or not Run is active; a
// second call after success fails with ErrStaleTerm-free semantics via
// Manager.Promote (the replica is already writable, no bump races).
func (f *Follower) Promote(ctx context.Context) (uint64, error) {
	f.promoted.Store(true)
	f.runMu.Lock()
	cancel, done := f.runCancel, f.runDone
	f.runMu.Unlock()
	if cancel != nil {
		cancel()
	}
	if done != nil {
		select {
		case <-done:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
	term, err := f.mgr.Promote(0)
	if err != nil {
		f.promoted.Store(false) // allow the loop to resume following
		return 0, err
	}
	f.opts.Logf("follower: promoted to leader at term %d (seq %d)", term, f.mgr.CommitLog().LastSeq())
	return term, nil
}

// errResync asks the outer loop to reconnect from scratch (from=0):
// the leader's stream jumped past our position, so only its checkpoint
// can restore us.
var errResync = errors.New("fleet: follower needs a checkpoint resync")

// stream opens one watch connection at the local resume position and
// applies entries until it breaks.
func (f *Follower) stream(ctx context.Context) error {
	from := f.mgr.NextSeq()
	err := f.streamFrom(ctx, from)
	if errors.Is(err, errResync) && from > 0 {
		f.resyncs.Add(1)
		f.opts.Logf("follower: resynchronizing from %s (local seq %d is beyond the leader's compacted log)",
			f.leader, from-1)
		return f.streamFrom(ctx, 0)
	}
	return err
}

func (f *Follower) streamFrom(ctx context.Context, from uint64) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	u := fmt.Sprintf("%s/v1/watch?from=%d&heartbeat=%s", f.leader, from, f.opts.Heartbeat)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// The term handshake, before any entry is consumed. The leader
	// advertises its term (and the seq of the fence that set it) on
	// every watch response; comparing against local state classifies
	// the connection:
	//
	//   - leader term < ours: the upstream is itself a stale leader
	//     (deposed but not yet demoted). Never follow it — back off and
	//     retry; it will demote or the config will change.
	//   - leader term > ours AND our log extends past the fence seq: WE
	//     are the deposed leader, holding a suffix that was acked
	//     locally but never replicated before the promotion. Demote:
	//     count and discard the suffix, reset the replica, and resync
	//     from zero so the promoted leader's history lands
	//     bit-identically.
	//   - otherwise: normal lag; any term bump arrives in-stream and
	//     re-commits through the local term chain.
	var leaderTerm, leaderTermSeq uint64
	if ts := resp.Header.Get("X-Ftnet-Term"); ts != "" {
		leaderTerm, err = strconv.ParseUint(ts, 10, 64)
		if err != nil {
			return fmt.Errorf("fleet: follower: bad X-Ftnet-Term %q: %v", ts, err)
		}
		leaderTermSeq, _ = strconv.ParseUint(resp.Header.Get("X-Ftnet-Term-Seq"), 10, 64)
		localTerm, _ := f.mgr.Term()
		if leaderTerm < localTerm {
			return errorf(ErrStaleTerm,
				"fleet: follower: refusing stream from %s: it advertises term %d below local term %d (stale leader)",
				f.leader, leaderTerm, localTerm)
		}
		if leaderTerm > localTerm && leaderTermSeq > 0 && from > leaderTermSeq {
			dropped := from - leaderTermSeq
			f.demotions.Add(1)
			f.discarded.Add(dropped)
			f.opts.Logf("follower: deposed by term %d (fenced at seq %d): discarding %d un-replicated local entries and resyncing",
				leaderTerm, leaderTermSeq, dropped)
			if err := f.mgr.DemoteAndReset(f.leader); err != nil {
				return fmt.Errorf("fleet: follower: demote: %w", err)
			}
			return errResync
		}
	}
	if resp.StatusCode == http.StatusRequestedRangeNotSatisfiable {
		// The leader's log ends before our position: it restarted with
		// less history than we replicated. Resync from its checkpoint.
		return errResync
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: follower: leader returned status %d", resp.StatusCode)
	}
	f.reconnects.Add(1)
	f.connected.Store(true)
	f.opts.Logf("follower: streaming from %s (from seq %d)", f.leader, from)

	// The stall watchdog: any line (entry or heartbeat) rearms it; a
	// silent connection is cut and the outer loop reconnects-resumes.
	stall := time.AfterFunc(f.opts.StallTimeout, cancel)
	defer stall.Stop()

	// Checkpoint staging: "checkpoint" entries arrive as a group, all
	// carrying the seq they cover; the reset is applied when the group
	// ends (the first ordinary entry, or a heartbeat).
	var staged []journal.Record
	var stagedSeq uint64
	applyStaged := func() error {
		if staged == nil {
			return nil
		}
		// The checkpoint group carries the leader's state at stagedSeq.
		// The term in force THERE is the advertised one only if the
		// fence that set it lies inside the checkpointed prefix; a
		// fence in the suffix arrives in-stream after the group, and
		// adopting its term early would make that bump look stale. In
		// that case keep the local term — a chain-safe lower bound,
		// since terms are monotone in seq and our old position was
		// behind the checkpoint.
		cpTerm := leaderTerm
		if leaderTermSeq > stagedSeq {
			cpTerm, _ = f.mgr.Term()
		}
		if err := f.mgr.ResetFromCheckpoint(stagedSeq, cpTerm, staged); err != nil {
			return err
		}
		f.opts.Logf("follower: installed checkpoint of %d instances at seq %d", len(staged), stagedSeq)
		staged = nil
		return nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		stall.Reset(f.opts.StallTimeout)
		var we WatchEntry
		if err := json.Unmarshal(sc.Bytes(), &we); err != nil {
			return fmt.Errorf("fleet: follower: bad watch line %q: %v", sc.Text(), err)
		}
		if we.Heartbeat {
			f.heartbeats.Add(1)
			if err := applyStaged(); err != nil {
				return err
			}
			// An idle heartbeat still reveals the leader's position: a
			// lag that persists across heartbeats is real, not in-flight.
			f.observeStream(we.Seq, 0)
			continue
		}
		e, err := we.Entry()
		if err != nil {
			return err
		}
		if e.Rec.Op == journal.OpCheckpoint {
			if staged == nil || e.Seq != stagedSeq {
				staged, stagedSeq = []journal.Record{}, e.Seq
			}
			staged = append(staged, e.Rec)
			f.entries.Add(1)
			continue
		}
		if err := applyStaged(); err != nil {
			return err
		}
		if err := f.mgr.ReplicateEntry(e); err != nil {
			if errors.Is(err, ErrSeqGap) {
				return fmt.Errorf("%w: %v", errResync, err)
			}
			return err
		}
		f.entries.Add(1)
		f.observeStream(e.Seq, e.At)
	}
	if err := applyStaged(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("fleet: follower: leader closed the stream")
}
