package ftnet

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeDeBruijnQuickPath(t *testing.T) {
	net, err := NewDeBruijn2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Host.N() != 18 || net.Target.N() != 16 {
		t.Fatalf("sizes: host=%d target=%d", net.Host.N(), net.Target.N())
	}
	if net.Host.MaxDegree() > 12 {
		t.Errorf("host degree %d > 4k+4", net.Host.MaxDegree())
	}
	m, err := net.Reconfigure([]int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	phi := m.PhiSlice()
	if phi[3] != 4 {
		t.Errorf("phi[3] = %d, want 4 (skipping fault at 3)", phi[3])
	}
	if err := net.VerifyRandomized(10, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDeBruijnExhaustiveSmall(t *testing.T) {
	net, err := NewDeBruijn(2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.VerifyExhaustive(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBaseM(t *testing.T) {
	net, err := NewDeBruijn(3, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Host.N() != 29 {
		t.Errorf("host size %d", net.Host.N())
	}
	if err := net.VerifyRandomized(5, 2); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := NewDeBruijn(1, 3, 0); err == nil {
		t.Error("m=1 accepted")
	}
	if _, err := NewDeBruijn2(2, 0); err == nil {
		t.Error("h=2 accepted")
	}
	net, _ := NewDeBruijn2(3, 1)
	if _, err := net.Reconfigure([]int{1, 2}); err == nil {
		t.Error("too many faults accepted")
	}
}

func TestFacadeBuses(t *testing.T) {
	net, err := NewDeBruijn2(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	arch, err := net.Buses()
	if err != nil {
		t.Fatal(err)
	}
	if arch.MaxBusDegree() > 5 {
		t.Errorf("bus degree %d > 2k+3", arch.MaxBusDegree())
	}
}

func TestFacadeDOT(t *testing.T) {
	net, err := NewDeBruijn2(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteTargetDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph target {") {
		t.Error("target DOT missing header")
	}
	buf.Reset()
	if err := net.WriteHostDOT(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "graph host {") {
		t.Error("host DOT missing header")
	}
}

func TestFacadeShuffleExchange(t *testing.T) {
	net, err := NewShuffleExchange(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if net.Host.N() != 18 || net.Target.N() != 16 {
		t.Fatalf("sizes: host=%d target=%d", net.Host.N(), net.Target.N())
	}
	phi, err := net.Reconfigure([]int{0, 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, img := range phi {
		if img == 0 || img == 17 {
			t.Fatal("SE node mapped onto a faulty host node")
		}
	}
	if err := net.VerifyRandomized(10, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShuffleExchange(1, 0); err == nil {
		t.Error("h=1 accepted")
	}
}
