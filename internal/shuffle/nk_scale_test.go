package shuffle

import (
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
)

func TestNecklaceRotationEmbeddingAllSizes(t *testing.T) {
	// Empirically, a necklace-rotation embedding of SE_h into B_{2,h}
	// exists for every practical h (this realizes the subgraph relation
	// the paper cites as [7]). Verify it end-to-end across a wide sweep.
	max := 12
	if testing.Short() {
		max = 8
	}
	for h := 2; h <= max; h++ {
		phi, ok := necklaceRotationEmbedding(h)
		if !ok {
			t.Fatalf("h=%d: no necklace-rotation embedding found", h)
		}
		se := MustNew(Params{H: h})
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		if err := graph.CheckEmbedding(se, db, phi); err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
	}
}

func TestNecklaceRotationPreservesNecklaces(t *testing.T) {
	// The restricted form must map every node within its own necklace.
	h := 7
	phi, ok := necklaceRotationEmbedding(h)
	if !ok {
		t.Fatal("no embedding")
	}
	for _, nk := range Necklaces(h) {
		inOrbit := map[int]bool{}
		for _, x := range nk.Nodes {
			inOrbit[x] = true
		}
		for _, x := range nk.Nodes {
			if !inOrbit[phi[x]] {
				t.Fatalf("phi(%d)=%d left its necklace (rep %d)", x, phi[x], nk.Rep)
			}
		}
	}
}

func TestNecklaceOrderIsPermutation(t *testing.T) {
	nbrs := [][]int{{1}, {0, 2}, {1}, {}}
	order := necklaceOrder(4, nbrs)
	seen := map[int]bool{}
	for _, v := range order {
		if v < 0 || v >= 4 || seen[v] {
			t.Fatalf("bad order %v", order)
		}
		seen[v] = true
	}
	if len(order) != 4 {
		t.Fatalf("order length %d", len(order))
	}
}
