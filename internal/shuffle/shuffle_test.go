package shuffle

import (
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/num"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{H: 3}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Params{H: 0}).Validate(); err == nil {
		t.Error("h=0 should be invalid")
	}
	if err := (Params{H: 80}).Validate(); err == nil {
		t.Error("2^80 should overflow")
	}
}

func TestSE3Structure(t *testing.T) {
	g := MustNew(Params{H: 3})
	if g.N() != 8 {
		t.Fatalf("n = %d", g.N())
	}
	// Exchange edges.
	for _, e := range [][2]int{{0, 1}, {2, 3}, {4, 5}, {6, 7}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("exchange edge %v missing", e)
		}
	}
	// Shuffle edges: necklace (1,2,4) and (3,6,5).
	for _, e := range [][2]int{{1, 2}, {2, 4}, {4, 1}, {3, 6}, {6, 5}, {5, 3}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Errorf("shuffle edge %v missing", e)
		}
	}
	if g.M() != 10 {
		t.Errorf("SE_3 edges = %d, want 10", g.M())
	}
	if g.MaxDegree() > 3 {
		t.Errorf("SE_3 degree = %d > 3", g.MaxDegree())
	}
}

func TestDegreeAtMost3(t *testing.T) {
	for h := 1; h <= 9; h++ {
		g := MustNew(Params{H: h})
		if g.MaxDegree() > 3 {
			t.Errorf("SE_%d max degree = %d > 3", h, g.MaxDegree())
		}
	}
}

func TestConnected(t *testing.T) {
	for h := 2; h <= 8; h++ {
		if !MustNew(Params{H: h}).IsConnected() {
			t.Errorf("SE_%d should be connected", h)
		}
	}
}

func TestEdgeClassification(t *testing.T) {
	h := 4
	g := MustNew(Params{H: h})
	g.EachEdge(func(u, v int) bool {
		if !IsExchangeEdge(u, v) && !IsShuffleEdge(u, v, h) {
			t.Errorf("edge (%d,%d) is neither exchange nor shuffle", u, v)
		}
		return true
	})
	if !IsExchangeEdge(6, 7) || IsExchangeEdge(5, 7) {
		t.Error("IsExchangeEdge wrong")
	}
	if !IsShuffleEdge(1, 2, 3) || IsShuffleEdge(0, 3, 3) {
		t.Error("IsShuffleEdge wrong")
	}
}

func TestShuffleEdgesAreDeBruijnEdges(t *testing.T) {
	// Under the identity labeling every shuffle edge is a de Bruijn edge
	// (rotation = shift with the dropped bit reinserted); exchange edges
	// generally are not — this is why the natural labeling costs degree
	// 6k+4 and motivates the Feldmann–Unger relabeling.
	for h := 2; h <= 7; h++ {
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		se := MustNew(Params{H: h})
		someExchangeOutside := false
		se.EachEdge(func(u, v int) bool {
			if IsShuffleEdge(u, v, h) && !db.HasEdge(u, v) {
				t.Errorf("h=%d: shuffle edge (%d,%d) not in B_{2,%d}", h, u, v, h)
			}
			if IsExchangeEdge(u, v) && !db.HasEdge(u, v) {
				someExchangeOutside = true
			}
			return true
		})
		if h >= 3 && !someExchangeOutside {
			t.Errorf("h=%d: all exchange edges inside dB — unexpected", h)
		}
	}
}

func TestNecklaces(t *testing.T) {
	nks := Necklaces(3)
	// 3-bit necklaces: {0}, {1,2,4}, {3,6,5}, {7}.
	if len(nks) != 4 {
		t.Fatalf("necklaces = %v", nks)
	}
	total := 0
	for _, nk := range nks {
		total += len(nk.Nodes)
		if nk.Nodes[0] != nk.Rep {
			t.Errorf("necklace does not start at rep: %v", nk)
		}
		for i, x := range nk.Nodes {
			if num.NecklaceMin(x, 2, 3) != nk.Rep {
				t.Errorf("node %d in wrong necklace %d", x, nk.Rep)
			}
			next := nk.Nodes[(i+1)%len(nk.Nodes)]
			if len(nk.Nodes) > 1 && num.RotLeft(x, 2, 3) != next {
				t.Errorf("necklace not in rotation order: %v", nk)
			}
		}
	}
	if total != 8 {
		t.Errorf("necklaces cover %d nodes, want 8", total)
	}
}

func TestNecklacesPartition(t *testing.T) {
	for h := 1; h <= 8; h++ {
		seen := map[int]bool{}
		for _, nk := range Necklaces(h) {
			for _, x := range nk.Nodes {
				if seen[x] {
					t.Fatalf("h=%d: node %d in two necklaces", h, x)
				}
				seen[x] = true
			}
		}
		if len(seen) != 1<<h {
			t.Errorf("h=%d: covered %d of %d nodes", h, len(seen), 1<<h)
		}
	}
}

func TestApplyLabels(t *testing.T) {
	p := Params{H: 3}
	g := MustNew(p)
	ApplyLabels(g, p)
	if g.Label(6) != "110" {
		t.Errorf("label(6) = %q", g.Label(6))
	}
}

func TestParamsString(t *testing.T) {
	if (Params{H: 5}).String() != "SE_5" {
		t.Error("String wrong")
	}
}
