package ft

import (
	"fmt"
	"sort"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// The paper closes hoping its techniques "lead to the development of
// practical fault-tolerant architectures". This file generalizes the
// construction from de Bruijn graphs to ANY target whose edges follow a
// linear rule
//
//	(x, y) in E  iff  y = X(x, m, r, N) for some r in R  (or symmetric),
//
// with multiplier m >= 1 and an arbitrary digit set R ⊆ [0, N). The
// same rank-based reconfiguration works; only the host's s-range
// changes:
//
//	m = 1 (rings, chordal rings, circulants):  s in [min R, max R + k]
//	  — for m=1 an edge wraps at most once, and the displacement term
//	  delta_y - delta_x lies in [0, k] when x < y (no wrap) and
//	  [-k, 0] + k when x > y (one wrap), giving [r, r+k] in both cases.
//	  With R = {1} this reproduces Hayes's classic fault-tolerant ring:
//	  N + k nodes, each linked to its k+1 successors, degree 2k+2.
//
//	m >= 2, R = {0..m-1}: the paper's own range
//	  [(m-1)(-k), (m-1)(k+1)] (Theorems 1 and 2).
//
//	otherwise: the conservative range [min R - mk, max R + (m+1)k],
//	  from t in [0, m] and delta_y - m*delta_x in [-mk, k]. Specialized
//	  analyses can tighten this; the tests verify tolerance exhaustively
//	  for every rule exercised.
type GeneralParams struct {
	M int   // multiplier, >= 1
	N int   // target node count, >= 2
	R []int // digit set, each in [0, N)
	K int   // fault budget, >= 0
}

// Validate checks the rule.
func (p GeneralParams) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("ft: multiplier m=%d must be >= 1", p.M)
	}
	if p.N < 2 {
		return fmt.Errorf("ft: target size N=%d must be >= 2", p.N)
	}
	if p.K < 0 {
		return fmt.Errorf("ft: fault budget k=%d must be >= 0", p.K)
	}
	if len(p.R) == 0 {
		return fmt.Errorf("ft: digit set R must be nonempty")
	}
	for _, r := range p.R {
		if r < 0 || r >= p.N {
			return fmt.Errorf("ft: digit r=%d out of range [0,%d)", r, p.N)
		}
	}
	return nil
}

// SRange returns the host edge-rule range [smin, smax] per the case
// analysis above.
func (p GeneralParams) SRange() (int, int) {
	minR, maxR := p.R[0], p.R[0]
	for _, r := range p.R {
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
	}
	if p.M == 1 {
		return minR, maxR + p.K
	}
	if isFullDigitSet(p.R, p.M) {
		return (p.M - 1) * (-p.K), (p.M - 1) * (p.K + 1)
	}
	return minR - p.M*p.K, maxR + (p.M+1)*p.K
}

func isFullDigitSet(r []int, m int) bool {
	if len(r) != m {
		return false
	}
	s := append([]int(nil), r...)
	sort.Ints(s)
	for i, v := range s {
		if v != i {
			return false
		}
	}
	return true
}

// NewTarget builds the target graph of the rule.
func NewTarget(p GeneralParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(p.N)
	for x := 0; x < p.N; x++ {
		for _, r := range p.R {
			b.AddEdge(x, num.X(x, p.M, r, p.N))
		}
	}
	return b.Build(), nil
}

// NewGeneral builds the fault-tolerant host for the rule: N + k nodes,
// edge (x, y) iff y = X(x, m, s, N+k) for some s in the SRange (or
// symmetric).
func NewGeneral(p GeneralParams) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := p.N + p.K
	smin, smax := p.SRange()
	b := graph.NewBuilder(s)
	for x := 0; x < s; x++ {
		for r := smin; r <= smax; r++ {
			b.AddEdge(x, num.X(x, p.M, r, s))
		}
	}
	return b.Build(), nil
}

// Ring returns the parameters of Hayes's fault-tolerant ring on N
// nodes tolerating k faults: host N+k nodes, degree 2k+2.
func Ring(n, k int) GeneralParams { return GeneralParams{M: 1, N: n, R: []int{1}, K: k} }

// ChordalRing returns a ring with an extra chord of stride c.
func ChordalRing(n, c, k int) GeneralParams {
	return GeneralParams{M: 1, N: n, R: []int{1, c}, K: k}
}

// GeneralMapper returns a verify-compatible mapper for the rule. The
// second argument is the verifier's reusable dense buffer: the mapper
// materializes into it so checking many fault sets does not allocate
// one slice per set.
func GeneralMapper(p GeneralParams) func(faults, buf []int) ([]int, error) {
	return func(faults, buf []int) ([]int, error) {
		m, err := NewMapping(p.N, p.N+p.K, faults)
		if err != nil {
			return nil, err
		}
		return m.AppendPhi(buf[:0]), nil
	}
}
