package fleet

import (
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/commit"
	"ftnet/internal/journal"
	"ftnet/internal/obs"
)

// numShards is the number of independently-locked instance maps. A
// power of two well above typical core counts keeps registry contention
// negligible next to per-instance work.
const numShards = 16

// Options configures a Manager.
type Options struct {
	// CacheSize caps the shared mapping cache (<= 0 selects
	// DefaultCacheSize).
	CacheSize int
	// CacheShards sets the mapping cache's shard count (<= 0 selects
	// DefaultCacheShards).
	CacheShards int
	// Journal, when non-nil, makes every accepted transition durable:
	// instance creates/deletes and applied event batches each append
	// one O(k) record before the state change becomes visible.
	// Manager.Recover replays such a log after a restart.
	Journal *journal.Writer
	// CacheAdmission enables the mapping cache's doorkeeper: a fault
	// pattern is only admitted to the LRU once it has been seen before,
	// so one-off patterns cannot wash the working set out.
	CacheAdmission bool
	// CacheDoorAgePeriod sets the doorkeeper's reset interval — misses
	// per cache shard between counter halvings (<= 0 selects
	// DefaultDoorAgePeriod).
	CacheDoorAgePeriod int
	// CommitHistory caps the commit log's in-memory catch-up tail
	// (<= 0 selects commit.DefaultHistory).
	CommitHistory int
	// Metrics, when non-nil, is the registry the manager's service
	// metrics (commit stage timings, compaction pauses, and whatever
	// the embedding layer adds) land in. Nil creates a private one, so
	// tests and benchmarks need no wiring.
	Metrics *obs.Registry
}

// Manager is the sharded registry that owns a fleet of instances behind
// one API. All methods are safe for concurrent use.
type Manager struct {
	shards [numShards]shard
	seed   maphash.Seed
	cache  *Cache
	pipe   *pipeline // the shared commit pipeline; never nil

	events  atomic.Uint64  // applied events, fleet-wide
	batches atomic.Uint64  // applied atomic transitions (a single event counts one)
	lookups stripedCounter // lookups, fleet-wide (striped: it sits on the read path)

	rejectedBudget   atomic.Uint64 // rejections: budget exhausted
	rejectedConflict atomic.Uint64 // rejections: double fault / repair healthy
	rejectedInvalid  atomic.Uint64 // rejections: unknown node/kind, empty batch

	journalFailed atomic.Uint64                // transitions refused: journal/commit error
	recovered     atomic.Pointer[RecoverStats] // last Recover result, for stats
	compactions   atomic.Uint64                // successful Compact calls

	// Write posture. A replica in read-only posture (a follower, or a
	// deposed leader) refuses Create/Delete/EventBatch with ErrReadOnly
	// — consulted per-request by every transport, so promotion flips
	// the whole surface at once without rewiring handlers. leaderHint,
	// when known, is the leader's advertised URL, folded into the
	// ErrReadOnly message so clients learn where to go.
	readOnly   atomic.Bool
	leaderHint atomic.Pointer[string]
	rejectedRO atomic.Uint64 // mutations refused while read-only

	// Shard-ring state. topo is nil for unsharded deployments, so the
	// single-daemon path pays one atomic load per request. moved pins
	// per-id owners away from the ring's answer while instances are in
	// flight (see topology.go); movedN mirrors len(moved) so the hot
	// path skips the map lock when there are no pins.
	topo          atomic.Pointer[topology]
	movedMu       sync.RWMutex
	moved         map[string]string
	movedN        atomic.Int64
	rejectedShard atomic.Uint64 // requests refused: instance owned elsewhere
	migrateMu     sync.Mutex    // serializes outbound migrations

	obs             *obs.Registry  // service metrics registry; never nil
	pauseHist       *obs.Histogram // compaction pause (commits gated) duration
	wrongShardTotal *obs.Counter   // requests redirected to the owning shard
	migrationsOut   *obs.Counter   // instances migrated away
	migrationsIn    *obs.Counter   // instances migrated in (committed)
	migratePause    *obs.Histogram // per-migration write-fence window
}

type shard struct {
	mu        sync.RWMutex
	instances map[string]*Instance
}

// NewManager returns an empty manager with its shared mapping cache
// and commit pipeline.
func NewManager(opts Options) *Manager {
	reg := opts.Metrics
	if reg == nil {
		reg = obs.New()
	}
	m := &Manager{
		seed: maphash.MakeSeed(),
		cache: NewCacheConfig(CacheConfig{
			Capacity:      opts.CacheSize,
			Shards:        opts.CacheShards,
			Admission:     opts.CacheAdmission,
			DoorAgePeriod: opts.CacheDoorAgePeriod,
		}),
		pipe: &pipeline{log: commit.NewLog(commit.Config{History: opts.CommitHistory, Obs: reg})},
		obs:  reg,
		pauseHist: reg.Histogram("ftnet_compaction_pause_seconds",
			"Wall-clock time commits were gated during one checkpoint compaction."),
		wrongShardTotal: reg.Counter("ftnet_shard_wrong_shard_total",
			"Requests refused with a redirect because another daemon owns the instance."),
		migrationsOut: reg.Counter("ftnet_shard_migrations_out_total",
			"Instances migrated away from this daemon."),
		migrationsIn: reg.Counter("ftnet_shard_migrations_in_total",
			"Instances migrated onto this daemon (stage + suffix committed)."),
		migratePause: reg.Histogram("ftnet_shard_migration_pause_seconds",
			"Per-migration write-fence window: writes to the instance were redirected, not applied."),
	}
	for i := range m.shards {
		m.shards[i].instances = make(map[string]*Instance)
	}
	if opts.Journal != nil {
		m.SetJournal(opts.Journal)
	}
	return m
}

// SetJournal attaches (or replaces) the durability journal by wiring
// it into the commit pipeline every instance already commits through.
// ftnetd calls it after recovery — the boot order is recover from the
// old log, truncate any torn tail, then attach the append writer — so
// it must happen before traffic is served; concurrent use with event
// application is not supported.
func (m *Manager) SetJournal(w *journal.Writer) {
	m.pipe.log.SetWriter(w)
}

// CommitLog exposes the manager's commit pipeline: the ordered,
// gap-free stream of every accepted transition. Subscribe to it for
// watch/replication; cmd/ftnetd closes it (via Close) on shutdown.
func (m *Manager) CommitLog() *commit.Log { return m.pipe.log }

// Subscribe opens a bounded, gap-free subscription to the commit
// stream starting at fromSeq (catch-up from journal/checkpoint, then
// live tail) — the primitive under GET /v1/watch and follower
// replication.
func (m *Manager) Subscribe(fromSeq uint64, buf int) (*commit.Sub, error) {
	return m.pipe.log.Subscribe(fromSeq, buf)
}

// NextSeq returns the commit sequence number the next accepted
// transition will carry.
func (m *Manager) NextSeq() uint64 { return m.pipe.log.NextSeq() }

// Close shuts the commit pipeline down: the journal is flushed,
// fsynced and closed, and every watch/replication subscriber's stream
// ends. Further transitions are refused.
func (m *Manager) Close() error { return m.pipe.log.Close() }

// Quiesce ends every watch/replication subscription at a record
// boundary while keeping the manager (and its journal) open — the
// shutdown step that lets an http.Server drain streaming handlers
// before the final journal flush+fsync in Close.
func (m *Manager) Quiesce() { m.pipe.log.Quiesce() }

func (m *Manager) shardFor(id string) *shard {
	return &m.shards[maphash.String(m.seed, id)%numShards]
}

// SetReadOnly flips the manager's write posture. Read-only refuses
// client mutations (Create, Delete, EventBatch) with ErrReadOnly;
// replication and recovery paths are unaffected — they re-commit the
// leader's entries by construction.
func (m *Manager) SetReadOnly(ro bool) { m.readOnly.Store(ro) }

// ReadOnly reports the current write posture.
func (m *Manager) ReadOnly() bool { return m.readOnly.Load() }

// SetLeaderHint records the leader URL advertised to rejected writers
// ("" clears it).
func (m *Manager) SetLeaderHint(url string) {
	if url == "" {
		m.leaderHint.Store(nil)
		return
	}
	m.leaderHint.Store(&url)
}

// LeaderHint returns the advertised leader URL, or "".
func (m *Manager) LeaderHint() string {
	if p := m.leaderHint.Load(); p != nil {
		return *p
	}
	return ""
}

// errReadOnly builds the rejection for a mutation attempted in
// read-only posture, carrying the leader hint when one is known.
func (m *Manager) errReadOnly(verb string) error {
	m.rejectedRO.Add(1)
	if hint := m.LeaderHint(); hint != "" {
		return errorf(ErrReadOnly, "fleet: %s refused: read-only replica (leader: %s)", verb, hint)
	}
	return errorf(ErrReadOnly, "fleet: %s refused: read-only replica", verb)
}

// Term returns the leadership term in force and the commit seq of the
// entry that established it.
func (m *Manager) Term() (term, termSeq uint64) { return m.pipe.log.Term() }

// Promote makes this replica the leader: it commits the OpTermBump
// fence — every subsequent entry belongs to the new term, and the
// commit plane rejects any bump that does not move the term forward,
// so two racing promotions serialize and the loser gets ErrStaleTerm
// — then drops read-only posture. term selects the new term; 0 means
// current+1. The caller (fleet.Follower, or ftnetd's signal handler)
// must have stopped tailing the old leader first.
func (m *Manager) Promote(term uint64) (uint64, error) {
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	cur, _ := m.pipe.log.Term()
	if term == 0 {
		term = cur + 1
	}
	rec := journal.Record{Op: journal.OpTermBump, ID: journal.SeqBaseID, Term: term}
	if _, err := m.pipe.log.Commit(rec, nil); err != nil {
		if errors.Is(err, commit.ErrStaleTerm) {
			return 0, errorf(ErrStaleTerm, "fleet: promote to term %d: %v", term, err)
		}
		m.journalFailed.Add(1)
		return 0, errorf(ErrUnavailable, "fleet: commit term bump: %v", err)
	}
	m.readOnly.Store(false)
	m.leaderHint.Store(nil)
	return term, nil
}

// Create registers a new instance under id. The id must be non-empty
// and unused; the spec must satisfy the paper's preconditions. The
// create record is committed under the shard lock before the instance
// becomes visible, so no transition record can ever precede its
// instance's create record in the commit stream. Holding the shard
// lock across the (possibly fsynced) commit briefly stalls that
// shard's lookups; that is a deliberate trade — create/delete are rare
// control-plane operations, and the hot transition path fsyncs only
// under its own instance's writer mutex.
func (m *Manager) Create(id string, spec Spec) (*Instance, error) {
	if m.readOnly.Load() {
		return nil, m.errReadOnly("create")
	}
	if id == "" {
		return nil, fmt.Errorf("fleet: empty instance id")
	}
	if err := m.checkOwned(id); err != nil {
		return nil, err
	}
	in, err := newInstance(id, spec, m.cache, m.pipe)
	if err != nil {
		return nil, err
	}
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.instances[id]; dup {
		return nil, errorf(ErrConflict, "fleet: instance %q already exists", id)
	}
	rec := journal.Record{Op: journal.OpCreate, ID: id, Spec: journalSpec(spec)}
	if _, err := m.pipe.log.Commit(rec, func() { s.instances[id] = in }); err != nil {
		m.journalFailed.Add(1)
		return nil, errorf(ErrUnavailable, "fleet: commit create %s: %v", id, err)
	}
	return in, nil
}

// createRaw registers an instance without committing — the recovery
// path, replaying records that are already in the log.
func (m *Manager) createRaw(id string, spec Spec) (*Instance, error) {
	if id == "" {
		return nil, fmt.Errorf("fleet: empty instance id")
	}
	in, err := newInstance(id, spec, m.cache, m.pipe)
	if err != nil {
		return nil, err
	}
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.instances[id]; dup {
		return nil, errorf(ErrConflict, "fleet: instance %q already exists", id)
	}
	s.instances[id] = in
	return in, nil
}

// journalSpec converts a fleet spec to its journal representation.
func journalSpec(spec Spec) journal.Spec {
	return journal.Spec{Kind: string(spec.Kind), M: spec.M, H: spec.H, K: spec.K}
}

// Get returns the instance with the given id.
func (m *Manager) Get(id string) (*Instance, bool) {
	s := m.shardFor(id)
	s.mu.RLock()
	in, ok := s.instances[id]
	s.mu.RUnlock()
	return in, ok
}

// GetBytes is Get for an id held as a byte slice — the binary wire
// plane's path, which decodes ids as payload subslices. It performs no
// allocation: maphash.Bytes matches maphash.String, and the map index
// conversion does not escape.
func (m *Manager) GetBytes(id []byte) (*Instance, bool) {
	s := &m.shards[maphash.Bytes(m.seed, id)%numShards]
	s.mu.RLock()
	in, ok := s.instances[string(id)]
	s.mu.RUnlock()
	return in, ok
}

// Delete removes the instance with the given id, reporting whether it
// existed. The delete record is committed first; if that fails the
// instance stays registered, so memory never gets ahead of the log.
// Before the commit, the instance is tombstoned under its writer
// mutex: any ApplyBatch that raced the delete has either already
// finished (its record precedes the delete record) or will see the
// tombstone and reject — so no transition record can ever trail its
// instance's delete record, and a reused id recovers cleanly.
func (m *Manager) Delete(id string) (bool, error) {
	if m.readOnly.Load() {
		return false, m.errReadOnly("delete")
	}
	if err := m.checkOwned(id); err != nil {
		return false, err
	}
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	in, ok := s.instances[id]
	if !ok {
		return false, nil
	}
	in.writeMu.Lock()
	if in.staged.Load() {
		// A staged inbound copy is not journaled yet: tombstoning it here
		// would commit an OpDelete for an id this journal never created
		// and race the source's CommitMigration. Same answer as reads and
		// ApplyBatch give.
		in.writeMu.Unlock()
		return false, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged); retry shortly", id)
	}
	if in.migrating {
		owner := in.migrateTo
		in.writeMu.Unlock()
		return false, wrongShardf(owner, "fleet: instance %q is migrating; delete it at its new owner", id)
	}
	in.deleted = true
	in.writeMu.Unlock()
	rec := journal.Record{Op: journal.OpDelete, ID: id}
	if _, err := m.pipe.log.Commit(rec, func() { delete(s.instances, id) }); err != nil {
		m.journalFailed.Add(1)
		in.writeMu.Lock()
		in.deleted = false // the delete did not happen
		in.writeMu.Unlock()
		return false, errorf(ErrUnavailable, "fleet: commit delete %s: %v", id, err)
	}
	return true, nil
}

// deleteRaw removes an instance without journaling (recovery path).
func (m *Manager) deleteRaw(id string) {
	s := m.shardFor(id)
	s.mu.Lock()
	delete(s.instances, id)
	s.mu.Unlock()
}

// Event routes one fault/repair event to the named instance.
func (m *Manager) Event(id string, ev Event) (EventResult, error) {
	return m.EventBatch(id, []Event{ev})
}

// EventBatch routes a whole fault burst to the named instance as one
// atomic transition: either every event applies and the epoch advances
// by exactly one, or none do.
func (m *Manager) EventBatch(id string, events []Event) (EventResult, error) {
	if err := m.checkOwned(id); err != nil {
		return EventResult{}, err
	}
	in, ok := m.Get(id)
	if !ok {
		return EventResult{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	return m.applyBatch(in, events)
}

// EventBatchBytes is EventBatch for an id held as bytes (the wire
// plane's path).
func (m *Manager) EventBatchBytes(id []byte, events []Event) (EventResult, error) {
	if err := m.checkOwnedBytes(id); err != nil {
		return EventResult{}, err
	}
	in, ok := m.GetBytes(id)
	if !ok {
		return EventResult{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	return m.applyBatch(in, events)
}

// applyBatch applies a burst to a resolved instance and maintains the
// fleet-wide accept/reject counters — the shared tail of EventBatch
// and EventBatchBytes.
func (m *Manager) applyBatch(in *Instance, events []Event) (EventResult, error) {
	if m.readOnly.Load() {
		return EventResult{}, m.errReadOnly("event batch")
	}
	res, err := in.ApplyBatch(events)
	if err != nil {
		switch {
		case errors.Is(err, ErrUnavailable):
			m.journalFailed.Add(1)
		case errors.Is(err, ErrBudget):
			m.rejectedBudget.Add(1)
		case errors.Is(err, ErrConflict):
			m.rejectedConflict.Add(1)
		default:
			m.rejectedInvalid.Add(1)
		}
		return res, err
	}
	m.events.Add(uint64(len(events)))
	m.batches.Add(1)
	return res, nil
}

// Lookup answers where target node x of the named instance runs now.
func (m *Manager) Lookup(id string, x int) (int, error) {
	if err := m.checkOwned(id); err != nil {
		return 0, err
	}
	in, ok := m.Get(id)
	if !ok {
		return 0, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	if in.staged.Load() {
		return 0, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged)", id)
	}
	phi, err := in.Lookup(x)
	if err != nil {
		return 0, err
	}
	m.lookups.Add(x)
	return phi, nil
}

// LookupEpochBytes is the wire plane's Lookup: the id arrives as a
// payload subslice, and the answer carries the epoch of the snapshot
// that produced it. Allocation-free on the happy path.
func (m *Manager) LookupEpochBytes(id []byte, x int) (int, uint64, error) {
	if err := m.checkOwnedBytes(id); err != nil {
		return 0, 0, err
	}
	in, ok := m.GetBytes(id)
	if !ok {
		return 0, 0, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	if in.staged.Load() {
		return 0, 0, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged)", id)
	}
	phi, epoch, err := in.LookupEpoch(x)
	if err != nil {
		return 0, 0, err
	}
	m.lookups.Add(x)
	return phi, epoch, nil
}

// LookupBatchBytes resolves a whole vector of targets against one
// snapshot of the named instance, filling phis (len(xs)) and returning
// that snapshot's epoch. Allocation-free on the happy path.
func (m *Manager) LookupBatchBytes(id []byte, xs, phis []int) (uint64, error) {
	if err := m.checkOwnedBytes(id); err != nil {
		return 0, err
	}
	in, ok := m.GetBytes(id)
	if !ok {
		return 0, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	if in.staged.Load() {
		return 0, errorf(ErrUnavailable, "fleet: instance %q is arriving (migration staged)", id)
	}
	epoch, err := in.LookupBatch(xs, phis)
	if err != nil {
		return 0, err
	}
	if len(xs) > 0 {
		m.lookups.AddN(xs[0], len(xs))
	}
	return epoch, nil
}

// List returns the sorted ids of all registered instances.
func (m *Manager) List() []string {
	var ids []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id := range s.instances {
			ids = append(ids, id)
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// Stats is a fleet-wide counter snapshot. Events counts individual
// applied events; Batches counts atomic transitions (a single-event
// POST is a batch of one). Rejected is the total over RejectedBy's
// causes — rejections count per transition, not per event.
type Stats struct {
	Instances  int           `json:"instances"`
	Events     uint64        `json:"events"`
	Batches    uint64        `json:"batches"`
	Rejected   uint64        `json:"rejected"`
	RejectedBy RejectedStats `json:"rejected_by_cause"`
	ReadOnly   bool          `json:"read_only"`             // current write posture
	RejectedRO uint64        `json:"rejected_read_only"`    // mutations refused while read-only
	LeaderHint string        `json:"leader_hint,omitempty"` // advertised leader URL, if known
	Shard      *ShardStats   `json:"shard,omitempty"`       // ring state, when sharded
	Lookups    uint64        `json:"lookups"`
	Cache      CacheStats    `json:"cache"`
	Journal    JournalStats  `json:"journal"`
	Commit     commit.Stats  `json:"commit"`
}

// ShardStats reports the daemon's position in the shard ring and its
// migration traffic.
type ShardStats struct {
	Self          string `json:"self"`           // this daemon's member name
	Members       int    `json:"members"`        // daemons in the ring
	Moved         int    `json:"moved"`          // ids pinned away from the ring's answer
	WrongShard    uint64 `json:"wrong_shard"`    // requests redirected to their owner
	MigrationsOut uint64 `json:"migrations_out"` // instances migrated away
	MigrationsIn  uint64 `json:"migrations_in"`  // instances migrated in
}

// JournalStats reports the durability layer: the append-side counters
// of the attached writer plus the result of the boot-time recovery (if
// one ran). LastEpoch is the epoch of the most recently journaled
// transition, fleet-wide.
type JournalStats struct {
	Enabled      bool          `json:"enabled"`
	Records      uint64        `json:"records"`
	Bytes        uint64        `json:"bytes"`
	Syncs        uint64        `json:"syncs"`
	LastEpoch    uint64        `json:"last_epoch"`
	AppendFailed uint64        `json:"append_failed"`
	Recovery     *RecoverStats `json:"recovery,omitempty"`
}

// Stats returns a snapshot of the manager's counters and its cache.
func (m *Manager) Stats() Stats {
	n := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		n += len(s.instances)
		s.mu.RUnlock()
	}
	rej := RejectedStats{
		Budget:   m.rejectedBudget.Load(),
		Conflict: m.rejectedConflict.Load(),
		Invalid:  m.rejectedInvalid.Load(),
	}
	js := JournalStats{AppendFailed: m.journalFailed.Load(), Recovery: m.recovered.Load()}
	if jw := m.pipe.log.Writer(); jw != nil {
		ws := jw.Stats()
		js.Enabled = true
		js.Records = ws.Records
		js.Bytes = ws.Bytes
		js.Syncs = ws.Syncs
		js.LastEpoch = ws.LastEpoch
	}
	var ss *ShardStats
	if t := m.topo.Load(); t != nil {
		ss = &ShardStats{
			Self:          t.self,
			Members:       len(t.ring.Members()),
			Moved:         int(m.movedN.Load()),
			WrongShard:    m.rejectedShard.Load(),
			MigrationsOut: m.migrationsOut.Value(),
			MigrationsIn:  m.migrationsIn.Value(),
		}
	}
	return Stats{
		Instances:  n,
		Events:     m.events.Load(),
		Batches:    m.batches.Load(),
		Rejected:   rej.Total(),
		RejectedBy: rej,
		ReadOnly:   m.readOnly.Load(),
		RejectedRO: m.rejectedRO.Load(),
		LeaderHint: m.LeaderHint(),
		Shard:      ss,
		Lookups:    m.lookups.Load(),
		Cache:      m.cache.Stats(),
		Journal:    js,
		Commit:     m.pipe.log.Stats(),
	}
}

// Cache exposes the shared mapping cache (read-mostly; used by the
// facade and benchmarks).
func (m *Manager) Cache() *Cache { return m.cache }

// Metrics exposes the manager's service-metrics registry — the commit
// pipeline's stage histograms and compaction pauses live here, and the
// HTTP/follower layers register their request-latency and
// replication-lag families into the same registry so /metrics and
// /v1/stats see one coherent set.
func (m *Manager) Metrics() *obs.Registry { return m.obs }

// CompactStats reports one checkpoint compaction.
type CompactStats struct {
	Instances int     `json:"instances"` // checkpoint records written
	Seq       uint64  `json:"seq"`       // commit seq the checkpoint covers
	Seconds   float64 `json:"seconds"`   // wall-clock time (commits were gated)
}

// Compact bounds the journal's replay length: it captures the current
// state of every instance as one checkpoint record (the paper's
// reconfiguration state is a pure function of the fault set, so O(k)
// per instance is the whole truth), atomically swaps the journal file
// for [seq marker, checkpoints], and lets the suffix accrue after it.
// A restart — of this daemon or a freshly-joining follower — then
// replays checkpoint + suffix instead of the entire history. Commits
// are gated for the duration (a few records per instance), so the
// checkpoint is a consistent cut at one sequence number; lock-free
// lookups are unaffected. A crash mid-compaction leaves the old file
// in place: the swap is a single atomic rename.
func (m *Manager) Compact() (CompactStats, error) {
	start := time.Now()
	m.pipe.gate.Lock()
	defer m.pipe.gate.Unlock()
	// Gate held exclusively: no commit is in flight, every accepted
	// transition is flushed, and the shard maps cannot change under us.
	var cps []journal.Record
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id, in := range s.instances {
			snap := in.snap.Load()
			cps = append(cps, journal.Record{
				Op:     journal.OpCheckpoint,
				ID:     id,
				Spec:   journalSpec(in.spec),
				Epoch:  snap.Epoch(),
				Faults: snap.Faults(),
			})
		}
		s.mu.RUnlock()
	}
	sort.Slice(cps, func(i, j int) bool { return cps[i].ID < cps[j].ID })
	seq := m.pipe.log.LastSeq()
	if err := m.pipe.log.Install(seq, cps); err != nil {
		return CompactStats{}, err
	}
	m.compactions.Add(1)
	pause := time.Since(start)
	m.pauseHist.Observe(pause)
	return CompactStats{Instances: len(cps), Seq: seq, Seconds: pause.Seconds()}, nil
}

// DemoteAndReset turns a deposed leader back into an empty follower:
// read-only posture (advertising leaderHint), every instance dropped,
// and the commit log rebased to zero — the local journal is rewritten
// as an empty [seq marker] file, which is what discards the
// acked-locally-but-never-replicated suffix. The caller then resyncs
// from the promoted leader's stream from seq 0 and rebuilds
// bit-identically; the term resets with the log and is re-verified as
// the leader's history (including its fence) replays.
func (m *Manager) DemoteAndReset(leaderHint string) error {
	m.SetReadOnly(true)
	m.SetLeaderHint(leaderHint)
	m.pipe.gate.Lock()
	defer m.pipe.gate.Unlock()
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for id, in := range s.instances {
			in.writeMu.Lock()
			in.deleted = true
			in.writeMu.Unlock()
			delete(s.instances, id)
		}
		s.mu.Unlock()
	}
	// Zero the term BEFORE Install stamps the seq-base marker: the
	// rewritten journal must replay from term 0 so the leader's own
	// term-bump history (which we are about to re-commit during the
	// resync) passes the strictly-increasing chain check even after a
	// crash mid-resync.
	m.pipe.log.SetTerm(0, 0)
	return m.pipe.log.Install(0, nil)
}

// ErrSeqGap is returned by ReplicateEntry when the forwarded entry's
// sequence number is ahead of the follower's next expected one — the
// leader compacted past this follower (or lost history), and the
// follower must resynchronize from a checkpoint.
var ErrSeqGap = errors.New("fleet: replicated entry ahead of expected sequence")

// ReplicateEntry applies one forwarded commit entry on a follower, in
// order: the entry's seq must be exactly the follower's next expected
// one (an entry behind it is a reconnect duplicate, skipped silently;
// one ahead is ErrSeqGap). Each record re-commits through the
// follower's own pipeline — journaled locally for restart, verified
// bit-identically against a fresh ft.NewMapping for transitions — so a
// follower is a full replica whose own watch stream chains.
func (m *Manager) ReplicateEntry(e commit.Entry) error {
	expected := m.pipe.log.NextSeq()
	if e.Seq < expected {
		return nil // duplicate from a resumed stream
	}
	if e.Seq > expected {
		return fmt.Errorf("%w: got seq %d, expected %d", ErrSeqGap, e.Seq, expected)
	}
	switch e.Rec.Op {
	case journal.OpCreate:
		spec := Spec{Kind: Kind(e.Rec.Spec.Kind), M: e.Rec.Spec.M, H: e.Rec.Spec.H, K: e.Rec.Spec.K}
		return m.replicateCreate(e.Rec.ID, spec)
	case journal.OpDelete:
		return m.replicateDelete(e.Rec.ID)
	case journal.OpTransition:
		in, ok := m.Get(e.Rec.ID)
		if !ok {
			return errorf(ErrNotFound, "fleet: replicated transition for unknown instance %q", e.Rec.ID)
		}
		return in.replicate(e.Rec)
	case journal.OpTermBump:
		return m.replicateTermBump(e.Rec)
	case journal.OpMigrate:
		return m.replicateMigrate(e.Rec)
	default:
		return fmt.Errorf("fleet: cannot replicate %v record", e.Rec.Op)
	}
}

// replicateMigrate applies a forwarded ownership-handoff record: the
// instance arrived on the leader with the carried state, so the
// follower rebuilds it from scratch — bit-identical verification
// included — replacing any existing copy (the leader's stream is
// authoritative, as with replicateCreate duplicates).
func (m *Manager) replicateMigrate(rec journal.Record) error {
	spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
	in, err := newInstance(rec.ID, spec, m.cache, m.pipe)
	if err != nil {
		return err
	}
	if err := in.restoreCheckpoint(rec.Epoch, rec.Faults); err != nil {
		return err
	}
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(rec.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.instances[rec.ID]; ok {
		old.writeMu.Lock()
		old.deleted = true
		old.writeMu.Unlock()
	}
	if _, err := m.pipe.log.Commit(rec, func() { s.instances[rec.ID] = in }); err != nil {
		return errorf(ErrUnavailable, "fleet: commit replicated migrate %s: %v", rec.ID, err)
	}
	return nil
}

// replicateTermBump re-commits a forwarded leadership fence through the
// local pipeline. The local commit plane re-verifies the chain: a bump
// that does not move the term forward is the signature of a stale
// leader's stream and fails with ErrStaleTerm rather than landing.
func (m *Manager) replicateTermBump(rec journal.Record) error {
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	if _, err := m.pipe.log.Commit(rec, nil); err != nil {
		if errors.Is(err, commit.ErrStaleTerm) {
			return errorf(ErrStaleTerm, "fleet: replicated term bump: %v", err)
		}
		return errorf(ErrUnavailable, "fleet: commit replicated term bump: %v", err)
	}
	return nil
}

// replicateCreate mirrors Create for a forwarded record: same commit
// ordering, but a duplicate id resets the existing instance (the
// leader's stream is authoritative).
func (m *Manager) replicateCreate(id string, spec Spec) error {
	if id == "" {
		return fmt.Errorf("fleet: empty instance id")
	}
	in, err := newInstance(id, spec, m.cache, m.pipe)
	if err != nil {
		return err
	}
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := journal.Record{Op: journal.OpCreate, ID: id, Spec: journalSpec(spec)}
	if _, err := m.pipe.log.Commit(rec, func() { s.instances[id] = in }); err != nil {
		return errorf(ErrUnavailable, "fleet: commit replicated create %s: %v", id, err)
	}
	return nil
}

// replicateDelete mirrors Delete for a forwarded record (a missing id
// is tolerated: the commit keeps the streams aligned either way).
func (m *Manager) replicateDelete(id string) error {
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if in, ok := s.instances[id]; ok {
		in.writeMu.Lock()
		in.deleted = true
		in.writeMu.Unlock()
	}
	rec := journal.Record{Op: journal.OpDelete, ID: id}
	if _, err := m.pipe.log.Commit(rec, func() { delete(s.instances, id) }); err != nil {
		return errorf(ErrUnavailable, "fleet: commit replicated delete %s: %v", id, err)
	}
	return nil
}

// ResetFromCheckpoint wipes the follower's fleet and installs the
// forwarded checkpoint: every instance in cps is rebuilt (with the
// bit-identical mapping verification) and the local commit log is
// rebased to seq via Install, truncating the local journal to
// [seq marker, checkpoint] — exactly what the leader's compacted file
// looks like. Instances absent from cps are dropped: the checkpoint is
// the complete leader state. term is the leader's term in force at the
// checkpoint; the local term chain is rebased to it (a deposed leader
// resynchronizing adopts the promoted leader's higher term here, which
// is what makes its own discarded suffix unreplayable).
func (m *Manager) ResetFromCheckpoint(seq, term uint64, cps []journal.Record) error {
	m.pipe.gate.Lock()
	defer m.pipe.gate.Unlock()
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for id, in := range s.instances {
			in.writeMu.Lock()
			in.deleted = true
			in.writeMu.Unlock()
			delete(s.instances, id)
		}
		s.mu.Unlock()
	}
	for _, rec := range cps {
		if rec.Op != journal.OpCheckpoint {
			return fmt.Errorf("fleet: reset with a %v record in the checkpoint", rec.Op)
		}
		spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
		in, err := m.createRaw(rec.ID, spec)
		if err != nil {
			return fmt.Errorf("fleet: reset checkpoint %s: %w", rec.ID, err)
		}
		if err := in.restoreCheckpoint(rec.Epoch, rec.Faults); err != nil {
			m.deleteRaw(rec.ID)
			return err
		}
	}
	// Adopt the leader's term BEFORE Install stamps the seq-base
	// marker, so the truncated journal replays with the checkpoint's
	// term in force — a restart right after the resync must not come
	// back up believing the old term.
	m.pipe.log.SetTerm(term, 0)
	return m.pipe.log.Install(seq, cps)
}
