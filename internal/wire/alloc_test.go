package wire

import (
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

// TestWireLookupServerAllocs guards the hot path's allocation budget
// with observability enabled: a steady-state Lookup must cost the
// server at most 2 allocs/op end to end through handle (decode,
// manager lookup, metrics, response encode), and the manager's
// bytes-keyed lookup itself must be allocation-free — the properties
// the ~10x-over-JSON throughput claim rests on.
func TestWireLookupServerAllocs(t *testing.T) {
	mgr := fleet.NewManager(fleet.Options{})
	spec := fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}
	if _, err := mgr.Create("prod", spec); err != nil {
		t.Fatal(err)
	}

	id := []byte("prod")
	allocs := testing.AllocsPerRun(1000, func() {
		if _, _, err := mgr.LookupEpochBytes(id, 3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Manager.LookupEpochBytes: %.1f allocs/op, want 0", allocs)
	}

	xs := []int{0, 1, 2, 3}
	phis := make([]int, len(xs))
	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := mgr.LookupBatchBytes(id, xs, phis); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Manager.LookupBatchBytes: %.1f allocs/op, want 0", allocs)
	}

	// The full server handle path, metrics registry attached, over a
	// pre-framed request — exactly what serveConn does per frame minus
	// the socket I/O.
	srv := NewServer(mgr, ServerOptions{Metrics: obs.New()})
	c := &srvConn{s: srv}
	payload, err := AppendRequest(nil, Request{Type: MsgLookup, Seq: 1, ID: "prod", X: 3})
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		out, ok := c.handle(payload, c.out[:0])
		if !ok {
			t.Fatal("handle rejected a valid lookup")
		}
		c.out = out
	})
	if allocs > 2 {
		t.Errorf("srvConn.handle(Lookup): %.1f allocs/op, want <= 2", allocs)
	}

	bpayload, err := AppendRequest(nil, Request{Type: MsgLookupBatch, Seq: 2, ID: "prod", Xs: xs})
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		out, ok := c.handle(bpayload, c.out[:0])
		if !ok {
			t.Fatal("handle rejected a valid lookup batch")
		}
		c.out = out
	})
	if allocs > 2 {
		t.Errorf("srvConn.handle(LookupBatch): %.1f allocs/op, want <= 2", allocs)
	}
}
