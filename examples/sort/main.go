// Sort runs Batcher's bitonic sort — the flagship algorithm of the
// Ascend/Descend class the paper's networks were designed for — on a
// fault-tolerant shuffle-exchange machine that has already lost three
// processors.
//
// The sort executes exactly the same schedule, at exactly the same
// cycle count, as on a fault-free machine: the reconfiguration map has
// dilation 1, so the algorithm does not know the machine was ever
// damaged.
//
// Run with: go run ./examples/sort
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"ftnet/internal/ascend"
	"ftnet/internal/ft"
	"ftnet/internal/shuffle"
)

func main() {
	const h = 6 // 64 logical processors
	const k = 3 // tolerate 3 faults
	n := 1 << h

	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(rng.Intn(1000))
	}
	fmt.Printf("input (first 16): %v ...\n", vals[:16])

	// Reference: the healthy machine.
	se := shuffle.MustNew(shuffle.Params{H: h})
	healthy, err := ascend.RunSchedule(h, ascend.NewHealthy(se), vals, ascend.BitonicSortSteps(h))
	if err != nil {
		log.Fatal(err)
	}

	// The fault-tolerant machine: B^3_{2,6} hosting SE_6, with host
	// nodes 7, 23 and 55 dead.
	p := ft.SEParams{H: h, K: k}
	host, psi, err := ft.NewSEViaDB(p)
	if err != nil {
		log.Fatal(err)
	}
	faults := []int{7, 23, 55}
	loc, err := ft.SEMapViaDB(p, psi, faults)
	if err != nil {
		log.Fatal(err)
	}
	dead := make([]bool, p.NHost())
	for _, f := range faults {
		dead[f] = true
	}
	res, err := ascend.RunSchedule(h, &ascend.Host{G: host, Loc: loc, Dead: dead},
		vals, ascend.BitonicSortSteps(h))
	if err != nil {
		log.Fatal(err)
	}

	if !sort.SliceIsSorted(res.Values, func(i, j int) bool { return res.Values[i] < res.Values[j] }) {
		log.Fatal("output not sorted")
	}
	fmt.Printf("sorted (first 16): %v ...\n", res.Values[:16])
	fmt.Printf("\nhealthy machine:       %d cycles\n", healthy.Cycles)
	fmt.Printf("machine with 3 faults: %d cycles (identical — dilation-1 reconfiguration)\n", res.Cycles)
	fmt.Printf("spares used: %d of %d host nodes\n", k, p.NHost())
}
