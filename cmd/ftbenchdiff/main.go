// Command ftbenchdiff compares two benchmark artifacts and fails on
// regressions, so CI can hold every run against a committed baseline.
// It understands two artifact shapes: the BENCH_fleet.json micro-bench
// files written by cmd/ftbenchjson (ns/op + allocs/op per benchmark),
// and the BENCH_service.json SLO files written by ftload -obs-json
// (latency-valued entries with an explicit unit, e.g. a request p99 in
// nanoseconds).
//
// Usage:
//
//	go run ./cmd/ftbenchdiff -old .github/bench/BENCH_fleet.baseline.json -new BENCH_fleet.json
//	go run ./cmd/ftbenchdiff -old .github/bench/BENCH_service.baseline.json -new BENCH_service.json \
//	    -families request_p99,fsync_p99 -threshold 300 -floor 2ms
//
// Benchmarks are matched by full name. For every benchmark whose
// family matches -families (comma-separated substrings; default the
// hot-path "Apply,Lookup"), the new value (ns/op, or Value for
// unit-carrying entries) must not exceed the old by more than
// -threshold percent, and allocs/op must not grow by more than one
// object. -floor skips the percentage check when both sides are below
// an absolute duration — sub-millisecond service quantiles are mostly
// scheduler noise, and a 3x regression from 50µs to 150µs is not the
// signal the SLO gate exists for. Benchmarks present on only one side
// are reported but not fatal (the suite is allowed to grow; a service
// family like compaction_pause_max only exists when a compaction ran).
// Entries whose unit ends in "/s" (e.g. lookups_per_sec from the RPC
// plane) are higher-is-better: the gate fires when the new rate falls
// short of the baseline by more than -threshold percent, improvements
// never fail, and -floor (a duration) does not apply to them.
// Time thresholds are inherently machine-sensitive: refresh the
// committed baseline when the benchmark suite or the CI hardware
// changes, and lean on the alloc check — which is machine-independent
// — as the hard line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"
)

// Benchmark mirrors cmd/ftbenchjson's artifact entry (decoded from
// JSON; the two commands stay decoupled) plus the latency-valued
// fields of loadgen's ServiceBenchmark: when Unit is non-empty, Value
// (in Unit, always ns today) is the compared quantity instead of
// ns/op, and the alloc check does not apply.
type Benchmark struct {
	Name        string  `json:"name"`
	Family      string  `json:"family"`
	N           int     `json:"n,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Value       float64 `json:"value,omitempty"`
	Unit        string  `json:"unit,omitempty"`
}

// metric returns the compared quantity: Value for unit-carrying
// (service SLO) entries, ns/op for micro-bench entries.
func (b Benchmark) metric() float64 {
	if b.Unit != "" {
		return b.Value
	}
	return b.NsPerOp
}

// Artifact is the decoded benchmark file.
type Artifact struct {
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	oldPath := flag.String("old", "", "baseline artifact (required)")
	newPath := flag.String("new", "", "candidate artifact (required)")
	threshold := flag.Float64("threshold", 25, "max regression in percent for guarded families")
	families := flag.String("families", "Apply,Lookup", "comma-separated family substrings the threshold guards")
	floor := flag.Duration("floor", 0, "skip the percentage check when both old and new values are below this duration (absorbs scheduler noise in service latency artifacts)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "ftbenchdiff: both -old and -new are required")
		os.Exit(2)
	}
	oldArt, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newArt, err := load(*newPath)
	if err != nil {
		fatal(err)
	}
	report, failures := diff(oldArt, newArt, *threshold, *floor, splitFamilies(*families))
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "ftbenchdiff: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Println("ftbenchdiff: no guarded regressions")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ftbenchdiff: %v\n", err)
	os.Exit(2)
}

func load(path string) (Artifact, error) {
	var art Artifact
	data, err := os.ReadFile(path)
	if err != nil {
		return art, err
	}
	if err := json.Unmarshal(data, &art); err != nil {
		return art, fmt.Errorf("%s: %w", path, err)
	}
	if len(art.Benchmarks) == 0 {
		return art, fmt.Errorf("%s: no benchmarks", path)
	}
	return art, nil
}

func splitFamilies(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func guarded(family string, families []string) bool {
	for _, f := range families {
		if strings.Contains(family, f) {
			return true
		}
	}
	return false
}

// diff renders the comparison table and collects guarded regressions.
func diff(oldArt, newArt Artifact, threshold float64, floor time.Duration, families []string) (string, []string) {
	oldBy := make(map[string]Benchmark, len(oldArt.Benchmarks))
	for _, b := range oldArt.Benchmarks {
		oldBy[b.Name] = b
	}
	var sb strings.Builder
	var failures []string
	fmt.Fprintf(&sb, "%-36s %14s %14s %9s %9s\n", "benchmark", "old ns", "new ns", "delta", "allocs")
	seen := make(map[string]bool, len(newArt.Benchmarks))
	for _, nb := range newArt.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(&sb, "%-36s %14s %14.1f %9s %9.1f  (new)\n", nb.Name, "-", nb.metric(), "-", nb.AllocsPerOp)
			continue
		}
		oldV, newV := ob.metric(), nb.metric()
		delta := 0.0
		if oldV > 0 {
			delta = (newV - oldV) / oldV * 100
		}
		// Rate-valued entries (unit "ops/s" etc.) are higher-is-better:
		// the regression is a throughput DROP, measured as how far new
		// falls short of old. Everything else is a latency/duration where
		// growth is the regression.
		higherBetter := strings.HasSuffix(nb.Unit, "/s")
		regress := delta
		if higherBetter && newV > 0 {
			regress = (oldV - newV) / newV * 100
		}
		mark := ""
		if guarded(nb.Family, families) {
			// A zero baseline has no meaningful percentage; the duration
			// floor only applies to duration-valued entries — below it both
			// sides are scheduler noise, not a latency regression.
			compare := oldV > 0 && !(floor > 0 && !higherBetter && oldV < float64(floor) && newV < float64(floor))
			if higherBetter && newV == 0 && oldV > 0 {
				regress = threshold + 1 // throughput collapsed to zero
			}
			if compare && regress > threshold {
				mark = "  REGRESSION"
				unit := nb.Unit
				if unit == "" {
					unit = "ns/op"
				}
				failures = append(failures, fmt.Sprintf("%s: %s %.1f -> %.1f (%+.1f%% > %.0f%%)",
					nb.Name, unit, oldV, newV, delta, threshold))
			}
			if nb.Unit == "" && nb.AllocsPerOp > ob.AllocsPerOp+1 {
				mark = "  REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: allocs/op %.1f -> %.1f",
					nb.Name, ob.AllocsPerOp, nb.AllocsPerOp))
			}
		}
		fmt.Fprintf(&sb, "%-36s %14.1f %14.1f %+8.1f%% %9.1f%s\n",
			nb.Name, oldV, newV, delta, nb.AllocsPerOp, mark)
	}
	for _, ob := range oldArt.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(&sb, "%-36s %14.1f %14s %9s %9s  (gone)\n", ob.Name, ob.metric(), "-", "-", "-")
		}
	}
	return sb.String(), failures
}
