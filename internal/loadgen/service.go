package loadgen

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/obs"
)

// This file is the CI-facing half of the observability layer: after a
// run, the daemon's /v1/stats obs section (request-latency, commit
// stage, replication-lag and compaction-pause histograms) is scraped
// and distilled into a BENCH_service.json artifact that ftbenchdiff
// gates against a committed baseline, the same way the Apply/Lookup
// micro-bench artifact is gated.

// ServiceBenchmark is one latency-valued entry of the service
// artifact. Value is in Unit (always "ns" here) — ftbenchdiff compares
// Value directly when Unit is set, instead of the ns_per_op column of
// the micro-bench artifacts.
type ServiceBenchmark struct {
	Name   string  `json:"name"`
	Family string  `json:"family"`
	Value  float64 `json:"value"`
	Unit   string  `json:"unit"`
}

// ServiceArtifact is the BENCH_service.json schema.
type ServiceArtifact struct {
	Kind       string             `json:"kind"` // "service"
	Scenario   string             `json:"scenario"`
	Benchmarks []ServiceBenchmark `json:"benchmarks"`
}

// FetchObs scrapes addr's /v1/stats and returns its obs section (nil
// when the daemon predates it).
func FetchObs(addr string) (*obs.Export, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s/v1/stats: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s/v1/stats: status %d", addr, resp.StatusCode)
	}
	var st fleet.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("loadgen: scrape %s/v1/stats: %v", addr, err)
	}
	return st.Obs, nil
}

// BuildServiceArtifact distills one run — the client-side Result plus
// the leader's (and optionally a follower's) obs exports — into the
// families the SLO gate watches:
//
//	request_p99              per-route request latency p99 (leader)
//	fsync_p99                commit durability-wait p99 (leader)
//	replication_lag_p99      applied-entry age p99 (follower)
//	compaction_pause_max     worst commits-gated pause (leader)
//	lookup_rpc_p99           client-observed RPC lookup op p99 (RPC runs)
//	rpc_op_p99               server-side RPC handling p99 by op (RPC runs)
//	lookups_per_sec          resolved lookups per second (RPC runs; ops/s,
//	                         higher is better — ftbenchdiff flags drops)
//
// Families with no samples are omitted rather than emitted as zero, so
// a baseline diff never treats "didn't happen" as "infinitely fast".
// res may be nil (a scrape-only artifact).
func BuildServiceArtifact(scenario string, res *Result, leader, follower *obs.Export) ServiceArtifact {
	art := ServiceArtifact{Kind: "service", Scenario: scenario}
	add := func(name, family string, v float64, unit string) {
		art.Benchmarks = append(art.Benchmarks, ServiceBenchmark{
			Name: name, Family: family, Value: v, Unit: unit,
		})
	}
	if leader != nil {
		for _, h := range leader.Histograms {
			if h.Name != "ftnet_http_request_seconds" || h.Count == 0 {
				continue
			}
			route := strings.TrimPrefix(h.Label, "route=")
			add("request_p99/"+route, "request_p99", h.P99NS, "ns")
		}
		for _, h := range leader.Histograms {
			if h.Name != "ftnet_rpc_op_seconds" || h.Count == 0 {
				continue
			}
			op := strings.TrimPrefix(h.Label, "op=")
			add("rpc_op_p99/"+op, "rpc_op_p99", h.P99NS, "ns")
		}
		if h, ok := leader.Find("ftnet_commit_fsync_wait_seconds", ""); ok && h.Count > 0 {
			add("commit_fsync_wait_p99", "fsync_p99", h.P99NS, "ns")
		}
		if h, ok := leader.Find("ftnet_compaction_pause_seconds", ""); ok && h.Count > 0 {
			add("compaction_pause_max", "compaction_pause_max", h.MaxNS, "ns")
		}
	}
	if follower != nil {
		if h, ok := follower.Find("ftnet_replication_entry_age_seconds", ""); ok && h.Count > 0 {
			add("replication_entry_age_p99", "replication_lag_p99", h.P99NS, "ns")
		}
	}
	if res != nil && res.RPC {
		if len(res.LookupLatencies) > 0 {
			add("lookup_rpc_p99", "lookup_rpc_p99", float64(res.LookupPercentile(99)), "ns")
		}
		if res.Lookups > 0 {
			add("lookups_per_sec", "lookups_per_sec", res.LookupThroughput(), "ops/s")
		}
	}
	return art
}

// AppendFailover folds a partition-torture run's client-measured
// windows into a service artifact, as two more gateable families:
//
//	failover_downtime    leader kill to the promoted replica accepting
//	                     writes — the unavailability window
//	divergence_window    partition to kill: how long the old leader
//	                     acknowledged writes no replica had
func AppendFailover(art *ServiceArtifact, res FailoverResult) {
	art.Benchmarks = append(art.Benchmarks,
		ServiceBenchmark{Name: "failover_downtime", Family: "failover_downtime",
			Value: float64(res.FailoverDowntime), Unit: "ns"},
		ServiceBenchmark{Name: "divergence_window", Family: "divergence_window",
			Value: float64(res.DivergenceWindow), Unit: "ns"},
	)
}

// AppendCluster folds a scale-out run into a service artifact, as the
// two families the shard SLO gate watches:
//
//	rebalance_pause          widest write-fence window of any migration
//	                         — how long a client's writes to one
//	                         instance stall during its handoff
//	cluster_lookups_per_sec  routed lookup throughput while the ring
//	                         changed underneath the storm (ops/s,
//	                         higher is better)
func AppendCluster(art *ServiceArtifact, res ClusterResult) {
	if res.PauseMax > 0 {
		art.Benchmarks = append(art.Benchmarks, ServiceBenchmark{
			Name: "rebalance_pause", Family: "rebalance_pause",
			Value: float64(res.PauseMax), Unit: "ns"})
	}
	if res.Storm.Lookups > 0 {
		art.Benchmarks = append(art.Benchmarks, ServiceBenchmark{
			Name: "cluster_lookups_per_sec", Family: "cluster_lookups_per_sec",
			Value: res.Storm.LookupThroughput(), Unit: "ops/s"})
	}
	// RPC runs went through the ftproxy front door, so the lookup
	// figures are the proxy-plane SLO families the shard CI job gates.
	if res.Storm.RPC && res.Storm.Lookups > 0 {
		art.Benchmarks = append(art.Benchmarks, ServiceBenchmark{
			Name: "proxy_lookups_per_sec", Family: "proxy_lookups_per_sec",
			Value: res.Storm.LookupThroughput(), Unit: "ops/s"})
		art.Benchmarks = append(art.Benchmarks, ServiceBenchmark{
			Name: "proxy_lookup_p99", Family: "proxy_lookup_p99",
			Value: float64(res.Storm.LookupPercentile(99)), Unit: "ns"})
	}
}
