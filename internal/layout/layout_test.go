package layout

import (
	"testing"

	"ftnet/internal/bus"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
)

func TestPointToPointLinear(t *testing.T) {
	// Path 0-1-2-3: 3 wires of length 1.
	b := graph.NewBuilder(4)
	for i := 0; i+1 < 4; i++ {
		b.AddEdge(i, i+1)
	}
	w := PointToPoint(b.Build(), false)
	if w.Wires != 3 || w.TotalLength != 3 || w.MaxLength != 1 {
		t.Errorf("wiring = %+v", w)
	}
}

func TestPointToPointRingPlacement(t *testing.T) {
	// Cycle 0-1-2-3-0 on a ring: wrap edge (0,3) has cyclic length 1.
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, (i+1)%4)
	}
	g := b.Build()
	lin := PointToPoint(g, false)
	ring := PointToPoint(g, true)
	if lin.MaxLength != 3 {
		t.Errorf("linear max = %d, want 3", lin.MaxLength)
	}
	if ring.MaxLength != 1 || ring.TotalLength != 4 {
		t.Errorf("ring wiring = %+v", ring)
	}
}

func TestBusSpanLinear(t *testing.T) {
	if got := busSpan(2, []int{5, 6, 7}, 10, false); got != 5 {
		t.Errorf("span = %d, want 5 (2..7)", got)
	}
	if got := busSpan(0, []int{0}, 10, false); got != 0 {
		t.Errorf("degenerate span = %d", got)
	}
}

func TestBusSpanCyclic(t *testing.T) {
	// Owner 9, members {0,1}: on a 10-ring the covering arc 9-0-1 has
	// length 2.
	if got := busSpan(9, []int{0, 1}, 10, true); got != 2 {
		t.Errorf("cyclic span = %d, want 2", got)
	}
	// Spread points: {0, 5} on a 10-ring: arc length 5.
	if got := busSpan(0, []int{5}, 10, true); got != 5 {
		t.Errorf("cyclic span = %d, want 5", got)
	}
}

func TestBusImplementationHasFewerWires(t *testing.T) {
	// The headline: one bus per node versus ~(2k+2) wires per node.
	for _, p := range []ft.Params{
		{M: 2, H: 4, K: 1}, {M: 2, H: 5, K: 2}, {M: 2, H: 6, K: 4},
	} {
		a := bus.MustNew(p)
		g := a.ConnectivityGraph()
		wp := PointToPoint(g, true)
		wb := Buses(a, true)
		if wb.Wires >= wp.Wires {
			t.Errorf("%v: buses %d wires >= p2p %d", p, wb.Wires, wp.Wires)
		}
		if wb.Wires != p.NHost() {
			t.Errorf("%v: %d buses, want one per node", p, wb.Wires)
		}
		// Each bus spans at least its block: max length grows with k but
		// stays O(n) sane.
		if wb.MaxLength <= 0 || wb.MaxLength >= p.NHost() {
			t.Errorf("%v: bus max length %d", p, wb.MaxLength)
		}
	}
}

func TestBusesConsistency(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 1}
	a := bus.MustNew(p)
	w := Buses(a, false)
	if w.Wires != 9 {
		t.Errorf("wires = %d", w.Wires)
	}
	if w.TotalLength <= 0 || w.MaxLength <= 0 {
		t.Errorf("wiring = %+v", w)
	}
	if w.String() == "" {
		t.Error("empty String")
	}
}
