package debruijn

import (
	"fmt"

	"ftnet/internal/num"
)

// The de Bruijn graph is naturally a DIRECTED graph (x -> xm+r mod m^h);
// the paper works with its undirected shadow. This file implements the
// directed structure, which carries the two classical facts the
// generators are cross-checked against:
//
//   - B_{m,h+1} is the line digraph of B_{m,h};
//   - B_{m,h} is Eulerian, and an Euler circuit of B_{m,h} spells a
//     de Bruijn sequence of order h+1.

// Digraph is a compact directed multigraph with arcs ordered by source;
// de Bruijn digraphs have exactly m out-arcs per node (including
// self-loops, which ARE meaningful here).
type Digraph struct {
	n   int
	out [][]int
}

// NewDirected builds the directed de Bruijn graph: arc x -> X(x,m,r,m^h)
// for every digit r, INCLUDING self-loops (0 -> 0 and m^h-1 -> m^h-1).
func NewDirected(p Params) (*Digraph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	d := &Digraph{n: n, out: make([][]int, n)}
	for x := 0; x < n; x++ {
		d.out[x] = make([]int, p.M)
		for r := 0; r < p.M; r++ {
			d.out[x][r] = num.X(x, p.M, r, n)
		}
	}
	return d, nil
}

// MustNewDirected is NewDirected that panics on error.
func MustNewDirected(p Params) *Digraph {
	d, err := NewDirected(p)
	if err != nil {
		panic(err)
	}
	return d
}

// N returns the node count.
func (d *Digraph) N() int { return d.n }

// Out returns the out-neighbors of x in digit order (arc r leads to
// Out(x)[r]). The slice must not be modified.
func (d *Digraph) Out(x int) []int { return d.out[x] }

// OutDegree returns the out-degree of x.
func (d *Digraph) OutDegree(x int) int { return len(d.out[x]) }

// InDegree returns the in-degree of x (counting multiplicity).
func (d *Digraph) InDegree(x int) int {
	count := 0
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			if v == x {
				count++
			}
		}
	}
	return count
}

// IsEulerian reports whether every node has equal in- and out-degree
// and the graph is connected — true for every de Bruijn digraph.
func (d *Digraph) IsEulerian() bool {
	for x := 0; x < d.n; x++ {
		if d.InDegree(x) != d.OutDegree(x) {
			return false
		}
	}
	// Connectivity via forward BFS from 0 (de Bruijn digraphs are
	// strongly connected; for the general case this is an approximation
	// adequate to our use).
	seen := make([]bool, d.n)
	seen[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.out[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}

// EulerCircuit returns an Euler circuit as the sequence of visited nodes
// (first node repeated at the end), using Hierholzer's algorithm. The
// circuit has n*m arcs.
func (d *Digraph) EulerCircuit() ([]int, error) {
	if !d.IsEulerian() {
		return nil, fmt.Errorf("debruijn: digraph is not Eulerian")
	}
	next := make([]int, d.n) // next unused arc index per node
	total := 0
	for x := 0; x < d.n; x++ {
		total += len(d.out[x])
	}
	// Hierholzer with an explicit stack.
	stack := []int{0}
	circuit := make([]int, 0, total+1)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if next[v] < len(d.out[v]) {
			stack = append(stack, d.out[v][next[v]])
			next[v]++
		} else {
			circuit = append(circuit, v)
			stack = stack[:len(stack)-1]
		}
	}
	if len(circuit) != total+1 {
		return nil, fmt.Errorf("debruijn: digraph not strongly arc-connected (circuit %d of %d arcs)",
			len(circuit)-1, total)
	}
	// Hierholzer emits the circuit reversed; reverse in place.
	for i, j := 0, len(circuit)-1; i < j; i, j = i+1, j-1 {
		circuit[i], circuit[j] = circuit[j], circuit[i]
	}
	return circuit, nil
}

// SequenceFromEuler derives a de Bruijn sequence of order h+1 from an
// Euler circuit of B_{m,h}: each arc x -> y contributes the digit
// y mod m (the digit shifted in).
func SequenceFromEuler(p Params, circuit []int) []int {
	seq := make([]int, 0, len(circuit)-1)
	for i := 0; i+1 < len(circuit); i++ {
		seq = append(seq, circuit[i+1]%p.M)
	}
	return seq
}

// IsLineDigraphStep verifies the line-digraph law on a concrete arc: the
// arcs of B_{m,h} correspond 1-1 to the nodes of B_{m,h+1} via
// arc (x -> y) |-> node x*m + (y mod m), and arc adjacency in B_{m,h}
// (head of one = tail of next) maps to arcs of B_{m,h+1}.
func IsLineDigraphStep(p Params, x, r1, r2 int) error {
	n := p.N()
	y := num.X(x, p.M, r1, n)
	z := num.X(y, p.M, r2, n)
	// Arc ids as nodes of B_{m,h+1}.
	arc1 := x*p.M + (y % p.M)
	arc2 := y*p.M + (z % p.M)
	big := Params{M: p.M, H: p.H + 1}
	want := num.X(arc1, p.M, z%p.M, big.N())
	if want != arc2 {
		return fmt.Errorf("debruijn: line digraph law fails at x=%d r1=%d r2=%d: %d != %d",
			x, r1, r2, want, arc2)
	}
	return nil
}
