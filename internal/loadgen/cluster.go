package loadgen

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
	"ftnet/internal/obs"
	sharding "ftnet/internal/shard"
	"ftnet/internal/wire"
)

// The cluster scenario is the scale-out probe: storm a sharded fleet
// of daemons through a shard-aware client while a new member joins the
// ring mid-storm and the displaced instances are checkpoint-streamed
// to it. The client routes by the same consistent-hash ring the
// daemons use, but treats the ring as a hint exactly like ftproxy
// does: a 403 carrying X-Ftnet-Owner teaches it the instance's real
// home, a 503 (the instance is staged mid-migration) is ridden out
// with backoff. No manual retry logic leaks to the workers — the
// client converges on its own, which is the acceptance contract.
//
// After the storm, verification holds the cluster to the single-daemon
// invariants across the ownership handoff: every instance lives on
// exactly its ring owner, its epoch equals the highest epoch any
// client was acknowledged (zero lost, zero double-applied
// transitions), and its full phi slice is bit-identical to a fresh
// client-side recomputation over the recovered fault set.
//
// Like restart and partition-torture it is not a Scenario preset: it
// owns the topology lifecycle (installing rings over /v1/ring and
// triggering /v1/rebalance), so the daemons are booted unsharded and
// the scenario turns them into a cluster.

// ClusterConfig drives one scale-out run. Peers names every running
// daemon; Joiner is held out of the initial ring and joined mid-storm.
type ClusterConfig struct {
	Config
	// Peers is the full membership, name -> base URL. Every daemon must
	// be up; Config.Addr is ignored (the shard client routes by ring).
	Peers map[string]string
	// Joiner is the member excluded from the initial topology and added
	// to every daemon's ring when the storm crosses JoinAfterFrac; the
	// initial members then rebalance their displaced instances onto it.
	Joiner string
	// Replicas is the ring vnode count installed on every daemon and
	// used by the client (0 selects the shard package default).
	Replicas int
	// JoinAfterFrac is the fraction of the request budget to complete
	// before the join + rebalance fires (default 0.4 — mid-storm).
	JoinAfterFrac float64
	// HealthTimeout bounds the initial health checks and the client's
	// patience with a 503-staged instance (default 15s).
	HealthTimeout time.Duration
	// ProxyRPCAddr, when non-empty, drives the storm's data plane
	// (lookups and event bursts) over the binary RPC protocol through
	// an ftproxy RPC front at this address instead of HTTP direct to
	// the daemons. The proxy owns the routing then — wrong-shard
	// redirect chasing happens inside it — while the storm client keeps
	// only the retry discipline the HTTP path has: ride out
	// staged/unavailable windows with backoff, and re-issue the rare
	// double-bounce the proxy could not chase mid-cutover. Control
	// plane (creates, ring installs, rebalances, verification) stays on
	// HTTP. Config.RPCLookupBatch and Config.RPCConns apply.
	ProxyRPCAddr string
}

// ClusterResult reports one scale-out run.
type ClusterResult struct {
	Storm         Result
	Acked         map[string]uint64 // per-instance max acknowledged epoch
	Migrated      int               // instances the rebalance moved
	RebalanceWall time.Duration     // join start to last rebalance done
	Redirects     uint64            // wrong-shard hints the client followed
	StagedWaits   uint64            // 503-staged responses ridden out
	PauseMax      time.Duration     // widest write-fence window (daemon obs)
	Verified      int               // instances that passed every check
	Exports       map[string]*obs.Export
}

// RunCluster executes the scale-out scenario: install the initial
// ring, storm through the shard client, join + rebalance mid-storm,
// verify ownership, epochs and mappings afterwards.
func RunCluster(cfg ClusterConfig) (ClusterResult, error) {
	if len(cfg.Peers) < 2 {
		return ClusterResult{}, fmt.Errorf("loadgen: cluster scenario needs at least 2 peers")
	}
	if _, ok := cfg.Peers[cfg.Joiner]; !ok {
		return ClusterResult{}, fmt.Errorf("loadgen: joiner %q is not in peers", cfg.Joiner)
	}
	initial := make(map[string]string, len(cfg.Peers)-1)
	for name, url := range cfg.Peers {
		if name != cfg.Joiner {
			initial[name] = url
		}
	}
	cfg.Scenario.Name = "cluster"
	if cfg.Scenario.Batch < 1 {
		cfg.Scenario.Batch = 4
	}
	// Role-split shape: dedicated writers storm events:batch while the
	// other workers measure routed lookup throughput — the
	// cluster_lookups_per_sec figure.
	cfg.Scenario.EventFrac = 1
	if cfg.Scenario.Writers < 1 {
		cfg.Scenario.Writers = cfg.Workers / 2
		if cfg.Scenario.Writers < 1 {
			cfg.Scenario.Writers = 1
		}
	}
	if cfg.JoinAfterFrac <= 0 || cfg.JoinAfterFrac >= 1 {
		cfg.JoinAfterFrac = 0.4
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = 15 * time.Second
	}
	if err := cfg.Config.Validate(); err != nil {
		return ClusterResult{}, err
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "load-cluster"
	}

	hc := &http.Client{Timeout: 30 * time.Second}
	for name, url := range cfg.Peers {
		if err := awaitHealthy(hc, url, cfg.HealthTimeout); err != nil {
			return ClusterResult{}, fmt.Errorf("loadgen: cluster member %s: %w", name, err)
		}
	}
	// Install the initial topology (joiner stays out: it gets its ring
	// at join time, first, so it can accept migrations the instant the
	// initial members learn the new membership).
	for name, url := range initial {
		if err := postRing(hc, url, fleet.RingRequest{Self: name, Peers: initial, Replicas: cfg.Replicas}); err != nil {
			return ClusterResult{}, err
		}
	}
	// The joiner boots as a spectator on the same ring: it owns nothing
	// yet, so anything misdirected to it (an RPC proxy whose ring
	// already names the full membership) bounces to the real owner with
	// a hint instead of 404ing.
	if err := postRing(hc, cfg.Peers[cfg.Joiner], fleet.RingRequest{
		Self: cfg.Joiner, Peers: initial, Replicas: cfg.Replicas,
	}); err != nil {
		return ClusterResult{}, err
	}

	// The storm client's ring deliberately stays on the initial
	// membership: every post-rebalance request to a moved instance must
	// converge through daemon redirects alone.
	sc := newShardClient(initial, cfg.Replicas, cfg.HealthTimeout)
	ids := cfg.InstanceIDs()
	for _, id := range ids {
		if err := sc.create(id, cfg.Spec); err != nil {
			return ClusterResult{}, err
		}
	}

	acked := make(map[string]*atomic.Uint64, len(ids))
	for _, id := range ids {
		acked[id] = new(atomic.Uint64)
	}
	var (
		ops           atomic.Int64
		joinOnce      sync.Once
		joinErr       error
		joinedAt      time.Time
		rebalanceWall time.Duration
		migrated      int
		threshold     = int64(float64(cfg.Requests) * cfg.JoinAfterFrac)
	)
	join := func() {
		joinedAt = time.Now()
		// Joiner first: its ring must name it owner before any stage
		// frame arrives.
		if joinErr = postRing(hc, cfg.Peers[cfg.Joiner], fleet.RingRequest{
			Self: cfg.Joiner, Peers: cfg.Peers, Replicas: cfg.Replicas,
		}); joinErr != nil {
			return
		}
		for name, url := range initial {
			if joinErr = postRing(hc, url, fleet.RingRequest{
				Self: name, Peers: cfg.Peers, Replicas: cfg.Replicas,
			}); joinErr != nil {
				return
			}
		}
		for name, url := range initial {
			n, err := postRebalance(hc, url)
			if err != nil {
				joinErr = fmt.Errorf("loadgen: rebalance %s: %w", name, err)
				return
			}
			migrated += n
		}
		rebalanceWall = time.Since(joinedAt)
	}

	// The RPC data plane: one pooled wire client to the proxy front,
	// shared by every worker (callers pipeline down its connections).
	var rpc *rpcStormClient
	if cfg.ProxyRPCAddr != "" {
		rc, err := wire.Dial(cfg.ProxyRPCAddr, wire.Options{Conns: cfg.RPCConns})
		if err != nil {
			return ClusterResult{}, fmt.Errorf("loadgen: dial RPC proxy: %w", err)
		}
		defer rc.Close()
		rpc = &rpcStormClient{rc: rc, hops: len(cfg.Peers), stagedGrace: cfg.HealthTimeout}
	}
	lookupBatch := cfg.RPCLookupBatch
	if lookupBatch <= 0 {
		lookupBatch = DefaultRPCLookupBatch
	}

	nTarget, nHost := TargetHostSizes(cfg.Spec)
	perWorker := make([]opStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		n := cfg.Requests / cfg.Workers
		if w < cfg.Requests%cfg.Workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			st := &perWorker[w]
			rng := rand.New(rand.NewSource(cfg.Seed + int64(w)))
			writer := w < cfg.Scenario.Writers
			var scratch rpcScratch
			for i := 0; i < n; i++ {
				id := ids[rng.Intn(len(ids))]
				switch {
				case rpc != nil && writer:
					rpc.driveBatch(id, rng, nHost, cfg.Scenario.Batch, st, acked[id])
				case rpc != nil:
					rpc.driveLookup(id, rng, nTarget, lookupBatch, &scratch, st)
				case writer:
					sc.driveBatch(id, rng, nHost, cfg.Scenario.Batch, st, acked[id])
				default:
					sc.driveLookup(id, rng.Intn(nTarget), st)
				}
				// The worker that crosses the threshold performs the
				// join + rebalance inline — the storm keeps running on
				// the other workers while instances are fenced,
				// streamed and cut over underneath it.
				if ops.Add(1) >= threshold {
					joinOnce.Do(join)
				}
			}
		}(w, n)
	}
	wg.Wait()

	res := ClusterResult{
		Acked:         make(map[string]uint64, len(ids)),
		Migrated:      migrated,
		RebalanceWall: rebalanceWall,
		Redirects:     sc.redirects.Load(),
		StagedWaits:   sc.stagedWaits.Load(),
		Exports:       make(map[string]*obs.Export, len(cfg.Peers)),
	}
	res.Storm = mergeStats(perWorker, time.Since(start))
	if rpc != nil {
		res.Storm.RPC = true
		res.Redirects += rpc.redirects.Load()
		res.StagedWaits += rpc.stagedWaits.Load()
	}
	for _, id := range ids {
		res.Acked[id] = acked[id].Load()
	}
	if joinErr != nil {
		return res, joinErr
	}
	if joinedAt.IsZero() {
		return res, fmt.Errorf("loadgen: storm finished before the join threshold (%d ops) was reached", threshold)
	}
	if res.Migrated == 0 {
		return res, fmt.Errorf("loadgen: the join displaced no instances — nothing was rebalanced")
	}

	// Scrape every member: the fence-pause histogram lives on whichever
	// daemons ran migrations.
	for name, url := range cfg.Peers {
		e, err := FetchObs(url)
		if err != nil {
			return res, err
		}
		res.Exports[name] = e
		if h, ok := e.Find("ftnet_shard_migration_pause_seconds", ""); ok && h.Count > 0 {
			if d := time.Duration(h.MaxNS); d > res.PauseMax {
				res.PauseMax = d
			}
		}
	}

	// Verify against the final ring. Epoch equality is the zero
	// lost/double-applied proof — but only when every storm response
	// was seen (a transport failure could hide an applied write).
	members := make([]string, 0, len(cfg.Peers))
	for name := range cfg.Peers {
		members = append(members, name)
	}
	finalRing := sharding.New(members, cfg.Replicas)
	strict := res.Storm.Transport == 0 && res.Storm.Errors == 0
	for _, id := range ids {
		if err := verifyClusterInstance(hc, cfg, finalRing, id, res.Acked[id], strict, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// verifyClusterInstance holds one instance to the handoff contract:
// served by exactly its ring owner, epoch equal to the acknowledged
// watermark, phi bit-identical to a client-side recomputation.
func verifyClusterInstance(hc *http.Client, cfg ClusterConfig, ring *sharding.Ring, id string, acked uint64, strict bool, res *ClusterResult) error {
	owner := ring.Owner(id)
	info, err := fetchInstance(hc, cfg.Peers[owner], id)
	if err != nil {
		return fmt.Errorf("loadgen: %s not served by ring owner %s: %w", id, owner, err)
	}
	switch {
	case info.Epoch < acked:
		return fmt.Errorf("loadgen: %s on %s at epoch %d, below acknowledged epoch %d — transition lost in the handoff",
			id, owner, info.Epoch, acked)
	case strict && info.Epoch != acked:
		return fmt.Errorf("loadgen: %s on %s at epoch %d, acknowledged watermark is %d — transition double-applied in the handoff",
			id, owner, info.Epoch, acked)
	}
	if cfg.Spec.Kind == fleet.KindDeBruijn {
		want, err := ft.NewMapping(info.NTarget, info.NHost, info.Faults)
		if err != nil {
			return fmt.Errorf("loadgen: %s recovered an invalid fault set %v: %v", id, info.Faults, err)
		}
		phi, err := fetchPhi(hc, cfg.Peers[owner], id)
		if err != nil {
			return fmt.Errorf("loadgen: %s phi on %s: %w", id, owner, err)
		}
		if len(phi) != info.NTarget {
			return fmt.Errorf("loadgen: %s phi slice has %d entries, want %d", id, len(phi), info.NTarget)
		}
		for x, got := range phi {
			if got != want.Phi(x) {
				return fmt.Errorf("loadgen: %s phi(%d) = %d on %s, recomputation says %d — mapping corrupted in the handoff",
					id, x, got, owner, want.Phi(x))
			}
		}
	}
	// Exactly one owner: every other member must refuse to serve it.
	for name, url := range cfg.Peers {
		if name == owner {
			continue
		}
		resp, err := hc.Get(url + "/v1/instances/" + id)
		if err != nil {
			return fmt.Errorf("loadgen: probe %s on %s: %v", id, name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return fmt.Errorf("loadgen: %s also served by non-owner %s — double ownership after the rebalance", id, name)
		}
	}
	res.Verified++
	return nil
}

// rpcStormClient drives the storm's data plane over the binary RPC
// protocol through an ftproxy RPC front. Routing convergence belongs
// to the proxy (it chases wrong-shard hints and re-teaches its
// override cache); the storm client keeps only the ride-out rules the
// HTTP shardClient has: StatusUnavailable (staged mid-migration, or a
// proxy that lost its backend for a beat) retries the same frame with
// backoff until the grace deadline, and a wrong-shard answer — the
// proxy's single retry also bounced, a cutover racing faster than one
// hop — is re-issued a bounded number of times, by which point the
// proxy has learned the new owner. Both retried statuses guarantee
// nothing was applied, so re-issuing ApplyBatch is safe.
type rpcStormClient struct {
	rc          *wire.Client
	hops        int // wrong-shard re-issues allowed per op
	stagedGrace time.Duration

	redirects   atomic.Uint64
	stagedWaits atomic.Uint64
}

// retry reports whether err is a ride-out case, sleeping the backoff
// itself. deadline bounds staged waits; *hops bounds redirect chases.
func (rpc *rpcStormClient) retry(err error, deadline time.Time, hops *int) bool {
	switch {
	case errors.Is(err, fleet.ErrWrongShard) && *hops > 0:
		*hops--
		rpc.redirects.Add(1)
		return true
	case errors.Is(err, fleet.ErrUnavailable) && time.Now().Before(deadline):
		rpc.stagedWaits.Add(1)
		time.Sleep(2 * time.Millisecond)
		return true
	}
	return false
}

func (rpc *rpcStormClient) driveLookup(id string, rng *rand.Rand, nTarget, batch int, scratch *rpcScratch, st *opStats) {
	scratch.size(batch)
	for i := range scratch.xs {
		scratch.xs[i] = rng.Intn(nTarget)
	}
	deadline := time.Now().Add(rpc.stagedGrace)
	hops := rpc.hops
	t0 := time.Now()
	for {
		_, err := rpc.rc.LookupBatch(id, scratch.xs, scratch.phis)
		if err == nil {
			st.lookups += batch
			st.lookupLats = append(st.lookupLats, time.Since(t0))
			return
		}
		if !rpc.retry(err, deadline, &hops) {
			countRPCFailure(err, st)
			return
		}
	}
}

func (rpc *rpcStormClient) driveBatch(id string, rng *rand.Rand, nHost, batch int, st *opStats, acked *atomic.Uint64) {
	events := makeEvents(rng, nHost, batch)
	deadline := time.Now().Add(rpc.stagedGrace)
	hops := rpc.hops
	t0 := time.Now()
	for {
		res, err := rpc.rc.ApplyBatch(id, events)
		switch {
		case err == nil:
			ackMax(acked, res.Epoch)
			st.batches++
			st.events += batch
			st.eventLats = append(st.eventLats, time.Since(t0))
			return
		case rejectedByStateMachine(err):
			st.rejected++
			st.eventLats = append(st.eventLats, time.Since(t0))
			return
		}
		if !rpc.retry(err, deadline, &hops) {
			countRPCFailure(err, st)
			return
		}
	}
}

// shardClient is the client-side routing layer: it resolves each
// instance to a daemon by consistent hash, learns exceptions from
// X-Ftnet-Owner redirect hints, and rides out 503-staged windows —
// the same convergence rules as ftproxy, embedded in the load driver.
type shardClient struct {
	hc          *http.Client
	peers       map[string]string
	ring        *sharding.Ring
	stagedGrace time.Duration

	mu       sync.RWMutex
	override map[string]string // id -> base URL learned from hints

	redirects   atomic.Uint64
	stagedWaits atomic.Uint64
}

func newShardClient(peers map[string]string, replicas int, stagedGrace time.Duration) *shardClient {
	members := make([]string, 0, len(peers))
	for name := range peers {
		members = append(members, name)
	}
	return &shardClient{
		hc:          &http.Client{Timeout: 30 * time.Second},
		peers:       peers,
		ring:        sharding.New(members, replicas),
		stagedGrace: stagedGrace,
		override:    make(map[string]string),
	}
}

// do routes one request for id: ring (or learned override) picks the
// daemon, a 403 with an owner hint re-routes, a 503 (staged
// mid-migration) retries the same target with backoff until the
// cutover commits. The returned response is terminal; the caller
// closes its body.
func (sc *shardClient) do(method, id, pathAndQuery string, body []byte) (*http.Response, error) {
	sc.mu.RLock()
	target := sc.override[id]
	sc.mu.RUnlock()
	if target == "" {
		target = sc.peers[sc.ring.Owner(id)]
	}
	deadline := time.Now().Add(sc.stagedGrace)
	hops := 0
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, target+pathAndQuery, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := sc.hc.Do(req)
		if err != nil {
			return nil, err
		}
		owner := resp.Header.Get("X-Ftnet-Owner")
		switch {
		case resp.StatusCode == http.StatusForbidden && owner != "" && owner != target && hops < len(sc.peers):
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sc.learn(id, owner)
			sc.redirects.Add(1)
			target = owner
			hops++
			continue
		case resp.StatusCode == http.StatusServiceUnavailable && time.Now().Before(deadline):
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			sc.stagedWaits.Add(1)
			time.Sleep(2 * time.Millisecond)
			continue
		}
		return resp, nil
	}
}

// learn caches (or, when the hint re-agrees with the ring, clears) an
// ownership exception.
func (sc *shardClient) learn(id, url string) {
	sc.mu.Lock()
	if sc.peers[sc.ring.Owner(id)] == url {
		delete(sc.override, id)
	} else {
		sc.override[id] = url
	}
	sc.mu.Unlock()
}

// create makes one instance on its ring owner (tolerating leftovers
// from a prior run, like createFleet).
func (sc *shardClient) create(id string, spec fleet.Spec) error {
	body, _ := json.Marshal(fleet.CreateRequest{ID: id, Spec: spec})
	resp, err := sc.do(http.MethodPost, id, "/v1/instances", body)
	if err != nil {
		return fmt.Errorf("loadgen: create %s: %v", id, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return fmt.Errorf("loadgen: create %s: status %d", id, resp.StatusCode)
	}
	return nil
}

// driveBatch is driveBatchAcked through the routing client: one atomic
// rack burst, with the acknowledged epoch recorded — the watermark the
// post-rebalance verification holds the new owner to.
func (sc *shardClient) driveBatch(id string, rng *rand.Rand, nHost, batch int, st *opStats, acked *atomic.Uint64) {
	events := makeEvents(rng, nHost, batch)
	body, _ := json.Marshal(fleet.BatchRequest{Events: events})
	t0 := time.Now()
	resp, err := sc.do(http.MethodPost, id, "/v1/instances/"+id+"/events:batch", body)
	if err != nil {
		st.transport++
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		var evr fleet.EventResult
		if err := json.NewDecoder(resp.Body).Decode(&evr); err != nil {
			st.errors++
			return
		}
		ackMax(acked, evr.Epoch)
		st.batches++
		st.events += batch
		st.eventLats = append(st.eventLats, time.Since(t0))
	case resp.StatusCode == http.StatusConflict || resp.StatusCode == http.StatusBadRequest:
		io.Copy(io.Discard, resp.Body)
		st.rejected++
		st.eventLats = append(st.eventLats, time.Since(t0))
	default:
		io.Copy(io.Discard, resp.Body)
		st.errors++
	}
}

func (sc *shardClient) driveLookup(id string, x int, st *opStats) {
	t0 := time.Now()
	resp, err := sc.do(http.MethodGet, id, fmt.Sprintf("/v1/instances/%s/phi?x=%d", id, x), nil)
	if err != nil {
		st.transport++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		st.errors++
		return
	}
	st.lookups++
	st.lookupLats = append(st.lookupLats, time.Since(t0))
}

func postRing(hc *http.Client, url string, req fleet.RingRequest) error {
	body, _ := json.Marshal(req)
	resp, err := hc.Post(url+"/v1/ring", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("loadgen: install ring on %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("loadgen: install ring on %s: status %d", url, resp.StatusCode)
	}
	return nil
}

// postRebalance triggers one daemon's rebalance and returns how many
// instances it migrated away.
func postRebalance(hc *http.Client, url string) (int, error) {
	resp, err := hc.Post(url+"/v1/rebalance", "application/json", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var rr fleet.RebalanceResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return rr.Count, fmt.Errorf("status %d: %s", resp.StatusCode, rr.Error)
	}
	return rr.Count, nil
}
