package fleet

import (
	"container/list"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"

	"ftnet/internal/ft"
)

// Cache memoizes reconfiguration maps keyed by the canonical (sorted)
// fault set, so a fleet of instances that keeps seeing the same fault
// patterns resolves lookups without recomputing ft.NewMapping.
//
// It is sharded: the key hash picks one of N independently-locked
// shards, each with its own LRU list, so concurrent probes for
// different fault patterns do not serialize on a single mutex — the
// contention point a global LRU becomes under high instance counts.
// Within a shard, eviction is LRU and computation is single-flight:
// concurrent requests for the same missing key block on one
// computation instead of racing their own.
type Cache struct {
	shards []cacheShard
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key  string
	done chan struct{} // closed once m/err are set
	m    *ft.Mapping
	err  error
}

// DefaultCacheSize is the total capacity used when a Manager is
// created without an explicit one. With k faults out of n+k hosts the
// keyspace is astronomical, but real fleets revisit a small working
// set of patterns (the same racks fail, the same repairs roll out).
const DefaultCacheSize = 4096

// DefaultCacheShards is the shard count used when none is given: a
// power of two comfortably above typical core counts.
const DefaultCacheShards = 16

// NewCache returns an empty sharded cache holding roughly capacity
// mappings in total (capacity <= 0 selects DefaultCacheSize), spread
// over DefaultCacheShards shards.
func NewCache(capacity int) *Cache {
	return NewCacheShards(capacity, DefaultCacheShards)
}

// NewCacheShards returns an empty cache with an explicit shard count
// (shards <= 0 selects DefaultCacheShards; 1 gives the exact
// single-LRU semantics). The capacity is split evenly across shards,
// rounding up so every shard holds at least one entry.
func NewCacheShards(capacity, shards int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	if shards <= 0 {
		shards = DefaultCacheShards
	}
	perShard := (capacity + shards - 1) / shards
	c := &Cache{shards: make([]cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap:   perShard,
			ll:    list.New(),
			items: make(map[string]*list.Element, perShard),
		}
	}
	return c
}

// cacheKey canonicalizes a mapping request; faults must already be
// sorted (Get canonicalizes before calling).
func cacheKey(nTarget, nHost int, sortedFaults []int) string {
	// 3+k small ints; preallocate roughly 8 bytes each.
	b := make([]byte, 0, 8*(3+len(sortedFaults)))
	b = strconv.AppendInt(b, int64(nTarget), 10)
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(nHost), 10)
	b = append(b, ':')
	for i, f := range sortedFaults {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(f), 10)
	}
	return string(b)
}

// shardFor hashes the canonical key to its shard.
func (c *Cache) shardFor(key string) *cacheShard {
	if len(c.shards) == 1 {
		return &c.shards[0]
	}
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the reconfiguration map for the given fault set,
// computing and caching it on a miss. An unsorted set is canonicalized
// on a copy first, so equal sets always share one cache entry; invalid
// sets (ft.NewMapping rejects them) return the error and are not
// cached.
func (c *Cache) Get(nTarget, nHost int, sortedFaults []int) (*ft.Mapping, error) {
	if !sort.IntsAreSorted(sortedFaults) {
		cp := make([]int, len(sortedFaults))
		copy(cp, sortedFaults)
		sort.Ints(cp)
		sortedFaults = cp
	}
	key := cacheKey(nTarget, nHost, sortedFaults)
	s := c.shardFor(key)

	s.mu.Lock()
	if elem, ok := s.items[key]; ok {
		s.ll.MoveToFront(elem)
		s.hits++
		e := elem.Value.(*cacheEntry)
		s.mu.Unlock()
		<-e.done // instant unless another goroutine is mid-compute
		return e.m, e.err
	}
	s.misses++
	e := &cacheEntry{key: key, done: make(chan struct{})}
	elem := s.ll.PushFront(e)
	s.items[key] = elem
	s.evictLocked()
	s.mu.Unlock()

	// Compute outside the lock; waiters block on e.done, not on s.mu.
	// NewMapping copies its argument, so the caller keeps ownership of
	// sortedFaults.
	e.m, e.err = ft.NewMapping(nTarget, nHost, sortedFaults)
	close(e.done)

	if e.err != nil {
		// Do not let invalid fault sets occupy cache slots.
		s.mu.Lock()
		if cur, ok := s.items[key]; ok && cur.Value.(*cacheEntry) == e {
			s.ll.Remove(cur)
			delete(s.items, key)
		}
		s.mu.Unlock()
	}
	return e.m, e.err
}

// evictLocked drops least-recently-used completed entries until the
// shard fits its capacity. In-flight entries are skipped so a waiter
// never sees its entry vanish mid-compute.
func (s *cacheShard) evictLocked() {
	for elem := s.ll.Back(); elem != nil && s.ll.Len() > s.cap; {
		prev := elem.Prev()
		e := elem.Value.(*cacheEntry)
		select {
		case <-e.done:
			s.ll.Remove(elem)
			delete(s.items, e.key)
			s.evictions++
		default: // still computing; leave it
		}
		elem = prev
	}
}

// CacheShardStats is one shard's slice of the cache counters.
type CacheShardStats struct {
	Size      int    `json:"size"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// CacheStats is a point-in-time snapshot of cache effectiveness:
// fleet-wide aggregates plus the per-shard breakdown (a hot shard is
// the signature of a skewed fault-pattern working set).
type CacheStats struct {
	Size      int               `json:"size"`
	Capacity  int               `json:"capacity"`
	Hits      uint64            `json:"hits"`
	Misses    uint64            `json:"misses"`
	Evictions uint64            `json:"evictions"`
	Shards    []CacheShardStats `json:"shards,omitempty"`
}

// Stats returns a snapshot of the cache counters, aggregated and per
// shard. Shards are locked one at a time, so the aggregate is only
// approximately instantaneous under concurrent load.
func (c *Cache) Stats() CacheStats {
	st := CacheStats{Shards: make([]CacheShardStats, len(c.shards))}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		sh := CacheShardStats{
			Size:      s.ll.Len(),
			Hits:      s.hits,
			Misses:    s.misses,
			Evictions: s.evictions,
		}
		st.Capacity += s.cap
		s.mu.Unlock()
		st.Shards[i] = sh
		st.Size += sh.Size
		st.Hits += sh.Hits
		st.Misses += sh.Misses
		st.Evictions += sh.Evictions
	}
	return st
}
