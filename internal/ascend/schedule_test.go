package ascend

import (
	"math/rand"
	"sort"
	"testing"

	"ftnet/internal/ft"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

func TestRunScheduleSumMatchesRunSE(t *testing.T) {
	for h := 2; h <= 6; h++ {
		n := 1 << h
		se := shuffle.MustNew(shuffle.Params{H: h})
		res, err := RunSchedule(h, NewHealthy(se), seq(n), SumSteps(h, Sum))
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		want := int64(n) * int64(n+1) / 2
		for x, v := range res.Values {
			if v != want {
				t.Fatalf("h=%d node %d: %d != %d", h, x, v, want)
			}
		}
	}
}

func TestBitonicSortOnHealthySE(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for h := 2; h <= 7; h++ {
		n := 1 << h
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(1000))
		}
		se := shuffle.MustNew(shuffle.Params{H: h})
		res, err := RunSchedule(h, NewHealthy(se), vals, BitonicSortSteps(h))
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if !sort.SliceIsSorted(res.Values, func(i, j int) bool { return res.Values[i] < res.Values[j] }) {
			t.Fatalf("h=%d: not sorted: %v", h, res.Values)
		}
		// Same multiset.
		a := append([]int64(nil), vals...)
		b := append([]int64(nil), res.Values...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("h=%d: values not preserved", h)
			}
		}
	}
}

func TestBitonicCostIsLogSquared(t *testing.T) {
	// h(h+1)/2 compare steps; shuffles bounded by steps + 2h wrap-arounds
	// per stage. Total cycles must be O(h^2) — specifically under 3h^2.
	for h := 3; h <= 8; h++ {
		n := 1 << h
		se := shuffle.MustNew(shuffle.Params{H: h})
		res, err := RunSchedule(h, NewHealthy(se), seq(n), BitonicSortSteps(h))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles > 3*h*h {
			t.Errorf("h=%d: bitonic cycles %d > 3h^2 = %d", h, res.Cycles, 3*h*h)
		}
	}
}

func TestBitonicSortOnReconfiguredHost(t *testing.T) {
	// The paper's payoff at the algorithm level: full bitonic sort runs
	// unchanged on the FT host after k faults.
	rng := rand.New(rand.NewSource(12))
	for _, k := range []int{1, 3} {
		h := 5
		n := 1 << h
		p := ft.SEParams{H: h, K: k}
		host, psi, err := ft.NewSEViaDB(p)
		if err != nil {
			t.Fatal(err)
		}
		faults := num.RandomSubset(rng, p.NHost(), k)
		loc, err := ft.SEMapViaDB(p, psi, faults)
		if err != nil {
			t.Fatal(err)
		}
		dead := make([]bool, p.NHost())
		for _, f := range faults {
			dead[f] = true
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(500))
		}
		res, err := RunSchedule(h, &Host{G: host, Loc: loc, Dead: dead}, vals, BitonicSortSteps(h))
		if err != nil {
			t.Fatalf("k=%d faults=%v: %v", k, faults, err)
		}
		if !sort.SliceIsSorted(res.Values, func(i, j int) bool { return res.Values[i] < res.Values[j] }) {
			t.Fatalf("k=%d: not sorted", k)
		}
		// Cycle count must match the healthy machine exactly (dilation 1).
		se := shuffle.MustNew(shuffle.Params{H: h})
		ref, err := RunSchedule(h, NewHealthy(se), vals, BitonicSortSteps(h))
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles != ref.Cycles {
			t.Errorf("k=%d: reconfigured cycles %d != healthy %d", k, res.Cycles, ref.Cycles)
		}
	}
}

func TestBitonicFailsOnUnprotectedFaultedMachine(t *testing.T) {
	h := 4
	se := shuffle.MustNew(shuffle.Params{H: h})
	hst := NewHealthy(se)
	hst.Dead[9] = true
	if _, err := RunSchedule(h, hst, seq(1<<h), BitonicSortSteps(h)); err == nil {
		t.Fatal("faulted unprotected machine completed bitonic sort")
	}
}

func TestRunScheduleDescendOrderIsCheap(t *testing.T) {
	// Descend-order schedules (dims h-1..0) should pay ~1 shuffle per
	// step after initial alignment.
	h := 6
	se := shuffle.MustNew(shuffle.Params{H: h})
	var steps []Step
	for d := h - 1; d >= 0; d-- {
		steps = append(steps, Step{Dim: d, Op: func(_, _ int, a, b int64) (int64, int64) { return a, b }})
	}
	res, err := RunSchedule(h, NewHealthy(se), seq(1<<h), steps)
	if err != nil {
		t.Fatal(err)
	}
	// Alignment to dim h-1 costs 1 shuffle, then 1 shuffle + 1 exchange
	// per subsequent step, plus the rotate-home: total well under 4h.
	if res.Cycles > 4*h {
		t.Errorf("descend schedule cycles %d > 4h = %d", res.Cycles, 4*h)
	}
}

func TestRunScheduleValidation(t *testing.T) {
	se := shuffle.MustNew(shuffle.Params{H: 3})
	hst := NewHealthy(se)
	if _, err := RunSchedule(0, hst, nil, nil); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := RunSchedule(3, hst, seq(4), nil); err == nil {
		t.Error("wrong value count accepted")
	}
	if _, err := RunSchedule(3, hst, seq(8), []Step{{Dim: 3, Op: nil}}); err == nil {
		t.Error("bad dimension accepted")
	}
	if _, err := RunSchedule(3, hst, seq(8), []Step{{Dim: 0, Op: nil}}); err == nil {
		t.Error("nil op accepted")
	}
}

func TestRunScheduleEmptyIsIdentity(t *testing.T) {
	se := shuffle.MustNew(shuffle.Params{H: 3})
	res, err := RunSchedule(3, NewHealthy(se), seq(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if v != int64(i+1) {
			t.Fatalf("identity violated: %v", res.Values)
		}
	}
	if res.Cycles != 0 {
		t.Errorf("empty schedule cycles = %d", res.Cycles)
	}
}
