package route

import (
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
)

func TestAvoidingPathBasic(t *testing.T) {
	// C6 with node 1 faulty: 0 -> 2 must go the long way round.
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
	}
	g := b.Build()
	faulty := make([]bool, 6)
	faulty[1] = true
	p, err := AvoidingPath(g, 0, 2, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 5 { // 0-5-4-3-2
		t.Fatalf("path = %v", p)
	}
	for _, v := range p {
		if faulty[v] {
			t.Fatalf("path %v uses faulty node", p)
		}
	}
	if err := Validate(p, g); err != nil {
		t.Fatal(err)
	}
}

func TestAvoidingPathDisconnected(t *testing.T) {
	// Path graph with interior fault: no route.
	b := graph.NewBuilder(5)
	for i := 0; i+1 < 5; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	faulty := make([]bool, 5)
	faulty[2] = true
	p, err := AvoidingPath(g, 0, 4, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("expected nil path, got %v", p)
	}
}

func TestAvoidingPathErrors(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	faulty := make([]bool, 3)
	faulty[0] = true
	if _, err := AvoidingPath(g, 0, 1, faulty); err == nil {
		t.Error("faulty endpoint accepted")
	}
	if _, err := AvoidingPath(g, 0, 9, make([]bool, 3)); err == nil {
		t.Error("out-of-range node accepted")
	}
	if _, err := AvoidingPath(g, 0, 1, make([]bool, 2)); err == nil {
		t.Error("short mask accepted")
	}
	p, err := AvoidingPath(g, 1, 1, make([]bool, 3))
	if err != nil || len(p) != 1 {
		t.Errorf("self path = %v, %v", p, err)
	}
}

func TestMeasureAvoidanceHealthy(t *testing.T) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 4})
	st, err := MeasureAvoidance(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Disconnected != 0 {
		t.Errorf("healthy graph disconnected pairs: %d", st.Disconnected)
	}
	if st.MaxDilation != 1 || st.AvgDilation != 1 {
		t.Errorf("healthy dilation max=%f avg=%f, want 1", st.MaxDilation, st.AvgDilation)
	}
	if st.Pairs != 16*15 {
		t.Errorf("pairs = %d", st.Pairs)
	}
}

func TestMeasureAvoidanceWithFaultDilates(t *testing.T) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 4})
	// Fault a well-connected interior node.
	st, err := MeasureAvoidance(g, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxDilation < 1 {
		t.Errorf("max dilation %f", st.MaxDilation)
	}
	// B_{2,h} has connectivity 2; one fault cannot disconnect it unless
	// it isolates a degree-2 node's both neighbors — a single fault never
	// disconnects a 2-connected graph.
	if st.Disconnected != 0 {
		t.Errorf("one fault disconnected %d pairs in a 2-connected graph", st.Disconnected)
	}
}

func TestMeasureAvoidanceDisconnection(t *testing.T) {
	// Two faults CAN disconnect B_{2,h} (kappa = 2): cut off node 0 by
	// killing its two neighbors 1 and 2^(h-1).
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 4})
	st, err := MeasureAvoidance(g, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Disconnected == 0 {
		t.Error("killing both neighbors of node 0 should disconnect pairs")
	}
}

func TestMeasureAvoidanceBadFault(t *testing.T) {
	g := debruijn.MustNew(debruijn.Params{M: 2, H: 3})
	if _, err := MeasureAvoidance(g, []int{99}); err == nil {
		t.Error("bad fault accepted")
	}
}
