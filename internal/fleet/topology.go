package fleet

import (
	"sort"

	sharding "ftnet/internal/shard"
)

// This file is the manager's view of the shard ring: which daemon owns
// which instance id, and the per-id overrides that keep service
// seamless while an instance is in flight between daemons.
//
// Ownership resolution, in order:
//
//  1. No topology installed -> this daemon owns everything (the
//     single-daemon deployments every prior PR built; they pay one
//     atomic load).
//  2. The moved-override map -> an id pinned to a daemon regardless of
//     the ring. SetTopology pins every local instance the new ring
//     assigns elsewhere to *this* daemon ("still mine until
//     migrated"), so installing a new ring never drops service;
//     completeMigration erases the pin, at which point the ring's
//     answer (the new owner) takes over and clients are redirected.
//  3. The ring.
//
// A request for an id owned elsewhere is refused with ErrWrongShard
// carrying the owner's URL — never silently applied — which is the
// invariant the cutover race tests pin down.

// topology is an immutable ring-membership view; Manager.topo swaps it
// atomically.
type topology struct {
	self     string            // this daemon's member name
	peers    map[string]string // member name -> advertised base URL (includes self)
	replicas int
	ring     *sharding.Ring
}

// RingInfo describes the installed topology (the GET /v1/ring body).
type RingInfo struct {
	Self     string            `json:"self"`
	Peers    map[string]string `json:"peers"`
	Replicas int               `json:"replicas"`
	Members  []string          `json:"members"`
	Moved    int               `json:"moved"` // ids pinned away from the ring's answer
}

// SetTopology installs a shard-ring view: self is this daemon's member
// name, peers maps every member name (self included) to its advertised
// base URL, replicas is the virtual-node count (<= 0 selects the
// default). Installing a topology never interrupts service: every
// local instance the new ring assigns to another daemon is pinned to
// this daemon in the moved-override map until a migration actually
// moves it. An empty peers map (or empty self) clears sharding
// entirely.
//
// Concurrent requests resolve ownership against either the old or the
// new view — both are consistent; a rebalance then drains the pins.
func (m *Manager) SetTopology(self string, peers map[string]string, replicas int) {
	if self == "" || len(peers) == 0 {
		m.topo.Store(nil)
		m.movedMu.Lock()
		m.moved = nil
		m.movedN.Store(0)
		m.movedMu.Unlock()
		return
	}
	members := make([]string, 0, len(peers))
	cp := make(map[string]string, len(peers))
	for name, url := range peers {
		members = append(members, name)
		cp[name] = url
	}
	t := &topology{self: self, peers: cp, ring: sharding.New(members, replicas)}
	t.replicas = t.ring.Replicas()
	// Pin displaced local instances before the ring goes live, so no
	// request window exists where this daemon bounces an id it still
	// holds the only copy of. The pin is an availability bet — after a
	// crash mid-handoff the rebuilt copy may be stale; ReconcilePins
	// audits every pin against the ring owner and retires the ones a
	// committed handoff already moved.
	pins := make(map[string]string)
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id, in := range s.instances {
			if !in.staged.Load() && t.ring.Owner(id) != self {
				pins[id] = self
			}
		}
		s.mu.RUnlock()
	}
	m.movedMu.Lock()
	m.moved = pins
	m.movedN.Store(int64(len(pins)))
	m.topo.Store(t)
	m.movedMu.Unlock()
}

// ReconcileStats reports one ReconcilePins pass.
type ReconcileStats struct {
	Checked    int `json:"checked"`    // displaced pinned ids audited
	Retired    int `json:"retired"`    // stale copies retired (owner holds a committed copy)
	Kept       int `json:"kept"`       // owner has no committed copy (or an older one): still ours
	Unresolved int `json:"unresolved"` // owner unreachable or retire failed: re-run needed
}

// ReconcilePins audits every displaced id pinned to this daemon
// against the ring owner's actual state. The pin exists so installing
// a topology never drops service — but after a crash between the
// target's OpMigrate commit and the source's OpDelete, recovery
// rebuilds the handed-off instance and SetTopology would happily pin
// it to a daemon that no longer owns it. For each such id the owner is
// probed: a committed copy at the same or newer epoch means the
// handoff finished and the local copy is retired (journaled OpDelete,
// pin erased); anything else keeps the pin — absent or staged means
// the handoff never completed and this is still the only live copy.
// Unresolved probes keep the pin too (availability over a guess);
// ftnetd re-runs the pass until everything resolves.
//
// Runs under migrateMu so it never interleaves with an active handoff.
func (m *Manager) ReconcilePins() ReconcileStats {
	var st ReconcileStats
	t := m.topo.Load()
	if t == nil {
		return st
	}
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	for _, id := range m.Displaced() {
		if m.ownerName(t, id) != t.self {
			continue // not pinned here (already retired or re-routed)
		}
		in, ok := m.Get(id)
		if !ok {
			continue
		}
		st.Checked++
		owner := t.ring.Owner(id)
		state, epoch, err := remoteMigrationState(t.peers[owner], id)
		if err != nil {
			st.Unresolved++
			continue
		}
		if state == "committed" && epoch >= in.snap.Load().Epoch() {
			if err := m.completeMigration(id, in); err != nil {
				st.Unresolved++
				continue
			}
			st.Retired++
		} else {
			st.Kept++
		}
	}
	return st
}

// Topology returns the installed ring view, or ok=false when this
// daemon is unsharded.
func (m *Manager) Topology() (RingInfo, bool) {
	t := m.topo.Load()
	if t == nil {
		return RingInfo{}, false
	}
	info := RingInfo{
		Self:     t.self,
		Peers:    t.peers,
		Replicas: t.replicas,
		Members:  append([]string(nil), t.ring.Members()...),
		Moved:    int(m.movedN.Load()),
	}
	return info, true
}

// Displaced returns the sorted ids of local instances the current ring
// assigns to another daemon — the work list of a rebalance. Staged
// inbound migrations are skipped (they are arriving, not leaving).
func (m *Manager) Displaced() []string {
	t := m.topo.Load()
	if t == nil {
		return nil
	}
	var ids []string
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.RLock()
		for id, in := range s.instances {
			if !in.staged.Load() && t.ring.Owner(id) != t.self {
				ids = append(ids, id)
			}
		}
		s.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}

// ownerName resolves the owning member name for id under t, honoring
// the moved-override pins. Caller has checked t != nil.
func (m *Manager) ownerName(t *topology, id string) string {
	if m.movedN.Load() != 0 {
		m.movedMu.RLock()
		owner, ok := m.moved[id]
		m.movedMu.RUnlock()
		if ok {
			return owner
		}
	}
	return t.ring.Owner(id)
}

// setMoved pins id's owner ("" erases the pin).
func (m *Manager) setMoved(id, owner string) {
	m.movedMu.Lock()
	if owner == "" {
		if _, ok := m.moved[id]; ok {
			delete(m.moved, id)
			m.movedN.Add(-1)
		}
	} else {
		if m.moved == nil {
			m.moved = make(map[string]string)
		}
		if _, ok := m.moved[id]; !ok {
			m.movedN.Add(1)
		}
		m.moved[id] = owner
	}
	m.movedMu.Unlock()
}

// checkOwned returns nil when this daemon owns id (or is unsharded),
// and ErrWrongShard with the owner's URL otherwise.
func (m *Manager) checkOwned(id string) error {
	t := m.topo.Load()
	if t == nil {
		return nil
	}
	owner := m.ownerName(t, id)
	if owner == t.self {
		return nil
	}
	m.rejectedShard.Add(1)
	m.wrongShardTotal.Inc()
	return wrongShardf(t.peers[owner], "fleet: instance %q owned by shard %s", id, owner)
}

// checkOwnedBytes is checkOwned for an id held as a byte slice (the
// wire plane's zero-copy path): the owned case — every request on a
// correctly-routed daemon — allocates nothing.
func (m *Manager) checkOwnedBytes(id []byte) error {
	t := m.topo.Load()
	if t == nil {
		return nil
	}
	var owner string
	if m.movedN.Load() != 0 {
		m.movedMu.RLock()
		pinned, ok := m.moved[string(id)] // no alloc: map index on conversion
		m.movedMu.RUnlock()
		if ok {
			owner = pinned
		}
	}
	if owner == "" {
		owner = t.ring.OwnerBytes(id)
	}
	if owner == t.self {
		return nil
	}
	m.rejectedShard.Add(1)
	m.wrongShardTotal.Inc()
	return wrongShardf(t.peers[owner], "fleet: instance %q owned by shard %s", id, owner)
}
