package hypercube

import (
	"testing"
	"testing/quick"

	"ftnet/internal/debruijn"
	"ftnet/internal/shuffle"
)

func TestHypercubeStructure(t *testing.T) {
	for d := 1; d <= 8; d++ {
		g := MustNew(d)
		if g.N() != 1<<d {
			t.Fatalf("d=%d: n=%d", d, g.N())
		}
		if g.MaxDegree() != d || g.MinDegree() != d {
			t.Errorf("d=%d: degree range [%d,%d], want exactly %d", d, g.MinDegree(), g.MaxDegree(), d)
		}
		if g.M() != d*(1<<d)/2 {
			t.Errorf("d=%d: edges %d, want %d", d, g.M(), d*(1<<d)/2)
		}
		if !g.IsConnected() {
			t.Errorf("d=%d: disconnected", d)
		}
		if diam := g.Diameter(); diam != d {
			t.Errorf("d=%d: diameter %d, want %d", d, diam, d)
		}
	}
}

func TestHypercubeDegreeGrowsButDeBruijnStaysConstant(t *testing.T) {
	// The paper's motivating comparison, as a checkable fact.
	for h := 3; h <= 9; h++ {
		q := MustNew(h)
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		se := shuffle.MustNew(shuffle.Params{H: h})
		if q.MaxDegree() != h {
			t.Errorf("hypercube degree should be %d", h)
		}
		if db.MaxDegree() > 4 {
			t.Errorf("de Bruijn degree %d > 4", db.MaxDegree())
		}
		if se.MaxDegree() > 3 {
			t.Errorf("shuffle-exchange degree %d > 3", se.MaxDegree())
		}
	}
}

func TestCCCStructure(t *testing.T) {
	for d := 3; d <= 7; d++ {
		g := MustNewCCC(d)
		if g.N() != d*(1<<d) {
			t.Fatalf("d=%d: n=%d, want %d", d, g.N(), d*(1<<d))
		}
		if g.MaxDegree() != 3 {
			t.Errorf("d=%d: CCC degree %d, want 3", d, g.MaxDegree())
		}
		if !g.IsConnected() {
			t.Errorf("d=%d: CCC disconnected", d)
		}
	}
}

func TestCCCIndexRoundTrip(t *testing.T) {
	f := func(w uint8, i uint8, dd uint8) bool {
		d := int(dd%6) + 1
		n := CCCNode{W: int(w) % (1 << d), I: int(i) % d}
		return CCCNodeOf(CCCIndex(n, d), d) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCCCEdgesAreLegalMoves(t *testing.T) {
	d := 4
	g := MustNewCCC(d)
	g.EachEdge(func(u, v int) bool {
		a, b := CCCNodeOf(u, d), CCCNodeOf(v, d)
		sameCycle := a.W == b.W && (a.I-b.I+d)%d == 1 || a.W == b.W && (b.I-a.I+d)%d == 1
		cubeEdge := a.I == b.I && a.W^b.W == 1<<a.I
		if !sameCycle && !cubeEdge {
			t.Errorf("illegal CCC edge (%v,%v)", a, b)
		}
		return true
	})
}

func TestAscendCostOrdering(t *testing.T) {
	for h := 3; h <= 10; h++ {
		c := AscendCost(h)
		if c.Hypercube != h || c.DeBruijn != h {
			t.Errorf("h=%d: hypercube/dB cost wrong: %+v", h, c)
		}
		if c.ShuffleExchange != 2*h || c.CCC != 3*h {
			t.Errorf("h=%d: SE/CCC cost wrong: %+v", h, c)
		}
		// The intro's claim: constant-factor slowdown only.
		if c.CCC > 3*c.Hypercube {
			t.Errorf("h=%d: slowdown not constant-factor", h)
		}
	}
}

func TestRunAscendSum(t *testing.T) {
	for d := 1; d <= 8; d++ {
		n := 1 << d
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		out, rounds, err := RunAscendSum(d, vals)
		if err != nil {
			t.Fatal(err)
		}
		if rounds != d {
			t.Errorf("d=%d: rounds=%d", d, rounds)
		}
		want := int64(n) * int64(n+1) / 2
		for x, v := range out {
			if v != want {
				t.Fatalf("d=%d node %d: %d != %d", d, x, v, want)
			}
		}
	}
}

func TestRunAscendSumErrors(t *testing.T) {
	if _, _, err := RunAscendSum(3, make([]int64, 4)); err == nil {
		t.Error("wrong length accepted")
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := New(80); err == nil {
		t.Error("overflow accepted")
	}
	if _, err := NewCCC(0); err == nil {
		t.Error("CCC d=0 accepted")
	}
	if _, err := NewCCC(80); err == nil {
		t.Error("CCC overflow accepted")
	}
}
