package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/hypercube"
	"ftnet/internal/num"
	"ftnet/internal/route"
	"ftnet/internal/shuffle"
	"ftnet/internal/sim"
	"ftnet/internal/verify"
)

// extended returns the experiments beyond the paper's own evaluation:
// the introduction's motivating comparisons and ablations of the design
// choices (see DESIGN.md).
func extended() []Experiment {
	return []Experiment{
		{"M1", "Intro motivation: degree and Ascend cost across topologies", M1},
		{"M2", "Passive connectivity (Esfahanian-Hakimi) vs spare-based tolerance", M2},
		{"A1", "Ablation: the edge rule's r-range {-k..k+1} is tight", A1},
		{"S3", "Congestion: permutation traffic, healthy vs reconfigured host", S3},
	}
}

// M1 regenerates the introduction's argument as a table: hypercube
// degree grows with machine size; shuffle-exchange, de Bruijn and CCC
// stay constant-degree with only a constant-factor Ascend slowdown.
func M1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "N=2^h\thypercube deg\tdB deg\tSE deg\tCCC deg\tAscend: Q / dB / SE / CCC (cycles)")
	for h := 3; h <= 10; h++ {
		q := hypercube.MustNew(h)
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		se := shuffle.MustNew(shuffle.Params{H: h})
		ccc := hypercube.MustNewCCC(h)
		c := hypercube.AscendCost(h)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d / %d / %d / %d\n",
			1<<h, q.MaxDegree(), db.MaxDegree(), se.MaxDegree(), ccc.MaxDegree(),
			c.Hypercube, c.DeBruijn, c.ShuffleExchange, c.CCC)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Execute the hypercube-native Ascend once as a ground truth.
	vals := make([]int64, 64)
	for i := range vals {
		vals[i] = 1
	}
	out, rounds, err := hypercube.RunAscendSum(6, vals)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nhypercube-native Ascend (h=6): sum=%d in %d rounds; SE emulation needs %d\n",
		out[0], rounds, 2*6)
	return nil
}

// M2 contrasts the passive fault tolerance of the bare topologies (how
// many faults until the network CAN disconnect — the Esfahanian-Hakimi
// measure, paper ref [8]) with the paper's spare-node guarantee (full
// topology preserved for any k faults).
func M2(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "graph\tkappa\tlambda\tpassive: survives\tspare-based (this paper)")
	for h := 3; h <= 5; h++ {
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		kap := graph.VertexConnectivity(db)
		lam := graph.EdgeConnectivity(db)
		fmt.Fprintf(tw, "B_{2,%d}\t%d\t%d\tany %d faults, connectivity only\tany k faults, FULL B_{2,%d} with k spares\n",
			h, kap, lam, kap-1, h)
	}
	for h := 3; h <= 5; h++ {
		se := shuffle.MustNew(shuffle.Params{H: h})
		kap := graph.VertexConnectivity(se)
		lam := graph.EdgeConnectivity(se)
		fmt.Fprintf(tw, "SE_%d\t%d\t%d\tany %d faults, connectivity only\tany k faults, FULL SE_%d with k spares\n",
			h, kap, lam, kap-1, h)
	}
	for _, m := range []int{3, 4} {
		db := debruijn.MustNew(debruijn.Params{M: m, H: 3})
		kap := graph.VertexConnectivity(db)
		fmt.Fprintf(tw, "B_{%d,3}\t%d\t%d\tany %d faults, connectivity only\tany k faults, FULL topology\n",
			m, kap, graph.EdgeConnectivity(db), kap-1)
	}
	return tw.Flush()
}

// A1 ablates the fault-tolerant edge rule: dropping either extreme of
// the r-range {-k, ..., k+1} must break (k,G)-tolerance — i.e. the
// paper's range is tight. For each truncation we run exhaustive
// verification and report the number of fault sets that break.
func A1(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\tr-range\tfault sets\tfailures")
	for _, c := range []struct{ h, k int }{{3, 1}, {3, 2}, {4, 1}, {4, 2}} {
		p := ft.Params{M: 2, H: c.h, K: c.k}
		target := debruijn.MustNew(p.Target())
		mapper := func(f, buf []int) ([]int, error) {
			m, err := ft.NewMapping(p.NTarget(), p.NHost(), f)
			if err != nil {
				return nil, err
			}
			return m.AppendPhi(buf[:0]), nil
		}
		for _, variant := range []struct {
			name       string
			rmin, rmax int
		}{
			{"full {-k..k+1}", -c.k, c.k + 1},
			{"drop low {-k+1..k+1}", -c.k + 1, c.k + 1},
			{"drop high {-k..k}", -c.k, c.k},
		} {
			host := buildTruncated(p, variant.rmin, variant.rmax)
			rep := verify.Exhaustive(target, host, p.K, mapper)
			fmt.Fprintf(tw, "%d\t%d\t%s\t%d\t%d\n", c.h, c.k, variant.name, rep.Checked, rep.Failed)
			if variant.rmin == p.RMin() && variant.rmax == p.RMax() && !rep.Ok() {
				return fmt.Errorf("full range failed: %v", rep.First)
			}
			if (variant.rmin != p.RMin() || variant.rmax != p.RMax()) && rep.Ok() {
				// A truncation that happens to survive would itself be a
				// finding (a smaller-degree construction); record loudly.
				fmt.Fprintf(tw, "\t\t^^ truncated range UNEXPECTEDLY sufficient\t\t\n")
			}
		}
	}
	return tw.Flush()
}

// buildTruncated builds the B^k-style host with a custom r-range.
func buildTruncated(p ft.Params, rmin, rmax int) *graph.Graph {
	s := p.NHost()
	b := graph.NewBuilder(s)
	for x := 0; x < s; x++ {
		for r := rmin; r <= rmax; r++ {
			b.AddEdge(x, num.X(x, p.M, r, s))
		}
	}
	return b.Build()
}

// S3 measures congestion: the same random permutation routed on the
// healthy target versus lifted onto the reconfigured host. Dilation is
// 1, so cycle counts should match closely — reconfiguration costs no
// bandwidth.
func S3(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "h\tk\ttarget cycles\treconfigured host cycles\tratio")
	rng := stableRng()
	for h := 4; h <= 7; h++ {
		for _, k := range []int{1, 4} {
			p := ft.Params{M: 2, H: h, K: k}
			target := debruijn.MustNew(p.Target())
			host := ft.MustNew(p)
			n := p.NTarget()

			// A fixed random permutation, routed with the de Bruijn digit
			// router on the target.
			perm := rng.Perm(n)
			router := func(u, v int) ([]int, error) { return route.ShortPath(u, v, p.Target()) }
			msgsT, err := sim.Permutation(n, func(x int) int { return perm[x] }, router)
			if err != nil {
				return err
			}
			stT, err := sim.Run(sim.NewPointToPoint(target, 2), msgsT, 100000)
			if err != nil {
				return err
			}

			faults := num.RandomSubset(rng, p.NHost(), k)
			mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				return err
			}
			phi := mp.PhiSlice()
			lifted := func(u, v int) ([]int, error) {
				pth, err := route.ShortPath(u, v, p.Target())
				if err != nil {
					return nil, err
				}
				return route.Lift(pth, phi)
			}
			msgsH, err := sim.Permutation(n, func(x int) int { return perm[x] }, lifted)
			if err != nil {
				return err
			}
			stH, err := sim.Run(sim.NewPointToPoint(host, 2), msgsH, 100000)
			if err != nil {
				return err
			}
			if stT.Stalled || stH.Stalled {
				return fmt.Errorf("h=%d k=%d: stalled (%v / %v)", h, k, stT, stH)
			}
			ratio := float64(stH.Cycles) / float64(stT.Cycles)
			fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.2f\n", h, k, stT.Cycles, stH.Cycles, ratio)
		}
	}
	return tw.Flush()
}
