// Command ftbenchjson converts `go test -bench` text output into a
// JSON benchmark artifact and optionally enforces the repository's
// benchmark-regression smoke check.
//
// Usage:
//
//	go test ./internal/fleet -bench Scale -benchtime 100x -benchmem -run '^$' \
//	    | go run ./cmd/ftbenchjson -out BENCH_fleet.json -check
//
// The JSON artifact is a stable record of one CI run (ns/op, B/op,
// allocs/op per benchmark), suitable for uploading per run and diffing
// across runs.
//
// With -check, benchmarks whose names carry an `/n=<size>` sub-name
// (the scale sweeps) are grouped by family and the allocation counts
// must be flat in n: if the largest size allocates more than one
// object per op above the smallest, the command exits non-zero. That
// is the acceptance criterion of the compact mapping representation —
// a fault event on a million-node instance must not allocate
// proportionally to the instance.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`        // e.g. ApplyScale/n=1024
	Family      string  `json:"family"`      // e.g. ApplyScale
	N           int     `json:"n,omitempty"` // the /n= sub-name, when present
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HasAllocs   bool    `json:"-"`
}

// Artifact is the JSON document one run produces.
type Artifact struct {
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	in := flag.String("in", "", "benchmark text to read (default stdin)")
	out := flag.String("out", "BENCH_fleet.json", "JSON artifact to write")
	check := flag.Bool("check", false, "fail if allocs/op grows with the /n= size within a family")
	flag.Parse()

	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	art, err := parse(r)
	if err != nil {
		fatal(err)
	}
	if len(art.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found"))
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("ftbenchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)

	if *check {
		if err := checkAllocsFlat(art.Benchmarks); err != nil {
			fatal(err)
		}
		fmt.Println("ftbenchjson: allocation-flatness check passed")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ftbenchjson: %v\n", err)
	os.Exit(1)
}

// parse reads `go test -bench` text output. Result lines look like
//
//	BenchmarkApplyScale/n=1024-8  100  342.8 ns/op  160 B/op  4 allocs/op
//
// where the trailing -8 is GOMAXPROCS and the value/unit pairs vary
// with -benchmem.
func parse(r io.Reader) (Artifact, error) {
	var art Artifact
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			art.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			art.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. a "Benchmarking..." prose line
		}
		b := Benchmark{Iterations: iters}
		b.Name = strings.TrimPrefix(fields[0], "Benchmark")
		// Strip the -GOMAXPROCS suffix from the last path element.
		if i := strings.LastIndex(b.Name, "-"); i > strings.LastIndex(b.Name, "/") {
			b.Name = b.Name[:i]
		}
		b.Family, _, _ = strings.Cut(b.Name, "/")
		if _, sub, ok := strings.Cut(b.Name, "/n="); ok {
			if n, err := strconv.Atoi(sub); err == nil {
				b.N = n
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return art, fmt.Errorf("bad value %q in %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
				b.HasAllocs = true
			}
		}
		art.Benchmarks = append(art.Benchmarks, b)
	}
	return art, sc.Err()
}

// checkAllocsFlat groups /n= benchmarks by family and requires the
// allocation count at the largest n to stay within one object of the
// smallest — flat, with headroom for counter jitter but not for an
// O(n) dependence.
func checkAllocsFlat(benchmarks []Benchmark) error {
	families := map[string][]Benchmark{}
	for _, b := range benchmarks {
		if b.N > 0 && b.HasAllocs {
			families[b.Family] = append(families[b.Family], b)
		}
	}
	if len(families) == 0 {
		return fmt.Errorf("-check found no /n= benchmarks with allocs/op (run with -benchmem)")
	}
	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bs := families[name]
		if len(bs) < 2 {
			continue
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i].N < bs[j].N })
		small, large := bs[0], bs[len(bs)-1]
		if large.AllocsPerOp > small.AllocsPerOp+1 {
			return fmt.Errorf("%s: allocs/op scales with n: %.1f at n=%d vs %.1f at n=%d",
				name, large.AllocsPerOp, large.N, small.AllocsPerOp, small.N)
		}
		fmt.Printf("ftbenchjson: %s allocs flat: %.1f at n=%d .. %.1f at n=%d\n",
			name, small.AllocsPerOp, small.N, large.AllocsPerOp, large.N)
	}
	return nil
}
