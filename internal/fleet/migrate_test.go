package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"ftnet/internal/journal"
	sharding "ftnet/internal/shard"
)

// shardPair is a two-daemon cluster in one process: managers a and b
// with real journals, real HTTP servers, and a shared two-member ring.
type shardPair struct {
	a, b     *Manager
	tsA, tsB *httptest.Server
	peers    map[string]string
}

func newShardManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m := NewManager(Options{})
	path := filepath.Join(dir, "epochs.wal")
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(w)
	t.Cleanup(func() { m.Close() })
	return m
}

// newShardPair boots the pair; the topology is NOT installed yet, so
// tests can create instances anywhere first (the pre-sharding world).
func newShardPair(t *testing.T) *shardPair {
	t.Helper()
	p := &shardPair{
		a: newShardManager(t, t.TempDir()),
		b: newShardManager(t, t.TempDir()),
	}
	p.tsA = httptest.NewServer(NewHTTPHandler(p.a))
	p.tsB = httptest.NewServer(NewHTTPHandler(p.b))
	t.Cleanup(p.tsA.Close)
	t.Cleanup(p.tsB.Close)
	p.peers = map[string]string{"a": p.tsA.URL, "b": p.tsB.URL}
	return p
}

func (p *shardPair) installTopology(t *testing.T) {
	t.Helper()
	p.a.SetTopology("a", p.peers, 0)
	p.b.SetTopology("b", p.peers, 0)
}

// idOwnedBy probes for an instance id the two-member ring assigns to
// the given member, so tests place instances deterministically.
func idOwnedBy(t *testing.T, member string) string {
	t.Helper()
	ring := sharding.New([]string{"a", "b"}, 0)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("inst-%d", i)
		if ring.Owner(id) == member {
			return id
		}
	}
	t.Fatalf("no probe id owned by %q", member)
	return ""
}

func phiSliceOf(t *testing.T, m *Manager, id string) []int {
	t.Helper()
	in, ok := m.Get(id)
	if !ok {
		t.Fatalf("no instance %q", id)
	}
	return in.PhiSlice()
}

func TestMigrateMovesInstanceBitIdentically(t *testing.T) {
	p := newShardPair(t)
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	stays, moves := idOwnedBy(t, "a"), idOwnedBy(t, "b")

	// Pre-sharding: both instances live on a, one of them with state.
	for _, id := range []string{stays, moves} {
		if _, err := p.a.Create(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, node := range []int{1, 5} {
		if _, err := p.a.Event(moves, Event{EventFault, node}); err != nil {
			t.Fatal(err)
		}
	}
	wantPhi := phiSliceOf(t, p.a, moves)

	p.installTopology(t)
	// The pin keeps the displaced instance fully served here until the
	// migration actually runs.
	if _, err := p.a.Lookup(moves, 0); err != nil {
		t.Fatalf("pinned instance unavailable pre-migration: %v", err)
	}
	if got := p.a.Displaced(); len(got) != 1 || got[0] != moves {
		t.Fatalf("Displaced = %v, want [%s]", got, moves)
	}

	stats, err := p.a.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].ID != moves || stats[0].Peer != "b" {
		t.Fatalf("rebalance stats = %+v", stats)
	}
	if stats[0].Epoch != 2 {
		t.Errorf("handoff epoch = %d, want 2", stats[0].Epoch)
	}

	// The new owner answers bit-identically; the old owner redirects.
	gotPhi := phiSliceOf(t, p.b, moves)
	if len(gotPhi) != len(wantPhi) {
		t.Fatalf("phi length %d != %d", len(gotPhi), len(wantPhi))
	}
	for x := range wantPhi {
		if gotPhi[x] != wantPhi[x] {
			t.Fatalf("phi[%d] = %d on new owner, want %d", x, gotPhi[x], wantPhi[x])
		}
	}
	if in, _ := p.b.Get(moves); in.Info().Epoch != 2 {
		t.Errorf("epoch on new owner = %d, want 2", in.Info().Epoch)
	}
	_, err = p.a.Lookup(moves, 0)
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("old owner lookup err = %v, want ErrWrongShard", err)
	}
	if owner := WrongShardOwner(err); owner != p.tsB.URL {
		t.Errorf("redirect owner = %q, want %q", owner, p.tsB.URL)
	}
	if _, err := p.a.Lookup(stays, 0); err != nil {
		t.Errorf("non-displaced instance broken: %v", err)
	}
	if st := p.a.Stats(); st.Shard == nil || st.Shard.MigrationsOut != 1 {
		t.Errorf("source shard stats = %+v", st.Shard)
	}
	if st := p.b.Stats(); st.Shard == nil || st.Shard.MigrationsIn != 1 {
		t.Errorf("target shard stats = %+v", st.Shard)
	}

	// Durability on both sides: the target's journal replays the
	// OpMigrate arrival (consuming its seq), the source's replays the
	// departure — neither resurrects a stale copy.
	for _, side := range []struct {
		m       *Manager
		has     []string
		hasnt   []string
		migrate int
	}{
		{p.b, []string{moves}, []string{stays}, 1},
		{p.a, []string{stays}, []string{moves}, 0},
	} {
		img := journalImage(t, side.m)
		m2 := NewManager(Options{})
		path := filepath.Join(t.TempDir(), "replay.wal")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := m2.RecoverFile(path)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if st.Migrated != side.migrate {
			t.Errorf("recovered Migrated = %d, want %d", st.Migrated, side.migrate)
		}
		for _, id := range side.has {
			if _, ok := m2.Get(id); !ok {
				t.Errorf("recovered image lost %q", id)
			}
		}
		for _, id := range side.hasnt {
			if _, ok := m2.Get(id); ok {
				t.Errorf("recovered image resurrected %q", id)
			}
		}
	}
	if got := phiSliceOf(t, p.b, moves); len(got) == 0 {
		t.Error("empty phi after everything")
	}
}

// TestMigrateWriteRaceLosesNothing is the cutover-race invariant: a
// writer hammering the source during the migration either gets its
// write applied (pre-fence, and the suffix carries it) or gets an
// explicit wrong-shard redirect — never a silent drop, never a double
// apply. Epoch arithmetic is the proof: the epoch on the new owner
// must equal the number of acknowledged writes exactly.
func TestMigrateWriteRaceLosesNothing(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	p.installTopology(t)

	applied := 0
	redirected := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		kind := EventFault
		for i := 0; i < 1_000_000; i++ {
			_, err := p.a.Event(id, Event{kind, 0})
			switch {
			case err == nil:
				applied++
				if kind == EventFault {
					kind = EventRepair
				} else {
					kind = EventFault
				}
			case errors.Is(err, ErrWrongShard):
				redirected = true
				return
			default:
				t.Errorf("write failed with %v mid-migration", err)
				return
			}
		}
	}()

	time.Sleep(5 * time.Millisecond) // let some pre-fence writes land
	stats, err := p.a.MigrateOut(id, "b")
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if !redirected {
		t.Fatal("writer never saw the wrong-shard redirect")
	}
	if applied == 0 {
		t.Fatal("no writes applied before the fence")
	}

	in, ok := p.b.Get(id)
	if !ok {
		t.Fatal("instance missing on new owner")
	}
	info := in.Info()
	if info.Epoch != uint64(applied) {
		t.Fatalf("epoch on new owner = %d, acked writes = %d (lost or doubled)", info.Epoch, applied)
	}
	// The toggle pattern makes the final fault set a parity function of
	// the write count — an independent check the state, not just the
	// counter, arrived intact.
	wantFaults := 0
	if applied%2 == 1 {
		wantFaults = 1
	}
	if len(info.Faults) != wantFaults {
		t.Fatalf("faults = %v after %d toggles", info.Faults, applied)
	}
	// And bit-identical phi against an independent replay of the same
	// acknowledged prefix.
	ref := NewManager(Options{})
	if _, err := ref.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	kind := EventFault
	for i := 0; i < applied; i++ {
		if _, err := ref.Event(id, Event{kind, 0}); err != nil {
			t.Fatal(err)
		}
		if kind == EventFault {
			kind = EventRepair
		} else {
			kind = EventFault
		}
	}
	want, got := phiSliceOf(t, ref, id), phiSliceOf(t, p.b, id)
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("phi[%d] = %d, want %d after racing cutover", x, got[x], want[x])
		}
	}
	if stats.FenceSeq < stats.BaseSeq {
		t.Errorf("fence seq %d below base seq %d", stats.FenceSeq, stats.BaseSeq)
	}
}

// TestMigrateHTTPRedirect pins the JSON plane's cutover contract:
// after the handoff the old owner answers 403 with the new owner's
// URL in X-Ftnet-Owner, and a client that follows it succeeds.
func TestMigrateHTTPRedirect(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	p.installTopology(t)
	if _, err := p.a.MigrateOut(id, "b"); err != nil {
		t.Fatal(err)
	}

	post := func(url string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	ev := Event{EventFault, 3}
	resp := post(p.tsA.URL+"/v1/instances/"+id+"/events", ev)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write on old owner = %d, want 403", resp.StatusCode)
	}
	owner := resp.Header.Get("X-Ftnet-Owner")
	if owner != p.tsB.URL {
		t.Fatalf("X-Ftnet-Owner = %q, want %q", owner, p.tsB.URL)
	}
	resp = post(owner+"/v1/instances/"+id+"/events", ev)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write on redirect target = %d, want 200", resp.StatusCode)
	}

	// Reads redirect too — both the single-x path and the dense stream.
	for _, path := range []string{"/v1/instances/" + id + "/phi?x=0", "/v1/instances/" + id + "/phi", "/v1/instances/" + id} {
		r, err := http.Get(p.tsA.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusForbidden || r.Header.Get("X-Ftnet-Owner") != p.tsB.URL {
			t.Errorf("GET %s on old owner = %d (owner %q), want 403 + owner", path, r.StatusCode, r.Header.Get("X-Ftnet-Owner"))
		}
	}
	// Creating an instance the ring assigns elsewhere redirects instead
	// of planting a shadow copy.
	other := idOwnedBy(t, "b") + "-new"
	if owner := sharding.New([]string{"a", "b"}, 0).Owner(other); owner == "b" {
		resp = post(p.tsA.URL+"/v1/instances", CreateRequest{ID: other, Spec: Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}})
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("create for foreign id = %d, want 403", resp.StatusCode)
		}
	}
}

func TestMigrateStageLifecycle(t *testing.T) {
	p := newShardPair(t)
	p.installTopology(t)
	id := idOwnedBy(t, "b")
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	frame := sharding.Migration{
		ID:      id,
		BaseSeq: 7,
		Records: []journal.Record{{
			Op:    journal.OpCheckpoint,
			ID:    id,
			Spec:  journalSpec(spec),
			Epoch: 0,
		}},
	}

	// Staging on the wrong member bounces with a redirect.
	if err := p.a.StageMigration(frame); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("stage on non-owner err = %v, want ErrWrongShard", err)
	}
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatal(err)
	}
	// Staged = invisible to readers until the suffix commits.
	if _, err := p.b.Lookup(id, 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("lookup on staged instance err = %v, want ErrUnavailable", err)
	}
	// A commit that doesn't match the staged base seq is refused.
	if _, err := p.b.CommitMigration(sharding.Migration{ID: id, BaseSeq: 99}); !errors.Is(err, ErrConflict) {
		t.Fatalf("mismatched commit err = %v, want ErrConflict", err)
	}
	// Re-staging (source retry) is idempotent.
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatalf("re-stage: %v", err)
	}
	if !p.b.AbortMigration(id) {
		t.Fatal("abort found nothing")
	}
	if _, ok := p.b.Get(id); ok {
		t.Fatal("aborted stage still visible")
	}
	if p.b.AbortMigration(id) {
		t.Fatal("second abort claimed success")
	}
	// A stage must never replace a live instance.
	if _, err := p.b.Create(id, spec); err != nil {
		t.Fatal(err)
	}
	if err := p.b.StageMigration(frame); !errors.Is(err, ErrConflict) {
		t.Fatalf("stage over live instance err = %v, want ErrConflict", err)
	}
}

func TestMigrateGuards(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.a.MigrateOut(id, "b"); err == nil {
		t.Error("migrate without topology accepted")
	}
	p.installTopology(t)
	if _, err := p.a.MigrateOut(id, "ghost"); err == nil {
		t.Error("migrate to unknown peer accepted")
	}
	if _, err := p.a.MigrateOut(id, "a"); err == nil {
		t.Error("migrate to self accepted")
	}
	if _, err := p.a.MigrateOut("missing", "b"); !errors.Is(err, ErrNotFound) {
		t.Error("migrate of unknown instance accepted")
	}
	// Delete is fenced off for an in-flight instance only; a plain
	// displaced-but-unfenced instance still deletes locally.
	if ok, err := p.a.Delete(id); !ok || err != nil {
		t.Errorf("delete of pinned instance = %v, %v", ok, err)
	}
}

// lossyFront fronts a daemon's HTTP server for fault injection: every
// request is forwarded verbatim, but the RESPONSE of any path swallow
// matches is replaced with a 502 (the backend did the work; the answer
// was lost), and any path refuse matches is 502'd without forwarding
// (the backend never heard about it).
func lossyFront(t *testing.T, backend string, swallow, refuse func(path string) bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if refuse != nil && refuse(r.URL.Path) {
			http.Error(w, "injected outage", http.StatusBadGateway)
			return
		}
		body, _ := io.ReadAll(r.Body)
		req, err := http.NewRequest(r.Method, backend+r.URL.RequestURI(), bytes.NewReader(body))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if swallow != nil && swallow(r.URL.Path) {
			http.Error(w, "injected response loss", http.StatusBadGateway)
			return
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(b)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestMigrateCommitResponseLostStillCutsOver is the split-brain
// regression: the commit frame reaches the target (which durably
// journals the arrival and opens for traffic) but its answer is lost.
// The source must NOT treat that as an abort and resume ownership —
// resolveHandoff discovers the commit landed and the cutover finishes,
// leaving exactly one live copy.
func TestMigrateCommitResponseLostStillCutsOver(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5} {
		if _, err := p.a.Event(id, Event{EventFault, n}); err != nil {
			t.Fatal(err)
		}
	}

	front := lossyFront(t, p.tsB.URL,
		func(path string) bool { return path == "/v1/migrate/commit" }, nil)
	p.a.SetTopology("a", map[string]string{"a": p.tsA.URL, "b": front.URL}, 0)
	p.b.SetTopology("b", p.peers, 0)

	st, err := p.a.MigrateOut(id, "b")
	if err != nil {
		t.Fatalf("migrate with lost commit answer = %v, want resolved success", err)
	}
	if st.ID != id || st.Peer != "b" || st.Epoch != 2 {
		t.Errorf("stats = %+v, want id=%s peer=b epoch=2", st, id)
	}
	// Exactly one live copy: the target serves, the source redirects.
	if _, err := p.b.Lookup(id, 0); err != nil {
		t.Fatalf("new owner lookup: %v", err)
	}
	if _, ok := p.a.Get(id); ok {
		t.Error("stale copy still registered on the source")
	}
	if _, err := p.a.Lookup(id, 0); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("old owner lookup err = %v, want ErrWrongShard", err)
	}
}

// TestMigrateUnresolvedCommitHoldsFence: when the commit answer is
// lost AND the target cannot be probed, the handoff is genuinely
// ambiguous — the only safe posture is to keep the write fence up
// (writes bounce with a redirect, they do not land on the maybe-stale
// copy) and let a later MigrateOut resume the resolution.
func TestMigrateUnresolvedCommitHoldsFence(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 5} {
		if _, err := p.a.Event(id, Event{EventFault, n}); err != nil {
			t.Fatal(err)
		}
	}

	var outage atomic.Bool
	outage.Store(true)
	front := lossyFront(t, p.tsB.URL,
		func(path string) bool { return path == "/v1/migrate/commit" },
		func(path string) bool {
			return outage.Load() &&
				(path == "/v1/migrate/abort" || path == "/v1/migrate/state")
		})
	p.a.SetTopology("a", map[string]string{"a": p.tsA.URL, "b": front.URL}, 0)
	p.b.SetTopology("b", p.peers, 0)

	if _, err := p.a.MigrateOut(id, "b"); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("unresolved migrate err = %v, want ErrUnavailable", err)
	}
	// The fence held: a write on the source is redirected, never applied
	// — the target committed and is serving, so an applied write would
	// be silently lost at retirement.
	if _, err := p.a.Event(id, Event{EventFault, 2}); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("write during unresolved handoff err = %v, want ErrWrongShard", err)
	}
	if _, err := p.b.Lookup(id, 0); err != nil {
		t.Fatalf("target lookup: %v", err)
	}

	// The outage heals; re-running the migration resumes the pending
	// resolution (not ErrConflict), finishes the cutover, and reports it.
	outage.Store(false)
	st, err := p.a.MigrateOut(id, "b")
	if err != nil {
		t.Fatalf("resumed migrate: %v", err)
	}
	if st.ID != id || st.Peer != "b" || st.Epoch != 2 {
		t.Errorf("resumed stats = %+v, want id=%s peer=b epoch=2", st, id)
	}
	if _, ok := p.a.Get(id); ok {
		t.Error("stale copy survived the resumed cutover")
	}
	if _, err := p.a.Lookup(id, 0); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("old owner lookup err = %v, want ErrWrongShard", err)
	}
}

// TestDeleteStagedRefused: a client DELETE racing an inbound migration
// must not tombstone the staged copy — its journal never created the
// id, so the OpDelete would be an orphan and the source's in-flight
// commit would race it.
func TestDeleteStagedRefused(t *testing.T) {
	p := newShardPair(t)
	p.installTopology(t)
	id := idOwnedBy(t, "b")
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	frame := sharding.Migration{
		ID:      id,
		BaseSeq: 3,
		Records: []journal.Record{{Op: journal.OpCheckpoint, ID: id, Spec: journalSpec(spec), Epoch: 0}},
	}
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatal(err)
	}
	ok, err := p.b.Delete(id)
	if ok || !errors.Is(err, ErrUnavailable) {
		t.Fatalf("delete of staged copy = (%v, %v), want refused with ErrUnavailable", ok, err)
	}
	// The stage is untouched and the handoff still commits.
	if state, _ := p.b.MigrationState(id); state != "staged" {
		t.Fatalf("state after refused delete = %q, want staged", state)
	}
	if _, err := p.b.CommitMigration(sharding.Migration{ID: id, BaseSeq: 3}); err != nil {
		t.Fatalf("commit after refused delete: %v", err)
	}
}

// TestAbortCommitFence pins the resolution protocol's hinge: a
// successful abort permanently fences the commit out (resolveHandoff
// treats aborted=true as proof the handoff never happened), and an
// abort after the commit is a no-op on the live copy.
func TestAbortCommitFence(t *testing.T) {
	p := newShardPair(t)
	p.installTopology(t)
	id := idOwnedBy(t, "b")
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	frame := sharding.Migration{
		ID:      id,
		BaseSeq: 1,
		Records: []journal.Record{{Op: journal.OpCheckpoint, ID: id, Spec: journalSpec(spec), Epoch: 0}},
	}

	// Abort first: the commit must find nothing to land on.
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatal(err)
	}
	if !p.b.AbortMigration(id) {
		t.Fatal("abort found nothing staged")
	}
	if _, err := p.b.CommitMigration(sharding.Migration{ID: id, BaseSeq: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("commit after abort err = %v, want ErrNotFound", err)
	}
	if state, _ := p.b.MigrationState(id); state != "absent" {
		t.Fatalf("state after aborted handoff = %q, want absent", state)
	}

	// Commit first: the abort must not drop the committed copy.
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.CommitMigration(sharding.Migration{ID: id, BaseSeq: 1}); err != nil {
		t.Fatal(err)
	}
	if p.b.AbortMigration(id) {
		t.Fatal("abort claimed to drop a committed instance")
	}
	if state, _ := p.b.MigrationState(id); state != "committed" {
		t.Fatalf("state after commit = %q, want committed", state)
	}
	if _, err := p.b.Lookup(id, 0); err != nil {
		t.Fatalf("committed instance unavailable after no-op abort: %v", err)
	}
}

// TestReconcilePinsRetiresStaleCopy covers the crash-resurrection
// hole: the source crashed after the target's OpMigrate commit but
// before its own OpDelete, restarted, recovered the instance, and
// SetTopology pinned it to itself. ReconcilePins must retire exactly
// the copies whose ring owner confirms a committed handoff at the same
// or newer epoch, and keep serving everything else.
func TestReconcilePinsRetiresStaleCopy(t *testing.T) {
	p := newShardPair(t)
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	ring := sharding.New([]string{"a", "b"}, 0)
	var ids []string
	for i := 0; len(ids) < 3; i++ {
		if id := fmt.Sprintf("rec-%d", i); ring.Owner(id) == "b" {
			ids = append(ids, id)
		}
	}
	handedOff, divergent, neverMoved := ids[0], ids[1], ids[2]
	for _, id := range ids {
		if _, err := p.a.Create(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []int{1, 5} {
		if _, err := p.a.Event(handedOff, Event{EventFault, n}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.a.Event(divergent, Event{EventFault, 1}); err != nil {
		t.Fatal(err)
	}
	p.installTopology(t) // pins all three to a

	// handedOff: the handoff committed on b at a's exact epoch (the
	// crash-window state the OpDelete never recorded).
	inA, _ := p.a.Get(handedOff)
	if err := p.b.StageMigration(sharding.Migration{
		ID: handedOff, BaseSeq: 5,
		Records: []journal.Record{checkpointRecord(handedOff, spec, inA.snap.Load())},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.CommitMigration(sharding.Migration{ID: handedOff, BaseSeq: 5}); err != nil {
		t.Fatal(err)
	}
	// divergent: b holds an OLDER committed copy (epoch 0 < a's 1) — the
	// local copy has history the owner lacks, so it must not be retired.
	if err := p.b.StageMigration(sharding.Migration{
		ID: divergent, BaseSeq: 6,
		Records: []journal.Record{{Op: journal.OpCheckpoint, ID: divergent, Spec: journalSpec(spec), Epoch: 0}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.b.CommitMigration(sharding.Migration{ID: divergent, BaseSeq: 6}); err != nil {
		t.Fatal(err)
	}

	st := p.a.ReconcilePins()
	if st.Checked != 3 || st.Retired != 1 || st.Kept != 2 || st.Unresolved != 0 {
		t.Fatalf("reconcile stats = %+v, want checked=3 retired=1 kept=2 unresolved=0", st)
	}
	// The confirmed-committed copy is gone and redirects...
	if _, ok := p.a.Get(handedOff); ok {
		t.Error("stale handed-off copy survived reconciliation")
	}
	if _, err := p.a.Lookup(handedOff, 0); !errors.Is(err, ErrWrongShard) {
		t.Errorf("retired id lookup err = %v, want ErrWrongShard", err)
	}
	// ...while the divergent and never-moved copies keep serving here.
	for _, id := range []string{divergent, neverMoved} {
		if _, err := p.a.Lookup(id, 0); err != nil {
			t.Errorf("kept instance %q unavailable after reconciliation: %v", id, err)
		}
	}
	if info, ok := p.a.Topology(); !ok || info.Moved != 2 {
		t.Errorf("moved pins after reconciliation = %d, want 2", info.Moved)
	}
	// A second pass converges: nothing more to retire, nothing lost.
	if st2 := p.a.ReconcilePins(); st2.Retired != 0 || st2.Unresolved != 0 {
		t.Errorf("second reconcile pass = %+v, want no retirements", st2)
	}
}
