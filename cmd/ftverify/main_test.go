package main

import "testing"

func TestParseFaults(t *testing.T) {
	got, err := parseFaults("3, 11,7")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 11, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseFaults = %v", got)
		}
	}
	if _, err := parseFaults("3,x"); err == nil {
		t.Error("bad entry accepted")
	}
}

func TestSetupTargets(t *testing.T) {
	for _, target := range []string{"db", "se", "se-natural"} {
		tgt, host, mapper, err := setup(target, 2, 4, 2)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if tgt.N() != 16 || host.N() != 18 {
			t.Errorf("%s: sizes %d/%d", target, tgt.N(), host.N())
		}
		phi, err := mapper([]int{0, 5}, nil)
		if err != nil {
			t.Fatalf("%s: %v", target, err)
		}
		if len(phi) != 16 {
			t.Errorf("%s: phi length %d", target, len(phi))
		}
	}
	if _, _, _, err := setup("nope", 2, 4, 1); err == nil {
		t.Error("unknown target accepted")
	}
	if _, _, _, err := setup("db", 1, 4, 1); err == nil {
		t.Error("bad params accepted")
	}
}
