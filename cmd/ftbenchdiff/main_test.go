package main

import (
	"strings"
	"testing"
	"time"
)

func art(benchmarks ...Benchmark) Artifact { return Artifact{Benchmarks: benchmarks} }

func bench(name string, ns, allocs float64) Benchmark {
	family, _, _ := strings.Cut(name, "/")
	return Benchmark{Name: name, Family: family, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := art(
		bench("ApplyScale/n=1024", 300, 4),
		bench("LookupScale/n=1024", 10, 0),
		bench("CacheHit", 50, 0),
	)
	nw := art(
		bench("ApplyScale/n=1024", 360, 4), // +20% < 25%
		bench("LookupScale/n=1024", 9, 0),
		bench("CacheHit", 500, 3), // unguarded family: reported, not fatal
	)
	report, failures := diff(old, nw, 25, 0, []string{"Apply", "Lookup"})
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "ApplyScale/n=1024") || !strings.Contains(report, "+20.0%") {
		t.Errorf("report missing delta:\n%s", report)
	}
}

func TestDiffFailsOnTimeRegression(t *testing.T) {
	old := art(bench("ApplyScale/n=1024", 300, 4))
	nw := art(bench("ApplyScale/n=1024", 400, 4)) // +33%
	_, failures := diff(old, nw, 25, 0, []string{"Apply", "Lookup"})
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	old := art(bench("LookupScale/n=4096", 10, 0))
	nw := art(bench("LookupScale/n=4096", 10, 2)) // +2 allocs/op
	_, failures := diff(old, nw, 25, 0, []string{"Apply", "Lookup"})
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op regression", failures)
	}
}

func TestDiffToleratesAddedAndRemoved(t *testing.T) {
	old := art(bench("ApplyScale/n=1024", 300, 4), bench("Gone", 1, 0))
	nw := art(bench("ApplyScale/n=1024", 300, 4), bench("ApplyScale/n=4096", 310, 4))
	report, failures := diff(old, nw, 25, 0, []string{"Apply"})
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if !strings.Contains(report, "(new)") || !strings.Contains(report, "(gone)") {
		t.Errorf("report does not mark added/removed benchmarks:\n%s", report)
	}
}

func sbench(name, family string, value float64) Benchmark {
	return Benchmark{Name: name, Family: family, Value: value, Unit: "ns"}
}

// TestDiffServiceArtifactValues pins the unit-carrying path: entries
// with a unit compare on Value, and allocs never apply to them.
func TestDiffServiceArtifactValues(t *testing.T) {
	old := art(
		sbench("request_p99/phi", "request_p99", 2e6),
		sbench("commit_fsync_wait_p99", "fsync_p99", 5e6),
	)
	nw := art(
		sbench("request_p99/phi", "request_p99", 2.2e6),    // +10%
		sbench("commit_fsync_wait_p99", "fsync_p99", 25e6), // 5x: regression
	)
	_, failures := diff(old, nw, 300, 0, []string{"request_p99", "fsync_p99"})
	if len(failures) != 1 || !strings.Contains(failures[0], "commit_fsync_wait_p99") {
		t.Fatalf("failures = %v, want exactly the fsync regression", failures)
	}
	if !strings.Contains(failures[0], "ns ") {
		t.Errorf("failure message does not name the unit: %v", failures[0])
	}
}

// TestDiffFloorAbsorbsNoise pins -floor: a huge relative regression
// below the absolute floor is noise, not a failure — but the same
// ratio above the floor still fails.
func TestDiffFloorAbsorbsNoise(t *testing.T) {
	old := art(sbench("request_p99/stats", "request_p99", 50e3)) // 50µs
	nw := art(sbench("request_p99/stats", "request_p99", 400e3)) // 400µs: 8x, both < 2ms
	_, failures := diff(old, nw, 300, 2*time.Millisecond, []string{"request_p99"})
	if len(failures) != 0 {
		t.Fatalf("sub-floor noise failed the gate: %v", failures)
	}
	nw = art(sbench("request_p99/stats", "request_p99", 400e6)) // 400ms: way past the floor
	_, failures = diff(old, nw, 300, 2*time.Millisecond, []string{"request_p99"})
	if len(failures) != 1 {
		t.Fatalf("above-floor regression passed: %v", failures)
	}
}

func rbench(name, family string, value float64) Benchmark {
	return Benchmark{Name: name, Family: family, Value: value, Unit: "ops/s"}
}

// TestDiffRateIsHigherBetter pins the direction-aware path for
// "/s"-unit entries: a throughput drop fails, a throughput gain (a
// large positive delta) never does, and the duration floor is ignored.
func TestDiffRateIsHigherBetter(t *testing.T) {
	old := art(rbench("lookups_per_sec", "lookups_per_sec", 1e6))
	nw := art(rbench("lookups_per_sec", "lookups_per_sec", 5e6)) // 5x faster
	_, failures := diff(old, nw, 25, 0, []string{"lookups_per_sec"})
	if len(failures) != 0 {
		t.Fatalf("throughput improvement failed the gate: %v", failures)
	}

	nw = art(rbench("lookups_per_sec", "lookups_per_sec", 0.5e6)) // halved
	_, failures = diff(old, nw, 25, 25*time.Millisecond, []string{"lookups_per_sec"})
	if len(failures) != 1 || !strings.Contains(failures[0], "ops/s") {
		t.Fatalf("failures = %v, want one ops/s throughput regression", failures)
	}

	nw = art(rbench("lookups_per_sec", "lookups_per_sec", 0)) // collapsed
	_, failures = diff(old, nw, 25, 0, []string{"lookups_per_sec"})
	if len(failures) != 1 {
		t.Fatalf("zero new rate passed the gate: %v", failures)
	}
}

// TestDiffZeroBaselineSkipped pins that a zero old value (the family
// existed but recorded nothing, e.g. no compaction ran when the
// baseline was cut) never produces a division-flavored failure.
func TestDiffZeroBaselineSkipped(t *testing.T) {
	old := art(sbench("compaction_pause_max", "compaction_pause_max", 0))
	nw := art(sbench("compaction_pause_max", "compaction_pause_max", 3e6))
	_, failures := diff(old, nw, 300, 0, []string{"compaction_pause_max"})
	if len(failures) != 0 {
		t.Fatalf("zero baseline produced failures: %v", failures)
	}
}
