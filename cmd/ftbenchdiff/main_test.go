package main

import (
	"strings"
	"testing"
)

func art(benchmarks ...Benchmark) Artifact { return Artifact{Benchmarks: benchmarks} }

func bench(name string, ns, allocs float64) Benchmark {
	family, _, _ := strings.Cut(name, "/")
	return Benchmark{Name: name, Family: family, NsPerOp: ns, AllocsPerOp: allocs}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := art(
		bench("ApplyScale/n=1024", 300, 4),
		bench("LookupScale/n=1024", 10, 0),
		bench("CacheHit", 50, 0),
	)
	nw := art(
		bench("ApplyScale/n=1024", 360, 4), // +20% < 25%
		bench("LookupScale/n=1024", 9, 0),
		bench("CacheHit", 500, 3), // unguarded family: reported, not fatal
	)
	report, failures := diff(old, nw, 25, []string{"Apply", "Lookup"})
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "ApplyScale/n=1024") || !strings.Contains(report, "+20.0%") {
		t.Errorf("report missing delta:\n%s", report)
	}
}

func TestDiffFailsOnTimeRegression(t *testing.T) {
	old := art(bench("ApplyScale/n=1024", 300, 4))
	nw := art(bench("ApplyScale/n=1024", 400, 4)) // +33%
	_, failures := diff(old, nw, 25, []string{"Apply", "Lookup"})
	if len(failures) != 1 || !strings.Contains(failures[0], "ns/op") {
		t.Fatalf("failures = %v, want one ns/op regression", failures)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	old := art(bench("LookupScale/n=4096", 10, 0))
	nw := art(bench("LookupScale/n=4096", 10, 2)) // +2 allocs/op
	_, failures := diff(old, nw, 25, []string{"Apply", "Lookup"})
	if len(failures) != 1 || !strings.Contains(failures[0], "allocs/op") {
		t.Fatalf("failures = %v, want one allocs/op regression", failures)
	}
}

func TestDiffToleratesAddedAndRemoved(t *testing.T) {
	old := art(bench("ApplyScale/n=1024", 300, 4), bench("Gone", 1, 0))
	nw := art(bench("ApplyScale/n=1024", 300, 4), bench("ApplyScale/n=4096", 310, 4))
	report, failures := diff(old, nw, 25, []string{"Apply"})
	if len(failures) != 0 {
		t.Fatalf("failures = %v", failures)
	}
	if !strings.Contains(report, "(new)") || !strings.Contains(report, "(gone)") {
		t.Errorf("report does not mark added/removed benchmarks:\n%s", report)
	}
}
