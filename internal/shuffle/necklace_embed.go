package shuffle

import (
	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// necklaceRotationEmbedding searches for an embedding of SE_h into
// B_{2,h} of the restricted "necklace rotation" form: every necklace is
// mapped onto itself by a uniform rotation. Such a map
//
//	phi(u) = RotLeft^t(u),  t depending only on u's necklace,
//
// is automatically a bijection and automatically preserves all shuffle
// edges (they are the necklace cycles, and rotation slides along the
// cycle; every shuffle edge is a de Bruijn edge under any labeling of
// this form). Only exchange edges constrain the rotation offsets, and an
// exchange edge always joins two *different* necklaces (it flips one bit
// and therefore changes the popcount, which rotations preserve). The
// problem is thus a binary CSP over necklaces with domains of size at
// most h, solved by backtracking with forward checking.
//
// It returns (phi, true) on success. Failure only means no embedding of
// this restricted form was found; callers fall back to a generic search.
func necklaceRotationEmbedding(h int) ([]int, bool) {
	n := num.MustIPow(2, h)
	db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
	necklaces := Necklaces(h)
	necklaceOf := make([]int, n)    // node -> necklace index
	posInNecklace := make([]int, n) // node -> index within its necklace orbit
	for i, nk := range necklaces {
		for j, x := range nk.Nodes {
			necklaceOf[x] = i
			posInNecklace[x] = j
		}
	}

	// Collect, per ordered necklace pair, the exchange edges joining them.
	type pairKey struct{ a, b int }
	exEdges := make(map[pairKey][][2]int)
	for u := 0; u < n; u += 2 {
		v := u + 1 // the exchange partner of u
		a, b := necklaceOf[u], necklaceOf[v]
		key := pairKey{a, b}
		e := [2]int{u, v} // e[0] belongs to necklace key.a
		if a > b {
			key = pairKey{b, a}
			e = [2]int{v, u}
		}
		exEdges[key] = append(exEdges[key], e)
	}

	// rotated(u, t) = u rotated left t times; precompute orbit tables so
	// rotation is an array lookup.
	rotTo := func(u, t int) int {
		nk := necklaces[necklaceOf[u]]
		return nk.Nodes[(posInNecklace[u]+t)%len(nk.Nodes)]
	}

	// allowed[pair] = set of (ta, tb) satisfying every exchange edge
	// between necklaces a and b.
	type shiftPair struct{ ta, tb int }
	allowed := make(map[pairKey][]shiftPair)
	for key, edges := range exEdges {
		la := len(necklaces[key.a].Nodes)
		lb := len(necklaces[key.b].Nodes)
		for ta := 0; ta < la; ta++ {
			for tb := 0; tb < lb; tb++ {
				ok := true
				for _, e := range edges {
					p, q := rotTo(e[0], ta), rotTo(e[1], tb)
					if !db.HasEdge(p, q) {
						ok = false
						break
					}
				}
				if ok {
					allowed[key] = append(allowed[key], shiftPair{ta, tb})
				}
			}
		}
		if len(allowed[key]) == 0 {
			return nil, false // some pair has no consistent shifts at all
		}
	}

	// Adjacency over necklaces for ordering and constraint lookup.
	nNk := len(necklaces)
	nbrs := make([][]int, nNk)
	for key := range exEdges {
		nbrs[key.a] = append(nbrs[key.a], key.b)
		nbrs[key.b] = append(nbrs[key.b], key.a)
	}

	shifts := make([]int, nNk)
	for i := range shifts {
		shifts[i] = -1
	}
	pairAllowed := func(a, ta, b, tb int) bool {
		key := pairKey{a, b}
		if a > b {
			key = pairKey{b, a}
			ta, tb = tb, ta
		}
		cands, ok := allowed[key]
		if !ok {
			return true // no exchange edges between these necklaces
		}
		for _, sp := range cands {
			if sp.ta == ta && sp.tb == tb {
				return true
			}
		}
		return false
	}

	// Order variables by connectivity (most constrained first).
	order := necklaceOrder(nNk, nbrs)

	var assign func(idx int) bool
	assign = func(idx int) bool {
		if idx == nNk {
			return true
		}
		nk := order[idx]
		for t := 0; t < len(necklaces[nk].Nodes); t++ {
			good := true
			for _, other := range nbrs[nk] {
				if shifts[other] >= 0 && !pairAllowed(nk, t, other, shifts[other]) {
					good = false
					break
				}
			}
			if good {
				shifts[nk] = t
				if assign(idx + 1) {
					return true
				}
				shifts[nk] = -1
			}
		}
		return false
	}
	if !assign(0) {
		return nil, false
	}

	phi := make([]int, n)
	for u := 0; u < n; u++ {
		phi[u] = rotTo(u, shifts[necklaceOf[u]])
	}
	se := MustNew(Params{H: h})
	if err := graph.CheckEmbedding(se, db, phi); err != nil {
		return nil, false
	}
	return phi, true
}

// necklaceOrder orders necklace indices so each next variable has the
// most already-ordered neighbors (connectivity-first, like the generic
// embedder's ordering).
func necklaceOrder(n int, nbrs [][]int) []int {
	placed := make([]bool, n)
	order := make([]int, 0, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for v := 0; v < n; v++ {
			if placed[v] {
				continue
			}
			score := 0
			for _, w := range nbrs[v] {
				if placed[w] {
					score++
				}
			}
			score = score*n + len(nbrs[v])
			if score > bestScore {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		placed[best] = true
	}
	return order
}
