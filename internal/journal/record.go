package journal

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Op is the kind of state transition a record describes.
type Op byte

// The record kinds. Every accepted Manager transition appends exactly
// one record: instance creation, instance deletion, or an applied
// fault/repair transition (a single event and an atomic batch are both
// one OpTransition — the epoch advances by one either way). Two more
// kinds exist for compaction: OpSeqBase is the metadata record a
// compacted log starts with (it pins the commit sequence number of the
// next ordinary record — and the leadership term in force — so both
// survive the checkpoint-and-truncate swap), and OpCheckpoint captures
// one instance's entire state — spec, epoch, fault set — in a single
// record, which is all the paper's pure-function-of-the-fault-set
// reconfiguration needs to rebuild it bit-identically.
//
// OpTermBump is the leadership fence: a promoted replica commits one
// before accepting writes, and every entry after it belongs to the new
// term. It consumes a commit sequence number like any ordinary record
// (followers must observe it in-stream, in order), and recovery
// verifies the term chain — strictly increasing — the same way it
// verifies the per-instance epoch chain.
//
// OpMigrate is the ownership-handoff record: a daemon that accepts a
// migrated instance commits one, carrying the instance's complete
// state (spec, epoch, fault set — the same shape as OpCheckpoint).
// Unlike OpCheckpoint it consumes a commit sequence number: recovery
// and followers treat it as an ordinary in-stream entry ("this
// instance arrived here with state X"), not as compaction metadata.
const (
	OpCreate     Op = 1
	OpDelete     Op = 2
	OpTransition Op = 3
	OpSeqBase    Op = 4
	OpCheckpoint Op = 5
	OpTermBump   Op = 6
	OpMigrate    Op = 7
)

func (op Op) String() string {
	switch op {
	case OpCreate:
		return "create"
	case OpDelete:
		return "delete"
	case OpTransition:
		return "transition"
	case OpSeqBase:
		return "seqbase"
	case OpCheckpoint:
		return "checkpoint"
	case OpTermBump:
		return "termbump"
	case OpMigrate:
		return "migrate"
	default:
		return fmt.Sprintf("op(%d)", byte(op))
	}
}

// Spec mirrors the fleet instance spec without importing the fleet
// package (fleet imports journal, not the other way around). Kind is
// an opaque string to the journal; the fleet layer validates it on
// replay.
type Spec struct {
	Kind string
	M    int
	H    int
	K    int
}

// Record is one journaled transition. ID names the instance; Spec is
// set for OpCreate; Epoch, Applied and Faults are set for OpTransition
// and carry the state *after* the transition — the epoch the accepted
// batch produced, how many events it carried, and the resulting sorted
// fault set (O(k) words, the whole reconfiguration state of the
// paper's Section III-A map).
//
// OpCheckpoint sets Spec, Epoch and Faults together (Applied is
// unused): the instance's complete state in one record, any epoch —
// including 0 for a never-transitioned instance. OpSeqBase sets Seq
// and Term; OpTermBump sets only Term; both use SeqBaseID as their ID
// by convention.
type Record struct {
	Op      Op
	ID      string
	Spec    Spec   // OpCreate and OpCheckpoint
	Epoch   uint64 // OpTransition (first transition is epoch 1) and OpCheckpoint
	Applied int    // OpTransition only; events in the atomic batch
	Faults  []int  // OpTransition and OpCheckpoint; sorted, distinct, non-negative
	Seq     uint64 // OpSeqBase only; commit seq of the next ordinary record
	Term    uint64 // OpTermBump (the new term, >= 1) and OpSeqBase (term in force)
}

// SeqBaseID is the conventional instance-id slot of OpSeqBase and
// OpTermBump records (the codec requires a non-empty ID for every
// record).
const SeqBaseID = "log"

// recordVersion is the payload format version byte. Decoding rejects
// anything else, so a future format change cannot be misparsed.
const recordVersion = 1

// MaxRecordSize bounds a single record's payload. A transition record
// is ~10 bytes of header plus ~1-5 bytes per fault, so this admits
// fault sets far beyond any real spare budget while keeping a corrupt
// length prefix from asking the reader to allocate gigabytes.
const MaxRecordSize = 16 << 20

// AppendRecord appends the canonical payload encoding of rec to dst
// and returns the extended slice. It is the inverse of DecodeRecord:
// for every rec AppendRecord accepts, DecodeRecord(AppendRecord(nil,
// rec)) returns an equal record, and for every payload DecodeRecord
// accepts, AppendRecord reproduces it byte for byte (the encoding is
// canonical: minimal uvarints, strictly ascending delta-coded faults).
func AppendRecord(dst []byte, rec Record) ([]byte, error) {
	if err := rec.validate(); err != nil {
		return nil, err
	}
	dst = append(dst, recordVersion, byte(rec.Op))
	dst = appendString(dst, rec.ID)
	switch rec.Op {
	case OpCreate:
		dst = appendSpec(dst, rec.Spec)
	case OpDelete:
	case OpTransition:
		dst = binary.AppendUvarint(dst, rec.Epoch)
		dst = binary.AppendUvarint(dst, uint64(rec.Applied))
		dst = appendFaults(dst, rec.Faults)
	case OpSeqBase:
		dst = binary.AppendUvarint(dst, rec.Seq)
		dst = binary.AppendUvarint(dst, rec.Term)
	case OpCheckpoint, OpMigrate:
		dst = appendSpec(dst, rec.Spec)
		dst = binary.AppendUvarint(dst, rec.Epoch)
		dst = appendFaults(dst, rec.Faults)
	case OpTermBump:
		dst = binary.AppendUvarint(dst, rec.Term)
	}
	return dst, nil
}

func appendSpec(dst []byte, spec Spec) []byte {
	dst = appendString(dst, spec.Kind)
	dst = binary.AppendUvarint(dst, uint64(spec.M))
	dst = binary.AppendUvarint(dst, uint64(spec.H))
	return binary.AppendUvarint(dst, uint64(spec.K))
}

func appendFaults(dst []byte, faults []int) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(faults)))
	prev := 0
	for i, f := range faults {
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(f))
		} else {
			dst = binary.AppendUvarint(dst, uint64(f-prev))
		}
		prev = f
	}
	return dst
}

func (rec Record) validate() error {
	if rec.ID == "" {
		return fmt.Errorf("journal: empty instance id")
	}
	switch rec.Op {
	case OpCreate:
		if rec.Spec.M < 0 || rec.Spec.H < 0 || rec.Spec.K < 0 {
			return fmt.Errorf("journal: negative spec field in %+v", rec.Spec)
		}
	case OpDelete:
	case OpTransition:
		if rec.Epoch == 0 {
			return fmt.Errorf("journal: transition epoch 0 (epoch 0 is creation)")
		}
		if rec.Applied < 1 {
			return fmt.Errorf("journal: transition applied %d < 1", rec.Applied)
		}
		return validateFaults(rec.Faults)
	case OpSeqBase:
		if rec.Seq == 0 {
			return fmt.Errorf("journal: seq base 0 (commit sequence numbers start at 1)")
		}
	case OpCheckpoint, OpMigrate:
		if rec.Spec.M < 0 || rec.Spec.H < 0 || rec.Spec.K < 0 {
			return fmt.Errorf("journal: negative spec field in %+v", rec.Spec)
		}
		return validateFaults(rec.Faults)
	case OpTermBump:
		if rec.Term == 0 {
			return fmt.Errorf("journal: term bump to 0 (terms start at 1)")
		}
	default:
		return fmt.Errorf("journal: unknown op %d", rec.Op)
	}
	return nil
}

func validateFaults(faults []int) error {
	for i, f := range faults {
		if f < 0 {
			return fmt.Errorf("journal: negative fault %d", f)
		}
		if i > 0 && f <= faults[i-1] {
			return fmt.Errorf("journal: fault set not strictly ascending at %d", f)
		}
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder is a strict cursor over a record payload. Every read is
// bounds-checked and every uvarint must be minimally encoded, so the
// accepted language is exactly the canonical encodings — the property
// FuzzJournalDecode leans on.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("journal: truncated or overlong uvarint at offset %d", d.off)
	}
	// Reject non-minimal encodings (e.g. 0x80 0x00 for zero): the last
	// byte of a minimal multi-byte uvarint is never zero.
	if n > 1 && d.b[d.off+n-1] == 0 {
		return 0, fmt.Errorf("journal: non-minimal uvarint at offset %d", d.off)
	}
	d.off += n
	return v, nil
}

// intVal reads a uvarint that must fit a non-negative int.
func (d *decoder) intVal() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > math.MaxInt {
		return 0, fmt.Errorf("journal: value %d overflows int", v)
	}
	return int(v), nil
}

// spec reads the four-field topology spec (kind, m, h, k).
func (d *decoder) spec() (Spec, error) {
	var spec Spec
	var err error
	if spec.Kind, err = d.str(); err != nil {
		return Spec{}, err
	}
	if spec.M, err = d.intVal(); err != nil {
		return Spec{}, err
	}
	if spec.H, err = d.intVal(); err != nil {
		return Spec{}, err
	}
	if spec.K, err = d.intVal(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// faults reads a delta-coded strictly-ascending fault set.
func (d *decoder) faults() ([]int, error) {
	k, err := d.intVal()
	if err != nil {
		return nil, err
	}
	// Each fault costs at least one byte, so a count beyond the
	// remaining payload is corrupt — checked before allocating.
	if k > len(d.b)-d.off {
		return nil, fmt.Errorf("journal: fault count %d exceeds %d remaining bytes", k, len(d.b)-d.off)
	}
	if k == 0 {
		return nil, nil
	}
	faults := make([]int, k)
	prev := 0
	for i := range faults {
		v, err := d.intVal()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			faults[i] = v
		} else {
			if v == 0 {
				return nil, fmt.Errorf("journal: zero fault delta (duplicate fault)")
			}
			if v > math.MaxInt-prev {
				return nil, fmt.Errorf("journal: fault delta %d overflows", v)
			}
			faults[i] = prev + v
		}
		prev = faults[i]
	}
	return faults, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.intVal()
	if err != nil {
		return "", err
	}
	if n > len(d.b)-d.off {
		return "", fmt.Errorf("journal: string length %d exceeds %d remaining bytes", n, len(d.b)-d.off)
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

// DecodeRecord parses one canonical record payload (the framed body,
// without the length/CRC header). It never panics on arbitrary input;
// any deviation from the canonical encoding — unknown version or op,
// non-minimal uvarint, non-ascending fault set, trailing bytes — is an
// error.
func DecodeRecord(b []byte) (Record, error) {
	d := &decoder{b: b}
	if len(b) < 2 {
		return Record{}, fmt.Errorf("journal: payload of %d bytes is shorter than the version+op header", len(b))
	}
	if b[0] != recordVersion {
		return Record{}, fmt.Errorf("journal: unknown record version %d", b[0])
	}
	rec := Record{Op: Op(b[1])}
	d.off = 2
	var err error
	if rec.ID, err = d.str(); err != nil {
		return Record{}, err
	}
	if rec.ID == "" {
		return Record{}, fmt.Errorf("journal: empty instance id")
	}
	switch rec.Op {
	case OpCreate:
		if rec.Spec, err = d.spec(); err != nil {
			return Record{}, err
		}
	case OpDelete:
	case OpTransition:
		if rec.Epoch, err = d.uvarint(); err != nil {
			return Record{}, err
		}
		if rec.Epoch == 0 {
			return Record{}, fmt.Errorf("journal: transition epoch 0")
		}
		if rec.Applied, err = d.intVal(); err != nil {
			return Record{}, err
		}
		if rec.Applied < 1 {
			return Record{}, fmt.Errorf("journal: transition applied %d < 1", rec.Applied)
		}
		if rec.Faults, err = d.faults(); err != nil {
			return Record{}, err
		}
	case OpSeqBase:
		if rec.Seq, err = d.uvarint(); err != nil {
			return Record{}, err
		}
		if rec.Seq == 0 {
			return Record{}, fmt.Errorf("journal: seq base 0")
		}
		if rec.Term, err = d.uvarint(); err != nil {
			return Record{}, err
		}
	case OpCheckpoint, OpMigrate:
		if rec.Spec, err = d.spec(); err != nil {
			return Record{}, err
		}
		if rec.Epoch, err = d.uvarint(); err != nil {
			return Record{}, err
		}
		if rec.Faults, err = d.faults(); err != nil {
			return Record{}, err
		}
	case OpTermBump:
		if rec.Term, err = d.uvarint(); err != nil {
			return Record{}, err
		}
		if rec.Term == 0 {
			return Record{}, fmt.Errorf("journal: term bump to 0")
		}
	default:
		return Record{}, fmt.Errorf("journal: unknown op %d", b[1])
	}
	if d.off != len(b) {
		return Record{}, fmt.Errorf("journal: %d trailing bytes after record", len(b)-d.off)
	}
	return rec, nil
}
