// Package debruijn constructs base-m de Bruijn graphs B_{m,h}, the
// target topologies of the paper's fault-tolerant constructions.
//
// Two equivalent definitions are provided and cross-checked in tests:
//
//   - the digit definition: node [x_{h-1},...,x_0]_m connects to
//     [x_{h-2},...,x_0,r]_m and [r,x_{h-1},...,x_1]_m for all digits r;
//   - the arithmetic definition the paper builds on: (x,y) is an edge
//     iff there is r in {0..m-1} with y = X(x,m,r,m^h) or
//     x = X(y,m,r,m^h), where X(z,m,r,s) = (zm+r) mod s.
//
// Per the paper's convention, self-loops (e.g. node 0 and node m^h - 1)
// are dropped, so those nodes have smaller degree; the graph degree is
// at most 2m.
package debruijn

import (
	"fmt"

	"ftnet/internal/graph"
	"ftnet/internal/num"
)

// Params identifies a de Bruijn graph B_{m,h}.
type Params struct {
	M int // base (alphabet size), >= 2
	H int // number of digits, >= 1
}

// Validate reports whether the parameters identify a constructible graph.
func (p Params) Validate() error {
	if p.M < 2 {
		return fmt.Errorf("debruijn: base m=%d must be >= 2", p.M)
	}
	if p.H < 1 {
		return fmt.Errorf("debruijn: digits h=%d must be >= 1", p.H)
	}
	if _, err := num.IPow(p.M, p.H); err != nil {
		return fmt.Errorf("debruijn: graph too large: %v", err)
	}
	return nil
}

// N returns the node count m^h.
func (p Params) N() int { return num.MustIPow(p.M, p.H) }

// String returns the paper's notation for the graph.
func (p Params) String() string { return fmt.Sprintf("B_{%d,%d}", p.M, p.H) }

// New builds B_{m,h} using the arithmetic (X function) definition.
func New(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		for r := 0; r < p.M; r++ {
			b.AddEdge(x, num.X(x, p.M, r, n)) // self-loops dropped by builder
		}
	}
	return b.Build(), nil
}

// MustNew is New that panics on error; for use with compile-time-safe
// parameters.
func MustNew(p Params) *graph.Graph {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

// NewDigitDefinition builds B_{m,h} from the digit-shift definition.
// It exists to validate the equivalence the paper asserts ("It is easily
// verified that this definition ... is equivalent"); library users
// should call New.
func NewDigitDefinition(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.N()
	b := graph.NewBuilder(n)
	for x := 0; x < n; x++ {
		d := num.MustToDigits(x, p.M, p.H)
		for r := 0; r < p.M; r++ {
			b.AddEdge(x, d.ShiftLeftIn(r).Value())
			b.AddEdge(x, d.ShiftRightIn(r).Value())
		}
	}
	return b.Build(), nil
}

// ApplyLabels sets each node's display label to its h-digit base-m
// representation, matching the paper's figures.
func ApplyLabels(g *graph.Graph, p Params) {
	for x := 0; x < g.N(); x++ {
		d := num.MustToDigits(x, p.M, p.H)
		s := ""
		for _, v := range d.D {
			if p.M <= 10 {
				s += fmt.Sprintf("%d", v)
			} else {
				s += fmt.Sprintf("%d.", v)
			}
		}
		g.SetLabel(x, s)
	}
}

// OutNeighbors returns the "successor" endpoints X(x,m,r,m^h) for
// r = 0..m-1, excluding x itself. These are the nodes reached by
// shifting in a new low digit — the direction used by routing.
func OutNeighbors(x int, p Params) []int {
	n := p.N()
	out := make([]int, 0, p.M)
	for r := 0; r < p.M; r++ {
		y := num.X(x, p.M, r, n)
		if y != x {
			out = append(out, y)
		}
	}
	return out
}

// InNeighbors returns the "predecessor" endpoints: nodes y with
// x = X(y,m,r,m^h) for some r, excluding x itself.
func InNeighbors(x int, p Params) []int {
	d := num.MustToDigits(x, p.M, p.H)
	out := make([]int, 0, p.M)
	for r := 0; r < p.M; r++ {
		y := d.ShiftRightIn(r).Value()
		if y != x {
			out = append(out, y)
		}
	}
	return out
}
