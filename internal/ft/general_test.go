package ft

import (
	"math/rand"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func exhaustiveGeneralCheck(t *testing.T, p GeneralParams) {
	t.Helper()
	target, err := NewTarget(p)
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewGeneral(p)
	if err != nil {
		t.Fatal(err)
	}
	nHost := p.N + p.K
	faults := make([]int, p.K)
	num.Combinations(nHost, p.K, func(subset []int) bool {
		copy(faults, subset)
		m, err := NewMapping(p.N, nHost, faults)
		if err != nil {
			t.Fatalf("%+v faults=%v: %v", p, faults, err)
		}
		if err := graph.CheckEmbedding(target, host, m.PhiSlice()); err != nil {
			t.Fatalf("%+v faults=%v: %v", p, faults, err)
		}
		return true
	})
}

func TestGeneralRingIsHayesConstruction(t *testing.T) {
	// Hayes's classic: FT ring C_N with k spares has each node linked to
	// its k+1 cyclic successors, degree 2k+2 — and tolerates any k
	// faults. Verify structure and tolerance exhaustively.
	for _, c := range []struct{ n, k int }{{8, 1}, {8, 2}, {10, 3}, {12, 2}} {
		p := Ring(c.n, c.k)
		host, err := NewGeneral(p)
		if err != nil {
			t.Fatal(err)
		}
		if host.N() != c.n+c.k {
			t.Fatalf("ring host size %d", host.N())
		}
		if host.MaxDegree() > 2*c.k+2 {
			t.Errorf("n=%d k=%d: FT ring degree %d > 2k+2 = %d", c.n, c.k, host.MaxDegree(), 2*c.k+2)
		}
		// Structure: node x links to x+1 .. x+k+1 (mod n+k).
		s := c.n + c.k
		for x := 0; x < s; x++ {
			for d := 1; d <= c.k+1; d++ {
				y := (x + d) % s
				if y != x && !host.HasEdge(x, y) {
					t.Fatalf("FT ring missing edge (%d,%d)", x, y)
				}
			}
		}
		exhaustiveGeneralCheck(t, p)
	}
}

func TestGeneralChordalRing(t *testing.T) {
	for _, c := range []struct{ n, chord, k int }{{10, 3, 1}, {12, 5, 2}} {
		p := ChordalRing(c.n, c.chord, c.k)
		exhaustiveGeneralCheck(t, p)
	}
}

func TestGeneralSubsumesDeBruijn(t *testing.T) {
	// With the full digit set the general construction must equal the
	// paper's B^k_{m,h} exactly.
	for _, c := range []struct{ m, h, k int }{{2, 3, 2}, {2, 4, 1}, {3, 3, 1}} {
		dbp := Params{M: c.m, H: c.h, K: c.k}
		gp := GeneralParams{M: c.m, N: dbp.NTarget(), R: fullDigits(c.m), K: c.k}
		hostG, err := NewGeneral(gp)
		if err != nil {
			t.Fatal(err)
		}
		if !hostG.Equal(MustNew(dbp)) {
			t.Errorf("general(%+v) != %v", gp, dbp)
		}
		tgtG, err := NewTarget(gp)
		if err != nil {
			t.Fatal(err)
		}
		if !tgtG.Equal(debruijn.MustNew(dbp.Target())) {
			t.Errorf("general target != B_{%d,%d}", c.m, c.h)
		}
	}
}

func fullDigits(m int) []int {
	r := make([]int, m)
	for i := range r {
		r[i] = i
	}
	return r
}

func TestGeneralPartialDigitSet(t *testing.T) {
	// A de Bruijn-like rule with a sparse digit set (every node has out-
	// edges only for r in {0, 2}), conservative s-range. Exhaustive.
	p := GeneralParams{M: 3, N: 27, R: []int{0, 2}, K: 1}
	exhaustiveGeneralCheck(t, p)
}

func TestGeneralRandomRules(t *testing.T) {
	// Randomized rules, exhaustive fault enumeration per rule.
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 12; trial++ {
		m := rng.Intn(3) + 1
		n := rng.Intn(12) + 6
		k := rng.Intn(3)
		nr := rng.Intn(2) + 1
		rset := map[int]bool{}
		for len(rset) < nr {
			rset[rng.Intn(n)] = true
		}
		var R []int
		for r := range rset {
			R = append(R, r)
		}
		p := GeneralParams{M: m, N: n, R: R, K: k}
		exhaustiveGeneralCheck(t, p)
	}
}

func TestGeneralValidate(t *testing.T) {
	bad := []GeneralParams{
		{M: 0, N: 8, R: []int{1}, K: 1},
		{M: 1, N: 1, R: []int{0}, K: 1},
		{M: 1, N: 8, R: nil, K: 1},
		{M: 1, N: 8, R: []int{8}, K: 1},
		{M: 1, N: 8, R: []int{1}, K: -1},
	}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("%+v should be invalid", p)
		}
	}
}

func TestSRangeCases(t *testing.T) {
	// m=1 ring: [1, 1+k].
	if lo, hi := Ring(8, 3).SRange(); lo != 1 || hi != 4 {
		t.Errorf("ring SRange = [%d,%d]", lo, hi)
	}
	// Full digit set: paper's range.
	p := GeneralParams{M: 3, N: 27, R: []int{0, 1, 2}, K: 2}
	if lo, hi := p.SRange(); lo != -4 || hi != 6 {
		t.Errorf("full set SRange = [%d,%d]", lo, hi)
	}
	// Sparse set: conservative.
	p2 := GeneralParams{M: 3, N: 27, R: []int{1}, K: 2}
	lo, hi := p2.SRange()
	if lo != 1-6 || hi != 1+8 {
		t.Errorf("sparse SRange = [%d,%d]", lo, hi)
	}
}

func TestGeneralDegreeRing(t *testing.T) {
	// Degree table for FT rings: 2k+2 exactly (every node has k+1
	// successors and k+1 predecessors).
	for k := 0; k <= 5; k++ {
		host, err := NewGeneral(Ring(16, k))
		if err != nil {
			t.Fatal(err)
		}
		if host.MaxDegree() != 2*k+2 {
			t.Errorf("k=%d: FT ring degree %d, want %d", k, host.MaxDegree(), 2*k+2)
		}
	}
}
