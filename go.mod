module ftnet

go 1.24
