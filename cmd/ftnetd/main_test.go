package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ftnet/internal/fleet"
	"ftnet/internal/ft"
)

func newTestDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(fleet.NewManager(fleet.Options{})))
	t.Cleanup(ts.Close)
	return ts
}

func do(t *testing.T, method, url string, body any, wantCode int, out any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantCode {
		t.Fatalf("%s %s = %d, want %d (body %s)", method, url, resp.StatusCode, wantCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
}

// TestDaemonEndToEnd exercises the full create -> fault -> lookup ->
// repair cycle over HTTP and cross-checks every answer against the
// library's one-shot reconfiguration.
func TestDaemonEndToEnd(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL

	// Create a B^2_{2,4} instance.
	var info fleet.InstanceInfo
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 2}},
		http.StatusCreated, &info)
	if info.NHost != 18 || info.SparesFree != 2 {
		t.Fatalf("unexpected instance info %+v", info)
	}

	// Fault nodes 3 and 11.
	var res fleet.EventResult
	for i, n := range []int{3, 11} {
		do(t, "POST", base+"/v1/instances/prod/events",
			fleet.Event{Kind: fleet.EventFault, Node: n}, http.StatusOK, &res)
		if res.NumFaults != i+1 {
			t.Fatalf("event %d: %+v", i, res)
		}
	}

	// Every lookup must match ft.NewMapping.
	want, err := ft.NewMapping(16, 18, []int{3, 11})
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < 16; x++ {
		var pr struct{ X, Phi int }
		do(t, "GET", fmt.Sprintf("%s/v1/instances/prod/phi?x=%d", base, x), nil, http.StatusOK, &pr)
		if pr.Phi != want.Phi(x) {
			t.Fatalf("phi(%d) = %d, want %d", x, pr.Phi, want.Phi(x))
		}
	}

	// The full slice agrees too.
	var full struct{ Phi []int }
	do(t, "GET", base+"/v1/instances/prod/phi", nil, http.StatusOK, &full)
	for x, phi := range full.Phi {
		if phi != want.Phi(x) {
			t.Fatalf("slice phi(%d) = %d, want %d", x, phi, want.Phi(x))
		}
	}

	// Repair node 3: back to the single-fault mapping.
	do(t, "POST", base+"/v1/instances/prod/events",
		fleet.Event{Kind: fleet.EventRepair, Node: 3}, http.StatusOK, &res)
	if res.NumFaults != 1 {
		t.Fatalf("after repair: %+v", res)
	}
	want, _ = ft.NewMapping(16, 18, []int{11})
	var pr struct{ X, Phi int }
	do(t, "GET", base+"/v1/instances/prod/phi?x=11", nil, http.StatusOK, &pr)
	if pr.Phi != want.Phi(11) {
		t.Fatalf("after repair phi(11) = %d, want %d", pr.Phi, want.Phi(11))
	}

	// Instance snapshot and listing.
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusOK, &info)
	if info.Epoch != 3 || len(info.Faults) != 1 || info.Faults[0] != 11 {
		t.Fatalf("snapshot %+v", info)
	}
	var list struct{ Instances []string }
	do(t, "GET", base+"/v1/instances", nil, http.StatusOK, &list)
	if len(list.Instances) != 1 || list.Instances[0] != "prod" {
		t.Fatalf("list %+v", list)
	}

	// Stats and health.
	var st fleet.Stats
	do(t, "GET", base+"/v1/stats", nil, http.StatusOK, &st)
	if st.Instances != 1 || st.Events != 3 || st.Lookups == 0 {
		t.Fatalf("stats %+v", st)
	}
	do(t, "GET", base+"/healthz", nil, http.StatusOK, nil)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"ftnet_instances 1", "ftnet_events_total 3", "ftnet_lookups_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Delete.
	do(t, "DELETE", base+"/v1/instances/prod", nil, http.StatusNoContent, nil)
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusNotFound, nil)
}

// TestDaemonShufflePhiSlice pins that the bulk phi endpoint agrees
// with single lookups for shuffle instances (the slice must be indexed
// by SE target node, composing psi).
func TestDaemonShufflePhiSlice(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "se", "spec": fleet.Spec{Kind: fleet.KindShuffle, H: 4, K: 2}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances/se/events",
		fleet.Event{Kind: fleet.EventFault, Node: 2}, http.StatusOK, nil)

	var full struct{ Phi []int }
	do(t, "GET", base+"/v1/instances/se/phi", nil, http.StatusOK, &full)
	if len(full.Phi) != 16 {
		t.Fatalf("slice length %d, want 16", len(full.Phi))
	}
	for x, want := range full.Phi {
		var pr struct{ X, Phi int }
		do(t, "GET", fmt.Sprintf("%s/v1/instances/se/phi?x=%d", base, x), nil, http.StatusOK, &pr)
		if pr.Phi != want {
			t.Fatalf("phi?x=%d = %d but slice[%d] = %d", x, pr.Phi, x, want)
		}
	}
}

// TestDaemonEventBatch drives the events:batch endpoint end to end:
// an atomic burst advances the epoch exactly once, a partially-invalid
// burst changes nothing, and /v1/stats reports the rejection causes
// and the per-shard cache breakdown.
func TestDaemonEventBatch(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "prod", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 3}},
		http.StatusCreated, nil)

	// A three-fault burst: one transition, epoch 1.
	var res fleet.EventResult
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventFault, Node: 3},
			{Kind: fleet.EventFault, Node: 11},
			{Kind: fleet.EventFault, Node: 7},
		}}, http.StatusOK, &res)
	if res.Epoch != 1 || res.NumFaults != 3 || res.Applied != 3 {
		t.Fatalf("burst result %+v", res)
	}
	want, err := ft.NewMapping(16, 19, []int{3, 7, 11})
	if err != nil {
		t.Fatal(err)
	}
	var pr struct{ X, Phi int }
	do(t, "GET", base+"/v1/instances/prod/phi?x=5", nil, http.StatusOK, &pr)
	if pr.Phi != want.Phi(5) {
		t.Fatalf("phi(5) = %d, want %d", pr.Phi, want.Phi(5))
	}

	// A burst that would exceed the budget rejects whole: 409, no change.
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{
			{Kind: fleet.EventRepair, Node: 3},
			{Kind: fleet.EventFault, Node: 0},
			{Kind: fleet.EventFault, Node: 1},
			{Kind: fleet.EventFault, Node: 2},
		}}, http.StatusConflict, nil)
	var info fleet.InstanceInfo
	do(t, "GET", base+"/v1/instances/prod", nil, http.StatusOK, &info)
	if info.Epoch != 1 || len(info.Faults) != 3 {
		t.Fatalf("rejected burst changed state: %+v", info)
	}

	// Empty and malformed batches are 400.
	do(t, "POST", base+"/v1/instances/prod/events:batch",
		fleet.BatchRequest{}, http.StatusBadRequest, nil)
	// Unknown instance is 404.
	do(t, "POST", base+"/v1/instances/ghost/events:batch",
		fleet.BatchRequest{Events: []fleet.Event{{Kind: fleet.EventFault, Node: 0}}},
		http.StatusNotFound, nil)

	// Stats carry the batch counter, the rejection causes, and the
	// per-shard cache breakdown.
	var st fleet.Stats
	do(t, "GET", base+"/v1/stats", nil, http.StatusOK, &st)
	if st.Batches != 1 || st.Events != 3 {
		t.Errorf("batches/events = %d/%d, want 1/3", st.Batches, st.Events)
	}
	if st.RejectedBy.Budget != 1 || st.Rejected != 1 {
		t.Errorf("rejected = %d by %+v, want budget 1", st.Rejected, st.RejectedBy)
	}
	if len(st.Cache.Shards) == 0 {
		t.Errorf("stats missing per-shard cache breakdown: %+v", st.Cache)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ftnet_event_batches_total 1",
		`ftnet_events_rejected_by_cause_total{cause="budget"} 1`,
		`ftnet_cache_shard_size{shard="0"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDaemonErrorPaths(t *testing.T) {
	ts := newTestDaemon(t)
	base := ts.URL

	// Malformed body / bad spec.
	req, _ := http.NewRequest("POST", base+"/v1/instances", strings.NewReader("{"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed create = %d, want 400", resp.StatusCode)
	}
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: "torus", H: 4}},
		http.StatusBadRequest, nil)

	// Unknown instance everywhere.
	do(t, "GET", base+"/v1/instances/ghost", nil, http.StatusNotFound, nil)
	do(t, "GET", base+"/v1/instances/ghost/phi?x=0", nil, http.StatusNotFound, nil)
	do(t, "POST", base+"/v1/instances/ghost/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusNotFound, nil)
	do(t, "DELETE", base+"/v1/instances/ghost", nil, http.StatusNotFound, nil)

	// Budget exhaustion is a conflict, duplicate create too.
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 1}},
		http.StatusCreated, nil)
	do(t, "POST", base+"/v1/instances",
		map[string]any{"id": "x", "spec": fleet.Spec{Kind: fleet.KindDeBruijn, M: 2, H: 4, K: 1}},
		http.StatusConflict, nil)
	do(t, "POST", base+"/v1/instances/x/events",
		fleet.Event{Kind: fleet.EventFault, Node: 0}, http.StatusOK, nil)
	do(t, "POST", base+"/v1/instances/x/events",
		fleet.Event{Kind: fleet.EventFault, Node: 1}, http.StatusConflict, nil)

	// Bad lookup arguments.
	do(t, "GET", base+"/v1/instances/x/phi?x=abc", nil, http.StatusBadRequest, nil)
	do(t, "GET", base+"/v1/instances/x/phi?x=99", nil, http.StatusBadRequest, nil)
}
