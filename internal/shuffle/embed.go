package shuffle

import (
	"fmt"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
)

// EmbedIntoDeBruijn computes an explicit embedding of SE_h into the
// base-2 de Bruijn graph B_{2,h} of the same size, the relationship the
// paper (citing Feldmann–Unger style results, ref [7]) uses to obtain a
// degree-(4k+4) fault-tolerant shuffle-exchange network.
//
// The embedding phi maps SE node x to dB node phi[x] such that every
// exchange and shuffle edge of SE_h lands on a de Bruijn edge. The
// result is verified before it is returned; callers can trust it
// unconditionally.
//
// The search is exact backtracking (graph.FindEmbedding) seeded with the
// observation that all shuffle edges already are de Bruijn edges under
// the identity labeling, so the search effort goes into repairing the
// exchange edges. Known embeddings for small h are cached.
func EmbedIntoDeBruijn(h int) ([]int, error) {
	p := Params{H: h}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	se := MustNew(p)
	db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
	if phi, ok := cachedEmbedding(h); ok {
		if err := graph.CheckEmbedding(se, db, phi); err != nil {
			return nil, fmt.Errorf("shuffle: cached embedding for h=%d is invalid: %v", h, err)
		}
		return phi, nil
	}
	// The necklace-rotation CSP solves all practical sizes near-instantly;
	// the generic VF2-style search remains as a fallback in case some h
	// admits no rotation-form embedding.
	if phi, ok := necklaceRotationEmbedding(h); ok {
		return phi, nil
	}
	phi, err := graph.FindEmbedding(se, db, graph.EmbedOptions{})
	if err != nil {
		return nil, fmt.Errorf("shuffle: embedding SE_%d into B_{2,%d}: %w", h, h, err)
	}
	if err := graph.CheckEmbedding(se, db, phi); err != nil {
		return nil, fmt.Errorf("shuffle: internal error, unverified embedding: %v", err)
	}
	return phi, nil
}

// cachedEmbedding returns a precomputed embedding of SE_h into B_{2,h}
// for small h. The tables were produced by the exact search in this
// package and are re-verified on every use.
func cachedEmbedding(h int) ([]int, bool) {
	switch h {
	case 1:
		// SE_1: single exchange edge (0,1); B_{2,1} has edge (0,1).
		return []int{0, 1}, true
	}
	return nil, false
}
