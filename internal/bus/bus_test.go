package bus

import (
	"math/rand"
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/ft"
	"ftnet/internal/graph"
	"ftnet/internal/num"
)

func TestBusDegreeBound2k3(t *testing.T) {
	// Section V: base-2 bus architecture has bus-degree at most 2k+3.
	for h := 3; h <= 8; h++ {
		for k := 0; k <= 6; k++ {
			a := MustNew(ft.Params{M: 2, H: h, K: k})
			if d := a.MaxBusDegree(); d > 2*k+3 {
				t.Errorf("h=%d k=%d: bus degree %d > 2k+3 = %d", h, k, d, 2*k+3)
			}
			if a.DegreeBound() != 2*k+3 {
				t.Errorf("h=%d k=%d: DegreeBound = %d", h, k, a.DegreeBound())
			}
		}
	}
}

func TestBusDegreeBoundBaseM(t *testing.T) {
	for _, m := range []int{3, 4} {
		for k := 0; k <= 3; k++ {
			p := ft.Params{M: m, H: 3, K: k}
			a := MustNew(p)
			if d := a.MaxBusDegree(); d > a.DegreeBound() {
				t.Errorf("m=%d k=%d: bus degree %d > bound %d", m, k, d, a.DegreeBound())
			}
		}
	}
}

func TestConnectivityEqualsFTGraph(t *testing.T) {
	// The buses realize exactly the point-to-point fault-tolerant graph.
	for _, p := range []ft.Params{
		{M: 2, H: 3, K: 1}, {M: 2, H: 4, K: 2}, {M: 3, H: 3, K: 1}, {M: 2, H: 5, K: 3},
	} {
		a := MustNew(p)
		if !a.ConnectivityGraph().Equal(ft.MustNew(p)) {
			t.Errorf("%v: bus connectivity != B^k_{m,h}", p)
		}
	}
}

func TestMembersAreOutBlocks(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 1}
	a := MustNew(p)
	if a.NumBuses() != p.NHost() {
		t.Fatalf("buses = %d", a.NumBuses())
	}
	for i := 0; i < a.NumBuses(); i++ {
		want := ft.OutBlock(i, p)
		got := a.Members(i)
		if len(got) != len(want) {
			t.Fatalf("bus %d: %v want %v", i, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("bus %d: %v want %v", i, got, want)
			}
		}
	}
}

func TestBusesAtConsistent(t *testing.T) {
	p := ft.Params{M: 2, H: 4, K: 2}
	a := MustNew(p)
	for v := 0; v < p.NHost(); v++ {
		for _, owner := range a.BusesAt(v) {
			found := false
			for _, u := range a.Members(owner) {
				if u == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d listed on bus %d but not a member", v, owner)
			}
		}
	}
}

func TestFig4B123BusExample(t *testing.T) {
	// Fig. 4: B^1_{2,3} with buses — 9 nodes, bus of node i covers the
	// 4 consecutive nodes from (2i-1) mod 9.
	p := ft.Params{M: 2, H: 3, K: 1}
	a := MustNew(p)
	if a.NumBuses() != 9 {
		t.Fatalf("buses = %d", a.NumBuses())
	}
	for i := 0; i < 9; i++ {
		m := a.Members(i)
		if len(m) != 4 {
			t.Fatalf("bus %d size %d", i, len(m))
		}
		start := num.Mod(2*i-1, 9)
		for j, v := range m {
			if v != num.Mod(start+j, 9) {
				t.Errorf("bus %d = %v, want block from %d", i, m, start)
				break
			}
		}
	}
	if a.MaxBusDegree() > 5 {
		t.Errorf("bus degree %d > 2k+3 = 5", a.MaxBusDegree())
	}
}

func TestFaultSetMergesBusAndNodeFaults(t *testing.T) {
	a := MustNew(ft.Params{M: 2, H: 3, K: 2})
	fs, err := a.FaultSet([]int{4}, []int{7})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0] != 4 || fs[1] != 7 {
		t.Errorf("FaultSet = %v", fs)
	}
	// Duplicate node+bus fault collapses.
	fs, err = a.FaultSet([]int{4}, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Errorf("FaultSet = %v", fs)
	}
	if _, err := a.FaultSet(nil, []int{99}); err == nil {
		t.Error("bad bus id accepted")
	}
	if _, err := a.FaultSet([]int{-1}, nil); err == nil {
		t.Error("bad node id accepted")
	}
}

func TestReconfigureWithBusFault(t *testing.T) {
	// Fig. 5: reconfiguration after one fault in the bus architecture.
	p := ft.Params{M: 2, H: 3, K: 1}
	a := MustNew(p)
	target := debruijn.MustNew(p.Target())
	host := ft.MustNew(p)
	// A single bus fault (bus 3) means node 3 is treated as faulty.
	mp, err := a.Reconfigure(nil, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if !mp.IsFaulty(3) {
		t.Error("bus owner not marked faulty")
	}
	if err := graph.CheckEmbedding(target, host, mp.PhiSlice()); err != nil {
		t.Fatal(err)
	}
}

func TestReconfigureBudgetExceeded(t *testing.T) {
	a := MustNew(ft.Params{M: 2, H: 3, K: 1})
	if _, err := a.Reconfigure([]int{1}, []int{5}); err == nil {
		t.Error("two implied faults with k=1 should fail")
	}
	// But node fault + same-owner bus fault is only one implied fault.
	if _, err := a.Reconfigure([]int{5}, []int{5}); err != nil {
		t.Errorf("coincident faults should be fine: %v", err)
	}
}

func TestEdgeBusCoversAllTargetEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, p := range []ft.Params{
		{M: 2, H: 3, K: 1}, {M: 2, H: 4, K: 2}, {M: 3, H: 3, K: 1},
	} {
		a := MustNew(p)
		for trial := 0; trial < 10; trial++ {
			faults := num.RandomSubset(rng, p.NHost(), p.K)
			mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				t.Fatal(err)
			}
			n := p.NTarget()
			for x := 0; x < n; x++ {
				for r := 0; r < p.M; r++ {
					y := num.X(x, p.M, r, n)
					if y == x {
						continue
					}
					owner, err := a.EdgeBus(mp, x, y, r)
					if err != nil {
						t.Fatalf("%v edge (%d,%d): %v", p, x, y, err)
					}
					if owner != mp.Phi(x) {
						t.Fatalf("edge (%d,%d): bus %d, want phi(x)=%d", x, y, owner, mp.Phi(x))
					}
				}
			}
		}
	}
}

func TestEdgeBusRejectsNonEdge(t *testing.T) {
	p := ft.Params{M: 2, H: 3, K: 1}
	a := MustNew(p)
	mp, _ := ft.NewMapping(p.NTarget(), p.NHost(), nil)
	if _, err := a.EdgeBus(mp, 0, 5, 0); err == nil {
		t.Error("non-edge accepted")
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := New(ft.Params{M: 1, H: 3, K: 0}); err == nil {
		t.Error("invalid params accepted")
	}
}
