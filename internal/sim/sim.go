// Package sim is a cycle-level synchronous simulator for message-passing
// machines built on the repository's topologies. It stands in for the
// physical parallel computers the paper targets (Section I's
// motivation, Section V's bus-slowdown argument): nodes inject a
// bounded number of values per cycle, each point-to-point link carries
// one value per cycle per direction, and each bus carries one value per
// cycle in total.
//
// The simulator is deliberately simple and deterministic (lowest message
// id wins arbitration) so experiments are exactly reproducible.
package sim

import (
	"fmt"

	"ftnet/internal/graph"
)

// Mode selects the interconnect style.
type Mode int

const (
	// PointToPoint: every undirected edge of the graph is two directed
	// links, one value per cycle each.
	PointToPoint Mode = iota
	// BusMode: transfers are serialized per bus; BusFor assigns each
	// directed hop to a bus.
	BusMode
)

// Machine describes the simulated hardware.
type Machine struct {
	G     *graph.Graph
	Dead  []bool // len G.N(); dead nodes drop traffic
	Ports int    // values a node may inject per cycle (the paper contrasts 1 vs 2)
	Mode  Mode
	// BusFor maps a directed hop (u -> v) to the bus that carries it.
	// Required in BusMode.
	BusFor func(u, v int) (int, error)
}

// NewPointToPoint builds a healthy point-to-point machine on g.
func NewPointToPoint(g *graph.Graph, ports int) *Machine {
	return &Machine{G: g, Dead: make([]bool, g.N()), Ports: ports, Mode: PointToPoint}
}

// Kill marks nodes dead.
func (m *Machine) Kill(nodes ...int) {
	for _, v := range nodes {
		m.Dead[v] = true
	}
}

// Message is a routed unit of traffic. Route is the full node sequence
// (source first); the simulator moves it one hop at a time.
type Message struct {
	ID    int
	Route []int

	pos       int
	delivered bool
	dropped   bool
	// DeliveredAt is the cycle the message reached its destination
	// (meaningful when Delivered() is true).
	DeliveredAt int
}

// Delivered reports whether the message reached the end of its route.
func (msg *Message) Delivered() bool { return msg.delivered }

// Dropped reports whether the message was discarded (dead node on its
// path).
func (msg *Message) Dropped() bool { return msg.dropped }

// At returns the node currently holding the message.
func (msg *Message) At() int { return msg.Route[msg.pos] }

// Stats summarizes a simulation run.
type Stats struct {
	Cycles    int  // cycles executed
	Delivered int  // messages that reached their destination
	Dropped   int  // messages that hit a dead node
	TotalHops int  // sum of hops actually traversed
	Stalled   bool // true when maxCycles elapsed with traffic still pending
}

// String renders a one-line summary.
func (s Stats) String() string {
	return fmt.Sprintf("cycles=%d delivered=%d dropped=%d hops=%d stalled=%v",
		s.Cycles, s.Delivered, s.Dropped, s.TotalHops, s.Stalled)
}

type linkKey struct{ u, v int }

// Run executes the machine until all messages are delivered or dropped,
// or maxCycles elapse. It validates routes against the machine's graph
// before starting.
func Run(m *Machine, msgs []*Message, maxCycles int) (Stats, error) {
	if m.Ports < 1 {
		return Stats{}, fmt.Errorf("sim: ports=%d must be >= 1", m.Ports)
	}
	if m.Mode == BusMode && m.BusFor == nil {
		return Stats{}, fmt.Errorf("sim: BusMode requires BusFor")
	}
	if len(m.Dead) != m.G.N() {
		return Stats{}, fmt.Errorf("sim: Dead length %d != graph size %d", len(m.Dead), m.G.N())
	}
	for _, msg := range msgs {
		if len(msg.Route) == 0 {
			return Stats{}, fmt.Errorf("sim: message %d has empty route", msg.ID)
		}
		for i := 0; i+1 < len(msg.Route); i++ {
			if !m.G.HasEdge(msg.Route[i], msg.Route[i+1]) {
				return Stats{}, fmt.Errorf("sim: message %d route hop (%d,%d) is not a link",
					msg.ID, msg.Route[i], msg.Route[i+1])
			}
		}
	}

	var st Stats
	// Immediate handling of zero-hop messages and dead sources.
	pending := 0
	for _, msg := range msgs {
		switch {
		case m.Dead[msg.Route[0]]:
			msg.dropped = true
			st.Dropped++
		case len(msg.Route) == 1:
			msg.delivered = true
			st.Delivered++
		default:
			pending++
		}
	}

	sent := make(map[int]int)
	linkUsed := make(map[linkKey]bool)
	busUsed := make(map[int]bool)

	for st.Cycles = 0; pending > 0 && st.Cycles < maxCycles; st.Cycles++ {
		clear(sent)
		clear(linkUsed)
		clear(busUsed)
		moved := false
		for _, msg := range msgs {
			if msg.delivered || msg.dropped {
				continue
			}
			cur := msg.Route[msg.pos]
			next := msg.Route[msg.pos+1]
			if m.Dead[next] || m.Dead[cur] {
				msg.dropped = true
				st.Dropped++
				pending--
				continue
			}
			if sent[cur] >= m.Ports {
				continue // out of injection ports this cycle
			}
			if m.Mode == PointToPoint {
				lk := linkKey{cur, next}
				if linkUsed[lk] {
					continue // link busy
				}
				linkUsed[lk] = true
			} else {
				busID, err := m.BusFor(cur, next)
				if err != nil {
					return st, fmt.Errorf("sim: message %d hop (%d,%d): %w", msg.ID, cur, next, err)
				}
				if busUsed[busID] {
					continue // bus busy
				}
				busUsed[busID] = true
			}
			sent[cur]++
			msg.pos++
			st.TotalHops++
			moved = true
			if msg.pos == len(msg.Route)-1 {
				msg.delivered = true
				msg.DeliveredAt = st.Cycles + 1
				st.Delivered++
				pending--
			}
		}
		if !moved && pending > 0 {
			// Total gridlock cannot happen with per-cycle fresh arbitration
			// unless every pending message waits on a dead node pattern the
			// drop pass should have caught; treat as a stall.
			st.Stalled = true
			st.Cycles++
			return st, nil
		}
	}
	st.Stalled = pending > 0
	return st, nil
}
