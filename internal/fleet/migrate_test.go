package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ftnet/internal/journal"
	sharding "ftnet/internal/shard"
)

// shardPair is a two-daemon cluster in one process: managers a and b
// with real journals, real HTTP servers, and a shared two-member ring.
type shardPair struct {
	a, b     *Manager
	tsA, tsB *httptest.Server
	peers    map[string]string
}

func newShardManager(t *testing.T, dir string) *Manager {
	t.Helper()
	m := NewManager(Options{})
	path := filepath.Join(dir, "epochs.wal")
	if _, err := m.RecoverFile(path); err != nil {
		t.Fatal(err)
	}
	w, err := journal.Create(path, journal.Options{Sync: journal.SyncInterval, Interval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	m.SetJournal(w)
	t.Cleanup(func() { m.Close() })
	return m
}

// newShardPair boots the pair; the topology is NOT installed yet, so
// tests can create instances anywhere first (the pre-sharding world).
func newShardPair(t *testing.T) *shardPair {
	t.Helper()
	p := &shardPair{
		a: newShardManager(t, t.TempDir()),
		b: newShardManager(t, t.TempDir()),
	}
	p.tsA = httptest.NewServer(NewHTTPHandler(p.a))
	p.tsB = httptest.NewServer(NewHTTPHandler(p.b))
	t.Cleanup(p.tsA.Close)
	t.Cleanup(p.tsB.Close)
	p.peers = map[string]string{"a": p.tsA.URL, "b": p.tsB.URL}
	return p
}

func (p *shardPair) installTopology(t *testing.T) {
	t.Helper()
	p.a.SetTopology("a", p.peers, 0)
	p.b.SetTopology("b", p.peers, 0)
}

// idOwnedBy probes for an instance id the two-member ring assigns to
// the given member, so tests place instances deterministically.
func idOwnedBy(t *testing.T, member string) string {
	t.Helper()
	ring := sharding.New([]string{"a", "b"}, 0)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("inst-%d", i)
		if ring.Owner(id) == member {
			return id
		}
	}
	t.Fatalf("no probe id owned by %q", member)
	return ""
}

func phiSliceOf(t *testing.T, m *Manager, id string) []int {
	t.Helper()
	in, ok := m.Get(id)
	if !ok {
		t.Fatalf("no instance %q", id)
	}
	return in.PhiSlice()
}

func TestMigrateMovesInstanceBitIdentically(t *testing.T) {
	p := newShardPair(t)
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	stays, moves := idOwnedBy(t, "a"), idOwnedBy(t, "b")

	// Pre-sharding: both instances live on a, one of them with state.
	for _, id := range []string{stays, moves} {
		if _, err := p.a.Create(id, spec); err != nil {
			t.Fatal(err)
		}
	}
	for _, node := range []int{1, 5} {
		if _, err := p.a.Event(moves, Event{EventFault, node}); err != nil {
			t.Fatal(err)
		}
	}
	wantPhi := phiSliceOf(t, p.a, moves)

	p.installTopology(t)
	// The pin keeps the displaced instance fully served here until the
	// migration actually runs.
	if _, err := p.a.Lookup(moves, 0); err != nil {
		t.Fatalf("pinned instance unavailable pre-migration: %v", err)
	}
	if got := p.a.Displaced(); len(got) != 1 || got[0] != moves {
		t.Fatalf("Displaced = %v, want [%s]", got, moves)
	}

	stats, err := p.a.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].ID != moves || stats[0].Peer != "b" {
		t.Fatalf("rebalance stats = %+v", stats)
	}
	if stats[0].Epoch != 2 {
		t.Errorf("handoff epoch = %d, want 2", stats[0].Epoch)
	}

	// The new owner answers bit-identically; the old owner redirects.
	gotPhi := phiSliceOf(t, p.b, moves)
	if len(gotPhi) != len(wantPhi) {
		t.Fatalf("phi length %d != %d", len(gotPhi), len(wantPhi))
	}
	for x := range wantPhi {
		if gotPhi[x] != wantPhi[x] {
			t.Fatalf("phi[%d] = %d on new owner, want %d", x, gotPhi[x], wantPhi[x])
		}
	}
	if in, _ := p.b.Get(moves); in.Info().Epoch != 2 {
		t.Errorf("epoch on new owner = %d, want 2", in.Info().Epoch)
	}
	_, err = p.a.Lookup(moves, 0)
	if !errors.Is(err, ErrWrongShard) {
		t.Fatalf("old owner lookup err = %v, want ErrWrongShard", err)
	}
	if owner := WrongShardOwner(err); owner != p.tsB.URL {
		t.Errorf("redirect owner = %q, want %q", owner, p.tsB.URL)
	}
	if _, err := p.a.Lookup(stays, 0); err != nil {
		t.Errorf("non-displaced instance broken: %v", err)
	}
	if st := p.a.Stats(); st.Shard == nil || st.Shard.MigrationsOut != 1 {
		t.Errorf("source shard stats = %+v", st.Shard)
	}
	if st := p.b.Stats(); st.Shard == nil || st.Shard.MigrationsIn != 1 {
		t.Errorf("target shard stats = %+v", st.Shard)
	}

	// Durability on both sides: the target's journal replays the
	// OpMigrate arrival (consuming its seq), the source's replays the
	// departure — neither resurrects a stale copy.
	for _, side := range []struct {
		m       *Manager
		has     []string
		hasnt   []string
		migrate int
	}{
		{p.b, []string{moves}, []string{stays}, 1},
		{p.a, []string{stays}, []string{moves}, 0},
	} {
		img := journalImage(t, side.m)
		m2 := NewManager(Options{})
		path := filepath.Join(t.TempDir(), "replay.wal")
		if err := os.WriteFile(path, img, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := m2.RecoverFile(path)
		if err != nil {
			t.Fatalf("recovery: %v", err)
		}
		if st.Migrated != side.migrate {
			t.Errorf("recovered Migrated = %d, want %d", st.Migrated, side.migrate)
		}
		for _, id := range side.has {
			if _, ok := m2.Get(id); !ok {
				t.Errorf("recovered image lost %q", id)
			}
		}
		for _, id := range side.hasnt {
			if _, ok := m2.Get(id); ok {
				t.Errorf("recovered image resurrected %q", id)
			}
		}
	}
	if got := phiSliceOf(t, p.b, moves); len(got) == 0 {
		t.Error("empty phi after everything")
	}
}

// TestMigrateWriteRaceLosesNothing is the cutover-race invariant: a
// writer hammering the source during the migration either gets its
// write applied (pre-fence, and the suffix carries it) or gets an
// explicit wrong-shard redirect — never a silent drop, never a double
// apply. Epoch arithmetic is the proof: the epoch on the new owner
// must equal the number of acknowledged writes exactly.
func TestMigrateWriteRaceLosesNothing(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	p.installTopology(t)

	applied := 0
	redirected := false
	done := make(chan struct{})
	go func() {
		defer close(done)
		kind := EventFault
		for i := 0; i < 1_000_000; i++ {
			_, err := p.a.Event(id, Event{kind, 0})
			switch {
			case err == nil:
				applied++
				if kind == EventFault {
					kind = EventRepair
				} else {
					kind = EventFault
				}
			case errors.Is(err, ErrWrongShard):
				redirected = true
				return
			default:
				t.Errorf("write failed with %v mid-migration", err)
				return
			}
		}
	}()

	time.Sleep(5 * time.Millisecond) // let some pre-fence writes land
	stats, err := p.a.MigrateOut(id, "b")
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if !redirected {
		t.Fatal("writer never saw the wrong-shard redirect")
	}
	if applied == 0 {
		t.Fatal("no writes applied before the fence")
	}

	in, ok := p.b.Get(id)
	if !ok {
		t.Fatal("instance missing on new owner")
	}
	info := in.Info()
	if info.Epoch != uint64(applied) {
		t.Fatalf("epoch on new owner = %d, acked writes = %d (lost or doubled)", info.Epoch, applied)
	}
	// The toggle pattern makes the final fault set a parity function of
	// the write count — an independent check the state, not just the
	// counter, arrived intact.
	wantFaults := 0
	if applied%2 == 1 {
		wantFaults = 1
	}
	if len(info.Faults) != wantFaults {
		t.Fatalf("faults = %v after %d toggles", info.Faults, applied)
	}
	// And bit-identical phi against an independent replay of the same
	// acknowledged prefix.
	ref := NewManager(Options{})
	if _, err := ref.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	kind := EventFault
	for i := 0; i < applied; i++ {
		if _, err := ref.Event(id, Event{kind, 0}); err != nil {
			t.Fatal(err)
		}
		if kind == EventFault {
			kind = EventRepair
		} else {
			kind = EventFault
		}
	}
	want, got := phiSliceOf(t, ref, id), phiSliceOf(t, p.b, id)
	for x := range want {
		if got[x] != want[x] {
			t.Fatalf("phi[%d] = %d, want %d after racing cutover", x, got[x], want[x])
		}
	}
	if stats.FenceSeq < stats.BaseSeq {
		t.Errorf("fence seq %d below base seq %d", stats.FenceSeq, stats.BaseSeq)
	}
}

// TestMigrateHTTPRedirect pins the JSON plane's cutover contract:
// after the handoff the old owner answers 403 with the new owner's
// URL in X-Ftnet-Owner, and a client that follows it succeeds.
func TestMigrateHTTPRedirect(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	p.installTopology(t)
	if _, err := p.a.MigrateOut(id, "b"); err != nil {
		t.Fatal(err)
	}

	post := func(url string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	ev := Event{EventFault, 3}
	resp := post(p.tsA.URL+"/v1/instances/"+id+"/events", ev)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("write on old owner = %d, want 403", resp.StatusCode)
	}
	owner := resp.Header.Get("X-Ftnet-Owner")
	if owner != p.tsB.URL {
		t.Fatalf("X-Ftnet-Owner = %q, want %q", owner, p.tsB.URL)
	}
	resp = post(owner+"/v1/instances/"+id+"/events", ev)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write on redirect target = %d, want 200", resp.StatusCode)
	}

	// Reads redirect too — both the single-x path and the dense stream.
	for _, path := range []string{"/v1/instances/" + id + "/phi?x=0", "/v1/instances/" + id + "/phi", "/v1/instances/" + id} {
		r, err := http.Get(p.tsA.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusForbidden || r.Header.Get("X-Ftnet-Owner") != p.tsB.URL {
			t.Errorf("GET %s on old owner = %d (owner %q), want 403 + owner", path, r.StatusCode, r.Header.Get("X-Ftnet-Owner"))
		}
	}
	// Creating an instance the ring assigns elsewhere redirects instead
	// of planting a shadow copy.
	other := idOwnedBy(t, "b") + "-new"
	if owner := sharding.New([]string{"a", "b"}, 0).Owner(other); owner == "b" {
		resp = post(p.tsA.URL+"/v1/instances", CreateRequest{ID: other, Spec: Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}})
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("create for foreign id = %d, want 403", resp.StatusCode)
		}
	}
}

func TestMigrateStageLifecycle(t *testing.T) {
	p := newShardPair(t)
	p.installTopology(t)
	id := idOwnedBy(t, "b")
	spec := Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}
	frame := sharding.Migration{
		ID:      id,
		BaseSeq: 7,
		Records: []journal.Record{{
			Op:    journal.OpCheckpoint,
			ID:    id,
			Spec:  journalSpec(spec),
			Epoch: 0,
		}},
	}

	// Staging on the wrong member bounces with a redirect.
	if err := p.a.StageMigration(frame); !errors.Is(err, ErrWrongShard) {
		t.Fatalf("stage on non-owner err = %v, want ErrWrongShard", err)
	}
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatal(err)
	}
	// Staged = invisible to readers until the suffix commits.
	if _, err := p.b.Lookup(id, 0); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("lookup on staged instance err = %v, want ErrUnavailable", err)
	}
	// A commit that doesn't match the staged base seq is refused.
	if _, err := p.b.CommitMigration(sharding.Migration{ID: id, BaseSeq: 99}); !errors.Is(err, ErrConflict) {
		t.Fatalf("mismatched commit err = %v, want ErrConflict", err)
	}
	// Re-staging (source retry) is idempotent.
	if err := p.b.StageMigration(frame); err != nil {
		t.Fatalf("re-stage: %v", err)
	}
	if !p.b.AbortMigration(id) {
		t.Fatal("abort found nothing")
	}
	if _, ok := p.b.Get(id); ok {
		t.Fatal("aborted stage still visible")
	}
	if p.b.AbortMigration(id) {
		t.Fatal("second abort claimed success")
	}
	// A stage must never replace a live instance.
	if _, err := p.b.Create(id, spec); err != nil {
		t.Fatal(err)
	}
	if err := p.b.StageMigration(frame); !errors.Is(err, ErrConflict) {
		t.Fatalf("stage over live instance err = %v, want ErrConflict", err)
	}
}

func TestMigrateGuards(t *testing.T) {
	p := newShardPair(t)
	id := idOwnedBy(t, "b")
	if _, err := p.a.Create(id, Spec{Kind: KindDeBruijn, M: 2, H: 4, K: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.a.MigrateOut(id, "b"); err == nil {
		t.Error("migrate without topology accepted")
	}
	p.installTopology(t)
	if _, err := p.a.MigrateOut(id, "ghost"); err == nil {
		t.Error("migrate to unknown peer accepted")
	}
	if _, err := p.a.MigrateOut(id, "a"); err == nil {
		t.Error("migrate to self accepted")
	}
	if _, err := p.a.MigrateOut("missing", "b"); !errors.Is(err, ErrNotFound) {
		t.Error("migrate of unknown instance accepted")
	}
	// Delete is fenced off for an in-flight instance only; a plain
	// displaced-but-unfenced instance still deletes locally.
	if ok, err := p.a.Delete(id); !ok || err != nil {
		t.Errorf("delete of pinned instance = %v, %v", ok, err)
	}
}
