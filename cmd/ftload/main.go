// Command ftload is a load generator for ftnetd: it creates a fleet of
// instances, drives them with a configurable mix of fault/repair
// events and phi lookups from concurrent workers, and reports
// throughput and latency percentiles. The traffic loop lives in
// internal/loadgen, shared with the tracked service-throughput
// experiment (internal/experiments L1).
//
// Usage:
//
//	ftload -addr http://localhost:8080 -instances 4 -kind debruijn \
//	       -m 2 -digits 6 -k 4 -workers 8 -requests 20000 -eventfrac 0.1
//
// With -eventfrac 0.1, ~10% of operations are reconfiguration events
// (fault or repair, 50/50) and ~90% are lookups — the read-heavy shape
// a fleet of mostly-healthy machines produces. With -batch n > 1 each
// reconfiguration operation posts n events as one atomic burst through
// events:batch. -scenario selects a named preset instead:
//
//	ftload -scenario read-heavy    # ~1% events, the lock-free lookup path
//	ftload -scenario burst-heavy   # 30% events in atomic 4-event bursts
//	ftload -scenario write-storm   # dedicated writers hammer events:batch
//	                               # while the other workers measure read p99
//
// The restart scenario is the crash-recovery probe; ftload itself
// spawns the daemon, SIGKILLs it mid write-storm, restarts it over the
// same journal, and verifies every instance recovered to (at least)
// its last acknowledged epoch with a bit-identical mapping:
//
//	ftload -scenario restart \
//	    -exec "./ftnetd -addr 127.0.0.1:18080 -journal /tmp/ft.wal -fsync always" \
//	    -addr http://127.0.0.1:18080
//
// With -follower <url> the run doubles as a replication probe: after
// the load finishes, ftload requires the follower daemon (ftnetd
// -follow) to converge with the leader — every driven instance at the
// same epoch with a bit-identical phi slice:
//
//	ftload -scenario write-storm -addr http://leader:8080 \
//	       -follower http://replica:8081
//
// With -obs-json <path> the run also scrapes the daemon's server-side
// histograms (/v1/stats obs section) afterwards and writes the
// BENCH_service.json SLO artifact — request p99 by route, fsync p99,
// replication lag p99 (when -follower is set), compaction pause max —
// which CI diffs against a committed baseline with ftbenchdiff:
//
//	ftload -scenario write-storm -addr http://leader:8080 \
//	       -follower http://replica:8081 -obs-json BENCH_service.json
//
// The partition-torture scenario is the failover probe: ftload spawns
// a leader (-exec) and a follower (-exec-follower), storms the leader,
// SIGSTOPs the follower mid-storm (the partition — the leader keeps
// acknowledging writes the replica never sees), SIGKILLs the leader,
// SIGCONTs the follower and promotes it via POST /v1/promote, then
// restarts the deposed leader over its own journal as a follower of
// the new one (-exec-rejoin) and requires it to self-heal: demote on
// the higher term, discard its unreplicated tail, converge
// bit-identically, and 403 every direct write — zero stale-term writes
// accepted. The run measures divergence_window (partition to kill) and
// failover_downtime (kill to the promoted replica accepting writes):
//
//	ftload -scenario partition-torture -addr http://127.0.0.1:18080 \
//	    -follower http://127.0.0.1:18081 \
//	    -exec "./ftnetd -addr 127.0.0.1:18080 -journal /tmp/a.wal" \
//	    -exec-follower "./ftnetd -addr 127.0.0.1:18081 -journal /tmp/b.wal -follow http://127.0.0.1:18080" \
//	    -exec-rejoin "./ftnetd -addr 127.0.0.1:18080 -journal /tmp/a.wal -follow http://127.0.0.1:18081"
//
// The cluster scenario is the scale-out probe: point -peers at a fleet
// of daemons booted *unsharded*, name the member that should join the
// ring mid-storm with -join, and ftload owns the topology lifecycle —
// it installs the initial ring over POST /v1/ring, storms the cluster
// through a shard-aware client (ring routing + X-Ftnet-Owner redirect
// learning + 503-staged backoff, the same convergence rules as
// ftproxy), adds the joiner to every ring mid-storm, triggers
// /v1/rebalance so displaced instances are checkpoint-streamed to it,
// and then verifies the handoff: every instance on exactly its ring
// owner, epoch equal to the acknowledged watermark (zero lost or
// double-applied transitions), phi slice bit-identical to a fresh
// recomputation. With -obs-json it emits the rebalance_pause and
// cluster_lookups_per_sec SLO families:
//
//	ftload -scenario cluster -instances 24 -requests 30000 \
//	    -peers a=http://127.0.0.1:18110,b=http://127.0.0.1:18111,c=http://127.0.0.1:18112 \
//	    -join c -obs-json BENCH_service_shard.json
//
// With -rpc the hot path (lookups and event batches) runs over the
// binary RPC plane (internal/wire) instead of HTTP+JSON: persistent
// pipelined connections to the daemon's -rpc-addr listener, lookups
// vectorized into LookupBatch frames of -rpc-lookup-batch. Fleet
// creation and verification stay on the JSON plane. RPC runs add
// lookup_rpc_p99 and lookups_per_sec to the -obs-json artifact:
//
//	ftload -rpc -rpc-addr 127.0.0.1:9090 -scenario mixed \
//	       -addr http://127.0.0.1:8080
//
// Rejected events (budget exhausted, repairing a healthy node, a burst
// with one invalid event) are counted separately: they are the daemon
// correctly enforcing the paper's k-fault precondition, not failures.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"syscall"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/loadgen"
	"ftnet/internal/obs"
	"ftnet/internal/shard"
)

type config struct {
	loadgen.Config
	scenario     string // named scenario; overrides eventfrac/batch when set
	exec         string // daemon command line the restart/failover scenarios spawn and kill
	execFollower string // follower daemon command line (partition-torture)
	execRejoin   string // deposed-leader rejoin command line (partition-torture)
	follower     string // follower base URL to verify convergence against after the run
	obsJSON      string // path to write the BENCH_service.json SLO artifact to
	rpc          bool   // drive the hot path over the binary RPC plane
	peers        string // cluster membership "name=url,..." (cluster scenario)
	join         string // member joining the ring mid-storm (cluster scenario)
	replicas     int    // ring vnodes per member (cluster scenario)
}

func main() {
	var cfg config
	var kind string
	flag.StringVar(&cfg.Addr, "addr", "http://localhost:8080", "base URL of the ftnetd daemon")
	flag.IntVar(&cfg.Instances, "instances", 4, "number of instances to create and drive")
	flag.StringVar(&kind, "kind", "debruijn", `topology kind: "debruijn" or "shuffle"`)
	flag.IntVar(&cfg.Spec.M, "m", 2, "de Bruijn base")
	flag.IntVar(&cfg.Spec.H, "digits", 6, "digits/bits h (2^h or m^h target nodes)")
	flag.IntVar(&cfg.Spec.K, "k", 4, "fault budget per instance")
	flag.IntVar(&cfg.Workers, "workers", 8, "concurrent workers")
	flag.IntVar(&cfg.Requests, "requests", 20000, "total operations to issue")
	flag.Float64Var(&cfg.Scenario.EventFrac, "eventfrac", 0.1, "fraction of ops that are fault/repair events")
	flag.IntVar(&cfg.Scenario.Batch, "batch", 1, "events per reconfiguration op (> 1 uses atomic events:batch bursts)")
	flag.StringVar(&cfg.scenario, "scenario", "", `named scenario preset: "mixed", "read-heavy", "burst-heavy", "write-storm", "restart", "partition-torture" or "cluster" (overrides -eventfrac/-batch)`)
	flag.StringVar(&cfg.peers, "peers", "", `cluster membership as "name=url,name=url,..." for -scenario cluster (daemons booted unsharded; ftload installs the rings)`)
	flag.StringVar(&cfg.join, "join", "", `member of -peers held out of the initial ring and joined mid-storm (-scenario cluster)`)
	flag.IntVar(&cfg.replicas, "replicas", 0, "virtual nodes per ring member for -scenario cluster (0 = shard default)")
	flag.StringVar(&cfg.exec, "exec", "", `daemon command line for -scenario restart/partition-torture (ftload spawns, SIGKILLs and restarts it)`)
	flag.StringVar(&cfg.execFollower, "exec-follower", "", `follower daemon command line for -scenario partition-torture (SIGSTOPped for the partition, promoted after the kill)`)
	flag.StringVar(&cfg.execRejoin, "exec-rejoin", "", `deposed-leader rejoin command line for -scenario partition-torture (same journal as -exec, -follow pointing at the promoted follower)`)
	flag.StringVar(&cfg.follower, "follower", "", `follower base URL; after the run, require it to converge with -addr (same epochs, bit-identical phi)`)
	flag.StringVar(&cfg.obsJSON, "obs-json", "", `write a BENCH_service.json SLO artifact here: request p99 by route, fsync p99, replication lag p99 (needs -follower), compaction pause max — scraped from /v1/stats after the run`)
	var rpcAddr string
	flag.BoolVar(&cfg.rpc, "rpc", false, "drive lookups and event batches over the binary RPC plane (internal/wire) instead of HTTP+JSON")
	flag.StringVar(&rpcAddr, "rpc-addr", "127.0.0.1:9090", "host:port of the daemon's -rpc-addr listener (used with -rpc)")
	flag.IntVar(&cfg.RPCLookupBatch, "rpc-lookup-batch", loadgen.DefaultRPCLookupBatch, "lookups vectorized per LookupBatch frame on the RPC plane (1 = scalar Lookup)")
	flag.IntVar(&cfg.RPCConns, "rpc-conns", 0, "pipelined connections per RPC client (0 = wire default)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "rng seed")
	flag.Parse()
	cfg.Spec.Kind = fleet.Kind(kind)
	if cfg.rpc {
		cfg.RPCAddr = rpcAddr
	}

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "ftload: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.scenario == "restart" {
		return runRestart(cfg, out)
	}
	if cfg.scenario == "partition-torture" {
		return runFailover(cfg, out)
	}
	if cfg.scenario == "cluster" {
		return runCluster(cfg, out)
	}
	if cfg.scenario != "" {
		sc, ok := loadgen.ByName(cfg.scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q", cfg.scenario)
		}
		cfg.Scenario = sc
	} else {
		cfg.Scenario.Name = "custom"
	}
	cfg.ScrapeObs = cfg.obsJSON != ""
	res, err := loadgen.Run(cfg.Config)
	if err != nil {
		return err
	}
	report(out, cfg, res)
	if res.Transport > 0 || res.Errors > 0 {
		return fmt.Errorf("%d transport errors, %d operations failed with unexpected status",
			res.Transport, res.Errors)
	}
	if cfg.follower != "" {
		fv, err := loadgen.VerifyFollower(cfg.Addr, cfg.follower, cfg.Config.InstanceIDs(), 30*time.Second)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  follower     %s converged: %d/%d instances bit-identical (caught up in %v)\n",
			cfg.follower, fv.Instances, cfg.Instances, fv.Waited.Round(time.Millisecond))
	}
	if cfg.obsJSON != "" {
		if err := writeObsArtifact(cfg, res, out); err != nil {
			return err
		}
	}
	return nil
}

// writeObsArtifact distills the scraped server-side histograms (leader
// always, follower when -follower is set) into the BENCH_service.json
// SLO artifact CI diffs against its committed baseline.
func writeObsArtifact(cfg config, res loadgen.Result, out io.Writer) error {
	var followerObs *obs.Export
	if cfg.follower != "" {
		e, err := loadgen.FetchObs(cfg.follower)
		if err != nil {
			return err
		}
		followerObs = e
	}
	art := loadgen.BuildServiceArtifact(cfg.Scenario.Name, &res, res.Service, followerObs)
	return emitArtifact(cfg.obsJSON, art, out)
}

// emitArtifact writes one BENCH_service.json SLO artifact and echoes
// its values.
func emitArtifact(path string, art loadgen.ServiceArtifact, out io.Writer) error {
	if len(art.Benchmarks) == 0 {
		return fmt.Errorf("obs artifact is empty: the daemon exported no service histograms")
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "  obs          %d service SLO values -> %s\n", len(art.Benchmarks), path)
	for _, b := range art.Benchmarks {
		if b.Unit == "ns" {
			fmt.Fprintf(out, "    %-28s %v\n", b.Name, time.Duration(b.Value).Round(time.Microsecond))
		} else {
			fmt.Fprintf(out, "    %-28s %.0f %s\n", b.Name, b.Value, b.Unit)
		}
	}
	return nil
}

// daemonProc owns the ftnetd child process of the restart scenario.
type daemonProc struct {
	argv []string
	cmd  *exec.Cmd
}

func (d *daemonProc) start() error {
	d.cmd = exec.Command(d.argv[0], d.argv[1:]...)
	d.cmd.Stdout = os.Stderr
	d.cmd.Stderr = os.Stderr
	return d.cmd.Start()
}

// kill SIGKILLs the daemon — no shutdown handler, no final flush: the
// only durability is what the journal's fsync policy already provided.
func (d *daemonProc) kill() error {
	if d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("daemon not running")
	}
	if err := d.cmd.Process.Kill(); err != nil {
		return err
	}
	d.cmd.Wait() // reap; the error (killed) is expected
	return nil
}

// stop SIGSTOPs the daemon: the process freezes with its sockets open
// — the partition-torture stand-in for a network partition (the watch
// stream stalls but nothing errors until the peer notices).
func (d *daemonProc) stop() error { return d.signal(syscall.SIGSTOP) }

// cont SIGCONTs a stopped daemon; it resumes where it froze.
func (d *daemonProc) cont() error { return d.signal(syscall.SIGCONT) }

func (d *daemonProc) signal(sig syscall.Signal) error {
	if d.cmd == nil || d.cmd.Process == nil {
		return fmt.Errorf("daemon not running")
	}
	return d.cmd.Process.Signal(sig)
}

func runRestart(cfg config, out io.Writer) error {
	if cfg.exec == "" {
		return fmt.Errorf(`-scenario restart needs -exec "ftnetd ..." to own the daemon lifecycle`)
	}
	d := &daemonProc{argv: strings.Fields(cfg.exec)}
	if len(d.argv) == 0 {
		return fmt.Errorf("-exec is empty after splitting")
	}
	if err := d.start(); err != nil {
		return fmt.Errorf("start daemon: %v", err)
	}
	defer d.kill()
	if err := waitHealthy(cfg.Addr, 15*time.Second); err != nil {
		return err
	}

	res, err := loadgen.RunRestart(loadgen.RestartConfig{
		Config: cfg.Config,
		Kill:   d.kill,
		Start: func() (string, error) {
			return cfg.Addr, d.start()
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ftload: restart scenario against %s\n", cfg.Addr)
	fmt.Fprintf(out, "  storm        %d transitions acked (%d rejected, %d transport + %d other errors after the kill) in %v\n",
		res.Storm.Batches, res.Storm.Rejected, res.Storm.Transport, res.Storm.Errors, res.Storm.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  downtime     %v (SIGKILL to healthy)\n", res.Downtime.Round(time.Millisecond))
	fmt.Fprintf(out, "  recovered    %d/%d instances verified\n", res.Verified, cfg.Instances)
	for _, id := range sortedKeys(res.Acked) {
		fmt.Fprintf(out, "    %-20s acked epoch %-6d recovered epoch %d\n", id, res.Acked[id], res.Recovered[id])
	}
	return nil
}

// runFailover owns the partition-torture lifecycle: leader and
// follower children, SIGSTOP as the partition, SIGKILL as the leader
// failure, /v1/promote as the failover, and a rejoin child that must
// self-heal.
func runFailover(cfg config, out io.Writer) error {
	if cfg.exec == "" || cfg.execFollower == "" || cfg.execRejoin == "" {
		return fmt.Errorf(`-scenario partition-torture needs -exec (leader), -exec-follower and -exec-rejoin command lines`)
	}
	if cfg.follower == "" {
		return fmt.Errorf(`-scenario partition-torture needs -follower (the replica's base URL, matching -exec-follower)`)
	}
	leader := &daemonProc{argv: strings.Fields(cfg.exec)}
	replica := &daemonProc{argv: strings.Fields(cfg.execFollower)}
	rejoin := &daemonProc{argv: strings.Fields(cfg.execRejoin)}
	if err := leader.start(); err != nil {
		return fmt.Errorf("start leader: %v", err)
	}
	defer rejoin.kill() // the leader's journal is owned by rejoin after RestartOld
	defer leader.kill()
	if err := waitHealthy(cfg.Addr, 15*time.Second); err != nil {
		return err
	}
	if err := replica.start(); err != nil {
		return fmt.Errorf("start follower: %v", err)
	}
	defer replica.kill()
	if err := waitHealthy(cfg.follower, 15*time.Second); err != nil {
		return err
	}

	res, err := loadgen.RunFailover(loadgen.FailoverConfig{
		Config:       cfg.Config,
		FollowerAddr: cfg.follower,
		Partition:    replica.stop,
		KillLeader:   leader.kill,
		Heal:         replica.cont,
		RestartOld: func() (string, error) {
			return cfg.Addr, rejoin.start()
		},
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ftload: partition-torture scenario against %s (promoted %s)\n", cfg.Addr, cfg.follower)
	fmt.Fprintf(out, "  storm        %d transitions acked (%d rejected, %d transport + %d other errors after the kill) in %v\n",
		res.Storm.Batches, res.Storm.Rejected, res.Storm.Transport, res.Storm.Errors, res.Storm.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  divergence   %v (partition to leader kill: acked writes no replica had)\n",
		res.DivergenceWindow.Round(time.Millisecond))
	fmt.Fprintf(out, "  failover     %v downtime (kill to writable), new term %d\n",
		res.FailoverDowntime.Round(time.Millisecond), res.Term)
	fmt.Fprintf(out, "  self-heal    deposed leader demoted %d time(s), discarded %d stale entries, 0 stale writes accepted\n",
		res.Demotions, res.Discarded)
	fmt.Fprintf(out, "  converged    %d/%d instances bit-identical after rejoin\n", res.Converged, cfg.Instances)

	if cfg.obsJSON != "" {
		newLeader, err := loadgen.FetchObs(cfg.follower)
		if err != nil {
			return err
		}
		rejoined, err := loadgen.FetchObs(cfg.Addr)
		if err != nil {
			return err
		}
		art := loadgen.BuildServiceArtifact("partition-torture", nil, newLeader, rejoined)
		loadgen.AppendFailover(&art, res)
		if err := emitArtifact(cfg.obsJSON, art, out); err != nil {
			return err
		}
	}
	return nil
}

// runCluster owns the scale-out scenario: the daemons are already
// running (and unsharded); ftload installs the rings, storms the
// cluster through the shard-aware client, joins -join mid-storm,
// rebalances, and verifies the handoff invariants. With -rpc the storm
// data plane runs over the binary protocol through an ftproxy RPC
// front at -rpc-addr (control plane and verification stay HTTP).
func runCluster(cfg config, out io.Writer) error {
	if cfg.peers == "" || cfg.join == "" {
		return fmt.Errorf(`-scenario cluster needs -peers "name=url,..." and -join <member>`)
	}
	peers, err := shard.ParsePeers(cfg.peers)
	if err != nil {
		return err
	}
	res, err := loadgen.RunCluster(loadgen.ClusterConfig{
		Config:       cfg.Config,
		Peers:        peers,
		Joiner:       cfg.join,
		Replicas:     cfg.replicas,
		ProxyRPCAddr: cfg.RPCAddr,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "ftload: cluster scenario across %d daemons (joiner %s)\n", len(peers), cfg.join)
	fmt.Fprintf(out, "  storm        %d transitions acked, %d lookups (%d rejected, %d transport + %d other errors) in %v\n",
		res.Storm.Batches, res.Storm.Lookups, res.Storm.Rejected, res.Storm.Transport, res.Storm.Errors,
		res.Storm.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  rebalance    %d instances checkpoint-streamed in %v (max write-fence pause %v)\n",
		res.Migrated, res.RebalanceWall.Round(time.Millisecond), res.PauseMax.Round(time.Microsecond))
	fmt.Fprintf(out, "  routing      %d redirects followed, %d staged-window retries — no manual retry logic\n",
		res.Redirects, res.StagedWaits)
	if res.Storm.RPC {
		fmt.Fprintf(out, "  lookups      %.0f lookups/s through the %s RPC front under the rebalance (p99 %v)\n",
			res.Storm.LookupThroughput(), cfg.RPCAddr, res.Storm.LookupPercentile(99).Round(time.Microsecond))
	} else {
		fmt.Fprintf(out, "  lookups      %.0f routed lookups/s under the rebalance\n", res.Storm.LookupThroughput())
	}
	fmt.Fprintf(out, "  verified     %d/%d instances on their ring owner, epoch == acked watermark, phi bit-identical\n",
		res.Verified, cfg.Instances)
	if cfg.obsJSON != "" {
		art := loadgen.ServiceArtifact{Kind: "service", Scenario: "cluster"}
		loadgen.AppendCluster(&art, res)
		if err := emitArtifact(cfg.obsJSON, art, out); err != nil {
			return err
		}
	}
	return nil
}

func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("daemon not healthy on %s after %v", addr, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func report(out io.Writer, cfg config, res loadgen.Result) {
	fmt.Fprintf(out, "ftload: %d ops in %v against %s (scenario %s)\n",
		res.Ops(), res.Elapsed.Round(time.Millisecond), cfg.Addr, cfg.Scenario.Name)
	fmt.Fprintf(out, "  fleet        %d x %s instances (h=%d k=%d), %d workers, eventfrac %.2f, batch %d\n",
		cfg.Instances, cfg.Spec.Kind, cfg.Spec.H, cfg.Spec.K, cfg.Workers,
		cfg.Scenario.EventFrac, cfg.Scenario.Batch)
	fmt.Fprintf(out, "  lookups      %d\n", res.Lookups)
	fmt.Fprintf(out, "  events       %d applied in %d transitions, %d rejected (budget/state enforcement)\n",
		res.Events, res.Batches, res.Rejected)
	fmt.Fprintf(out, "  errors       %d transport, %d unexpected-status\n", res.Transport, res.Errors)
	fmt.Fprintf(out, "  throughput   %.0f ops/s\n", res.Throughput())
	if res.RPC && res.Lookups > 0 {
		fmt.Fprintf(out, "  rpc lookups  %.0f lookups/s (LookupBatch of %d over %s)\n",
			res.LookupThroughput(), cfg.RPCLookupBatch, cfg.RPCAddr)
	}
	fmt.Fprintf(out, "  latency      p50 %v  p90 %v  p99 %v  max %v\n",
		res.Percentile(50), res.Percentile(90), res.Percentile(99), res.Percentile(100))
	if cfg.Scenario.Writers > 0 && len(res.LookupLatencies) > 0 {
		fmt.Fprintf(out, "  read latency p50 %v  p99 %v  (lookups under %d-writer storm)\n",
			res.LookupPercentile(50), res.LookupPercentile(99), cfg.Scenario.Writers)
	}
}
