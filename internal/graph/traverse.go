package graph

// BFS returns the distance (in hops) from src to every node, with -1 for
// unreachable nodes.
func (g *Graph) BFS(src int) []int {
	g.check(src)
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int, 0, g.n)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPath returns a minimum-hop path from src to dst (inclusive of
// both endpoints), or nil when dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	g.check(src)
	g.check(dst)
	if src == dst {
		return []int{src}
	}
	parent := make([]int, g.n)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(u) {
			if parent[v] == -1 {
				parent[v] = u
				if v == dst {
					return buildPath(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func buildPath(parent []int, src, dst int) []int {
	rev := []int{dst}
	for at := dst; at != src; at = parent[at] {
		rev = append(rev, parent[at])
	}
	// rev currently holds dst..src plus a duplicated src append pattern;
	// rebuild forward.
	out := make([]int, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Components returns the connected components as slices of node ids,
// each sorted, ordered by smallest member.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		comp := []int{}
		stack := []int{s}
		seen[s] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, u)
			for _, v := range g.Neighbors(u) {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sortInts(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph is connected (the empty graph
// and single-node graph count as connected).
func (g *Graph) IsConnected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// Diameter returns the largest shortest-path distance between any two
// nodes, or -1 when the graph is disconnected or empty.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return -1
	}
	diam := 0
	for s := 0; s < g.n; s++ {
		for _, d := range g.BFS(s) {
			if d == -1 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Eccentricity returns the largest BFS distance from src, or -1 when
// some node is unreachable.
func (g *Graph) Eccentricity(src int) int {
	ecc := 0
	for _, d := range g.BFS(src) {
		if d == -1 {
			return -1
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
