// Command ftnetd is the online reconfiguration daemon: it owns a fleet
// of fault-tolerant networks and serves the Manager API over HTTP/JSON.
//
// Usage:
//
//	ftnetd -addr :8080 -cache 4096 -journal /var/lib/ftnet/epochs.wal -fsync always
//
// With -journal set, every accepted transition (instance create/delete,
// fault/repair event, atomic batch) appends one O(k) CRC32C-framed
// record — epoch plus the sorted fault set — to an append-only log, and
// a restart replays it: every instance comes back at its exact pre-kill
// epoch, fault set, and mapping (verified bit-identically against a
// fresh recomputation), with any torn tail from a crash mid-append
// detected, logged, and truncated. -fsync picks the durability point:
// "always" (fsync before acknowledging, group-committed across
// concurrent writers), "interval" (timer-driven), or "never" (OS
// decides).
//
// API (see internal/fleet/api.go for the full route table):
//
//	POST   /v1/instances              {"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}
//	POST   /v1/instances/{id}/events  {"kind":"fault","node":3}  (or "repair")
//	POST   /v1/instances/{id}/events:batch  a whole fault burst, applied atomically
//	GET    /v1/instances/{id}/phi?x=3 where does target node 3 run now?
//	GET    /v1/stats, /healthz, /metrics   (stats include journal/recovery counters)
//
// Example session:
//
//	curl -s localhost:8080/v1/instances -d '{"id":"prod","spec":{"kind":"debruijn","m":2,"h":4,"k":2}}'
//	curl -s localhost:8080/v1/instances/prod/events -d '{"kind":"fault","node":3}'
//	curl -s localhost:8080/v1/instances/prod/phi?x=3
//	curl -s localhost:8080/v1/instances/prod/events:batch \
//	     -d '{"events":[{"kind":"repair","node":3},{"kind":"fault","node":7}]}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ftnet/internal/fleet"
	"ftnet/internal/journal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheSize := flag.Int("cache", fleet.DefaultCacheSize, "mapping cache capacity")
	journalPath := flag.String("journal", "", "append-only epoch journal path (empty disables durability)")
	fsyncMode := flag.String("fsync", "always", `journal fsync policy: "always", "interval" or "never"`)
	fsyncEvery := flag.Duration("fsync-interval", journal.DefaultSyncInterval, `sync period for -fsync interval`)
	flag.Parse()

	mgr := fleet.NewManager(fleet.Options{CacheSize: *cacheSize})
	jw, err := openJournal(mgr, *journalPath, *fsyncMode, *fsyncEvery, log.Printf)
	if err != nil {
		log.Fatalf("ftnetd: %v", err)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(mgr),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("ftnetd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()

	log.Printf("ftnetd: serving the reconfiguration API on %s", *addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatal(err)
	}
	if jw != nil {
		if err := jw.Close(); err != nil {
			log.Fatalf("ftnetd: close journal: %v", err)
		}
	}
}

// openJournal performs the durable boot sequence: replay the existing
// log into the manager (verifying every epoch against a fresh mapping
// recomputation), truncate any torn tail left by a crash mid-append,
// and only then open the append writer and attach it — so new records
// always continue the valid prefix. A replay that fails verification
// is fatal: the daemon refuses to serve state it cannot prove correct.
// Split from main (with an injectable logger) so the end-to-end test
// boots exactly this sequence.
func openJournal(mgr *fleet.Manager, path, fsyncMode string, interval time.Duration, logf func(string, ...any)) (*journal.Writer, error) {
	if path == "" {
		return nil, nil
	}
	policy, err := journal.ParseSyncPolicy(fsyncMode)
	if err != nil {
		return nil, err
	}
	st, err := mgr.RecoverFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal recovery from %s failed: %w", path, err)
	}
	if st.Torn {
		logf("ftnetd: journal %s: torn tail dropped at byte %d (%s)", path, st.Offset, st.TornReason)
	}
	if st.Records > 0 {
		logf("ftnetd: recovered %d journal records (%d instances, %d transitions, last epoch %d) in %.3fs from %s",
			st.Records, st.Created-st.Deleted, st.Transitions, st.LastEpoch, st.Seconds, path)
	}
	jw, err := journal.Create(path, journal.Options{Sync: policy, Interval: interval})
	if err != nil {
		return nil, err
	}
	mgr.SetJournal(jw)
	logf("ftnetd: journaling epochs to %s (fsync %s)", path, policy)
	return jw, nil
}

// newServer builds the daemon's handler; split from main so the
// end-to-end test serves the exact handler the binary runs.
func newServer(mgr *fleet.Manager) http.Handler {
	return fleet.NewHTTPHandler(mgr)
}
