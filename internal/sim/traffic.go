package sim

import (
	"fmt"
	"math/rand"

	"ftnet/internal/bus"
	"ftnet/internal/graph"
)

// Router produces a route (node sequence, source first) between two
// nodes of the simulated machine.
type Router func(u, v int) ([]int, error)

// BFSRouter returns a Router that uses shortest paths in g. It is the
// baseline router for arbitrary graphs.
func BFSRouter(g *graph.Graph) Router {
	return func(u, v int) ([]int, error) {
		p := g.ShortestPath(u, v)
		if p == nil {
			return nil, fmt.Errorf("sim: no path %d -> %d", u, v)
		}
		return p, nil
	}
}

// Permutation builds one message per source node x with destination
// dest(x), routed by router. Messages with dest(x) == x get zero-hop
// routes.
func Permutation(n int, dest func(int) int, router Router) ([]*Message, error) {
	msgs := make([]*Message, 0, n)
	for x := 0; x < n; x++ {
		r, err := router(x, dest(x))
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, &Message{ID: x, Route: r})
	}
	return msgs, nil
}

// RandomPairs builds count messages between uniformly random distinct
// node pairs.
func RandomPairs(rng *rand.Rand, n, count int, router Router) ([]*Message, error) {
	msgs := make([]*Message, 0, count)
	for i := 0; i < count; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		for v == u && n > 1 {
			v = rng.Intn(n)
		}
		r, err := router(u, v)
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, &Message{ID: i, Route: r})
	}
	return msgs, nil
}

// NeighborBurst builds, for every listed directed hop (u,v), a one-hop
// message u -> v. This is the Section V workload: every node sends one
// value to each of its de Bruijn successors in the same cycle burst.
func NeighborBurst(hops [][2]int) []*Message {
	msgs := make([]*Message, len(hops))
	for i, hp := range hops {
		msgs[i] = &Message{ID: i, Route: []int{hp[0], hp[1]}}
	}
	return msgs
}

// NewBusMachine builds a Machine over the bus architecture: the graph is
// the bus connectivity graph and every directed hop is carried by the
// sender's own bus when the receiver is on it, otherwise by the
// receiver's bus (the restrictive usage of Section V — one of the two
// endpoints always owns the bus).
func NewBusMachine(a *bus.Arch, ports int) *Machine {
	g := a.ConnectivityGraph()
	onBus := func(owner, v int) bool {
		for _, u := range a.Members(owner) {
			if u == v {
				return true
			}
		}
		return false
	}
	return &Machine{
		G:     g,
		Dead:  make([]bool, g.N()),
		Ports: ports,
		Mode:  BusMode,
		BusFor: func(u, v int) (int, error) {
			if onBus(u, v) {
				return u, nil
			}
			if onBus(v, u) {
				return v, nil
			}
			return 0, fmt.Errorf("sim: no bus covers hop (%d,%d)", u, v)
		},
	}
}
