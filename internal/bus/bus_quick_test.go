package bus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ftnet/internal/ft"
)

func TestBusDegreeEqualsIncidenceCount(t *testing.T) {
	// Property: BusDegree(v) == 1 + |BusesAt(v) \ {v}| for random params.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ft.Params{M: rng.Intn(3) + 2, H: 3, K: rng.Intn(4)}
		a, err := New(p)
		if err != nil {
			return false
		}
		v := rng.Intn(p.NHost())
		others := 0
		for _, owner := range a.BusesAt(v) {
			if owner != v {
				others++
			}
		}
		return a.BusDegree(v) == 1+others
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEveryNodeOwnsExactlyOneBus(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := ft.Params{M: 2, H: rng.Intn(3) + 3, K: rng.Intn(5)}
		a, err := New(p)
		if err != nil {
			return false
		}
		return a.NumBuses() == p.NHost()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockMembershipSymmetry(t *testing.T) {
	// Property: v lists owner o in BusesAt(v) iff v is in Members(o).
	p := ft.Params{M: 3, H: 3, K: 2}
	a := MustNew(p)
	for v := 0; v < p.NHost(); v++ {
		for _, o := range a.BusesAt(v) {
			found := false
			for _, u := range a.Members(o) {
				if u == v {
					found = true
				}
			}
			if !found {
				t.Fatalf("BusesAt(%d) lists %d but Members(%d) misses %d", v, o, o, v)
			}
		}
	}
}
