// Quickstart: build a fault-tolerant de Bruijn machine, break it, and
// reconfigure it.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"ftnet"
)

func main() {
	// A 16-node base-2 de Bruijn machine (h=4) that must survive any
	// k=2 node failures. The host has exactly 16+2 = 18 nodes — the
	// paper's minimum — and degree at most 4k+4 = 12.
	net, err := ftnet.NewDeBruijn2(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %d nodes / %d edges (degree %d)\n",
		net.Target.N(), net.Target.M(), net.Target.MaxDegree())
	fmt.Printf("host:   %d nodes / %d edges (degree %d, bound %d)\n",
		net.Host.N(), net.Host.M(), net.Host.MaxDegree(), net.P.DegreeBound())

	// Two processors die.
	faults := []int{3, 11}
	m, err := net.Reconfigure(faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfaults at host nodes %v; reconfiguration:\n", faults)
	for x := 0; x < net.Target.N(); x++ {
		marker := ""
		if m.Delta(x) > 0 {
			marker = fmt.Sprintf("  (displaced by %d)", m.Delta(x))
		}
		fmt.Printf("  target %2d -> host %2d%s\n", x, m.Phi(x), marker)
	}

	// Every target edge survives — prove it for this fault set, then
	// for EVERY possible 2-fault set.
	if err := net.VerifyRandomized(50, 1); err != nil {
		log.Fatalf("randomized verification failed: %v", err)
	}
	if err := net.VerifyExhaustive(); err != nil {
		log.Fatalf("exhaustive verification failed: %v", err)
	}
	fmt.Println("\nverified: every possible 2-fault set leaves a healthy B_{2,4}")
}
