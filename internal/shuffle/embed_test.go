package shuffle

import (
	"testing"

	"ftnet/internal/debruijn"
	"ftnet/internal/graph"
)

func TestEmbedIntoDeBruijnSmall(t *testing.T) {
	for h := 1; h <= 5; h++ {
		phi, err := EmbedIntoDeBruijn(h)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		se := MustNew(Params{H: h})
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		if err := graph.CheckEmbedding(se, db, phi); err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		if len(phi) != 1<<h {
			t.Fatalf("h=%d: phi length %d", h, len(phi))
		}
	}
}

func TestEmbedIntoDeBruijnMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("search-heavy")
	}
	for h := 6; h <= 10; h++ {
		phi, err := EmbedIntoDeBruijn(h)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		se := MustNew(Params{H: h})
		db := debruijn.MustNew(debruijn.Params{M: 2, H: h})
		if err := graph.CheckEmbedding(se, db, phi); err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
	}
}

func TestEmbedInvalidParams(t *testing.T) {
	if _, err := EmbedIntoDeBruijn(0); err == nil {
		t.Error("h=0 should error")
	}
}
