package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"time"

	"ftnet/internal/ft"
	"ftnet/internal/journal"
	sharding "ftnet/internal/shard"
)

// This file is checkpoint-streamed migration: the rebalance unit that
// moves one instance between daemons with a write fence only as wide
// as the journal suffix. The paper makes an instance's entire state a
// pure O(k) function of its fault set, so the handoff is two pushes:
//
//	phase 1 (unfenced): capture (snapshot, baseSeq) and push the O(k)
//	  checkpoint record to the new owner, which rebuilds and verifies
//	  it bit-identically — in memory only, not journaled.
//	phase 2 (fenced):   set the write fence, capture fenceSeq, collect
//	  the journal suffix in (baseSeq, fenceSeq] for this instance, and
//	  push it. The target replays it under the strict epoch chain,
//	  journals ONE OpMigrate record carrying the final state, and opens
//	  for traffic. The source then journals its OpDelete and redirects.
//
// Crash safety is asymmetric by construction. Target crash before the
// OpMigrate commit: its journal never mentions the instance, the stage
// evaporates, the source (fenced or not) is still authoritative and
// the migration simply failed. Source crash after the target's commit
// but before its own OpDelete: both journals hold the instance, and
// recovery + SetTopology on the restarted source pins the rebuilt copy
// to itself — which is why ReconcilePins (topology.go) runs at boot:
// it probes the ring owner and retires the local copy once the owner
// confirms a committed handoff at the same or newer epoch. Until that
// probe answers, the source may serve stale reads, but writes cannot
// fork history: a lost commit ANSWER (as opposed to a crash) leaves
// the fence up until resolveHandoff settles which side owns the id,
// and the target refuses traffic until the handoff record is durable.

// MigrateStats reports one completed migration.
type MigrateStats struct {
	ID       string  `json:"id"`
	Peer     string  `json:"peer"`          // target member name
	Epoch    uint64  `json:"epoch"`         // instance epoch at handoff
	BaseSeq  uint64  `json:"base_seq"`      // source commit seq at the unfenced capture
	FenceSeq uint64  `json:"fence_seq"`     // source commit seq writes were fenced at
	Suffix   int     `json:"suffix"`        // records shipped after the checkpoint
	Pause    float64 `json:"pause_seconds"` // write-fence window
}

// migrateClient pushes migration frames between daemons. Generous
// timeout: a frame is O(k) + a short suffix, but the target's commit
// includes an fsync.
var migrateClient = &http.Client{Timeout: 30 * time.Second}

// probeClient asks the small questions — abort, state — whose answers
// gate the fence. Short timeout: an unanswered probe keeps the fence
// up, and a retry loop sits above it.
var probeClient = &http.Client{Timeout: 5 * time.Second}

func checkpointRecord(id string, spec Spec, snap *ft.Snapshot) journal.Record {
	return journal.Record{
		Op:     journal.OpCheckpoint,
		ID:     id,
		Spec:   journalSpec(spec),
		Epoch:  snap.Epoch(),
		Faults: snap.Faults(),
	}
}

// MigrateOut hands instance id to peer (a member name from the
// installed topology) and cuts over: after it returns nil, the peer
// owns the instance, this daemon's journal records the departure, and
// requests here are redirected. Outbound migrations are serialized —
// a rebalance is a sequence of handoffs, each with its own short
// fence, not one long pause.
func (m *Manager) MigrateOut(id, peer string) (MigrateStats, error) {
	if m.readOnly.Load() {
		return MigrateStats{}, m.errReadOnly("migrate")
	}
	t := m.topo.Load()
	if t == nil {
		return MigrateStats{}, fmt.Errorf("fleet: migrate without a shard topology")
	}
	url, ok := t.peers[peer]
	if !ok {
		return MigrateStats{}, fmt.Errorf("fleet: migrate to unknown peer %q", peer)
	}
	if peer == t.self {
		return MigrateStats{}, fmt.Errorf("fleet: migrate %q to self", id)
	}
	m.migrateMu.Lock()
	defer m.migrateMu.Unlock()
	in, ok := m.Get(id)
	if !ok {
		return MigrateStats{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}

	// A fence left up by an earlier unresolved handoff is settled before
	// anything else: either that commit actually landed (finish its
	// cutover and report it) or it provably did not (lift the fence and
	// run a fresh handoff below). migrateMu means nobody else is
	// flipping these flags.
	in.writeMu.Lock()
	pending, pendingTo := in.migrating, in.migrateTo
	in.writeMu.Unlock()
	if pending {
		if pendingTo != url {
			return MigrateStats{}, errorf(ErrConflict,
				"fleet: instance %q is already migrating to %s", id, pendingTo)
		}
		committed, epoch, rerr := resolveHandoff(url, id)
		if rerr != nil {
			return MigrateStats{}, errorf(ErrUnavailable,
				"fleet: %v; write fence held, re-run the migration to resolve", rerr)
		}
		if committed {
			if cerr := m.completeMigration(id, in); cerr != nil {
				return MigrateStats{}, cerr
			}
			m.migrationsOut.Inc()
			return MigrateStats{ID: id, Peer: peer, Epoch: epoch}, nil
		}
		in.writeMu.Lock()
		in.migrating = false
		in.migrateTo = ""
		in.writeMu.Unlock()
	}

	// Phase 1: unfenced capture. Holding writeMu for the two loads only
	// guarantees no commit for THIS instance straddles the capture —
	// every one of its records is either reflected in snap0 (seq <=
	// baseSeq) or will be assigned a seq > baseSeq and ride the suffix.
	in.writeMu.Lock()
	if in.deleted || in.staged.Load() {
		in.writeMu.Unlock()
		return MigrateStats{}, errorf(ErrNotFound, "fleet: no instance %q", id)
	}
	snap0 := in.snap.Load()
	baseSeq := m.pipe.log.LastSeq()
	in.writeMu.Unlock()

	stage := sharding.Migration{
		ID:      id,
		BaseSeq: baseSeq,
		Records: []journal.Record{checkpointRecord(id, in.spec, snap0)},
	}
	if err := pushMigration(url+"/v1/migrate/stage", stage); err != nil {
		// The push may have staged despite the lost answer; a leftover
		// stage refuses traffic until dropped, so clean up best-effort.
		abortRemote(url, id)
		return MigrateStats{}, fmt.Errorf("fleet: stage %q on %s: %w", id, peer, err)
	}

	// Phase 2: fence, ship the suffix, cut over. The fence window —
	// writes redirected rather than applied — is what the
	// rebalance_pause SLO tracks.
	fenceStart := time.Now()
	in.writeMu.Lock()
	if in.deleted {
		in.writeMu.Unlock()
		abortRemote(url, id) // best effort; the stage was never durable
		return MigrateStats{}, errorf(ErrNotFound, "fleet: instance %q deleted mid-migration", id)
	}
	in.migrating = true
	in.migrateTo = url
	fenceSeq := m.pipe.log.LastSeq()
	in.writeMu.Unlock()

	suffix, err := m.collectSuffix(id, snap0.Epoch(), baseSeq, fenceSeq)
	if err == nil {
		frame := sharding.Migration{ID: id, BaseSeq: baseSeq, FenceSeq: fenceSeq, Records: suffix}
		if perr := pushMigration(url+"/v1/migrate/commit", frame); perr != nil {
			err = fmt.Errorf("fleet: commit %q on %s: %w", id, peer, perr)
		}
	}
	if err != nil {
		// The commit push failed — but "failed" is ambiguous: a lost
		// response or timeout may hide a commit the target durably
		// journaled and is already serving. Lifting the fence on that
		// guess would put two live owners behind one id (the moved-pin
		// here, the ring there) and silently drop every write the source
		// acks after this point. resolveHandoff settles it; while it
		// cannot, the fence stays up — writes bounce with a redirect,
		// never land on a maybe-stale copy — and a re-run of the
		// migration resumes the resolution.
		committed, _, rerr := resolveHandoff(url, id)
		if rerr != nil {
			return MigrateStats{}, errorf(ErrUnavailable,
				"fleet: %v (commit push: %v); write fence held, re-run the migration to resolve", rerr, err)
		}
		if !committed {
			// Provably not handed off: the source is still the owner.
			in.writeMu.Lock()
			in.migrating = false
			in.migrateTo = ""
			in.writeMu.Unlock()
			return MigrateStats{}, err
		}
		// The commit landed and only its answer was lost: fall through
		// to the cutover exactly as if the push had succeeded.
	}

	// The peer owns the instance now: erase the pin (the ring's answer —
	// the peer — takes over for routing) and journal the departure.
	if err := m.completeMigration(id, in); err != nil {
		return MigrateStats{}, err
	}
	pause := time.Since(fenceStart)
	m.migratePause.Observe(pause)
	m.migrationsOut.Inc()
	epoch := snap0.Epoch()
	for _, rec := range suffix {
		if rec.Epoch > epoch {
			epoch = rec.Epoch
		}
	}
	return MigrateStats{
		ID:       id,
		Peer:     peer,
		Epoch:    epoch,
		BaseSeq:  baseSeq,
		FenceSeq: fenceSeq,
		Suffix:   len(suffix),
		Pause:    pause.Seconds(),
	}, nil
}

// collectSuffix exports this instance's committed records in
// (baseSeq, fenceSeq] — everything the staged checkpoint at
// stagedEpoch missed. Checkpoint entries from a racing compaction are
// kept when they carry newer state (the target treats them as resets);
// a create or delete in the window means the instance's lifecycle
// changed under the migration and the handoff must not proceed.
func (m *Manager) collectSuffix(id string, stagedEpoch, baseSeq, fenceSeq uint64) ([]journal.Record, error) {
	entries, err := m.pipe.log.Collect(baseSeq+1, fenceSeq)
	if err != nil {
		return nil, fmt.Errorf("fleet: collect suffix for %q: %w", id, err)
	}
	var recs []journal.Record
	for _, e := range entries {
		if e.Rec.ID != id {
			continue
		}
		switch e.Rec.Op {
		case journal.OpTransition, journal.OpCheckpoint, journal.OpMigrate:
			if e.Rec.Epoch > stagedEpoch {
				recs = append(recs, e.Rec)
			}
		default:
			return nil, errorf(ErrConflict,
				"fleet: instance %q saw a %v mid-migration", id, e.Rec.Op)
		}
	}
	return recs, nil
}

// completeMigration retires the source copy after a committed handoff:
// erase the routing pin first (requests redirect to the new owner from
// this instant), then journal the OpDelete so a restart does not
// resurrect a stale replica.
func (m *Manager) completeMigration(id string, in *Instance) error {
	m.setMoved(id, "")
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	s := m.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	in.writeMu.Lock()
	in.deleted = true
	in.writeMu.Unlock()
	rec := journal.Record{Op: journal.OpDelete, ID: id}
	if _, err := m.pipe.log.Commit(rec, func() { delete(s.instances, id) }); err != nil {
		m.journalFailed.Add(1)
		return errorf(ErrUnavailable, "fleet: commit migration cutover %s: %v", id, err)
	}
	return nil
}

// Rebalance migrates every displaced local instance (the ids the
// current ring assigns elsewhere) to its owner, one fenced handoff at
// a time. It returns the stats of the migrations that completed; on
// the first failure it stops and reports both.
func (m *Manager) Rebalance() ([]MigrateStats, error) {
	var out []MigrateStats
	for _, id := range m.Displaced() {
		t := m.topo.Load()
		if t == nil {
			break
		}
		st, err := m.MigrateOut(id, t.ring.Owner(id))
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
	return out, nil
}

// StageMigration is the target half of phase 1: rebuild the pushed
// checkpoint bit-identically and hold it staged — in memory, invisible
// to the journal, refusing traffic — until the suffix commits. Staging
// is idempotent: a source retry replaces the previous stage.
func (m *Manager) StageMigration(mig sharding.Migration) error {
	if m.readOnly.Load() {
		return m.errReadOnly("migration stage")
	}
	t := m.topo.Load()
	if t == nil {
		return fmt.Errorf("fleet: migration stage without a shard topology")
	}
	if owner := t.ring.Owner(mig.ID); owner != t.self {
		return wrongShardf(t.peers[owner], "fleet: staged instance %q belongs to shard %s", mig.ID, owner)
	}
	if len(mig.Records) != 1 || mig.Records[0].Op != journal.OpCheckpoint {
		return fmt.Errorf("fleet: migration stage wants exactly one checkpoint record, got %d", len(mig.Records))
	}
	rec := mig.Records[0]
	spec := Spec{Kind: Kind(rec.Spec.Kind), M: rec.Spec.M, H: rec.Spec.H, K: rec.Spec.K}
	in, err := newInstance(mig.ID, spec, m.cache, m.pipe)
	if err != nil {
		return err
	}
	in.staged.Store(true)
	in.stagedAt = mig.BaseSeq
	// Bit-identical verification happens before the instance becomes
	// visible at all: a forged or corrupted checkpoint never registers.
	if err := in.restoreCheckpoint(rec.Epoch, rec.Faults); err != nil {
		return err
	}
	s := m.shardFor(mig.ID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.instances[mig.ID]; ok && !old.staged.Load() {
		return errorf(ErrConflict, "fleet: instance %q already exists on this shard", mig.ID)
	}
	s.instances[mig.ID] = in
	return nil
}

// CommitMigration is the target half of phase 2: replay the fenced
// suffix onto the staged snapshot (strict epoch chain, every record
// verified), journal ONE OpMigrate record carrying the final state,
// and open the instance for traffic. The OpMigrate consumes a commit
// seq like any ordinary record, so this daemon's followers receive the
// arrival as a single atomic entry.
func (m *Manager) CommitMigration(mig sharding.Migration) (uint64, error) {
	if m.readOnly.Load() {
		return 0, m.errReadOnly("migration commit")
	}
	in, ok := m.Get(mig.ID)
	if !ok || !in.staged.Load() {
		return 0, errorf(ErrNotFound, "fleet: no staged migration for %q", mig.ID)
	}
	m.pipe.gate.RLock()
	defer m.pipe.gate.RUnlock()
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	// Re-check under writeMu: a successful AbortMigration (which
	// tombstones under this same mutex) is a definitive fence — no
	// commit may land after it, or the source could resume ownership of
	// an id this daemon also serves.
	if in.deleted || !in.staged.Load() {
		return 0, errorf(ErrNotFound, "fleet: no staged migration for %q", mig.ID)
	}
	if in.stagedAt != mig.BaseSeq {
		return 0, errorf(ErrConflict,
			"fleet: migration commit for %q at base seq %d, staged at %d", mig.ID, mig.BaseSeq, in.stagedAt)
	}
	for _, rec := range mig.Records {
		cur := in.snap.Load().Epoch()
		switch rec.Op {
		case journal.OpTransition:
			if rec.Epoch <= cur {
				continue // overlap with the staged checkpoint
			}
			if rec.Epoch != cur+1 {
				return 0, fmt.Errorf("fleet: instance %s: suffix epoch %d follows epoch %d (gap)",
					mig.ID, rec.Epoch, cur)
			}
		case journal.OpCheckpoint, journal.OpMigrate:
			if rec.Epoch < cur {
				continue // stale reset
			}
		default:
			return 0, fmt.Errorf("fleet: instance %s: %v record in migration suffix", mig.ID, rec.Op)
		}
		next, err := in.restoredSnapshot(rec.Epoch, rec.Faults)
		if err != nil {
			return 0, err
		}
		in.snap.Store(next)
	}
	snap := in.snap.Load()
	rec := journal.Record{
		Op:     journal.OpMigrate,
		ID:     mig.ID,
		Spec:   journalSpec(in.spec),
		Epoch:  snap.Epoch(),
		Faults: snap.Faults(),
	}
	if _, err := m.pipe.log.Commit(rec, func() { in.staged.Store(false) }); err != nil {
		m.journalFailed.Add(1)
		return 0, errorf(ErrUnavailable, "fleet: commit migration arrival %s: %v", mig.ID, err)
	}
	m.migrationsIn.Inc()
	return snap.Epoch(), nil
}

// AbortMigration drops a staged (never-committed) inbound instance,
// reporting whether one existed. The source calls it when phase 2
// fails; since the stage was never journaled, dropping it from memory
// is the entire rollback. The staged check happens under writeMu — the
// mutex CommitMigration replays and journals under — so a true answer
// is a fence: the commit for this stage either already happened
// (answer false) or can never happen (answer true), never "is about
// to". resolveHandoff leans on exactly that.
func (m *Manager) AbortMigration(id string) bool {
	in, ok := m.Get(id)
	if !ok {
		return false
	}
	in.writeMu.Lock()
	if !in.staged.Load() || in.deleted {
		in.writeMu.Unlock()
		return false
	}
	in.deleted = true
	in.writeMu.Unlock()
	m.deleteRaw(id)
	return true
}

// MigrationState reports this daemon's view of id for a peer resolving
// an ambiguous handoff (or reconciling pins after a restart):
// "absent" (no live copy — never arrived, aborted, or deleted),
// "staged" (arrived but not committed; still refusing traffic), or
// "committed" (a live, journaled copy; epoch is its current epoch).
// The flags are read under writeMu so the answer never observes a
// commit or abort halfway through.
func (m *Manager) MigrationState(id string) (string, uint64) {
	in, ok := m.Get(id)
	if !ok {
		return "absent", 0
	}
	in.writeMu.Lock()
	defer in.writeMu.Unlock()
	switch {
	case in.deleted:
		return "absent", 0
	case in.staged.Load():
		return "staged", 0
	default:
		return "committed", in.snap.Load().Epoch()
	}
}

// pushMigration POSTs one encoded migration frame and decodes the
// JSON error body on rejection.
func pushMigration(url string, mig sharding.Migration) error {
	body, err := sharding.AppendMigration(nil, mig)
	if err != nil {
		return err
	}
	resp, err := migrateClient.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var apiErr struct {
		Error string `json:"error"`
	}
	msg := ""
	if b, rerr := io.ReadAll(io.LimitReader(resp.Body, 4096)); rerr == nil {
		if json.Unmarshal(b, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		} else {
			msg = string(b)
		}
	}
	return fmt.Errorf("peer returned %d: %s", resp.StatusCode, msg)
}

// abortRemote asks the target to drop a staged instance, reporting
// whether one was actually dropped. Thanks to AbortMigration's
// writeMu discipline, aborted=true proves the handoff's commit can
// never land; aborted=false says nothing by itself (already committed,
// or never staged) and is disambiguated by a state probe.
func abortRemote(url, id string) (bool, error) {
	body, _ := json.Marshal(map[string]string{"id": id})
	resp, err := probeClient.Post(url+"/v1/migrate/abort", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, resp.Body)
		return false, fmt.Errorf("peer returned %d to abort", resp.StatusCode)
	}
	var out struct {
		Aborted bool `json:"aborted"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
		return false, fmt.Errorf("decode abort answer: %v", err)
	}
	return out.Aborted, nil
}

// remoteMigrationState probes the target's view of id: "absent",
// "staged", or "committed" (with the live epoch).
func remoteMigrationState(url, id string) (string, uint64, error) {
	resp, err := probeClient.Get(url + "/v1/migrate/state?id=" + neturl.QueryEscape(id))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		io.Copy(io.Discard, resp.Body)
		return "", 0, fmt.Errorf("peer returned %d to state probe", resp.StatusCode)
	}
	var out struct {
		State string `json:"state"`
		Epoch uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&out); err != nil {
		return "", 0, fmt.Errorf("decode state answer: %v", err)
	}
	return out.State, out.Epoch, nil
}

// resolveHandoff decides the fate of a handoff whose commit push got no
// usable answer — the split-brain hinge. The order is what makes it
// sound: abort FIRST. A successful abort is a fence (see
// AbortMigration), so aborted=true means the commit provably never
// happened and never will. Only when the abort found nothing staged do
// we probe the state: "committed" means the push landed and its answer
// was lost; "absent" means the stage evaporated (target restart) and a
// commit — which requires a stage — is impossible. Anything else, or
// any transport failure, leaves the handoff unresolved and the caller
// MUST keep the write fence up.
func resolveHandoff(url, id string) (committed bool, epoch uint64, err error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 200 * time.Millisecond)
		}
		aborted, aerr := abortRemote(url, id)
		if aerr != nil {
			lastErr = aerr
			continue
		}
		if aborted {
			return false, 0, nil
		}
		state, e, serr := remoteMigrationState(url, id)
		if serr != nil {
			lastErr = serr
			continue
		}
		switch state {
		case "committed":
			return true, e, nil
		case "absent":
			return false, 0, nil
		default:
			// Still staged after an abort that dropped nothing: the
			// commit handler is mid-flight between our two calls. Loop.
			lastErr = fmt.Errorf("handoff %q still staged on target", id)
		}
	}
	return false, 0, fmt.Errorf("fleet: handoff of %q unresolved: %v", id, lastErr)
}
