package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrTorn marks the point where a journal stops being well-formed: a
// partial frame header, an implausible length, a payload cut short, a
// CRC mismatch, or a non-canonical record body. Everything before the
// tear decoded cleanly and is trustworthy; everything from it on is
// dropped. Recovery treats a torn tail as the expected signature of a
// crash mid-append — logged, truncated, never accepted.
var ErrTorn = errors.New("journal: torn or corrupt tail")

// Reader scans framed records from a stream. It is strictly
// prefix-preserving: Next returns records until the first malformed
// byte, then an error wrapping ErrTorn (or io.EOF when the stream ends
// exactly on a frame boundary), and Offset reports how many bytes of
// complete, CRC-verified records were consumed — the truncation point
// that makes the file clean again.
type Reader struct {
	br  *bufio.Reader
	off int64 // end of the last complete record
	err error // sticky terminal state
}

// NewReader wraps r for record scanning.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReader(r)}
}

// Offset returns the byte offset just past the last complete record.
func (r *Reader) Offset() int64 { return r.off }

// Next returns the next record. It returns io.EOF at a clean end of
// stream and an error wrapping ErrTorn for any malformed tail; it
// never returns a record that failed the CRC or canonical decode.
func (r *Reader) Next() (Record, error) {
	if r.err != nil {
		return Record{}, r.err
	}
	rec, err := r.next()
	if err != nil {
		r.err = err
	}
	return rec, err
}

func (r *Reader) next() (Record, error) {
	var hdr [frameHeaderSize]byte
	n, err := io.ReadFull(r.br, hdr[:])
	if n == 0 && (err == io.EOF || err == io.ErrUnexpectedEOF) {
		return Record{}, io.EOF
	}
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: %d-byte partial frame header at offset %d", ErrTorn, n, r.off)
		}
		return Record{}, err
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	want := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > MaxRecordSize {
		return Record{}, fmt.Errorf("%w: implausible record length %d at offset %d", ErrTorn, length, r.off)
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r.br, body); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("%w: record at offset %d cut short of %d bytes", ErrTorn, r.off, length)
		}
		return Record{}, err
	}
	if got := crc32.Checksum(body, castagnoli); got != want {
		return Record{}, fmt.Errorf("%w: CRC mismatch at offset %d (stored %08x, computed %08x)", ErrTorn, r.off, want, got)
	}
	rec, err := DecodeRecord(body)
	if err != nil {
		return Record{}, fmt.Errorf("%w: undecodable record at offset %d: %v", ErrTorn, r.off, err)
	}
	r.off += int64(frameHeaderSize) + int64(length)
	return rec, nil
}

// ReadAll scans every complete record from r. The returned offset is
// the end of the valid prefix. err is nil on a clean end of stream and
// wraps ErrTorn when a malformed tail was dropped; the records and
// offset are valid either way.
func ReadAll(r io.Reader) (recs []Record, offset int64, err error) {
	jr := NewReader(r)
	for {
		rec, err := jr.Next()
		if err == io.EOF {
			return recs, jr.Offset(), nil
		}
		if err != nil {
			return recs, jr.Offset(), err
		}
		recs = append(recs, rec)
	}
}
