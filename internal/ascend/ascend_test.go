package ascend

import (
	"math/rand"
	"testing"

	"ftnet/internal/ft"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

func seq(n int) []int64 {
	v := make([]int64, n)
	for i := range v {
		v[i] = int64(i + 1)
	}
	return v
}

func TestSumOnHealthySE(t *testing.T) {
	for h := 2; h <= 7; h++ {
		n := 1 << h
		se := shuffle.MustNew(shuffle.Params{H: h})
		res, err := RunSE(h, NewHealthy(se), seq(n), Sum)
		if err != nil {
			t.Fatalf("h=%d: %v", h, err)
		}
		want := int64(n) * int64(n+1) / 2
		for x, v := range res.Values {
			if v != want {
				t.Fatalf("h=%d node %d: sum=%d, want %d", h, x, v, want)
			}
		}
		if res.Cycles != 2*h {
			t.Errorf("h=%d: cycles=%d, want 2h=%d", h, res.Cycles, 2*h)
		}
	}
}

func TestMaxOnHealthySE(t *testing.T) {
	h := 5
	n := 1 << h
	rng := rand.New(rand.NewSource(3))
	vals := make([]int64, n)
	var want int64 = -1
	for i := range vals {
		vals[i] = int64(rng.Intn(10000))
		if vals[i] > want {
			want = vals[i]
		}
	}
	se := shuffle.MustNew(shuffle.Params{H: h})
	res, err := RunSE(h, NewHealthy(se), vals, MaxOp)
	if err != nil {
		t.Fatal(err)
	}
	for x, v := range res.Values {
		if v != want {
			t.Fatalf("node %d: max=%d, want %d", x, v, want)
		}
	}
}

func TestMinMaxPrimitive(t *testing.T) {
	a, b := MinMax(5, 3)
	if a != 3 || b != 5 {
		t.Errorf("MinMax(5,3) = %d,%d", a, b)
	}
	a, b = MinMax(1, 2)
	if a != 1 || b != 2 {
		t.Errorf("MinMax(1,2) = %d,%d", a, b)
	}
}

func TestUnprotectedMachineFailsWithOneFault(t *testing.T) {
	// The paper's motivation: a single processor failure breaks the
	// algorithm class on an unprotected machine.
	h := 4
	se := shuffle.MustNew(shuffle.Params{H: h})
	hst := NewHealthy(se)
	hst.Dead[5] = true
	if _, err := RunSE(h, hst, seq(1<<h), Sum); err == nil {
		t.Fatal("dead node did not break the run")
	}
}

func TestSurvivingFractionDegrades(t *testing.T) {
	h := 5
	se := shuffle.MustNew(shuffle.Params{H: h})
	hst := NewHealthy(se)
	hst.Dead[7] = true
	frac, err := SurvivingFraction(h, hst, seq(1<<h), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if frac >= 1 {
		t.Errorf("fraction %f should be < 1 with a dead node", frac)
	}
	// For the all-to-all Sum, any fault poisons everything downstream;
	// the fraction should collapse dramatically.
	if frac > 0.5 {
		t.Errorf("fraction %f suspiciously high for global reduction", frac)
	}
	// Healthy machine keeps everything.
	frac2, err := SurvivingFraction(h, NewHealthy(se), seq(1<<h), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if frac2 != 1 {
		t.Errorf("healthy fraction = %f", frac2)
	}
}

func TestReconfiguredMachineRunsAtFullSpeed(t *testing.T) {
	// The paper's payoff: after k faults, the FT host still runs the
	// Ascend schedule in exactly 2h cycles via the reconfiguration map.
	rng := rand.New(rand.NewSource(11))
	for h := 3; h <= 6; h++ {
		for k := 1; k <= 3; k++ {
			p := ft.SEParams{H: h, K: k}
			host, psi, err := ft.NewSEViaDB(p)
			if err != nil {
				t.Fatal(err)
			}
			n := 1 << h
			for trial := 0; trial < 5; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				loc, err := ft.SEMapViaDB(p, psi, faults)
				if err != nil {
					t.Fatal(err)
				}
				dead := make([]bool, p.NHost())
				for _, f := range faults {
					dead[f] = true
				}
				hst := &Host{G: host, Loc: loc, Dead: dead}
				res, err := RunSE(h, hst, seq(n), Sum)
				if err != nil {
					t.Fatalf("h=%d k=%d faults=%v: %v", h, k, faults, err)
				}
				want := int64(n) * int64(n+1) / 2
				for x, v := range res.Values {
					if v != want {
						t.Fatalf("node %d: %d != %d", x, v, want)
					}
				}
				if res.Cycles != 2*h {
					t.Errorf("reconfigured cycles = %d, want %d (full speed)", res.Cycles, 2*h)
				}
			}
		}
	}
}

func TestReconfiguredNaturalVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := ft.SEParams{H: 5, K: 2}
	host, err := ft.NewSENatural(p)
	if err != nil {
		t.Fatal(err)
	}
	n := 1 << p.H
	faults := num.RandomSubset(rng, p.NHost(), p.K)
	mp, err := ft.NewMapping(p.NTarget(), p.NHost(), faults)
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, p.NHost())
	for _, f := range faults {
		dead[f] = true
	}
	hst := &Host{G: host, Loc: mp.PhiSlice(), Dead: dead}
	res, err := RunSE(p.H, hst, seq(n), Sum)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2*p.H {
		t.Errorf("cycles = %d", res.Cycles)
	}
}

func TestRunSEValidation(t *testing.T) {
	se := shuffle.MustNew(shuffle.Params{H: 3})
	if _, err := RunSE(0, NewHealthy(se), nil, Sum); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := RunSE(3, NewHealthy(se), seq(4), Sum); err == nil {
		t.Error("wrong value count accepted")
	}
	short := &Host{G: se, Loc: []int{0, 1}, Dead: make([]bool, 8)}
	if _, err := RunSE(3, short, seq(8), Sum); err == nil {
		t.Error("short Loc accepted")
	}
}
