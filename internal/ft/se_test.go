package ft

import (
	"math/rand"
	"testing"

	"ftnet/internal/graph"
	"ftnet/internal/num"
	"ftnet/internal/shuffle"
)

func TestSEParams(t *testing.T) {
	p := SEParams{H: 4, K: 2}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NTarget() != 16 || p.NHost() != 18 {
		t.Errorf("sizes %d %d", p.NTarget(), p.NHost())
	}
	if p.DegreeBoundViaDB() != 12 {
		t.Errorf("via-dB bound %d", p.DegreeBoundViaDB())
	}
	if p.DegreeBoundNatural() != 18 {
		t.Errorf("natural bound %d", p.DegreeBoundNatural())
	}
	if p.String() != "FTSE^2_4" {
		t.Errorf("String = %q", p.String())
	}
	if (SEParams{H: 2, K: 0}).Validate() == nil {
		t.Error("h=2 should be invalid")
	}
}

func TestSEViaDBToleratesRandomFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for h := 3; h <= 6; h++ {
		for k := 0; k <= 4; k++ {
			p := SEParams{H: h, K: k}
			host, psi, err := NewSEViaDB(p)
			if err != nil {
				t.Fatal(err)
			}
			if host.MaxDegree() > p.DegreeBoundViaDB() {
				t.Errorf("%v: host degree %d > %d", p, host.MaxDegree(), p.DegreeBoundViaDB())
			}
			se := shuffle.MustNew(shuffle.Params{H: h})
			for trial := 0; trial < 10; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				phi, err := SEMapViaDB(p, psi, faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEmbedding(se, host, phi); err != nil {
					t.Fatalf("%v faults=%v: %v", p, faults, err)
				}
				// Faulty nodes must not host anything.
				for _, f := range faults {
					for _, img := range phi {
						if img == f {
							t.Fatalf("%v: faulty node %d hosts an SE node", p, f)
						}
					}
				}
			}
		}
	}
}

func TestSEViaDBExhaustiveSmall(t *testing.T) {
	// Every 1-fault and 2-fault pattern for SE_3.
	for k := 1; k <= 2; k++ {
		p := SEParams{H: 3, K: k}
		host, psi, err := NewSEViaDB(p)
		if err != nil {
			t.Fatal(err)
		}
		se := shuffle.MustNew(shuffle.Params{H: 3})
		faults := make([]int, k)
		num.Combinations(p.NHost(), k, func(subset []int) bool {
			copy(faults, subset)
			phi, err := SEMapViaDB(p, psi, faults)
			if err != nil {
				t.Fatalf("faults=%v: %v", faults, err)
			}
			if err := graph.CheckEmbedding(se, host, phi); err != nil {
				t.Fatalf("faults=%v: %v", faults, err)
			}
			return true
		})
	}
}

func TestSENaturalToleratesRandomFaults(t *testing.T) {
	// Under the natural labeling, SE node x maps directly through phi.
	rng := rand.New(rand.NewSource(7))
	for h := 3; h <= 6; h++ {
		for k := 0; k <= 4; k++ {
			p := SEParams{H: h, K: k}
			host, err := NewSENatural(p)
			if err != nil {
				t.Fatal(err)
			}
			se := shuffle.MustNew(shuffle.Params{H: h})
			for trial := 0; trial < 10; trial++ {
				faults := num.RandomSubset(rng, p.NHost(), k)
				mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
				if err != nil {
					t.Fatal(err)
				}
				if err := graph.CheckEmbedding(se, host, mp.PhiSlice()); err != nil {
					t.Fatalf("%v faults=%v: %v", p, faults, err)
				}
			}
		}
	}
}

func TestSENaturalExhaustiveSmall(t *testing.T) {
	for k := 1; k <= 2; k++ {
		p := SEParams{H: 3, K: k}
		host, err := NewSENatural(p)
		if err != nil {
			t.Fatal(err)
		}
		se := shuffle.MustNew(shuffle.Params{H: 3})
		faults := make([]int, k)
		num.Combinations(p.NHost(), k, func(subset []int) bool {
			copy(faults, subset)
			mp, err := NewMapping(p.NTarget(), p.NHost(), faults)
			if err != nil {
				t.Fatalf("faults=%v: %v", faults, err)
			}
			if err := graph.CheckEmbedding(se, host, mp.PhiSlice()); err != nil {
				t.Fatalf("faults=%v: %v", faults, err)
			}
			return true
		})
	}
}

func TestSENaturalDegree(t *testing.T) {
	// Measured degree must stay within our provable 6k+6 bound; record
	// how it compares to the paper's stated 6k+4 (see DESIGN.md).
	for h := 3; h <= 7; h++ {
		for k := 0; k <= 4; k++ {
			p := SEParams{H: h, K: k}
			host, err := NewSENatural(p)
			if err != nil {
				t.Fatal(err)
			}
			d := host.MaxDegree()
			if d > p.DegreeBoundNatural() {
				t.Errorf("%v: degree %d > 6k+6 = %d", p, d, p.DegreeBoundNatural())
			}
			t.Logf("%v: natural degree measured %d (paper claims 6k+4 = %d)", p, d, 6*k+4)
		}
	}
}

func TestSENaturalDegreeSmallerThanTwoFTdB(t *testing.T) {
	// Sanity: the natural construction must not cost more than building
	// the band on top of the dB host, i.e. union is bounded by sum.
	p := SEParams{H: 5, K: 3}
	host, err := NewSENatural(p)
	if err != nil {
		t.Fatal(err)
	}
	db := MustNew(p.DB())
	if host.MaxDegree() > db.MaxDegree()+2*(p.K+1) {
		t.Errorf("degree %d exceeds dB %d + band %d", host.MaxDegree(), db.MaxDegree(), 2*(p.K+1))
	}
}

func TestSEMapViaDBErrors(t *testing.T) {
	p := SEParams{H: 3, K: 1}
	if _, err := SEMapViaDB(p, []int{0, 1}, nil); err == nil {
		t.Error("short psi should error")
	}
	_, psi, err := NewSEViaDB(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SEMapViaDB(p, psi, []int{1, 2}); err == nil {
		t.Error("too many faults should error")
	}
}

func TestNewSEInvalidParams(t *testing.T) {
	if _, _, err := NewSEViaDB(SEParams{H: 0, K: 1}); err == nil {
		t.Error("invalid params accepted by NewSEViaDB")
	}
	if _, err := NewSENatural(SEParams{H: 0, K: 1}); err == nil {
		t.Error("invalid params accepted by NewSENatural")
	}
}
