// Busarch demonstrates Section V: the bus implementation of the
// fault-tolerant de Bruijn network, its reduced degree, tolerance of a
// BUS fault, and the measured slowdown on the simulator.
//
// Run with: go run ./examples/busarch
package main

import (
	"fmt"
	"log"

	"ftnet/internal/bus"
	"ftnet/internal/ft"
	"ftnet/internal/sim"
)

func main() {
	p := ft.Params{M: 2, H: 3, K: 1}
	arch, err := bus.New(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("B^1_{2,3} with buses: %d nodes, %d buses\n", p.NHost(), arch.NumBuses())
	fmt.Printf("bus degree %d (vs point-to-point degree %d)\n\n",
		arch.MaxBusDegree(), ft.MustNew(p).MaxDegree())
	for i := 0; i < arch.NumBuses(); i++ {
		fmt.Printf("  bus %d: owner %d -> block %v\n", i, i, arch.Members(i))
	}

	// A bus fails. Section V: treat its owner as a faulty node.
	const failedBus = 3
	m, err := arch.Reconfigure(nil, []int{failedBus})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbus %d fails -> node %d treated as faulty; reconfigured:\n", failedBus, failedBus)
	for x := 0; x < p.NTarget(); x++ {
		fmt.Printf("  target %d -> host %d\n", x, m.Phi(x))
	}

	// Measure the slowdown: every node bursts a value to 2 neighbors.
	g := arch.ConnectivityGraph()
	var hops [][2]int
	for i := 0; i < g.N(); i++ {
		count := 0
		for _, v := range arch.Members(i) {
			if v != i && count < 2 {
				hops = append(hops, [2]int{i, v})
				count++
			}
		}
	}
	for _, ports := range []int{2, 1} {
		stP, err := sim.Run(sim.NewPointToPoint(g, ports), sim.NeighborBurst(hops), 100)
		if err != nil {
			log.Fatal(err)
		}
		stB, err := sim.Run(sim.NewBusMachine(arch, ports), sim.NeighborBurst(hops), 100)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%d port(s)/node: point-to-point %d cycles, bus %d cycles", ports, stP.Cycles, stB.Cycles)
	}
	fmt.Println("\n\n(2 ports: buses cost ~2x; 1 port: buses cost nothing — Section V's claim)")
}
