package debruijn

import (
	"fmt"
)

// Sequence returns a de Bruijn sequence of order h over the alphabet
// {0..m-1}: a cyclic string of length m^h in which every h-digit word
// appears exactly once as a window. It uses the
// Fredricksen–Kessler–Maiorana construction (concatenation of Lyndon
// words whose length divides h), which needs no graph search.
//
// The existence of such sequences is the classical reason de Bruijn
// graphs are Hamiltonian/Eulerian, and the test suite uses Sequence to
// cross-validate the graph generators: consecutive windows of the
// sequence must be adjacent nodes in B_{m,h}.
func Sequence(m, h int) ([]int, error) {
	if m < 2 {
		return nil, fmt.Errorf("debruijn.Sequence: base m=%d must be >= 2", m)
	}
	if h < 1 {
		return nil, fmt.Errorf("debruijn.Sequence: order h=%d must be >= 1", h)
	}
	var seq []int
	a := make([]int, h+1)
	var db func(t, p int)
	db = func(t, p int) {
		if t > h {
			if h%p == 0 {
				seq = append(seq, a[1:p+1]...)
			}
			return
		}
		a[t] = a[t-p]
		db(t+1, p)
		for j := a[t-p] + 1; j < m; j++ {
			a[t] = j
			db(t+1, t)
		}
	}
	db(1, 1)
	return seq, nil
}

// WindowValue returns the integer value of the h-window of seq starting
// at position i (cyclically), interpreting digits in base m.
func WindowValue(seq []int, i, m, h int) int {
	v := 0
	for j := 0; j < h; j++ {
		v = v*m + seq[(i+j)%len(seq)]
	}
	return v
}
